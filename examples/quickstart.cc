// Quickstart: parse a Datalog program with an existential query, run the
// paper's optimization pipeline, and evaluate both versions.
//
//   $ ./quickstart
//
// The program is Example 1 from the paper: "which X can reach *some* Y?"
// The pipeline adorns it (Section 2), pushes the projection through the
// recursion (Section 3.2) so the recursive predicate becomes unary, and
// reports what it did.

#include <iostream>

#include "ast/printer.h"
#include "core/optimizer.h"
#include "core/workload.h"
#include "eval/evaluator.h"
#include "parser/parser.h"

int main() {
  using namespace exdl;

  const char* source = R"(
    % Example 1 of Ramakrishnan, Beeri & Krishnamurthy (PODS 1988).
    query(X) :- a(X, Y).
    a(X, Y) :- p(X, Z), a(Z, Y).
    a(X, Y) :- p(X, Y).
    ?- query(X).
  )";

  ContextPtr ctx = std::make_shared<Context>();
  Result<ParsedUnit> parsed = ParseProgram(source, ctx);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status().ToString() << "\n";
    return 1;
  }
  Program& program = parsed->program;

  std::cout << "== original program ==\n" << ToString(program);

  // A little graph to run on: a chain with a side branch.
  Database edb;
  PredId p = ctx->InternPredicate("p", 2);
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kChain;
  spec.nodes = 10;
  MakeGraph(ctx.get(), &edb, p, spec);

  Result<OptimizedProgram> optimized = OptimizeExistential(program);
  if (!optimized.ok()) {
    std::cerr << "optimize error: " << optimized.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n== optimized program ==\n" << ToString(optimized->program)
            << "\n== optimization report ==\n"
            << optimized->report.ToString();

  for (const Program* prog : {&program, &optimized->program}) {
    Result<EvalResult> result = Evaluate(*prog, edb);
    if (!result.ok()) {
      std::cerr << "eval error: " << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << "\nanswers ("
              << (prog == &program ? "original" : "optimized")
              << "): " << result->answers.size()
              << "   [" << result->stats.ToString() << "]\n";
    for (const auto& row : result->answers) {
      std::cout << "  query(";
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) std::cout << ", ";
        std::cout << ctx->SymbolName(row[i]);
      }
      std::cout << ")\n";
    }
  }
  return 0;
}
