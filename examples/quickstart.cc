// Quickstart: load a Datalog program with an existential query into an
// exdl::Engine, run the paper's optimization pipeline, and evaluate both
// the original and the optimized version.
//
//   $ ./quickstart
//
// The program is Example 1 from the paper: "which X can reach *some* Y?"
// The pipeline adorns it (Section 2), pushes the projection through the
// recursion (Section 3.2) so the recursive predicate becomes unary, and
// reports what it did.

#include <iostream>

#include "ast/printer.h"
#include "core/engine.h"
#include "core/workload.h"

int main() {
  using namespace exdl;

  const char* source = R"(
    % Example 1 of Ramakrishnan, Beeri & Krishnamurthy (PODS 1988).
    query(X) :- a(X, Y).
    a(X, Y) :- p(X, Z), a(Z, Y).
    a(X, Y) :- p(X, Y).
    ?- query(X).
  )";

  // One Engine is one session: context + program + EDB + options.
  Engine engine;
  if (Status loaded = engine.LoadSource(source); !loaded.ok()) {
    std::cerr << "parse error: " << loaded.ToString() << "\n";
    return 1;
  }

  std::cout << "== original program ==\n" << ToString(engine.program());
  Program original = engine.program().Clone();

  // A little graph to run on: a ten-node chain.
  PredId p = engine.ctx()->InternPredicate("p", 2);
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kChain;
  spec.nodes = 10;
  MakeGraph(engine.ctx().get(), &engine.mutable_edb(), p, spec);

  if (Status optimized = engine.Optimize(); !optimized.ok()) {
    std::cerr << "optimize error: " << optimized.ToString() << "\n";
    return 1;
  }
  std::cout << "\n== optimized program ==\n" << ToString(engine.program())
            << "\n== optimization report ==\n"
            << engine.report().ToString();

  // Evaluate the optimized session program, then the saved original
  // through the same engine (session-less, same options).
  for (bool use_session : {false, true}) {
    Result<EvalResult> result =
        use_session ? engine.Run() : engine.Evaluate(original, engine.edb());
    if (!result.ok()) {
      std::cerr << "eval error: " << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << "\nanswers (" << (use_session ? "optimized" : "original")
              << "): " << result->answers.size()
              << "   [" << result->stats.ToString() << "]\n";
    for (const auto& row : result->answers) {
      std::cout << "  query(";
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) std::cout << ", ";
        std::cout << engine.ctx()->SymbolName(row[i]);
      }
      std::cout << ")\n";
    }
  }
  return 0;
}
