// Stratified negation example: access-control policies.
//
//   visible(U, D): user U can see document D — U reaches D's group
//   through the org hierarchy AND neither U nor the path is revoked.
// Combines recursion, negation (two strata) and the existential pipeline
// ("which users can see at least one confidential document?").

#include <iostream>

#include "ast/printer.h"
#include "core/optimizer.h"
#include "core/workload.h"
#include "eval/evaluator.h"
#include "parser/parser.h"

int main() {
  using namespace exdl;

  const char* source = R"(
    member(U, G)   :- belongs(U, G).
    member(U, G)   :- belongs(U, H), subgroup(H, G).
    subgroup(H, G) :- parent(H, G).
    subgroup(H, G) :- parent(H, K), subgroup(K, G).
    visible(U, D)  :- member(U, G), owns(G, D), not revoked(U).
    sees_conf(U)   :- visible(U, D), confidential(D).
    ?- sees_conf(U).
  )";

  ContextPtr ctx = std::make_shared<Context>();
  Result<ParsedUnit> parsed = ParseProgram(source, ctx);
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }

  Database edb;
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kTree;
  spec.nodes = 60;  // group hierarchy
  spec.seed = 19;
  PredId parent = ctx->InternPredicate("parent", 2);
  std::vector<Value> groups = MakeGraph(ctx.get(), &edb, parent, spec);
  MakeRandomTuples(ctx.get(), &edb, ctx->InternPredicate("belongs", 2), 400,
                   200, 21);
  MakeRandomTuples(ctx.get(), &edb, ctx->InternPredicate("owns", 2), 150,
                   200, 23);
  MakeRandomTuples(ctx.get(), &edb, ctx->InternPredicate("confidential", 1),
                   30, 200, 25);
  MakeRandomTuples(ctx.get(), &edb, ctx->InternPredicate("revoked", 1), 40,
                   200, 27);

  Result<OptimizedProgram> optimized = OptimizeExistential(parsed->program);
  if (!optimized.ok()) {
    std::cerr << optimized.status().ToString() << "\n";
    return 1;
  }
  std::cout << "== optimized (deletion skipped: negation) ==\n"
            << ToString(optimized->program) << "\n"
            << optimized->report.ToString() << "\n";

  for (const Program* p : {&parsed->program, &optimized->program}) {
    Result<EvalResult> r = Evaluate(*p, edb);
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return 1;
    }
    std::cout << (p == &parsed->program ? "original " : "optimized")
              << ": " << r->answers.size() << " users see confidential docs"
              << "   [" << r->stats.ToString() << "]\n";
  }
  return 0;
}
