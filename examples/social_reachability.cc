// Social-network reachability with an existential query — the workload the
// paper's introduction motivates: we want the *users* who can reach some
// influencer, not the full (user, influencer) closure.
//
//   reaches_inf(U, V): follows-path from U to influencer V
//   exposed(U)       : U reaches *some* influencer    <- V existential
//
// The optimizer turns the binary recursion into a unary one; on a
// preferential-attachment graph this cuts derived tuples from O(n^2)-ish
// to O(n) and removes most duplicate-elimination work.

#include <chrono>
#include <iostream>

#include "ast/printer.h"
#include "core/optimizer.h"
#include "core/workload.h"
#include "eval/evaluator.h"
#include "parser/parser.h"

int main() {
  using namespace exdl;
  using Clock = std::chrono::steady_clock;

  const char* source = R"(
    exposed(U) :- reaches_inf(U, V).
    reaches_inf(U, V) :- follows(U, V), influencer(V).
    reaches_inf(U, V) :- follows(U, W), reaches_inf(W, V).
    ?- exposed(U).
  )";

  ContextPtr ctx = std::make_shared<Context>();
  Result<ParsedUnit> parsed = ParseProgram(source, ctx);
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }

  // 2000 users, heavy-tailed follow graph, 1% influencers.
  Database edb;
  PredId follows = ctx->InternPredicate("follows", 2);
  PredId influencer = ctx->InternPredicate("influencer", 1);
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kPreferential;
  spec.nodes = 2000;
  spec.avg_degree = 3;
  spec.seed = 7;
  std::vector<Value> users = MakeGraph(ctx.get(), &edb, follows, spec);
  for (size_t i = 0; i < users.size(); i += 100) {
    const Value row[1] = {users[i]};
    edb.AddTuple(influencer, row);
  }

  Result<OptimizedProgram> optimized =
      OptimizeExistential(parsed->program);
  if (!optimized.ok()) {
    std::cerr << optimized.status().ToString() << "\n";
    return 1;
  }
  std::cout << "== optimized program ==\n"
            << ToString(optimized->program) << "\n"
            << optimized->report.ToString() << "\n";

  auto run = [&](const Program& p, const char* label) {
    auto t0 = Clock::now();
    Result<EvalResult> r = Evaluate(p, edb);
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Clock::now() - t0)
                  .count();
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      exit(1);
    }
    std::cout << label << ": " << r->answers.size() << " exposed users, "
              << ms << " ms   [" << r->stats.ToString() << "]\n";
    return r->answers.size();
  };
  size_t a = run(parsed->program, "original ");
  size_t b = run(optimized->program, "optimized");
  if (a != b) {
    std::cerr << "BUG: answer mismatch\n";
    return 1;
  }
  return 0;
}
