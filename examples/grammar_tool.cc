// Grammar tool: the chain-program <-> CFG correspondence of Section 1.1
// and the constructive side of Theorem 3.3.
//
// Takes a binary chain program (built in, or from a file given as argv[1]),
// prints its grammar, analyses regularity, and — when the grammar is
// strongly regular — synthesizes the equivalent *monadic* program for the
// existential-source query and cross-checks it against the binary program
// on a random labeled graph.

#include <fstream>
#include <set>
#include <iostream>
#include <sstream>

#include "ast/printer.h"
#include "core/workload.h"
#include "eval/evaluator.h"
#include "grammar/chain.h"
#include "grammar/dfa.h"
#include "grammar/monadic.h"
#include "grammar/nfa.h"
#include "grammar/regularity.h"
#include "parser/parser.h"

int main(int argc, char** argv) {
  using namespace exdl;

  std::string source = R"(
    % L = a b* c : strongly regular, so Theorem 3.3's conversion applies.
    s(X, Y) :- a(X, U), m(U, Y).
    m(X, Y) :- b(X, U), m(U, Y).
    m(X, Y) :- c(X, Y).
    ?- s(X, Y).
  )";
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  ContextPtr ctx = std::make_shared<Context>();
  Result<ParsedUnit> parsed = ParseProgram(source, ctx);
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }
  if (!IsBinaryChainProgram(parsed->program)) {
    std::cerr << "not a binary chain program\n";
    return 1;
  }
  Result<Cfg> grammar = ChainProgramToGrammar(parsed->program);
  if (!grammar.ok()) {
    std::cerr << grammar.status().ToString() << "\n";
    return 1;
  }
  std::cout << "== grammar ==\n" << grammar->ToString();
  std::cout << "self-embedding:    "
            << (IsSelfEmbedding(*grammar) ? "yes" : "no") << "\n";
  std::cout << "strongly regular:  "
            << (IsStronglyRegular(*grammar) ? "yes" : "no") << "\n";

  Result<Program> monadic = MonadicEquivalent(parsed->program);
  if (!monadic.ok()) {
    std::cout << "monadic conversion: " << monadic.status().ToString()
              << "\n";
    return 0;
  }
  Result<Nfa> nfa = StronglyRegularToNfa(*grammar, grammar->start());
  Dfa dfa = Dfa::FromNfa(*nfa,
                         static_cast<uint32_t>(grammar->NumTerminals()))
                .Minimized();
  std::cout << "minimal DFA states: " << dfa.NumStates() << "\n";
  std::cout << "\n== monadic program (Theorem 3.3) ==\n"
            << ToString(*monadic);

  // Cross-check on a random labeled graph.
  Database edb;
  std::vector<PredId> labels;
  for (uint32_t t = 0; t < grammar->NumTerminals(); ++t) {
    labels.push_back(ctx->InternPredicate(grammar->TerminalName(t), 2));
  }
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kRandomSparse;
  spec.nodes = 200;
  spec.avg_degree = 2.5;
  spec.seed = 23;
  MakeLabeledGraph(ctx.get(), &edb, labels, spec);

  Result<EvalResult> binary = Evaluate(parsed->program, edb);
  Result<EvalResult> unary = Evaluate(*monadic, edb);
  if (!binary.ok() || !unary.ok()) {
    std::cerr << "eval failed\n";
    return 1;
  }
  std::set<Value> targets;
  for (const auto& row : binary->answers) targets.insert(row[1]);
  std::set<Value> monadic_targets;
  for (const auto& row : unary->answers) monadic_targets.insert(row[0]);
  std::cout << "\nbinary answers project to " << targets.size()
            << " target nodes; monadic program computes "
            << monadic_targets.size() << " — "
            << (targets == monadic_targets ? "MATCH" : "MISMATCH") << "\n";
  std::cout << "binary  work: " << binary->stats.ToString() << "\n";
  std::cout << "monadic work: " << unary->stats.ToString() << "\n";
  return targets == monadic_targets ? 0 : 1;
}
