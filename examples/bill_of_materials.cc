// Bill-of-materials with a disconnected feasibility check — Section 3.1's
// boolean subqueries in action.
//
//   buildable(P): part P is buildable from base parts, PROVIDED the factory
//   has at least one certified supplier+machine pair. The supplier/machine
//   check shares no variables with the part structure: the optimizer
//   extracts it into a 0-ary boolean rule, and the evaluator retires that
//   rule after its first success (the bottom-up analogue of !).

#include <iostream>

#include "ast/printer.h"
#include "core/optimizer.h"
#include "core/workload.h"
#include "eval/evaluator.h"
#include "parser/parser.h"

int main() {
  using namespace exdl;

  const char* source = R"(
    buildable(P) :- base_part(P), supplier(S, M), machine(M).
    buildable(P) :- subpart(P, Q), buildable(Q), supplier(S, M), machine(M).
    ?- buildable(P).
  )";

  ContextPtr ctx = std::make_shared<Context>();
  Result<ParsedUnit> parsed = ParseProgram(source, ctx);
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }

  Database edb;
  PredId subpart = ctx->InternPredicate("subpart", 2);
  PredId base_part = ctx->InternPredicate("base_part", 1);
  PredId supplier = ctx->InternPredicate("supplier", 2);
  PredId machine = ctx->InternPredicate("machine", 1);
  // Assembly tree: 500 parts; leaves are base parts.
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kTree;
  spec.nodes = 500;
  spec.seed = 11;
  std::vector<Value> parts = MakeGraph(ctx.get(), &edb, subpart, spec);
  for (int i = 250; i < 500; ++i) {
    const Value row[1] = {parts[static_cast<size_t>(i)]};
    edb.AddTuple(base_part, row);
  }
  // A large supplier/machine catalog: expensive to join exhaustively, but
  // one success is all the query needs.
  MakeRandomTuples(ctx.get(), &edb, supplier, 4000, 200, 13);
  MakeRandomTuples(ctx.get(), &edb, machine, 150, 200, 17);

  Result<OptimizedProgram> optimized =
      OptimizeExistential(parsed->program);
  if (!optimized.ok()) {
    std::cerr << optimized.status().ToString() << "\n";
    return 1;
  }
  std::cout << "== optimized program ==\n"
            << ToString(optimized->program) << "\n";

  auto run = [&](const Program& p, const EvalOptions& options,
                 const char* label) {
    Result<EvalResult> r = Evaluate(p, edb, options);
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      exit(1);
    }
    std::cout << label << ": " << r->answers.size()
              << " buildable parts   [" << r->stats.ToString() << "]\n";
  };
  run(parsed->program, EvalOptions(), "original            ");
  run(optimized->program, EvalOptions(), "optimized (with cut)");
  EvalOptions no_cut;
  no_cut.boolean_cut = false;
  run(optimized->program, no_cut, "optimized (no cut)  ");
  return 0;
}
