// QueryService / ProgramCache / DatabaseSnapshot tests (DESIGN.md §12):
// concurrent sessions over one shared EDB snapshot produce answers
// byte-identical to a serial per-file Engine loop for every pool size,
// warm cache hits skip re-parse/re-optimize, snapshot generations
// isolate in-flight readers from fact loads, and the copy-on-write
// storage layer underneath shares payloads until first write.

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/compiled_program.h"
#include "core/engine.h"
#include "service/program_cache.h"
#include "service/query_service.h"
#include "storage/database.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

// The three example programs, inlined so the test does not depend on the
// source tree layout at run time.
constexpr char kTcChain[] = R"(
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
?- tc(n0, Y).
e(n0, n1). e(n1, n2). e(n2, n3). e(n3, n4). e(n4, n5). e(n5, n6).
e(n6, n7). e(n7, n8). e(n8, n9). e(n9, n10). e(n10, n11).
e(n2, n7). e(n5, n1).
)";

constexpr char kReachBoolean[] = R"(
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
?- reach(s, t).
edge(s, m0). edge(m0, m1). edge(m1, m2). edge(m2, t).
edge(s, k0). edge(k0, k1). edge(k1, s).
)";

constexpr char kSameGeneration[] = R"(
sg(X, Y) :- sibling(X, Y).
sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).
?- sg(a, Y).
sibling(p, q). sibling(q, p).
parent(a, p). parent(b, q). parent(c, q).
parent(d, a). parent(e, b). parent(f, c).
)";

std::vector<std::string> AnswerStrings(
    const Context& ctx, const std::vector<std::vector<Value>>& answers) {
  std::vector<std::string> out;
  out.reserve(answers.size());
  for (const auto& row : answers) {
    std::string s;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += ",";
      s += ctx.SymbolName(row[i]);
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// Serial reference: one fresh Engine per source.
std::vector<std::string> EngineAnswers(const std::string& source,
                                       bool optimize = false) {
  Engine engine;
  EXPECT_TRUE(engine.LoadSource(source).ok());
  if (optimize) EXPECT_TRUE(engine.Optimize().ok());
  Result<EvalResult> result = engine.Run();
  EXPECT_TRUE(result.ok());
  return AnswerStrings(*engine.ctx(), result->answers);
}

// ---------------------------------------------------------------------------
// ProgramCache

CompiledProgram::Ptr MustCompile(const std::string& source,
                                 const CompileOptions& options = {}) {
  Result<CompiledProgram::Ptr> compiled =
      CompiledProgram::Compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return *compiled;
}

TEST(ProgramCacheTest, HitOnSameFingerprint) {
  ProgramCache cache(4);
  const std::string key =
      CompiledProgram::CacheKeyMaterial(kTcChain, CompileOptions());
  EXPECT_EQ(cache.Lookup(key), nullptr);
  CompiledProgram::Ptr compiled = MustCompile(kTcChain);
  cache.Insert(key, compiled);
  EXPECT_EQ(cache.Lookup(key), compiled);
  ProgramCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
}

// The cache indexes entries by the full key bytes, not a 64-bit hash of
// them, so two distinct (source, options) pairs can never alias an entry
// even if their CacheKey fingerprints were to collide.
TEST(ProgramCacheTest, DistinctSourcesNeverAlias) {
  ProgramCache cache(4);
  CompiledProgram::Ptr tc = MustCompile(kTcChain);
  CompiledProgram::Ptr reach = MustCompile(kReachBoolean);
  cache.Insert(CompiledProgram::CacheKeyMaterial(kTcChain, CompileOptions()),
               tc);
  cache.Insert(
      CompiledProgram::CacheKeyMaterial(kReachBoolean, CompileOptions()),
      reach);
  EXPECT_EQ(
      cache.Lookup(CompiledProgram::CacheKeyMaterial(kTcChain,
                                                     CompileOptions())),
      tc);
  EXPECT_EQ(
      cache.Lookup(CompiledProgram::CacheKeyMaterial(kReachBoolean,
                                                     CompileOptions())),
      reach);
  // Same source, different semantics: distinct entries too.
  CompileOptions naive;
  naive.seminaive = false;
  EXPECT_EQ(cache.Lookup(CompiledProgram::CacheKeyMaterial(kTcChain, naive)),
            nullptr);
}

TEST(ProgramCacheTest, KeyChangesWithSemanticsAndPipeline) {
  CompileOptions base;
  const uint64_t k0 = CompiledProgram::CacheKey(kTcChain, base);
  EXPECT_EQ(k0, CompiledProgram::CacheKey(kTcChain, base));

  CompileOptions naive = base;
  naive.seminaive = false;
  EXPECT_NE(k0, CompiledProgram::CacheKey(kTcChain, naive));

  CompileOptions no_cut = base;
  no_cut.boolean_cut = false;
  EXPECT_NE(k0, CompiledProgram::CacheKey(kTcChain, no_cut));

  CompileOptions optimized = base;
  optimized.optimize = true;
  EXPECT_NE(k0, CompiledProgram::CacheKey(kTcChain, optimized));

  CompileOptions magic = optimized;
  magic.optimizer.apply_magic = true;
  EXPECT_NE(CompiledProgram::CacheKey(kTcChain, optimized),
            CompiledProgram::CacheKey(kTcChain, magic));

  EXPECT_NE(k0, CompiledProgram::CacheKey(kReachBoolean, base));
}

TEST(ProgramCacheTest, BoundedEviction) {
  ProgramCache cache(2);
  CompiledProgram::Ptr compiled = MustCompile(kTcChain);
  cache.Insert("k1", compiled);
  cache.Insert("k2", compiled);
  EXPECT_NE(cache.Lookup("k1"), nullptr);  // k1 is now most recently used.
  cache.Insert("k3", compiled);            // Evicts k2 (LRU).
  EXPECT_EQ(cache.stats().size, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.Lookup("k2"), nullptr);
  EXPECT_NE(cache.Lookup("k1"), nullptr);
  EXPECT_NE(cache.Lookup("k3"), nullptr);
}

TEST(ProgramCacheTest, ZeroCapacityDisables) {
  ProgramCache cache(0);
  cache.Insert("k1", MustCompile(kTcChain));
  EXPECT_EQ(cache.Lookup("k1"), nullptr);
  EXPECT_EQ(cache.stats().size, 0u);
}

// ---------------------------------------------------------------------------
// Copy-on-write storage underneath the snapshots

TEST(StorageCoWTest, CloneSharesUntilFirstWrite) {
  testing::ParsedProgram parsed = testing::MustParse(kTcChain);
  Database clone = parsed.edb.Clone();
  for (const auto& [pred, rel] : parsed.edb.relations()) {
    ASSERT_NE(clone.Find(pred), nullptr);
    EXPECT_TRUE(rel.SharesStorageWith(*clone.Find(pred)));
  }
  // First write detaches only the written relation; the original keeps
  // its tuples and the other relations stay shared.
  auto it = clone.relations().begin();
  const PredId pred = it->first;
  Relation* rel = clone.FindMutable(pred);
  const size_t before = parsed.edb.Find(pred)->size();
  std::vector<Value> row(rel->arity(), 0);
  rel->Insert(row);
  EXPECT_FALSE(parsed.edb.Find(pred)->SharesStorageWith(*rel));
  EXPECT_EQ(parsed.edb.Find(pred)->size(), before);
}

// Regression (TSan): a copy-on-write detach deep-copies the shared
// payload — indexes map included — while another sharer may be lazily
// building an index into that same map via const GetIndex. The payload
// copy takes index_mu so the two serialize. This is the QueryService
// shape: one worker Inserts a compiled program's facts into its EDB
// clone (detach) while another evaluates over the shared snapshot
// (lazy index build).
TEST(StorageCoWTest, DetachRacesLazyIndexBuild) {
  for (int iter = 0; iter < 100; ++iter) {
    Relation base(2);
    std::vector<Value> row(2);
    for (Value v = 1; v <= 64; ++v) {
      row[0] = v;
      row[1] = v + 1;
      base.Insert(row);
    }
    Relation reader = base;  // Shares the payload.
    Relation writer = base;  // Shares the payload too.
    std::thread builder([&] {
      for (uint32_t c = 0; c < 2; ++c) {
        std::vector<Value> key = {c == 0 ? Value(1) : Value(2)};
        EXPECT_NE(reader.GetIndex({c}).Lookup(key), nullptr);
      }
    });
    // Concurrently detach `writer` from the shared payload (first Insert
    // deep-copies it, racing the lazy builds above without the fix).
    row[0] = 999;
    row[1] = 1000;
    writer.Insert(row);
    builder.join();
    EXPECT_FALSE(writer.SharesStorageWith(base));
    EXPECT_TRUE(reader.SharesStorageWith(base));
    EXPECT_EQ(base.size(), 64u);
    EXPECT_EQ(writer.size(), 65u);
  }
}

// ---------------------------------------------------------------------------
// QueryService

TEST(QueryServiceTest, MatchesSerialEngineAcrossPoolSizes) {
  const std::vector<std::string> sources = {kTcChain, kReachBoolean,
                                            kSameGeneration};
  std::vector<std::vector<std::string>> expected;
  for (const std::string& source : sources) {
    expected.push_back(EngineAnswers(source));
  }
  for (uint32_t workers : {1u, 2u, 4u}) {
    ServiceOptions options;
    options.num_workers = workers;
    QueryService service(options);
    std::vector<QueryRequest> requests;
    // Several rounds of every source: later rounds hit the cache.
    for (int round = 0; round < 4; ++round) {
      for (size_t i = 0; i < sources.size(); ++i) {
        requests.push_back(
            QueryRequest{sources[i], "q" + std::to_string(i)});
      }
    }
    std::vector<QueryService::Ticket> tickets =
        service.SubmitBatch(std::move(requests));
    for (size_t t = 0; t < tickets.size(); ++t) {
      QueryResponse response = service.Await(tickets[t]);
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      EXPECT_TRUE(response.result.termination.ok());
      EXPECT_EQ(AnswerStrings(*service.ctx(), response.result.answers),
                expected[t % sources.size()])
          << "workers=" << workers << " ticket=" << t;
    }
    ProgramCache::Stats stats = service.cache_stats();
    EXPECT_EQ(stats.misses, sources.size());
    EXPECT_EQ(stats.hits, tickets.size() - sources.size());
  }
}

TEST(QueryServiceTest, RawAnswersIdenticalAcrossPoolSizes) {
  // The compile turnstile makes interning order — and therefore the raw
  // Value ids in every answer — independent of the worker count.
  auto run = [](uint32_t workers) {
    ServiceOptions options;
    options.num_workers = workers;
    QueryService service(options);
    std::vector<QueryRequest> requests;
    for (int round = 0; round < 3; ++round) {
      requests.push_back(QueryRequest{kSameGeneration, "sg"});
      requests.push_back(QueryRequest{kTcChain, "tc"});
      requests.push_back(QueryRequest{kReachBoolean, "reach"});
    }
    std::vector<std::vector<std::vector<Value>>> answers;
    for (QueryService::Ticket ticket :
         service.SubmitBatch(std::move(requests))) {
      QueryResponse response = service.Await(ticket);
      EXPECT_TRUE(response.status.ok());
      answers.push_back(response.result.answers);
    }
    return answers;
  };
  const auto serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(4), serial);
}

TEST(QueryServiceTest, WarmCacheSkipsParseAndOptimize) {
  ServiceOptions options;
  options.num_workers = 2;
  options.compile.optimize = true;
  options.collect_telemetry = true;
  QueryService service(options);

  QueryResponse cold = service.Await(service.Submit({kReachBoolean, "cold"}));
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  EXPECT_FALSE(cold.cache_hit);
  ASSERT_NE(cold.program, nullptr);
  EXPECT_TRUE(cold.program->optimized());
  // The cold compile ran the optimizer: its spans are in the document.
  EXPECT_NE(cold.telemetry_json.find("optimize >"), std::string::npos);

  QueryResponse warm = service.Await(service.Submit({kReachBoolean, "warm"}));
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.cache_hit);
  // Same shared artifact, not a recompiled one.
  EXPECT_EQ(warm.program.get(), cold.program.get());
  // No re-parse / re-optimize on the warm path: no optimizer spans.
  EXPECT_EQ(warm.telemetry_json.find("optimize >"), std::string::npos);
  EXPECT_EQ(AnswerStrings(*service.ctx(), warm.result.answers),
            AnswerStrings(*service.ctx(), cold.result.answers));
  EXPECT_GE(service.cache_stats().hits, 1u);

  // The merged service document reports the hit.
  const std::string metrics = service.MetricsJson();
  EXPECT_NE(metrics.find("service.cache.hit"), std::string::npos);
  EXPECT_NE(metrics.find("\"service\""), std::string::npos);
}

TEST(QueryServiceTest, SnapshotGenerationsIsolateFactLoads) {
  const std::string rules = "tc(X, Y) :- e(X, Y).\n"
                            "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
                            "?- tc(a, Y).\n";
  QueryService service;
  EXPECT_FALSE(service.snapshot().valid());

  ASSERT_TRUE(service.LoadFacts("e(a, b). e(b, c).").ok());
  EXPECT_EQ(service.snapshot().generation(), 1u);
  QueryResponse gen1 = service.Await(service.Submit({rules, "gen1"}));
  ASSERT_TRUE(gen1.status.ok()) << gen1.status.ToString();
  EXPECT_EQ(gen1.snapshot_generation, 1u);
  EXPECT_EQ(AnswerStrings(*service.ctx(), gen1.result.answers),
            (std::vector<std::string>{"b", "c"}));

  ASSERT_TRUE(service.LoadFacts("e(c, d).").ok());
  EXPECT_EQ(service.snapshot().generation(), 2u);
  QueryResponse gen2 = service.Await(service.Submit({rules, "gen2"}));
  ASSERT_TRUE(gen2.status.ok());
  EXPECT_EQ(gen2.snapshot_generation, 2u);
  EXPECT_EQ(AnswerStrings(*service.ctx(), gen2.result.answers),
            (std::vector<std::string>{"b", "c", "d"}));

  // Rules are not facts.
  EXPECT_FALSE(service.LoadFacts("p(X) :- e(X, Y).").ok());
}

TEST(QueryServiceTest, SharedSnapshotStress) {
  // Many sessions over one shared snapshot, program facts on top.
  std::string facts;
  for (int i = 0; i < 40; ++i) {
    facts += "e(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ").\n";
  }
  const std::string rules = "tc(X, Y) :- e(X, Y).\n"
                            "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
                            "?- tc(n0, Y).\n";
  const std::vector<std::string> expected =
      EngineAnswers(rules + facts);

  ServiceOptions options;
  options.num_workers = 4;
  QueryService service(options);
  ASSERT_TRUE(service.LoadFacts(facts).ok());
  std::vector<QueryRequest> requests;
  for (int i = 0; i < 24; ++i) {
    requests.push_back(QueryRequest{rules, "stress" + std::to_string(i)});
  }
  for (QueryService::Ticket ticket :
       service.SubmitBatch(std::move(requests))) {
    QueryResponse response = service.Await(ticket);
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(AnswerStrings(*service.ctx(), response.result.answers),
              expected);
  }
  // The published snapshot itself was never written through.
  EXPECT_EQ(service.snapshot().generation(), 1u);
  EXPECT_EQ(service.snapshot().db().TotalTuples(), 40u);
}

TEST(QueryServiceTest, PerSessionBudget) {
  ServiceOptions options;
  options.num_workers = 2;
  options.eval.budget.max_tuples = 5;  // Trips on the 40-edge closure.
  QueryService service(options);
  QueryResponse response =
      service.Await(service.Submit({kTcChain, "budgeted"}));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.result.termination.code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(response.result.stats.budget_tripped, BudgetKind::kTuples);
}

TEST(QueryServiceTest, CompileErrorsAreIsolated) {
  QueryService service;
  std::vector<QueryService::Ticket> tickets = service.SubmitBatch(
      {QueryRequest{"p(X :- q(X).", "bad"}, QueryRequest{kTcChain, "good"}});
  QueryResponse bad = service.Await(tickets[0]);
  EXPECT_FALSE(bad.status.ok());
  QueryResponse good = service.Await(tickets[1]);
  EXPECT_TRUE(good.status.ok()) << good.status.ToString();
  EXPECT_EQ(AnswerStrings(*service.ctx(), good.result.answers),
            EngineAnswers(kTcChain));
}

TEST(QueryServiceTest, UnknownTicketRejected) {
  QueryService service;
  QueryResponse response = service.Await(12345);
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  // Double-await of a consumed ticket is rejected too.
  QueryService::Ticket ticket = service.Submit({kTcChain, "once"});
  EXPECT_TRUE(service.Await(ticket).status.ok());
  EXPECT_EQ(service.Await(ticket).status.code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// API v2 pieces on their own

TEST(CompiledProgramTest, FingerprintBindsSemantics) {
  testing::ParsedProgram parsed = testing::MustParse(kTcChain);
  EvalOptions seminaive;
  EvalOptions naive;
  naive.seminaive = false;
  EXPECT_NE(CompiledProgram::Fingerprint(parsed.program, seminaive),
            CompiledProgram::Fingerprint(parsed.program, naive));
}

TEST(SessionTest, ManySessionsShareOneCompiledProgram) {
  CompileOptions options;
  options.optimize = true;
  CompiledProgram::Ptr compiled = MustCompile(kSameGeneration, options);
  const std::vector<std::string> expected =
      EngineAnswers(kSameGeneration, /*optimize=*/true);
  for (int i = 0; i < 3; ++i) {
    Session session;
    session.Bind(compiled);
    Result<EvalResult> result = session.Run(compiled->facts().Clone());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(AnswerStrings(*compiled->context(), result->answers), expected);
    EXPECT_TRUE(session.summary().has_run);
  }
}

}  // namespace
}  // namespace exdl
