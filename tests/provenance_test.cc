// Derivation trees (Section 1.1): "For each fact that belongs to the
// answer, there exists a finite derivation tree ... the leaves are base
// facts, and each internal node is labeled by a fact, and by a rule which
// generates this fact from the facts labeling its children."

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

using ::exdl::testing::MustParse;

TEST(ProvenanceTest, RecordsRuleAndChildren) {
  auto parsed = MustParse(
      "e(n0, n1). e(n1, n2).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  EvalOptions options;
  options.record_provenance = true;
  EvalResult result = testing::MustEval(parsed.program, parsed.edb, options);
  PredId tc = parsed.program.query()->pred;
  // Every derived tc tuple has provenance.
  const Relation* rel = result.db.Find(tc);
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->size(), 3u);
  for (uint32_t r = 0; r < rel->size(); ++r) {
    auto it = result.provenance.find(TupleRef{tc, r});
    ASSERT_NE(it, result.provenance.end());
    EXPECT_GE(it->second.rule_index, 0);
    EXPECT_FALSE(it->second.children.empty());
  }
}

TEST(ProvenanceTest, InputFactsHaveNoProvenance) {
  auto parsed = MustParse(
      "e(n0, n1).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "?- tc(X,Y).\n");
  EvalOptions options;
  options.record_provenance = true;
  EvalResult result = testing::MustEval(parsed.program, parsed.edb, options);
  PredId e = parsed.program.rules()[0].body[0].pred;
  EXPECT_EQ(result.provenance.count(TupleRef{e, 0}), 0u);
}

TEST(ProvenanceTest, ExplainRendersFullTree) {
  auto parsed = MustParse(
      "e(n0, n1). e(n1, n2). e(n2, n3).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  EvalOptions options;
  options.record_provenance = true;
  EvalResult result = testing::MustEval(parsed.program, parsed.edb, options);
  PredId tc = parsed.program.query()->pred;
  Context& ctx = *parsed.ctx;
  std::vector<Value> target = {ctx.InternSymbol("n0"),
                               ctx.InternSymbol("n3")};
  Result<std::string> explained =
      ExplainFact(parsed.program, result, tc, target);
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  // The tree bottoms out in the three input edges.
  EXPECT_NE(explained->find("tc(n0, n3)"), std::string::npos);
  EXPECT_NE(explained->find("e(n0, n1)   [input fact]"), std::string::npos);
  EXPECT_NE(explained->find("e(n2, n3)   [input fact]"), std::string::npos);
  // Derivation depth: the recursive rule applied twice, exit rule once.
  EXPECT_NE(explained->find("[rule 1]"), std::string::npos);
  EXPECT_NE(explained->find("[rule 0]"), std::string::npos);
}

TEST(ProvenanceTest, ExplainMissingFactIsNotFound) {
  auto parsed = MustParse(
      "e(n0, n1).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "?- tc(X,Y).\n");
  EvalOptions options;
  options.record_provenance = true;
  EvalResult result = testing::MustEval(parsed.program, parsed.edb, options);
  PredId tc = parsed.program.query()->pred;
  Context& ctx = *parsed.ctx;
  std::vector<Value> absent = {ctx.InternSymbol("n1"),
                               ctx.InternSymbol("n0")};
  EXPECT_FALSE(ExplainFact(parsed.program, result, tc, absent).ok());
}

TEST(ProvenanceTest, OffByDefault) {
  auto parsed = MustParse(
      "e(n0, n1).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "?- tc(X,Y).\n");
  EvalResult result = testing::MustEval(parsed.program, parsed.edb);
  EXPECT_TRUE(result.provenance.empty());
}

TEST(ProvenanceTest, NegationChildrenAreOnlyPositive) {
  auto parsed = MustParse(
      "a(n1). a(n2). b(n2).\n"
      "diff(X) :- a(X), not b(X).\n"
      "?- diff(X).\n");
  EvalOptions options;
  options.record_provenance = true;
  EvalResult result = testing::MustEval(parsed.program, parsed.edb, options);
  PredId diff = parsed.program.query()->pred;
  auto it = result.provenance.find(TupleRef{diff, 0});
  ASSERT_NE(it, result.provenance.end());
  // Only the positive a-literal contributes a child.
  EXPECT_EQ(it->second.children.size(), 1u);
}

TEST(ProvenanceTest, DerivationTreeIsWellFounded) {
  // Children always point at earlier-inserted tuples; rendering cannot
  // loop even on cyclic data.
  auto parsed = MustParse(
      "e(n0, n1). e(n1, n0).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  EvalOptions options;
  options.record_provenance = true;
  EvalResult result = testing::MustEval(parsed.program, parsed.edb, options);
  PredId tc = parsed.program.query()->pred;
  const Relation* rel = result.db.Find(tc);
  ASSERT_NE(rel, nullptr);
  for (uint32_t r = 0; r < rel->size(); ++r) {
    Result<std::string> explained =
        ExplainTuple(parsed.program, result, TupleRef{tc, r});
    ASSERT_TRUE(explained.ok());
    EXPECT_NE(explained->find("[input fact]"), std::string::npos);
  }
}

}  // namespace
}  // namespace exdl
