// Shared helpers for the test suite: parse-or-die wrappers, answer
// formatting, and a seeded random-program generator for property tests.

#ifndef EXDL_TESTS_TESTING_TEST_UTIL_H_
#define EXDL_TESTS_TESTING_TEST_UTIL_H_

#include <string>
#include <vector>

#include "ast/program.h"
#include "eval/evaluator.h"
#include "parser/parser.h"
#include "storage/database.h"

namespace exdl::testing {

/// Parses `source` (rules + facts + query), aborting the test on failure.
struct ParsedProgram {
  ContextPtr ctx;
  Program program;
  Database edb;
};
ParsedProgram MustParse(const std::string& source);

/// Parses into an existing context.
ParsedProgram MustParseWith(ContextPtr ctx, const std::string& source);

/// Evaluates and returns the answers as sorted "a,b" strings.
std::vector<std::string> EvalAnswers(const Program& program,
                                     const Database& edb,
                                     const EvalOptions& options = {});

/// Full EvalResult, aborting on error.
EvalResult MustEval(const Program& program, const Database& edb,
                    const EvalOptions& options = {});

/// Generates a random positive Datalog program over a small schema.
/// Guaranteed safe (head variables bound by the body) and query-bearing.
/// Same seed -> same program.
struct RandomProgramOptions {
  int num_edb = 3;          ///< Base predicates e0..e_{k-1} (arity 1-2).
  int num_idb = 3;          ///< Derived predicates p0..p_{k-1} (arity 1-3).
  int rules_per_idb = 2;
  int max_body = 3;
  uint64_t seed = 1;
};
Program RandomProgram(ContextPtr ctx, const RandomProgramOptions& options);

/// Generates a random binary chain program (for grammar cross-checks).
/// Rules follow the chain shape of Section 1.1; the query is the first
/// derived predicate. Same seed -> same program.
struct RandomChainOptions {
  int num_nonterminals = 3;
  int num_terminals = 2;
  int rules_per_nonterminal = 2;
  int max_body = 3;
  uint64_t seed = 1;
};
Program RandomChainProgram(ContextPtr ctx, const RandomChainOptions& options);

/// Generates a random *stratified* program: layered derived predicates;
/// bodies draw positive literals from any layer and negated literals only
/// from strictly lower layers. Safe by construction.
struct RandomStratifiedOptions {
  int layers = 3;
  int preds_per_layer = 2;
  int rules_per_pred = 2;
  uint64_t seed = 1;
};
Program RandomStratifiedProgram(ContextPtr ctx,
                                const RandomStratifiedOptions& options);

}  // namespace exdl::testing

#endif  // EXDL_TESTS_TESTING_TEST_UTIL_H_
