#include "testing/test_util.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "util/rng.h"

namespace exdl::testing {

ParsedProgram MustParseWith(ContextPtr ctx, const std::string& source) {
  Result<ParsedUnit> parsed = ParseProgram(source, ctx);
  if (!parsed.ok()) {
    std::cerr << "MustParse failed: " << parsed.status().ToString()
              << "\nsource:\n"
              << source << "\n";
    std::abort();
  }
  ParsedProgram out{ctx, std::move(parsed->program), Database()};
  for (const Atom& fact : parsed->facts) {
    Status s = out.edb.AddFact(fact);
    if (!s.ok()) {
      std::cerr << "MustParse fact failed: " << s.ToString() << "\n";
      std::abort();
    }
  }
  return out;
}

ParsedProgram MustParse(const std::string& source) {
  return MustParseWith(std::make_shared<Context>(), source);
}

EvalResult MustEval(const Program& program, const Database& edb,
                    const EvalOptions& options) {
  Result<EvalResult> result = Evaluate(program, edb, options);
  if (!result.ok()) {
    std::cerr << "MustEval failed: " << result.status().ToString() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

std::vector<std::string> EvalAnswers(const Program& program,
                                     const Database& edb,
                                     const EvalOptions& options) {
  EvalResult result = MustEval(program, edb, options);
  const Context& ctx = program.ctx();
  std::vector<std::string> out;
  for (const std::vector<Value>& answer : result.answers) {
    std::string s;
    for (size_t i = 0; i < answer.size(); ++i) {
      if (i > 0) s += ",";
      s += ctx.SymbolName(answer[i]);
    }
    out.push_back(std::move(s));
  }
  return out;
}

Program RandomProgram(ContextPtr ctx, const RandomProgramOptions& options) {
  Rng rng(options.seed);
  Context& c = *ctx;

  std::vector<PredId> edb;
  for (int i = 0; i < options.num_edb; ++i) {
    uint32_t arity = 1 + static_cast<uint32_t>(rng.Below(2));
    edb.push_back(c.InternPredicate("e" + std::to_string(i), arity));
  }
  std::vector<PredId> idb;
  for (int i = 0; i < options.num_idb; ++i) {
    uint32_t arity = 1 + static_cast<uint32_t>(rng.Below(3));
    idb.push_back(c.InternPredicate("p" + std::to_string(i), arity));
  }
  std::vector<SymbolId> var_pool;
  for (int i = 0; i < 6; ++i) {
    var_pool.push_back(c.InternSymbol("V" + std::to_string(i)));
  }
  std::vector<SymbolId> const_pool;
  for (int i = 0; i < 3; ++i) {
    const_pool.push_back(c.InternSymbol("c" + std::to_string(i)));
  }

  Program program(ctx);
  auto random_term = [&]() {
    if (rng.Chance(0.08)) {
      return Term::Const(const_pool[rng.Below(const_pool.size())]);
    }
    return Term::Var(var_pool[rng.Below(var_pool.size())]);
  };
  for (PredId head_pred : idb) {
    for (int r = 0; r < options.rules_per_idb; ++r) {
      Rule rule;
      uint32_t head_arity = c.predicate(head_pred).arity;
      std::vector<SymbolId> head_vars;
      for (uint32_t i = 0; i < head_arity; ++i) {
        SymbolId v = var_pool[rng.Below(3)];  // small pool -> shared vars
        rule.head.args.push_back(Term::Var(v));
        head_vars.push_back(v);
      }
      rule.head.pred = head_pred;
      int body_size =
          1 + static_cast<int>(rng.Below(
                  static_cast<uint64_t>(options.max_body)));
      for (int b = 0; b < body_size; ++b) {
        // Mostly EDB literals; recursion with probability ~1/3.
        PredId pred = rng.Chance(0.33) ? idb[rng.Below(idb.size())]
                                       : edb[rng.Below(edb.size())];
        Atom lit;
        lit.pred = pred;
        uint32_t arity = c.predicate(pred).arity;
        for (uint32_t i = 0; i < arity; ++i) lit.args.push_back(random_term());
        rule.body.push_back(std::move(lit));
      }
      // Enforce safety: bind stray head variables with an EDB literal.
      std::vector<SymbolId> bound = rule.BodyVars();
      for (SymbolId v : head_vars) {
        if (std::find(bound.begin(), bound.end(), v) != bound.end()) {
          continue;
        }
        PredId pred = edb[rng.Below(edb.size())];
        Atom lit;
        lit.pred = pred;
        lit.args.push_back(Term::Var(v));
        for (uint32_t i = 1; i < c.predicate(pred).arity; ++i) {
          lit.args.push_back(
              Term::Var(var_pool[rng.Below(var_pool.size())]));
        }
        rule.body.push_back(std::move(lit));
        bound.push_back(v);
      }
      program.AddRule(std::move(rule));
    }
  }
  // Query wrapper: the first argument of p0 is needed, the rest are fresh
  // (existential), exercising the adornment machinery.
  PredId query_pred = c.InternPredicate("query", 1);
  Rule wrapper;
  SymbolId qv = c.InternSymbol("Q");
  wrapper.head = Atom(query_pred, {Term::Var(qv)});
  Atom body_lit;
  body_lit.pred = idb[0];
  body_lit.args.push_back(Term::Var(qv));
  for (uint32_t i = 1; i < c.predicate(idb[0]).arity; ++i) {
    body_lit.args.push_back(Term::Var(c.FreshSymbol("F")));
  }
  wrapper.body.push_back(std::move(body_lit));
  program.AddRule(std::move(wrapper));
  program.SetQuery(Atom(query_pred, {Term::Var(qv)}));
  return program;
}

}  // namespace exdl::testing

namespace exdl::testing {

Program RandomChainProgram(ContextPtr ctx,
                           const RandomChainOptions& options) {
  Rng rng(options.seed);
  Context& c = *ctx;
  std::vector<PredId> nts;
  for (int i = 0; i < options.num_nonterminals; ++i) {
    nts.push_back(c.InternPredicate("nt" + std::to_string(i), 2));
  }
  std::vector<PredId> ts;
  for (int i = 0; i < options.num_terminals; ++i) {
    ts.push_back(c.InternPredicate("t" + std::to_string(i), 2));
  }
  Program program(ctx);
  for (int n = 0; n < options.num_nonterminals; ++n) {
    for (int r = 0; r < options.rules_per_nonterminal; ++r) {
      int body =
          1 + static_cast<int>(rng.Below(
                  static_cast<uint64_t>(options.max_body)));
      Rule rule;
      SymbolId x = c.InternSymbol("X");
      SymbolId y = c.InternSymbol("Y");
      rule.head = Atom(nts[static_cast<size_t>(n)],
                       {Term::Var(x), Term::Var(y)});
      SymbolId current = x;
      for (int i = 0; i < body; ++i) {
        SymbolId next =
            i + 1 == body ? y : c.InternSymbol("Z" + std::to_string(i));
        // Mostly terminals so languages stay finite-ish at small depth;
        // ~30% nonterminals for recursion.
        PredId pred = rng.Chance(0.3)
                          ? nts[rng.Below(nts.size())]
                          : ts[rng.Below(ts.size())];
        rule.body.push_back(
            Atom(pred, {Term::Var(current), Term::Var(next)}));
        current = next;
      }
      program.AddRule(std::move(rule));
    }
  }
  program.SetQuery(Atom(nts[0], {Term::Var(c.InternSymbol("X")),
                                 Term::Var(c.InternSymbol("Y"))}));
  return program;
}

Program RandomStratifiedProgram(ContextPtr ctx,
                                const RandomStratifiedOptions& options) {
  Rng rng(options.seed);
  Context& c = *ctx;
  std::vector<PredId> edb = {c.InternPredicate("e0", 1),
                             c.InternPredicate("e1", 2),
                             c.InternPredicate("e2", 2)};
  // layer -> predicates (all unary or binary, random).
  std::vector<std::vector<PredId>> layers;
  for (int l = 0; l < options.layers; ++l) {
    layers.emplace_back();
    for (int p = 0; p < options.preds_per_layer; ++p) {
      uint32_t arity = 1 + static_cast<uint32_t>(rng.Below(2));
      layers.back().push_back(c.InternPredicate(
          "s" + std::to_string(l) + "_" + std::to_string(p), arity));
    }
  }
  std::vector<SymbolId> vars;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(c.InternSymbol("V" + std::to_string(i)));
  }
  Program program(ctx);
  for (int l = 0; l < options.layers; ++l) {
    for (PredId head : layers[static_cast<size_t>(l)]) {
      for (int r = 0; r < options.rules_per_pred; ++r) {
        Rule rule;
        uint32_t arity = c.predicate(head).arity;
        for (uint32_t i = 0; i < arity; ++i) {
          rule.head.args.push_back(Term::Var(vars[i]));
        }
        rule.head.pred = head;
        // One positive generator literal binding everything, plus 0-2
        // extra literals; negated ones come from strictly lower layers.
        PredId gen = edb[1 + rng.Below(2)];  // binary EDB
        rule.body.push_back(
            Atom(gen, {Term::Var(vars[0]), Term::Var(vars[1])}));
        int extras = static_cast<int>(rng.Below(3));
        for (int x = 0; x < extras; ++x) {
          bool negate = l > 0 && rng.Chance(0.4);
          PredId pred;
          if (negate) {
            const std::vector<PredId>& lower =
                layers[rng.Below(static_cast<uint64_t>(l))];
            pred = lower[rng.Below(lower.size())];
          } else if (rng.Chance(0.5) && l > 0) {
            const std::vector<PredId>& lower =
                layers[rng.Below(static_cast<uint64_t>(l))];
            pred = lower[rng.Below(lower.size())];
          } else {
            pred = edb[rng.Below(edb.size())];
          }
          Atom lit;
          lit.pred = pred;
          lit.negated = negate;
          uint32_t a = c.predicate(pred).arity;
          for (uint32_t i = 0; i < a; ++i) {
            // Only already-bound vars (V0/V1), keeping negation safe.
            lit.args.push_back(Term::Var(vars[rng.Below(2)]));
          }
          rule.body.push_back(std::move(lit));
        }
        program.AddRule(std::move(rule));
      }
    }
  }
  PredId query = c.InternPredicate("query", 1);
  Rule wrapper;
  SymbolId q = c.InternSymbol("Q");
  wrapper.head = Atom(query, {Term::Var(q)});
  PredId top = layers.back()[0];
  Atom lit;
  lit.pred = top;
  lit.args.push_back(Term::Var(q));
  for (uint32_t i = 1; i < c.predicate(top).arity; ++i) {
    lit.args.push_back(Term::Var(c.FreshSymbol("F")));
  }
  wrapper.body.push_back(std::move(lit));
  program.AddRule(std::move(wrapper));
  program.SetQuery(Atom(query, {Term::Var(q)}));
  return program;
}

}  // namespace exdl::testing
