// Edge cases and failure injection across the stack: caps, degenerate
// programs, wide arities, adversarial inputs.

#include <string>

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "equiv/optimistic.h"
#include "equiv/summary_closure.h"
#include "eval/evaluator.h"
#include "parser/parser.h"
#include "testing/test_util.h"
#include "util/rng.h"

namespace exdl {
namespace {

using ::exdl::testing::EvalAnswers;
using ::exdl::testing::MustParse;

TEST(EdgeCaseTest, EmptyProgramWithQuery) {
  auto parsed = MustParse("?- ghost(X).\n");
  EvalResult result = testing::MustEval(parsed.program, parsed.edb);
  EXPECT_TRUE(result.answers.empty());
  // The optimizer handles a query over an undefined predicate.
  Result<OptimizedProgram> optimized = OptimizeExistential(parsed.program);
  ASSERT_TRUE(optimized.ok());
}

TEST(EdgeCaseTest, SelfLoopSingleNode) {
  auto parsed = MustParse(
      "e(n0, n0).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            (std::vector<std::string>{"n0,n0"}));
}

TEST(EdgeCaseTest, WideArityRelation) {
  // 8-ary predicate with an 8-variable join.
  std::string rule = "w(A,B,C,D,E,F,G,H) :- "
                     "p(A,B,C,D,E,F,G,H), q(H,G,F,E,D,C,B,A).\n?- "
                     "w(A,B,C,D,E,F,G,H).\n";
  std::string facts =
      "p(a,b,c,d,e,f,g,h). q(h,g,f,e,d,c,b,a). q(a,b,c,d,e,f,g,h).\n";
  auto parsed = MustParse(facts + rule);
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb).size(), 1u);
}

TEST(EdgeCaseTest, LongBodyRule) {
  std::string body;
  std::string facts;
  for (int i = 0; i < 10; ++i) {
    if (i > 0) body += ", ";
    body += "e" + std::to_string(i) + "(X" + std::to_string(i) + ", X" +
            std::to_string(i + 1) + ")";
    facts += "e" + std::to_string(i) + "(n" + std::to_string(i) + ", n" +
             std::to_string(i + 1) + ").\n";
  }
  auto parsed =
      MustParse(facts + "path(X0, X10) :- " + body + ".\n?- path(A, B).\n");
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            (std::vector<std::string>{"n0,n10"}));
}

TEST(EdgeCaseTest, DuplicateLiteralsInBody) {
  auto parsed = MustParse(
      "e(n0, n1).\n"
      "p(X) :- e(X, Y), e(X, Y), e(X, Y).\n"
      "?- p(X).\n");
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb).size(), 1u);
}

TEST(EdgeCaseTest, HeadConstantOnly) {
  auto parsed = MustParse(
      "e(n0).\n"
      "status(ok) :- e(X).\n"
      "?- status(S).\n");
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            (std::vector<std::string>{"ok"}));
  // Single-tuple head: the cut retires the rule after the first witness.
  EvalResult result = testing::MustEval(parsed.program, parsed.edb);
  EXPECT_EQ(result.stats.rules_retired, 1u);
}

TEST(EdgeCaseTest, QueryIsGroundFact) {
  auto parsed = MustParse(
      "e(n0, n1).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "?- tc(n0, n1).\n");
  EvalResult result = testing::MustEval(parsed.program, parsed.edb);
  EXPECT_TRUE(result.ground_query_true);
  EXPECT_EQ(result.answers.size(), 1u);  // the empty binding
}

TEST(EdgeCaseTest, SummaryClosureCapIsHonored) {
  // Wide mutually recursive program; a tiny cap flags incompleteness
  // instead of blowing up.
  std::string source;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      source += "m" + std::to_string(i) + "(A,B,C,D) :- m" +
                std::to_string(j) + "(B,A,D,C), e(A,B).\n";
    }
    source += "m" + std::to_string(i) + "(A,B,C,D) :- g(A,B,C,D).\n";
  }
  source += "?- m0(A,B,C,D).\n";
  auto parsed = MustParse(source);
  SummaryClosureOptions tiny;
  tiny.max_summaries_per_occurrence = 2;
  Result<SummaryAnalysis> analysis =
      SummaryAnalysis::Build(parsed.program, tiny);
  ASSERT_TRUE(analysis.ok());
  EXPECT_FALSE(analysis->complete());
  EXPECT_TRUE(analysis->DeletableRules().empty());
}

TEST(EdgeCaseTest, OptimisticCapSurfacesAsError) {
  // Deleting the p-rule seeds the optimistic chase from p(x); the big
  // rule's unbound head variables then range over the (constant-rich)
  // domain, blowing past a tiny fact cap.
  auto parsed = MustParse(
      "big(X, Y, Z) :- p(X), d(Y), d(Z).\n"
      "q(X) :- big(X, Y, Z).\n"
      "p(X) :- e(X, c1, c2, c3, c4).\n"
      "?- q(X).\n");
  OptimisticOptions tiny;
  tiny.max_facts = 3;
  Result<bool> result =
      DeletableUnderOptimisticUqe(parsed.program, 2, tiny);
  EXPECT_FALSE(result.ok());
}

TEST(EdgeCaseTest, ParserSurvivesGarbageInputs) {
  // None of these should crash; all should produce a clean error.
  const char* bad[] = {
      "p(", ")", "p(X) :-", ":- q(X).", "p(X) q(X).", "p((X)).",
      "p(X,).", "@nd(X).", "p@(X).", "?-", "p(X) :- .", "....",
      "p(X) :- q(X),.",
  };
  for (const char* source : bad) {
    ContextPtr ctx = std::make_shared<Context>();
    Result<ParsedUnit> parsed = ParseProgram(source, ctx);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << source;
  }
}

TEST(EdgeCaseTest, ParserFuzzDoesNotCrash) {
  // Random token soup: parse must always return (ok or error), never hang
  // or crash.
  const char* tokens[] = {"p",  "(",  ")", ",",  ".",  ":-", "?-",
                          "X",  "42", "_", "@",  "nd", "not", "q"};
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    std::string source;
    int len = 1 + static_cast<int>(rng.Below(20));
    for (int i = 0; i < len; ++i) {
      source += tokens[rng.Below(std::size(tokens))];
      source += " ";
    }
    ContextPtr ctx = std::make_shared<Context>();
    (void)ParseProgram(source, ctx);  // outcome irrelevant; must terminate
  }
}

TEST(EdgeCaseTest, ManyConstantsInterning) {
  Context ctx;
  for (int i = 0; i < 50000; ++i) {
    ctx.InternSymbol("sym" + std::to_string(i));
  }
  EXPECT_EQ(ctx.NumSymbols(), 50000u);
  EXPECT_EQ(*ctx.FindSymbol("sym49999"), 49999u);
}

TEST(EdgeCaseTest, DeepRecursionChain) {
  // 3000-edge chain: recursion depth equals chain length; the engine is
  // iterative, so no stack issues.
  std::string facts;
  for (int i = 0; i < 3000; ++i) {
    facts += "e(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
             ").\n";
  }
  auto parsed = MustParse(
      facts +
      "r(X) :- first(X).\n"
      "r(Y) :- r(X), e(X, Y).\n"
      "first(n0).\n"
      "?- r(X).\n");
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb).size(), 3001u);
}

TEST(EdgeCaseTest, OptimizerOnRulelessQueryOverFacts) {
  auto parsed = MustParse("e(n1, n2).\n?- e(X, Y).\n");
  Result<OptimizedProgram> optimized = OptimizeExistential(parsed.program);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(EvalAnswers(optimized->program, parsed.edb).size(), 1u);
}

TEST(EdgeCaseTest, MaxDeletionsRespected) {
  auto parsed = MustParse(
      "q(X) :- a(X, Y).\n"
      "q(X) :- a(X, Z), b(Z).\n"
      "q(X) :- a(X, Z), c(Z).\n"
      "q(X) :- a(X, Z), d(Z).\n"
      "?- q(X).\n");
  DeletionOptions options;
  options.max_deletions = 1;
  options.cleanup = false;
  Result<DeletionResult> result =
      DeleteRedundantRules(parsed.program, options);
  ASSERT_TRUE(result.ok());
  // Subsumption removes all three in one pass (it is one "deletion step"),
  // or the summary path stops after one; either way the cap bounds the
  // loop, not the batch.
  EXPECT_LE(result->deleted_by_summary, 1u);
}

TEST(EdgeCaseTest, ZeroAryQueriesWork) {
  auto parsed = MustParse(
      "e(n1).\n"
      "yes :- e(X).\n"
      "?- yes.\n");
  EvalResult result = testing::MustEval(parsed.program, parsed.edb);
  EXPECT_TRUE(result.ground_query_true);
}

}  // namespace
}  // namespace exdl
