// Parallel fixpoint rounds must be a pure performance knob: with
// num_threads > 1 the engine partitions each rule variant's outer row
// range but merges the per-worker derivation buffers in partition order,
// so every relation (contents AND row order), every answer, and the
// ground-query verdict are byte-identical to serial evaluation. These
// tests pin that down on the E1 (projection / transitive closure) and E4
// (cascade) workload shapes plus negation and boolean-cut programs.

#include <gtest/gtest.h>

#include "core/workload.h"
#include "eval/evaluator.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

/// Asserts the two result databases are byte-identical: same predicates,
/// same sizes, same tuples in the same row-id order.
void ExpectIdenticalDatabases(const Database& serial,
                              const Database& parallel) {
  ASSERT_EQ(serial.relations().size(), parallel.relations().size());
  for (const auto& [pred, rel] : serial.relations()) {
    const Relation* other = parallel.Find(pred);
    ASSERT_NE(other, nullptr) << "missing predicate " << pred;
    ASSERT_EQ(rel.size(), other->size()) << "size mismatch for " << pred;
    for (size_t r = 0; r < rel.size(); ++r) {
      std::span<const Value> a = rel.view().Scan(r);
      std::span<const Value> b = other->view().Scan(r);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i])
            << "pred " << pred << " row " << r << " col " << i;
      }
    }
  }
}

void ExpectParallelMatchesSerial(const Program& program, const Database& edb,
                                 EvalOptions base = {}) {
  EvalOptions serial_options = base;
  serial_options.num_threads = 1;
  EvalResult serial = testing::MustEval(program, edb, serial_options);

  for (uint32_t threads : {2u, 4u}) {
    EvalOptions parallel_options = base;
    parallel_options.num_threads = threads;
    EvalResult parallel = testing::MustEval(program, edb, parallel_options);
    ExpectIdenticalDatabases(serial.db, parallel.db);
    EXPECT_EQ(serial.answers, parallel.answers) << threads << " threads";
    EXPECT_EQ(serial.ground_query_true, parallel.ground_query_true);
    // Work counters that are independent of the partitioning must agree
    // too (firings may differ only under first-witness cuts, none here).
    EXPECT_EQ(serial.stats.tuples_inserted, parallel.stats.tuples_inserted);
    EXPECT_EQ(serial.stats.rounds, parallel.stats.rounds);
  }
}

TEST(ParallelEvalTest, E1TransitiveClosureChain) {
  auto parsed = testing::MustParse(
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- p(X, Z), a(Z, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X).\n");
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kChain;
  spec.nodes = 300;
  PredId p = parsed.ctx->InternPredicate("p", 2);
  Database edb;
  MakeGraph(parsed.ctx.get(), &edb, p, spec);
  ExpectParallelMatchesSerial(parsed.program, edb);
}

TEST(ParallelEvalTest, E1TransitiveClosureRandomSparse) {
  auto parsed = testing::MustParse(
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- p(X, Z), a(Z, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X).\n");
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kRandomSparse;
  spec.nodes = 400;
  spec.avg_degree = 1.5;
  spec.seed = 99;
  PredId p = parsed.ctx->InternPredicate("p", 2);
  Database edb;
  MakeGraph(parsed.ctx.get(), &edb, p, spec);
  ExpectParallelMatchesSerial(parsed.program, edb);
}

TEST(ParallelEvalTest, E4CascadeShape) {
  auto parsed = testing::MustParse(
      "q(X) :- a1(X, Y).\n"
      "q(X) :- a1(X, Z), b2(Z, W, V).\n"
      "q(X) :- a2(X, Z), b3(Z, W).\n"
      "a2(X, Z) :- a1(X, U), b4(U, Z).\n"
      "a1(X, Y) :- b1(X, Y).\n"
      "a1(X, Y) :- a1(X, Z), b5(Z, Y).\n"
      "?- q(X).\n");
  Database edb;
  uint64_t seed = 4;
  const int n = 600;
  for (const char* name : {"b1", "b2", "b3", "b4", "b5"}) {
    uint32_t arity = std::string(name) == "b2" ? 3 : 2;
    MakeRandomTuples(parsed.ctx.get(), &edb,
                     parsed.ctx->InternPredicate(name, arity), n, n / 2,
                     seed++);
  }
  ExpectParallelMatchesSerial(parsed.program, edb);
}

TEST(ParallelEvalTest, NegationAntiJoin) {
  auto parsed = testing::MustParse(
      "reach(X) :- src(X).\n"
      "reach(Y) :- reach(X), p(X, Y).\n"
      "unreached(X) :- node(X), not reach(X).\n"
      "?- unreached(X).\n");
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kTree;
  spec.nodes = 500;
  spec.seed = 7;
  PredId p = parsed.ctx->InternPredicate("p", 2);
  Database edb;
  std::vector<Value> nodes = MakeGraph(parsed.ctx.get(), &edb, p, spec);
  PredId node = parsed.ctx->InternPredicate("node", 1);
  PredId src = parsed.ctx->InternPredicate("src", 1);
  for (Value v : nodes) edb.AddTuple(node, std::vector<Value>{v});
  edb.AddTuple(src, std::vector<Value>{nodes[0]});
  ExpectParallelMatchesSerial(parsed.program, edb);
}

TEST(ParallelEvalTest, NaiveModeAndBooleanCut) {
  auto parsed = testing::MustParse(
      "hit :- p(X, Y), p(Y, X).\n"
      "a(X, Y) :- p(X, Y).\n"
      "a(X, Y) :- p(X, Z), a(Z, Y).\n"
      "?- a(X, Y).\n");
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kCycle;
  spec.nodes = 260;
  PredId p = parsed.ctx->InternPredicate("p", 2);
  Database edb;
  MakeGraph(parsed.ctx.get(), &edb, p, spec);
  ExpectParallelMatchesSerial(parsed.program, edb);
  // Naive mode re-derives everything per round: keep the graph small.
  spec.nodes = 90;
  Database small_edb;
  MakeGraph(parsed.ctx.get(), &small_edb, p, spec);
  EvalOptions naive;
  naive.seminaive = false;
  naive.max_rounds = 5000;
  ExpectParallelMatchesSerial(parsed.program, small_edb, naive);
}

TEST(ParallelEvalTest, ProvenanceForcesSerialButStaysCorrect) {
  auto parsed = testing::MustParse(
      "a(X, Y) :- p(X, Y).\n"
      "a(X, Y) :- p(X, Z), a(Z, Y).\n"
      "?- a(X, Y).\n");
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kChain;
  spec.nodes = 200;
  PredId p = parsed.ctx->InternPredicate("p", 2);
  Database edb;
  MakeGraph(parsed.ctx.get(), &edb, p, spec);
  EvalOptions options;
  options.record_provenance = true;
  options.num_threads = 4;  // ignored: provenance forces the serial path
  EvalResult with_threads = testing::MustEval(parsed.program, edb, options);
  options.num_threads = 1;
  EvalResult serial = testing::MustEval(parsed.program, edb, options);
  ExpectIdenticalDatabases(serial.db, with_threads.db);
  EXPECT_EQ(serial.provenance.size(), with_threads.provenance.size());
}

TEST(ParallelEvalTest, BitsetKernelWorkloadMatchesSerial) {
  // A fully bitset-eligible workload (DESIGN.md §14): unary recursive
  // predicates advanced through a binary probe plus unary membership
  // tests. pool_min_delta_rows=1 defeats the small-delta pool skip so the
  // kernels genuinely run on the worker pool, and the test pins parallel
  // == serial byte-identity in every representation.
  auto parsed = testing::MustParse(
      "odd(Y) :- even(X), p(X, Y).\n"
      "even(Y) :- odd(X), p(X, Y).\n"
      "even(X) :- zero(X).\n"
      "result(X) :- even(X), mark(X).\n"
      "?- result(X).\n");
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kRandomSparse;
  spec.nodes = 400;
  spec.avg_degree = 2.0;
  spec.seed = 17;
  PredId p = parsed.ctx->InternPredicate("p", 2);
  Database edb;
  std::vector<Value> nodes = MakeGraph(parsed.ctx.get(), &edb, p, spec);
  PredId zero = parsed.ctx->InternPredicate("zero", 1);
  PredId mark = parsed.ctx->InternPredicate("mark", 1);
  edb.AddTuple(zero, std::vector<Value>{nodes[0]});
  for (size_t i = 0; i < nodes.size(); i += 3) {
    edb.AddTuple(mark, std::vector<Value>{nodes[i]});
  }
  for (Representation representation :
       {Representation::kBitset, Representation::kTuple,
        Representation::kAuto}) {
    EvalOptions options;
    options.representation = representation;
    options.pool_min_delta_rows = 1;
    ExpectParallelMatchesSerial(parsed.program, edb, options);
  }
  // Cross-representation: the two physical executors must also agree
  // with each other, not just each with its own serial run.
  EvalOptions bitset_options;
  bitset_options.representation = Representation::kBitset;
  EvalOptions tuple_options;
  tuple_options.representation = Representation::kTuple;
  EvalResult bitset = testing::MustEval(parsed.program, edb, bitset_options);
  EvalResult tuple = testing::MustEval(parsed.program, edb, tuple_options);
  ExpectIdenticalDatabases(tuple.db, bitset.db);
  EXPECT_EQ(tuple.answers, bitset.answers);
  EXPECT_EQ(tuple.stats.rounds, bitset.stats.rounds);
  EXPECT_EQ(tuple.stats.rule_firings, bitset.stats.rule_firings);
  EXPECT_EQ(tuple.stats.tuples_inserted, bitset.stats.tuples_inserted);
  EXPECT_EQ(tuple.stats.duplicate_inserts, bitset.stats.duplicate_inserts);
  EXPECT_EQ(tuple.stats.index_probes, bitset.stats.index_probes);
  EXPECT_EQ(tuple.stats.rows_matched, bitset.stats.rows_matched);
  EXPECT_GT(bitset.representation.words_scanned, 0u);
  EXPECT_EQ(tuple.representation.words_scanned, 0u);
}

TEST(ParallelEvalTest, TimingCountersPopulated) {
  auto parsed = testing::MustParse(
      "a(X, Y) :- p(X, Y).\n"
      "a(X, Y) :- p(X, Z), a(Z, Y).\n"
      "?- a(X, Y).\n");
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kChain;
  spec.nodes = 100;
  PredId p = parsed.ctx->InternPredicate("p", 2);
  Database edb;
  MakeGraph(parsed.ctx.get(), &edb, p, spec);
  EvalResult result = testing::MustEval(parsed.program, edb);
  EXPECT_GT(result.stats.eval_seconds, 0.0);
  EXPECT_GT(result.stats.max_round_seconds, 0.0);
  EXPECT_LE(result.stats.max_round_seconds, result.stats.eval_seconds);
  EXPECT_NE(result.stats.ToString().find("eval_ms="), std::string::npos);
  EXPECT_NE(result.stats.ToString().find("max_round_ms="),
            std::string::npos);
}

}  // namespace
}  // namespace exdl
