#include <algorithm>

#include <gtest/gtest.h>

#include "grammar/chain.h"
#include "grammar/dfa.h"
#include "grammar/language.h"
#include "grammar/monadic.h"
#include "grammar/nfa.h"
#include "grammar/regularity.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

using ::exdl::testing::EvalAnswers;
using ::exdl::testing::MustParse;

const char kChainTc[] =
    "tc(X,Y) :- e(X,Y).\n"
    "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
    "?- tc(X,Y).\n";

// ------------------------------------------------------------- chain <-> CFG

TEST(ChainTest, RecognizesChainPrograms) {
  auto parsed = MustParse(kChainTc);
  EXPECT_TRUE(IsBinaryChainProgram(parsed.program));
}

TEST(ChainTest, RejectsNonChainShapes) {
  EXPECT_FALSE(IsBinaryChainProgram(
      MustParse("p(X,Y) :- e(Y,X).\n").program));  // reversed
  EXPECT_FALSE(IsBinaryChainProgram(
      MustParse("p(X,Y) :- e(X,Z), f(Z,W).\n").program));  // broken chain
  EXPECT_FALSE(IsBinaryChainProgram(
      MustParse("p(X,X) :- e(X,X).\n").program));  // repeated var
  EXPECT_FALSE(IsBinaryChainProgram(
      MustParse("p(X) :- e(X).\n").program));  // unary
  EXPECT_FALSE(
      IsBinaryChainProgram(MustParse("p(X,Y) :- e(X,Z), f(Z,Z).\n").program));
}

TEST(ChainTest, GrammarExtraction) {
  auto parsed = MustParse(kChainTc);
  Result<Cfg> grammar = ChainProgramToGrammar(parsed.program);
  ASSERT_TRUE(grammar.ok());
  EXPECT_EQ(grammar->NumNonterminals(), 1u);
  EXPECT_EQ(grammar->NumTerminals(), 1u);
  EXPECT_EQ(grammar->productions().size(), 2u);
  EXPECT_EQ(grammar->NonterminalName(grammar->start()), "tc");
}

TEST(ChainTest, RoundTripThroughProgram) {
  auto parsed = MustParse(kChainTc);
  Result<Cfg> grammar = ChainProgramToGrammar(parsed.program);
  ASSERT_TRUE(grammar.ok());
  Result<Program> back = GrammarToChainProgram(*grammar, parsed.ctx);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(IsBinaryChainProgram(*back));
  Result<Cfg> again = ChainProgramToGrammar(*back);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->productions().size(), grammar->productions().size());
}

// ---------------------------------------------------------- language bounds

TEST(LanguageTest, TransitiveClosureLanguageIsEPlus) {
  auto parsed = MustParse(kChainTc);
  Cfg grammar = *ChainProgramToGrammar(parsed.program);
  LanguageOptions options;
  options.max_length = 5;
  auto lang = EnumerateLanguage(grammar, grammar.start(), options);
  ASSERT_TRUE(lang.ok());
  EXPECT_EQ(lang->size(), 5u);  // e, ee, eee, eeee, eeeee
}

TEST(LanguageTest, ExtendedLanguageContainsSententialForms) {
  auto parsed = MustParse(kChainTc);
  Cfg grammar = *ChainProgramToGrammar(parsed.program);
  LanguageOptions options;
  options.max_length = 3;
  auto ext = EnumerateExtendedLanguage(grammar, grammar.start(), options);
  ASSERT_TRUE(ext.ok());
  // {TC, e, eTC, ee, eeTC, eee} for length <= 3.
  EXPECT_EQ(ext->size(), 6u);
}

TEST(LanguageTest, Lemma41QueryEquivalenceViaLanguages) {
  // Two chain programs for e+ with different rule shapes have the same
  // language (query equivalence by Lemma 4.1(2)) but different extended
  // languages (not uniformly equivalent, Lemma 4.1(3)).
  auto right = MustParse(kChainTc);
  auto left = MustParse(
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- tc(X,Z), e(Z,Y).\n"
      "?- tc(X,Y).\n");
  Cfg g_right = *ChainProgramToGrammar(right.program);
  Cfg g_left = *ChainProgramToGrammar(left.program);
  LanguageOptions options;
  options.max_length = 6;
  EXPECT_EQ(*EnumerateLanguage(g_right, g_right.start(), options),
            *EnumerateLanguage(g_left, g_left.start(), options));
  EXPECT_NE(*EnumerateExtendedLanguage(g_right, g_right.start(), options),
            *EnumerateExtendedLanguage(g_left, g_left.start(), options));
}

TEST(LanguageTest, RejectsEpsilonGrammar) {
  Cfg grammar;
  uint32_t s = grammar.AddNonterminal("S");
  grammar.AddProduction(s, {});
  grammar.SetStart(s);
  EXPECT_FALSE(EnumerateLanguage(grammar, s, LanguageOptions()).ok());
}

// -------------------------------------------------------------- regularity

TEST(RegularityTest, TcIsNotSelfEmbeddingAndStronglyRegular) {
  auto parsed = MustParse(kChainTc);
  Cfg grammar = *ChainProgramToGrammar(parsed.program);
  EXPECT_FALSE(IsSelfEmbedding(grammar));
  EXPECT_TRUE(IsStronglyRegular(grammar));
}

TEST(RegularityTest, PalindromeLikeGrammarIsSelfEmbedding) {
  // s -> up s dn | mid : the classic non-regular a^n b^n shape.
  auto parsed = MustParse(
      "s(X,Y) :- up(X,U), s(U,V), dn(V,Y).\n"
      "s(X,Y) :- mid(X,Y).\n"
      "?- s(X,Y).\n");
  Cfg grammar = *ChainProgramToGrammar(parsed.program);
  EXPECT_TRUE(IsSelfEmbedding(grammar));
  EXPECT_FALSE(IsStronglyRegular(grammar));
}

TEST(RegularityTest, LeftLinearIsStronglyRegular) {
  auto parsed = MustParse(
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- tc(X,Z), e(Z,Y).\n"
      "?- tc(X,Y).\n");
  Cfg grammar = *ChainProgramToGrammar(parsed.program);
  EXPECT_TRUE(IsStronglyRegular(grammar));
  EXPECT_FALSE(IsSelfEmbedding(grammar));
}

TEST(RegularityTest, MixedLinearSccNotStronglyRegular) {
  // One SCC using both left and right recursion.
  auto parsed = MustParse(
      "s(X,Y) :- a(X,Z), s(Z,Y).\n"
      "s(X,Y) :- s(X,Z), b(Z,Y).\n"
      "s(X,Y) :- c(X,Y).\n"
      "?- s(X,Y).\n");
  Cfg grammar = *ChainProgramToGrammar(parsed.program);
  EXPECT_FALSE(IsStronglyRegular(grammar));
  // (Mixed linear grammars can still be non-self-embedding in general, but
  // this one embeds: a s b surrounds s.)
  EXPECT_TRUE(IsSelfEmbedding(grammar));
}

TEST(RegularityTest, SccsComputed) {
  Cfg grammar;
  uint32_t p = grammar.AddNonterminal("p");
  uint32_t q = grammar.AddNonterminal("q");
  uint32_t r = grammar.AddNonterminal("r");
  uint32_t e = grammar.AddTerminal("e");
  grammar.AddProduction(p, {GSym::N(q)});
  grammar.AddProduction(q, {GSym::N(p)});
  grammar.AddProduction(q, {GSym::N(r)});
  grammar.AddProduction(r, {GSym::T(e)});
  grammar.SetStart(p);
  int num_sccs = 0;
  std::vector<int> scc = NonterminalSccs(grammar, &num_sccs);
  EXPECT_EQ(num_sccs, 2);
  EXPECT_EQ(scc[p], scc[q]);
  EXPECT_NE(scc[p], scc[r]);
  EXPECT_LT(scc[r], scc[p]);  // callees first
}

// ------------------------------------------------------------- NFA and DFA

std::set<std::vector<uint32_t>> AcceptedUpTo(const Dfa& dfa,
                                             uint32_t alphabet,
                                             size_t max_len) {
  std::set<std::vector<uint32_t>> out;
  std::vector<std::vector<uint32_t>> frontier = {{}};
  while (!frontier.empty()) {
    std::vector<uint32_t> word = frontier.back();
    frontier.pop_back();
    if (dfa.Accepts(word)) out.insert(word);
    if (word.size() == max_len) continue;
    for (uint32_t a = 0; a < alphabet; ++a) {
      std::vector<uint32_t> next = word;
      next.push_back(a);
      frontier.push_back(std::move(next));
    }
  }
  return out;
}

TEST(NfaTest, RightLinearTcLanguage) {
  auto parsed = MustParse(kChainTc);
  Cfg grammar = *ChainProgramToGrammar(parsed.program);
  Result<Nfa> nfa = StronglyRegularToNfa(grammar, grammar.start());
  ASSERT_TRUE(nfa.ok());
  Dfa dfa = Dfa::FromNfa(*nfa, 1);
  LanguageOptions options;
  options.max_length = 6;
  auto lang = EnumerateLanguage(grammar, grammar.start(), options);
  ASSERT_TRUE(lang.ok());
  EXPECT_EQ(AcceptedUpTo(dfa, 1, 6), *lang);
}

TEST(NfaTest, LeftLinearGrammarHandledViaReversal) {
  auto parsed = MustParse(
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- tc(X,Z), f(Z,Y).\n"  // L = e f*
      "?- tc(X,Y).\n");
  Cfg grammar = *ChainProgramToGrammar(parsed.program);
  Result<Nfa> nfa = StronglyRegularToNfa(grammar, grammar.start());
  ASSERT_TRUE(nfa.ok()) << nfa.status().ToString();
  Dfa dfa = Dfa::FromNfa(*nfa, 2);
  LanguageOptions options;
  options.max_length = 5;
  auto lang = EnumerateLanguage(grammar, grammar.start(), options);
  ASSERT_TRUE(lang.ok());
  EXPECT_EQ(AcceptedUpTo(dfa, 2, 5), *lang);
}

TEST(NfaTest, MultiSccGrammar) {
  // s -> a m, m -> b m | b  (L = a b+): two SCCs spliced.
  auto parsed = MustParse(
      "s(X,Y) :- a(X,Z), m(Z,Y).\n"
      "m(X,Y) :- b(X,Z), m(Z,Y).\n"
      "m(X,Y) :- b(X,Y).\n"
      "?- s(X,Y).\n");
  Cfg grammar = *ChainProgramToGrammar(parsed.program);
  Result<Nfa> nfa = StronglyRegularToNfa(grammar, grammar.start());
  ASSERT_TRUE(nfa.ok());
  Dfa dfa = Dfa::FromNfa(*nfa, 2);
  LanguageOptions options;
  options.max_length = 5;
  auto lang = EnumerateLanguage(grammar, grammar.start(), options);
  ASSERT_TRUE(lang.ok());
  EXPECT_EQ(AcceptedUpTo(dfa, 2, 5), *lang);
}

TEST(NfaTest, RejectsNonStronglyRegular) {
  auto parsed = MustParse(
      "s(X,Y) :- up(X,U), s(U,V), dn(V,Y).\n"
      "s(X,Y) :- mid(X,Y).\n"
      "?- s(X,Y).\n");
  Cfg grammar = *ChainProgramToGrammar(parsed.program);
  EXPECT_FALSE(StronglyRegularToNfa(grammar, grammar.start()).ok());
}

TEST(DfaTest, MinimizationPreservesLanguage) {
  auto parsed = MustParse(kChainTc);
  Cfg grammar = *ChainProgramToGrammar(parsed.program);
  Nfa nfa = *StronglyRegularToNfa(grammar, grammar.start());
  Dfa dfa = Dfa::FromNfa(nfa, 1);
  Dfa minimal = dfa.Minimized();
  EXPECT_LE(minimal.NumStates(), dfa.NumStates());
  EXPECT_TRUE(Dfa::Equivalent(dfa, minimal));
  // e+ needs exactly 2 states (plus none dead: from the accepting state
  // every e stays accepting).
  EXPECT_EQ(minimal.NumStates(), 2u);
}

TEST(DfaTest, EquivalenceDetectsDifference) {
  // e+ vs ee+ differ on the word "e".
  auto p1 = MustParse(kChainTc);
  auto p2 = MustParse(
      "tc(X,Y) :- e(X,Z), e(Z,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  Cfg g1 = *ChainProgramToGrammar(p1.program);
  Cfg g2 = *ChainProgramToGrammar(p2.program);
  Dfa d1 = Dfa::FromNfa(*StronglyRegularToNfa(g1, g1.start()), 1);
  Dfa d2 = Dfa::FromNfa(*StronglyRegularToNfa(g2, g2.start()), 1);
  EXPECT_FALSE(Dfa::Equivalent(d1, d2));
}

// -------------------------------------------------- Theorem 3.3 constructive

TEST(MonadicTest, TcMonadicEquivalentMatchesBinaryAnswers) {
  auto parsed = MustParse(
      "e(n0, n1). e(n1, n2). e(n2, n3). e(n7, n8).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  Result<Program> monadic = MonadicEquivalent(parsed.program);
  ASSERT_TRUE(monadic.ok()) << monadic.status().ToString();
  // The monadic program answers the p^dn query: nodes reachable from some
  // node by a nonempty path.
  std::vector<std::string> monadic_answers =
      EvalAnswers(*monadic, parsed.edb);
  // From the binary answers, project the second column.
  EvalResult binary = testing::MustEval(parsed.program, parsed.edb);
  std::set<std::string> expected;
  for (const auto& row : binary.answers) {
    expected.insert(parsed.ctx->SymbolName(row[1]));
  }
  std::set<std::string> actual(monadic_answers.begin(),
                               monadic_answers.end());
  EXPECT_EQ(actual, expected);
}

TEST(MonadicTest, LabeledLanguageRestrictsAnswers) {
  // L = a b: only nodes at the end of an a-then-b path answer.
  auto parsed = MustParse(
      "a(n0, n1). b(n1, n2). a(n2, n3). a(n3, n4). b(n4, n5). b(n5, n6).\n"
      "s(X,Y) :- a(X,Z), m(Z,Y).\n"
      "m(X,Y) :- b(X,Y).\n"
      "?- s(X,Y).\n");
  Result<Program> monadic = MonadicEquivalent(parsed.program);
  ASSERT_TRUE(monadic.ok());
  EXPECT_EQ(EvalAnswers(*monadic, parsed.edb),
            (std::vector<std::string>{"n2", "n5"}));
}

TEST(MonadicTest, MonadicProgramIsActuallyMonadic) {
  auto parsed = MustParse(kChainTc);
  Result<Program> monadic = MonadicEquivalent(parsed.program);
  ASSERT_TRUE(monadic.ok());
  for (const Rule& r : monadic->rules()) {
    const PredicateInfo& info = parsed.ctx->predicate(r.head.pred);
    EXPECT_EQ(info.arity, 1u);  // derived predicates are all unary
  }
}

TEST(MonadicTest, FailsOnNonRegularGrammar) {
  auto parsed = MustParse(
      "s(X,Y) :- up(X,U), s(U,V), dn(V,Y).\n"
      "s(X,Y) :- mid(X,Y).\n"
      "?- s(X,Y).\n");
  EXPECT_FALSE(MonadicEquivalent(parsed.program).ok());
}

}  // namespace
}  // namespace exdl

namespace exdl {
namespace {

TEST(CfgTrimTest, RemovesUselessSymbols) {
  Cfg grammar;
  uint32_t s = grammar.AddNonterminal("S");
  uint32_t useful = grammar.AddNonterminal("A");
  uint32_t unproductive = grammar.AddNonterminal("U");  // no terminal exit
  uint32_t unreachable = grammar.AddNonterminal("W");
  uint32_t a = grammar.AddTerminal("a");
  grammar.AddProduction(s, {GSym::N(useful)});
  grammar.AddProduction(s, {GSym::N(unproductive)});
  grammar.AddProduction(useful, {GSym::T(a)});
  grammar.AddProduction(unproductive, {GSym::N(unproductive), GSym::T(a)});
  grammar.AddProduction(unreachable, {GSym::T(a)});
  grammar.SetStart(s);

  Cfg trimmed = grammar.Trim();
  EXPECT_EQ(trimmed.NumNonterminals(), 2u);  // S and A
  EXPECT_EQ(trimmed.productions().size(), 2u);
  // Languages agree.
  LanguageOptions options;
  options.max_length = 4;
  EXPECT_EQ(*EnumerateLanguage(grammar, grammar.start(), options),
            *EnumerateLanguage(trimmed, trimmed.start(), options));
}

TEST(CfgTrimTest, EmptyLanguageKeepsBareStart) {
  Cfg grammar;
  uint32_t s = grammar.AddNonterminal("S");
  grammar.AddProduction(s, {GSym::N(s)});  // S -> S only: empty language
  grammar.SetStart(s);
  Cfg trimmed = grammar.Trim();
  EXPECT_EQ(trimmed.productions().size(), 0u);
  EXPECT_EQ(trimmed.NonterminalName(trimmed.start()), "S");
}

TEST(CfgTrimTest, TrimOfCleanGrammarIsIdentityShaped) {
  auto parsed = testing::MustParse(kChainTc);
  Cfg grammar = *ChainProgramToGrammar(parsed.program);
  Cfg trimmed = grammar.Trim();
  EXPECT_EQ(trimmed.productions().size(), grammar.productions().size());
  EXPECT_EQ(trimmed.NumNonterminals(), grammar.NumNonterminals());
}

}  // namespace
}  // namespace exdl
