// Standing-query / IVM tests (DESIGN.md §16).
//
// The contract under test: a registered standing query's polled answers
// are byte-identical to a cold re-evaluation of the same source at the
// same generation — after every fact load, for every physical
// representation, at every pool size — and the maintenance that keeps
// them so is incremental (ivm.full_recomputes stays 0) whenever the
// program is in the incremental fragment. The randomized section drives
// seeded fact-delta schedules (duplicates, new nodes, chain extensions)
// through programs with different plan shapes, so the delta-first
// variant plans and the answer-suffix merge are exercised well past the
// hand-written cases. The concurrency section is TSan fodder:
// register / load / poll / unregister racing on one service.

#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ivm/materialized_view.h"
#include "service/answer_text.h"
#include "service/query_service.h"
#include "storage/representation.h"

namespace exdl {
namespace {

struct IvmCase {
  const char* label;
  /// Rules + query only; facts arrive through LoadFacts.
  const char* source;
};

// Plan-shape variety: the delta literal lands at different positions in
// the main plan, so maintenance exercises both the "already outermost"
// and the delta-first-variant paths.
const IvmCase kCases[] = {
    {"tc",
     "tc(X, Y) :- e(X, Y).\n"
     "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
     "?- tc(n0, Y).\n"},
    {"same_generation",
     "sg(X, Y) :- f(X, Y).\n"
     "sg(X, Y) :- up(X, XP), sg(XP, YP), up(Y, YP).\n"
     "?- sg(n0, Y).\n"},
    {"edb_query",  // The query predicate is itself an EDB relation.
     "reach(X) :- e(n0, X).\n"
     "reach(X) :- e(Y, X), reach(Y).\n"
     "?- e(n0, Y).\n"},
    {"projection",  // Existential head projection + union of two rules.
     "out(X) :- e(X, Y).\n"
     "out(X) :- e(Y, X), e(X, Z).\n"
     "?- out(X).\n"},
};

std::string Node(int i) { return "n" + std::to_string(i); }

/// One seeded generation of facts: a mix of brand-new edges, re-sent
/// duplicates, and edges introducing fresh nodes. `up`/`f` facts ride
/// along so the same_generation case grows too.
std::string RandomDelta(std::mt19937& rng, int* next_node) {
  std::uniform_int_distribution<int> coin(0, 99);
  std::string facts;
  const int edges = 3 + static_cast<int>(rng() % 5);
  for (int i = 0; i < edges; ++i) {
    int a, b;
    const int kind = coin(rng);
    if (kind < 20) {
      // Fresh node: extends the reachable frontier.
      a = static_cast<int>(rng() % *next_node);
      b = (*next_node)++;
    } else {
      a = static_cast<int>(rng() % *next_node);
      b = static_cast<int>(rng() % *next_node);
    }
    facts += "e(" + Node(a) + ", " + Node(b) + ").\n";
    if (kind < 10) facts += "e(" + Node(a) + ", " + Node(b) + ").\n";  // dup
    if (coin(rng) < 30) {
      facts += "up(" + Node(b) + ", " + Node(a) + ").\n";
    }
    if (coin(rng) < 10) {
      facts += "f(" + Node(a) + ", " + Node(a) + ").\n";
    }
  }
  return facts;
}

std::string BaseFacts(std::mt19937& rng, int* next_node) {
  *next_node = 12;
  std::string facts = "f(n0, n0).\n";
  for (int i = 0; i + 1 < 12; ++i) {
    facts += "e(" + Node(i) + ", " + Node(i + 1) + ").\n";
    facts += "up(" + Node(i + 1) + ", " + Node(i) + ").\n";
  }
  for (int i = 0; i < 6; ++i) {
    facts += "e(" + Node(rng() % 12) + ", " + Node(rng() % 12) + ").\n";
  }
  return facts;
}

ServiceOptions MakeOptions(uint32_t workers, Representation rep) {
  ServiceOptions options;
  options.num_workers = workers;
  options.eval.num_threads = workers;
  options.eval.representation = rep;
  options.compile.optimize = true;
  return options;
}

/// Polls `id` and asserts byte-identity against a cold submission of the
/// same request, plus the incremental-path invariants.
void ExpectPollMatchesCold(QueryService& service, uint64_t id,
                           const QueryRequest& request,
                           bool expect_incremental) {
  Result<StandingQueryResult> polled = service.PollStandingQuery(id);
  ASSERT_TRUE(polled.ok()) << polled.status().ToString();
  QueryResponse cold = service.Await(service.Submit(request));
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  EXPECT_EQ(polled->generation, cold.snapshot_generation);
  EXPECT_EQ(polled->answers,
            RenderAnswerRows(*service.ctx(), cold.result.answers));
  EXPECT_EQ(polled->answer_count, cold.result.answers.size());
  if (expect_incremental) {
    EXPECT_EQ(polled->stats.full_recomputes, 0u);
    EXPECT_EQ(polled->fallback, ivm::Fallback::kNone);
    EXPECT_TRUE(polled->last_was_incremental);
  }
}

TEST(IvmRandomizedTest, IncrementalMatchesColdEverywhere) {
  const Representation reps[] = {Representation::kTuple,
                                 Representation::kBitset,
                                 Representation::kAuto};
  for (uint32_t workers : {1u, 4u}) {
    for (Representation rep : reps) {
      for (uint32_t seed : {7u, 1234u}) {
        std::mt19937 rng(seed);
        int next_node = 0;
        const std::string base = BaseFacts(rng, &next_node);
        QueryService service(MakeOptions(workers, rep));
        ASSERT_TRUE(service.LoadFacts(base).ok());
        std::vector<QueryRequest> requests;
        std::vector<uint64_t> ids;
        for (const IvmCase& c : kCases) {
          QueryRequest request{c.source, c.label};
          Result<uint64_t> id = service.RegisterStandingQuery(request);
          ASSERT_TRUE(id.ok()) << c.label << ": " << id.status().ToString();
          requests.push_back(std::move(request));
          ids.push_back(*id);
        }
        for (int g = 0; g < 5; ++g) {
          ASSERT_TRUE(
              service.LoadFacts(RandomDelta(rng, &next_node)).ok());
          for (size_t q = 0; q < ids.size(); ++q) {
            SCOPED_TRACE(std::string(kCases[q].label) + " workers=" +
                         std::to_string(workers) + " rep=" +
                         RepresentationName(rep) + " seed=" +
                         std::to_string(seed) + " gen=" +
                         std::to_string(g));
            ExpectPollMatchesCold(service, ids[q], requests[q],
                                  /*expect_incremental=*/true);
          }
        }
      }
    }
  }
}

TEST(IvmTest, PollReflectsRegistrationSnapshot) {
  QueryService service(MakeOptions(1, Representation::kAuto));
  ASSERT_TRUE(service.LoadFacts("e(a, b). e(b, c).").ok());
  QueryRequest request{
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
      "?- tc(a, Y).\n",
      "tc"};
  Result<uint64_t> id = service.RegisterStandingQuery(request);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  Result<StandingQueryResult> polled = service.PollStandingQuery(*id);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->answer_count, 2u);  // b, c
  EXPECT_EQ(polled->name, "tc");
  EXPECT_TRUE(polled->last_was_incremental);
  EXPECT_EQ(polled->stats.generations_applied, 0u);
}

TEST(IvmTest, DuplicateLoadIsANoOpGeneration) {
  QueryService service(MakeOptions(1, Representation::kAuto));
  ASSERT_TRUE(service.LoadFacts("e(a, b). e(b, c).").ok());
  QueryRequest request{
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
      "?- tc(a, Y).\n",
      "tc"};
  Result<uint64_t> id = service.RegisterStandingQuery(request);
  ASSERT_TRUE(id.ok());
  // Every fact already present: the maintained fixpoint is unchanged but
  // the view still advances to the new generation.
  ASSERT_TRUE(service.LoadFacts("e(a, b). e(b, c).").ok());
  ExpectPollMatchesCold(service, *id, request, /*expect_incremental=*/true);
  Result<StandingQueryResult> polled = service.PollStandingQuery(*id);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->stats.generations_applied, 1u);
  EXPECT_EQ(polled->stats.tuples_rederived, 0u);
}

TEST(IvmTest, GroundQueryFlipsAndStays) {
  QueryService service(MakeOptions(1, Representation::kAuto));
  ASSERT_TRUE(service.LoadFacts("e(a, b).").ok());
  QueryRequest request{
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
      "?- tc(a, z).\n",
      "ground"};
  Result<uint64_t> id = service.RegisterStandingQuery(request);
  ASSERT_TRUE(id.ok());
  Result<StandingQueryResult> before = service.PollStandingQuery(*id);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->answer_count, 0u);
  ASSERT_TRUE(service.LoadFacts("e(b, z).").ok());
  ExpectPollMatchesCold(service, *id, request, /*expect_incremental=*/true);
  Result<StandingQueryResult> after = service.PollStandingQuery(*id);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->answer_count, 1u);
}

TEST(IvmTest, NegationFallsBackToReseedAndStaysCorrect) {
  QueryService service(MakeOptions(1, Representation::kAuto));
  ASSERT_TRUE(service.LoadFacts("e(a, b). e(b, c). blocked(c).").ok());
  QueryRequest request{
      "ok(X, Y) :- e(X, Y), not blocked(Y).\n"
      "?- ok(X, Y).\n",
      "negation"};
  Result<uint64_t> id = service.RegisterStandingQuery(request);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // Inserts are not monotone under negation: every generation must full
  // recompute, and the poll says so.
  ASSERT_TRUE(service.LoadFacts("e(c, d). blocked(b).").ok());
  Result<StandingQueryResult> polled = service.PollStandingQuery(*id);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->fallback, ivm::Fallback::kNegation);
  EXPECT_FALSE(polled->last_was_incremental);
  EXPECT_EQ(polled->stats.full_recomputes, 1u);
  QueryResponse cold = service.Await(service.Submit(request));
  ASSERT_TRUE(cold.status.ok());
  EXPECT_EQ(polled->answers,
            RenderAnswerRows(*service.ctx(), cold.result.answers));
}

TEST(IvmTest, UnregisterRetiresTheView) {
  QueryService service(MakeOptions(1, Representation::kAuto));
  ASSERT_TRUE(service.LoadFacts("e(a, b).").ok());
  QueryRequest request{"p(X, Y) :- e(X, Y).\n?- p(X, Y).\n", "p"};
  Result<uint64_t> id = service.RegisterStandingQuery(request);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(service.UnregisterStandingQuery(*id).ok());
  EXPECT_FALSE(service.PollStandingQuery(*id).ok());
  EXPECT_FALSE(service.UnregisterStandingQuery(*id).ok());
  // Retained counters keep the metrics object monotone.
  const std::string metrics = service.MetricsJson();
  EXPECT_NE(metrics.find("\"ivm\""), std::string::npos);
}

TEST(IvmTest, MetricsJsonCarriesIvmObject) {
  QueryService service(MakeOptions(1, Representation::kAuto));
  ASSERT_TRUE(service.LoadFacts("e(a, b).").ok());
  QueryRequest request{
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
      "?- tc(a, Y).\n",
      "tc"};
  ASSERT_TRUE(service.RegisterStandingQuery(request).ok());
  ASSERT_TRUE(service.LoadFacts("e(b, c).").ok());
  const std::string metrics = service.MetricsJson();
  EXPECT_NE(metrics.find("\"ivm\""), std::string::npos);
  EXPECT_NE(metrics.find("\"maintained_queries\""), std::string::npos);
  EXPECT_NE(metrics.find("\"full_recomputes\""), std::string::npos);
}

// Concurrency smoke (run under TSan in CI): registrations, fact loads,
// polls, and unregistrations race on one service; every poll that
// succeeds must be internally consistent.
TEST(IvmConcurrencyTest, RegisterLoadPollRace) {
  QueryService service(MakeOptions(4, Representation::kAuto));
  ASSERT_TRUE(service.LoadFacts("e(n0, n1). e(n1, n2).").ok());
  QueryRequest request{
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
      "?- tc(n0, Y).\n",
      "tc"};
  Result<uint64_t> root = service.RegisterStandingQuery(request);
  ASSERT_TRUE(root.ok());
  std::atomic<bool> stop{false};
  std::atomic<int> loads{0};
  std::thread loader([&] {
    for (int g = 0; g < 20; ++g) {
      std::string facts = "e(" + Node(2 + g) + ", " + Node(3 + g) + ").\n";
      ASSERT_TRUE(service.LoadFacts(facts).ok());
      loads.fetch_add(1);
    }
    stop.store(true);
  });
  std::thread poller([&] {
    while (!stop.load()) {
      Result<StandingQueryResult> polled = service.PollStandingQuery(*root);
      ASSERT_TRUE(polled.ok());
      ASSERT_EQ(polled->stats.full_recomputes, 0u);
    }
  });
  std::thread churn([&] {
    while (!stop.load()) {
      QueryRequest r{request.source, "churn"};
      Result<uint64_t> id = service.RegisterStandingQuery(r);
      if (id.ok()) {
        (void)service.PollStandingQuery(*id);
        (void)service.UnregisterStandingQuery(*id);
      }
    }
  });
  loader.join();
  poller.join();
  churn.join();
  // Quiescent again: the root view must match a cold run exactly.
  ExpectPollMatchesCold(service, *root, request,
                        /*expect_incremental=*/true);
}

}  // namespace
}  // namespace exdl
