#include <algorithm>

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "eval/plan.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

using ::exdl::testing::EvalAnswers;
using ::exdl::testing::MustEval;
using ::exdl::testing::MustParse;

const char kTransitiveClosure[] =
    "e(n1, n2). e(n2, n3). e(n3, n4).\n"
    "tc(X,Y) :- e(X,Y).\n"
    "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
    "?- tc(X,Y).\n";

TEST(PlanTest, CompilesAndOrdersByBoundness) {
  auto parsed = MustParse("p(X) :- big(Y,Z), e(X,Y).\n");
  PlanOptions reorder;
  Result<RulePlan> plan = CompileRule(parsed.program.rules()[0], reorder);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps.size(), 2u);
  EXPECT_EQ(plan->num_regs, 3u);
}

TEST(PlanTest, RejectsUnsafeRule) {
  auto parsed = MustParse("p(X, W) :- e(X).\n");
  EXPECT_FALSE(CompileRule(parsed.program.rules()[0], PlanOptions()).ok());
}

TEST(PlanTest, HeadConstantsAllowed) {
  auto parsed = MustParse("p(X, ok) :- e(X).\n");
  Result<RulePlan> plan =
      CompileRule(parsed.program.rules()[0], PlanOptions());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->head_args[1].kind, ArgSpec::Kind::kConst);
}

TEST(PlanTest, IndexColumnsFromConstantsAndBoundVars) {
  auto parsed = MustParse("p(X) :- e(X, c), f(X, Y).\n");
  PlanOptions no_reorder;
  no_reorder.reorder = false;
  Result<RulePlan> plan =
      CompileRule(parsed.program.rules()[0], no_reorder);
  ASSERT_TRUE(plan.ok());
  // e(X, c): constant at position 1 is an index column.
  EXPECT_EQ(plan->steps[0].index_columns, std::vector<uint32_t>{1});
  // f(X, Y): X bound by step 0.
  EXPECT_EQ(plan->steps[1].index_columns, std::vector<uint32_t>{0});
}

TEST(PlanTest, FirstBodyPositionForcesOuterLiteral) {
  auto parsed = MustParse("p(X, Y) :- e(X, Z), tc(Z, Y).\n");
  PlanOptions delta_first;
  delta_first.first_body_position = 1;  // tc(Z, Y) becomes the outer scan
  Result<RulePlan> plan =
      CompileRule(parsed.program.rules()[0], delta_first);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 2u);
  EXPECT_EQ(plan->steps[0].body_position, 1u);
  EXPECT_TRUE(plan->steps[0].index_columns.empty());  // pure scan
  // e(X, Z) now probes on Z, bound by the forced step.
  EXPECT_EQ(plan->steps[1].body_position, 0u);
  EXPECT_EQ(plan->steps[1].index_columns, std::vector<uint32_t>{1});
}

TEST(PlanTest, FirstBodyPositionRejectsNegatedLiteral) {
  auto parsed = MustParse("p(X) :- e(X), not bad(X).\n");
  PlanOptions delta_first;
  delta_first.first_body_position = 1;
  EXPECT_FALSE(CompileRule(parsed.program.rules()[0], delta_first).ok());
}

TEST(EvalTest, TransitiveClosureChain) {
  auto parsed = MustParse(kTransitiveClosure);
  std::vector<std::string> answers = EvalAnswers(parsed.program, parsed.edb);
  EXPECT_EQ(answers.size(), 6u);  // all ordered pairs i<j on a 4-chain
}

TEST(EvalTest, SemiNaiveEqualsNaive) {
  auto parsed = MustParse(kTransitiveClosure);
  EvalOptions naive;
  naive.seminaive = false;
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            EvalAnswers(parsed.program, parsed.edb, naive));
}

TEST(EvalTest, SemiNaiveDoesLessDuplicateWork) {
  auto parsed = MustParse(
      "e(n0, n1). e(n1, n2). e(n2, n3). e(n3, n4). e(n4, n5).\n"
      "e(n5, n6). e(n6, n7). e(n7, n8). e(n8, n9).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  EvalOptions naive;
  naive.seminaive = false;
  EvalResult semi = MustEval(parsed.program, parsed.edb);
  EvalResult full = MustEval(parsed.program, parsed.edb, naive);
  EXPECT_EQ(semi.answers, full.answers);
  EXPECT_LT(semi.stats.duplicate_inserts, full.stats.duplicate_inserts);
}

TEST(EvalTest, QueryWithConstantFilters) {
  auto parsed = MustParse(
      "e(n1, n2). e(n2, n3).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(n1, Y).\n");
  std::vector<std::string> answers = EvalAnswers(parsed.program, parsed.edb);
  EXPECT_EQ(answers, (std::vector<std::string>{"n2", "n3"}));
}

TEST(EvalTest, RepeatedQueryVariableRequiresEquality) {
  auto parsed = MustParse(
      "e(n1, n1). e(n1, n2).\n"
      "p(X,Y) :- e(X,Y).\n"
      "?- p(X, X).\n");
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            (std::vector<std::string>{"n1"}));
}

TEST(EvalTest, RepeatedBodyVariableWithinLiteral) {
  auto parsed = MustParse(
      "e(n1, n1). e(n1, n2).\n"
      "loop(X) :- e(X, X).\n"
      "?- loop(X).\n");
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            (std::vector<std::string>{"n1"}));
}

TEST(EvalTest, ConstantInBodyLiteral) {
  auto parsed = MustParse(
      "e(n1, stop). e(n2, go).\n"
      "halted(X) :- e(X, stop).\n"
      "?- halted(X).\n");
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            (std::vector<std::string>{"n1"}));
}

TEST(EvalTest, ZeroAryBooleanAndCut) {
  auto parsed = MustParse(
      "big(n1, n2). big(n2, n3).\n"
      "flag :- big(X, Y).\n"
      "ans(X) :- src(X), flag.\n"
      "src(n9).\n"
      "?- ans(X).\n");
  EvalResult result = MustEval(parsed.program, parsed.edb);
  EXPECT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.stats.rules_retired, 1u);  // 'flag' rule cut after true
}

TEST(EvalTest, BooleanCutCanBeDisabled) {
  auto parsed = MustParse(
      "big(n1, n2).\n"
      "flag :- big(X, Y).\n"
      "ans(X) :- src(X), flag.\n"
      "src(n9).\n"
      "?- ans(X).\n");
  EvalOptions options;
  options.boolean_cut = false;
  EvalResult result = MustEval(parsed.program, parsed.edb, options);
  EXPECT_EQ(result.stats.rules_retired, 0u);
  EXPECT_EQ(result.answers.size(), 1u);
}

TEST(EvalTest, GroundQueryStopsEarly) {
  auto parsed = MustParse(
      "e(n0, n1). e(n1, n2). e(n2, n3). e(n3, n4). e(n4, n5).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(n0, n1).\n");
  EvalOptions stop;
  stop.stop_on_ground_query = true;
  EvalResult early = MustEval(parsed.program, parsed.edb, stop);
  EvalResult full = MustEval(parsed.program, parsed.edb);
  EXPECT_TRUE(early.ground_query_true);
  EXPECT_LE(early.stats.rounds, full.stats.rounds);
  EXPECT_LT(early.stats.tuples_inserted, full.stats.tuples_inserted);
}

TEST(EvalTest, UniformInputWithIdbFacts) {
  // Uniform semantics: the input may contain derived facts (Section 4).
  auto parsed = MustParse(
      "tc(n7, n8).\n"  // an IDB fact as input
      "e(n8, n9).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  std::vector<std::string> answers = EvalAnswers(parsed.program, parsed.edb);
  // tc(7,8) given; tc(8,9) from e; nothing composes 7->9 because the
  // recursive rule needs an e-edge first: e(7,?) absent... e(8,9)+tc? no:
  // tc(X,Y) :- e(X,Z), tc(Z,Y) cannot use tc(7,8) as the e literal.
  EXPECT_EQ(answers, (std::vector<std::string>{"n7,n8", "n8,n9"}));
}

TEST(EvalTest, EmptyEdbYieldsNoAnswers) {
  auto parsed = MustParse(
      "tc(X,Y) :- e(X,Y).\n"
      "?- tc(X,Y).\n");
  EXPECT_TRUE(EvalAnswers(parsed.program, parsed.edb).empty());
}

TEST(EvalTest, MaxRoundsGuard) {
  auto parsed = MustParse(
      "e(n0, n1). e(n1, n0).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  EvalOptions options;
  options.max_rounds = 1;
  EXPECT_FALSE(Evaluate(parsed.program, parsed.edb, options).ok());
}

TEST(EvalTest, NonLinearRecursion) {
  auto parsed = MustParse(
      "e(n1, n2). e(n2, n3). e(n3, n4). e(n4, n5).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- tc(X,Z), tc(Z,Y).\n"  // both literals recursive
      "?- tc(X,Y).\n");
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb).size(), 10u);
}

TEST(EvalTest, MutualRecursion) {
  auto parsed = MustParse(
      "zero(n0). succ(n0, n1). succ(n1, n2). succ(n2, n3). succ(n3, n4).\n"
      "even(X) :- zero(X).\n"
      "even(X) :- succ(Y, X), odd(Y).\n"
      "odd(X) :- succ(Y, X), even(Y).\n"
      "?- even(X).\n");
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            (std::vector<std::string>{"n0", "n2", "n4"}));
}

TEST(EvalTest, SameGeneration) {
  auto parsed = MustParse(
      "up(a1, b1). up(a2, b1). up(b1, c1). up(b2, c1).\n"
      "sg(X, X) :- up(X, Y).\n"
      "sg(X, Y) :- up(X, U), sg(U, V), up(Y, V).\n"
      "?- sg(a1, Y).\n");
  std::vector<std::string> answers = EvalAnswers(parsed.program, parsed.edb);
  EXPECT_NE(std::find(answers.begin(), answers.end(), "a2"), answers.end());
}

TEST(EvalTest, StatsAreConsistent) {
  auto parsed = MustParse(kTransitiveClosure);
  EvalResult result = MustEval(parsed.program, parsed.edb);
  EXPECT_EQ(result.stats.rule_firings,
            result.stats.tuples_inserted + result.stats.duplicate_inserts);
  EXPECT_GT(result.stats.rounds, 1u);
  std::string s = result.stats.ToString();
  EXPECT_NE(s.find("rounds="), std::string::npos);
}

TEST(ExtractAnswersTest, ProjectsAndDeduplicates) {
  auto parsed = MustParse(
      "p(n1, n2). p(n1, n3). p(n2, n3).\n"
      "q(X, Y) :- p(X, Y).\n"
      "?- q(X, Y).\n");
  EvalResult r = MustEval(parsed.program, parsed.edb);
  // Re-extract with a different query shape over the computed db.
  Context& ctx = *parsed.ctx;
  PredId q = parsed.program.query()->pred;
  Atom first_only(q, {Term::Var(ctx.InternSymbol("A")),
                      Term::Var(ctx.InternSymbol("B"))});
  // project to the first variable only by querying (A, A)? No — use a
  // fresh single-variable pattern with a repeated variable:
  Atom diag(q, {Term::Var(ctx.InternSymbol("D")),
                Term::Var(ctx.InternSymbol("D"))});
  EXPECT_TRUE(ExtractAnswers(diag, r.db).empty());
  EXPECT_EQ(ExtractAnswers(first_only, r.db).size(), 3u);
}

}  // namespace
}  // namespace exdl
