// Lemma 4.1 as executable checks: language equalities vs program
// equivalences for binary chain programs.

#include <gtest/gtest.h>

#include "core/workload.h"
#include "equiv/random_check.h"
#include "grammar/equivalence.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

using ::exdl::testing::MustParse;
using ::exdl::testing::MustParseWith;

const char kRight[] =
    "tc(X,Y) :- e(X,Y).\n"
    "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
    "?- tc(X,Y).\n";
const char kLeft[] =
    "tc2(X,Y) :- e(X,Y).\n"
    "tc2(X,Y) :- tc2(X,Z), e(Z,Y).\n"
    "?- tc2(X,Y).\n";
const char kTwoStep[] =
    "tc3(X,Y) :- e(X,Z), e(Z,Y).\n"
    "tc3(X,Y) :- e(X,Z), tc3(Z,Y).\n"
    "?- tc3(X,Y).\n";

TEST(ChainEquivalenceTest, ExactDecisionLeftEqualsRight) {
  auto right = MustParse(kRight);
  auto left = MustParseWith(right.ctx, kLeft);
  Result<bool> eq = ChainQueryEquivalent(right.program, left.program);
  ASSERT_TRUE(eq.ok()) << eq.status().ToString();
  EXPECT_TRUE(*eq);  // both are e+
}

TEST(ChainEquivalenceTest, ExactDecisionDetectsDifference) {
  auto right = MustParse(kRight);
  auto two = MustParseWith(right.ctx, kTwoStep);
  Result<bool> eq = ChainQueryEquivalent(right.program, two.program);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(*eq);  // e+ vs ee+
}

TEST(ChainEquivalenceTest, ExactDecisionNeedsStrongRegularity) {
  auto right = MustParse(kRight);
  auto anbn = MustParseWith(right.ctx,
      "s(X,Y) :- up(X,U), s(U,V), dn(V,Y).\n"
      "s(X,Y) :- up(X,U), dn(U,Y).\n"
      "?- s(X,Y).\n");
  EXPECT_FALSE(ChainQueryEquivalent(right.program, anbn.program).ok());
}

TEST(ChainEquivalenceTest, DifferentAlphabetsSeparate) {
  auto right = MustParse(kRight);
  auto other = MustParseWith(right.ctx,
      "tf(X,Y) :- f(X,Y).\n"
      "tf(X,Y) :- f(X,Z), tf(Z,Y).\n"
      "?- tf(X,Y).\n");
  Result<bool> eq = ChainQueryEquivalent(right.program, other.program);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(*eq);  // e+ vs f+
}

TEST(ChainEquivalenceTest, BoundedRefutationFindsWitness) {
  auto right = MustParse(kRight);
  auto two = MustParseWith(right.ctx, kTwoStep);
  Result<BoundedComparison> cmp =
      BoundedChainQueryEquivalence(right.program, two.program);
  ASSERT_TRUE(cmp.ok());
  EXPECT_TRUE(cmp->separated);
  EXPECT_EQ(cmp->witness, "e");  // the single-edge word separates them
}

TEST(ChainEquivalenceTest, BoundedRefutationAgreesOnEquality) {
  auto right = MustParse(kRight);
  auto left = MustParseWith(right.ctx, kLeft);
  Result<BoundedComparison> cmp =
      BoundedChainQueryEquivalence(right.program, left.program);
  ASSERT_TRUE(cmp.ok());
  EXPECT_FALSE(cmp->separated);
}

TEST(ChainEquivalenceTest, Lemma41UniformQuerySeparatesLeftRight) {
  // Query-equivalent but not uniformly query equivalent (Lemma 4.1(4)):
  // the extended languages differ — e.g. "e tc" is a sentential form of
  // the right-linear program only.
  auto right = MustParse(kRight);
  auto left = MustParseWith(right.ctx, kLeft);
  Result<BoundedComparison> cmp =
      BoundedChainUniformQueryEquivalence(right.program, left.program);
  ASSERT_TRUE(cmp.ok());
  EXPECT_TRUE(cmp->separated);
  EXPECT_NE(cmp->witness.find("e"), std::string::npos);
}

TEST(ChainEquivalenceTest, UniformQueryEquivalenceOfRenamedCopy) {
  auto right = MustParse(kRight);
  auto copy = MustParseWith(right.ctx,
      "tcopy(X,Y) :- e(X,Y).\n"
      "tcopy(X,Y) :- e(X,Z), tcopy(Z,Y).\n"
      "?- tcopy(X,Y).\n");
  // Renaming only the query predicate: extended forms match once the
  // start symbols are canonicalized.
  Result<BoundedComparison> cmp =
      BoundedChainUniformQueryEquivalence(right.program, copy.program);
  ASSERT_TRUE(cmp.ok());
  EXPECT_FALSE(cmp->separated);
}

TEST(ChainEquivalenceTest, CrossValidatesWithEvaluation) {
  // Lemma 4.1(2) ground truth: language equality must coincide with query
  // answers over random labeled graphs.
  auto right = MustParse(kRight);
  auto left = MustParseWith(right.ctx, kLeft);
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(right.program, left.program);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
  auto two = MustParseWith(right.ctx, kTwoStep);
  Result<RandomCheckReport> diff =
      CheckQueryEquivalentOnEdb(right.program, two.program);
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->equivalent);
}

TEST(ChainEquivalenceTest, WordGraphMembershipMatchesLanguage) {
  // Evaluate the chain program over a straight-line "word graph"; the
  // query holds for the full path exactly when the word is in L(G,Q).
  auto parsed = MustParse(
      "s(X,Y) :- a(X,U), m(U,Y).\n"
      "m(X,Y) :- b(X,U), m(U,Y).\n"
      "m(X,Y) :- b(X,Y).\n"
      "?- s(X,Y).\n");  // L = a b+
  Context& ctx = *parsed.ctx;
  auto word_db = [&](const std::vector<std::string>& word) {
    Database db;
    std::vector<Value> nodes = MakeNodes(&ctx, static_cast<int>(word.size()) + 1);
    for (size_t i = 0; i < word.size(); ++i) {
      const Value row[2] = {nodes[i], nodes[i + 1]};
      db.AddTuple(ctx.InternPredicate(word[i], 2), row);
    }
    return db;
  };
  auto accepts = [&](const std::vector<std::string>& word) {
    Database db = word_db(word);
    EvalResult r = testing::MustEval(parsed.program, db);
    Value first = ctx.InternSymbol("n0");
    Value last = ctx.InternSymbol("n" + std::to_string(word.size()));
    for (const auto& row : r.answers) {
      if (row[0] == first && row[1] == last) return true;
    }
    return false;
  };
  EXPECT_TRUE(accepts({"a", "b"}));
  EXPECT_TRUE(accepts({"a", "b", "b", "b"}));
  EXPECT_FALSE(accepts({"a"}));
  EXPECT_FALSE(accepts({"b", "b"}));
  EXPECT_FALSE(accepts({"a", "b", "a"}));
}

}  // namespace
}  // namespace exdl

namespace exdl {
namespace {

// Lemma 4.1 rows (1) and (3): per-nonterminal comparisons.
TEST(ChainEquivalenceTest, DbEquivalenceComparesEveryNonterminal) {
  auto p1 = MustParse(
      "s(X,Y) :- h(X,Y).\n"
      "h(X,Y) :- e(X,Y).\n"
      "?- s(X,Y).\n");
  // Same query language, but h differs (extra production).
  auto p2 = MustParseWith(p1.ctx,
      "s(X,Y) :- h2(X,Y).\n"   // placeholder to build in same ctx
      "h2(X,Y) :- e(X,Y).\n"
      "?- s(X,Y).\n");
  // Build the real comparand with matching names via fresh contexts.
  auto q1 = MustParse(
      "s(X,Y) :- h(X,Y).\n"
      "h(X,Y) :- e(X,Y).\n"
      "?- s(X,Y).\n");
  auto q2 = MustParse(
      "s(X,Y) :- h(X,Y).\n"
      "h(X,Y) :- e(X,Y).\n"
      "h(X,Y) :- f(X,Y).\n"  // h differs; s differs too here
      "?- s(X,Y).\n");
  Result<BoundedComparison> db =
      BoundedChainDbEquivalence(q1.program, q2.program);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->separated);
  EXPECT_NE(db->witness.find("f"), std::string::npos);
  (void)p2;
}

TEST(ChainEquivalenceTest, UniformEquivalenceSeparatesRecursionStyle) {
  // Same predicate name `tc`, left- vs right-linear: query equivalent,
  // uniformly different (Lemma 4.1(3) mirrors the Sagiv separation).
  auto right = MustParse(kRight);
  auto left = MustParse(
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- tc(X,Z), e(Z,Y).\n"
      "?- tc(X,Y).\n");
  Result<BoundedComparison> uniform =
      BoundedChainUniformEquivalence(right.program, left.program);
  ASSERT_TRUE(uniform.ok());
  EXPECT_TRUE(uniform->separated);
  Result<BoundedComparison> db =
      BoundedChainDbEquivalence(right.program, left.program);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(db->separated);  // same L for every nonterminal
}

TEST(ChainEquivalenceTest, IdenticalProgramsPassAllFourNotions) {
  auto p1 = MustParse(kRight);
  auto p2 = MustParse(kRight);
  EXPECT_FALSE(BoundedChainDbEquivalence(p1.program, p2.program)
                   ->separated);
  EXPECT_FALSE(BoundedChainUniformEquivalence(p1.program, p2.program)
                   ->separated);
  EXPECT_FALSE(BoundedChainQueryEquivalence(p1.program, p2.program)
                   ->separated);
  EXPECT_FALSE(
      BoundedChainUniformQueryEquivalence(p1.program, p2.program)
          ->separated);
}

TEST(ChainEquivalenceTest, MissingNonterminalSeparatesDbNotions) {
  auto p1 = MustParse(kRight);
  auto p2 = MustParse(
      "tc(X,Y) :- helper(X,Y).\n"
      "helper(X,Y) :- e(X,Y).\n"
      "helper(X,Y) :- e(X,Z), helper(Z,Y).\n"
      "?- tc(X,Y).\n");
  Result<BoundedComparison> db =
      BoundedChainDbEquivalence(p1.program, p2.program);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->separated);
  // Query equivalence still holds (both are e+).
  Result<BoundedComparison> query =
      BoundedChainQueryEquivalence(p1.program, p2.program);
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(query->separated);
}

}  // namespace
}  // namespace exdl
