#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace exdl {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arity");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
}

TEST(StatusTest, GovernanceFactories) {
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("full").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Cancelled("stop").code(), StatusCode::kCancelled);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  EXDL_ASSIGN_OR_RETURN(int h, Half(x));
  EXDL_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> err = Quarter(6);  // 6/2 = 3 is odd
  EXPECT_FALSE(err.ok());
}

TEST(ResultDeathTest, ValueOnErrorAbortsWithStatusMessage) {
  // value() on an error must abort in EVERY build mode (it used to be
  // assert-only, i.e. undefined behavior in release builds), and the abort
  // message must carry the status so the failure is diagnosable.
  Result<int> r = Status::NotFound("missing tuple");
  EXPECT_DEATH(r.value(), "Result::value\\(\\) on error.*missing tuple");
  const Result<int>& cr = r;
  EXPECT_DEATH(cr.value(), "NotFound: missing tuple");
  EXPECT_DEATH(Result<int>(Status::Internal("boom")).value(),
               "Internal: boom");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, BelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StringUtilTest, SplitTrims) {
  std::vector<std::string> parts = Split(" a , b ,c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,,b", ',').size(), 3u);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("magic_p", "magic_"));
  EXPECT_FALSE(StartsWith("p", "magic_"));
}

}  // namespace
}  // namespace exdl
