// Clause subsumption — the deletion the paper notes its summary procedure
// misses (end of Example 7).

#include <gtest/gtest.h>

#include "equiv/random_check.h"
#include "testing/test_util.h"
#include "transform/rule_deletion.h"
#include "transform/subsumption.h"

namespace exdl {
namespace {

using ::exdl::testing::MustParse;

TEST(SubsumptionTest, BasicVariantSubsumption) {
  auto parsed = MustParse(
      "q(X) :- a(X, Y).\n"
      "q(X) :- a(X, Z), b2(Z, W, V).\n");
  const Rule& general = parsed.program.rules()[0];
  const Rule& specific = parsed.program.rules()[1];
  EXPECT_TRUE(Subsumes(general, specific));
  EXPECT_FALSE(Subsumes(specific, general));
}

TEST(SubsumptionTest, HeadMustMatch) {
  auto parsed = MustParse(
      "q(X) :- a(X, Y).\n"
      "q(c) :- a(c, Z), b(Z).\n"  // subsumed: theta = {X -> c, Y -> Z}
      "r(X) :- a(X, Z), b(Z).\n");
  const std::vector<Rule>& rules = parsed.program.rules();
  EXPECT_TRUE(Subsumes(rules[0], rules[1]));
  EXPECT_FALSE(Subsumes(rules[0], rules[2]));  // different head predicate
}

TEST(SubsumptionTest, ConstantsOnlyMapForward) {
  auto parsed = MustParse(
      "q(X) :- a(X, c).\n"   // general has a constant
      "q(X) :- a(X, Y).\n");
  const std::vector<Rule>& rules = parsed.program.rules();
  // a(X, c) does not map onto a(X, Y): constants cannot become variables.
  EXPECT_FALSE(Subsumes(rules[0], rules[1]));
  // But the variable rule maps onto the constant one.
  EXPECT_TRUE(Subsumes(rules[1], rules[0]));
}

TEST(SubsumptionTest, RepeatedVariablesRestrict) {
  auto parsed = MustParse(
      "q(X) :- a(X, X).\n"   // diagonal only
      "q(X) :- a(X, Y).\n");
  const std::vector<Rule>& rules = parsed.program.rules();
  EXPECT_FALSE(Subsumes(rules[0], rules[1]));
  EXPECT_TRUE(Subsumes(rules[1], rules[0]));
}

TEST(SubsumptionTest, SetSemanticsAllowsSharedTargets) {
  // Both general literals map onto the single specific literal.
  auto parsed = MustParse(
      "q(X) :- a(X, Y), a(X, Z).\n"
      "q(X) :- a(X, W).\n");
  const std::vector<Rule>& rules = parsed.program.rules();
  EXPECT_TRUE(Subsumes(rules[0], rules[1]));
}

TEST(SubsumptionTest, NegationMustMatchExactly) {
  auto parsed = MustParse(
      "q(X) :- a(X, Y).\n"
      "q(X) :- a(X, Y), not b(Y).\n");
  const std::vector<Rule>& rules = parsed.program.rules();
  // The positive-only rule derives a superset: it subsumes the negated one.
  EXPECT_TRUE(Subsumes(rules[0], rules[1]));
  EXPECT_FALSE(Subsumes(rules[1], rules[0]));
}

TEST(SubsumptionTest, PaperExample7SecondRule) {
  // The rule the summary procedure cannot delete.
  auto parsed = MustParse(
      "q(X) :- a1(X, Y).\n"
      "q(X) :- a1(X, Z), b2(Z, W, V).\n"
      "a1(X, Y) :- b1(X, Y).\n"
      "?- q(X).\n");
  Result<SubsumptionResult> result = RemoveSubsumedRules(parsed.program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rules_removed, 1u);
  EXPECT_EQ(result->program.NumRules(), 2u);
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(parsed.program, result->program);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
}

TEST(SubsumptionTest, DuplicateRulesKeepOne) {
  auto parsed = MustParse(
      "q(X) :- a(X).\n"
      "q(Y) :- a(Y).\n"  // alphabetic variant
      "?- q(X).\n");
  Result<SubsumptionResult> result = RemoveSubsumedRules(parsed.program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->program.NumRules(), 1u);
}

TEST(SubsumptionTest, RecursiveRuleNotSubsumedByExit) {
  auto parsed = MustParse(
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  Result<SubsumptionResult> result = RemoveSubsumedRules(parsed.program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rules_removed, 0u);
}

TEST(SubsumptionTest, DriverRunsSubsumptionFirst) {
  auto parsed = MustParse(
      "q(X) :- a1(X, Y).\n"
      "q(X) :- a1(X, Z), b2(Z, W, V).\n"
      "a1(X, Y) :- b1(X, Y).\n"
      "?- q(X).\n");
  DeletionOptions options;
  Result<DeletionResult> result =
      DeleteRedundantRules(parsed.program, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->deleted_by_subsumption, 1u);
}

TEST(SubsumptionTest, PreservesUniformEquivalence) {
  // Subsumption is UE-sound: check on instances with derived facts too.
  auto parsed = MustParse(
      "q(X) :- a(X, Y).\n"
      "q(X) :- a(X, Z), a(Z, W).\n"
      "a(X, Y) :- e(X, Y).\n"
      "?- q(X).\n");
  Result<SubsumptionResult> result = RemoveSubsumedRules(parsed.program);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rules_removed, 1u);
  RandomCheckOptions options;
  options.populate_derived = true;
  Result<RandomCheckReport> check = CheckQueryEquivalentOnEdb(
      parsed.program, result->program, options);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
}

}  // namespace
}  // namespace exdl
