// Durable checkpoint/restore (DESIGN.md §11): snapshot round trips,
// loader hardening against corrupt bytes, crash/resume byte-identity in
// serial and parallel evaluation, and the deterministic fault-injection
// plan that drives all of it.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine.h"
#include "recovery/atomic_file.h"
#include "recovery/checkpoint.h"
#include "recovery/fault.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

using recovery::Checkpointer;
using recovery::DecodeSnapshot;
using recovery::ReadSnapshotFile;
using recovery::Snapshot;

/// Transitive closure over an n-edge chain: n rounds, O(n^2) tuples.
std::string ChainSource(int n) {
  std::string src =
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Z) :- e(X, Y), tc(Y, Z).\n"
      "?- tc(n0, X).\n";
  for (int i = 0; i < n; ++i) {
    src += "e(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ").\n";
  }
  return src;
}

/// True if the two databases hold exactly the same rows in the same
/// insertion order (insertion order is the semi-naive delta mechanism, so
/// resume correctness requires it, not just set equality).
bool SameDatabase(const Database& a, const Database& b) {
  for (const auto* pair : {&a, &b}) {
    const Database& x = *pair;
    const Database& y = (pair == &a) ? b : a;
    for (const auto& [pred, rel] : x.relations()) {
      const Relation* other = y.Find(pred);
      if (rel.size() == 0 && other == nullptr) continue;
      if (other == nullptr || rel.size() != other->size()) return false;
      for (size_t r = 0; r < rel.size(); ++r) {
        std::span<const Value> ra = rel.view().Scan(r);
        std::span<const Value> rb = other->view().Scan(r);
        if (!std::equal(ra.begin(), ra.end(), rb.begin(), rb.end())) {
          return false;
        }
      }
    }
  }
  return true;
}

/// A fresh directory under the test temp root.
std::string MakeCheckpointDir() {
  std::string templ = ::testing::TempDir() + "/recovery_test_XXXXXX";
  char* made = mkdtemp(templ.data());
  EXPECT_NE(made, nullptr);
  return templ;
}

/// Evaluates `source` through an Engine; `mutate` adjusts the options
/// before construction (checkpoint dir, threads, budget, ...).
struct EngineRun {
  Status status = Status::Ok();   ///< Run() error, if any.
  EvalResult result;              ///< Valid only when status is OK.
  uint64_t fingerprint = 0;
};

template <typename Fn>
EngineRun RunEngine(const std::string& source, Fn mutate,
                    const std::string& resume_path = "") {
  EngineOptions options;
  mutate(options);
  Engine engine(std::move(options));
  EngineRun out;
  Status loaded = engine.LoadSource(source);
  if (!loaded.ok()) {
    out.status = loaded;
    return out;
  }
  out.fingerprint = engine.ProgramFingerprint();
  if (!resume_path.empty()) {
    Status resumed = engine.Resume(resume_path);
    if (!resumed.ok()) {
      out.status = resumed;
      return out;
    }
  }
  Result<EvalResult> result = engine.Run();
  if (!result.ok()) {
    out.status = result.status();
    return out;
  }
  out.result = std::move(result).value();
  return out;
}

/// Every test disarms the global fault plan on both ends: a fault armed by
/// a failing test must never leak into the next one.
class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultPlan::Global().Disarm(); }
  void TearDown() override { FaultPlan::Global().Disarm(); }
};

using FaultPlanTest = RecoveryTest;
using SnapshotTest = RecoveryTest;

// ---------------------------------------------------------------------------
// Fault plan

TEST_F(FaultPlanTest, SpecParsing) {
  FaultPlan& plan = FaultPlan::Global();
  EXPECT_EQ(plan.Arm("nope").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(plan.Arm("storage.arena_grow:0").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(plan.Arm("storage.arena_grow:x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(plan.Arm("storage.arena_grow:1:explode").code(),
            StatusCode::kInvalidArgument);
  Status unknown = plan.Arm("no.such.site:1");
  EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);
  // The error teaches the registry, so a typo in a sweep script is
  // self-diagnosing.
  EXPECT_NE(unknown.ToString().find("registered"), std::string::npos);
  EXPECT_TRUE(plan.Arm("snapshot.write:3").ok());
  EXPECT_TRUE(plan.armed());
  EXPECT_TRUE(plan.Arm("storage.arena_grow:2:abort").ok());
}

TEST_F(FaultPlanTest, SiteRegistryIsStable) {
  EXPECT_TRUE(FaultPlan::IsSite("storage.arena_grow"));
  EXPECT_TRUE(FaultPlan::IsSite("eval.pool_dispatch"));
  EXPECT_TRUE(FaultPlan::IsSite("snapshot.open"));
  EXPECT_TRUE(FaultPlan::IsSite("snapshot.write"));
  EXPECT_TRUE(FaultPlan::IsSite("snapshot.fsync"));
  EXPECT_TRUE(FaultPlan::IsSite("snapshot.rename"));
  EXPECT_TRUE(FaultPlan::IsSite("daemon.accept"));
  EXPECT_TRUE(FaultPlan::IsSite("daemon.read"));
  EXPECT_TRUE(FaultPlan::IsSite("daemon.write"));
  EXPECT_TRUE(FaultPlan::IsSite("daemon.dispatch"));
  EXPECT_TRUE(FaultPlan::IsSite("factlog.append"));
  EXPECT_TRUE(FaultPlan::IsSite("factlog.fsync"));
  EXPECT_TRUE(FaultPlan::IsSite("factlog.compact_rename"));
  EXPECT_TRUE(FaultPlan::IsSite("daemon.recover_replay"));
  EXPECT_FALSE(FaultPlan::IsSite("snapshot.unlink"));
  EXPECT_FALSE(FaultPlan::IsSite("daemon.connect"));
  EXPECT_FALSE(FaultPlan::IsSite("factlog.truncate"));
  EXPECT_EQ(FaultPlan::Sites().size(), 14u);
}

TEST_F(FaultPlanTest, NthHitFiresExactlyOnce) {
  FaultPlan& plan = FaultPlan::Global();
  ASSERT_TRUE(plan.Arm("snapshot.open:3").ok());
  EXPECT_FALSE(plan.ShouldFail("snapshot.open"));  // hit 1
  EXPECT_FALSE(plan.ShouldFail("snapshot.fsync"));  // other site: no count
  EXPECT_FALSE(plan.ShouldFail("snapshot.open"));  // hit 2
  EXPECT_TRUE(plan.ShouldFail("snapshot.open"));   // hit 3: fires
  EXPECT_FALSE(plan.ShouldFail("snapshot.open"));  // hit 4: spent
  EXPECT_EQ(plan.hits(), 4u);
  plan.Disarm();
  EXPECT_FALSE(plan.armed());
  EXPECT_FALSE(plan.ShouldFail("snapshot.open"));
}

// ---------------------------------------------------------------------------
// Snapshot encode/decode

TEST_F(SnapshotTest, CheckpointFileRoundTrips) {
  const std::string dir = MakeCheckpointDir();
  EngineRun run = RunEngine(ChainSource(30), [&](EngineOptions& o) {
    o.checkpoint.directory = dir;
    o.checkpoint.every_rounds = 1;
  });
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();

  Result<Snapshot> snap = ReadSnapshotFile(Checkpointer::PathIn(dir));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  // The final checkpoint is cut at the last completed round: it carries the
  // converged database and the cumulative cursor.
  EXPECT_TRUE(SameDatabase(snap->db, run.result.db));
  EXPECT_EQ(snap->cursor.rounds, run.result.stats.rounds);
  EXPECT_EQ(snap->cursor.tuples_inserted, run.result.stats.tuples_inserted);
  EXPECT_EQ(snap->program_fingerprint, run.fingerprint);
  EXPECT_FALSE(snap->symbols.empty());
  EXPECT_FALSE(snap->preds.empty());
}

TEST_F(SnapshotTest, DefaultCursorEdbSnapshotRoundTrips) {
  // The durable-EDB compaction path (DESIGN.md §15) reuses this format
  // with a default cursor and the generation in the fingerprint field: an
  // encode/decode round trip must preserve the full interning state and
  // database and come back with an untouched cursor.
  Context ctx;
  PredId p = ctx.InternPredicate("p", 1);
  PredId e = ctx.InternPredicate("e", 2);
  Database db;
  for (int i = 0; i < 8; ++i) {
    Value v = ctx.InternSymbol("d" + std::to_string(i));
    db.GetOrCreate(p, 1).Insert(std::vector<Value>{v});
    db.GetOrCreate(e, 2).Insert(std::vector<Value>{v, v});
  }
  const std::string bytes =
      recovery::EncodeSnapshot(ctx, db, EvalCursor{}, /*fingerprint=*/42);
  Result<Snapshot> snap = DecodeSnapshot(bytes);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_TRUE(SameDatabase(snap->db, db));
  EXPECT_EQ(snap->program_fingerprint, 42u);
  EXPECT_EQ(snap->cursor.rounds, 0u);
  EXPECT_EQ(snap->cursor.tuples_inserted, 0u);
  EXPECT_EQ(snap->symbols.size(), ctx.NumSymbols());
}

TEST_F(SnapshotTest, EveryTruncationIsCorrupt) {
  const std::string dir = MakeCheckpointDir();
  EngineRun run = RunEngine(ChainSource(10), [&](EngineOptions& o) {
    o.checkpoint.directory = dir;
  });
  ASSERT_TRUE(run.status.ok());
  Result<std::string> bytes =
      recovery::ReadFileToString(Checkpointer::PathIn(dir));
  ASSERT_TRUE(bytes.ok());
  ASSERT_GT(bytes->size(), 0u);
  for (size_t len = 0; len < bytes->size(); ++len) {
    Result<Snapshot> snap = DecodeSnapshot(std::string_view(*bytes).substr(0, len));
    ASSERT_FALSE(snap.ok()) << "accepted a " << len << "-byte prefix";
    ASSERT_EQ(snap.status().code(), StatusCode::kCorruptCheckpoint)
        << snap.status().ToString();
  }
}

TEST_F(SnapshotTest, EverySingleBitFlipIsCorrupt) {
  const std::string dir = MakeCheckpointDir();
  EngineRun run = RunEngine(ChainSource(10), [&](EngineOptions& o) {
    o.checkpoint.directory = dir;
  });
  ASSERT_TRUE(run.status.ok());
  Result<std::string> bytes =
      recovery::ReadFileToString(Checkpointer::PathIn(dir));
  ASSERT_TRUE(bytes.ok());
  std::string mutated = *bytes;
  for (size_t i = 0; i < mutated.size(); ++i) {
    for (int bit : {0, 7}) {
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      Result<Snapshot> snap = DecodeSnapshot(mutated);
      ASSERT_FALSE(snap.ok()) << "accepted flip of bit " << bit << " in byte "
                              << i;
      ASSERT_EQ(snap.status().code(), StatusCode::kCorruptCheckpoint);
      mutated[i] = (*bytes)[i];
    }
  }
}

TEST_F(SnapshotTest, MissingFileIsNotFoundNotCorrupt) {
  Result<Snapshot> snap = ReadSnapshotFile("/nonexistent/checkpoint.exdl");
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotTest, CadenceHonorsEveryNRounds) {
  const std::string dir = MakeCheckpointDir();
  EngineRun run = RunEngine(ChainSource(20), [&](EngineOptions& o) {
    o.checkpoint.directory = dir;
    o.checkpoint.every_rounds = 3;
  });
  ASSERT_TRUE(run.status.ok());
  Result<Snapshot> snap = ReadSnapshotFile(Checkpointer::PathIn(dir));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->cursor.rounds % 3, 0u);
  EXPECT_GT(snap->cursor.rounds, 0u);
}

// ---------------------------------------------------------------------------
// Crash + resume

TEST_F(RecoveryTest, SerialCrashResumeIsByteIdentical) {
  EngineRun ref = RunEngine(ChainSource(150), [](EngineOptions&) {});
  ASSERT_TRUE(ref.status.ok());

  const std::string dir = MakeCheckpointDir();
  ASSERT_TRUE(FaultPlan::Global().Arm("storage.arena_grow:5").ok());
  EngineRun crashed = RunEngine(ChainSource(150), [&](EngineOptions& o) {
    o.checkpoint.directory = dir;
    o.checkpoint.every_rounds = 1;
  });
  // The injected fault is a hard error: no partial result escapes.
  ASSERT_FALSE(crashed.status.ok());
  EXPECT_EQ(crashed.status.code(), StatusCode::kInternal);

  FaultPlan::Global().Disarm();
  EngineRun resumed = RunEngine(
      ChainSource(150), [](EngineOptions&) {}, Checkpointer::PathIn(dir));
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
  EXPECT_TRUE(SameDatabase(resumed.result.db, ref.result.db));
  EXPECT_EQ(resumed.result.answers, ref.result.answers);
  // Cumulative stats survive the crash: the resumed run reports the whole
  // computation, not just its tail.
  EXPECT_EQ(resumed.result.stats.rounds, ref.result.stats.rounds);
  EXPECT_EQ(resumed.result.stats.tuples_inserted,
            ref.result.stats.tuples_inserted);
  EXPECT_EQ(resumed.result.stats.rule_firings, ref.result.stats.rule_firings);
}

TEST_F(RecoveryTest, ParallelCrashResumeIsByteIdentical) {
  // pool_min_delta_rows = 1 disables the small-delta inline gate so the
  // chain's tiny delta rounds really dispatch (the armed fault site must
  // be reachable every round).
  EngineRun ref = RunEngine(ChainSource(200), [](EngineOptions& o) {
    o.eval.num_threads = 4;
    o.eval.pool_min_delta_rows = 1;
  });
  ASSERT_TRUE(ref.status.ok());

  const std::string dir = MakeCheckpointDir();
  ASSERT_TRUE(FaultPlan::Global().Arm("eval.pool_dispatch:5").ok());
  EngineRun crashed = RunEngine(ChainSource(200), [&](EngineOptions& o) {
    o.eval.num_threads = 4;
    o.eval.pool_min_delta_rows = 1;
    o.checkpoint.directory = dir;
    o.checkpoint.every_rounds = 1;
  });
  ASSERT_FALSE(crashed.status.ok());
  ASSERT_GE(FaultPlan::Global().hits(), 5u);  // The pool really dispatched.

  FaultPlan::Global().Disarm();
  EngineRun resumed = RunEngine(
      ChainSource(200),
      [](EngineOptions& o) { o.eval.num_threads = 4; },
      Checkpointer::PathIn(dir));
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
  EXPECT_TRUE(SameDatabase(resumed.result.db, ref.result.db));
  EXPECT_EQ(resumed.result.answers, ref.result.answers);
  EXPECT_EQ(resumed.result.stats.tuples_inserted,
            ref.result.stats.tuples_inserted);

  // Cross-mode: a serial resume of the parallel run's checkpoint also
  // converges to the same state (partition-order merge keeps parallel
  // rounds byte-identical to serial ones).
  EngineRun serial_resume = RunEngine(
      ChainSource(200), [](EngineOptions&) {}, Checkpointer::PathIn(dir));
  ASSERT_TRUE(serial_resume.status.ok());
  EXPECT_TRUE(SameDatabase(serial_resume.result.db, ref.result.db));
}

TEST_F(RecoveryTest, BitsetRepresentationCrashResumeIsByteIdentical) {
  // A monadic program (every rule bitset-eligible, DESIGN.md §14): the
  // checkpoints cut mid-run carry arity-1 relations whose dedup bitsets
  // are rebuilt on load. Resume must be representation-independent — a
  // checkpoint written under kBitset resumes under kTuple (and the
  // default kAuto) to the same converged database.
  auto monadic_source = [](int n) {
    std::string src =
        "reach(Y) :- reach(X), e(X, Y).\n"
        "reach(X) :- zero(X).\n"
        "?- reach(X).\n"
        "zero(n0).\n";
    for (int i = 0; i < n; ++i) {
      src +=
          "e(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ").\n";
    }
    return src;
  };
  const std::string source = monadic_source(150);
  EngineRun ref = RunEngine(source, [](EngineOptions& o) {
    o.eval.representation = Representation::kBitset;
  });
  ASSERT_TRUE(ref.status.ok());
  EXPECT_GT(ref.result.representation.words_scanned, 0u);

  const std::string dir = MakeCheckpointDir();
  ASSERT_TRUE(FaultPlan::Global().Arm("storage.arena_grow:40").ok());
  EngineRun crashed = RunEngine(source, [&](EngineOptions& o) {
    o.eval.representation = Representation::kBitset;
    o.checkpoint.directory = dir;
    o.checkpoint.every_rounds = 1;
  });
  ASSERT_FALSE(crashed.status.ok());
  EXPECT_EQ(crashed.status.code(), StatusCode::kInternal);
  FaultPlan::Global().Disarm();

  // The interrupted run left a mid-fixpoint checkpoint with a non-empty
  // unary `reach` relation in it.
  Result<Snapshot> snap = ReadSnapshotFile(Checkpointer::PathIn(dir));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  bool has_unary_rows = false;
  for (const auto& [pred, rel] : snap->db.relations()) {
    if (rel.arity() == 1 && rel.size() > 0) has_unary_rows = true;
  }
  EXPECT_TRUE(has_unary_rows);

  for (Representation representation :
       {Representation::kBitset, Representation::kTuple,
        Representation::kAuto}) {
    EngineRun resumed = RunEngine(
        source,
        [&](EngineOptions& o) { o.eval.representation = representation; },
        Checkpointer::PathIn(dir));
    ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
    EXPECT_TRUE(SameDatabase(resumed.result.db, ref.result.db));
    EXPECT_EQ(resumed.result.answers, ref.result.answers);
    EXPECT_EQ(resumed.result.stats.rounds, ref.result.stats.rounds);
    EXPECT_EQ(resumed.result.stats.tuples_inserted,
              ref.result.stats.tuples_inserted);
    EXPECT_EQ(resumed.result.stats.rule_firings,
              ref.result.stats.rule_firings);
  }
}

TEST_F(RecoveryTest, SnapshotWriteFaultLeavesPreviousCheckpointGood) {
  const std::string dir = MakeCheckpointDir();
  ASSERT_TRUE(FaultPlan::Global().Arm("snapshot.write:3").ok());
  EngineRun crashed = RunEngine(ChainSource(60), [&](EngineOptions& o) {
    o.checkpoint.directory = dir;
    o.checkpoint.every_rounds = 1;
  });
  // A sink failure is a hard error (fail-closed), never a silent skip.
  ASSERT_FALSE(crashed.status.ok());

  FaultPlan::Global().Disarm();
  // The torn write went to the temp file; the real checkpoint is the last
  // complete one (round 2 of 3 attempted).
  Result<Snapshot> snap = ReadSnapshotFile(Checkpointer::PathIn(dir));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->cursor.rounds, 2u);

  EngineRun ref = RunEngine(ChainSource(60), [](EngineOptions&) {});
  EngineRun resumed = RunEngine(
      ChainSource(60), [](EngineOptions&) {}, Checkpointer::PathIn(dir));
  ASSERT_TRUE(resumed.status.ok());
  EXPECT_TRUE(SameDatabase(resumed.result.db, ref.result.db));
}

TEST_F(RecoveryTest, BudgetTrippedRunLeavesResumableCheckpoint) {
  EngineRun ref = RunEngine(ChainSource(100), [](EngineOptions&) {});
  ASSERT_TRUE(ref.status.ok());

  const std::string dir = MakeCheckpointDir();
  EngineRun tripped = RunEngine(ChainSource(100), [&](EngineOptions& o) {
    o.checkpoint.directory = dir;
    o.eval.budget.max_tuples = 1500;
  });
  // A budget trip is a partial *result*, not an error — and because the
  // checkpoint is cut before the budget check, the trip round itself is
  // on disk and nothing is lost.
  ASSERT_TRUE(tripped.status.ok());
  ASSERT_EQ(tripped.result.termination.code(),
            StatusCode::kResourceExhausted);

  EngineRun resumed = RunEngine(
      ChainSource(100), [](EngineOptions&) {}, Checkpointer::PathIn(dir));
  ASSERT_TRUE(resumed.status.ok());
  EXPECT_TRUE(resumed.result.termination.ok());
  EXPECT_TRUE(SameDatabase(resumed.result.db, ref.result.db));
  EXPECT_EQ(resumed.result.answers, ref.result.answers);
}

TEST_F(RecoveryTest, FingerprintMismatchIsRejected) {
  const std::string dir = MakeCheckpointDir();
  EngineRun run = RunEngine(ChainSource(10), [&](EngineOptions& o) {
    o.checkpoint.directory = dir;
  });
  ASSERT_TRUE(run.status.ok());

  // Same predicates and symbols would not even matter: the program text
  // differs, so the fingerprint refuses before any id-level check.
  EngineRun other = RunEngine(
      "tc(X, Y) :- e(X, Y).\n?- tc(n0, X).\ne(n0, n1).\n",
      [](EngineOptions&) {}, Checkpointer::PathIn(dir));
  ASSERT_FALSE(other.status.ok());
  EXPECT_EQ(other.status.code(), StatusCode::kFailedPrecondition);

  // Same program under different evaluation semantics is also a different
  // computation.
  EngineRun naive = RunEngine(
      ChainSource(10), [](EngineOptions& o) { o.eval.seminaive = false; },
      Checkpointer::PathIn(dir));
  ASSERT_FALSE(naive.status.ok());
  EXPECT_EQ(naive.status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(RecoveryTest, CheckpointedRunIsByteIdenticalToPlain) {
  // Checkpointing must observe, never perturb: the run with a sink enabled
  // produces exactly the database and stats of the plain run.
  EngineRun plain = RunEngine(ChainSource(80), [](EngineOptions&) {});
  ASSERT_TRUE(plain.status.ok());
  const std::string dir = MakeCheckpointDir();
  EngineRun observed = RunEngine(ChainSource(80), [&](EngineOptions& o) {
    o.checkpoint.directory = dir;
    o.checkpoint.every_rounds = 1;
  });
  ASSERT_TRUE(observed.status.ok());
  EXPECT_TRUE(SameDatabase(observed.result.db, plain.result.db));
  EXPECT_EQ(observed.result.answers, plain.result.answers);
  EXPECT_EQ(observed.result.stats.rounds, plain.result.stats.rounds);
  EXPECT_EQ(observed.result.stats.tuples_inserted,
            plain.result.stats.tuples_inserted);
  EXPECT_EQ(observed.result.stats.index_probes,
            plain.result.stats.index_probes);
}

TEST_F(RecoveryTest, FaultSweepAlwaysLeavesARecoverablePath) {
  // The in-test edition of tools/fault_sweep.sh: every registered site, two
  // trigger counts, 4-thread evaluation. Each injected fault must leave
  // either the correct final result (the fault site was never reached or
  // the failure was absorbed) or a state from which resume — or a plain
  // restart when no checkpoint was ever written — reproduces the reference
  // exactly.
  const std::string source = ChainSource(200);
  EngineRun ref = RunEngine(source, [](EngineOptions& o) {
    o.eval.num_threads = 4;
  });
  ASSERT_TRUE(ref.status.ok());

  for (std::string_view site : FaultPlan::Sites()) {
    for (uint64_t trigger : {1u, 2u}) {
      const std::string spec =
          std::string(site) + ":" + std::to_string(trigger);
      SCOPED_TRACE(spec);
      const std::string dir = MakeCheckpointDir();
      ASSERT_TRUE(FaultPlan::Global().Arm(spec).ok());
      EngineRun faulted = RunEngine(source, [&](EngineOptions& o) {
        o.eval.num_threads = 4;
        o.checkpoint.directory = dir;
        o.checkpoint.every_rounds = 1;
      });
      FaultPlan::Global().Disarm();

      if (faulted.status.ok()) {
        EXPECT_TRUE(SameDatabase(faulted.result.db, ref.result.db));
        continue;
      }
      const std::string path = Checkpointer::PathIn(dir);
      const bool have_checkpoint = ReadSnapshotFile(path).ok();
      EngineRun recovered = RunEngine(
          source, [](EngineOptions& o) { o.eval.num_threads = 4; },
          have_checkpoint ? path : "");
      ASSERT_TRUE(recovered.status.ok()) << recovered.status.ToString();
      EXPECT_TRUE(SameDatabase(recovered.result.db, ref.result.db));
      EXPECT_EQ(recovered.result.answers, ref.result.answers);
    }
  }
}

}  // namespace
}  // namespace exdl
