// Coverage for the smaller public API surfaces not exercised elsewhere:
// stats arithmetic, b/f adornment helpers, plan rendering, freeze mapping,
// random-instance determinism.

#include <gtest/gtest.h>

#include "ast/adornment.h"
#include "core/engine.h"
#include "equiv/freeze.h"
#include "equiv/random_check.h"
#include "eval/evaluator.h"
#include "eval/plan.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

using ::exdl::testing::MustParse;

TEST(EvalStatsTest, AccumulationAddsFieldwise) {
  EvalStats a;
  a.rounds = 2;
  a.rule_firings = 10;
  a.tuples_inserted = 7;
  a.duplicate_inserts = 3;
  a.index_probes = 5;
  a.rows_matched = 20;
  a.rules_retired = 1;
  EvalStats b = a;
  b += a;
  EXPECT_EQ(b.rounds, 4u);
  EXPECT_EQ(b.rule_firings, 20u);
  EXPECT_EQ(b.tuples_inserted, 14u);
  EXPECT_EQ(b.duplicate_inserts, 6u);
  EXPECT_EQ(b.index_probes, 10u);
  EXPECT_EQ(b.rows_matched, 40u);
  EXPECT_EQ(b.rules_retired, 2u);
}

TEST(AdornmentTest, BoundFreeHelpers) {
  Adornment bf = *Adornment::Parse("bfb");
  EXPECT_TRUE(bf.bound(0));
  EXPECT_TRUE(bf.free(1));
  EXPECT_TRUE(bf.bound(2));
  EXPECT_EQ(bf.CountBound(), 2u);
  Adornment all_free = Adornment::AllFree(3);
  EXPECT_EQ(all_free.str(), "fff");
  EXPECT_EQ(all_free.CountBound(), 0u);
}

TEST(AdornmentTest, MutationHelpers) {
  Adornment a = Adornment::AllNeeded(2);
  a.set(1, Adornment::kExistential);
  EXPECT_EQ(a.str(), "nd");
  a.push_back(Adornment::kNeeded);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.needed(2));
}

TEST(PlanToStringTest, ShowsAccessPathsAndNegation) {
  auto parsed = MustParse("p(X) :- e(X, c7), big(Y, Z), not bad(X).\n");
  PlanOptions options;
  Result<RulePlan> plan = CompileRule(parsed.program.rules()[0], options);
  ASSERT_TRUE(plan.ok());
  std::string rendered = PlanToString(*parsed.ctx, *plan);
  EXPECT_NE(rendered.find("anti-join bad"), std::string::npos);
  EXPECT_NE(rendered.find("[index on ("), std::string::npos);
  EXPECT_NE(rendered.find("[scan]"), std::string::npos);
  EXPECT_NE(rendered.find("emit p(r"), std::string::npos);
}

TEST(FreezeTest, VarToConstCoversEveryVariable) {
  auto parsed = MustParse("p(X, Y) :- q(X, Z), r(Z, Y, W).\n");
  FrozenRule frozen =
      FreezeRule(parsed.program.rules()[0], parsed.ctx.get());
  EXPECT_EQ(frozen.var_to_const.size(), 4u);  // X Y Z W
  // All frozen constants are distinct.
  std::set<SymbolId> values;
  for (const auto& [var, c] : frozen.var_to_const) values.insert(c);
  EXPECT_EQ(values.size(), 4u);
}

TEST(RandomInstanceTest, DeterministicAndBounded) {
  Context ctx;
  PredId p = ctx.InternPredicate("p", 2);
  Database d1 = RandomInstance(&ctx, {p}, 5, 10, 99);
  Database d2 = RandomInstance(&ctx, {p}, 5, 10, 99);
  EXPECT_EQ(d1.Count(p), d2.Count(p));
  EXPECT_LE(d1.Count(p), 10u);
  const Relation* rel = d1.Find(p);
  if (rel != nullptr) {
    for (size_t r = 0; r < rel->size(); ++r) {
      for (Value v : rel->view().Scan(r)) {
        EXPECT_TRUE(ctx.SymbolName(v).rfind("c", 0) == 0);
      }
    }
  }
}

TEST(ProgramTest, RulesDefiningAndClearQuery) {
  auto parsed = MustParse(
      "p(X) :- e(X).\n"
      "p(X) :- f(X).\n"
      "q(X) :- p(X).\n"
      "?- q(X).\n");
  Program copy = parsed.program.Clone();
  copy.ClearQuery();
  EXPECT_FALSE(copy.query().has_value());
  PredId p = parsed.program.rules()[0].head.pred;
  EXPECT_EQ(parsed.program.RulesDefining(p).size(), 2u);
}

TEST(StatusTest, ResultMoveSemantics) {
  Result<std::string> r = std::string("payload");
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ContextTest, FreshPredicateUniqueNames) {
  Context ctx;
  PredId a = ctx.FreshPredicate("aux", 2);
  PredId b = ctx.FreshPredicate("aux", 2);
  EXPECT_NE(a, b);
  EXPECT_NE(ctx.PredicateDisplayName(a), ctx.PredicateDisplayName(b));
}

// The public facade: parse -> optimize -> run as one session object.
TEST(EngineTest, LoadOptimizeRunSession) {
  Engine engine;
  EXPECT_FALSE(engine.loaded());
  ASSERT_TRUE(engine
                  .LoadSource(
                      "tc(X, Y) :- e(X, Y).\n"
                      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
                      "?- tc(n0, Y).\n"
                      "e(n0, n1). e(n1, n2).\n")
                  .ok());
  EXPECT_TRUE(engine.loaded());
  EXPECT_EQ(engine.program().rules().size(), 2u);
  ASSERT_TRUE(engine.Optimize().ok());
  EXPECT_TRUE(engine.optimize_termination().ok());
  EXPECT_EQ(engine.report().original_rules, 2u);
  Result<EvalResult> result = engine.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.ok());
  EXPECT_EQ(result->answers.size(), 2u);  // n1, n2
}

TEST(EngineTest, RunBeforeLoadFailsCleanly) {
  Engine engine;
  EXPECT_FALSE(engine.Run().ok());
  EXPECT_FALSE(engine.Optimize().ok());
  EXPECT_FALSE(engine.LoadSource("p(X) :- ???").ok());
}

TEST(EngineTest, TelemetryJsonHasStableSchema) {
  EngineOptions options;
  options.collect_telemetry = true;
  Engine engine(std::move(options));
  ASSERT_TRUE(engine
                  .LoadSource(
                      "tc(X, Y) :- e(X, Y).\n"
                      "?- tc(X, Y).\n"
                      "e(n0, n1).\n")
                  .ok());
  ASSERT_TRUE(engine.Optimize().ok());
  ASSERT_TRUE(engine.Run().ok());
  std::string json = engine.TelemetryJson("run", "inline");
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"command\":\"run\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"rules\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"termination\":\"ok\""), std::string::npos);
}

TEST(EngineTest, TelemetryOffByDefault) {
  Engine engine;
  EXPECT_EQ(engine.telemetry(), nullptr);
  ASSERT_TRUE(engine.LoadSource("p(X) :- e(X).\n?- p(X).\ne(n0).\n").ok());
  ASSERT_TRUE(engine.Run().ok());
  // The document stays valid with empty metrics/spans arrays.
  std::string json = engine.TelemetryJson("run", "");
  EXPECT_NE(json.find("\"metrics\":[]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"spans\":[]"), std::string::npos) << json;
}

TEST(EvaluatorTest, GroundQueryFalseWhenAbsent) {
  auto parsed = MustParse(
      "e(n0, n1).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "?- tc(n1, n0).\n");
  EvalResult result = testing::MustEval(parsed.program, parsed.edb);
  EXPECT_FALSE(result.ground_query_true);
  EXPECT_TRUE(result.answers.empty());
}

}  // namespace
}  // namespace exdl
