#include <gtest/gtest.h>

#include "equiv/optimistic.h"
#include "equiv/random_check.h"
#include "equiv/uniform_equivalence.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

using ::exdl::testing::MustParse;

TEST(OptimisticFixpointTest, FiresOnSingleKnownLiteral) {
  // p(X) :- a(X), b(X): optimistically, a(c) alone derives p(c).
  auto parsed = MustParse(
      "a(c1).\n"
      "p(X) :- a(X), b(X).\n"
      "?- p(X).\n");
  Result<Database> db = OptimisticFixpoint(parsed.program, parsed.edb);
  ASSERT_TRUE(db.ok());
  PredId p = parsed.program.query()->pred;
  EXPECT_EQ(db->Count(p), 1u);
}

TEST(OptimisticFixpointTest, UnboundHeadVarsRangeOverDomain) {
  auto parsed = MustParse(
      "a(c1). junk(c2).\n"
      "p(X, Y) :- a(X), b(Y).\n"
      "?- p(X, Y).\n");
  Result<Database> db = OptimisticFixpoint(parsed.program, parsed.edb);
  ASSERT_TRUE(db.ok());
  PredId p = parsed.program.query()->pred;
  // From a(c1): p(c1, *) for * in {c1, c2} = 2 tuples; from b: none (b
  // empty). Also the b-literal route: no b facts, nothing.
  EXPECT_EQ(db->Count(p), 2u);
}

TEST(OptimisticFixpointTest, RepeatedUnboundHeadVarStaysEqual) {
  auto parsed = MustParse(
      "a(c1). junk(c2).\n"
      "p(Y, Y) :- a(X), b(Y).\n"
      "?- p(U, V).\n");
  // The a-route leaves Y unbound: p(d, d) for each domain constant d.
  Result<Database> db = OptimisticFixpoint(parsed.program, parsed.edb);
  ASSERT_TRUE(db.ok());
  PredId p = parsed.program.query()->pred;
  ASSERT_EQ(db->Count(p), 2u);
  for (const Atom& fact : db->FactsOf(p)) {
    EXPECT_EQ(fact.args[0], fact.args[1]);
  }
}

TEST(OptimisticFixpointTest, OverapproximatesStandardFixpoint) {
  auto parsed = MustParse(
      "e(c1, c2). e(c2, c3).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  Result<Database> optimistic =
      OptimisticFixpoint(parsed.program, parsed.edb);
  ASSERT_TRUE(optimistic.ok());
  EvalResult standard = testing::MustEval(parsed.program, parsed.edb);
  PredId tc = parsed.program.query()->pred;
  const Relation* std_rel = standard.db.Find(tc);
  ASSERT_NE(std_rel, nullptr);
  const Relation* opt_rel = optimistic->Find(tc);
  ASSERT_NE(opt_rel, nullptr);
  for (size_t i = 0; i < std_rel->size(); ++i) {
    EXPECT_TRUE(opt_rel->Contains(std_rel->view().Scan(i)));
  }
  EXPECT_GE(opt_rel->size(), std_rel->size());
}

TEST(OptimisticFixpointTest, SizeCapReported) {
  auto parsed = MustParse(
      "e(c1, c2). e(c2, c3). e(c3, c4). e(c4, c5).\n"
      "p(X, Y, Z) :- e(X, W), q(Y, Z).\n"
      "q(Y, Z) :- p(Y, Z, W).\n"
      "?- p(X, Y, Z).\n");
  OptimisticOptions tiny;
  tiny.max_facts = 10;
  EXPECT_FALSE(OptimisticFixpoint(parsed.program, parsed.edb, tiny).ok());
}

TEST(OptimisticDeletionTest, PaperExample6RecursiveNnRule) {
  // Example 6: under uniform *query* equivalence the recursive a^nn rule
  // can be deleted (Sagiv's UE test cannot do this, see
  // uniform_equivalence_test).
  auto parsed = MustParse(
      "and(X) :- ann(X, Z), p(Z, Y).\n"   // r0
      "and(X) :- p(X, Y).\n"              // r1
      "ann(X, Y) :- ann(X, Z), p(Z, Y).\n"  // r2: delete me
      "ann(X, Y) :- p(X, Y).\n"           // r3
      "?- and(X).\n");
  Result<bool> deletable = DeletableUnderOptimisticUqe(parsed.program, 2);
  ASSERT_TRUE(deletable.ok()) << deletable.status().ToString();
  EXPECT_TRUE(*deletable);
  // And the deletion really is query-preserving on EDB instances.
  Program without(parsed.program.context());
  for (size_t i = 0; i < parsed.program.rules().size(); ++i) {
    if (i != 2) without.AddRule(parsed.program.rules()[i]);
  }
  without.SetQuery(*parsed.program.query());
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(parsed.program, without);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
}

TEST(OptimisticDeletionTest, LoadBearingRuleNotDeletable) {
  auto parsed = MustParse(
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  for (size_t r = 0; r < 2; ++r) {
    Result<bool> deletable = DeletableUnderOptimisticUqe(parsed.program, r);
    ASSERT_TRUE(deletable.ok());
    EXPECT_FALSE(*deletable) << "rule " << r;
  }
}

TEST(OptimisticDeletionTest, StrictlyStrongerThanSagivOnExample6) {
  auto parsed = MustParse(
      "and(X) :- ann(X, Z), p(Z, Y).\n"
      "and(X) :- p(X, Y).\n"
      "ann(X, Y) :- ann(X, Z), p(Z, Y).\n"
      "ann(X, Y) :- p(X, Y).\n"
      "?- and(X).\n");
  Result<bool> sagiv = DeletableUnderUniformEquivalence(parsed.program, 2);
  ASSERT_TRUE(sagiv.ok());
  EXPECT_FALSE(*sagiv);  // UE says no
  Result<bool> optimistic = DeletableUnderOptimisticUqe(parsed.program, 2);
  ASSERT_TRUE(optimistic.ok());
  EXPECT_TRUE(*optimistic);  // UQE says yes
}

TEST(OptimisticDeletionTest, RequiresQuery) {
  auto parsed = MustParse("p(X) :- e(X).\n");
  EXPECT_FALSE(DeletableUnderOptimisticUqe(parsed.program, 0).ok());
}

TEST(OptimisticDeletionTest, IndexOutOfRange) {
  auto parsed = MustParse("p(X) :- e(X).\n?- p(X).\n");
  EXPECT_FALSE(DeletableUnderOptimisticUqe(parsed.program, 3).ok());
}

}  // namespace
}  // namespace exdl
