#include <gtest/gtest.h>

#include "ast/printer.h"
#include "analysis/dependency_graph.h"
#include "core/optimizer.h"
#include "equiv/random_check.h"
#include "testing/test_util.h"
#include "transform/magic.h"

namespace exdl {
namespace {

using ::exdl::testing::EvalAnswers;
using ::exdl::testing::MustParse;

const char kExample1[] =
    "query(X) :- a(X, Y).\n"
    "a(X, Y) :- p(X, Z), a(Z, Y).\n"
    "a(X, Y) :- p(X, Y).\n"
    "?- query(X).\n";

const char kExample1WithFacts[] =
    "p(n0, n1). p(n1, n2). p(n2, n3). p(n5, n5).\n"
    "query(X) :- a(X, Y).\n"
    "a(X, Y) :- p(X, Z), a(Z, Y).\n"
    "a(X, Y) :- p(X, Y).\n"
    "?- query(X).\n";

TEST(OptimizerTest, Example1PipelineProducesUnaryRecursion) {
  auto parsed = MustParse(kExample1);
  Result<OptimizedProgram> optimized = OptimizeExistential(parsed.program);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  const OptimizationReport& report = optimized->report;
  EXPECT_TRUE(report.adorned);
  EXPECT_EQ(report.predicates_projected, 1u);
  EXPECT_EQ(report.positions_dropped, 1u);
  // Every remaining derived predicate is unary.
  for (const Rule& r : optimized->program.rules()) {
    EXPECT_LE(parsed.ctx->predicate(r.head.pred).arity, 1u);
  }
}

TEST(OptimizerTest, Example1AnswersPreserved) {
  auto parsed = MustParse(kExample1WithFacts);
  Result<OptimizedProgram> optimized = OptimizeExistential(parsed.program);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            EvalAnswers(optimized->program, parsed.edb));
}

TEST(OptimizerTest, Example1RandomizedEquivalence) {
  auto parsed = MustParse(kExample1);
  Result<OptimizedProgram> optimized = OptimizeExistential(parsed.program);
  ASSERT_TRUE(optimized.ok());
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(parsed.program, optimized->program);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
}

TEST(OptimizerTest, Examples5And6EndToEnd) {
  // The paper's Example 5 program; Examples 6 shows UQE deletion turning
  // it non-recursive. Our summary-based pass plus cleanup should reach a
  // program without recursion; with the optimistic pass enabled it must.
  auto parsed = MustParse(
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- a(X, Z), p(Z, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X).\n");
  OptimizerOptions options;
  options.deletion.use_optimistic = true;
  options.deletion.use_sagiv = true;
  Result<OptimizedProgram> optimized =
      OptimizeExistential(parsed.program, options);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  // Non-recursive result: no rule's body mentions its own head predicate
  // transitively. Cheap check: total rules shrink and answers survive.
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(parsed.program, optimized->program);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
  size_t deleted = optimized->report.deleted_by_summary +
                   optimized->report.deleted_by_sagiv +
                   optimized->report.deleted_by_optimistic;
  EXPECT_GT(deleted, 0u);
  // The optimized program of Example 6 has no recursion left.
  DependencyGraph dg(optimized->program);
  EXPECT_FALSE(dg.HasRecursion());
}

TEST(OptimizerTest, BooleanComponentExtraction) {
  auto parsed = MustParse(
      "query(X) :- q1(X, Y), q3(U, V), q4(V).\n"
      "q4(V) :- q6(V).\n"
      "?- query(X).\n");
  Result<OptimizedProgram> optimized = OptimizeExistential(parsed.program);
  ASSERT_TRUE(optimized.ok());
  EXPECT_GE(optimized->report.booleans_created, 1u);
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(parsed.program, optimized->program);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
}

TEST(OptimizerTest, UnusedUnitRulesRetracted) {
  // Nothing deletable here, so added covering unit rules must be retracted
  // and the program restored to its pre-unit-rule shape.
  auto parsed = MustParse(kExample1);
  Result<OptimizedProgram> optimized = OptimizeExistential(parsed.program);
  ASSERT_TRUE(optimized.ok());
  // No unit rule should survive unless a deletion leaned on it.
  if (optimized->report.deleted_by_summary == 0) {
    EXPECT_EQ(optimized->report.unit_rules_added,
              optimized->report.unit_rules_retracted);
  }
}

TEST(OptimizerTest, PhasesCanBeDisabled) {
  auto parsed = MustParse(kExample1WithFacts);
  OptimizerOptions off;
  off.adorn = false;
  off.push_projections = false;
  off.extract_components = false;
  off.add_unit_rules = false;
  off.delete_rules = false;
  Result<OptimizedProgram> optimized =
      OptimizeExistential(parsed.program, off);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(ToString(optimized->program), ToString(parsed.program));
}

TEST(OptimizerTest, MagicComposesWithExistentialPipeline) {
  auto parsed = MustParse(
      "p(n0, n1). p(n1, n2). p(n5, n6).\n"
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- p(X, Z), a(Z, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(n0).\n");
  OptimizerOptions options;
  options.apply_magic = true;
  Result<OptimizedProgram> optimized =
      OptimizeExistential(parsed.program, options);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  ASSERT_TRUE(optimized->magic_seed.has_value());
  Database seeded = WithSeed(parsed.edb, *optimized->magic_seed);
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            EvalAnswers(optimized->program, seeded));
  EXPECT_TRUE(optimized->report.magic_applied);
}

TEST(OptimizerTest, ReportToStringMentionsPhases) {
  auto parsed = MustParse(kExample1);
  Result<OptimizedProgram> optimized = OptimizeExistential(parsed.program);
  ASSERT_TRUE(optimized.ok());
  std::string report = optimized->report.ToString();
  EXPECT_NE(report.find("rules:"), std::string::npos);
  EXPECT_NE(report.find("projection pushing"), std::string::npos);
}

TEST(OptimizerTest, RequiresQuery) {
  auto parsed = MustParse("p(X) :- e(X).\n");
  EXPECT_FALSE(OptimizeExistential(parsed.program).ok());
}

TEST(OptimizerTest, QueryOverBasePredicate) {
  auto parsed = MustParse("e(n1, n2).\n?- e(X, Y).\n");
  Result<OptimizedProgram> optimized = OptimizeExistential(parsed.program);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(EvalAnswers(optimized->program, parsed.edb),
            (std::vector<std::string>{"n1,n2"}));
}

TEST(OptimizerTest, OptimizedRunsFasterOnChain) {
  std::string facts;
  for (int i = 0; i < 60; ++i) {
    facts += "p(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
             "). ";
  }
  auto parsed = MustParse(facts + "\n" + kExample1);
  Result<OptimizedProgram> optimized = OptimizeExistential(parsed.program);
  ASSERT_TRUE(optimized.ok());
  EvalResult before = testing::MustEval(parsed.program, parsed.edb);
  EvalResult after = testing::MustEval(optimized->program, parsed.edb);
  EXPECT_EQ(before.answers, after.answers);
  // Binary closure derives ~n^2/2 tuples, unary ~n.
  EXPECT_LT(after.stats.tuples_inserted,
            before.stats.tuples_inserted / 4);
}

}  // namespace
}  // namespace exdl
