// Workload generators and optimizer-report coverage.

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/workload.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

TEST(WorkloadTest, ChainGraphShape) {
  Context ctx;
  Database db;
  PredId e = ctx.InternPredicate("e", 2);
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kChain;
  spec.nodes = 10;
  std::vector<Value> nodes = MakeGraph(&ctx, &db, e, spec);
  EXPECT_EQ(nodes.size(), 10u);
  EXPECT_EQ(db.Count(e), 9u);
}

TEST(WorkloadTest, CycleClosesTheLoop) {
  Context ctx;
  Database db;
  PredId e = ctx.InternPredicate("e", 2);
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kCycle;
  spec.nodes = 10;
  MakeGraph(&ctx, &db, e, spec);
  EXPECT_EQ(db.Count(e), 10u);
}

TEST(WorkloadTest, TreeHasOneParentPerNonRoot) {
  Context ctx;
  Database db;
  PredId e = ctx.InternPredicate("e", 2);
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kTree;
  spec.nodes = 50;
  spec.seed = 5;
  MakeGraph(&ctx, &db, e, spec);
  EXPECT_EQ(db.Count(e), 49u);
}

TEST(WorkloadTest, GridEdgeCount) {
  Context ctx;
  Database db;
  PredId e = ctx.InternPredicate("e", 2);
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kGrid;
  spec.nodes = 16;  // 4x4
  MakeGraph(&ctx, &db, e, spec);
  EXPECT_EQ(db.Count(e), 24u);  // 2 * 4 * 3
}

TEST(WorkloadTest, DeterministicForSeed) {
  Context ctx1, ctx2;
  Database db1, db2;
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kPreferential;
  spec.nodes = 100;
  spec.seed = 77;
  MakeGraph(&ctx1, &db1, ctx1.InternPredicate("e", 2), spec);
  MakeGraph(&ctx2, &db2, ctx2.InternPredicate("e", 2), spec);
  EXPECT_EQ(db1.TotalTuples(), db2.TotalTuples());
}

TEST(WorkloadTest, LabeledGraphSplitsEdges) {
  Context ctx;
  Database db;
  std::vector<PredId> labels = {ctx.InternPredicate("a", 2),
                                ctx.InternPredicate("b", 2)};
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kChain;
  spec.nodes = 101;
  MakeLabeledGraph(&ctx, &db, labels, spec);
  EXPECT_EQ(db.Count(labels[0]) + db.Count(labels[1]), 100u);
  EXPECT_GT(db.Count(labels[0]), 0u);
  EXPECT_GT(db.Count(labels[1]), 0u);
}

TEST(WorkloadTest, RandomTuplesRespectArity) {
  Context ctx;
  Database db;
  PredId p = ctx.InternPredicate("p", 3);
  MakeRandomTuples(&ctx, &db, p, 50, 10, 9);
  const Relation* rel = db.Find(p);
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->arity(), 3u);
  EXPECT_LE(rel->size(), 50u);  // duplicates collapse
  EXPECT_GT(rel->size(), 10u);
}

TEST(ReportTest, ToStringCoversAllPhases) {
  auto parsed = testing::MustParse(
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- a(X, Z), p(Z, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X).\n");
  OptimizerOptions options;
  options.deletion.use_sagiv = true;
  options.deletion.use_optimistic = true;
  options.enable_folding = true;
  Result<OptimizedProgram> optimized =
      OptimizeExistential(parsed.program, options);
  ASSERT_TRUE(optimized.ok());
  std::string report = optimized->report.ToString();
  EXPECT_NE(report.find("rules:"), std::string::npos);
  EXPECT_NE(report.find("rule deletion:"), std::string::npos);
  EXPECT_NE(report.find("by subsumption"), std::string::npos);
}

TEST(OptimizerMatrixTest, EveryOptionSubsetIsSound) {
  // All 16 on/off combinations of the four main phases preserve answers
  // on the Example 5 program.
  auto parsed = testing::MustParse(
      "p(n0, n1). p(n1, n2). p(n2, n0). p(n3, n4).\n"
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- a(X, Z), p(Z, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X).\n");
  std::vector<std::string> expected =
      testing::EvalAnswers(parsed.program, parsed.edb);
  for (int mask = 0; mask < 16; ++mask) {
    OptimizerOptions options;
    options.adorn = (mask & 1) != 0;
    options.push_projections = (mask & 2) != 0;
    options.extract_components = (mask & 4) != 0;
    options.delete_rules = (mask & 8) != 0;
    options.deletion.use_sagiv = true;
    options.deletion.use_optimistic = true;
    Result<OptimizedProgram> optimized =
        OptimizeExistential(parsed.program, options);
    ASSERT_TRUE(optimized.ok()) << "mask " << mask;
    EXPECT_EQ(testing::EvalAnswers(optimized->program, parsed.edb), expected)
        << "mask " << mask;
  }
}

}  // namespace
}  // namespace exdl
