// Resource governance: budget trips, cooperative cancellation, and the
// partial-result guarantees of EvalBudget (see DESIGN.md §9).

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "core/optimizer.h"
#include "eval/evaluator.h"
#include "testing/test_util.h"
#include "util/cancellation.h"

namespace exdl {
namespace {

using testing::MustEval;
using testing::MustParse;
using testing::ParsedProgram;

/// Transitive closure over an n-edge chain: n rounds, O(n^2) tuples.
std::string ChainSource(int n) {
  std::string src =
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Z) :- e(X, Y), tc(Y, Z).\n"
      "?- tc(n0, X).\n";
  for (int i = 0; i < n; ++i) {
    src += "e(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ").\n";
  }
  return src;
}

/// True if every relation of `prefix` is an exact row-for-row prefix of the
/// same relation in `full` (same insertion order, same payload).
bool IsRowPrefixOf(const Database& prefix, const Database& full) {
  for (const auto& [pred, rel] : prefix.relations()) {
    const Relation* full_rel = full.Find(pred);
    if (rel.size() > 0 && full_rel == nullptr) return false;
    if (full_rel != nullptr && rel.size() > full_rel->size()) return false;
    for (size_t r = 0; r < rel.size(); ++r) {
      std::span<const Value> a = rel.view().Scan(r);
      std::span<const Value> b = full_rel->view().Scan(r);
      if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) return false;
    }
  }
  return true;
}

/// True if the two databases hold exactly the same rows in the same order.
bool SameDatabase(const Database& a, const Database& b) {
  return IsRowPrefixOf(a, b) && IsRowPrefixOf(b, a);
}

TEST(GovernanceTest, TupleBudgetTripsWithConsistentPrefix) {
  ParsedProgram p = MustParse(ChainSource(120));
  EvalResult full = MustEval(p.program, p.edb);
  ASSERT_TRUE(full.termination.ok());

  EvalOptions governed;
  governed.budget.max_tuples = 2000;  // 120 edges + full TC is 7260 tuples.
  EvalResult partial = MustEval(p.program, p.edb, governed);

  EXPECT_EQ(partial.termination.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(partial.stats.budget_tripped, BudgetKind::kTuples);
  EXPECT_GT(partial.stats.rounds, 0u);
  EXPECT_LT(partial.stats.rounds, full.stats.rounds);
  // The partial database is the exact evaluation prefix: governed rounds
  // are byte-identical to ungoverned ones, so every relation is a
  // row-for-row prefix of the converged database.
  EXPECT_TRUE(IsRowPrefixOf(partial.db, full.db));
  EXPECT_LT(partial.answers.size(), full.answers.size());
}

TEST(GovernanceTest, TupleBudgetTripIsDeterministic) {
  ParsedProgram p = MustParse(ChainSource(100));
  EvalOptions governed;
  governed.budget.max_tuples = 1500;
  EvalResult a = MustEval(p.program, p.edb, governed);
  EvalResult b = MustEval(p.program, p.edb, governed);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.tuples_inserted, b.stats.tuples_inserted);
  EXPECT_TRUE(SameDatabase(a.db, b.db));
}

TEST(GovernanceTest, ArenaBytesBudgetTrips) {
  ParsedProgram p = MustParse(ChainSource(120));
  EvalOptions governed;
  governed.budget.max_arena_bytes = 32 * 1024;
  EvalResult partial = MustEval(p.program, p.edb, governed);

  EXPECT_EQ(partial.termination.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(partial.stats.budget_tripped, BudgetKind::kArenaBytes);
  EvalResult full = MustEval(p.program, p.edb);
  EXPECT_TRUE(IsRowPrefixOf(partial.db, full.db));
}

TEST(GovernanceTest, OversizedInputTripsBeforeRoundOne) {
  ParsedProgram p = MustParse(ChainSource(50));
  EvalOptions governed;
  governed.budget.max_tuples = 10;  // Below the 50 input facts.
  EvalResult partial = MustEval(p.program, p.edb, governed);
  EXPECT_EQ(partial.termination.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(partial.stats.rounds, 0u);
  EXPECT_EQ(partial.stats.tuples_inserted, 0u);
  // Nothing was derived: the database is exactly the input.
  EXPECT_EQ(partial.db.TotalTuples(), p.edb.TotalTuples());
}

TEST(GovernanceTest, RoundDerivationsTripDiscardsThePartialRound) {
  // One cross-product rule: round 0 alone would emit |a| * |b| = 900
  // tuples. A smaller per-round cap must trip mid-round and discard the
  // half-built round, leaving the database at the previous boundary (the
  // input).
  std::string src =
      "p(X, Y) :- a(X), b(Y).\n"
      "?- p(X, Y).\n";
  for (int i = 0; i < 30; ++i) {
    src += "a(u" + std::to_string(i) + ").\n";
    src += "b(v" + std::to_string(i) + ").\n";
  }
  ParsedProgram p = MustParse(src);
  EvalOptions governed;
  governed.budget.max_derivations_per_round = 100;
  EvalResult partial = MustEval(p.program, p.edb, governed);

  EXPECT_EQ(partial.termination.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(partial.stats.budget_tripped, BudgetKind::kRoundDerivations);
  EXPECT_EQ(partial.db.TotalTuples(), p.edb.TotalTuples());
  EXPECT_TRUE(partial.answers.empty());
}

TEST(GovernanceTest, DeadlineTripsOnLongEvaluation) {
  ParsedProgram p = MustParse(ChainSource(700));
  EvalOptions governed;
  governed.budget.deadline_ms = 1;
  EvalResult partial = MustEval(p.program, p.edb, governed);

  EXPECT_EQ(partial.termination.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(partial.stats.budget_tripped, BudgetKind::kDeadline);
  // Wherever the deadline landed, the returned state is a true evaluation
  // prefix — every tuple is derivable.
  EvalResult full = MustEval(p.program, p.edb);
  EXPECT_TRUE(IsRowPrefixOf(partial.db, full.db));
}

TEST(GovernanceTest, PreCancelledTokenStopsBeforeRoundOne) {
  ParsedProgram p = MustParse(ChainSource(20));
  CancellationToken token;
  token.Cancel();
  EvalOptions governed;
  governed.budget.cancellation = &token;
  EvalResult partial = MustEval(p.program, p.edb, governed);

  EXPECT_EQ(partial.termination.code(), StatusCode::kCancelled);
  EXPECT_EQ(partial.stats.budget_tripped, BudgetKind::kCancelled);
  EXPECT_EQ(partial.stats.rounds, 0u);
  EXPECT_EQ(partial.db.TotalTuples(), p.edb.TotalTuples());
}

TEST(GovernanceTest, CrossThreadCancellationStopsTheFixpoint) {
  // Large enough that evaluation runs for hundreds of milliseconds; the
  // token is raised from another thread a few milliseconds in.
  ParsedProgram p = MustParse(ChainSource(1200));
  CancellationToken token;
  EvalOptions governed;
  governed.budget.cancellation = &token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.Cancel();
  });
  EvalResult partial = MustEval(p.program, p.edb, governed);
  canceller.join();

  EXPECT_EQ(partial.termination.code(), StatusCode::kCancelled);
  EXPECT_EQ(partial.stats.budget_tripped, BudgetKind::kCancelled);
}

TEST(GovernanceTest, CrossThreadCancellationUnderWorkerPoolLeavesPrefix) {
  // Same mid-flight cancellation, but with the 4-worker pool active: the
  // cancel lands while worker threads are inside a round. The fixpoint
  // must still stop at a round boundary and hand back a consistent
  // row-for-row prefix of the converged database — no torn round, no
  // partially merged worker buffers.
  ParsedProgram p = MustParse(ChainSource(1200));
  EvalResult full = MustEval(p.program, p.edb);

  CancellationToken token;
  EvalOptions governed;
  governed.num_threads = 4;
  governed.budget.cancellation = &token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.Cancel();
  });
  EvalResult partial = MustEval(p.program, p.edb, governed);
  canceller.join();

  EXPECT_EQ(partial.termination.code(), StatusCode::kCancelled);
  EXPECT_EQ(partial.stats.budget_tripped, BudgetKind::kCancelled);
  EXPECT_TRUE(IsRowPrefixOf(partial.db, full.db));
}

TEST(GovernanceTest, GovernedRunWithoutTripIsByteIdentical) {
  ParsedProgram p = MustParse(ChainSource(60));
  EvalResult plain = MustEval(p.program, p.edb);

  CancellationToken token;  // Never raised.
  EvalOptions governed;
  governed.budget.deadline_ms = 60'000;
  governed.budget.max_tuples = 1'000'000;
  governed.budget.max_arena_bytes = 1u << 30;
  governed.budget.max_derivations_per_round = 1'000'000;
  governed.budget.cancellation = &token;
  EvalResult g = MustEval(p.program, p.edb, governed);

  EXPECT_TRUE(g.termination.ok());
  EXPECT_EQ(g.stats.budget_tripped, BudgetKind::kNone);
  EXPECT_EQ(g.stats.rounds, plain.stats.rounds);
  EXPECT_EQ(g.stats.tuples_inserted, plain.stats.tuples_inserted);
  EXPECT_TRUE(SameDatabase(g.db, plain.db));
  EXPECT_EQ(g.answers, plain.answers);

  // Same guarantee through the worker pool.
  governed.num_threads = 4;
  EvalResult parallel = MustEval(p.program, p.edb, governed);
  EXPECT_TRUE(parallel.termination.ok());
  EXPECT_TRUE(SameDatabase(parallel.db, plain.db));
  EXPECT_EQ(parallel.answers, plain.answers);
}

TEST(GovernanceTest, ParallelBudgetTripAlsoYieldsConsistentPrefix) {
  ParsedProgram p = MustParse(ChainSource(120));
  EvalResult full = MustEval(p.program, p.edb);

  EvalOptions governed;
  governed.num_threads = 4;
  governed.budget.max_tuples = 2000;
  EvalResult partial = MustEval(p.program, p.edb, governed);

  EXPECT_EQ(partial.termination.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(partial.stats.budget_tripped, BudgetKind::kTuples);
  EXPECT_TRUE(IsRowPrefixOf(partial.db, full.db));
}

TEST(GovernanceTest, MaxRoundsRemainsAHardError) {
  // max_rounds predates the budget layer and is a property-test safety
  // valve: exceeding it is a FailedPrecondition error, not a partial
  // result.
  ParsedProgram p = MustParse(ChainSource(50));
  EvalOptions options;
  options.max_rounds = 3;
  Result<EvalResult> result = Evaluate(p.program, p.edb, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GovernanceTest, OptimizerHonorsCancellationAtPhaseBoundaries) {
  ParsedProgram p = MustParse(
      "p(X, Y) :- e(X, Y).\n"
      "p(X, Z) :- e(X, Y), p(Y, Z).\n"
      "?- p(a, X).\n");
  CancellationToken token;
  token.Cancel();
  OptimizerOptions options;
  options.cancellation = &token;
  Result<OptimizedProgram> optimized =
      OptimizeExistential(p.program, options);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(optimized->termination.code(), StatusCode::kCancelled);
  EXPECT_EQ(optimized->report.interrupted_before, "adorn");
  // No phase ran: the returned program is the input (still equivalent).
  EXPECT_EQ(optimized->program.NumRules(), p.program.NumRules());
  // The rendered report mentions the interruption.
  EXPECT_NE(optimized->report.ToString().find("cancelled before phase"),
            std::string::npos);

  // An unraised token changes nothing.
  token.Reset();
  Result<OptimizedProgram> ungoverned = OptimizeExistential(p.program);
  Result<OptimizedProgram> governed =
      OptimizeExistential(p.program, options);
  ASSERT_TRUE(ungoverned.ok());
  ASSERT_TRUE(governed.ok());
  EXPECT_TRUE(governed->termination.ok());
  EXPECT_EQ(governed->program.NumRules(), ungoverned->program.NumRules());
}

TEST(GovernanceTest, BudgetKindNamesAreStable) {
  EXPECT_EQ(BudgetKindName(BudgetKind::kNone), "none");
  EXPECT_EQ(BudgetKindName(BudgetKind::kDeadline), "deadline");
  EXPECT_EQ(BudgetKindName(BudgetKind::kTuples), "tuples");
  EXPECT_EQ(BudgetKindName(BudgetKind::kArenaBytes), "arena_bytes");
  EXPECT_EQ(BudgetKindName(BudgetKind::kRoundDerivations),
            "round_derivations");
  EXPECT_EQ(BudgetKindName(BudgetKind::kCancelled), "cancelled");
}

}  // namespace
}  // namespace exdl
