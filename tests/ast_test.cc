#include <gtest/gtest.h>

#include "ast/adornment.h"
#include "ast/context.h"
#include "ast/printer.h"
#include "ast/program.h"
#include "parser/parser.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

TEST(AdornmentTest, ParseValid) {
  Result<Adornment> a = Adornment::Parse("nd");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->size(), 2u);
  EXPECT_TRUE(a->needed(0));
  EXPECT_TRUE(a->existential(1));
}

TEST(AdornmentTest, ParseRejectsBadChars) {
  EXPECT_FALSE(Adornment::Parse("nx").ok());
}

TEST(AdornmentTest, ParseRejectsMixedAlphabets) {
  EXPECT_FALSE(Adornment::Parse("nb").ok());
  EXPECT_TRUE(Adornment::Parse("bf").ok());
  EXPECT_TRUE(Adornment::Parse("").ok());
}

TEST(AdornmentTest, CountsAndPositions) {
  Adornment a = *Adornment::Parse("ndn");
  EXPECT_EQ(a.CountNeeded(), 2u);
  EXPECT_TRUE(a.HasExistential());
  EXPECT_FALSE(a.AllPositionsNeeded());
  std::vector<size_t> pos = a.NeededPositions();
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[0], 0u);
  EXPECT_EQ(pos[1], 2u);
}

TEST(AdornmentTest, AllNeeded) {
  Adornment a = Adornment::AllNeeded(3);
  EXPECT_EQ(a.str(), "nnn");
  EXPECT_TRUE(a.AllPositionsNeeded());
  EXPECT_FALSE(a.HasExistential());
}

TEST(AdornmentTest, CoversRelation) {
  // a1 covers a: every n of a is n in a1 (Section 5).
  EXPECT_TRUE(Covers(*Adornment::Parse("nn"), *Adornment::Parse("nd")));
  EXPECT_FALSE(Covers(*Adornment::Parse("nd"), *Adornment::Parse("nn")));
  EXPECT_TRUE(Covers(*Adornment::Parse("nd"), *Adornment::Parse("nd")));
  EXPECT_FALSE(Covers(*Adornment::Parse("n"), *Adornment::Parse("nd")));
  EXPECT_TRUE(Covers(*Adornment::Parse("nn"), *Adornment::Parse("dd")));
}

TEST(ContextTest, SymbolInterningIsIdempotent) {
  Context ctx;
  SymbolId a = ctx.InternSymbol("alice");
  SymbolId b = ctx.InternSymbol("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(ctx.InternSymbol("alice"), a);
  EXPECT_EQ(ctx.SymbolName(a), "alice");
  EXPECT_EQ(ctx.FindSymbol("bob"), b);
  EXPECT_EQ(ctx.FindSymbol("carol"), std::nullopt);
}

TEST(ContextTest, FreshSymbolsAreDistinct) {
  Context ctx;
  SymbolId a = ctx.FreshSymbol("x");
  SymbolId b = ctx.FreshSymbol("x");
  EXPECT_NE(a, b);
}

TEST(ContextTest, FreshSymbolAvoidsExistingNames) {
  Context ctx;
  ctx.InternSymbol("x_0");
  SymbolId a = ctx.FreshSymbol("x");
  EXPECT_NE(ctx.SymbolName(a), "x_0");
}

TEST(ContextTest, PredicateVersionsAreDistinct) {
  Context ctx;
  PredId plain = ctx.InternPredicate("a", 2);
  PredId adorned = ctx.InternPredicate("a", 2, *Adornment::Parse("nd"));
  PredId projected = ctx.InternPredicate("a", 1, *Adornment::Parse("nd"));
  EXPECT_NE(plain, adorned);
  EXPECT_NE(adorned, projected);
  EXPECT_EQ(ctx.InternPredicate("a", 2, *Adornment::Parse("nd")), adorned);
  EXPECT_FALSE(ctx.predicate(plain).IsProjected());
  EXPECT_FALSE(ctx.predicate(adorned).IsProjected());
  EXPECT_TRUE(ctx.predicate(projected).IsProjected());
}

TEST(ContextTest, DisplayNames) {
  Context ctx;
  PredId plain = ctx.InternPredicate("a", 2);
  PredId adorned = ctx.InternPredicate("a", 2, *Adornment::Parse("nd"));
  PredId projected = ctx.InternPredicate("a", 1, *Adornment::Parse("nd"));
  EXPECT_EQ(ctx.PredicateDisplayName(plain), "a");
  EXPECT_EQ(ctx.PredicateDisplayName(adorned), "a@nd");
  EXPECT_EQ(ctx.PredicateDisplayName(projected), "a@nd/1");
}

TEST(TermTest, Identity) {
  Term v = Term::Var(3);
  Term c = Term::Const(3);
  EXPECT_TRUE(v.IsVar());
  EXPECT_TRUE(c.IsConst());
  EXPECT_NE(v, c);  // same id, different kind
  EXPECT_EQ(v, Term::Var(3));
}

TEST(AtomTest, GroundAndVars) {
  Context ctx;
  SymbolId x = ctx.InternSymbol("X");
  SymbolId c = ctx.InternSymbol("c");
  PredId p = ctx.InternPredicate("p", 2);
  Atom ground(p, {Term::Const(c), Term::Const(c)});
  Atom open(p, {Term::Var(x), Term::Const(c)});
  EXPECT_TRUE(ground.IsGround());
  EXPECT_FALSE(open.IsGround());
  EXPECT_TRUE(open.HasVar(x));
  EXPECT_FALSE(ground.HasVar(x));
  std::vector<SymbolId> vars;
  open.CollectVars(&vars);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0], x);
}

TEST(RuleTest, VarsOrderedHeadFirst) {
  auto parsed = testing::MustParse("p(X,Y) :- q(Y,Z), r(Z,X).");
  const Rule& rule = parsed.program.rules()[0];
  std::vector<SymbolId> vars = rule.Vars();
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(parsed.ctx->SymbolName(vars[0]), "X");
  EXPECT_EQ(parsed.ctx->SymbolName(vars[1]), "Y");
  EXPECT_EQ(parsed.ctx->SymbolName(vars[2]), "Z");
}

TEST(RuleTest, UnitRuleRecognition) {
  auto parsed = testing::MustParse(
      "u1(X) :- p(X,Y).\n"          // unit
      "u2(X,Y) :- p(Y,X).\n"        // unit (permutation)
      "n1(X) :- p(X,X).\n"          // repeated body var
      "n2(X) :- p(X,c).\n"          // constant in body
      "n3(X,X) :- p(X,Y).\n"        // repeated head var
      "n4(X) :- p(X,Y), q(Y).\n");  // two literals
  const std::vector<Rule>& rules = parsed.program.rules();
  EXPECT_TRUE(rules[0].IsUnitRule());
  EXPECT_TRUE(rules[1].IsUnitRule());
  EXPECT_FALSE(rules[2].IsUnitRule());
  EXPECT_FALSE(rules[3].IsUnitRule());
  EXPECT_FALSE(rules[4].IsUnitRule());
  EXPECT_FALSE(rules[5].IsUnitRule());
}

TEST(ProgramTest, EdbIdbClassification) {
  auto parsed = testing::MustParse(
      "p(X,Y) :- e(X,Z), p(Z,Y).\n"
      "p(X,Y) :- e(X,Y).\n"
      "?- p(X,Y).");
  const Program& prog = parsed.program;
  PredId p = prog.query()->pred;
  EXPECT_TRUE(prog.IsIdb(p));
  EXPECT_EQ(prog.IdbPredicates().size(), 1u);
  EXPECT_EQ(prog.EdbPredicates().size(), 1u);
  EXPECT_EQ(prog.AllPredicates().size(), 2u);
  EXPECT_EQ(prog.RulesDefining(p).size(), 2u);
}

TEST(ProgramTest, CloneSharesContext) {
  auto parsed = testing::MustParse("p(X) :- e(X).\n?- p(X).");
  Program copy = parsed.program.Clone();
  EXPECT_EQ(copy.context().get(), parsed.program.context().get());
  EXPECT_EQ(copy.NumRules(), parsed.program.NumRules());
  EXPECT_TRUE(copy.query().has_value());
}

TEST(PrinterTest, RoundTripsThroughParser) {
  const std::string source =
      "p(X, Y) :- e(X, Z), p(Z, Y), b.\n"
      "p(X, Y) :- e(X, Y).\n"
      "b :- f(W, 3).\n"
      "?- p(X, Y).\n";
  auto parsed = testing::MustParse(source);
  std::string printed = ToString(parsed.program);
  auto reparsed = testing::MustParseWith(parsed.ctx, printed);
  EXPECT_EQ(ToString(reparsed.program), printed);
  EXPECT_EQ(reparsed.program.rules().size(), parsed.program.rules().size());
}

TEST(PrinterTest, AdornedPredicates) {
  auto parsed = testing::MustParse("a@nd(X,Y) :- p(X,Y).\n");
  std::string printed = ToString(parsed.program);
  EXPECT_NE(printed.find("a@nd(X, Y)"), std::string::npos);
}

}  // namespace
}  // namespace exdl
