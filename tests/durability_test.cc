// Durable EDB tests (DESIGN.md §15): the fact-log format's torn-tail /
// fail-closed policy, the FactLog file lifecycle (including the unwind
// guarantee under injected faults), and whole-service crash recovery —
// answers after restart byte-identical to the uninterrupted service,
// across tuple/bitset representations and 1/4-worker pools.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "durability/durable_edb.h"
#include "durability/fact_log.h"
#include "recovery/fault.h"
#include "service/answer_text.h"
#include "service/edb_recovery.h"
#include "service/query_service.h"
#include "storage/representation.h"

namespace exdl {
namespace {

using durability::DurabilityCounters;
using durability::DurabilityOptions;
using durability::DurableEdb;
using durability::EncodeFactLogHeader;
using durability::EncodeFactRecord;
using durability::FactLog;
using durability::FactLogScan;
using durability::FactRecord;
using durability::ScanFactLog;

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "/durability_test_XXXXXX";
  char* made = mkdtemp(templ.data());
  EXPECT_NE(made, nullptr);
  return templ;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteWholeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void AppendToFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

constexpr char kQuery[] = "q(X) :- p(X).\n?- q(X).\n";

std::string QueryAnswers(QueryService& service, const std::string& source) {
  QueryRequest request;
  request.source = source;
  request.name = "q.dl";
  QueryService::Ticket ticket = service.Submit(std::move(request));
  QueryResponse response = service.Await(ticket);
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  return RenderAnswerRows(*service.ctx(), response.result.answers);
}

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultPlan::Global().Disarm(); }
  void TearDown() override { FaultPlan::Global().Disarm(); }
};

// ---------------------------------------------------------------------------
// ScanFactLog: the torn-tail vs fail-closed policy.

TEST_F(DurabilityTest, ScanAcceptsEmptyAndBareHeader) {
  Result<FactLogScan> empty = ScanFactLog("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->records.empty());
  EXPECT_EQ(empty->truncated_tail_bytes, 0u);

  Result<FactLogScan> bare = ScanFactLog(EncodeFactLogHeader());
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->records.empty());
  EXPECT_EQ(bare->valid_bytes, durability::kFactLogHeaderSize);
  EXPECT_EQ(bare->truncated_tail_bytes, 0u);
}

TEST_F(DurabilityTest, ScanRoundTripsRecords) {
  std::string log = EncodeFactLogHeader();
  log += EncodeFactRecord(1, "p(a).\n");
  log += EncodeFactRecord(2, "p(b). q(a, b).\n");
  log += EncodeFactRecord(3, "");
  Result<FactLogScan> scan = ScanFactLog(log);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[0], (FactRecord{1, "p(a).\n"}));
  EXPECT_EQ(scan->records[1], (FactRecord{2, "p(b). q(a, b).\n"}));
  EXPECT_EQ(scan->records[2], (FactRecord{3, ""}));
  EXPECT_EQ(scan->valid_bytes, log.size());
  EXPECT_EQ(scan->truncated_tail_bytes, 0u);
}

TEST_F(DurabilityTest, ScanTruncatesEveryPossibleTornTail) {
  const std::string intact = EncodeFactLogHeader() + EncodeFactRecord(1, "p(a).\n");
  const std::string frame = EncodeFactRecord(2, "p(bb).\n");
  // Chop the second record at every byte boundary: each prefix is the
  // shape some interrupted append could leave, and every one must scan as
  // a torn tail with record 1 intact.
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    const std::string log = intact + frame.substr(0, cut);
    Result<FactLogScan> scan = ScanFactLog(log);
    ASSERT_TRUE(scan.ok()) << "cut=" << cut << ": " << scan.status().ToString();
    ASSERT_EQ(scan->records.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(scan->records[0], (FactRecord{1, "p(a).\n"}));
    EXPECT_EQ(scan->valid_bytes, intact.size());
    EXPECT_EQ(scan->truncated_tail_bytes, cut);
  }
}

TEST_F(DurabilityTest, ScanTruncatesPartialHeaderButRejectsWrongBytes) {
  const std::string header = EncodeFactLogHeader();
  for (size_t cut = 1; cut < header.size(); ++cut) {
    Result<FactLogScan> scan = ScanFactLog(header.substr(0, cut));
    ASSERT_TRUE(scan.ok()) << "cut=" << cut;
    EXPECT_EQ(scan->truncated_tail_bytes, cut);
  }
  Result<FactLogScan> bad = ScanFactLog("NOTAFLOG????????");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruptCheckpoint);
}

TEST_F(DurabilityTest, ScanFailsClosedOnCorruption) {
  // A complete record with a flipped payload byte: checksum mismatch.
  std::string log = EncodeFactLogHeader() + EncodeFactRecord(1, "p(a).\n");
  log[log.size() - 2] ^= 0x40;
  Result<FactLogScan> flipped = ScanFactLog(log);
  ASSERT_FALSE(flipped.ok());
  EXPECT_EQ(flipped.status().code(), StatusCode::kCorruptCheckpoint);

  // A bit-flipped length field larger than any real append: corruption,
  // not a tear, even though the "payload" overruns EOF.
  std::string big = EncodeFactLogHeader();
  big += EncodeFactRecord(1, "p(a).\n");
  big[durability::kFactLogHeaderSize + 3] = 0x7f;  // length |= 0x7f000000
  Result<FactLogScan> huge = ScanFactLog(big);
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.status().code(), StatusCode::kCorruptCheckpoint);

  // Generations must be strictly increasing.
  std::string reorder = EncodeFactLogHeader();
  reorder += EncodeFactRecord(2, "p(a).\n");
  reorder += EncodeFactRecord(1, "p(b).\n");
  Result<FactLogScan> gap = ScanFactLog(reorder);
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.status().code(), StatusCode::kCorruptCheckpoint);
}

// ---------------------------------------------------------------------------
// FactLog: the file lifecycle.

TEST_F(DurabilityTest, FactLogAppendsSurviveReopen) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/facts.log";
  {
    FactLog log;
    FactLogScan scan;
    ASSERT_TRUE(log.Open(path, &scan).ok());
    EXPECT_TRUE(scan.records.empty());
    ASSERT_TRUE(log.Append(1, "p(a).\n").ok());
    ASSERT_TRUE(log.Append(2, "p(b).\n").ok());
  }
  FactLog log;
  FactLogScan scan;
  ASSERT_TRUE(log.Open(path, &scan).ok());
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[1], (FactRecord{2, "p(b).\n"}));
  EXPECT_EQ(scan.truncated_tail_bytes, 0u);
  // Truncate drops the records but keeps the header.
  ASSERT_TRUE(log.Truncate().ok());
  EXPECT_EQ(log.size_bytes(), durability::kFactLogHeaderSize);
  ASSERT_TRUE(log.Append(3, "p(c).\n").ok());
  FactLog reopened;
  ASSERT_TRUE(reopened.Open(path, &scan).ok());
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].generation, 3u);
}

TEST_F(DurabilityTest, FactLogOpenRepairsTornTailInPlace) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/facts.log";
  {
    FactLog log;
    FactLogScan scan;
    ASSERT_TRUE(log.Open(path, &scan).ok());
    ASSERT_TRUE(log.Append(1, "p(a).\n").ok());
  }
  const std::string intact = ReadWholeFile(path);
  const std::string torn = EncodeFactRecord(2, "p(b).\n");
  AppendToFile(path, torn.substr(0, torn.size() - 3));
  FactLog log;
  FactLogScan scan;
  ASSERT_TRUE(log.Open(path, &scan).ok());
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.truncated_tail_bytes, torn.size() - 3);
  // The tail is physically gone and appends continue cleanly.
  EXPECT_EQ(ReadWholeFile(path), intact);
  ASSERT_TRUE(log.Append(2, "p(b).\n").ok());
  Result<FactLogScan> rescan = ScanFactLog(ReadWholeFile(path));
  ASSERT_TRUE(rescan.ok());
  EXPECT_EQ(rescan->records.size(), 2u);
}

TEST_F(DurabilityTest, InjectedAppendFailureUnwindsTheFile) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/facts.log";
  FactLog log;
  FactLogScan scan;
  ASSERT_TRUE(log.Open(path, &scan).ok());
  ASSERT_TRUE(log.Append(1, "p(a).\n").ok());
  const std::string before = ReadWholeFile(path);

  for (const char* spec : {"factlog.append:1", "factlog.fsync:1"}) {
    ASSERT_TRUE(FaultPlan::Global().Arm(spec).ok());
    Status failed = log.Append(2, "p(b).\n");
    FaultPlan::Global().Disarm();
    ASSERT_FALSE(failed.ok()) << spec;
    // The half-written frame was truncated away: a retry appends to a
    // clean log and the file stays scannable throughout.
    EXPECT_EQ(ReadWholeFile(path), before) << spec;
  }
  ASSERT_TRUE(log.Append(2, "p(b).\n").ok());
  Result<FactLogScan> rescan = ScanFactLog(ReadWholeFile(path));
  ASSERT_TRUE(rescan.ok());
  ASSERT_EQ(rescan->records.size(), 2u);
  EXPECT_EQ(rescan->records[1], (FactRecord{2, "p(b).\n"}));
}

// ---------------------------------------------------------------------------
// DurableEdb + QueryService: crash recovery end to end.

std::string LoadFive(QueryService& service) {
  for (int k = 1; k <= 5; ++k) {
    Status loaded = service.LoadFacts("p(d" + std::to_string(k) + ").\n");
    EXPECT_TRUE(loaded.ok()) << loaded.ToString();
  }
  return QueryAnswers(service, kQuery);
}

ServiceOptions ServiceConfig(Representation rep, uint32_t workers,
                             std::shared_ptr<DurableEdb> durable = nullptr) {
  ServiceOptions options;
  options.num_workers = workers;
  options.eval.representation = rep;
  options.durable = std::move(durable);
  return options;
}

TEST_F(DurabilityTest, RecoveryIsByteIdenticalAcrossRepresentationsAndPools) {
  std::string reference;
  for (Representation rep : {Representation::kTuple, Representation::kBitset}) {
    for (uint32_t workers : {1u, 4u}) {
      SCOPED_TRACE(std::string("rep=") +
                   (rep == Representation::kTuple ? "tuple" : "bitset") +
                   " workers=" + std::to_string(workers));
      const std::string dir = MakeTempDir();
      auto edb = std::make_shared<DurableEdb>(DurabilityOptions{dir, 2});
      ASSERT_TRUE(edb->Open().ok());
      std::string live;
      {
        QueryService service(ServiceConfig(rep, workers, edb));
        live = LoadFive(service);
      }
      ASSERT_FALSE(live.empty());
      DurabilityCounters counters = edb->counters();
      EXPECT_EQ(counters.records_appended, 5u);
      EXPECT_EQ(counters.compactions, 2u);  // after loads 2 and 4
      EXPECT_EQ(counters.snapshot_generation, 4u);

      // "Restart": a fresh DurableEdb + service over the same directory.
      auto recovered_edb =
          std::make_shared<DurableEdb>(DurabilityOptions{dir, 2});
      ASSERT_TRUE(recovered_edb->Open().ok());
      EXPECT_EQ(recovered_edb->snapshot_generation(), 4u);
      ASSERT_EQ(recovered_edb->tail().size(), 1u);  // only generation 5
      QueryService recovered(ServiceConfig(rep, workers));
      Status status = RecoverDurableEdb(*recovered_edb, recovered);
      ASSERT_TRUE(status.ok()) << status.ToString();
      recovered.AttachDurability(recovered_edb);
      EXPECT_EQ(recovered_edb->counters().records_replayed, 1u);
      EXPECT_EQ(recovered.snapshot().generation(), 5u);
      EXPECT_EQ(QueryAnswers(recovered, kQuery), live);

      if (reference.empty()) reference = live;
      EXPECT_EQ(live, reference)
          << "answers differ across representations / pool sizes";
    }
  }
}

TEST_F(DurabilityTest, RecoveredServiceKeepsLoadingDurably) {
  const std::string dir = MakeTempDir();
  {
    auto edb = std::make_shared<DurableEdb>(DurabilityOptions{dir, 2});
    ASSERT_TRUE(edb->Open().ok());
    QueryService service(
        ServiceConfig(Representation::kTuple, 1, edb));
    LoadFive(service);
  }
  std::string extended;
  {
    auto edb = std::make_shared<DurableEdb>(DurabilityOptions{dir, 2});
    ASSERT_TRUE(edb->Open().ok());
    QueryService service(ServiceConfig(Representation::kTuple, 1));
    ASSERT_TRUE(RecoverDurableEdb(*edb, service).ok());
    service.AttachDurability(edb);
    // Generation numbering continues from the recovered state.
    ASSERT_TRUE(service.LoadFacts("p(d6).\n").ok());
    EXPECT_EQ(service.snapshot().generation(), 6u);
    extended = QueryAnswers(service, kQuery);
  }
  auto edb = std::make_shared<DurableEdb>(DurabilityOptions{dir, 2});
  ASSERT_TRUE(edb->Open().ok());
  QueryService service(ServiceConfig(Representation::kTuple, 1));
  ASSERT_TRUE(RecoverDurableEdb(*edb, service).ok());
  EXPECT_EQ(QueryAnswers(service, kQuery), extended);
}

TEST_F(DurabilityTest, TornLogTailIsTruncatedOnRecovery) {
  const std::string dir = MakeTempDir();
  std::string live;
  {
    auto edb = std::make_shared<DurableEdb>(DurabilityOptions{dir, 2});
    ASSERT_TRUE(edb->Open().ok());
    QueryService service(ServiceConfig(Representation::kTuple, 1, edb));
    live = LoadFive(service);
  }
  // Simulate a crash mid-append: half of generation 6 on disk, unsynced.
  const std::string torn = EncodeFactRecord(6, "p(d6).\n");
  AppendToFile(DurableEdb::LogPathIn(dir), torn.substr(0, torn.size() / 2));

  auto edb = std::make_shared<DurableEdb>(DurabilityOptions{dir, 2});
  ASSERT_TRUE(edb->Open().ok());
  EXPECT_EQ(edb->counters().truncated_tail_bytes, torn.size() / 2);
  QueryService service(ServiceConfig(Representation::kTuple, 1));
  ASSERT_TRUE(RecoverDurableEdb(*edb, service).ok());
  // d6 was never acknowledged; everything acknowledged survives.
  EXPECT_EQ(QueryAnswers(service, kQuery), live);
}

TEST_F(DurabilityTest, MidLogCorruptionFailsClosed) {
  const std::string dir = MakeTempDir();
  {
    auto edb = std::make_shared<DurableEdb>(DurabilityOptions{dir, 0});
    ASSERT_TRUE(edb->Open().ok());
    QueryService service(ServiceConfig(Representation::kTuple, 1, edb));
    LoadFive(service);
  }
  const std::string path = DurableEdb::LogPathIn(dir);
  std::string bytes = ReadWholeFile(path);
  bytes[bytes.size() - 2] ^= 0x01;  // flip a payload bit in a synced record
  WriteWholeFile(path, bytes);

  DurableEdb edb(DurabilityOptions{dir, 0});
  Status status = edb.Open();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruptCheckpoint);
}

TEST_F(DurabilityTest, GenerationGapFailsClosed) {
  const std::string dir = MakeTempDir();
  WriteWholeFile(DurableEdb::LogPathIn(dir),
                 EncodeFactLogHeader() + EncodeFactRecord(2, "p(a).\n"));
  DurableEdb edb(DurabilityOptions{dir, 0});
  Status status = edb.Open();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruptCheckpoint);
}

TEST_F(DurabilityTest, StaleRecordsBelowSnapshotGenerationAreFiltered) {
  const std::string dir = MakeTempDir();
  std::string live;
  {
    auto edb = std::make_shared<DurableEdb>(DurabilityOptions{dir, 2});
    ASSERT_TRUE(edb->Open().ok());
    QueryService service(ServiceConfig(Representation::kTuple, 1, edb));
    live = LoadFive(service);  // snapshot at generation 4, tail = {5}
  }
  // Simulate a crash between the compaction rename and the log truncate:
  // the log still holds records the snapshot already covers.
  WriteWholeFile(DurableEdb::LogPathIn(dir),
                 EncodeFactLogHeader() + EncodeFactRecord(3, "p(d3).\n") +
                     EncodeFactRecord(4, "p(d4).\n") +
                     EncodeFactRecord(5, "p(d5).\n"));
  auto edb = std::make_shared<DurableEdb>(DurabilityOptions{dir, 2});
  ASSERT_TRUE(edb->Open().ok());
  ASSERT_EQ(edb->tail().size(), 1u);  // 3 and 4 filtered, 5 replayed
  EXPECT_EQ(edb->tail()[0].generation, 5u);
  QueryService service(ServiceConfig(Representation::kTuple, 1));
  ASSERT_TRUE(RecoverDurableEdb(*edb, service).ok());
  EXPECT_EQ(QueryAnswers(service, kQuery), live);
}

TEST_F(DurabilityTest, FailedAppendNeverPublishesAGeneration) {
  const std::string dir = MakeTempDir();
  auto edb = std::make_shared<DurableEdb>(DurabilityOptions{dir, 0});
  ASSERT_TRUE(edb->Open().ok());
  QueryService service(ServiceConfig(Representation::kTuple, 1, edb));
  ASSERT_TRUE(service.LoadFacts("p(a).\n").ok());

  ASSERT_TRUE(FaultPlan::Global().Arm("factlog.fsync:1").ok());
  Status failed = service.LoadFacts("p(b).\n");
  FaultPlan::Global().Disarm();
  ASSERT_FALSE(failed.ok());
  // The failed load is invisible: generation unchanged, fact absent.
  EXPECT_EQ(service.snapshot().generation(), 1u);
  EXPECT_EQ(QueryAnswers(service, kQuery), "a\n");
  // The log unwound, so the retry succeeds and is durable.
  ASSERT_TRUE(service.LoadFacts("p(b).\n").ok());
  EXPECT_EQ(service.snapshot().generation(), 2u);

  auto recovered_edb = std::make_shared<DurableEdb>(DurabilityOptions{dir, 0});
  ASSERT_TRUE(recovered_edb->Open().ok());
  QueryService recovered(ServiceConfig(Representation::kTuple, 1));
  ASSERT_TRUE(RecoverDurableEdb(*recovered_edb, recovered).ok());
  EXPECT_EQ(QueryAnswers(recovered, kQuery), "a\nb\n");
}

TEST_F(DurabilityTest, RestoreSnapshotRequiresAFreshService) {
  QueryService service;
  ASSERT_TRUE(service.LoadFacts("p(a).\n").ok());
  recovery::Snapshot snapshot;
  Status status = service.RestoreSnapshot(std::move(snapshot), 1);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace exdl
