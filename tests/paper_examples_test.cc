// One test per worked example in the paper, asserting the exact behavior
// the text describes. This file is the executable index of the paper.

#include <gtest/gtest.h>

#include "adorn/adorn.h"
#include "analysis/dependency_graph.h"
#include "ast/printer.h"
#include "core/optimizer.h"
#include "equiv/optimistic.h"
#include "equiv/random_check.h"
#include "equiv/summary_closure.h"
#include "equiv/uniform_equivalence.h"
#include "grammar/chain.h"
#include "grammar/monadic.h"
#include "grammar/regularity.h"
#include "testing/test_util.h"
#include "transform/components.h"
#include "transform/projection.h"
#include "transform/unit_rules.h"

namespace exdl {
namespace {

using ::exdl::testing::EvalAnswers;
using ::exdl::testing::MustParse;
using ::exdl::testing::MustParseWith;

std::optional<PredId> FindVersion(const Context& ctx, const std::string& name,
                                  uint32_t arity, const std::string& adorn) {
  auto sym = ctx.FindSymbol(name);
  if (!sym) return std::nullopt;
  return ctx.FindPredicate(*sym, arity, *Adornment::Parse(adorn));
}

// ---------------------------------------------------------------------------
// Section 1.2's motivating rule: q(X,Y) :- a(X,Z), q(Z,Y), c(W).
// "we need not compute c, beyond determining whether there exists some
// tuple for c."
TEST(PaperSection12, MotivatingExistentialSubquery) {
  auto parsed = MustParse(
      "a(n0, n1). a(n1, n2). c(w1). c(w2). c(w3).\n"
      "q(X, Y) :- a(X, Z), q(Z, Y), c(W).\n"
      "q(X, Y) :- a(X, Y), c(W).\n"
      "query(X) :- q(X, Y).\n"
      "?- query(X).\n");
  Result<OptimizedProgram> optimized = OptimizeExistential(parsed.program);
  ASSERT_TRUE(optimized.ok());
  // c(W) became a boolean component.
  EXPECT_GE(optimized->report.booleans_created, 1u);
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            EvalAnswers(optimized->program, parsed.edb));
}

// ---------------------------------------------------------------------------
// Example 1: the adornment algorithm produces exactly a^nd.
TEST(PaperExample1, AdornedProgram) {
  auto parsed = MustParse(
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- p(X, Z), a(Z, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X).\n");
  Result<Program> adorned = AdornExistential(parsed.program);
  ASSERT_TRUE(adorned.ok());
  EXPECT_TRUE(FindVersion(*parsed.ctx, "a", 2, "nd").has_value());
  EXPECT_FALSE(FindVersion(*parsed.ctx, "a", 2, "nn").has_value());
  EXPECT_EQ(adorned->NumRules(), 3u);
}

// ---------------------------------------------------------------------------
// Example 2: connected components; B2 and B3 extracted, q4 stays (it is
// connected to B2's component through V).
TEST(PaperExample2, ComponentRewriting) {
  // The projected form of the paper's rule (the head's existential U is
  // already dropped):
  auto parsed = MustParse(
      "p(X) :- q1(X, Y), q2(Y, Z2), q3(U, V), q4(V), q5(W).\n"
      "q4(X) :- q6(X).\n"
      "?- p(X).\n");
  Result<ComponentResult> result = ExtractComponents(parsed.program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->booleans_created, 2u);  // {q3,q4} and {q5}
  // Rewritten rule: q1, q2 + two boolean literals (the paper's B2, B3).
  const Rule& rewritten = result->program.rules()[0];
  ASSERT_EQ(rewritten.body.size(), 4u);
  EXPECT_EQ(rewritten.body[2].arity(), 0u);
  EXPECT_EQ(rewritten.body[3].arity(), 0u);
  // "once B2 has been shown true, the rule defining it need not be used
  // further": the evaluator retires both boolean rules.
  auto with_facts = MustParseWith(parsed.ctx,
      "q1(a, b). q2(b, c). q3(u, v). q6(v). q5(w).\n");
  EvalResult eval = testing::MustEval(result->program, with_facts.edb);
  EXPECT_EQ(eval.stats.rules_retired, 2u);
  EXPECT_EQ(eval.answers.size(), 1u);
}

// ---------------------------------------------------------------------------
// Example 3: the projected program — unary recursive a^nd.
TEST(PaperExample3, ProjectionThroughRecursion) {
  auto parsed = MustParse(
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- p(X, Z), a(Z, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X).\n");
  Result<Program> adorned = AdornExistential(parsed.program);
  ASSERT_TRUE(adorned.ok());
  Result<ProjectionResult> projected = PushProjections(*adorned);
  ASSERT_TRUE(projected.ok());
  std::optional<PredId> unary = FindVersion(*parsed.ctx, "a", 1, "nd");
  ASSERT_TRUE(unary.has_value());
  // The paper's Example 3 rules, verbatim shapes:
  //   a^nd(X) :- p(X,Z), a^nd(Z).     a^nd(X) :- p(X,Z).
  size_t a_rules = 0;
  for (const Rule& r : projected->program.rules()) {
    if (r.head.pred != *unary) continue;
    ++a_rules;
    EXPECT_EQ(r.head.args.size(), 1u);
  }
  EXPECT_EQ(a_rules, 2u);
}

// ---------------------------------------------------------------------------
// Example 3a: the recursive rule of the projected program is deletable
// (next rule generates everything), but NOT if the exit rule uses p1.
TEST(PaperExample3a, DeletionDependsOnExitRule) {
  auto same = MustParse(
      "a(X) :- p(X, Z), a(Z).\n"
      "a(X) :- p(X, Z).\n"
      "?- a(X).\n");
  EXPECT_TRUE(*DeletableUnderUniformEquivalence(same.program, 0));
  auto different = MustParse(
      "a(X) :- p(X, Z), a(Z).\n"
      "a(X) :- p1(X, Z).\n"
      "?- a(X).\n");
  EXPECT_FALSE(*DeletableUnderUniformEquivalence(different.program, 0));
}

// ---------------------------------------------------------------------------
// Example 4: the Sagiv test's mechanics — the ground body {p(x,z), a(z)}
// re-derives a(x) through the exit rule.
TEST(PaperExample4, SagivDeletionOfRecursiveRule) {
  auto parsed = MustParse(
      "a(X) :- p(X, Z), a(Z).\n"
      "a(X) :- p(X, Z).\n"
      "?- a(X).\n");
  Result<bool> deletable =
      DeletableUnderUniformEquivalence(parsed.program, 0);
  ASSERT_TRUE(deletable.ok());
  EXPECT_TRUE(*deletable);
  // And deletion preserves answers on random EDBs.
  Program without(parsed.program.context());
  without.AddRule(parsed.program.rules()[1]);
  without.SetQuery(*parsed.program.query());
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(parsed.program, without);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
}

// ---------------------------------------------------------------------------
// Example 5: the adorned program with a^nd and a^nn; nothing is deletable
// under uniform equivalence.
TEST(PaperExample5, NoUniformEquivalenceDeletion) {
  auto parsed = MustParse(
      "and(X) :- ann(X, Z), p(Z, Y).\n"
      "and(X) :- p(X, Y).\n"
      "ann(X, Y) :- ann(X, Z), p(Z, Y).\n"
      "ann(X, Y) :- p(X, Y).\n"
      "?- and(X).\n");
  for (size_t r = 0; r < parsed.program.rules().size(); ++r) {
    EXPECT_FALSE(*DeletableUnderUniformEquivalence(parsed.program, r))
        << "rule " << r;
  }
}

// ---------------------------------------------------------------------------
// Example 6: uniform query equivalence deletes the recursive a^nn rule;
// the cascade then leaves the non-recursive program of the paper.
TEST(PaperExample6, UqeCascadeToNonRecursive) {
  auto parsed = MustParse(
      "and(X) :- ann(X, Z), p(Z, Y).\n"
      "and(X) :- p(X, Y).\n"
      "ann(X, Y) :- ann(X, Z), p(Z, Y).\n"
      "ann(X, Y) :- p(X, Y).\n"
      "?- and(X).\n");
  // Step 1 of the example: the recursive ann rule goes under UQE.
  EXPECT_TRUE(*DeletableUnderOptimisticUqe(parsed.program, 2));
  // The full driver reaches a recursion-free program with the same
  // answers ("Optimized Program: a^nd(X) :- p(X,Y).").
  OptimizerOptions options;
  options.adorn = false;  // already adorned shape
  options.deletion.use_optimistic = true;
  Result<OptimizedProgram> optimized =
      OptimizeExistential(parsed.program, options);
  ASSERT_TRUE(optimized.ok());
  DependencyGraph dg(optimized->program);
  EXPECT_FALSE(dg.HasRecursion());
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(parsed.program, optimized->program);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
}

// ---------------------------------------------------------------------------
// Example 7 (structural analogue; the printed program in the TR is OCR-
// damaged): unit-rule subsumption deletes the long rules, the cascade
// removes the then-undefined predicates, 6 rules -> 3.
TEST(PaperExample7, UnitRuleCascade) {
  auto parsed = MustParse(
      "q(X) :- a1(X, Y).\n"
      "q(X) :- a1(X, Z), b2(Z, W, V).\n"
      "q(X) :- a2(X, Z), b3(Z, W).\n"
      "a2(X, Z) :- a1(X, U), b4(U, Z).\n"
      "a1(X, Y) :- b1(X, Y).\n"
      "?- q(X).\n");
  OptimizerOptions options;
  options.adorn = false;
  Result<OptimizedProgram> optimized =
      OptimizeExistential(parsed.program, options);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(optimized->program.NumRules(), 2u);  // q :- a1; a1 :- b1
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(parsed.program, optimized->program);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
}

// ---------------------------------------------------------------------------
// Example 8: "the set of answers is seen to be empty" — a predicate with
// no exit rule collapses the whole program at compile time.
TEST(PaperExample8, EmptyAnswerDetectedAtCompileTime) {
  auto parsed = MustParse(
      "q(X) :- mid(X, Y).\n"
      "mid(X, Y) :- p1(X, Z, U), g1(Z, U, Y).\n"
      "p1(X, Z, U) :- p1(X, W, W2), g2(W, Z, U).\n"
      "?- q(X).\n");
  Result<OptimizedProgram> optimized = OptimizeExistential(parsed.program);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(optimized->program.NumRules(), 0u);
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(parsed.program, optimized->program);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
}

// ---------------------------------------------------------------------------
// Example 9: the summary technique *cannot* delete the fourth rule (no
// unit rule, and the paper chose not to add one).
TEST(PaperExample9, SummariesMissNonUnitSubsumption) {
  auto parsed = MustParse(
      "pnd(X) :- pnn(X, Z, U), g3(Z, U, Y).\n"
      "pnd(X) :- pnn(X, Z, U), g1(Z, U, Y).\n"
      "pnn(X, Z, U) :- pnn(X, W, W2), g2(W, Z, U).\n"
      "pnn(X, Z, U) :- pnn(X, V, V2), g3(V, Z, U), g4(U, W).\n"
      "?- pnd(X).\n");
  OptimizerOptions options;
  options.adorn = false;
  options.add_unit_rules = false;  // as the example stipulates
  Result<OptimizedProgram> optimized =
      OptimizeExistential(parsed.program, options);
  ASSERT_TRUE(optimized.ok());
  // The summary machinery alone deletes nothing here... except cleanup
  // may notice pnn has no exit rule! Give pnn an exit rule to match the
  // paper's intent of a live program.
  auto live = MustParse(
      "pnd(X) :- pnn(X, Z, U), g3(Z, U, Y).\n"
      "pnd(X) :- pnn(X, Z, U), g1(Z, U, Y).\n"
      "pnn(X, Z, U) :- pnn(X, W, W2), g2(W, Z, U).\n"
      "pnn(X, Z, U) :- pnn(X, V, V2), g3(V, Z, U), g4(U, W).\n"
      "pnn(X, Z, U) :- g0(X, Z, U).\n"
      "?- pnd(X).\n");
  Result<SummaryAnalysis> analysis = SummaryAnalysis::Build(live.program);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->DeletableRules().empty());
}

// ---------------------------------------------------------------------------
// Example 10: deletable with Lemma 5.3 (chains), not with Lemma 5.1.
// (Covered in detail by summary_test; asserted here against the exact
// example program.)
TEST(PaperExample10, ChainsBeatSingleUnitRules) {
  auto parsed = MustParse(
      "pd(X, Y) :- pn(X, Y).\n"
      "pd(X, Y) :- pn(Y, X).\n"
      "pn(X, Y) :- q2(X, Y).\n"
      "pn(X, Y) :- q2(Y, X).\n"
      "q2(X, Y) :- pn(X, Y).\n"
      "?- pd(X, Y).\n");
  Result<SummaryAnalysis> full = SummaryAnalysis::Build(parsed.program);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->OccurrenceJustified(Occurrence{4, 0}));
}

// ---------------------------------------------------------------------------
// Example 11 / 9 follow-up: adding the covering unit rule makes the
// Example 9 program tractable for the deletion machinery.
TEST(PaperExample11, UnitRuleAdditionEnablesDeletion) {
  // With adornment run properly, pnd is the projected version of pnn and
  // the covering unit rule pnd(X) :- pnn(X,Z,U) is added automatically;
  // the g3-rule of pnd is then subsumed by the unit rule.
  auto parsed = MustParse(
      "query(X) :- p(X, Z, U).\n"
      "p(X, Z, U) :- p(X, W, W2), g2(W, Z, U).\n"
      "p(X, Z, U) :- g0(X, Z, U).\n"
      "?- query(X).\n");
  OptimizerOptions options;
  Result<OptimizedProgram> optimized =
      OptimizeExistential(parsed.program, options);
  ASSERT_TRUE(optimized.ok());
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(parsed.program, optimized->program);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
}

// ---------------------------------------------------------------------------
// Example 12: the transformed program (with the unconditioned zero-step
// query rule) is query equivalent to the original and runs a binary
// recursion instead of a ternary one.
TEST(PaperExample12, TransformedProgramEquivalent) {
  auto original = MustParse(
      "query(X, Y) :- p(X, Y, Z).\n"
      "p(X, Y, Z) :- up(X, X1), p(X1, Y1, Z), dn(Y1, Y), c(Z).\n"
      "p(X, Y, Z) :- b(X, Y, Z).\n"
      "?- query(X, Y).\n");
  auto transformed = MustParseWith(original.ctx,
      "query2(X, Y) :- pt(X, Y).\n"
      "query2(X, Y) :- b(X, Y, Z).\n"
      "pt(X, Y) :- up(X, X1), pt(X1, Y1), dn(Y1, Y).\n"
      "pt(X, Y) :- b(X, Y, Z), c(Z).\n"
      "?- query2(X, Y).\n");
  Result<RandomCheckReport> check = CheckQueryEquivalentOnEdb(
      original.program, transformed.program);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
}

// ---------------------------------------------------------------------------
// Theorem 3.3 both directions (decidable fragment): a strongly regular
// chain program converts to a monadic one; a self-embedding (a^n b^n)
// grammar is rejected.
TEST(PaperTheorem33, ConstructiveAndNegative) {
  auto regular = MustParse(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
      "?- tc(X, Y).\n");
  EXPECT_TRUE(MonadicEquivalent(regular.program).ok());
  auto anbn = MustParse(
      "s(X, Y) :- up(X, U), s(U, V), dn(V, Y).\n"
      "s(X, Y) :- up(X, U), dn(U, Y).\n"
      "?- s(X, Y).\n");
  Cfg grammar = *ChainProgramToGrammar(anbn.program);
  EXPECT_TRUE(IsSelfEmbedding(grammar));
  EXPECT_FALSE(MonadicEquivalent(anbn.program).ok());
}

}  // namespace
}  // namespace exdl
