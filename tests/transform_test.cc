#include <algorithm>

#include <gtest/gtest.h>

#include "adorn/adorn.h"
#include "ast/printer.h"
#include "testing/test_util.h"
#include "transform/cleanup.h"
#include "transform/components.h"
#include "transform/projection.h"
#include "transform/unit_rules.h"

namespace exdl {
namespace {

using ::exdl::testing::EvalAnswers;
using ::exdl::testing::MustParse;

// ---------------------------------------------------------------- projection

TEST(ProjectionTest, PaperExample3UnaryTransitiveClosure) {
  // Example 1's adorned program becomes Example 3: a^nd loses its second
  // argument and stays recursive with arity 1.
  auto parsed = MustParse(
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- p(X, Z), a(Z, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X).\n");
  Result<Program> adorned = AdornExistential(parsed.program);
  ASSERT_TRUE(adorned.ok());
  Result<ProjectionResult> projected = PushProjections(*adorned);
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->predicates_projected, 1u);
  EXPECT_EQ(projected->positions_dropped, 1u);
  const Context& ctx = *parsed.ctx;
  bool found_unary_a = false;
  for (const Rule& r : projected->program.rules()) {
    const PredicateInfo& info = ctx.predicate(r.head.pred);
    if (ctx.SymbolName(info.name) == "a") {
      EXPECT_EQ(info.arity, 1u);
      EXPECT_EQ(info.adornment.str(), "nd");
      found_unary_a = true;
    }
  }
  EXPECT_TRUE(found_unary_a);
}

TEST(ProjectionTest, PreservesAnswers) {
  auto parsed = MustParse(
      "p(n1, n2). p(n2, n3). p(n3, n1). p(n4, n4).\n"
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- p(X, Z), a(Z, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X).\n");
  Result<Program> adorned = AdornExistential(parsed.program);
  ASSERT_TRUE(adorned.ok());
  Result<ProjectionResult> projected = PushProjections(*adorned);
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            EvalAnswers(projected->program, parsed.edb));
}

TEST(ProjectionTest, ReducesWorkOnChain) {
  auto parsed = MustParse(
      "p(n0,n1). p(n1,n2). p(n2,n3). p(n3,n4). p(n4,n5). p(n5,n6).\n"
      "p(n6,n7). p(n7,n8). p(n8,n9).\n"
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- p(X, Z), a(Z, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X).\n");
  Result<Program> adorned = AdornExistential(parsed.program);
  ASSERT_TRUE(adorned.ok());
  Result<ProjectionResult> projected = PushProjections(*adorned);
  ASSERT_TRUE(projected.ok());
  EvalResult before = testing::MustEval(parsed.program, parsed.edb);
  EvalResult after = testing::MustEval(projected->program, parsed.edb);
  // Binary tc on a 9-chain derives O(n^2) tuples; the unary version O(n).
  EXPECT_LT(after.stats.tuples_inserted, before.stats.tuples_inserted);
  EXPECT_EQ(before.answers, after.answers);
}

TEST(ProjectionTest, IdempotentAndNoopWithoutExistentials) {
  auto parsed = MustParse(
      "query(X, Y) :- a(X, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X, Y).\n");
  Result<Program> adorned = AdornExistential(parsed.program);
  ASSERT_TRUE(adorned.ok());
  Result<ProjectionResult> projected = PushProjections(*adorned);
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->predicates_projected, 0u);
  Result<ProjectionResult> again = PushProjections(projected->program);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->predicates_projected, 0u);
}

TEST(ProjectionTest, QueryAtomRewritten) {
  auto parsed = MustParse(
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X).\n");
  Result<Program> adorned = AdornExistential(parsed.program);
  ASSERT_TRUE(adorned.ok());
  Result<ProjectionResult> projected = PushProjections(*adorned);
  ASSERT_TRUE(projected.ok());
  // query@n is all-needed, so it stays; a@nd inside is projected.
  const Rule& wrapper = projected->program.rules()[0];
  EXPECT_EQ(wrapper.body[0].args.size(), 1u);
}

// ---------------------------------------------------------------- components

TEST(ComponentsTest, PaperExample2Shape) {
  // After adornment+projection of Example 2's rule, the q3/q4 part and the
  // q5 literal are disconnected from the head and become booleans.
  // The head's existential second position has already been projected
  // away (the pipeline runs projection first), so U is body-only here.
  auto parsed2 = MustParse(
      "p(X) :- q1(X, Y), q2(Y, Z), q3(U, V), q4(V), q5(W).\n"
      "q4(V) :- q6(V).\n"
      "?- p(X).\n");
  Result<ComponentResult> result = ExtractComponents(parsed2.program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->booleans_created, 2u);
  EXPECT_EQ(result->rules_split, 1u);
  // The rewritten rule: q1, q2 + two boolean literals.
  const Rule& rewritten = result->program.rules()[0];
  EXPECT_EQ(rewritten.body.size(), 4u);
  EXPECT_EQ(rewritten.body[2].args.size(), 0u);
  EXPECT_EQ(rewritten.body[3].args.size(), 0u);
}

TEST(ComponentsTest, PreservesAnswersWhenSubqueryTrue) {
  auto parsed = MustParse(
      "q1(n1, n2). q2(n2, n3). q3(n7, n8). q4(n8). q5(n9).\n"
      "p(X) :- q1(X, Y), q2(Y, Z), q3(U, V), q4(V), q5(W).\n"
      "?- p(X).\n");
  Result<ComponentResult> result = ExtractComponents(parsed.program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            EvalAnswers(result->program, parsed.edb));
}

TEST(ComponentsTest, PreservesAnswersWhenSubqueryFalse) {
  auto parsed = MustParse(
      "q1(n1, n2). q2(n2, n3). q3(n7, n8). q5(n9).\n"  // q4 empty!
      "p(X) :- q1(X, Y), q2(Y, Z), q3(U, V), q4(V), q5(W).\n"
      "?- p(X).\n");
  Result<ComponentResult> result = ExtractComponents(parsed.program);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(EvalAnswers(parsed.program, parsed.edb).empty());
  EXPECT_TRUE(EvalAnswers(result->program, parsed.edb).empty());
}

TEST(ComponentsTest, BooleanRuleGetsCutAtRuntime) {
  auto parsed = MustParse(
      "q1(n1, n2). q3(n7, n8). q3(n8, n9). q3(n9, n10).\n"
      "p(X) :- q1(X, Y), q3(U, V).\n"
      "?- p(X).\n");
  Result<ComponentResult> result = ExtractComponents(parsed.program);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->booleans_created, 1u);
  EvalResult eval = testing::MustEval(result->program, parsed.edb);
  EXPECT_EQ(eval.stats.rules_retired, 1u);
  EXPECT_EQ(eval.answers.size(), 1u);
}

TEST(ComponentsTest, ComponentTouchingExistentialHeadVarStaysInline) {
  // U appears in the head; detaching q3 would unbind it, so the rule must
  // stay intact (this is the case the pipeline handles by projecting
  // first).
  auto parsed = MustParse(
      "p@nd(X, U) :- q1(X, Y), q3(U, V).\n"
      "?- p@nd(X, U).\n");
  Result<ComponentResult> result = ExtractComponents(parsed.program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->booleans_created, 0u);
  EXPECT_EQ(result->program.rules()[0].body.size(), 2u);
}

TEST(ComponentsTest, ZeroAryLiteralNotRewrapped) {
  auto parsed = MustParse(
      "p(X) :- q(X), flag.\n"
      "flag :- r(Y).\n"
      "?- p(X).\n");
  Result<ComponentResult> result = ExtractComponents(parsed.program);
  ASSERT_TRUE(result.ok());
  // Neither rule is split: `flag` in p's body is a lone 0-ary literal in
  // its own component (already a boolean), and flag's defining rule has a
  // single component under a boolean head (Lemma 3.1's exception).
  EXPECT_EQ(result->booleans_created, 0u);
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            EvalAnswers(result->program, parsed.edb));
}

TEST(ComponentsTest, NoChangeForConnectedRule) {
  auto parsed = MustParse("p(X, Y) :- q(X, Z), r(Z, Y).\n?- p(X, Y).\n");
  Result<ComponentResult> result = ExtractComponents(parsed.program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->booleans_created, 0u);
  EXPECT_EQ(ToString(result->program), ToString(parsed.program));
}

// ---------------------------------------------------------------- unit rules

TEST(UnitRulesTest, AddsCoveringRule) {
  auto parsed = MustParse(
      "a@nd(X) :- p(X, Y).\n"
      "a@nn(X, Y) :- p(X, Y).\n"
      "?- a@nd(X).\n");
  Result<UnitRuleResult> result = AddCoveringUnitRules(parsed.program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rules_added, 1u);
  const Rule& unit = result->added[0];
  EXPECT_TRUE(unit.IsUnitRule());
  // Head a@nd/1 gets U0; body a@nn gets (U0, U1).
  EXPECT_EQ(unit.head.args.size(), 1u);
  EXPECT_EQ(unit.body[0].args.size(), 2u);
  EXPECT_EQ(unit.head.args[0], unit.body[0].args[0]);
}

TEST(UnitRulesTest, NoDuplicateAddition) {
  auto parsed = MustParse(
      "a@nd(X) :- p(X, Y).\n"
      "a@nn(X, Y) :- p(X, Y).\n"
      "a@nd(U0) :- a@nn(U0, U1).\n"
      "?- a@nd(X).\n");
  Result<UnitRuleResult> result = AddCoveringUnitRules(parsed.program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rules_added, 0u);
}

TEST(UnitRulesTest, PreservesAnswers) {
  auto parsed = MustParse(
      "p(n1, n2). p(n2, n3).\n"
      "a@nd(X) :- p(X, Y).\n"
      "a@nn(X, Y) :- p(X, Y).\n"
      "query(X) :- a@nd(X).\n"
      "?- query(X).\n");
  Result<UnitRuleResult> result = AddCoveringUnitRules(parsed.program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            EvalAnswers(result->program, parsed.edb));
}

TEST(UnitRulesTest, UnadornedPredicatesIgnored) {
  auto parsed = MustParse("a(X) :- p(X, Y).\n?- a(X).\n");
  Result<UnitRuleResult> result = AddCoveringUnitRules(parsed.program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rules_added, 0u);
}

// ------------------------------------------------------------------ cleanup

TEST(CleanupTest, RemovesUnreachableRules) {
  auto parsed = MustParse(
      "q(X) :- e(X).\n"
      "orphan(X) :- e(X).\n"
      "?- q(X).\n");
  std::unordered_set<PredId> inputs = parsed.program.EdbPredicates();
  Result<CleanupResult> result = CleanupProgram(parsed.program, inputs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rules_removed, 1u);
  EXPECT_EQ(result->program.NumRules(), 1u);
}

TEST(CleanupTest, RemovesRulesUsingEmptyInternalPredicates) {
  // 'ghost' is not an input predicate and has no rules: q's second rule
  // can never fire; after its removal nothing defines helper either.
  auto parsed = MustParse(
      "q(X) :- e(X).\n"
      "q(X) :- ghost(X), helper(X).\n"
      "helper(X) :- q(X).\n"
      "?- q(X).\n");
  std::unordered_set<PredId> inputs = {
      *parsed.ctx->FindPredicate(*parsed.ctx->FindSymbol("e"), 1,
                                 Adornment())};
  Result<CleanupResult> result = CleanupProgram(parsed.program, inputs);
  ASSERT_TRUE(result.ok());
  // The ghost rule goes first; helper then becomes unreachable and its
  // rule cascades away, leaving only `q(X) :- e(X).`
  bool helper_defined = false;
  for (const Rule& r : result->program.rules()) {
    if (parsed.ctx->SymbolName(
            parsed.ctx->predicate(r.head.pred).name) == "helper") {
      helper_defined = true;
    }
  }
  EXPECT_FALSE(helper_defined);
  EXPECT_EQ(result->program.NumRules(), 1u);
}

TEST(CleanupTest, InputPredicatesNotTreatedAsEmpty) {
  auto parsed = MustParse(
      "q(X) :- e(X).\n"
      "?- q(X).\n");
  std::unordered_set<PredId> inputs = parsed.program.EdbPredicates();
  Result<CleanupResult> result = CleanupProgram(parsed.program, inputs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rules_removed, 0u);
}

TEST(CleanupTest, CascadeToEmptyProgram) {
  // Example 8's endgame: everything reachable depends on an undefined
  // internal predicate; the whole program collapses.
  auto parsed = MustParse(
      "q(X) :- mid(X).\n"
      "mid(X) :- ghost(X).\n"
      "?- q(X).\n");
  std::unordered_set<PredId> inputs = {};  // nothing is input
  Result<CleanupResult> result = CleanupProgram(parsed.program, inputs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->program.NumRules(), 0u);
}

}  // namespace
}  // namespace exdl
