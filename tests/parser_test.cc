#include <gtest/gtest.h>

#include "ast/printer.h"
#include "parser/lexer.h"
#include "parser/parser.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

TEST(LexerTest, BasicTokens) {
  Result<std::vector<Token>> tokens = Tokenize("p(X, c) :- q. ?- r.");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  std::vector<TokenKind> expected = {
      TokenKind::kIdent,   TokenKind::kLParen, TokenKind::kVariable,
      TokenKind::kComma,   TokenKind::kIdent,  TokenKind::kRParen,
      TokenKind::kImplies, TokenKind::kIdent,  TokenKind::kDot,
      TokenKind::kQuery,   TokenKind::kIdent,  TokenKind::kDot,
      TokenKind::kEof};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, CommentsAndWhitespace) {
  Result<std::vector<Token>> tokens =
      Tokenize("% a comment\np(X).  # another\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 6u);  // p ( X ) . eof
}

TEST(LexerTest, IntegerLiteralsAreConstants) {
  Result<std::vector<Token>> tokens = Tokenize("42");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "42");
}

TEST(LexerTest, RejectsLoneColon) {
  EXPECT_FALSE(Tokenize("p : q").ok());
}

TEST(LexerTest, RejectsLoneQuestionMark) {
  EXPECT_FALSE(Tokenize("? p").ok());
}

TEST(LexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Tokenize("p(X) & q(X)").ok());
}

TEST(LexerTest, TracksLineNumbers) {
  Result<std::vector<Token>> tokens = Tokenize("p.\nq.\nr.");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].line, 2);  // 'q'
}

TEST(ParserTest, RulesFactsAndQuery) {
  auto parsed = testing::MustParse(
      "edge(n1, n2).\n"
      "edge(n2, n3).\n"
      "tc(X,Y) :- edge(X,Y).\n"
      "tc(X,Y) :- edge(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  EXPECT_EQ(parsed.program.NumRules(), 2u);
  EXPECT_TRUE(parsed.program.query().has_value());
  EXPECT_EQ(parsed.edb.TotalTuples(), 2u);
}

TEST(ParserTest, ZeroAryPredicates) {
  auto parsed = testing::MustParse("b :- p(X), q(X).\nr(Y) :- s(Y), b.\n");
  EXPECT_EQ(parsed.program.rules()[0].head.args.size(), 0u);
  EXPECT_EQ(parsed.program.rules()[1].body[1].args.size(), 0u);
}

TEST(ParserTest, AdornedPredicateSyntax) {
  auto parsed = testing::MustParse("a@nd(X,Y) :- p(X,Y).\n");
  const PredicateInfo& info =
      parsed.ctx->predicate(parsed.program.rules()[0].head.pred);
  EXPECT_EQ(info.adornment.str(), "nd");
  EXPECT_EQ(info.arity, 2u);
}

TEST(ParserTest, AnonymousVariablesAreFreshPerOccurrence) {
  auto parsed = testing::MustParse("p(X) :- q(X, _), r(_, X).\n");
  const Rule& rule = parsed.program.rules()[0];
  SymbolId a = rule.body[0].args[1].id();
  SymbolId b = rule.body[1].args[0].id();
  EXPECT_NE(a, b);
}

TEST(ParserTest, RejectsNonGroundFact) {
  ContextPtr ctx = std::make_shared<Context>();
  Result<ParsedUnit> r = ParseProgram("p(X).\n", ctx);
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, RejectsMultipleQueries) {
  ContextPtr ctx = std::make_shared<Context>();
  Result<ParsedUnit> r = ParseProgram("?- p(X).\n?- q(X).\n", ctx);
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, RejectsAdornmentShorterThanArgs) {
  ContextPtr ctx = std::make_shared<Context>();
  Result<ParsedUnit> r = ParseProgram("a@n(X,Y) :- p(X,Y).\n", ctx);
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, AdornmentLongerThanArgsIsProjectedVersion) {
  // a@nd with a single stored argument = the projected version (Lemma 3.2).
  auto parsed = testing::MustParse("a@nd(X) :- p(X, Y).\n");
  const PredicateInfo& info =
      parsed.ctx->predicate(parsed.program.rules()[0].head.pred);
  EXPECT_TRUE(info.IsProjected());
  EXPECT_EQ(info.arity, 1u);
  EXPECT_EQ(info.adornment.size(), 2u);
}

TEST(ParserTest, MissingDotFails) {
  ContextPtr ctx = std::make_shared<Context>();
  EXPECT_FALSE(ParseProgram("p(X) :- q(X)", ctx).ok());
}

TEST(ParserTest, EmptyInputIsEmptyProgram) {
  auto parsed = testing::MustParse("");
  EXPECT_EQ(parsed.program.NumRules(), 0u);
  EXPECT_FALSE(parsed.program.query().has_value());
}

TEST(ParserTest, ParseAtomHelper) {
  Context ctx;
  Result<Atom> atom = ParseAtom("p(X, 7)", &ctx);
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->args.size(), 2u);
  EXPECT_TRUE(atom->args[0].IsVar());
  EXPECT_TRUE(atom->args[1].IsConst());
  EXPECT_FALSE(ParseAtom("p(X) q", &ctx).ok());
}

TEST(ParserTest, ParseRuleHelper) {
  Context ctx;
  Result<Rule> rule = ParseRule("p(X) :- q(X, Y)", &ctx);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->body.size(), 1u);
  Result<Rule> fact_like = ParseRule("p(X)", &ctx);
  ASSERT_TRUE(fact_like.ok());
  EXPECT_TRUE(fact_like->body.empty());
}

TEST(ParserTest, ConstantsShareInterning) {
  auto parsed = testing::MustParse(
      "p(c1, c2).\n"
      "q(X) :- r(X, c1).\n");
  SymbolId c1 = *parsed.ctx->FindSymbol("c1");
  EXPECT_EQ(parsed.program.rules()[0].body[0].args[1].id(), c1);
}

TEST(ParserTest, RejectsOverlongIdentifier) {
  ContextPtr ctx = std::make_shared<Context>();
  std::string name(kMaxIdentifierLength + 1, 'a');
  Result<ParsedUnit> parsed = ParseProgram(name + ".", ctx);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  // Exactly at the limit is still fine.
  EXPECT_TRUE(ParseProgram(std::string(kMaxIdentifierLength, 'a') + ".", ctx)
                  .ok());
}

TEST(ParserTest, RejectsOverlongIntegerLiteral) {
  ContextPtr ctx = std::make_shared<Context>();
  std::string digits(kMaxIdentifierLength + 1, '7');
  Result<ParsedUnit> parsed = ParseProgram("p(" + digits + ").", ctx);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, RejectsTooManyAtomArguments) {
  ContextPtr ctx = std::make_shared<Context>();
  std::string atom = "p(c0";
  for (size_t i = 1; i <= kMaxAtomArgs; ++i) {
    atom += ", c" + std::to_string(i);
  }
  atom += ").";
  Result<ParsedUnit> parsed = ParseProgram(atom, ctx);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("arguments"), std::string::npos);
}

TEST(ParserTest, RejectsTooManyBodyLiterals) {
  ContextPtr ctx = std::make_shared<Context>();
  std::string rule = "p(X) :- q(X)";
  for (size_t i = 0; i < kMaxBodyLiterals; ++i) rule += ", q(X)";
  rule += ".";
  Result<ParsedUnit> parsed = ParseProgram(rule, ctx);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("literals"), std::string::npos);
  // ParseRule enforces the same cap.
  Context bare;
  EXPECT_FALSE(ParseRule(rule, &bare).ok());
}

}  // namespace
}  // namespace exdl
