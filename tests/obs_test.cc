// Observability subsystem tests: metrics registry + shard merging, trace
// span nesting, evaluator/optimizer instrumentation exactness, and the
// null-sink byte-identity guarantee.

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "eval/evaluator.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

using ::exdl::testing::MustParse;

constexpr const char* kChain =
    "tc(X, Y) :- e(X, Y).\n"
    "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
    "?- tc(n0, Y).\n"
    "e(n0, n1). e(n1, n2). e(n2, n3). e(n3, n4). e(n4, n5).\n"
    "e(n2, n0). e(n5, n1).\n";

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsTest, RegistrationIsIdempotent) {
  obs::MetricsRegistry registry;
  obs::MetricId a = registry.Counter("x", {{"rule", "0"}});
  obs::MetricId b = registry.Counter("x", {{"rule", "0"}});
  obs::MetricId c = registry.Counter("x", {{"rule", "1"}});
  obs::MetricId d = registry.Counter("y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsTest, KindsShareOneNamespacePerKind) {
  obs::MetricsRegistry registry;
  obs::MetricId counter = registry.Counter("m");
  obs::MetricId gauge = registry.Gauge("m");
  EXPECT_NE(counter, gauge);  // same name, different kind
  registry.Add(counter, 7);
  registry.Set(gauge, 2.5);
  EXPECT_EQ(registry.CounterValue(counter), 7u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue(gauge), 2.5);
}

TEST(MetricsTest, ShardMergeFoldsAndResets) {
  obs::MetricsRegistry registry;
  obs::MetricId counter = registry.Counter("c");
  obs::MetricId gauge = registry.Gauge("g");
  obs::MetricId hist = registry.Histogram("h", {1.0, 10.0});
  obs::MetricsShard s1 = registry.NewShard();
  obs::MetricsShard s2 = registry.NewShard();
  s1.Add(counter, 3);
  s2.Add(counter, 4);
  s1.Set(gauge, 9.0);
  s1.Observe(hist, 0.5);
  s2.Observe(hist, 5.0);
  s2.Observe(hist, 100.0);
  registry.Merge(s1);
  registry.Merge(s2);
  EXPECT_EQ(registry.CounterValue(counter), 7u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue(gauge), 9.0);
  // Bounds {1, 10} make three buckets: <=1, <=10, +inf.
  std::vector<uint64_t> counts = registry.HistogramCounts(hist);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  // Merge resets the shard: folding it again adds nothing.
  registry.Merge(s1);
  registry.Merge(s2);
  EXPECT_EQ(registry.CounterValue(counter), 7u);
  EXPECT_EQ(registry.HistogramCounts(hist)[2], 1u);
}

TEST(MetricsTest, ConcurrentShardWritersMergeExactly) {
  obs::MetricsRegistry registry;
  obs::MetricId counter = registry.Counter("work");
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 10000;
  std::vector<obs::MetricsShard> shards;
  for (int i = 0; i < kThreads; ++i) shards.push_back(registry.NewShard());
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&shards, i, counter] {
      for (uint64_t n = 0; n < kPerThread; ++n) shards[i].Add(counter, 1);
    });
  }
  for (std::thread& t : threads) t.join();
  for (obs::MetricsShard& shard : shards) registry.Merge(shard);
  EXPECT_EQ(registry.CounterValue(counter), kThreads * kPerThread);
}

TEST(MetricsTest, SnapshotCarriesDefinitionsAndValues) {
  obs::MetricsRegistry registry;
  obs::MetricId counter = registry.Counter("c", {{"rule", "2"}});
  registry.Add(counter, 11);
  std::vector<obs::MetricRow> rows = registry.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "c");
  EXPECT_EQ(rows[0].kind, obs::MetricKind::kCounter);
  ASSERT_EQ(rows[0].labels.size(), 1u);
  EXPECT_EQ(rows[0].labels[0].first, "rule");
  EXPECT_EQ(rows[0].labels[0].second, "2");
  EXPECT_EQ(rows[0].counter, 11u);
}

// ---------------------------------------------------------------------------
// Trace

TEST(TraceTest, SpansNestLexically) {
  obs::Trace trace;
  obs::SpanId outer = trace.Begin("eval");
  obs::SpanId round = trace.Begin("round:0");
  obs::SpanId rule = trace.Begin("rule:1");
  EXPECT_EQ(trace.PathOf(rule), "eval > round:0 > rule:1");
  trace.End(rule);
  trace.End(round);
  obs::SpanId event = trace.Event("event:budget_trip:deadline");
  trace.End(outer);
  const std::vector<obs::TraceSpan>& spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, static_cast<int64_t>(outer));
  EXPECT_EQ(spans[2].parent, static_cast<int64_t>(round));
  EXPECT_EQ(spans[event].parent, static_cast<int64_t>(outer));
  EXPECT_LT(spans[event].duration_seconds, 0.001);  // point event
  for (const obs::TraceSpan& span : spans) {
    EXPECT_GE(span.duration_seconds, 0.0) << span.name;
  }
}

TEST(TraceTest, EndClosesAnythingLeftOpenInside) {
  obs::Trace trace;
  obs::SpanId outer = trace.Begin("outer");
  trace.Begin("left-open");
  trace.End(outer);  // must close the inner span too
  for (const obs::TraceSpan& span : trace.spans()) {
    EXPECT_GE(span.duration_seconds, 0.0) << span.name;
  }
}

TEST(TraceTest, CapDropsSpansWithoutReallocating) {
  obs::Trace trace(/*max_spans=*/2);
  obs::SpanId a = trace.Begin("a");
  obs::SpanId b = trace.Begin("b");
  obs::SpanId c = trace.Begin("c");  // over the cap
  EXPECT_EQ(c, obs::kDroppedSpan);
  trace.End(c);  // no-op, must not unbalance the open stack
  trace.SetAttr(c, "k", 1.0);
  trace.End(b);
  trace.End(a);
  EXPECT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.dropped(), 1u);
}

TEST(TraceTest, ScopeIsRaii) {
  obs::Trace trace;
  {
    obs::Trace::Scope outer(&trace, "outer");
    obs::Trace::Scope inner(&trace, "inner");
    EXPECT_EQ(trace.PathOf(inner.id()), "outer > inner");
  }
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_GE(trace.spans()[0].duration_seconds, 0.0);
  EXPECT_GE(trace.spans()[1].duration_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Evaluator instrumentation: the merged metrics must agree exactly with
// EvalStats, serially and through the worker pool's per-thread shards.

void CheckEvalMetricsMatchStats(uint32_t num_threads) {
  auto parsed = MustParse(kChain);
  obs::Telemetry telemetry;
  EvalOptions options;
  options.num_threads = num_threads;
  options.telemetry = &telemetry;
  EvalResult result = testing::MustEval(parsed.program, parsed.edb, options);
  obs::MetricsRegistry& m = telemetry.metrics();
  EXPECT_EQ(m.CounterValue(m.Counter("eval.rule_firings")),
            result.stats.rule_firings);
  EXPECT_EQ(m.CounterValue(m.Counter("eval.index_probes")),
            result.stats.index_probes);
  EXPECT_EQ(m.CounterValue(m.Counter("eval.rows_matched")),
            result.stats.rows_matched);
  EXPECT_EQ(m.CounterValue(m.Counter("eval.rounds")), result.stats.rounds);
  // Per-rule attribution partitions the totals exactly.
  uint64_t derived = 0;
  uint64_t duplicates = 0;
  uint64_t firings = 0;
  for (size_t i = 0; i < parsed.program.rules().size(); ++i) {
    obs::LabelSet rule_label = {{"rule", std::to_string(i)}};
    derived += m.CounterValue(m.Counter("eval.rule.derived", rule_label));
    duplicates +=
        m.CounterValue(m.Counter("eval.rule.duplicates", rule_label));
    firings += m.CounterValue(m.Counter("eval.rule.firings", rule_label));
  }
  EXPECT_EQ(derived, result.stats.tuples_inserted);
  EXPECT_EQ(duplicates, result.stats.duplicate_inserts);
  EXPECT_EQ(firings, result.stats.rule_firings);
  EXPECT_DOUBLE_EQ(m.GaugeValue(m.Gauge("storage.tuples")),
                   static_cast<double>(result.db.TotalTuples()));
}

TEST(EvalObsTest, SerialMetricsMatchStatsExactly) {
  CheckEvalMetricsMatchStats(1);
}

TEST(EvalObsTest, WorkerPoolShardsMergeToSameTotals) {
  CheckEvalMetricsMatchStats(4);
}

TEST(EvalObsTest, SpanTreeFollowsRoundsAndRules) {
  auto parsed = MustParse(kChain);
  obs::Telemetry telemetry;
  EvalOptions options;
  options.telemetry = &telemetry;
  EvalResult result = testing::MustEval(parsed.program, parsed.edb, options);
  const std::vector<obs::TraceSpan>& spans = telemetry.trace().spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].name, "eval");
  size_t rounds = 0;
  bool saw_rule = false;
  for (const obs::TraceSpan& span : spans) {
    if (span.name.rfind("round:", 0) == 0) {
      EXPECT_EQ(span.parent, 0);  // rounds nest directly under eval
      ++rounds;
    }
    if (span.name.rfind("rule:", 0) == 0) saw_rule = true;
  }
  EXPECT_EQ(rounds, result.stats.rounds);
  EXPECT_TRUE(saw_rule);
  EXPECT_EQ(telemetry.trace().dropped(), 0u);
}

TEST(EvalObsTest, NullSinkRunIsByteIdentical) {
  auto parsed = MustParse(kChain);
  EvalOptions traced;
  obs::Telemetry telemetry;
  traced.telemetry = &telemetry;
  EvalResult with = testing::MustEval(parsed.program, parsed.edb, traced);
  EvalResult without =
      testing::MustEval(parsed.program, parsed.edb, EvalOptions());
  EXPECT_EQ(with.answers, without.answers);
  EXPECT_EQ(with.stats.rounds, without.stats.rounds);
  EXPECT_EQ(with.stats.rule_firings, without.stats.rule_firings);
  EXPECT_EQ(with.stats.tuples_inserted, without.stats.tuples_inserted);
  EXPECT_EQ(with.stats.duplicate_inserts, without.stats.duplicate_inserts);
  EXPECT_EQ(with.stats.index_probes, without.stats.index_probes);
  EXPECT_EQ(with.stats.rows_matched, without.stats.rows_matched);
  // Row-for-row identical storage, not just equal counts.
  for (const auto& [pred, rel] : without.db.relations()) {
    const Relation* other = with.db.Find(pred);
    ASSERT_NE(other, nullptr);
    ASSERT_EQ(other->size(), rel.size());
    for (size_t r = 0; r < rel.size(); ++r) {
      std::span<const Value> a = rel.view().Scan(r);
      std::span<const Value> b = other->view().Scan(r);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    }
  }
}

// ---------------------------------------------------------------------------
// Optimizer instrumentation: the span sequence under "optimize" must match
// the structured per-phase report entries, in order.

TEST(OptimizerObsTest, PhaseSpansMatchReportOrder) {
  EngineOptions options;
  options.collect_telemetry = true;
  Engine engine(std::move(options));
  ASSERT_TRUE(engine.LoadSource(kChain).ok());
  ASSERT_TRUE(engine.Optimize().ok());
  const OptimizationReport& report = engine.report();
  ASSERT_FALSE(report.phases.empty());
  std::vector<std::string> span_phases;
  for (const obs::TraceSpan& span : engine.telemetry()->trace().spans()) {
    if (span.name.rfind("phase:", 0) == 0) {
      EXPECT_EQ(engine.telemetry()->trace().PathOf(span.id),
                "optimize > " + span.name);
      span_phases.push_back(span.name.substr(6));
    }
  }
  ASSERT_EQ(span_phases.size(), report.phases.size());
  for (size_t i = 0; i < report.phases.size(); ++i) {
    EXPECT_EQ(span_phases[i], report.phases[i].name);
  }
  // Structured entries carry the data the printer renders.
  for (const OptimizationPhase& phase : report.phases) {
    EXPECT_FALSE(phase.name.empty());
    EXPECT_GE(phase.seconds, 0.0);
    EXPECT_FALSE(phase.interrupted);
  }
}

}  // namespace
}  // namespace exdl
