#include <functional>
#include <map>

#include <gtest/gtest.h>

#include "equiv/argument_projection.h"
#include "equiv/summary_closure.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

using ::exdl::testing::MustParse;

// ----------------------------------------------------------- Summary algebra

TEST(SummaryTest, FromRuleSharedVariables) {
  auto parsed = MustParse("h(X, Y) :- p(Y, Z, X).\n");
  const Rule& rule = parsed.program.rules()[0];
  Summary s = Summary::FromRule(*parsed.ctx, rule.head, rule.body[0]);
  EXPECT_TRUE(s.Connected(0, 2));   // X
  EXPECT_TRUE(s.Connected(1, 0));   // Y
  EXPECT_FALSE(s.Connected(0, 0));
  EXPECT_FALSE(s.Connected(1, 1));
  EXPECT_EQ(s.CrossEdges().size(), 2u);
}

TEST(SummaryTest, FromRuleRepeatedVariableFormsBiclique) {
  auto parsed = MustParse("h(X, X) :- p(X, X).\n");
  const Rule& rule = parsed.program.rules()[0];
  Summary s = Summary::FromRule(*parsed.ctx, rule.head, rule.body[0]);
  EXPECT_EQ(s.CrossEdges().size(), 4u);  // all pairs connected
}

TEST(SummaryTest, FromRuleSharedConstantsConnect) {
  auto parsed = MustParse("h(c, X) :- p(c, X).\n");
  const Rule& rule = parsed.program.rules()[0];
  Summary s = Summary::FromRule(*parsed.ctx, rule.head, rule.body[0]);
  EXPECT_TRUE(s.Connected(0, 0));  // both positions hold constant c
  EXPECT_TRUE(s.Connected(1, 1));
  EXPECT_FALSE(s.Connected(0, 1));
}

TEST(SummaryTest, IdentityConnectsMatchingPositions) {
  Context ctx;
  PredId p = ctx.InternPredicate("p", 3);
  Summary id = Summary::Identity(ctx, p);
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = 0; j < 3; ++j) {
      EXPECT_EQ(id.Connected(i, j), i == j);
    }
  }
}

TEST(SummaryTest, ComposeRelationalCase) {
  auto parsed = MustParse(
      "a(X, Y) :- b(Y, X).\n"
      "b(U, V) :- c(U, V).\n");
  const Context& ctx = *parsed.ctx;
  const Rule& r1 = parsed.program.rules()[0];
  const Rule& r2 = parsed.program.rules()[1];
  Summary ab = Summary::FromRule(ctx, r1.head, r1.body[0]);
  Summary bc = Summary::FromRule(ctx, r2.head, r2.body[0]);
  Summary ac = Summary::Compose(ab, bc);
  // a0 ~ b1 ~ c1, a1 ~ b0 ~ c0.
  EXPECT_TRUE(ac.Connected(0, 1));
  EXPECT_TRUE(ac.Connected(1, 0));
  EXPECT_FALSE(ac.Connected(0, 0));
}

TEST(SummaryTest, ComposeTracksZigzagPaths) {
  // The case where bipartite relational composition is wrong: in the first
  // projection i1-{j1,j3} and i2-{j2}; in the second {j1,j2}-k1 and
  // {j3}-k2. Path i2-j2-k1-j1-i1-j3-k2 connects i2 to k2 even though no
  // "straight through" composition does.
  auto parsed = MustParse(
      "a(I1, I2) :- b(I1, I2, I1).\n"       // i1~{j1,j3}, i2~{j2}
      "b(J1, J2, J3) :- c(J1, J3).\n");     // hand-build instead; see below
  (void)parsed;
  Context ctx;
  PredId a = ctx.InternPredicate("a", 2);
  PredId b = ctx.InternPredicate("b", 3);
  PredId c = ctx.InternPredicate("c", 2);
  SymbolId x = ctx.InternSymbol("X");
  SymbolId y = ctx.InternSymbol("Y");
  SymbolId z = ctx.InternSymbol("Z");
  // ab: head a(X, Y), body b(X, Y, X): a0~{b0,b2}, a1~{b1}.
  Atom ha(a, {Term::Var(x), Term::Var(y)});
  Atom lb(b, {Term::Var(x), Term::Var(y), Term::Var(x)});
  Summary ab = Summary::FromRule(ctx, ha, lb);
  // bc: head b(X, X, Z), body c(Z, X)?? we need {b0,b1}~c0-ish shape:
  // head b(X, X, Z), body c(X, Z): b0~b1~c0, b2~c1.
  Atom hb(b, {Term::Var(x), Term::Var(x), Term::Var(z)});
  Atom lc(c, {Term::Var(x), Term::Var(z)});
  Summary bc = Summary::FromRule(ctx, hb, lc);
  Summary ac = Summary::Compose(ab, bc);
  // Merged graph: a0~{b0,b2}, a1~{b1}, b0~b1~c0, b2~c1.
  // Everything is one connected component: a0~b0~b1~a1 and a0~b2~c1, c0.
  EXPECT_TRUE(ac.Connected(0, 0));
  EXPECT_TRUE(ac.Connected(0, 1));
  EXPECT_TRUE(ac.Connected(1, 0));  // via the zigzag a1-b1-b0-...-c0
  EXPECT_TRUE(ac.Connected(1, 1));
}

TEST(SummaryTest, ComposeIsAssociative) {
  Context ctx;
  PredId p = ctx.InternPredicate("p", 2);
  PredId q = ctx.InternPredicate("q", 2);
  PredId r = ctx.InternPredicate("r", 2);
  PredId s = ctx.InternPredicate("s", 2);
  SymbolId x = ctx.InternSymbol("X");
  SymbolId y = ctx.InternSymbol("Y");
  Atom hp(p, {Term::Var(x), Term::Var(y)});
  Atom lq(q, {Term::Var(y), Term::Var(x)});
  Atom hq(q, {Term::Var(x), Term::Var(x)});
  Atom lr(r, {Term::Var(x), Term::Var(y)});
  Atom hr(r, {Term::Var(x), Term::Var(y)});
  Atom ls(s, {Term::Var(y), Term::Var(y)});
  Summary pq = Summary::FromRule(ctx, hp, lq);
  Summary qr = Summary::FromRule(ctx, hq, lr);
  Summary rs = Summary::FromRule(ctx, hr, ls);
  Summary left = Summary::Compose(Summary::Compose(pq, qr), rs);
  Summary right = Summary::Compose(pq, Summary::Compose(qr, rs));
  EXPECT_EQ(left, right);
}

TEST(SummaryTest, ConnectsAtLeast) {
  Context ctx;
  PredId p = ctx.InternPredicate("p", 2);
  Summary id = Summary::Identity(ctx, p);
  SymbolId x = ctx.InternSymbol("X");
  // Full summary (all connected) via repeated variable everywhere.
  Atom h(p, {Term::Var(x), Term::Var(x)});
  Atom l(p, {Term::Var(x), Term::Var(x)});
  Summary full = Summary::FromRule(ctx, h, l);
  EXPECT_TRUE(full.ConnectsAtLeast(id));
  EXPECT_FALSE(id.ConnectsAtLeast(full));
  EXPECT_TRUE(id.ConnectsAtLeast(id));
}

TEST(SummaryTest, ToStringShowsClasses) {
  Context ctx;
  PredId p = ctx.InternPredicate("p", 2);
  Summary id = Summary::Identity(ctx, p);
  std::string s = id.ToString(ctx);
  EXPECT_NE(s.find("p->p"), std::string::npos);
}

// ------------------------------------------------------------- the analysis

TEST(SummaryClosureTest, SubsumedRuleIsDeletable) {
  // r2's a-occurrence is covered by the unit rule r0: every q-fact derived
  // through r2 comes straight from an a-fact that r0 already promotes.
  auto parsed = MustParse(
      "q(X) :- a(X, Y).\n"           // r0 (unit)
      "a(X, Y) :- b(X, Y).\n"        // r1
      "q(X) :- a(X, Z), c(Z, Y).\n"  // r2 (subsumed)
      "?- q(X).\n");
  Result<SummaryAnalysis> analysis = SummaryAnalysis::Build(parsed.program);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->complete());
  EXPECT_TRUE(analysis->OccurrenceJustified(Occurrence{2, 0}));
  std::vector<size_t> deletable = analysis->DeletableRules();
  EXPECT_NE(std::find(deletable.begin(), deletable.end(), 2u),
            deletable.end());
}

TEST(SummaryClosureTest, UnitRuleCannotJustifyItself) {
  auto parsed = MustParse(
      "q(X) :- a(X, Y).\n"      // r0: the only route from q to a
      "a(X, Y) :- b(X, Y).\n"   // r1
      "?- q(X).\n");
  Result<SummaryAnalysis> analysis = SummaryAnalysis::Build(parsed.program);
  ASSERT_TRUE(analysis.ok());
  // Deleting r0 would lose all answers; the only matching unit chain uses
  // r0 itself and must be rejected.
  EXPECT_FALSE(analysis->OccurrenceJustified(Occurrence{0, 0}));
}

TEST(SummaryClosureTest, MismatchedProjectionNotJustified) {
  // r2 swaps the arguments, so the unit rule r0 does not reproduce its
  // q-facts: q(Z) with a(X,Z) vs r0's q(X) with a(X,Y).
  auto parsed = MustParse(
      "q(X) :- a(X, Y).\n"           // r0 (unit)
      "a(X, Y) :- b(X, Y).\n"        // r1
      "q(Z) :- a(X, Z), c(X, Y).\n"  // r2: needs a's *second* column
      "?- q(X).\n");
  Result<SummaryAnalysis> analysis = SummaryAnalysis::Build(parsed.program);
  ASSERT_TRUE(analysis.ok());
  EXPECT_FALSE(analysis->OccurrenceJustified(Occurrence{2, 0}));
}

TEST(SummaryClosureTest, PaperExample10NeedsChains) {
  // Symmetric promotion rules: the recursive rule r4 is only justified by
  // *compositions* of unit rules (Lemma 5.3), covering both the straight
  // and the swapped summaries.
  auto parsed = MustParse(
      "pd(X, Y) :- pn(X, Y).\n"   // r0 (unit)
      "pd(X, Y) :- pn(Y, X).\n"   // r1 (unit, swap)
      "pn(X, Y) :- q2(X, Y).\n"   // r2 (unit)
      "pn(X, Y) :- q2(Y, X).\n"   // r3 (unit, swap)
      "q2(X, Y) :- pn(X, Y).\n"   // r4: delete via Lemma 5.3
      "?- pd(X, Y).\n");
  Result<SummaryAnalysis> analysis = SummaryAnalysis::Build(parsed.program);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->complete());
  EXPECT_TRUE(analysis->OccurrenceJustified(Occurrence{4, 0}));
}

TEST(SummaryClosureTest, ChainLengthOneIsWeaker) {
  // Justifying r2 requires the *composition* r0 ∘ r1 (pd -> pn -> q2);
  // restricted to Lemma 5.1 (single unit rule) no chain reaches q2 and the
  // deletion is missed, while the full Lemma 5.3 closure finds it.
  auto parsed = MustParse(
      "pd(X, Y) :- pn(X, Y).\n"         // r0 (unit)
      "pn(X, Y) :- q2(X, Y).\n"         // r1 (unit)
      "pd(X, Y) :- q2(X, Y), c(X).\n"   // r2: subsumed via r0 ∘ r1
      "?- pd(X, Y).\n");
  SummaryClosureOptions lemma51;
  lemma51.max_chain_length = 1;
  Result<SummaryAnalysis> restricted =
      SummaryAnalysis::Build(parsed.program, lemma51);
  ASSERT_TRUE(restricted.ok());
  EXPECT_FALSE(restricted->OccurrenceJustified(Occurrence{2, 0}));
  Result<SummaryAnalysis> full = SummaryAnalysis::Build(parsed.program);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->OccurrenceJustified(Occurrence{2, 0}));
}

TEST(SummaryClosureTest, UnreachableRuleVacuouslyDeletable) {
  auto parsed = MustParse(
      "q(X) :- a(X).\n"
      "orphan(X) :- a(X), q(X).\n"
      "?- q(X).\n");
  Result<SummaryAnalysis> analysis = SummaryAnalysis::Build(parsed.program);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->OccurrenceJustified(Occurrence{1, 0}));
  std::optional<std::vector<size_t>> uses =
      analysis->JustificationUses(Occurrence{1, 0});
  ASSERT_TRUE(uses.has_value());
  EXPECT_TRUE(uses->empty());
}

TEST(SummaryClosureTest, JustificationUsesReportsChainRules) {
  auto parsed = MustParse(
      "q(X) :- a(X, Y).\n"
      "a(X, Y) :- b(X, Y).\n"
      "q(X) :- a(X, Z), c(Z, Y).\n"
      "?- q(X).\n");
  Result<SummaryAnalysis> analysis = SummaryAnalysis::Build(parsed.program);
  ASSERT_TRUE(analysis.ok());
  std::optional<std::vector<size_t>> uses =
      analysis->JustificationUses(Occurrence{2, 0});
  ASSERT_TRUE(uses.has_value());
  EXPECT_EQ(*uses, std::vector<size_t>{0});  // leans on unit rule r0
}

TEST(SummaryClosureTest, RequiresQuery) {
  auto parsed = MustParse("q(X) :- a(X).\n");
  EXPECT_FALSE(SummaryAnalysis::Build(parsed.program).ok());
}

TEST(SummaryClosureTest, IncompleteAnalysisDisablesDeletion) {
  auto parsed = MustParse(
      "q(X) :- a(X, Y).\n"
      "a(X, Y) :- b(X, Y).\n"
      "q(X) :- a(X, Z), c(Z, Y).\n"
      "?- q(X).\n");
  SummaryClosureOptions tiny;
  tiny.max_total_summaries = 1;
  Result<SummaryAnalysis> analysis =
      SummaryAnalysis::Build(parsed.program, tiny);
  ASSERT_TRUE(analysis.ok());
  EXPECT_FALSE(analysis->complete());
  EXPECT_TRUE(analysis->DeletableRules().empty());
}

TEST(SummaryClosureTest, RecursiveProgramClosureTerminates) {
  auto parsed = MustParse(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
      "?- tc(X, Y).\n");
  Result<SummaryAnalysis> analysis = SummaryAnalysis::Build(parsed.program);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->complete());
  // Nothing is deletable: binary tc's recursive rule is load-bearing.
  EXPECT_TRUE(analysis->DeletableRules().empty());
}

}  // namespace
}  // namespace exdl

// ---------------------------------------------------------------------------
// Brute-force validation of the summary algebra: fold-composition must
// equal path connectivity in the fully merged occurrence graph, for random
// chains of projections.

#include "util/rng.h"

namespace exdl {
namespace {

class SummaryAlgebraProperty : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SummaryAlgebraProperty,
                         ::testing::Range<uint64_t>(1, 41));

TEST_P(SummaryAlgebraProperty, ComposeEqualsBruteForcePathConnectivity) {
  Rng rng(GetParam());
  Context ctx;
  // Chain of k rules: head H_i and body literal B_i, where B_i's predicate
  // equals H_{i+1}'s (facts merge across links).
  int k = 2 + static_cast<int>(rng.Below(3));  // 2..4 links
  std::vector<uint32_t> arity(static_cast<size_t>(k) + 1);
  std::vector<PredId> preds(static_cast<size_t>(k) + 1);
  for (int i = 0; i <= k; ++i) {
    arity[static_cast<size_t>(i)] = 1 + static_cast<uint32_t>(rng.Below(3));
    preds[static_cast<size_t>(i)] =
        ctx.InternPredicate("P" + std::to_string(i),
                            arity[static_cast<size_t>(i)]);
  }
  // Variables per rule: a small pool forces sharing and zigzags.
  std::vector<Atom> heads;
  std::vector<Atom> bodies;
  for (int i = 0; i < k; ++i) {
    std::vector<SymbolId> pool;
    for (int v = 0; v < 3; ++v) {
      pool.push_back(
          ctx.InternSymbol("r" + std::to_string(i) + "v" + std::to_string(v)));
    }
    auto make_atom = [&](PredId pred, uint32_t a) {
      Atom atom;
      atom.pred = pred;
      for (uint32_t j = 0; j < a; ++j) {
        atom.args.push_back(Term::Var(pool[rng.Below(pool.size())]));
      }
      return atom;
    };
    heads.push_back(make_atom(preds[static_cast<size_t>(i)],
                              arity[static_cast<size_t>(i)]));
    bodies.push_back(make_atom(preds[static_cast<size_t>(i) + 1],
                               arity[static_cast<size_t>(i) + 1]));
  }

  // Folded summary via the algebra.
  Summary folded = Summary::FromRule(ctx, heads[0], bodies[0]);
  for (int i = 1; i < k; ++i) {
    folded = Summary::Compose(
        folded, Summary::FromRule(ctx, heads[static_cast<size_t>(i)],
                                  bodies[static_cast<size_t>(i)]));
  }

  // Brute force: union-find over every atom position in the chain.
  // Node id: (i, is_body, j).
  auto node = [&](int i, bool body, uint32_t j) {
    return (static_cast<size_t>(i) * 2 + (body ? 1 : 0)) * 4 + j;
  };
  std::vector<size_t> parent(static_cast<size_t>(k) * 2 * 4 + 8);
  for (size_t King = 0; King < parent.size(); ++King) parent[King] = King;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](size_t a, size_t b) { parent[find(a)] = find(b); };
  for (int i = 0; i < k; ++i) {
    // Same-term connections within rule i (head + body atoms).
    std::map<Term, size_t> first;
    auto visit = [&](const Atom& atom, bool body) {
      for (uint32_t j = 0; j < atom.args.size(); ++j) {
        auto [it, inserted] =
            first.emplace(atom.args[j], node(i, body, j));
        if (!inserted) unite(it->second, node(i, body, j));
      }
    };
    visit(heads[static_cast<size_t>(i)], false);
    visit(bodies[static_cast<size_t>(i)], true);
    // Fact identity: body of rule i == head of rule i+1, positionwise.
    if (i + 1 < k) {
      for (uint32_t j = 0; j < arity[static_cast<size_t>(i) + 1]; ++j) {
        unite(node(i, true, j), node(i + 1, false, j));
      }
    }
  }
  for (uint32_t a = 0; a < arity[0]; ++a) {
    for (uint32_t b = 0; b < arity[static_cast<size_t>(k)]; ++b) {
      bool brute = find(node(0, false, a)) == find(node(k - 1, true, b));
      EXPECT_EQ(folded.Connected(a, b), brute)
          << "seed " << GetParam() << " positions " << a << "," << b;
    }
  }
}

}  // namespace
}  // namespace exdl
