#include <gtest/gtest.h>

#include "adorn/adorn.h"
#include "ast/printer.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

using ::exdl::testing::MustParse;

std::optional<PredId> FindAdorned(const Context& ctx, const std::string& name,
                                  uint32_t arity, const std::string& adorn) {
  auto sym = ctx.FindSymbol(name);
  if (!sym) return std::nullopt;
  return ctx.FindPredicate(*sym, arity, *Adornment::Parse(adorn));
}

TEST(AdornTest, PaperExample1) {
  // query(X) :- a(X,Y).   a(X,Y) :- p(X,Z), a(Z,Y).   a(X,Y) :- p(X,Y).
  auto parsed = MustParse(
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- p(X, Z), a(Z, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X).\n");
  Result<Program> adorned = AdornExistential(parsed.program);
  ASSERT_TRUE(adorned.ok()) << adorned.status().ToString();
  const Context& ctx = *parsed.ctx;
  // a^nd must exist and be the only adorned version of a.
  std::optional<PredId> a_nd = FindAdorned(ctx, "a", 2, "nd");
  ASSERT_TRUE(a_nd.has_value());
  EXPECT_FALSE(FindAdorned(ctx, "a", 2, "nn").has_value());
  // Three rules: query wrapper + two rules for a^nd; p stays unadorned.
  EXPECT_EQ(adorned->NumRules(), 3u);
  for (const Rule& r : adorned->rules()) {
    for (const Atom& lit : r.body) {
      const PredicateInfo& info = ctx.predicate(lit.pred);
      if (ctx.SymbolName(info.name) == "p") {
        EXPECT_TRUE(info.adornment.empty());
      }
    }
  }
}

TEST(AdornTest, PaperExample5TwoVersions) {
  // a(X,Y) :- a(X,Z), p(Z,Y).   a(X,Y) :- p(X,Y).   query projects Y out.
  auto parsed = MustParse(
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- a(X, Z), p(Z, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X).\n");
  Result<Program> adorned = AdornExistential(parsed.program);
  ASSERT_TRUE(adorned.ok());
  const Context& ctx = *parsed.ctx;
  // In a^nd's recursive rule the body occurrence a(X,Z) has Z needed (it
  // feeds p), so a^nn is also generated — exactly Example 5's program.
  EXPECT_TRUE(FindAdorned(ctx, "a", 2, "nd").has_value());
  EXPECT_TRUE(FindAdorned(ctx, "a", 2, "nn").has_value());
  // 1 wrapper + 2 rules for a^nd + 2 rules for a^nn.
  EXPECT_EQ(adorned->NumRules(), 5u);
}

TEST(AdornTest, OccurrenceExistentialCriterion) {
  auto parsed = MustParse("h(X, W) :- p(X, Y), q(Y, Z), r(U).\n");
  const Rule& rule = parsed.program.rules()[0];
  Adornment head_nd = *Adornment::Parse("nd");
  Adornment head_nn = *Adornment::Parse("nn");
  // p's Y occurs in q too: needed.
  EXPECT_FALSE(OccurrenceIsExistential(rule, 0, 1, head_nn));
  // q's Z occurs nowhere else: existential.
  EXPECT_TRUE(OccurrenceIsExistential(rule, 1, 1, head_nn));
  // r's U occurs nowhere else: existential.
  EXPECT_TRUE(OccurrenceIsExistential(rule, 2, 0, head_nn));
  // X in p occurs in a needed head position: needed.
  EXPECT_FALSE(OccurrenceIsExistential(rule, 0, 0, head_nd));
}

TEST(AdornTest, HeadExistentialPositionAllowsBodyExistential) {
  // W occurs in the body once and in the head at position 1. With head
  // adornment nd, that position is existential, so the body occurrence is
  // too; with nn it is needed.
  auto parsed = MustParse("h(X, W) :- p(X), q(W).\n");
  const Rule& rule = parsed.program.rules()[0];
  EXPECT_TRUE(
      OccurrenceIsExistential(rule, 1, 0, *Adornment::Parse("nd")));
  EXPECT_FALSE(
      OccurrenceIsExistential(rule, 1, 0, *Adornment::Parse("nn")));
}

TEST(AdornTest, RepeatedVariableInSameLiteralIsNeeded) {
  auto parsed = MustParse("h(X) :- p(X, Y, Y).\n");
  const Rule& rule = parsed.program.rules()[0];
  EXPECT_FALSE(OccurrenceIsExistential(rule, 0, 1, *Adornment::Parse("n")));
  EXPECT_FALSE(OccurrenceIsExistential(rule, 0, 2, *Adornment::Parse("n")));
}

TEST(AdornTest, ConstantsAreNeverExistential) {
  auto parsed = MustParse("h(X) :- p(X, c).\n");
  const Rule& rule = parsed.program.rules()[0];
  EXPECT_FALSE(OccurrenceIsExistential(rule, 0, 1, *Adornment::Parse("n")));
}

TEST(AdornTest, QueryOnBasePredicateIsNoop) {
  auto parsed = MustParse("?- e(X, Y).\n");
  Result<Program> adorned = AdornExistential(parsed.program);
  ASSERT_TRUE(adorned.ok());
  EXPECT_EQ(adorned->query()->pred, parsed.program.query()->pred);
}

TEST(AdornTest, RequiresQuery) {
  auto parsed = MustParse("p(X) :- e(X).\n");
  EXPECT_FALSE(AdornExistential(parsed.program).ok());
}

TEST(AdornTest, RejectsAlreadyAdornedProgram) {
  auto parsed = MustParse(
      "a@nd(X, Y) :- p(X, Y).\n"
      "query(X) :- a@nd(X, Y).\n"
      "?- query(X).\n");
  EXPECT_FALSE(AdornExistential(parsed.program).ok());
}

TEST(AdornTest, AdornedProgramPreservesAnswers) {
  auto parsed = MustParse(
      "p(n1, n2). p(n2, n3). p(n3, n4).\n"
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- p(X, Z), a(Z, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X).\n");
  Result<Program> adorned = AdornExistential(parsed.program);
  ASSERT_TRUE(adorned.ok());
  EXPECT_EQ(testing::EvalAnswers(parsed.program, parsed.edb),
            testing::EvalAnswers(*adorned, parsed.edb));
}

TEST(AdornTest, MultipleQueryArguments) {
  // Both query args needed -> body occurrence of a is nn; nothing
  // existential anywhere.
  auto parsed = MustParse(
      "query(X, Y) :- a(X, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X, Y).\n");
  Result<Program> adorned = AdornExistential(parsed.program);
  ASSERT_TRUE(adorned.ok());
  EXPECT_TRUE(FindAdorned(*parsed.ctx, "a", 2, "nn").has_value());
  EXPECT_FALSE(FindAdorned(*parsed.ctx, "a", 2, "nd").has_value());
}

TEST(AdornTest, UnreachableRulesDropped) {
  auto parsed = MustParse(
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "orphan(X) :- p(X, X).\n"
      "?- query(X).\n");
  Result<Program> adorned = AdornExistential(parsed.program);
  ASSERT_TRUE(adorned.ok());
  EXPECT_EQ(adorned->NumRules(), 2u);  // orphan's rule not emitted
}

}  // namespace
}  // namespace exdl
