// Stratified negation — the "generalize to negation" direction Section 6
// of the paper points to. Parser syntax, stratification analysis,
// anti-join evaluation, and the conservative behavior of the optimizer on
// non-monotone programs.

#include <gtest/gtest.h>

#include "analysis/stratification.h"
#include "ast/printer.h"
#include "core/optimizer.h"
#include "equiv/random_check.h"
#include "equiv/uniform_equivalence.h"
#include "testing/test_util.h"
#include "transform/magic.h"

namespace exdl {
namespace {

using ::exdl::testing::EvalAnswers;
using ::exdl::testing::MustParse;

TEST(NegationParserTest, NotPrefixParses) {
  auto parsed = MustParse("safe(X) :- node(X), not bad(X).\n");
  const Rule& rule = parsed.program.rules()[0];
  ASSERT_EQ(rule.body.size(), 2u);
  EXPECT_FALSE(rule.body[0].negated);
  EXPECT_TRUE(rule.body[1].negated);
  EXPECT_TRUE(parsed.program.HasNegation());
}

TEST(NegationParserTest, PrinterRoundTrip) {
  auto parsed = MustParse("safe(X) :- node(X), not bad(X).\n");
  std::string printed = ToString(parsed.program);
  EXPECT_NE(printed.find("not bad(X)"), std::string::npos);
  auto reparsed = testing::MustParseWith(parsed.ctx, printed);
  EXPECT_EQ(ToString(reparsed.program), printed);
}

TEST(NegationParserTest, NotAsPredicateNameStillWorks) {
  // "not" negates only when another identifier follows.
  auto parsed = MustParse("p(X) :- q(X), not.\nnot :- r(Y).\n");
  EXPECT_FALSE(parsed.program.rules()[0].body[1].negated);
  EXPECT_EQ(parsed.program.rules()[0].body[1].args.size(), 0u);
}

TEST(StratificationTest, PositiveProgramIsOneStratum) {
  auto parsed = MustParse(
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  Result<Stratification> st = Stratify(parsed.program);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->num_strata, 1);
}

TEST(StratificationTest, NegationRaisesStratum) {
  auto parsed = MustParse(
      "reach(X) :- src(X).\n"
      "reach(Y) :- reach(X), e(X, Y).\n"
      "unreached(X) :- node(X), not reach(X).\n"
      "?- unreached(X).\n");
  Result<Stratification> st = Stratify(parsed.program);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->num_strata, 2);
  PredId reach = parsed.program.rules()[0].head.pred;
  PredId unreached = parsed.program.rules()[2].head.pred;
  EXPECT_EQ(st->StratumOf(reach), 0);
  EXPECT_EQ(st->StratumOf(unreached), 1);
}

TEST(StratificationTest, NegativeCycleRejected) {
  auto parsed = MustParse(
      "p(X) :- n(X), not q(X).\n"
      "q(X) :- n(X), not p(X).\n"
      "?- p(X).\n");
  EXPECT_FALSE(Stratify(parsed.program).ok());
}

TEST(StratificationTest, PositiveCycleWithSideNegationOk) {
  auto parsed = MustParse(
      "a(X) :- b(X).\n"
      "b(X) :- a(X), not c(X).\n"
      "c(X) :- base(X).\n"
      "?- a(X).\n");
  Result<Stratification> st = Stratify(parsed.program);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->num_strata, 2);
}

TEST(NegationEvalTest, UnreachableNodes) {
  auto parsed = MustParse(
      "node(n0). node(n1). node(n2). node(n3).\n"
      "e(n0, n1). e(n1, n2).\n"
      "src(n0).\n"
      "reach(X) :- src(X).\n"
      "reach(Y) :- reach(X), e(X, Y).\n"
      "unreached(X) :- node(X), not reach(X).\n"
      "?- unreached(X).\n");
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            (std::vector<std::string>{"n3"}));
}

TEST(NegationEvalTest, SetDifference) {
  auto parsed = MustParse(
      "a(n1). a(n2). a(n3). b(n2).\n"
      "diff(X) :- a(X), not b(X).\n"
      "?- diff(X).\n");
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            (std::vector<std::string>{"n1", "n3"}));
}

TEST(NegationEvalTest, NegatedLiteralWithConstant) {
  auto parsed = MustParse(
      "a(n1). a(n2). blocked(n1).\n"
      "ok(X) :- a(X), not blocked(n1).\n"
      "always(X) :- a(X), not blocked(n9).\n"
      "?- always(X).\n");
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb).size(), 2u);
  Program blocked_q = parsed.program.Clone();
  Atom q = parsed.program.rules()[0].head;  // ok(X)
  blocked_q.SetQuery(Atom(q.pred, q.args));
  EXPECT_TRUE(testing::EvalAnswers(blocked_q, parsed.edb).empty());
}

TEST(NegationEvalTest, NegatedZeroAryLiteral) {
  auto parsed = MustParse(
      "a(n1).\n"
      "flag :- trigger(X).\n"
      "quiet(X) :- a(X), not flag.\n"
      "?- quiet(X).\n");
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb).size(), 1u);
  auto triggered = MustParse(
      "a(n1). trigger(t).\n"
      "flag :- trigger(X).\n"
      "quiet(X) :- a(X), not flag.\n"
      "?- quiet(X).\n");
  EXPECT_TRUE(EvalAnswers(triggered.program, triggered.edb).empty());
}

TEST(NegationEvalTest, ThreeStrataWinMove) {
  // Game positions: a position is won if some move leads to a lost one;
  // lost if not won (two-stratum classic on an acyclic move graph).
  auto parsed = MustParse(
      "pos(p0). pos(p1). pos(p2). pos(p3).\n"
      "move(p0, p1). move(p1, p2). move(p2, p3).\n"
      "has_move(X) :- move(X, Y).\n"
      "terminal(X) :- pos(X), not has_move(X).\n"
      "won(X) :- move(X, Y), lost(Y).\n"
      "lost(X) :- terminal(X).\n"
      "lost(X) :- pos(X), not won(X), not terminal(X).\n"
      "?- won(X).\n");
  Result<Stratification> st = Stratify(parsed.program);
  // won/lost are mutually recursive with a negative edge: not stratified.
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(Evaluate(parsed.program, parsed.edb).ok());
}

TEST(NegationEvalTest, AcyclicGameViaStrata) {
  // Stratified alternative: compute reachability-to-terminal parity with
  // explicit per-stratum predicates.
  auto parsed = MustParse(
      "pos(p0). pos(p1). pos(p2). pos(p3).\n"
      "move(p0, p1). move(p1, p2). move(p2, p3).\n"
      "has_move(X) :- move(X, Y).\n"
      "terminal(X) :- pos(X), not has_move(X).\n"
      "win1(X) :- move(X, Y), terminal(Y).\n"
      "?- win1(X).\n");
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            (std::vector<std::string>{"p2"}));
}

TEST(NegationEvalTest, SemiNaiveMatchesNaive) {
  auto parsed = MustParse(
      "node(n0). node(n1). node(n2). node(n3). node(n4).\n"
      "e(n0, n1). e(n1, n2). e(n3, n4).\n"
      "src(n0).\n"
      "reach(X) :- src(X).\n"
      "reach(Y) :- reach(X), e(X, Y).\n"
      "island(X) :- node(X), not reach(X).\n"
      "pair(X, Y) :- island(X), island(Y), not e(X, Y).\n"
      "?- pair(X, Y).\n");
  EvalOptions naive;
  naive.seminaive = false;
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            EvalAnswers(parsed.program, parsed.edb, naive));
}

TEST(NegationEvalTest, UnsafeNegationRejected) {
  auto parsed = MustParse(
      "p(X) :- a(X), not b(Y).\n"  // Y never bound positively
      "?- p(X).\n");
  EXPECT_FALSE(Evaluate(parsed.program, Database()).ok());
}

TEST(NegationOptimizerTest, PipelineStillSoundAndConservative) {
  auto parsed = MustParse(
      "safe_reach(X) :- reach(X, Y), not quarantined(Y).\n"
      "reach(X, Y) :- e(X, Y).\n"
      "reach(X, Y) :- e(X, Z), reach(Z, Y).\n"
      "query(X) :- safe_reach(X).\n"
      "?- query(X).\n");
  Result<OptimizedProgram> optimized = OptimizeExistential(parsed.program);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  // Deletion was skipped (non-monotone), but adornment/projection still
  // ran; answers must be preserved.
  EXPECT_EQ(optimized->report.deleted_by_summary, 0u);
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(parsed.program, optimized->program);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
}

TEST(NegationOptimizerTest, ProjectionStillAppliesAroundNegation) {
  // The existential argument Y of reach sits in a *positive* literal; the
  // negated literal over a base predicate does not block projection.
  auto parsed = MustParse(
      "query(X) :- reach(X, Y).\n"
      "reach(X, Y) :- e(X, Y), not blocked(X).\n"
      "reach(X, Y) :- e(X, Z), reach(Z, Y).\n"
      "?- query(X).\n");
  Result<OptimizedProgram> optimized = OptimizeExistential(parsed.program);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(optimized->report.predicates_projected, 1u);
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(parsed.program, optimized->program);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
}

TEST(NegationGuardsTest, NonMonotoneMachineryRefuses) {
  auto parsed = MustParse(
      "p(X) :- a(X), not b(X).\n"
      "?- p(X).\n");
  EXPECT_FALSE(DeletableUnderUniformEquivalence(parsed.program, 0).ok());
  EXPECT_FALSE(MagicRewrite(parsed.program).ok());
}

TEST(NegationEvalTest, DoubleNegationThroughStrata) {
  // present = not absent; absent = not listed. Two negations, three
  // strata; the final answers equal the listed set.
  auto parsed = MustParse(
      "universe(n1). universe(n2). universe(n3).\n"
      "listed(n1). listed(n3).\n"
      "absent(X) :- universe(X), not listed(X).\n"
      "present(X) :- universe(X), not absent(X).\n"
      "?- present(X).\n");
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            (std::vector<std::string>{"n1", "n3"}));
}

}  // namespace
}  // namespace exdl
