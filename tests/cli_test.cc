// Integration test driving the exdlc binary end to end (path injected by
// CMake as EXDLC_PATH).

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

namespace {

/// Decodes a pclose()/wait() status into the child's exit code (-1 when it
/// did not exit normally).
int DecodeExitCode(int status) {
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string RunCommand(const std::string& command, int* exit_code) {
  std::string output;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    *exit_code = -1;
    return output;
  }
  std::array<char, 4096> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  *exit_code = pclose(pipe);
  return output;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    program_path_ = ::testing::TempDir() + "/cli_test_tc.dl";
    std::ofstream out(program_path_);
    out << "query(X) :- a(X, Y).\n"
           "a(X, Y) :- p(X, Z), a(Z, Y).\n"
           "a(X, Y) :- p(X, Y).\n"
           "p(n0, n1). p(n1, n2).\n"
           "?- query(X).\n";
  }
  std::string Exdlc() { return std::string(EXDLC_PATH); }
  std::string program_path_;
};

TEST_F(CliTest, OptimizePrintsProjectedProgram) {
  int code = 0;
  std::string out = RunCommand(Exdlc() + " optimize " + program_path_, &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("a@nd(X)"), std::string::npos) << out;
  EXPECT_NE(out.find("projection pushing"), std::string::npos) << out;
}

TEST_F(CliTest, RunPrintsAnswers) {
  int code = 0;
  std::string out =
      RunCommand(Exdlc() + " run " + program_path_ + " --optimize", &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("n0"), std::string::npos);
  EXPECT_NE(out.find("n1"), std::string::npos);
  EXPECT_NE(out.find("2 answer(s)"), std::string::npos) << out;
}

TEST_F(CliTest, PlanShowsSteps) {
  int code = 0;
  std::string out = RunCommand(Exdlc() + " plan " + program_path_, &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("step 0:"), std::string::npos);
  EXPECT_NE(out.find("emit"), std::string::npos);
}

TEST_F(CliTest, ExplainShowsDerivation) {
  int code = 0;
  std::string out = RunCommand(
      Exdlc() + " explain " + program_path_ + " \"a(n0, n2)\"", &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("[input fact]"), std::string::npos) << out;
}

TEST_F(CliTest, CheckDetectsEquivalence) {
  std::string copy = ::testing::TempDir() + "/cli_test_copy.dl";
  {
    std::ofstream out(copy);
    out << "query(X) :- a(X, Y).\n"
           "a(X, Y) :- a(X, Z), p(Z, Y).\n"  // left-linear variant
           "a(X, Y) :- p(X, Y).\n"
           "?- query(X).\n";
  }
  int code = 0;
  std::string out =
      RunCommand(Exdlc() + " check " + program_path_ + " " + copy, &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("no difference"), std::string::npos) << out;
}

TEST_F(CliTest, CheckDetectsDifference) {
  std::string other = ::testing::TempDir() + "/cli_test_other.dl";
  {
    std::ofstream out(other);
    // Genuinely different: sources with an outgoing edge vs targets with
    // an incoming one. (A one-step forward variant would be equivalent:
    // "reaches something" == "has an outgoing edge" — the paper's point!)
    out << "query(X) :- p(Y, X).\n"
           "?- query(X).\n";
  }
  int code = 0;
  std::string out =
      RunCommand(Exdlc() + " check " + program_path_ + " " + other, &code);
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("NOT equivalent"), std::string::npos) << out;
}

TEST_F(CliTest, BadUsageExitsNonZero) {
  int code = 0;
  RunCommand(Exdlc() + " frobnicate", &code);
  EXPECT_NE(code, 0);
  RunCommand(Exdlc() + " run /nonexistent/file.dl", &code);
  EXPECT_NE(code, 0);
}

class CliBudgetTest : public CliTest {
 protected:
  /// Writes an n-edge transitive-closure program (n rounds, O(n^2) tuples).
  std::string WriteChain(int n) {
    std::string path = ::testing::TempDir() + "/cli_test_budget_chain.dl";
    std::ofstream out(path);
    out << "tc(X, Y) :- e(X, Y).\n"
           "tc(X, Z) :- e(X, Y), tc(Y, Z).\n"
           "?- tc(n0, X).\n";
    for (int i = 0; i < n; ++i) {
      out << "e(n" << i << ", n" << i + 1 << ").\n";
    }
    return path;
  }
};

TEST_F(CliBudgetTest, MaxTuplesTripExitsFive) {
  std::string chain = WriteChain(200);
  int status = 0;
  std::string out = RunCommand(
      Exdlc() + " run " + chain + " --max-tuples 1000", &status);
  EXPECT_EQ(DecodeExitCode(status), 5) << out;
  EXPECT_NE(out.find("budget tripped (tuples)"), std::string::npos) << out;
  EXPECT_NE(out.find("consistent partial database"), std::string::npos)
      << out;
  EXPECT_NE(out.find("budget_tripped=tuples"), std::string::npos) << out;
}

TEST_F(CliBudgetTest, MaxBytesTripExitsFive) {
  std::string chain = WriteChain(200);
  int status = 0;
  std::string out =
      RunCommand(Exdlc() + " run " + chain + " --max-bytes 8192", &status);
  EXPECT_EQ(DecodeExitCode(status), 5) << out;
  EXPECT_NE(out.find("budget tripped (arena_bytes)"), std::string::npos)
      << out;
}

TEST_F(CliBudgetTest, DeadlineTripExitsFour) {
  std::string chain = WriteChain(900);
  int status = 0;
  std::string out = RunCommand(
      Exdlc() + " run " + chain + " --deadline-ms 1", &status);
  EXPECT_EQ(DecodeExitCode(status), 4) << out;
  EXPECT_NE(out.find("budget tripped (deadline)"), std::string::npos) << out;
}

TEST_F(CliBudgetTest, BudgetedRunWithoutTripMatchesUngoverned) {
  std::string chain = WriteChain(40);
  int status = 0;
  // Compare stdout only: the stderr stats line carries wall-clock timings.
  // (RunCommand appends its own 2>&1, so discard stderr inside a subshell.)
  std::string plain = RunCommand(
      "( " + Exdlc() + " run " + chain + " 2>/dev/null )", &status);
  EXPECT_EQ(DecodeExitCode(status), 0);
  std::string governed = RunCommand(
      "( " + Exdlc() + " run " + chain +
          " --deadline-ms 60000 --max-tuples 1000000 2>/dev/null )",
      &status);
  EXPECT_EQ(DecodeExitCode(status), 0);
  EXPECT_EQ(plain, governed);
}

TEST_F(CliBudgetTest, SigintCancelsWithExitSix) {
  std::string chain = WriteChain(3000);
  int status = 0;
  // Background the run, interrupt it, and report its exit code. The child
  // stops at a round boundary and exits 6 (cancelled). SIGINT is re-sent
  // until the process exits: background shells spawn children with SIGINT
  // ignored, so a signal landing before exdlc installs its handler (e.g.
  // while a sanitizer runtime boots) would otherwise be silently dropped.
  std::string out = RunCommand(
      Exdlc() + " run " + chain + " > /dev/null 2> /dev/null & pid=$!; " +
          "( sleep 0.3; i=0; while [ $i -lt 300 ]; do "
          "kill -INT $pid 2>/dev/null || break; i=$((i+1)); sleep 0.2; "
          "done ) & wait $pid; echo EXIT_CODE=$?",
      &status);
  EXPECT_NE(out.find("EXIT_CODE=6"), std::string::npos) << out;
}

TEST_F(CliBudgetTest, BadBudgetValueIsUsageError) {
  int status = 0;
  std::string out = RunCommand(
      Exdlc() + " run " + program_path_ + " --max-tuples nope", &status);
  EXPECT_EQ(DecodeExitCode(status), 2) << out;
  out = RunCommand(Exdlc() + " run " + program_path_ + " --deadline-ms",
                   &status);
  EXPECT_EQ(DecodeExitCode(status), 2) << out;
}

class CliObsTest : public CliTest {
 protected:
  static std::string ReadAll(const std::string& path) {
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    return content;
  }
};

TEST_F(CliObsTest, MetricsJsonWritesSchemaDocument) {
  std::string json_path = ::testing::TempDir() + "/cli_test_metrics.json";
  int code = 0;
  std::string out = RunCommand(Exdlc() + " run " + program_path_ +
                                   " --optimize --metrics-json " + json_path,
                               &code);
  EXPECT_EQ(code, 0) << out;
  std::string doc = ReadAll(json_path);
  EXPECT_NE(doc.find("\"schema_version\":1"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"rules\""), std::string::npos);
  EXPECT_NE(doc.find("\"phases\""), std::string::npos);
  EXPECT_NE(doc.find("\"eval.rule.derived\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"projection\""), std::string::npos) << doc;
}

TEST_F(CliObsTest, TracePrintsSpanTree) {
  int code = 0;
  std::string out =
      RunCommand(Exdlc() + " run " + program_path_ + " --trace", &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("eval"), std::string::npos) << out;
  EXPECT_NE(out.find("round:0"), std::string::npos) << out;
  EXPECT_NE(out.find("rule:"), std::string::npos) << out;
}

TEST_F(CliObsTest, UntracedOutputIsByteIdenticalToTraced) {
  int code = 0;
  std::string json_path = ::testing::TempDir() + "/cli_test_identity.json";
  std::string plain = RunCommand(
      "( " + Exdlc() + " run " + program_path_ + " 2>/dev/null )", &code);
  EXPECT_EQ(DecodeExitCode(code), 0);
  std::string traced = RunCommand(
      "( " + Exdlc() + " run " + program_path_ + " --metrics-json " +
          json_path + " 2>/dev/null )",
      &code);
  EXPECT_EQ(DecodeExitCode(code), 0);
  EXPECT_EQ(plain, traced);
}

TEST_F(CliObsTest, OptimizeRejectsBudgetFlags) {
  int status = 0;
  std::string out = RunCommand(
      Exdlc() + " optimize " + program_path_ + " --max-tuples 10", &status);
  EXPECT_EQ(DecodeExitCode(status), 2) << out;
  EXPECT_NE(out.find("not a valid flag for 'optimize'"), std::string::npos)
      << out;
  out = RunCommand(Exdlc() + " optimize " + program_path_ + " --deadline-ms 5",
                   &status);
  EXPECT_EQ(DecodeExitCode(status), 2) << out;
}

TEST_F(CliObsTest, UnknownFlagIsUsageError) {
  int status = 0;
  std::string out =
      RunCommand(Exdlc() + " run " + program_path_ + " --frobnicate", &status);
  EXPECT_EQ(DecodeExitCode(status), 2) << out;
  EXPECT_NE(out.find("unknown flag: --frobnicate"), std::string::npos) << out;
  out = RunCommand(Exdlc() + " run " + program_path_ + " --metrics-json",
                   &status);
  EXPECT_EQ(DecodeExitCode(status), 2) << out;
  EXPECT_NE(out.find("--metrics-json requires a value"), std::string::npos)
      << out;
}

class CliRecoveryTest : public CliBudgetTest {
 protected:
  /// Fresh checkpoint directory per test.
  std::string MakeCheckpointDir() {
    std::string templ = ::testing::TempDir() + "/cli_recovery_XXXXXX";
    EXPECT_NE(mkdtemp(templ.data()), nullptr);
    return templ;
  }
  static bool FileExists(const std::string& path) {
    std::ifstream in(path);
    return in.good();
  }
};

TEST_F(CliRecoveryTest, CrashAndResumeIsByteIdentical) {
  std::string chain = WriteChain(120);
  std::string dir = MakeCheckpointDir();
  int status = 0;
  std::string ref = RunCommand(
      "( " + Exdlc() + " run " + chain + " 2>/dev/null )", &status);
  ASSERT_EQ(DecodeExitCode(status), 0);

  // Crash mid-fixpoint via the deterministic fault plan (exit 86 is the
  // injected-crash code), leaving the last round-boundary checkpoint.
  std::string out = RunCommand(
      "EXDL_FAULT_SPEC=storage.arena_grow:20:abort " + Exdlc() + " run " +
          chain + " --checkpoint-dir " + dir + " --checkpoint-every-rounds 1",
      &status);
  EXPECT_EQ(DecodeExitCode(status), 86) << out;
  EXPECT_NE(out.find("injected crash at storage.arena_grow"),
            std::string::npos)
      << out;
  ASSERT_TRUE(FileExists(dir + "/checkpoint.exdl"));

  std::string resumed = RunCommand(
      "( " + Exdlc() + " run " + chain + " --resume " + dir +
          "/checkpoint.exdl 2>/dev/null )",
      &status);
  EXPECT_EQ(DecodeExitCode(status), 0);
  EXPECT_EQ(resumed, ref);
}

TEST_F(CliRecoveryTest, CorruptCheckpointExitsSeven) {
  std::string chain = WriteChain(40);
  std::string dir = MakeCheckpointDir();
  int status = 0;
  RunCommand(Exdlc() + " run " + chain + " --checkpoint-dir " + dir, &status);
  ASSERT_EQ(DecodeExitCode(status), 0);

  // Flip one byte in the middle of the snapshot; the CRC must catch it.
  std::string ckpt = dir + "/checkpoint.exdl";
  RunCommand("printf '\\377' | dd of=" + ckpt +
                 " bs=1 seek=200 count=1 conv=notrunc",
             &status);
  std::string out =
      RunCommand(Exdlc() + " run " + chain + " --resume " + ckpt, &status);
  EXPECT_EQ(DecodeExitCode(status), 7) << out;
  EXPECT_NE(out.find("CorruptCheckpoint"), std::string::npos) << out;
}

TEST_F(CliRecoveryTest, ResumeAgainstDifferentProgramIsRefused) {
  std::string chain = WriteChain(40);
  std::string dir = MakeCheckpointDir();
  int status = 0;
  RunCommand(Exdlc() + " run " + chain + " --checkpoint-dir " + dir, &status);
  ASSERT_EQ(DecodeExitCode(status), 0);
  std::string out = RunCommand(Exdlc() + " run " + program_path_ +
                                   " --resume " + dir + "/checkpoint.exdl",
                               &status);
  EXPECT_EQ(DecodeExitCode(status), 1) << out;
  EXPECT_NE(out.find("FailedPrecondition"), std::string::npos) << out;
}

TEST_F(CliRecoveryTest, BadFaultSpecIsUsageError) {
  int status = 0;
  std::string out = RunCommand(
      "EXDL_FAULT_SPEC=no.such.site:1 " + Exdlc() + " run " + program_path_,
      &status);
  EXPECT_EQ(DecodeExitCode(status), 2) << out;
  EXPECT_NE(out.find("unknown fault site"), std::string::npos) << out;
}

TEST_F(CliRecoveryTest, CheckpointSpanAppearsInTrace) {
  std::string chain = WriteChain(20);
  std::string dir = MakeCheckpointDir();
  int status = 0;
  std::string out = RunCommand(Exdlc() + " run " + chain +
                                   " --checkpoint-dir " + dir + " --trace",
                               &status);
  EXPECT_EQ(DecodeExitCode(status), 0) << out;
  EXPECT_NE(out.find("checkpoint:"), std::string::npos) << out;
}

TEST_F(CliObsTest, MetricsJsonWriteIsAtomic) {
  std::string json_path = ::testing::TempDir() + "/cli_test_atomic.json";
  int code = 0;
  std::string out = RunCommand(
      Exdlc() + " run " + program_path_ + " --metrics-json " + json_path,
      &code);
  EXPECT_EQ(code, 0) << out;
  // The temp file of the atomic protocol must not survive a clean emit,
  // and the document must be complete (closed JSON object).
  std::ifstream tmp(json_path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::string doc = ReadAll(json_path);
  ASSERT_FALSE(doc.empty());
  size_t last = doc.find_last_not_of(" \n\t");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(doc[last], '}') << doc.substr(doc.size() > 80 ? doc.size() - 80
                                                          : 0);
}

TEST_F(CliTest, ConnectWithoutDaemonExitsEightWithActionableMessage) {
  const std::string missing = ::testing::TempDir() + "/no_such_daemon.sock";
  int status = 0;
  std::string out = RunCommand(Exdlc() + " connect " + program_path_ +
                                   " --socket " + missing + " --retries 1",
                               &status);
  EXPECT_EQ(DecodeExitCode(status), 8) << out;
  EXPECT_NE(out.find("cannot connect to exdld"), std::string::npos) << out;
  EXPECT_NE(out.find("is exdld running?"), std::string::npos) << out;
}

TEST_F(CliTest, FaultSitesListsEverySiteIncludingDaemon) {
  int status = 0;
  std::string out = RunCommand(Exdlc() + " fault-sites", &status);
  EXPECT_EQ(DecodeExitCode(status), 0) << out;
  for (const char* site :
       {"storage.arena_grow", "snapshot.rename", "daemon.accept",
        "daemon.read", "daemon.write", "daemon.dispatch"}) {
    EXPECT_NE(out.find(std::string(site) + "\n"), std::string::npos)
        << "missing site " << site << " in:\n" << out;
  }
}

TEST_F(CliTest, GrammarCommand) {
  std::string chain = ::testing::TempDir() + "/cli_test_chain.dl";
  {
    std::ofstream out(chain);
    out << "tc(X,Y) :- e(X,Y).\n"
           "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
           "?- tc(X,Y).\n";
  }
  int code = 0;
  std::string out = RunCommand(Exdlc() + " grammar " + chain, &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("strongly regular: yes"), std::string::npos) << out;
  EXPECT_NE(out.find("monadic"), std::string::npos) << out;
}

}  // namespace
