// Integration test driving the exdlc binary end to end (path injected by
// CMake as EXDLC_PATH).

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace {

std::string RunCommand(const std::string& command, int* exit_code) {
  std::string output;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    *exit_code = -1;
    return output;
  }
  std::array<char, 4096> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  *exit_code = pclose(pipe);
  return output;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    program_path_ = ::testing::TempDir() + "/cli_test_tc.dl";
    std::ofstream out(program_path_);
    out << "query(X) :- a(X, Y).\n"
           "a(X, Y) :- p(X, Z), a(Z, Y).\n"
           "a(X, Y) :- p(X, Y).\n"
           "p(n0, n1). p(n1, n2).\n"
           "?- query(X).\n";
  }
  std::string Exdlc() { return std::string(EXDLC_PATH); }
  std::string program_path_;
};

TEST_F(CliTest, OptimizePrintsProjectedProgram) {
  int code = 0;
  std::string out = RunCommand(Exdlc() + " optimize " + program_path_, &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("a@nd(X)"), std::string::npos) << out;
  EXPECT_NE(out.find("projection pushing"), std::string::npos) << out;
}

TEST_F(CliTest, RunPrintsAnswers) {
  int code = 0;
  std::string out =
      RunCommand(Exdlc() + " run " + program_path_ + " --optimize", &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("n0"), std::string::npos);
  EXPECT_NE(out.find("n1"), std::string::npos);
  EXPECT_NE(out.find("2 answer(s)"), std::string::npos) << out;
}

TEST_F(CliTest, PlanShowsSteps) {
  int code = 0;
  std::string out = RunCommand(Exdlc() + " plan " + program_path_, &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("step 0:"), std::string::npos);
  EXPECT_NE(out.find("emit"), std::string::npos);
}

TEST_F(CliTest, ExplainShowsDerivation) {
  int code = 0;
  std::string out = RunCommand(
      Exdlc() + " explain " + program_path_ + " \"a(n0, n2)\"", &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("[input fact]"), std::string::npos) << out;
}

TEST_F(CliTest, CheckDetectsEquivalence) {
  std::string copy = ::testing::TempDir() + "/cli_test_copy.dl";
  {
    std::ofstream out(copy);
    out << "query(X) :- a(X, Y).\n"
           "a(X, Y) :- a(X, Z), p(Z, Y).\n"  // left-linear variant
           "a(X, Y) :- p(X, Y).\n"
           "?- query(X).\n";
  }
  int code = 0;
  std::string out =
      RunCommand(Exdlc() + " check " + program_path_ + " " + copy, &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("no difference"), std::string::npos) << out;
}

TEST_F(CliTest, CheckDetectsDifference) {
  std::string other = ::testing::TempDir() + "/cli_test_other.dl";
  {
    std::ofstream out(other);
    // Genuinely different: sources with an outgoing edge vs targets with
    // an incoming one. (A one-step forward variant would be equivalent:
    // "reaches something" == "has an outgoing edge" — the paper's point!)
    out << "query(X) :- p(Y, X).\n"
           "?- query(X).\n";
  }
  int code = 0;
  std::string out =
      RunCommand(Exdlc() + " check " + program_path_ + " " + other, &code);
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("NOT equivalent"), std::string::npos) << out;
}

TEST_F(CliTest, BadUsageExitsNonZero) {
  int code = 0;
  RunCommand(Exdlc() + " frobnicate", &code);
  EXPECT_NE(code, 0);
  RunCommand(Exdlc() + " run /nonexistent/file.dl", &code);
  EXPECT_NE(code, 0);
}

TEST_F(CliTest, GrammarCommand) {
  std::string chain = ::testing::TempDir() + "/cli_test_chain.dl";
  {
    std::ofstream out(chain);
    out << "tc(X,Y) :- e(X,Y).\n"
           "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
           "?- tc(X,Y).\n";
  }
  int code = 0;
  std::string out = RunCommand(Exdlc() + " grammar " + chain, &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("strongly regular: yes"), std::string::npos) << out;
  EXPECT_NE(out.find("monadic"), std::string::npos) << out;
}

}  // namespace
