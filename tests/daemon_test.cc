// exdld daemon tests: wire protocol encode/decode, admission policy,
// version negotiation, byte-identity of socket-delivered answers, RETRY_LATER
// backpressure, mid-query disconnect reclamation (serial and 4-thread),
// torn-frame handling, and in-process fault injection at the daemon.* sites.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "daemon/admission.h"
#include "daemon/client.h"
#include "daemon/frame_io.h"
#include "daemon/protocol.h"
#include "daemon/server.h"
#include "recovery/fault.h"
#include "service/answer_text.h"
#include "service/query_service.h"

namespace exdl::daemon {
namespace {

using ::exdl::QueryService;

// ---------------------------------------------------------------------------
// Protocol layer.

TEST(ProtocolTest, SubmitRoundTrip) {
  SubmitMsg in;
  in.name = "q.dl";
  in.source = "p(a).\n?- p(X).\n";
  in.deadline_ms = 1234;
  in.max_tuples = 99;
  in.max_bytes = 1 << 20;
  const std::string payload = Encode(in);
  ASSERT_FALSE(payload.empty());
  EXPECT_EQ(static_cast<MsgType>(payload[0]), MsgType::kSubmit);
  SubmitMsg out;
  ASSERT_TRUE(Decode(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.name, in.name);
  EXPECT_EQ(out.source, in.source);
  EXPECT_EQ(out.deadline_ms, in.deadline_ms);
  EXPECT_EQ(out.max_tuples, in.max_tuples);
  EXPECT_EQ(out.max_bytes, in.max_bytes);
}

TEST(ProtocolTest, ResultRoundTrip) {
  ResultMsg in;
  in.ticket = 7;
  in.status_code = 0;
  in.termination_code = static_cast<uint32_t>(StatusCode::kCancelled);
  in.termination_message = "cancelled";
  in.budget_kind = "cancelled";
  in.stats_text = "rounds=3";
  in.answer_count = 2;
  in.answers = "a\nb\n";
  in.cache_hit = 1;
  const std::string payload = Encode(in);
  ResultMsg out;
  ASSERT_TRUE(Decode(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.ticket, in.ticket);
  EXPECT_EQ(out.termination_code, in.termination_code);
  EXPECT_EQ(out.answers, in.answers);
  EXPECT_EQ(out.cache_hit, 1);
}

TEST(ProtocolTest, TruncatedBodyIsRejectedNotOverread) {
  HelloMsg hello;
  hello.tenant = "alice";
  const std::string payload = Encode(hello);
  // Every proper prefix of the body must decode to an error, never crash.
  for (size_t len = 0; len + 1 < payload.size(); ++len) {
    HelloMsg out;
    Status status = Decode(std::string_view(payload).substr(1, len), &out);
    EXPECT_FALSE(status.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  }
}

TEST(ProtocolTest, TrailingGarbageIsRejected) {
  AwaitMsg in;
  in.ticket = 3;
  std::string body = Encode(in).substr(1);
  body += "x";
  AwaitMsg out;
  EXPECT_EQ(Decode(body, &out).code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, StringLengthLyingPastBufferIsRejected) {
  // A string header claiming 2^31 bytes in a 16-byte body.
  WireWriter w;
  w.U32(0x7fffffffu);
  w.Str("short");
  std::string body = w.Take();
  LoadFactsMsg out;
  EXPECT_FALSE(Decode(body, &out).ok());
}

TEST(ProtocolTest, UnknownStatusCodeMapsToInternal) {
  Status status = StatusFromWire(10000, "from the future");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Admission policy.

TEST(AdmissionTest, ParsePolicyWithDefaultAndTenant) {
  Result<AdmissionPolicy> policy = AdmissionPolicy::Parse(
      "# comment\n"
      "*      deadline_ms=10000 max_tuples=500 max_inflight=2\n"
      "alice  deadline_ms=60000 max_inflight=4\n");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  EXPECT_EQ(policy->QuotaFor("bob").deadline_ms, 10000u);
  EXPECT_EQ(policy->QuotaFor("bob").max_tuples, 500u);
  EXPECT_EQ(policy->QuotaFor("alice").deadline_ms, 60000u);
  EXPECT_EQ(policy->QuotaFor("alice").max_inflight, 4u);
  // A tenant line overrides wholesale: unset keys are unlimited.
  EXPECT_EQ(policy->QuotaFor("alice").max_tuples, 0u);
}

TEST(AdmissionTest, ParseRejectsMalformedPolicies) {
  EXPECT_FALSE(AdmissionPolicy::Parse("* max_wombats=3\n").ok());
  EXPECT_FALSE(AdmissionPolicy::Parse("* deadline_ms=abc\n").ok());
  EXPECT_FALSE(AdmissionPolicy::Parse("* deadline_ms=1\n* max_tuples=2\n").ok());
  EXPECT_FALSE(AdmissionPolicy::Parse("a max_tuples=1\na max_tuples=2\n").ok());
}

TEST(AdmissionTest, ClampTakesTheTighterLimit) {
  EXPECT_EQ(ClampLimit(0, 0), 0u);        // both unlimited
  EXPECT_EQ(ClampLimit(5, 0), 5u);        // no cap: client ask stands
  EXPECT_EQ(ClampLimit(0, 7), 7u);        // no ask: policy cap applies
  EXPECT_EQ(ClampLimit(5, 7), 5u);        // tighter ask wins
  EXPECT_EQ(ClampLimit(9, 7), 7u);        // cap clamps a looser ask
}

TEST(AdmissionTest, ControllerEnforcesTenantAndGlobalBounds) {
  AdmissionPolicy policy;
  policy.default_quota.max_inflight = 1;
  AdmissionController ctl(policy, 2);
  auto a1 = ctl.TryAdmit("a", 0, 0, 0);
  EXPECT_TRUE(a1.admitted);
  auto a2 = ctl.TryAdmit("a", 0, 0, 0);  // tenant cap
  EXPECT_FALSE(a2.admitted);
  EXPECT_GT(a2.retry_after_ms, 0u);
  auto b1 = ctl.TryAdmit("b", 0, 0, 0);
  EXPECT_TRUE(b1.admitted);
  auto c1 = ctl.TryAdmit("c", 0, 0, 0);  // global cap (2)
  EXPECT_FALSE(c1.admitted);
  ctl.Release("a");
  EXPECT_TRUE(ctl.TryAdmit("c", 0, 0, 0).admitted);
}

// ---------------------------------------------------------------------------
// Server fixture.

std::string ChainSource(int nodes) {
  std::ostringstream out;
  for (int i = 0; i + 1 < nodes; ++i) {
    out << "e(n" << i << ", n" << i + 1 << ").\n";
  }
  out << "tc(X, Y) :- e(X, Y).\n"
         "tc(X, Z) :- e(X, Y), tc(Y, Z).\n"
         "?- tc(X, Y).\n";
  return out.str();
}

constexpr char kTinyQuery[] =
    "e(a, b). e(b, c).\n"
    "tc(X, Y) :- e(X, Y).\n"
    "tc(X, Z) :- e(X, Y), tc(Y, Z).\n"
    "?- tc(a, X).\n";

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultPlan::Global().Disarm();
    socket_path_ = ::testing::TempDir() + "/exdld_test_" +
                   std::to_string(::getpid()) + "_" +
                   ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name() +
                   ".sock";
    ::unlink(socket_path_.c_str());
  }
  void TearDown() override {
    FaultPlan::Global().Disarm();
    ::unlink(socket_path_.c_str());
  }

  DaemonOptions Options(uint32_t workers = 1) {
    DaemonOptions options;
    options.socket_path = socket_path_;
    options.service.num_workers = workers;
    options.drain_timeout_ms = 200;
    return options;
  }

  Endpoint endpoint() const {
    Endpoint ep;
    ep.socket_path = socket_path_;
    return ep;
  }

  /// Polls until `pred` is true or ~5s elapsed.
  template <typename Pred>
  bool Eventually(Pred pred) {
    for (int i = 0; i < 500; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  }

  std::string socket_path_;
};

TEST_F(DaemonTest, HelloRejectsBadMagicAndBadVersion) {
  DaemonServer server(Options());
  ASSERT_TRUE(server.Start().ok());

  // Raw connection with a corrupt magic.
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof addr.sun_path - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  HelloMsg bad;
  bad.magic = 0xdeadbeef;
  ASSERT_TRUE(WriteFrame(fd, Encode(bad)).ok());
  Frame reply;
  bool clean_eof = false;
  // The server drops the connection without a reply.
  Status status = ReadFrame(fd, &reply, &clean_eof);
  EXPECT_FALSE(status.ok());
  ::close(fd);

  // A client from the future: versions the server cannot speak.
  fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  HelloMsg future;
  future.min_version = kProtocolVersionMax + 1;
  future.max_version = kProtocolVersionMax + 5;
  ASSERT_TRUE(WriteFrame(fd, Encode(future)).ok());
  ASSERT_TRUE(ReadFrame(fd, &reply, &clean_eof).ok());
  ASSERT_EQ(reply.type, MsgType::kError);
  ErrorMsg err;
  ASSERT_TRUE(Decode(reply.body, &err).ok());
  EXPECT_EQ(err.code, static_cast<uint32_t>(StatusCode::kFailedPrecondition));
  ::close(fd);

  // A well-formed client still negotiates.
  DaemonClient client;
  EXPECT_TRUE(client.Connect(endpoint(), "t").ok());
  EXPECT_EQ(client.negotiated_version(), kProtocolVersionMax);
  EXPECT_TRUE(Eventually([&] {
    return server.counters().connections_rejected >= 2;
  }));
  server.Stop();
}

TEST_F(DaemonTest, AnswersAreByteIdenticalToInProcessService) {
  DaemonServer server(Options());
  ASSERT_TRUE(server.Start().ok());

  std::vector<BatchQuery> queries = {{"a.dl", kTinyQuery},
                                     {"b.dl", ChainSource(20)}};
  BatchOptions options;
  Result<BatchResult> batch = RunBatch(endpoint(), queries, options);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->queries.size(), 2u);

  // The same submission sequence through an in-process QueryService.
  QueryService service;
  std::vector<QueryService::Ticket> tickets;
  for (const BatchQuery& q : queries) {
    QueryRequest request;
    request.source = q.source;
    request.name = q.name;
    tickets.push_back(service.Submit(std::move(request)));
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    QueryResponse response = service.Await(tickets[i]);
    ASSERT_TRUE(response.status.ok());
    const std::string expected =
        RenderAnswerRows(*service.ctx(), response.result.answers);
    EXPECT_EQ(batch->queries[i].result.answers, expected)
        << "socket answers differ for " << queries[i].name;
    EXPECT_EQ(batch->queries[i].result.answer_count,
              response.result.answers.size());
  }
  server.Stop();
}

TEST_F(DaemonTest, LoadFactsFeedsLaterQueries) {
  DaemonServer server(Options());
  ASSERT_TRUE(server.Start().ok());
  DaemonClient client;
  ASSERT_TRUE(client.Connect(endpoint(), "").ok());
  ASSERT_TRUE(client.LoadFacts("e(x, y). e(y, z).\n").ok());

  SubmitMsg submit;
  submit.name = "q";
  submit.source = "tc(X, Y) :- e(X, Y).\ntc(X, Z) :- e(X, Y), tc(Y, Z).\n"
                  "?- tc(x, X).\n";
  bool admitted = false;
  TicketMsg ticket;
  RetryLaterMsg retry;
  ErrorMsg error;
  ASSERT_TRUE(
      client.Submit(submit, &admitted, &ticket, &retry, &error).ok());
  ASSERT_TRUE(admitted);
  ResultMsg result;
  ASSERT_TRUE(client.Await(ticket.ticket, &result).ok());
  EXPECT_EQ(result.answer_count, 2u);
  EXPECT_EQ(result.answers, "y\nz\n");

  // Rules are rejected as facts.
  EXPECT_FALSE(client.LoadFacts("p(X) :- e(X, Y).\n").ok());
  server.Stop();
}

TEST_F(DaemonTest, AdmissionClampsBudgetAndReportsIt) {
  DaemonOptions options = Options();
  options.policy.default_quota.max_tuples = 50;
  options.policy.default_quota.deadline_ms = 60000;
  DaemonServer server(std::move(options));
  ASSERT_TRUE(server.Start().ok());
  DaemonClient client;
  ASSERT_TRUE(client.Connect(endpoint(), "").ok());

  SubmitMsg submit;
  submit.name = "big";
  submit.source = ChainSource(200);
  submit.max_tuples = 1000000;  // asks far beyond the policy
  submit.deadline_ms = 1000;    // tighter than the policy: honored
  bool admitted = false;
  TicketMsg ticket;
  RetryLaterMsg retry;
  ErrorMsg error;
  ASSERT_TRUE(
      client.Submit(submit, &admitted, &ticket, &retry, &error).ok());
  ASSERT_TRUE(admitted);
  EXPECT_EQ(ticket.max_tuples, 50u);      // clamped down
  EXPECT_EQ(ticket.deadline_ms, 1000u);   // client's tighter ask kept
  ResultMsg result;
  ASSERT_TRUE(client.Await(ticket.ticket, &result).ok());
  EXPECT_EQ(result.status_code, 0u);
  // The 200-node closure needs far more than 50 tuples: the budget trips.
  EXPECT_EQ(result.termination_code,
            static_cast<uint32_t>(StatusCode::kResourceExhausted));
  EXPECT_EQ(result.budget_kind, "tuples");
  server.Stop();
}

TEST_F(DaemonTest, BackpressureRetryLaterAndRecovery) {
  DaemonOptions options = Options(2);
  options.policy.default_quota.max_inflight = 1;
  DaemonServer server(std::move(options));
  ASSERT_TRUE(server.Start().ok());

  DaemonClient slow;
  ASSERT_TRUE(slow.Connect(endpoint(), "t").ok());
  SubmitMsg long_submit;
  long_submit.name = "slow";
  long_submit.source = ChainSource(1500);
  bool admitted = false;
  TicketMsg slow_ticket;
  RetryLaterMsg retry;
  ErrorMsg error;
  ASSERT_TRUE(slow.Submit(long_submit, &admitted, &slow_ticket, &retry,
                          &error).ok());
  ASSERT_TRUE(admitted);

  // Same tenant, second in-flight query: RETRY_LATER with a backoff hint.
  DaemonClient second;
  ASSERT_TRUE(second.Connect(endpoint(), "t").ok());
  SubmitMsg tiny;
  tiny.name = "tiny";
  tiny.source = kTinyQuery;
  admitted = false;
  TicketMsg tiny_ticket;
  ASSERT_TRUE(
      second.Submit(tiny, &admitted, &tiny_ticket, &retry, &error).ok());
  EXPECT_FALSE(admitted);
  EXPECT_GT(retry.backoff_ms, 0u);
  EXPECT_FALSE(retry.reason.empty());
  EXPECT_GE(server.counters().backpressure_events, 1u);

  // Cancel the hog; its slot frees and the second submission is admitted.
  ASSERT_TRUE(slow.Cancel(slow_ticket.ticket).ok());
  ResultMsg slow_result;
  ASSERT_TRUE(slow.Await(slow_ticket.ticket, &slow_result).ok());
  EXPECT_EQ(slow_result.termination_code,
            static_cast<uint32_t>(StatusCode::kCancelled));
  ASSERT_TRUE(Eventually([&] {
    bool ok = false;
    TicketMsg t;
    RetryLaterMsg r;
    ErrorMsg e;
    if (!second.Submit(tiny, &ok, &t, &r, &e).ok()) return false;
    if (ok) tiny_ticket = t;
    return ok;
  }));
  ResultMsg tiny_result;
  ASSERT_TRUE(second.Await(tiny_ticket.ticket, &tiny_result).ok());
  EXPECT_EQ(tiny_result.answers, "b\nc\n");
  server.Stop();
}

TEST_F(DaemonTest, MidQueryDisconnectCancelsAndReclaims) {
  DaemonServer server(Options());
  ASSERT_TRUE(server.Start().ok());

  {
    DaemonClient doomed;
    ASSERT_TRUE(doomed.Connect(endpoint(), "t").ok());
    SubmitMsg submit;
    submit.name = "abandoned";
    submit.source = ChainSource(1500);
    bool admitted = false;
    TicketMsg ticket;
    RetryLaterMsg retry;
    ErrorMsg error;
    ASSERT_TRUE(
        doomed.Submit(submit, &admitted, &ticket, &retry, &error).ok());
    ASSERT_TRUE(admitted);
    // Drop the socket mid-query (destructor closes the fd).
  }

  // The server must cancel the abandoned query via its CancellationToken
  // and release the admission slot.
  EXPECT_TRUE(Eventually([&] {
    return server.counters().cancelled_on_disconnect >= 1;
  }));
  EXPECT_TRUE(Eventually([&] { return server.counters().queue_depth == 0; }));

  // And the next client gets normal service.
  std::vector<BatchQuery> queries = {{"next.dl", kTinyQuery}};
  Result<BatchResult> batch = RunBatch(endpoint(), queries, BatchOptions());
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->queries[0].result.answers, "b\nc\n");
  server.Stop();
}

TEST_F(DaemonTest, DisconnectDuringAwaitCancelsToo) {
  DaemonServer server(Options());
  ASSERT_TRUE(server.Start().ok());
  {
    // Raw connection so AWAIT can be sent without blocking on its reply.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path_.c_str(),
                 sizeof addr.sun_path - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    HelloMsg hello;
    ASSERT_TRUE(WriteFrame(fd, Encode(hello)).ok());
    Frame reply;
    bool clean_eof = false;
    ASSERT_TRUE(ReadFrame(fd, &reply, &clean_eof).ok());
    ASSERT_EQ(reply.type, MsgType::kHelloAck);
    SubmitMsg submit;
    submit.name = "awaited-then-dropped";
    submit.source = ChainSource(1500);
    ASSERT_TRUE(WriteFrame(fd, Encode(submit)).ok());
    ASSERT_TRUE(ReadFrame(fd, &reply, &clean_eof).ok());
    ASSERT_EQ(reply.type, MsgType::kTicket);
    TicketMsg ticket;
    ASSERT_TRUE(Decode(reply.body, &ticket).ok());
    // Send AWAIT — the server is now blocked producing the result — and
    // hang up without reading the reply.
    AwaitMsg await;
    await.ticket = ticket.ticket;
    ASSERT_TRUE(WriteFrame(fd, Encode(await)).ok());
    ::close(fd);
  }
  EXPECT_TRUE(Eventually([&] {
    return server.counters().cancelled_on_disconnect >= 1;
  }));
  server.Stop();
}

TEST_F(DaemonTest, FourThreadDisconnectStorm) {
  DaemonServer server(Options(4));
  ASSERT_TRUE(server.Start().ok());

  // Four clients submit long queries concurrently and vanish.
  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([this, i] {
      DaemonClient doomed;
      if (!doomed.Connect(endpoint(), "t" + std::to_string(i)).ok()) return;
      SubmitMsg submit;
      submit.name = "storm" + std::to_string(i);
      submit.source = ChainSource(1200 + i);
      bool admitted = false;
      TicketMsg ticket;
      RetryLaterMsg retry;
      ErrorMsg error;
      (void)doomed.Submit(submit, &admitted, &ticket, &retry, &error);
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_TRUE(Eventually([&] {
    return server.counters().cancelled_on_disconnect >= 4;
  })) << "cancelled_on_disconnect="
      << server.counters().cancelled_on_disconnect;
  EXPECT_TRUE(Eventually([&] { return server.counters().queue_depth == 0; }));

  // Server still healthy afterwards.
  std::vector<BatchQuery> queries = {{"next.dl", kTinyQuery}};
  Result<BatchResult> batch = RunBatch(endpoint(), queries, BatchOptions());
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->queries[0].result.answers, "b\nc\n");
  server.Stop();
}

TEST_F(DaemonTest, TornFrameMidPrefixLeavesServerServing) {
  DaemonServer server(Options());
  ASSERT_TRUE(server.Start().ok());

  // Handshake, then send half a length prefix and hang up.
  DaemonClient torn;
  ASSERT_TRUE(torn.Connect(endpoint(), "t").ok());
  {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path_.c_str(),
                 sizeof addr.sun_path - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    HelloMsg hello;
    ASSERT_TRUE(WriteFrame(fd, Encode(hello)).ok());
    Frame ack;
    bool clean_eof = false;
    ASSERT_TRUE(ReadFrame(fd, &ack, &clean_eof).ok());
    const char half[2] = {0x10, 0x00};  // 2 of 4 length-prefix bytes
    ASSERT_EQ(::send(fd, half, sizeof half, MSG_NOSIGNAL), 2);
    ::close(fd);
  }
  // Also: a full prefix promising a body that never arrives.
  {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path_.c_str(),
                 sizeof addr.sun_path - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    HelloMsg hello;
    ASSERT_TRUE(WriteFrame(fd, Encode(hello)).ok());
    Frame ack;
    bool clean_eof = false;
    ASSERT_TRUE(ReadFrame(fd, &ack, &clean_eof).ok());
    const char prefix[4] = {0x40, 0x00, 0x00, 0x00};  // promises 64 bytes
    ASSERT_EQ(::send(fd, prefix, sizeof prefix, MSG_NOSIGNAL), 4);
    ::close(fd);
  }

  // The negotiated-but-quiet client and a fresh batch both still work.
  std::string json;
  EXPECT_TRUE(torn.Stats(&json).ok());
  EXPECT_NE(json.find("\"daemon\""), std::string::npos);
  std::vector<BatchQuery> queries = {{"ok.dl", kTinyQuery}};
  Result<BatchResult> batch = RunBatch(endpoint(), queries, BatchOptions());
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  server.Stop();
}

TEST_F(DaemonTest, OversizedFramePrefixIsRejectedWithoutAllocation) {
  DaemonServer server(Options());
  ASSERT_TRUE(server.Start().ok());
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof addr.sun_path - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  // Length prefix claiming 4 GiB - 1. The server must drop the connection,
  // not allocate.
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(fd, prefix, sizeof prefix, MSG_NOSIGNAL), 4);
  char byte;
  // Server closes on us (read returns 0) rather than hanging.
  struct timeval tv = {5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
  server.Stop();
}

TEST_F(DaemonTest, InjectedReadFaultTearsOneConnectionOnly) {
  DaemonServer server(Options());
  ASSERT_TRUE(server.Start().ok());
  // Hit 1 is the victim's HELLO read.
  ASSERT_TRUE(FaultPlan::Global().Arm("daemon.read:1").ok());
  DaemonClient victim;
  Status status = victim.Connect(endpoint(), "t");
  EXPECT_FALSE(status.ok());
  FaultPlan::Global().Disarm();
  // The server took it as one torn connection; the next client is served.
  std::vector<BatchQuery> queries = {{"ok.dl", kTinyQuery}};
  Result<BatchResult> batch = RunBatch(endpoint(), queries, BatchOptions());
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->queries[0].result.answers, "b\nc\n");
  server.Stop();
}

TEST_F(DaemonTest, InjectedWriteFaultLeavesHalfFrameClientRecovers) {
  DaemonServer server(Options());
  ASSERT_TRUE(server.Start().ok());
  // Hit 2 = the HELLO_ACK of the second connection: the injected failure
  // emits a deliberately half-written frame. The batch client must treat
  // it as torn and recover by reconnecting.
  ASSERT_TRUE(FaultPlan::Global().Arm("daemon.write:2").ok());
  std::vector<BatchQuery> queries = {{"ok.dl", kTinyQuery}};
  BatchOptions options;
  options.retry_base_ms = 5;
  Result<BatchResult> batch = RunBatch(endpoint(), queries, options);
  FaultPlan::Global().Disarm();
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->queries[0].result.answers, "b\nc\n");
  server.Stop();
}

TEST_F(DaemonTest, InjectedDispatchFaultIsRetriedByBatchClient) {
  DaemonServer server(Options());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(FaultPlan::Global().Arm("daemon.dispatch:1").ok());
  std::vector<BatchQuery> queries = {{"ok.dl", kTinyQuery}};
  BatchOptions options;
  options.retry_base_ms = 5;
  Result<BatchResult> batch = RunBatch(endpoint(), queries, options);
  FaultPlan::Global().Disarm();
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->queries[0].result.answers, "b\nc\n");
  EXPECT_GE(batch->reconnects, 1u);
  server.Stop();
}

TEST_F(DaemonTest, InjectedAcceptFaultDropsConnectionAtBirth) {
  DaemonServer server(Options());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(FaultPlan::Global().Arm("daemon.accept:1").ok());
  std::vector<BatchQuery> queries = {{"ok.dl", kTinyQuery}};
  BatchOptions options;
  options.retry_base_ms = 5;
  Result<BatchResult> batch = RunBatch(endpoint(), queries, options);
  FaultPlan::Global().Disarm();
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_GE(server.counters().connections_rejected, 1u);
  server.Stop();
}

TEST_F(DaemonTest, StaleSocketIsRecoveredLiveDaemonIsNot) {
  // A dead daemon's leftover: bind the path and close the fd without
  // unlinking, exactly what SIGKILL leaves behind.
  int stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(stale, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof addr.sun_path - 1);
  ASSERT_EQ(::bind(stale, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  ::close(stale);

  DaemonServer server(Options());
  ASSERT_TRUE(server.Start().ok()) << "stale socket not recovered";
  // A second daemon on the same path must refuse: the first is live.
  DaemonServer second(Options());
  Status status = second.Start();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  server.Stop();
}

TEST_F(DaemonTest, DrainRejectsNewSubmissionsAndConnections) {
  DaemonServer server(Options());
  ASSERT_TRUE(server.Start().ok());
  DaemonClient client;
  ASSERT_TRUE(client.Connect(endpoint(), "t").ok());
  server.RequestDrain();
  SubmitMsg submit;
  submit.name = "late";
  submit.source = kTinyQuery;
  bool admitted = false;
  TicketMsg ticket;
  RetryLaterMsg retry;
  ErrorMsg error;
  Status status = client.Submit(submit, &admitted, &ticket, &retry, &error);
  // Either an explicit draining ERROR (kUnavailable) or the connection was
  // already torn down by the drain.
  if (status.ok()) {
    EXPECT_FALSE(admitted);
    EXPECT_EQ(error.code, static_cast<uint32_t>(StatusCode::kUnavailable));
  } else {
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  }
  server.Stop();
}

TEST_F(DaemonTest, MetricsJsonCarriesDaemonObject) {
  DaemonServer server(Options());
  ASSERT_TRUE(server.Start().ok());
  std::vector<BatchQuery> queries = {{"ok.dl", kTinyQuery}};
  ASSERT_TRUE(RunBatch(endpoint(), queries, BatchOptions()).ok());
  const std::string json = server.MetricsJson();
  EXPECT_NE(json.find("\"daemon\""), std::string::npos);
  EXPECT_NE(json.find("\"connections\""), std::string::npos);
  EXPECT_NE(json.find("\"backpressure_events\""), std::string::npos);
  EXPECT_NE(json.find("\"cancelled_on_disconnect\""), std::string::npos);
  EXPECT_NE(json.find("\"queue\""), std::string::npos);
  // No --data-dir: no durability object.
  EXPECT_EQ(json.find("\"durability\""), std::string::npos);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Durable EDB (DESIGN.md §15).

TEST_F(DaemonTest, DurableDataDirSurvivesRestart) {
  std::string data_dir = ::testing::TempDir() + "/exdld_data_XXXXXX";
  ASSERT_NE(mkdtemp(data_dir.data()), nullptr);
  DaemonOptions options = Options();
  options.durability.data_dir = data_dir;
  options.durability.compact_every = 2;

  const std::vector<BatchQuery> queries = {
      {"q.dl", "q(X) :- p(X).\n?- q(X).\n"}};
  std::string live;
  {
    DaemonServer server(options);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_NE(server.durable(), nullptr);
    DaemonClient client;
    ASSERT_TRUE(client.Connect(endpoint(), "").ok());
    for (int k = 1; k <= 5; ++k) {
      ASSERT_TRUE(
          client.LoadFacts("p(d" + std::to_string(k) + ").\n").ok());
    }
    Result<BatchResult> batch = RunBatch(endpoint(), queries, BatchOptions());
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    live = batch->queries[0].result.answers;
    ASSERT_FALSE(live.empty());
    // The first server never shuts down gracefully from the durable EDB's
    // point of view: Stop() does no compaction or flush — everything
    // needed already hit disk before each LOAD_FACTS was acknowledged.
    server.Stop();
  }

  DaemonOptions restarted_options = Options();
  restarted_options.durability.data_dir = data_dir;
  restarted_options.durability.compact_every = 2;
  DaemonServer restarted(restarted_options);
  ASSERT_TRUE(restarted.Start().ok());
  ASSERT_NE(restarted.durable(), nullptr);
  EXPECT_EQ(restarted.durable()->counters().records_replayed, 1u);
  EXPECT_EQ(restarted.durable()->counters().snapshot_generation, 4u);
  Result<BatchResult> batch = RunBatch(endpoint(), queries, BatchOptions());
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->queries[0].result.answers, live);
  const std::string json = restarted.MetricsJson();
  EXPECT_NE(json.find("\"durability\""), std::string::npos);
  EXPECT_NE(json.find("\"records_replayed\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery_seconds\""), std::string::npos);
  restarted.Stop();
}

TEST_F(DaemonTest, OversizedLoadFactsIsRejectedByQuota) {
  DaemonOptions options = Options();
  options.max_facts_bytes = 16;
  DaemonServer server(options);
  ASSERT_TRUE(server.Start().ok());
  DaemonClient client;
  ASSERT_TRUE(client.Connect(endpoint(), "").ok());
  ASSERT_TRUE(client.LoadFacts("p(a).\n").ok());
  Status rejected =
      client.LoadFacts("p(" + std::string(64, 'b') + ").\n");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  // The rejected load changed nothing: only p(a) is visible.
  std::vector<BatchQuery> queries = {{"q.dl", "q(X) :- p(X).\n?- q(X).\n"}};
  Result<BatchResult> batch = RunBatch(endpoint(), queries, BatchOptions());
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->queries[0].result.answers, "a\n");
  server.Stop();
}

}  // namespace
}  // namespace exdl::daemon
