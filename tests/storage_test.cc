#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/relation.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert(std::vector<Value>{1, 2}));
  EXPECT_TRUE(rel.Insert(std::vector<Value>{1, 3}));
  EXPECT_FALSE(rel.Insert(std::vector<Value>{1, 2}));
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.insert_attempts(), 3u);
}

TEST(RelationTest, RowsKeepInsertionOrder) {
  Relation rel(1);
  for (Value v : {5u, 3u, 9u}) rel.Insert(std::vector<Value>{v});
  EXPECT_EQ(rel.view().Scan(0)[0], 5u);
  EXPECT_EQ(rel.view().Scan(1)[0], 3u);
  EXPECT_EQ(rel.view().Scan(2)[0], 9u);
}

TEST(RelationTest, Contains) {
  Relation rel(2);
  rel.Insert(std::vector<Value>{1, 2});
  EXPECT_TRUE(rel.Contains(std::vector<Value>{1, 2}));
  EXPECT_FALSE(rel.Contains(std::vector<Value>{2, 1}));
}

TEST(RelationTest, IndexLookup) {
  Relation rel(2);
  rel.Insert(std::vector<Value>{1, 10});
  rel.Insert(std::vector<Value>{1, 11});
  rel.Insert(std::vector<Value>{2, 12});
  const Relation::Index& index = rel.GetIndex({0});
  const Relation::RowIdList* ids = index.Lookup({1});
  ASSERT_NE(ids, nullptr);
  EXPECT_EQ(ids->size(), 2u);
  EXPECT_EQ(index.Lookup({3}), nullptr);
}

TEST(RelationTest, IndexMaintainedAcrossInserts) {
  Relation rel(2);
  rel.Insert(std::vector<Value>{1, 10});
  const Relation::Index& index = rel.GetIndex({0});
  EXPECT_EQ(index.Lookup({1})->size(), 1u);
  rel.Insert(std::vector<Value>{1, 11});
  EXPECT_EQ(index.Lookup({1})->size(), 2u);  // same reference, updated
}

TEST(RelationTest, MultiColumnIndex) {
  Relation rel(3);
  rel.Insert(std::vector<Value>{1, 2, 3});
  rel.Insert(std::vector<Value>{1, 2, 4});
  rel.Insert(std::vector<Value>{1, 5, 3});
  const Relation::Index& index = rel.GetIndex({0, 2});
  EXPECT_EQ(index.Lookup({1, 3})->size(), 2u);
}

TEST(RelationTest, RowIdsInIndexAreAscending) {
  Relation rel(1);
  for (Value v = 0; v < 100; ++v) rel.Insert(std::vector<Value>{v % 10});
  const Relation::Index& index = rel.GetIndex({0});
  const Relation::RowIdList* ids = index.Lookup({3});
  ASSERT_NE(ids, nullptr);
  for (size_t i = 1; i < ids->size(); ++i) {
    EXPECT_LT((*ids)[i - 1], (*ids)[i]);
  }
}

TEST(RelationTest, ZeroArityRelation) {
  Relation rel(0);
  EXPECT_TRUE(rel.empty());
  EXPECT_TRUE(rel.Insert(std::vector<Value>{}));
  EXPECT_FALSE(rel.Insert(std::vector<Value>{}));
  EXPECT_EQ(rel.size(), 1u);  // the empty tuple, at most once
}

TEST(RelationTest, Clear) {
  Relation rel(1);
  rel.Insert(std::vector<Value>{1});
  rel.GetIndex({0});
  rel.Clear();
  EXPECT_TRUE(rel.empty());
  EXPECT_TRUE(rel.Insert(std::vector<Value>{1}));
}

// Key view over a strided backing array — exercises the heterogeneous
// (non-vector, non-span) lookup path the evaluator uses for register keys.
struct StridedKey {
  const Value* base;
  size_t stride;
  size_t n;
  size_t size() const { return n; }
  Value operator[](size_t i) const { return base[i * stride]; }
};

TEST(RelationTest, StressInsertsAcrossRehashBoundaries) {
  Relation rel(2);
  // Build an index early so it is maintained through many rehashes of
  // both the dedup table and the index's own slot array.
  const Relation::Index& index = rel.GetIndex({0});
  constexpr uint32_t kRows = 20000;
  for (uint32_t i = 0; i < kRows; ++i) {
    ASSERT_TRUE(rel.Insert(std::vector<Value>{i % 512, i}));
  }
  EXPECT_EQ(rel.size(), kRows);
  // Every tuple findable; near-misses absent.
  for (uint32_t i = 0; i < kRows; i += 97) {
    EXPECT_TRUE(rel.Contains(std::vector<Value>{i % 512, i}));
    EXPECT_FALSE(rel.Contains(std::vector<Value>{i % 512, i + kRows}));
  }
  // Re-inserting anything is a duplicate.
  for (uint32_t i = 0; i < kRows; i += 1031) {
    EXPECT_FALSE(rel.Insert(std::vector<Value>{i % 512, i}));
  }
  // Index groups match a brute-force scan.
  for (Value k : {0u, 17u, 511u}) {
    const Relation::RowIdList* ids = index.Lookup({k});
    ASSERT_NE(ids, nullptr);
    Relation::RowIdList expected;
    for (uint32_t r = 0; r < rel.size(); ++r) {
      if (rel.view().Scan(r)[0] == k) expected.push_back(r);
    }
    EXPECT_EQ(*ids, expected);
  }
  EXPECT_EQ(index.Lookup({512}), nullptr);
}

TEST(RelationTest, IndexConsistentAfterClear) {
  Relation rel(2);
  rel.Insert(std::vector<Value>{1, 2});
  rel.GetIndex({1});
  rel.Clear();
  EXPECT_FALSE(rel.Contains(std::vector<Value>{1, 2}));
  rel.Insert(std::vector<Value>{3, 4});
  const Relation::Index& index = rel.GetIndex({1});
  EXPECT_EQ(index.Lookup({2}), nullptr);  // old tuples gone
  ASSERT_NE(index.Lookup({4}), nullptr);
  EXPECT_EQ(index.Lookup({4})->size(), 1u);
}

TEST(RelationTest, HeterogeneousLookupAgreesWithVectorKeys) {
  Relation rel(3);
  for (Value a = 0; a < 20; ++a) {
    for (Value b = 0; b < 20; ++b) {
      rel.Insert(std::vector<Value>{a, b, a + b});
    }
  }
  const Relation::Index& index = rel.GetIndex({0, 2});
  // Backing array laid out with stride 2 so the view is genuinely not a
  // contiguous span.
  for (Value a = 0; a < 25; ++a) {
    Value strided[4] = {a, 999, static_cast<Value>(a + 3), 999};
    StridedKey view{strided, 2, 2};
    const Relation::RowIdList* via_view = index.LookupKey(view);
    const Relation::RowIdList* via_vec =
        index.Lookup(std::vector<Value>{a, a + 3});
    EXPECT_EQ(via_view, via_vec);

    Value full[6] = {a, 999, 3, 999, static_cast<Value>(a + 3), 999};
    StridedKey row_view{full, 2, 3};
    EXPECT_EQ(rel.ContainsKey(row_view),
              rel.Contains(std::vector<Value>{a, 3, a + 3}));
  }
}

TEST(RelationTest, ReserveKeepsContentsAndDedup) {
  Relation rel(2);
  for (Value v = 0; v < 100; ++v) rel.Insert(std::vector<Value>{v, v + 1});
  rel.Reserve(50000);
  EXPECT_EQ(rel.size(), 100u);
  for (Value v = 0; v < 100; ++v) {
    EXPECT_TRUE(rel.Contains(std::vector<Value>{v, v + 1}));
    EXPECT_FALSE(rel.Insert(std::vector<Value>{v, v + 1}));
  }
  EXPECT_TRUE(rel.Insert(std::vector<Value>{200, 201}));
}

TEST(RelationTest, SelfAliasedRowInsertIsSafe) {
  Relation rel(2);
  for (Value v = 0; v < 300; ++v) rel.Insert(std::vector<Value>{v, v});
  // A span into the relation's own arena is always a duplicate here; the
  // probe must not be confused by potential arena growth.
  for (size_t r = 0; r < rel.size(); r += 7) {
    EXPECT_FALSE(rel.Insert(rel.view().Scan(r)));
  }
  EXPECT_EQ(rel.size(), 300u);
}

TEST(DatabaseTest, GetOrCreateIsStable) {
  Database db;
  Relation& a = db.GetOrCreate(7, 2);
  a.Insert(std::vector<Value>{1, 2});
  Relation& b = db.GetOrCreate(7, 2);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(db.Count(7), 1u);
}

TEST(DatabaseTest, FindAbsentReturnsNull) {
  Database db;
  EXPECT_EQ(db.Find(3), nullptr);
  EXPECT_EQ(db.Count(3), 0u);
}

TEST(DatabaseTest, AddFactRequiresGround) {
  auto parsed = testing::MustParse("");
  Context& ctx = *parsed.ctx;
  PredId p = ctx.InternPredicate("p", 1);
  Atom open(p, {Term::Var(ctx.InternSymbol("X"))});
  EXPECT_FALSE(Database().AddFact(open).ok());
  Database db;
  Atom ground(p, {Term::Const(ctx.InternSymbol("c"))});
  EXPECT_TRUE(db.AddFact(ground).ok());
  EXPECT_EQ(db.Count(p), 1u);
}

TEST(DatabaseTest, CloneIsDeep) {
  Database db;
  db.AddTuple(1, std::vector<Value>{4});
  Database copy = db.Clone();
  copy.AddTuple(1, std::vector<Value>{5});
  EXPECT_EQ(db.Count(1), 1u);
  EXPECT_EQ(copy.Count(1), 2u);
}

TEST(DatabaseTest, FactsOfRoundTrip) {
  auto parsed = testing::MustParse("p(a, b).\np(b, c).\n");
  PredId p = *parsed.ctx->FindPredicate(*parsed.ctx->FindSymbol("p"), 2,
                                        Adornment());
  std::vector<Atom> facts = parsed.edb.FactsOf(p);
  EXPECT_EQ(facts.size(), 2u);
  for (const Atom& f : facts) EXPECT_TRUE(f.IsGround());
}

TEST(DatabaseTest, TotalTuples) {
  Database db;
  db.AddTuple(1, std::vector<Value>{1});
  db.AddTuple(2, std::vector<Value>{1, 2});
  db.AddTuple(2, std::vector<Value>{1, 2});  // dup
  EXPECT_EQ(db.TotalTuples(), 2u);
}

}  // namespace
}  // namespace exdl
