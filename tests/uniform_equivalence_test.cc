#include <gtest/gtest.h>

#include "equiv/freeze.h"
#include "equiv/random_check.h"
#include "equiv/uniform_equivalence.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

using ::exdl::testing::MustParse;
using ::exdl::testing::MustParseWith;

TEST(FreezeTest, VariablesBecomeFreshConstants) {
  auto parsed = MustParse("p(X, Y) :- q(X, Z), r(Z, Y).\n");
  FrozenRule frozen =
      FreezeRule(parsed.program.rules()[0], parsed.ctx.get());
  EXPECT_TRUE(frozen.head.IsGround());
  EXPECT_EQ(frozen.var_to_const.size(), 3u);
  EXPECT_EQ(frozen.body_facts.TotalTuples(), 2u);
  // Shared variable Z freezes to the same constant in both body facts.
  PredId q = parsed.program.rules()[0].body[0].pred;
  PredId r = parsed.program.rules()[0].body[1].pred;
  EXPECT_EQ(frozen.body_facts.FactsOf(q)[0].args[1],
            frozen.body_facts.FactsOf(r)[0].args[0]);
}

TEST(FreezeTest, ConstantsSurviveFreezing) {
  auto parsed = MustParse("p(X) :- q(X, c7).\n");
  FrozenRule frozen =
      FreezeRule(parsed.program.rules()[0], parsed.ctx.get());
  PredId q = parsed.program.rules()[0].body[0].pred;
  Atom fact = frozen.body_facts.FactsOf(q)[0];
  EXPECT_EQ(parsed.ctx->SymbolName(fact.args[1].id()), "c7");
}

TEST(FreezeTest, DistinctFreezesUseDistinctConstants) {
  auto parsed = MustParse("p(X) :- q(X).\n");
  FrozenRule f1 = FreezeRule(parsed.program.rules()[0], parsed.ctx.get());
  FrozenRule f2 = FreezeRule(parsed.program.rules()[0], parsed.ctx.get());
  EXPECT_NE(f1.head, f2.head);
}

TEST(SagivTest, PaperExample4RecursiveRuleDeletable) {
  // a^nd(X) :- p(X,Z), a^nd(Z).  is redundant given  a^nd(X) :- p(X,Z).
  auto parsed = MustParse(
      "a(X) :- p(X, Z), a(Z).\n"
      "a(X) :- p(X, Z).\n"
      "?- a(X).\n");
  Result<bool> deletable =
      DeletableUnderUniformEquivalence(parsed.program, 0);
  ASSERT_TRUE(deletable.ok());
  EXPECT_TRUE(*deletable);
  // The exit rule is not deletable.
  Result<bool> exit_deletable =
      DeletableUnderUniformEquivalence(parsed.program, 1);
  ASSERT_TRUE(exit_deletable.ok());
  EXPECT_FALSE(*exit_deletable);
}

TEST(SagivTest, Example3aVariantNotDeletable) {
  // With the exit rule over a *different* base predicate p1, the
  // recursive rule is no longer redundant (paper's Example 3a remark).
  auto parsed = MustParse(
      "a(X) :- p(X, Z), a(Z).\n"
      "a(X) :- p1(X, Z).\n"
      "?- a(X).\n");
  Result<bool> deletable =
      DeletableUnderUniformEquivalence(parsed.program, 0);
  ASSERT_TRUE(deletable.ok());
  EXPECT_FALSE(*deletable);
}

TEST(SagivTest, PaperExample5NothingDeletable) {
  // Example 5: no rule of the adorned program can be deleted under
  // uniform equivalence.
  auto parsed = MustParse(
      "and(X) :- ann(X, Z), p(Z, Y).\n"
      "and(X) :- p(X, Y).\n"
      "ann(X, Y) :- ann(X, Z), p(Z, Y).\n"
      "ann(X, Y) :- p(X, Y).\n"
      "?- and(X).\n");
  for (size_t r = 0; r < parsed.program.rules().size(); ++r) {
    Result<bool> deletable =
        DeletableUnderUniformEquivalence(parsed.program, r);
    ASSERT_TRUE(deletable.ok());
    EXPECT_FALSE(*deletable) << "rule " << r;
  }
}

TEST(UniformContainmentTest, SubsetOfRulesIsContained) {
  auto parsed = MustParse(
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  Program exit_only(parsed.program.context());
  exit_only.AddRule(parsed.program.rules()[0]);
  exit_only.SetQuery(*parsed.program.query());
  Result<bool> contained = UniformlyContains(parsed.program, exit_only);
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(*contained);  // full program derives everything exit_only does
  Result<bool> reverse = UniformlyContains(exit_only, parsed.program);
  ASSERT_TRUE(reverse.ok());
  EXPECT_FALSE(*reverse);
}

TEST(UniformEquivalenceTest, SyntacticVariantsAreEquivalent) {
  auto parsed = MustParse(
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  // Same program with renamed variables and reordered body.
  auto variant = MustParseWith(parsed.ctx,
      "tc(A,B) :- e(A,B).\n"
      "tc(A,B) :- tc(C,B), e(A,C).\n"
      "?- tc(A,B).\n");
  Result<bool> eq = UniformlyEquivalent(parsed.program, variant.program);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(UniformEquivalenceTest, LeftVsRightRecursionNotUniformlyEquivalent) {
  // The classic separation (Sagiv 87): left- and right-linear transitive
  // closure are query equivalent but NOT uniformly equivalent — with
  // tc-facts allowed in the input, {e(x,z), tc(z,y)} lets the right-linear
  // program derive tc(x,y) while the left-linear one cannot.
  auto parsed = MustParse(
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  auto left = MustParseWith(parsed.ctx,
      "tc2(X,Y) :- e(X,Y).\n"
      "tc2(X,Y) :- tc2(X,Z), e(Z,Y).\n"
      "?- tc2(X,Y).\n");
  // Different predicate names make them trivially inequivalent uniformly;
  // compare structurally by reusing the same name is impossible in one
  // context, so check the one-rule containment directly instead:
  // right-linear recursive rule's frozen instance is not re-derived by the
  // left-linear program.
  Program left_named(parsed.ctx);
  // Build left-linear rules over the *same* predicate tc.
  {
    auto same = MustParseWith(parsed.ctx,
        "tc(X,Y) :- e(X,Y).\n"
        "tc(X,Y) :- tc(X,Z), e(Z,Y).\n"
        "?- tc(X,Y).\n");
    left_named = same.program.Clone();
  }
  Result<bool> eq = UniformlyEquivalent(parsed.program, left_named);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(*eq);
  // Yet they are query equivalent over EDB-only instances.
  Result<RandomCheckReport> report = CheckQueryEquivalent(
      parsed.program, left_named,
      {parsed.program.rules()[0].body[0].pred});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->equivalent) << report->counterexample;
}

TEST(UniformEquivalenceTest, DifferentProgramsNotEquivalent) {
  auto parsed = MustParse(
      "p(X) :- e(X).\n"
      "?- p(X).\n");
  auto other = MustParseWith(parsed.ctx,
      "p(X) :- f(X).\n"
      "?- p(X).\n");
  Result<bool> eq = UniformlyEquivalent(parsed.program, other.program);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(*eq);
}

TEST(SagivTest, RuleIndexOutOfRange) {
  auto parsed = MustParse("p(X) :- e(X).\n?- p(X).\n");
  EXPECT_FALSE(DeletableUnderUniformEquivalence(parsed.program, 5).ok());
}

TEST(RandomCheckTest, EquivalentProgramsPass) {
  auto parsed = MustParse(
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  auto left = MustParseWith(parsed.ctx,
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- tc(X,Z), e(Z,Y).\n"
      "?- tc(X,Y).\n");
  Result<RandomCheckReport> report =
      CheckQueryEquivalentOnEdb(parsed.program, left.program);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->equivalent) << report->counterexample;
  EXPECT_GT(report->trials_run, 0);
}

TEST(RandomCheckTest, InequivalentProgramsCaught) {
  auto parsed = MustParse(
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  auto exit_only = MustParseWith(parsed.ctx,
      "tc2(X,Y) :- e(X,Y).\n"
      "?- tc2(X,Y).\n");
  Result<RandomCheckReport> report =
      CheckQueryEquivalentOnEdb(parsed.program, exit_only.program);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->equivalent);
  EXPECT_FALSE(report->counterexample.empty());
}

TEST(RandomCheckTest, RequiresSharedContext) {
  auto a = MustParse("p(X) :- e(X).\n?- p(X).\n");
  auto b = MustParse("p(X) :- e(X).\n?- p(X).\n");
  EXPECT_FALSE(CheckQueryEquivalentOnEdb(a.program, b.program).ok());
}

TEST(RandomCheckTest, PopulateDerivedExercisesUniformInputs) {
  auto parsed = MustParse(
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).\n");
  // Deleting the recursive rule is UE-sound, so even with tc facts in the
  // input the programs agree... no: deleting changes derivations from
  // input tc facts. Keep both rules; compare the program to itself.
  RandomCheckOptions options;
  options.populate_derived = true;
  Result<RandomCheckReport> report = CheckQueryEquivalentOnEdb(
      parsed.program, parsed.program, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->equivalent);
}

}  // namespace
}  // namespace exdl
