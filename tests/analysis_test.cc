#include <gtest/gtest.h>

#include "analysis/connectivity.h"
#include "analysis/dependency_graph.h"
#include "analysis/reachability.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

PredId FindPred(const testing::ParsedProgram& p, const std::string& name,
                uint32_t arity) {
  return *p.ctx->FindPredicate(*p.ctx->FindSymbol(name), arity, Adornment());
}

TEST(DependencyGraphTest, SelfRecursionDetected) {
  auto parsed = testing::MustParse(
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X,Y).");
  DependencyGraph dg(parsed.program);
  PredId tc = FindPred(parsed, "tc", 2);
  PredId e = FindPred(parsed, "e", 2);
  EXPECT_TRUE(dg.IsRecursive(tc));
  EXPECT_FALSE(dg.IsRecursive(e));
  EXPECT_TRUE(dg.HasRecursion());
}

TEST(DependencyGraphTest, MutualRecursionSameScc) {
  auto parsed = testing::MustParse(
      "even(X) :- zero(X).\n"
      "even(X) :- succ(Y,X), odd(Y).\n"
      "odd(X) :- succ(Y,X), even(Y).\n"
      "?- even(X).");
  DependencyGraph dg(parsed.program);
  PredId even = FindPred(parsed, "even", 1);
  PredId odd = FindPred(parsed, "odd", 1);
  EXPECT_TRUE(dg.SameScc(even, odd));
  EXPECT_TRUE(dg.IsRecursive(even));
  EXPECT_TRUE(dg.IsRecursive(odd));
}

TEST(DependencyGraphTest, NonRecursiveProgram) {
  auto parsed = testing::MustParse(
      "q(X) :- p(X).\n"
      "p(X) :- e(X).\n"
      "?- q(X).");
  DependencyGraph dg(parsed.program);
  EXPECT_FALSE(dg.HasRecursion());
  PredId q = FindPred(parsed, "q", 1);
  PredId p = FindPred(parsed, "p", 1);
  EXPECT_FALSE(dg.SameScc(q, p));
  // Reverse topological numbering: dependencies first.
  EXPECT_LT(dg.ComponentOf(p), dg.ComponentOf(q));
}

TEST(DependencyGraphTest, DependsOnDeduplicated) {
  auto parsed = testing::MustParse("p(X) :- e(X), e(X), f(X).\n?- p(X).");
  DependencyGraph dg(parsed.program);
  EXPECT_EQ(dg.DependsOn(FindPred(parsed, "p", 1)).size(), 2u);
}

TEST(ConnectivityTest, SingleComponentWithHead) {
  auto parsed = testing::MustParse("p(X,Y) :- q(X,Z), r(Z,Y).\n");
  BodyComponents parts =
      ComputeBodyComponents(*parsed.ctx, parsed.program.rules()[0]);
  EXPECT_EQ(parts.components.size(), 1u);
  EXPECT_EQ(parts.head_component, 0u);
}

TEST(ConnectivityTest, DisconnectedComponentDetected) {
  // c(W) shares no variable with the head component (paper Section 1.2).
  auto parsed = testing::MustParse("q(X,Y) :- a(X,Z), q2(Z,Y), c(W).\n");
  BodyComponents parts =
      ComputeBodyComponents(*parsed.ctx, parsed.program.rules()[0]);
  EXPECT_EQ(parts.components.size(), 2u);
  ASSERT_NE(parts.head_component, kNoHeadComponent);
  EXPECT_EQ(parts.components[parts.head_component].size(), 2u);
}

TEST(ConnectivityTest, HeadConnectsItsNeededVariables) {
  // Without the head, {a(X,..)} and {b(Y,..)} are disconnected; the head
  // p(X, Y) (all needed) connects them into one component.
  auto parsed = testing::MustParse("p(X,Y) :- a(X,U), b(Y,V).\n");
  BodyComponents parts =
      ComputeBodyComponents(*parsed.ctx, parsed.program.rules()[0]);
  EXPECT_EQ(parts.components.size(), 1u);
  EXPECT_EQ(parts.head_component, 0u);
}

TEST(ConnectivityTest, ExistentialHeadPositionDoesNotConnect) {
  // With adornment nd, the head's second position is existential, so
  // b(Y,V) forms its own component (Example 2's shape).
  auto parsed = testing::MustParse("p@nd(X,Y) :- a(X,U), b(Y,V).\n");
  BodyComponents parts =
      ComputeBodyComponents(*parsed.ctx, parsed.program.rules()[0]);
  EXPECT_EQ(parts.components.size(), 2u);
  ASSERT_NE(parts.head_component, kNoHeadComponent);
  EXPECT_EQ(parts.components[parts.head_component].size(), 1u);
}

TEST(ConnectivityTest, GroundAtomIsItsOwnComponent) {
  auto parsed = testing::MustParse("p(X) :- q(X), r(c).\n");
  BodyComponents parts =
      ComputeBodyComponents(*parsed.ctx, parsed.program.rules()[0]);
  EXPECT_EQ(parts.components.size(), 2u);
}

TEST(ConnectivityTest, BooleanHeadHasNoHeadComponent) {
  auto parsed = testing::MustParse("b :- q(X), r(X).\n");
  BodyComponents parts =
      ComputeBodyComponents(*parsed.ctx, parsed.program.rules()[0]);
  EXPECT_EQ(parts.components.size(), 1u);
  EXPECT_EQ(parts.head_component, kNoHeadComponent);
}

TEST(ReachabilityTest, FromQuery) {
  auto parsed = testing::MustParse(
      "q(X) :- p(X).\n"
      "p(X) :- e(X).\n"
      "orphan(X) :- f(X).\n"
      "?- q(X).");
  std::unordered_set<PredId> reach = ReachableFromQuery(parsed.program);
  EXPECT_TRUE(reach.count(FindPred(parsed, "p", 1)) > 0);
  EXPECT_TRUE(reach.count(FindPred(parsed, "e", 1)) > 0);
  EXPECT_EQ(reach.count(FindPred(parsed, "orphan", 1)), 0u);
}

TEST(ReachabilityTest, NoQueryMeansNothingReachable) {
  auto parsed = testing::MustParse("p(X) :- e(X).\n");
  EXPECT_TRUE(ReachableFromQuery(parsed.program).empty());
}

TEST(ReachabilityTest, UndefinedIdbRules) {
  auto parsed = testing::MustParse(
      "q(X) :- ghost(X).\n"
      "p(X) :- e(X).\n"
      "?- q(X).");
  // 'ghost' and 'e' are both underived; with only 'e' declared as input,
  // the rule using 'ghost' is flagged.
  std::unordered_set<PredId> inputs = {FindPred(parsed, "e", 1)};
  std::vector<size_t> flagged = RulesWithUndefinedIdb(parsed.program, inputs);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], 0u);
}

}  // namespace
}  // namespace exdl
