#include <gtest/gtest.h>

#include "ast/printer.h"
#include "testing/test_util.h"
#include "transform/magic.h"

namespace exdl {
namespace {

using ::exdl::testing::EvalAnswers;
using ::exdl::testing::MustParse;

const char kBoundTc[] =
    "e(n0, n1). e(n1, n2). e(n2, n3). e(n5, n6). e(n6, n7). e(n7, n8).\n"
    "tc(X,Y) :- e(X,Y).\n"
    "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
    "?- tc(n0, Y).\n";

TEST(MagicTest, BoundQueryAnswersPreserved) {
  auto parsed = MustParse(kBoundTc);
  Result<MagicResult> magic = MagicRewrite(parsed.program);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  Database seeded = WithSeed(parsed.edb, magic->seed_fact);
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            EvalAnswers(magic->program, seeded));
}

TEST(MagicTest, RestrictsComputationToRelevantFacts) {
  auto parsed = MustParse(kBoundTc);
  Result<MagicResult> magic = MagicRewrite(parsed.program);
  ASSERT_TRUE(magic.ok());
  Database seeded = WithSeed(parsed.edb, magic->seed_fact);
  EvalResult plain = testing::MustEval(parsed.program, parsed.edb);
  EvalResult rewritten = testing::MustEval(magic->program, seeded);
  // The n5..n8 island is unreachable from n0: the magic program must not
  // derive tc-facts for it. Plain bottom-up computes the full closure (12
  // tuples); magic computes only the closure of nodes reachable from n0
  // (6 tuples) plus magic-set bookkeeping.
  PredId tc_bf = magic->program.query()->pred;
  EXPECT_EQ(rewritten.db.Count(tc_bf), 6u);
  PredId tc = parsed.program.query()->pred;
  EXPECT_EQ(plain.db.Count(tc), 12u);
}

TEST(MagicTest, SeedFactMatchesQueryConstants) {
  auto parsed = MustParse(kBoundTc);
  Result<MagicResult> magic = MagicRewrite(parsed.program);
  ASSERT_TRUE(magic.ok());
  ASSERT_EQ(magic->seed_fact.args.size(), 1u);
  EXPECT_EQ(parsed.ctx->SymbolName(magic->seed_fact.args[0].id()), "n0");
}

TEST(MagicTest, FreeQueryStillCorrect) {
  auto parsed = MustParse(
      "e(n0, n1). e(n1, n2).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X, Y).\n");
  Result<MagicResult> magic = MagicRewrite(parsed.program);
  ASSERT_TRUE(magic.ok());
  Database seeded = WithSeed(parsed.edb, magic->seed_fact);
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            EvalAnswers(magic->program, seeded));
}

TEST(MagicTest, SecondArgumentBound) {
  auto parsed = MustParse(
      "e(n0, n1). e(n1, n2). e(n3, n2).\n"
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "?- tc(X, n2).\n");
  Result<MagicResult> magic = MagicRewrite(parsed.program);
  ASSERT_TRUE(magic.ok());
  Database seeded = WithSeed(parsed.edb, magic->seed_fact);
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            EvalAnswers(magic->program, seeded));
}

TEST(MagicTest, NonRecursiveProgram) {
  auto parsed = MustParse(
      "f(a1, b1). g(b1, c1). f(a2, b2). g(b2, c2).\n"
      "join(X, Z) :- f(X, Y), g(Y, Z).\n"
      "?- join(a1, Z).\n");
  Result<MagicResult> magic = MagicRewrite(parsed.program);
  ASSERT_TRUE(magic.ok());
  Database seeded = WithSeed(parsed.edb, magic->seed_fact);
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            (std::vector<std::string>{"c1"}));
  EXPECT_EQ(EvalAnswers(magic->program, seeded),
            (std::vector<std::string>{"c1"}));
}

TEST(MagicTest, MutualRecursion) {
  auto parsed = MustParse(
      "zero(n0). succ(n0, n1). succ(n1, n2). succ(n2, n3). succ(n3, n4).\n"
      "even(X) :- zero(X).\n"
      "even(X) :- succ(Y, X), odd(Y).\n"
      "odd(X) :- succ(Y, X), even(Y).\n"
      "?- even(n4).\n");
  Result<MagicResult> magic = MagicRewrite(parsed.program);
  ASSERT_TRUE(magic.ok());
  Database seeded = WithSeed(parsed.edb, magic->seed_fact);
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            EvalAnswers(magic->program, seeded));
}

TEST(MagicTest, RequiresDerivedQuery) {
  auto parsed = MustParse("?- e(n0, X).\n");
  EXPECT_FALSE(MagicRewrite(parsed.program).ok());
}

TEST(MagicTest, RequiresQuery) {
  auto parsed = MustParse("p(X) :- e(X).\n");
  EXPECT_FALSE(MagicRewrite(parsed.program).ok());
}

TEST(MagicTest, WorksOnAdornedProjectedPrograms) {
  // Magic after the existential pipeline (orthogonality, bench E8): the
  // program below is the projected Example 3 with a constant query.
  auto parsed = MustParse(
      "p(n0, n1). p(n1, n2). p(n3, n4).\n"
      "a@nd(X) :- p(X, Z), a@nd(Z).\n"
      "a@nd(X) :- p(X, Z).\n"
      "?- a@nd(n0).\n");
  Result<MagicResult> magic = MagicRewrite(parsed.program);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  Database seeded = WithSeed(parsed.edb, magic->seed_fact);
  EXPECT_EQ(EvalAnswers(parsed.program, parsed.edb),
            EvalAnswers(magic->program, seeded));
  EvalResult rewritten = testing::MustEval(magic->program, seeded);
  // n3/n4 are irrelevant to the bound query.
  bool derived_for_n3 = false;
  for (const auto& [pred, rel] : rewritten.db.relations()) {
    const PredicateInfo& info = parsed.ctx->predicate(pred);
    if (info.adornment.empty() ||
        parsed.ctx->SymbolName(info.name).find("a@") == std::string::npos) {
      continue;
    }
    for (size_t r = 0; r < rel.size(); ++r) {
      if (parsed.ctx->SymbolName(rel.view().Scan(r)[0]) == "n3") {
        derived_for_n3 = true;
      }
    }
  }
  EXPECT_FALSE(derived_for_n3);
}

}  // namespace
}  // namespace exdl

namespace exdl {
namespace {

TEST(SupplementaryMagicTest, BoundQueryAnswersPreserved) {
  auto parsed = testing::MustParse(kBoundTc);
  MagicOptions options;
  options.supplementary = true;
  Result<MagicResult> magic = MagicRewrite(parsed.program, options);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  Database seeded = WithSeed(parsed.edb, magic->seed_fact);
  EXPECT_EQ(testing::EvalAnswers(parsed.program, parsed.edb),
            testing::EvalAnswers(magic->program, seeded));
}

TEST(SupplementaryMagicTest, AgreesWithPlainMagic) {
  auto parsed = testing::MustParse(
      "zero(n0). succ(n0, n1). succ(n1, n2). succ(n2, n3). succ(n3, n4).\n"
      "even(X) :- zero(X).\n"
      "even(X) :- succ(Y, X), odd(Y).\n"
      "odd(X) :- succ(Y, X), even(Y).\n"
      "?- even(n4).\n");
  Result<MagicResult> plain = MagicRewrite(parsed.program);
  MagicOptions options;
  options.supplementary = true;
  Result<MagicResult> sup = MagicRewrite(parsed.program, options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(sup.ok());
  EXPECT_EQ(
      testing::EvalAnswers(plain->program,
                           WithSeed(parsed.edb, plain->seed_fact)),
      testing::EvalAnswers(sup->program, WithSeed(parsed.edb, sup->seed_fact)));
}

TEST(SupplementaryMagicTest, IntroducesSupPredicates) {
  auto parsed = testing::MustParse(kBoundTc);
  MagicOptions options;
  options.supplementary = true;
  Result<MagicResult> magic = MagicRewrite(parsed.program, options);
  ASSERT_TRUE(magic.ok());
  bool has_sup = false;
  for (const Rule& r : magic->program.rules()) {
    const std::string name = parsed.ctx->PredicateDisplayName(r.head.pred);
    if (name.rfind("sup_", 0) == 0) has_sup = true;
  }
  EXPECT_TRUE(has_sup);
}

TEST(SupplementaryMagicTest, SharedPrefixComputedOnce) {
  // Rule with two derived literals: plain magic re-joins the prefix for
  // the second magic rule; supplementary reuses sup_1.
  auto parsed = testing::MustParse(
      "base(n0, n1). base(n1, n2). base(n2, n3).\n"
      "d1(X, Y) :- base(X, Y).\n"
      "d2(X, Y) :- base(X, Y).\n"
      "pair(X, Z) :- d1(X, Y), d2(Y, Z).\n"
      "?- pair(n0, Z).\n");
  Result<MagicResult> plain = MagicRewrite(parsed.program);
  MagicOptions options;
  options.supplementary = true;
  Result<MagicResult> sup = MagicRewrite(parsed.program, options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(sup.ok());
  auto plain_answers = testing::EvalAnswers(
      plain->program, WithSeed(parsed.edb, plain->seed_fact));
  auto sup_answers = testing::EvalAnswers(
      sup->program, WithSeed(parsed.edb, sup->seed_fact));
  EXPECT_EQ(plain_answers, sup_answers);
  EXPECT_EQ(sup_answers, (std::vector<std::string>{"n2"}));
}

}  // namespace
}  // namespace exdl
