// Representation equivalence (DESIGN.md §14): the physical executor is
// invisible. For every program shape the suite covers — monadic kernels,
// binary closure, negation, boolean cuts, cascades, and seeded random
// programs — kTuple and kBitset must produce byte-identical databases
// (contents AND row order), answers, and work counters, serially and on
// 4 threads; and the rendered telemetry documents must be byte-identical
// once the representation-specific sections (storage.representation
// counters, timing fields) are normalized away.

#include <gtest/gtest.h>

#include <regex>
#include <string>

#include "core/engine.h"
#include "core/workload.h"
#include "equiv/random_check.h"
#include "eval/evaluator.h"
#include "testing/test_util.h"

namespace exdl {
namespace {

/// Same contract as parallel_eval_test: predicates, sizes, and row order
/// all match.
void ExpectIdenticalDatabases(const Database& a, const Database& b) {
  ASSERT_EQ(a.relations().size(), b.relations().size());
  for (const auto& [pred, rel] : a.relations()) {
    const Relation* other = b.Find(pred);
    ASSERT_NE(other, nullptr) << "missing predicate " << pred;
    ASSERT_EQ(rel.size(), other->size()) << "size mismatch for " << pred;
    for (size_t r = 0; r < rel.size(); ++r) {
      std::span<const Value> ra = rel.view().Scan(r);
      std::span<const Value> rb = other->view().Scan(r);
      ASSERT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()))
          << "pred " << pred << " row " << r;
    }
  }
}

void ExpectSameOutcome(const EvalResult& tuple, const EvalResult& bitset) {
  ExpectIdenticalDatabases(tuple.db, bitset.db);
  EXPECT_EQ(tuple.answers, bitset.answers);
  EXPECT_EQ(tuple.ground_query_true, bitset.ground_query_true);
  EXPECT_EQ(tuple.stats.rounds, bitset.stats.rounds);
  EXPECT_EQ(tuple.stats.rule_firings, bitset.stats.rule_firings);
  EXPECT_EQ(tuple.stats.tuples_inserted, bitset.stats.tuples_inserted);
  EXPECT_EQ(tuple.stats.duplicate_inserts, bitset.stats.duplicate_inserts);
  EXPECT_EQ(tuple.stats.index_probes, bitset.stats.index_probes);
  EXPECT_EQ(tuple.stats.rows_matched, bitset.stats.rows_matched);
  EXPECT_EQ(tuple.stats.rules_retired, bitset.stats.rules_retired);
  EXPECT_EQ(tuple.stats.budget_tripped, bitset.stats.budget_tripped);
}

/// Evaluates under every representation x {1, 4} threads and asserts all
/// six runs agree with the serial tuple run.
void ExpectRepresentationEquivalent(const Program& program,
                                    const Database& edb) {
  EvalOptions reference_options;
  reference_options.representation = Representation::kTuple;
  EvalResult reference = testing::MustEval(program, edb, reference_options);
  for (Representation representation :
       {Representation::kTuple, Representation::kBitset,
        Representation::kAuto}) {
    for (uint32_t threads : {1u, 4u}) {
      EvalOptions options;
      options.representation = representation;
      options.num_threads = threads;
      EvalResult run = testing::MustEval(program, edb, options);
      SCOPED_TRACE(std::string(RepresentationName(representation)) + "/" +
                   std::to_string(threads) + " threads");
      ExpectSameOutcome(reference, run);
    }
  }
}

// ---------------------------------------------------------------------------
// Fixed program shapes

TEST(RepresentationTest, MonadicReachability) {
  auto parsed = testing::MustParse(
      "reach(Y) :- reach(X), e(X, Y).\n"
      "reach(X) :- zero(X).\n"
      "marked(X) :- reach(X), mark(X).\n"
      "?- marked(X).\n");
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kRandomSparse;
  spec.nodes = 300;
  spec.avg_degree = 2.0;
  spec.seed = 5;
  PredId e = parsed.ctx->InternPredicate("e", 2);
  Database edb;
  std::vector<Value> nodes = MakeGraph(parsed.ctx.get(), &edb, e, spec);
  edb.AddTuple(parsed.ctx->InternPredicate("zero", 1),
               std::vector<Value>{nodes[0]});
  PredId mark = parsed.ctx->InternPredicate("mark", 1);
  for (size_t i = 0; i < nodes.size(); i += 2) {
    edb.AddTuple(mark, std::vector<Value>{nodes[i]});
  }
  ExpectRepresentationEquivalent(parsed.program, edb);
}

TEST(RepresentationTest, BinaryTransitiveClosure) {
  auto parsed = testing::MustParse(
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- p(X, Z), a(Z, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X).\n");
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kRandomSparse;
  spec.nodes = 250;
  spec.avg_degree = 1.5;
  spec.seed = 23;
  PredId p = parsed.ctx->InternPredicate("p", 2);
  Database edb;
  MakeGraph(parsed.ctx.get(), &edb, p, spec);
  ExpectRepresentationEquivalent(parsed.program, edb);
}

TEST(RepresentationTest, NegationAntiJoin) {
  auto parsed = testing::MustParse(
      "reach(X) :- src(X).\n"
      "reach(Y) :- reach(X), p(X, Y).\n"
      "unreached(X) :- node(X), not reach(X).\n"
      "?- unreached(X).\n");
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kTree;
  spec.nodes = 300;
  spec.seed = 7;
  PredId p = parsed.ctx->InternPredicate("p", 2);
  Database edb;
  std::vector<Value> nodes = MakeGraph(parsed.ctx.get(), &edb, p, spec);
  PredId node = parsed.ctx->InternPredicate("node", 1);
  for (Value v : nodes) edb.AddTuple(node, std::vector<Value>{v});
  edb.AddTuple(parsed.ctx->InternPredicate("src", 1),
               std::vector<Value>{nodes[0]});
  ExpectRepresentationEquivalent(parsed.program, edb);
}

TEST(RepresentationTest, BooleanCutGroundQuery) {
  auto parsed = testing::MustParse(
      "hit :- p(X, Y), p(Y, X).\n"
      "a(X, Y) :- p(X, Y).\n"
      "a(X, Y) :- p(X, Z), a(Z, Y).\n"
      "?- a(X, Y).\n");
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kCycle;
  spec.nodes = 120;
  PredId p = parsed.ctx->InternPredicate("p", 2);
  Database edb;
  MakeGraph(parsed.ctx.get(), &edb, p, spec);
  ExpectRepresentationEquivalent(parsed.program, edb);
}

TEST(RepresentationTest, CascadeShape) {
  auto parsed = testing::MustParse(
      "q(X) :- a1(X, Y).\n"
      "q(X) :- a1(X, Z), b2(Z, W, V).\n"
      "q(X) :- a2(X, Z), b3(Z, W).\n"
      "a2(X, Z) :- a1(X, U), b4(U, Z).\n"
      "a1(X, Y) :- b1(X, Y).\n"
      "a1(X, Y) :- a1(X, Z), b5(Z, Y).\n"
      "?- q(X).\n");
  Database edb;
  uint64_t seed = 11;
  const int n = 300;
  for (const char* name : {"b1", "b2", "b3", "b4", "b5"}) {
    uint32_t arity = std::string(name) == "b2" ? 3 : 2;
    MakeRandomTuples(parsed.ctx.get(), &edb,
                     parsed.ctx->InternPredicate(name, arity), n, n / 2,
                     seed++);
  }
  ExpectRepresentationEquivalent(parsed.program, edb);
}

// ---------------------------------------------------------------------------
// Seeded random programs (same generator as property_test)

class RepresentationSeededTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, RepresentationSeededTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST_P(RepresentationSeededTest, RandomProgramAgrees) {
  ContextPtr ctx = std::make_shared<Context>();
  testing::RandomProgramOptions options;
  options.seed = GetParam();
  Program program = testing::RandomProgram(ctx, options);
  std::vector<PredId> inputs;
  for (PredId p : program.EdbPredicates()) inputs.push_back(p);
  std::sort(inputs.begin(), inputs.end());
  Database edb = RandomInstance(ctx.get(), inputs, /*domain_size=*/24,
                                /*max_tuples_per_pred=*/60,
                                /*seed=*/GetParam() * 131 + 17);
  ExpectRepresentationEquivalent(program, edb);
}

TEST_P(RepresentationSeededTest, RandomStratifiedProgramAgrees) {
  ContextPtr ctx = std::make_shared<Context>();
  testing::RandomStratifiedOptions options;
  options.seed = GetParam() ^ 0x5EED;
  Program program = testing::RandomStratifiedProgram(ctx, options);
  std::vector<PredId> inputs;
  for (PredId p : program.EdbPredicates()) inputs.push_back(p);
  std::sort(inputs.begin(), inputs.end());
  Database edb = RandomInstance(ctx.get(), inputs, /*domain_size=*/20,
                                /*max_tuples_per_pred=*/50,
                                /*seed=*/GetParam() * 97 + 3);
  ExpectRepresentationEquivalent(program, edb);
}

// ---------------------------------------------------------------------------
// Telemetry document byte-identity (minus the new counters)

/// Normalizes a telemetry document for cross-representation comparison:
/// zeroes every timing field (those legitimately differ run to run, in
/// any representation), drops the storage.representation metric rows and
/// the top-level "storage" object (the documented representation-specific
/// section), and drops the eval.round.seconds histogram (its bucket
/// counts are timing-derived). Everything else — counters, per-rule rows,
/// span structure — must match byte for byte.
std::string NormalizeTelemetry(std::string doc) {
  static const std::regex timing(
      "\"(eval_seconds|max_round_seconds|optimize_seconds|seconds|start_ms|"
      "duration_ms|sum)\":-?[0-9][0-9eE.+-]*");
  doc = std::regex_replace(doc, timing, "\"$1\":0");
  static const std::regex storage_obj(
      ",?\"storage\":\\{\"representation\":\\{[^}]*\\}\\}");
  doc = std::regex_replace(doc, storage_obj, "");
  static const std::regex rep_metric(
      "\\{\"name\":\"storage\\.representation\\.[^\"]*\"[^{}]*\\},?");
  doc = std::regex_replace(doc, rep_metric, "");
  static const std::regex round_hist(
      "\\{\"name\":\"eval\\.round\\.seconds\"[^{}]*\\},?");
  doc = std::regex_replace(doc, round_hist, "");
  // Removing array elements can leave a trailing comma before ']'.
  static const std::regex dangling(",\\]");
  doc = std::regex_replace(doc, dangling, "]");
  return doc;
}

std::string TelemetryDocFor(const std::string& source,
                            Representation representation,
                            uint32_t threads) {
  EngineOptions options;
  options.eval.representation = representation;
  options.eval.num_threads = threads;
  options.collect_telemetry = true;
  Engine engine(std::move(options));
  Status loaded = engine.LoadSource(source);
  EXPECT_TRUE(loaded.ok()) << loaded.ToString();
  Result<EvalResult> result = engine.Run();
  EXPECT_TRUE(result.ok());
  return engine.TelemetryJson("run", "test.dl");
}

TEST(RepresentationTest, TelemetryDocsMatchModuloRepresentationSection) {
  std::string source =
      "reach(Y) :- reach(X), e(X, Y).\n"
      "reach(X) :- zero(X).\n"
      "?- reach(X).\n"
      "zero(n0).\n";
  for (int i = 0; i < 40; ++i) {
    source +=
        "e(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ").\n";
  }
  for (uint32_t threads : {1u, 4u}) {
    const std::string tuple =
        TelemetryDocFor(source, Representation::kTuple, threads);
    const std::string bitset =
        TelemetryDocFor(source, Representation::kBitset, threads);
    // The raw documents DO differ (mode + kernel counters)...
    EXPECT_NE(tuple, bitset) << threads << " threads";
    // ...and normalizing exactly the documented section reconciles them.
    EXPECT_EQ(NormalizeTelemetry(tuple), NormalizeTelemetry(bitset))
        << threads << " threads";
  }
}

}  // namespace
}  // namespace exdl
