// Property-based tests: every transformation preserves query answers on
// random instances; engines agree with each other. The random-program
// generator covers recursion, shared variables, constants and existential
// wrapper queries (see tests/testing/test_util.h).

#include <gtest/gtest.h>

#include "adorn/adorn.h"
#include "ast/printer.h"
#include "core/optimizer.h"
#include "equiv/random_check.h"
#include "parser/parser.h"
#include "testing/test_util.h"
#include "core/workload.h"
#include "grammar/chain.h"
#include "grammar/language.h"
#include "transform/components.h"
#include "transform/folding.h"
#include "transform/projection.h"

namespace exdl {
namespace {

using ::exdl::testing::MustEval;
using ::exdl::testing::RandomProgram;
using ::exdl::testing::RandomProgramOptions;

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range<uint64_t>(1, 33));

TEST_P(SeededProperty, FullPipelinePreservesQueryAnswers) {
  ContextPtr ctx = std::make_shared<Context>();
  RandomProgramOptions options;
  options.seed = GetParam();
  Program original = RandomProgram(ctx, options);
  Result<OptimizedProgram> optimized = OptimizeExistential(original);
  ASSERT_TRUE(optimized.ok())
      << optimized.status().ToString() << "\n" << ToString(original);
  RandomCheckOptions check_options;
  check_options.seed = GetParam() * 31 + 7;
  Result<RandomCheckReport> report = CheckQueryEquivalentOnEdb(
      original, optimized->program, check_options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->equivalent)
      << "seed " << GetParam() << "\noriginal:\n"
      << ToString(original) << "\noptimized:\n"
      << ToString(optimized->program) << "\n"
      << report->counterexample;
}

TEST_P(SeededProperty, PipelineWithAllDeletionBackends) {
  ContextPtr ctx = std::make_shared<Context>();
  RandomProgramOptions options;
  options.seed = GetParam() ^ 0xABCD;
  Program original = RandomProgram(ctx, options);
  OptimizerOptions opt;
  opt.deletion.use_sagiv = true;
  opt.deletion.use_optimistic = true;
  opt.deletion.optimistic.max_facts = 20000;
  Result<OptimizedProgram> optimized = OptimizeExistential(original, opt);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  RandomCheckOptions check_options;
  check_options.seed = GetParam() * 17 + 3;
  check_options.trials = 8;
  Result<RandomCheckReport> report = CheckQueryEquivalentOnEdb(
      original, optimized->program, check_options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->equivalent)
      << "seed " << GetParam() << "\noriginal:\n"
      << ToString(original) << "\noptimized:\n"
      << ToString(optimized->program) << "\n"
      << report->counterexample;
}

TEST_P(SeededProperty, SemiNaiveAgreesWithNaive) {
  ContextPtr ctx = std::make_shared<Context>();
  RandomProgramOptions options;
  options.seed = GetParam() * 977;
  Program program = RandomProgram(ctx, options);
  std::vector<PredId> inputs(program.EdbPredicates().begin(),
                             program.EdbPredicates().end());
  std::sort(inputs.begin(), inputs.end());
  for (int trial = 0; trial < 4; ++trial) {
    Database db = RandomInstance(ctx.get(), inputs, 5, 10,
                                 GetParam() * 101 + trial);
    EvalOptions naive;
    naive.seminaive = false;
    EvalResult semi = MustEval(program, db);
    EvalResult full = MustEval(program, db, naive);
    EXPECT_EQ(semi.answers, full.answers) << ToString(program);
  }
}

TEST_P(SeededProperty, AdornmentAlonePreservesAnswers) {
  ContextPtr ctx = std::make_shared<Context>();
  RandomProgramOptions options;
  options.seed = GetParam() + 5000;
  Program program = RandomProgram(ctx, options);
  Result<Program> adorned = AdornExistential(program);
  ASSERT_TRUE(adorned.ok());
  RandomCheckOptions check_options;
  check_options.seed = GetParam();
  Result<RandomCheckReport> report =
      CheckQueryEquivalentOnEdb(program, *adorned, check_options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->equivalent) << report->counterexample;
}

TEST_P(SeededProperty, ProjectionAfterAdornmentPreservesAnswers) {
  ContextPtr ctx = std::make_shared<Context>();
  RandomProgramOptions options;
  options.seed = GetParam() + 9000;
  Program program = RandomProgram(ctx, options);
  Result<Program> adorned = AdornExistential(program);
  ASSERT_TRUE(adorned.ok());
  Result<ProjectionResult> projected = PushProjections(*adorned);
  ASSERT_TRUE(projected.ok());
  RandomCheckOptions check_options;
  check_options.seed = GetParam() * 3;
  Result<RandomCheckReport> report = CheckQueryEquivalentOnEdb(
      program, projected->program, check_options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->equivalent)
      << ToString(program) << "\n-- projected:\n"
      << ToString(projected->program) << "\n"
      << report->counterexample;
}

TEST_P(SeededProperty, ComponentExtractionPreservesAnswersUniformly) {
  // Component extraction even preserves answers when derived predicates
  // are populated in the input (it is a per-rule equivalence, Lemma 3.1).
  ContextPtr ctx = std::make_shared<Context>();
  RandomProgramOptions options;
  options.seed = GetParam() + 13000;
  Program program = RandomProgram(ctx, options);
  Result<ComponentResult> components = ExtractComponents(program);
  ASSERT_TRUE(components.ok());
  RandomCheckOptions check_options;
  check_options.seed = GetParam() * 5;
  check_options.populate_derived = true;
  Result<RandomCheckReport> report = CheckQueryEquivalentOnEdb(
      program, components->program, check_options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->equivalent)
      << ToString(program) << "\n-- components:\n"
      << ToString(components->program) << "\n"
      << report->counterexample;
}

TEST_P(SeededProperty, PrinterParserRoundTrip) {
  ContextPtr ctx = std::make_shared<Context>();
  RandomProgramOptions options;
  options.seed = GetParam() + 17000;
  Program program = RandomProgram(ctx, options);
  std::string printed = ToString(program);
  Result<ParsedUnit> reparsed = ParseProgram(printed, ctx);
  ASSERT_TRUE(reparsed.ok()) << printed;
  EXPECT_EQ(ToString(reparsed->program), printed);
}

TEST(PropertyRegressionTest, GeneratorIsDeterministic) {
  ContextPtr c1 = std::make_shared<Context>();
  ContextPtr c2 = std::make_shared<Context>();
  RandomProgramOptions options;
  options.seed = 424242;
  EXPECT_EQ(ToString(RandomProgram(c1, options)),
            ToString(RandomProgram(c2, options)));
}

}  // namespace
}  // namespace exdl

// ---------------------------------------------------------------------------
// Chain-program properties (Lemma 4.1 cross-validation).

namespace exdl {
namespace {

using ::exdl::testing::RandomChainOptions;
using ::exdl::testing::RandomChainProgram;

class ChainProperty : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, ChainProperty,
                         ::testing::Range<uint64_t>(1, 17));

// Language membership (grammar side) must coincide with evaluation over
// straight-line "word graphs" (program side): the operational content of
// Lemma 4.1(2).
TEST_P(ChainProperty, LanguageMatchesWordGraphEvaluation) {
  ContextPtr ctx = std::make_shared<Context>();
  RandomChainOptions options;
  options.seed = GetParam();
  Program program = RandomChainProgram(ctx, options);
  Result<Cfg> grammar = ChainProgramToGrammar(program);
  ASSERT_TRUE(grammar.ok());
  LanguageOptions lang_options;
  lang_options.max_length = 4;
  lang_options.max_forms = 200000;
  Result<std::set<std::vector<uint32_t>>> language =
      EnumerateLanguage(*grammar, grammar->start(), lang_options);
  if (!language.ok()) GTEST_SKIP() << "enumeration cap hit";

  // Check every word of length <= 3 over the terminal alphabet.
  size_t nt = grammar->NumTerminals();
  std::vector<std::vector<uint32_t>> words = {{}};
  for (int len = 0; len < 3; ++len) {
    size_t start = 0;
    size_t end = words.size();
    for (size_t w = start; w < end; ++w) {
      for (uint32_t a = 0; a < nt; ++a) {
        std::vector<uint32_t> next = words[w];
        next.push_back(a);
        words.push_back(std::move(next));
      }
    }
    words.erase(words.begin(),
                words.begin() + static_cast<std::ptrdiff_t>(end));
    // words now holds all words of length len+1... rebuild cumulative:
    if (len == 0) continue;
  }
  // Simpler: regenerate all words up to length 3 directly.
  words.clear();
  std::vector<std::vector<uint32_t>> frontier = {{}};
  for (int len = 0; len < 3; ++len) {
    std::vector<std::vector<uint32_t>> next_frontier;
    for (const auto& w : frontier) {
      for (uint32_t a = 0; a < nt; ++a) {
        std::vector<uint32_t> next = w;
        next.push_back(a);
        words.push_back(next);
        next_frontier.push_back(std::move(next));
      }
    }
    frontier = std::move(next_frontier);
  }

  Context& c = *ctx;
  for (const std::vector<uint32_t>& word : words) {
    // Build the word graph n0 -a-> n1 -b-> ... and ask whether the query
    // relates its endpoints.
    Database db;
    std::vector<Value> nodes =
        MakeNodes(&c, static_cast<int>(word.size()) + 1);
    for (size_t i = 0; i < word.size(); ++i) {
      const Value row[2] = {nodes[i], nodes[i + 1]};
      db.AddTuple(c.InternPredicate(grammar->TerminalName(word[i]), 2), row);
    }
    EvalResult result = testing::MustEval(program, db);
    bool derived = false;
    for (const auto& answer : result.answers) {
      if (answer[0] == nodes.front() && answer[1] == nodes.back()) {
        derived = true;
        break;
      }
    }
    bool in_language = language->count(word) > 0;
    EXPECT_EQ(derived, in_language)
        << "word length " << word.size() << ", seed " << GetParam();
  }
}

// Round-tripping program -> grammar -> program preserves the language.
TEST_P(ChainProperty, GrammarRoundTripPreservesAnswers) {
  ContextPtr ctx = std::make_shared<Context>();
  RandomChainOptions options;
  options.seed = GetParam() + 999;
  Program program = RandomChainProgram(ctx, options);
  Result<Cfg> grammar = ChainProgramToGrammar(program);
  ASSERT_TRUE(grammar.ok());
  Result<Program> back = GrammarToChainProgram(*grammar, ctx);
  ASSERT_TRUE(back.ok());
  // The round-tripped program uses the same predicate names (display
  // names), so direct random checking applies.
  RandomCheckOptions check_options;
  check_options.seed = GetParam();
  check_options.trials = 6;
  Result<RandomCheckReport> report =
      CheckQueryEquivalentOnEdb(program, *back, check_options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->equivalent) << report->counterexample;
}

// ---------------------------------------------------------------------------
// Stratified-negation properties.

using ::exdl::testing::RandomStratifiedOptions;
using ::exdl::testing::RandomStratifiedProgram;

class StratifiedProperty : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, StratifiedProperty,
                         ::testing::Range<uint64_t>(1, 17));

TEST_P(StratifiedProperty, SemiNaiveAgreesWithNaive) {
  ContextPtr ctx = std::make_shared<Context>();
  RandomStratifiedOptions options;
  options.seed = GetParam();
  Program program = RandomStratifiedProgram(ctx, options);
  std::vector<PredId> inputs(program.EdbPredicates().begin(),
                             program.EdbPredicates().end());
  std::sort(inputs.begin(), inputs.end());
  for (int trial = 0; trial < 4; ++trial) {
    Database db = RandomInstance(ctx.get(), inputs, 4, 8,
                                 GetParam() * 131 + trial);
    EvalOptions naive;
    naive.seminaive = false;
    EvalResult semi = testing::MustEval(program, db);
    EvalResult full = testing::MustEval(program, db, naive);
    EXPECT_EQ(semi.answers, full.answers) << ToString(program);
  }
}

TEST_P(StratifiedProperty, OptimizerPreservesAnswers) {
  ContextPtr ctx = std::make_shared<Context>();
  RandomStratifiedOptions options;
  options.seed = GetParam() + 777;
  Program program = RandomStratifiedProgram(ctx, options);
  Result<OptimizedProgram> optimized = OptimizeExistential(program);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  RandomCheckOptions check_options;
  check_options.seed = GetParam() * 13;
  Result<RandomCheckReport> report = CheckQueryEquivalentOnEdb(
      program, optimized->program, check_options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->equivalent)
      << ToString(program) << "\n-- optimized:\n"
      << ToString(optimized->program) << "\n"
      << report->counterexample;
}

// ---------------------------------------------------------------------------
// Folding properties.

class FoldingProperty : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FoldingProperty,
                         ::testing::Range<uint64_t>(1, 17));

TEST_P(FoldingProperty, FoldThenUnfoldPreservesAnswers) {
  ContextPtr ctx = std::make_shared<Context>();
  testing::RandomProgramOptions options;
  options.seed = GetParam() * 37;
  Program program = testing::RandomProgram(ctx, options);
  Result<FoldingResult> folded = FoldAlmostUnitRules(program);
  ASSERT_TRUE(folded.ok());
  Result<Program> unfolded =
      UnfoldAuxiliaries(folded->program, folded->aux_preds);
  ASSERT_TRUE(unfolded.ok());
  RandomCheckOptions check_options;
  check_options.seed = GetParam();
  check_options.trials = 8;
  Result<RandomCheckReport> report =
      CheckQueryEquivalentOnEdb(program, *unfolded, check_options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->equivalent)
      << ToString(program) << "\n-- folded:\n"
      << ToString(folded->program) << "\n-- unfolded:\n"
      << ToString(*unfolded) << "\n"
      << report->counterexample;
}

TEST_P(FoldingProperty, PipelineWithFoldingPreservesAnswers) {
  ContextPtr ctx = std::make_shared<Context>();
  testing::RandomProgramOptions options;
  options.seed = GetParam() * 53 + 11;
  Program program = testing::RandomProgram(ctx, options);
  OptimizerOptions opt;
  opt.enable_folding = true;
  Result<OptimizedProgram> optimized = OptimizeExistential(program, opt);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  RandomCheckOptions check_options;
  check_options.seed = GetParam() * 7;
  check_options.trials = 8;
  Result<RandomCheckReport> report = CheckQueryEquivalentOnEdb(
      program, optimized->program, check_options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->equivalent)
      << ToString(program) << "\n-- optimized:\n"
      << ToString(optimized->program) << "\n"
      << report->counterexample;
}

}  // namespace
}  // namespace exdl
