// The folding rewriting of Example 11 and its inverse.

#include <gtest/gtest.h>

#include "analysis/dependency_graph.h"
#include "ast/printer.h"
#include "core/optimizer.h"
#include "equiv/random_check.h"
#include "equiv/summary_closure.h"
#include "testing/test_util.h"
#include "transform/folding.h"

namespace exdl {
namespace {

using ::exdl::testing::MustParse;

// The paper's Example 9/11 program (cleaned from the OCR-damaged TR):
//   pnd(X) :- pnn(X,Y), g3(Y,Z,U).           <- fold me
//   pnd(X) :- pnn(X,Z,U)... (arities in the TR are inconsistent; we use
//   the shape that matters: the 4th rule embeds rule 1's body pattern.)
const char kExample11[] =
    "pnd(X) :- pnn(X, Y), g3(Y, Z, U).\n"
    "pnd(X) :- pnn(X, Z), g1(Z, Y).\n"
    "pnn(X, Z) :- pnn(X, W), g2(W, Z).\n"
    "pnn(X, Z) :- pnn(X, V), g3(V, Z, U), g4(U, W).\n"  // embeds rule 1
    "pnn(X, Y) :- g0(X, Y).\n"
    "?- pnd(X).\n";

TEST(FoldingTest, FoldsEmbeddedPattern) {
  auto parsed = MustParse(kExample11);
  Result<FoldingResult> folded = FoldAlmostUnitRules(parsed.program);
  ASSERT_TRUE(folded.ok());
  EXPECT_GE(folded->rules_folded, 1u);
  EXPECT_GE(folded->bodies_folded, 1u);
  // Rule 1 became a unit rule over the auxiliary.
  const Rule& r1 = folded->program.rules()[0];
  EXPECT_EQ(r1.body.size(), 1u);
  EXPECT_TRUE(folded->aux_preds.count(r1.body[0].pred) > 0);
}

TEST(FoldingTest, FoldPreservesAnswers) {
  auto parsed = MustParse(kExample11);
  Result<FoldingResult> folded = FoldAlmostUnitRules(parsed.program);
  ASSERT_TRUE(folded.ok());
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(parsed.program, folded->program);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
}

TEST(FoldingTest, UnfoldRestoresShape) {
  auto parsed = MustParse(kExample11);
  Result<FoldingResult> folded = FoldAlmostUnitRules(parsed.program);
  ASSERT_TRUE(folded.ok());
  Result<Program> unfolded =
      UnfoldAuxiliaries(folded->program, folded->aux_preds);
  ASSERT_TRUE(unfolded.ok());
  // No auxiliary remains.
  for (const Rule& r : unfolded->rules()) {
    EXPECT_EQ(folded->aux_preds.count(r.head.pred), 0u);
    for (const Atom& lit : r.body) {
      EXPECT_EQ(folded->aux_preds.count(lit.pred), 0u);
    }
  }
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(parsed.program, *unfolded);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
}

TEST(FoldingTest, NoProfitableFoldIsNoop) {
  auto parsed = MustParse(
      "q(X) :- a(X, Y), b(Y).\n"
      "q(X) :- c(X).\n"
      "?- q(X).\n");
  Result<FoldingResult> folded = FoldAlmostUnitRules(parsed.program);
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(folded->rules_folded, 0u);
  EXPECT_EQ(ToString(folded->program), ToString(parsed.program));
}

TEST(FoldingTest, NegationDisablesFolding) {
  auto parsed = MustParse(
      "q(X) :- a(X, Y), not b(Y).\n"
      "p(X, Z) :- a(X, Y), not b(Y), c(Z).\n"
      "?- q(X).\n");
  Result<FoldingResult> folded = FoldAlmostUnitRules(parsed.program);
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(folded->rules_folded, 0u);
}

TEST(FoldingTest, OptimizerPipelineWithFolding) {
  // End to end: folding + deletion + unfolding, answers preserved; the
  // Example 11 deletion actually happens (the 4th rule's pattern-folded
  // form is subsumed via the auxiliary unit rule).
  auto parsed = MustParse(kExample11);
  OptimizerOptions options;
  options.adorn = false;
  options.enable_folding = true;
  Result<OptimizedProgram> optimized =
      OptimizeExistential(parsed.program, options);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(parsed.program, optimized->program);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent)
      << check->counterexample << "\n"
      << ToString(optimized->program);
  EXPECT_GE(optimized->report.rules_folded, 1u);
}

TEST(FoldingTest, MappingMayIdentifyVariables) {
  // The embedded instance maps the pattern's two variables to one.
  auto parsed = MustParse(
      "a(X, Y) :- e(X, Y).\n"
      "q(X) :- a(X, Y), b(Y, Z).\n"
      "p(X) :- a(X, X), b(X, X), c(X).\n"
      "?- q(X).\n");
  Result<FoldingResult> folded = FoldAlmostUnitRules(parsed.program);
  ASSERT_TRUE(folded.ok());
  ASSERT_EQ(folded->rules_folded, 1u);
  EXPECT_EQ(folded->bodies_folded, 1u);
  Result<RandomCheckReport> check =
      CheckQueryEquivalentOnEdb(parsed.program, folded->program);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->equivalent) << check->counterexample;
}

}  // namespace
}  // namespace exdl
