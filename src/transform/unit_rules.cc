#include "transform/unit_rules.h"

#include <map>
#include <vector>

namespace exdl {

Result<UnitRuleResult> AddCoveringUnitRules(const Program& program) {
  Context& ctx = program.ctx();
  UnitRuleResult result{program.Clone(), 0, {}};

  // Group predicate versions by (base name, original arity). The original
  // arity of a projected version is its adornment length.
  std::map<std::pair<SymbolId, size_t>, std::vector<PredId>> groups;
  for (PredId p : program.AllPredicates()) {
    const PredicateInfo& info = ctx.predicate(p);
    if (info.adornment.empty()) continue;
    size_t original_arity = info.adornment.size();
    groups[{info.name, original_arity}].push_back(p);
  }

  for (const auto& [key, versions] : groups) {
    for (PredId covered : versions) {
      const Adornment& a = ctx.predicate(covered).adornment;
      for (PredId covering : versions) {
        if (covered == covering) continue;
        const Adornment& a1 = ctx.predicate(covering).adornment;
        if (!Covers(a1, a)) continue;
        // Build q^a(t) :- q^a1(t1) with one variable per original
        // position; each version keeps its needed positions.
        std::vector<Term> by_position;
        for (size_t i = 0; i < a.size(); ++i) {
          by_position.push_back(
              Term::Var(ctx.InternSymbol("U" + std::to_string(i))));
        }
        auto args_for = [&](PredId version,
                            const Adornment& adorn) -> std::vector<Term> {
          std::vector<Term> out;
          const PredicateInfo& info = ctx.predicate(version);
          if (info.arity == adorn.size()) {
            // Unprojected: store every position.
            for (size_t i = 0; i < adorn.size(); ++i) {
              out.push_back(by_position[i]);
            }
          } else {
            for (size_t i : adorn.NeededPositions()) {
              out.push_back(by_position[i]);
            }
          }
          return out;
        };
        Rule unit;
        unit.head = Atom(covered, args_for(covered, a));
        unit.body.push_back(Atom(covering, args_for(covering, a1)));
        bool present = false;
        for (const Rule& r : result.program.rules()) {
          if (r == unit) {
            present = true;
            break;
          }
        }
        if (!present) {
          result.added.push_back(unit);
          result.program.AddRule(std::move(unit));
          ++result.rules_added;
        }
      }
    }
  }
  return result;
}

}  // namespace exdl
