// Clause subsumption — the classical deletion the paper's Example 7 points
// at: "note that even though the second rule can be discarded, the above
// procedure [summaries] is incapable of doing this."
//
// Rule r is subsumed by rule r' (same head predicate) when some
// substitution θ maps r' onto r: θ(head(r')) = head(r) and θ(body(r')) ⊆
// body(r) as a set of literals. Every fact r derives on any database is
// then also derived by r', so deleting r preserves *uniform* equivalence
// (and hence every weaker notion). Sound for positive literals; negated
// literals must match exactly in the subset direction reversed — we keep
// it simple and require subsumed-rule negative literals to be a superset:
// a rule with FEWER negative literals derives more, so θ(neg(r')) ⊆ neg(r)
// is the safe direction there too (more negative conditions on r only
// restrict it further).

#ifndef EXDL_TRANSFORM_SUBSUMPTION_H_
#define EXDL_TRANSFORM_SUBSUMPTION_H_

#include "ast/program.h"
#include "util/status.h"

namespace exdl {

/// True when `general` subsumes `specific` (see file comment).
bool Subsumes(const Rule& general, const Rule& specific);

struct SubsumptionResult {
  Program program;
  size_t rules_removed = 0;
  std::vector<std::string> log;
};

/// Removes every rule subsumed by another rule of the program (keeping
/// the subsuming one; ties broken by keeping the earlier rule).
Result<SubsumptionResult> RemoveSubsumedRules(const Program& program);

}  // namespace exdl

#endif  // EXDL_TRANSFORM_SUBSUMPTION_H_
