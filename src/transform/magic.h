// Magic-set rewriting (selection pushing), with bound/free adornments and a
// left-to-right sideways information passing strategy.
//
// The paper treats magic sets as orthogonal to its projection-pushing
// optimizations ("these rewritings are orthogonal to the optimizations
// discussed in this paper", Section 1); this module exists to run that
// composition experiment (bench E8). The implementation is the classic
// generalized-magic-sets rewriting: one b/f-adorned version of each derived
// predicate reachable from the query, a magic predicate per adorned
// version holding the relevant bindings, magic rules derived from rule
// prefixes, and a seed fact from the query constants.

#ifndef EXDL_TRANSFORM_MAGIC_H_
#define EXDL_TRANSFORM_MAGIC_H_

#include "ast/program.h"
#include "storage/database.h"
#include "util/status.h"

namespace exdl {

struct MagicOptions {
  /// Generalized supplementary magic sets: rule prefixes are materialized
  /// once in sup_{r,i} predicates instead of being re-joined by each magic
  /// rule. Same answers; usually less work on rules with several derived
  /// body literals.
  bool supplementary = false;
};

struct MagicResult {
  Program program;   ///< Rewritten rules; query retargeted at the b/f
                     ///< version of the query predicate.
  Atom seed_fact;    ///< magic_q(constants...) — insert before evaluating.
};

/// Rewrites `program` for its query. Constant query arguments become `b`,
/// variables `f`. With no constants the rewriting still guards evaluation
/// by reachability (the seed fact is 0-ary).
///
/// Requires a query over a derived predicate; derived predicates may
/// already carry n/d adornments (magic predicates then mangle the display
/// name, e.g. "a@nd/1" -> magic version named from the display form).
Result<MagicResult> MagicRewrite(const Program& program,
                                 const MagicOptions& options = MagicOptions());

/// Convenience: clones `edb` and inserts the seed fact.
Database WithSeed(const Database& edb, const Atom& seed_fact);

}  // namespace exdl

#endif  // EXDL_TRANSFORM_MAGIC_H_
