#include "transform/magic.h"

#include <deque>
#include <optional>
#include <unordered_map>

namespace exdl {
namespace {

struct VersionKey {
  PredId original;
  std::string bf;
  bool operator==(const VersionKey&) const = default;
};
struct VersionKeyHash {
  size_t operator()(const VersionKey& k) const {
    return k.original ^ (std::hash<std::string>()(k.bf) << 1);
  }
};

}  // namespace

Database WithSeed(const Database& edb, const Atom& seed_fact) {
  Database out = edb.Clone();
  (void)out.AddFact(seed_fact);
  return out;
}

Result<MagicResult> MagicRewrite(const Program& program,
                                 const MagicOptions& options) {
  if (!program.query()) {
    return Status::FailedPrecondition("magic rewriting requires a query");
  }
  Context& ctx = program.ctx();
  const Atom& query = *program.query();
  std::unordered_set<PredId> idb = program.IdbPredicates();
  if (idb.count(query.pred) == 0) {
    return Status::FailedPrecondition(
        "magic rewriting requires a derived query predicate");
  }
  if (program.HasNegation()) {
    return Status::FailedPrecondition(
        "magic rewriting of stratified programs is not supported");
  }

  // b/f pattern of the query: constants are bound.
  Adornment query_bf = Adornment::AllFree(query.args.size());
  for (size_t i = 0; i < query.args.size(); ++i) {
    if (query.args[i].IsConst()) query_bf.set(i, Adornment::kBound);
  }

  // Adorned (b/f) versions and their magic predicates.
  std::unordered_map<VersionKey, PredId, VersionKeyHash> adorned;
  std::unordered_map<VersionKey, PredId, VersionKeyHash> magic;
  std::deque<std::pair<PredId, Adornment>> worklist;

  auto version_of = [&](PredId original, const Adornment& bf) -> PredId {
    VersionKey key{original, bf.str()};
    auto it = adorned.find(key);
    if (it != adorned.end()) return it->second;
    const PredicateInfo& info = ctx.predicate(original);
    // An n/d-adorned (possibly projected) predicate cannot carry a second
    // adornment string; mangle its display name into a fresh base name.
    SymbolId name = info.adornment.empty()
                        ? info.name
                        : ctx.InternSymbol(ctx.PredicateDisplayName(original));
    PredId v = ctx.InternPredicate(name, info.arity, bf);
    adorned.emplace(key, v);
    magic.emplace(key,
                  ctx.InternPredicate(
                      "magic_" + ctx.PredicateDisplayName(original) + "_" +
                          bf.str(),
                      static_cast<uint32_t>(bf.CountBound())));
    worklist.emplace_back(original, bf);
    return v;
  };
  auto magic_of = [&](PredId original, const Adornment& bf) -> PredId {
    version_of(original, bf);
    return magic.at(VersionKey{original, bf.str()});
  };
  auto bound_args = [](const Atom& atom, const Adornment& bf) {
    std::vector<Term> out;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (bf.bound(i)) out.push_back(atom.args[i]);
    }
    return out;
  };

  MagicResult result{Program(program.context()),
                     Atom(magic_of(query.pred, query_bf),
                          bound_args(query, query_bf))};
  PredId query_version = version_of(query.pred, query_bf);

  while (!worklist.empty()) {
    auto [original, bf] = worklist.front();
    worklist.pop_front();
    PredId head_version = adorned.at(VersionKey{original, bf.str()});
    PredId head_magic = magic.at(VersionKey{original, bf.str()});
    size_t rule_counter = 0;
    for (const Rule& rule : program.rules()) {
      if (rule.head.pred != original) continue;
      size_t rule_idx = rule_counter++;
      Atom magic_head_lit(head_magic, bound_args(rule.head, bf));

      std::unordered_set<SymbolId> bound;
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        if (bf.bound(i) && rule.head.args[i].IsVar()) {
          bound.insert(rule.head.args[i].id());
        }
      }

      // For supplementary magic: needed[i] = vars used by literals
      // l_{i+1..n} or the head (what must survive past position i).
      std::vector<std::unordered_set<SymbolId>> needed(rule.body.size() + 1);
      for (const Term& t : rule.head.args) {
        if (t.IsVar()) needed[rule.body.size()].insert(t.id());
      }
      for (size_t i = rule.body.size(); i-- > 0;) {
        needed[i] = needed[i + 1];
        for (const Term& t : rule.body[i].args) {
          if (t.IsVar()) needed[i].insert(t.id());
        }
      }

      auto adorn_literal = [&](const Atom& lit,
                               std::unordered_set<SymbolId>* bound_vars)
          -> std::pair<Atom, std::optional<Adornment>> {
        if (idb.count(lit.pred) == 0) return {lit, std::nullopt};
        Adornment lit_bf = Adornment::AllFree(lit.args.size());
        for (size_t i = 0; i < lit.args.size(); ++i) {
          const Term& t = lit.args[i];
          if (t.IsConst() || bound_vars->count(t.id()) > 0) {
            lit_bf.set(i, Adornment::kBound);
          }
        }
        Atom adorned_lit = lit;
        adorned_lit.pred = version_of(lit.pred, lit_bf);
        return {adorned_lit, lit_bf};
      };

      if (!options.supplementary) {
        std::vector<Atom> rewritten_body;
        rewritten_body.push_back(magic_head_lit);
        for (const Atom& lit : rule.body) {
          auto [adorned_lit, lit_bf] = adorn_literal(lit, &bound);
          if (lit_bf) {
            Rule magic_rule;
            magic_rule.head =
                Atom(magic_of(lit.pred, *lit_bf), bound_args(lit, *lit_bf));
            magic_rule.body = rewritten_body;  // magic head + prefix
            result.program.AddRule(std::move(magic_rule));
          }
          rewritten_body.push_back(std::move(adorned_lit));
          for (const Term& t : lit.args) {
            if (t.IsVar()) bound.insert(t.id());
          }
        }
        Rule modified;
        modified.head = rule.head;
        modified.head.pred = head_version;
        modified.body = std::move(rewritten_body);
        result.program.AddRule(std::move(modified));
        continue;
      }

      // Supplementary variant: sup_{r,i} carries exactly the bound vars
      // still needed after position i.
      std::string base = "sup_" + ctx.PredicateDisplayName(original) + "_" +
                         bf.str() + "_" + std::to_string(rule_idx) + "_";
      auto kept_vars = [&](const std::unordered_set<SymbolId>& bound_vars,
                           size_t i) {
        // Deterministic order: first occurrence in the rule.
        std::vector<SymbolId> out;
        for (SymbolId v : rule.Vars()) {
          if (bound_vars.count(v) > 0 && needed[i].count(v) > 0) {
            out.push_back(v);
          }
        }
        return out;
      };
      auto sup_atom = [&](size_t i, const std::vector<SymbolId>& vars) {
        PredId pred = ctx.InternPredicate(
            base + std::to_string(i), static_cast<uint32_t>(vars.size()));
        Atom atom;
        atom.pred = pred;
        for (SymbolId v : vars) atom.args.push_back(Term::Var(v));
        return atom;
      };
      std::vector<SymbolId> kept = kept_vars(bound, 0);
      Atom prev_sup = sup_atom(0, kept);
      {
        Rule sup0;
        sup0.head = prev_sup;
        sup0.body.push_back(magic_head_lit);
        result.program.AddRule(std::move(sup0));
      }
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const Atom& lit = rule.body[i];
        auto [adorned_lit, lit_bf] = adorn_literal(lit, &bound);
        if (lit_bf) {
          Rule magic_rule;
          magic_rule.head =
              Atom(magic_of(lit.pred, *lit_bf), bound_args(lit, *lit_bf));
          magic_rule.body.push_back(prev_sup);
          result.program.AddRule(std::move(magic_rule));
        }
        for (const Term& t : lit.args) {
          if (t.IsVar()) bound.insert(t.id());
        }
        std::vector<SymbolId> next_kept = kept_vars(bound, i + 1);
        Atom next_sup = sup_atom(i + 1, next_kept);
        Rule step;
        step.head = next_sup;
        step.body.push_back(prev_sup);
        step.body.push_back(std::move(adorned_lit));
        result.program.AddRule(std::move(step));
        prev_sup = std::move(next_sup);
      }
      Rule modified;
      modified.head = rule.head;
      modified.head.pred = head_version;
      modified.body.push_back(prev_sup);
      result.program.AddRule(std::move(modified));
    }
  }

  Atom new_query = query;
  new_query.pred = query_version;
  result.program.SetQuery(std::move(new_query));
  return result;
}

}  // namespace exdl
