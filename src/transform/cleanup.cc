#include "transform/cleanup.h"

#include "analysis/reachability.h"

namespace exdl {

Result<CleanupResult> CleanupProgram(
    const Program& program, const std::unordered_set<PredId>& input_preds) {
  if (!program.query()) {
    return Status::FailedPrecondition("cleanup requires a query");
  }
  CleanupResult result{program.Clone(), 0};
  bool changed = true;
  while (changed) {
    changed = false;
    Program& p = result.program;
    std::unordered_set<PredId> reachable = ReachableFromQuery(p);

    // Productive predicates can hold at least one tuple on some input:
    // input predicates always; an internal predicate when some rule's
    // derived body literals are all productive. An internal predicate with
    // no exit path (Example 8's "no exit rule defining p.1") is empty on
    // every instance of the input schema.
    std::unordered_set<PredId> productive = input_preds;
    bool grew = true;
    while (grew) {
      grew = false;
      for (const Rule& r : p.rules()) {
        if (productive.count(r.head.pred) > 0) continue;
        bool all = true;
        for (const Atom& lit : r.body) {
          // A negated literal is satisfiable regardless of the relation.
          if (!lit.negated && productive.count(lit.pred) == 0) {
            all = false;
            break;
          }
        }
        if (all) {
          productive.insert(r.head.pred);
          grew = true;
        }
      }
    }

    std::vector<Rule> kept;
    kept.reserve(p.rules().size());
    for (const Rule& r : p.rules()) {
      bool drop = false;
      if (reachable.count(r.head.pred) == 0) {
        drop = true;  // never contributes to the query
      } else {
        for (const Atom& lit : r.body) {
          if (!lit.negated && productive.count(lit.pred) == 0) {
            drop = true;  // mentions a provably empty internal predicate
            break;
          }
        }
      }
      if (drop) {
        ++result.rules_removed;
        changed = true;
      } else {
        kept.push_back(r);
      }
    }
    p.mutable_rules() = std::move(kept);
  }
  return result;
}

}  // namespace exdl
