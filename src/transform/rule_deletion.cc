#include "transform/rule_deletion.h"

#include "ast/printer.h"
#include "equiv/uniform_equivalence.h"
#include "transform/cleanup.h"
#include "transform/subsumption.h"

namespace exdl {
namespace {

Program WithoutRule(const Program& p, size_t index) {
  Program out(p.context());
  for (size_t i = 0; i < p.rules().size(); ++i) {
    if (i != index) out.AddRule(p.rules()[i]);
  }
  if (p.query()) out.SetQuery(*p.query());
  return out;
}

}  // namespace

Result<DeletionResult> DeleteRedundantRules(const Program& program,
                                            const DeletionOptions& options) {
  if (!program.query()) {
    return Status::FailedPrecondition("rule deletion requires a query");
  }
  if (program.HasNegation()) {
    // The frozen-instance and summary tests argue by replacing
    // derivations, which is unsound under (stratified) negation: removing
    // a rule can *add* query facts through a negated literal. Clause
    // subsumption is still sound (the subsumed rule derives a subset of
    // the subsuming rule's facts under any interpretation, so each
    // stratum's fixpoint is unchanged) — run only that.
    DeletionResult only_subsumption(program.Clone());
    if (options.use_subsumption) {
      EXDL_ASSIGN_OR_RETURN(SubsumptionResult subsumed,
                            RemoveSubsumedRules(only_subsumption.program));
      only_subsumption.deleted_by_subsumption = subsumed.rules_removed;
      for (std::string& line : subsumed.log) {
        only_subsumption.log.push_back(std::move(line));
      }
      only_subsumption.program = std::move(subsumed.program);
    }
    only_subsumption.log.push_back(
        "frozen-instance/summary deletion skipped: program uses negation "
        "(non-monotone)");
    return only_subsumption;
  }
  const Context& ctx = program.ctx();
  std::unordered_set<PredId> input_preds = options.input_preds;
  if (input_preds.empty()) input_preds = program.EdbPredicates();

  DeletionResult result(program.Clone());

  size_t deletions = 0;
  bool changed = true;
  while (changed && deletions < options.max_deletions) {
    changed = false;
    if (options.cleanup) {
      EXDL_ASSIGN_OR_RETURN(CleanupResult cleaned,
                            CleanupProgram(result.program, input_preds));
      if (cleaned.rules_removed > 0) {
        result.removed_by_cleanup += cleaned.rules_removed;
        result.log.push_back("cleanup removed " +
                             std::to_string(cleaned.rules_removed) +
                             " dead rule(s)");
        result.program = std::move(cleaned.program);
        changed = true;
      }
    }

    if (options.use_subsumption) {
      EXDL_ASSIGN_OR_RETURN(SubsumptionResult subsumed,
                            RemoveSubsumedRules(result.program));
      if (subsumed.rules_removed > 0) {
        result.deleted_by_subsumption += subsumed.rules_removed;
        deletions += subsumed.rules_removed;
        for (std::string& line : subsumed.log) {
          result.log.push_back(std::move(line));
        }
        result.program = std::move(subsumed.program);
        changed = true;
        continue;
      }
    }

    if (options.use_summaries) {
      EXDL_ASSIGN_OR_RETURN(
          SummaryAnalysis analysis,
          SummaryAnalysis::Build(result.program, options.closure));
      std::vector<size_t> deletable = analysis.DeletableRules();
      if (!deletable.empty()) {
        // Prefer removing a non-unit rule: unit rules are the enablers of
        // further deletions.
        size_t victim = deletable.front();
        for (size_t r : deletable) {
          if (!result.program.rules()[r].IsUnitRule()) {
            victim = r;
            break;
          }
        }
        // Record which rules the replacement derivations depend on.
        const Rule& victim_rule = result.program.rules()[victim];
        for (size_t pos = 0; pos < victim_rule.body.size(); ++pos) {
          std::optional<std::vector<size_t>> uses =
              analysis.JustificationUses(Occurrence{victim, pos});
          if (!uses) continue;
          for (size_t u : *uses) {
            result.justification_rules.push_back(result.program.rules()[u]);
          }
          break;
        }
        result.log.push_back(
            "summary test (Lemma 5.1/5.3) deleted: " +
            ToString(ctx, result.program.rules()[victim]));
        result.program = WithoutRule(result.program, victim);
        ++result.deleted_by_summary;
        ++deletions;
        changed = true;
        continue;
      }
    }

    if (options.use_sagiv) {
      bool deleted = false;
      for (size_t r = 0; r < result.program.rules().size() && !deleted;
           ++r) {
        EXDL_ASSIGN_OR_RETURN(
            bool ok, DeletableUnderUniformEquivalence(result.program, r));
        if (ok) {
          result.log.push_back(
              "Sagiv uniform-equivalence test deleted: " +
              ToString(ctx, result.program.rules()[r]));
          result.program = WithoutRule(result.program, r);
          ++result.deleted_by_sagiv;
          ++deletions;
          changed = true;
          deleted = true;
        }
      }
      if (deleted) continue;
    }

    if (options.use_optimistic) {
      bool deleted = false;
      for (size_t r = 0; r < result.program.rules().size() && !deleted;
           ++r) {
        Result<bool> ok = DeletableUnderOptimisticUqe(result.program, r,
                                                      options.optimistic);
        if (!ok.ok()) continue;  // fixpoint cap: treat as not deletable
        if (*ok) {
          result.log.push_back(
              "optimistic test (Theorem 5.2) deleted: " +
              ToString(ctx, result.program.rules()[r]));
          result.program = WithoutRule(result.program, r);
          ++result.deleted_by_optimistic;
          ++deletions;
          changed = true;
          deleted = true;
        }
      }
      if (deleted) continue;
    }
  }
  return result;
}

}  // namespace exdl
