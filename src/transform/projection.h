// Projection pushing (Section 3.2, Lemma 3.2).
//
// Every occurrence of an adorned derived literal p^a(r̄) — in rule heads,
// rule bodies and the query — is consistently replaced by p^a(r̄1), where
// r̄1 drops the arguments in existential ('d') positions. The projected
// version keeps the full adornment string but stores only the needed
// arguments (PredicateInfo::IsProjected()). This is where binary
// transitive closure becomes unary (Example 3).

#ifndef EXDL_TRANSFORM_PROJECTION_H_
#define EXDL_TRANSFORM_PROJECTION_H_

#include "ast/program.h"
#include "util/status.h"

namespace exdl {

struct ProjectionResult {
  Program program;
  size_t predicates_projected = 0;  ///< Adorned versions that lost columns.
  size_t positions_dropped = 0;     ///< Total argument positions removed.
};

/// Applies Lemma 3.2 to an adorned program. Predicates without a 'd' in
/// their adornment (and base predicates) are untouched. Idempotent.
Result<ProjectionResult> PushProjections(const Program& program);

}  // namespace exdl

#endif  // EXDL_TRANSFORM_PROJECTION_H_
