#include "transform/folding.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

namespace exdl {
namespace {

/// A homomorphic match of pattern `B` into a rule body: which body
/// positions were matched, and the variable mapping.
struct Match {
  std::vector<size_t> positions;                  // one per pattern literal
  std::unordered_map<SymbolId, Term> mapping;     // pattern var -> term
};

/// Extends `match` by mapping pattern literal `b` onto `target`; returns
/// false (and leaves `match` untouched on failure paths via copy in the
/// caller) when predicates, constants or bindings conflict.
bool UnifyLiteral(const Atom& pattern, const Atom& target, Match* match) {
  if (pattern.pred != target.pred || pattern.negated || target.negated) {
    return false;
  }
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    const Term& p = pattern.args[i];
    const Term& t = target.args[i];
    if (p.IsConst()) {
      if (!(t.IsConst() && t.id() == p.id())) return false;
      continue;
    }
    auto [it, inserted] = match->mapping.emplace(p.id(), t);
    if (!inserted && !(it->second == t)) return false;
  }
  return true;
}

/// Finds a homomorphic embedding of `pattern` (all literals, distinct
/// positions) into `body`.
std::optional<Match> FindMatch(const std::vector<Atom>& pattern,
                               const std::vector<Atom>& body) {
  Match match;
  std::vector<bool> used(body.size(), false);
  // Small backtracking search; pattern sizes are 2-3 in practice.
  std::function<bool(size_t)> search = [&](size_t k) -> bool {
    if (k == pattern.size()) return true;
    for (size_t i = 0; i < body.size(); ++i) {
      if (used[i]) continue;
      Match saved = match;
      if (UnifyLiteral(pattern[k], body[i], &match)) {
        used[i] = true;
        match.positions.push_back(i);
        if (search(k + 1)) return true;
        match.positions.pop_back();
        used[i] = false;
      }
      match = std::move(saved);
    }
    return false;
  };
  if (!search(0)) return std::nullopt;
  return match;
}

/// Distinct variables of `atoms` in first-occurrence order.
std::vector<SymbolId> PatternVars(const std::vector<Atom>& atoms) {
  std::vector<SymbolId> out;
  for (const Atom& a : atoms) a.CollectVars(&out);
  return out;
}

}  // namespace

Result<FoldingResult> FoldAlmostUnitRules(const Program& program) {
  FoldingResult result{program.Clone(), 0, 0, {}};
  if (program.HasNegation()) return result;  // positive programs only
  Context& ctx = program.ctx();
  std::unordered_set<PredId> idb = program.IdbPredicates();

  // Candidates are examined against the evolving program; each fold turns
  // its candidate into a unit rule, so the loop terminates.
  bool changed = true;
  while (changed) {
    changed = false;
    Program& p = result.program;
    for (size_t r1 = 0; r1 < p.rules().size() && !changed; ++r1) {
      const Rule& candidate = p.rules()[r1];
      if (candidate.body.size() < 2) continue;
      if (result.aux_preds.count(candidate.head.pred) > 0) continue;
      bool has_derived = false;
      for (const Atom& lit : candidate.body) {
        if (idb.count(lit.pred) > 0) has_derived = true;
      }
      if (!has_derived) continue;
      // Profitable only if some other (non-auxiliary) rule embeds the
      // pattern.
      std::vector<size_t> targets;
      for (size_t r2 = 0; r2 < p.rules().size(); ++r2) {
        if (r2 == r1) continue;
        if (result.aux_preds.count(p.rules()[r2].head.pred) > 0) continue;
        if (FindMatch(candidate.body, p.rules()[r2].body)) {
          targets.push_back(r2);
        }
      }
      if (targets.empty()) continue;

      // Fold: introduce the auxiliary over the pattern's variables.
      std::vector<SymbolId> vars = PatternVars(candidate.body);
      PredId aux = ctx.FreshPredicate(
          "fold", static_cast<uint32_t>(vars.size()));
      result.aux_preds.insert(aux);
      std::vector<Atom> pattern = candidate.body;

      Rule defining;
      defining.head.pred = aux;
      for (SymbolId v : vars) defining.head.args.push_back(Term::Var(v));
      defining.body = pattern;

      Rule folded;
      folded.head = candidate.head;
      folded.body.push_back(defining.head);
      p.mutable_rules()[r1] = std::move(folded);
      ++result.rules_folded;

      for (size_t r2 : targets) {
        Rule& rule = p.mutable_rules()[r2];
        for (;;) {
          std::optional<Match> match = FindMatch(pattern, rule.body);
          if (!match) break;
          Atom replacement;
          replacement.pred = aux;
          for (SymbolId v : vars) {
            auto it = match->mapping.find(v);
            // Every pattern variable occurs in the pattern, so it is
            // mapped.
            replacement.args.push_back(it->second);
          }
          std::vector<Atom> new_body;
          std::unordered_set<size_t> drop(match->positions.begin(),
                                          match->positions.end());
          for (size_t i = 0; i < rule.body.size(); ++i) {
            if (drop.count(i) == 0) new_body.push_back(rule.body[i]);
          }
          new_body.push_back(std::move(replacement));
          rule.body = std::move(new_body);
          ++result.bodies_folded;
        }
      }
      p.AddRule(std::move(defining));
      changed = true;
    }
  }
  return result;
}

Result<Program> UnfoldAuxiliaries(const Program& program,
                                  const std::unordered_set<PredId>& targets) {
  Program out = program.Clone();
  Context& ctx = program.ctx();
  bool changed = true;
  while (changed) {
    changed = false;
    for (PredId aux : targets) {
      if (out.query() && out.query()->pred == aux) continue;
      std::vector<size_t> defs = out.RulesDefining(aux);
      if (defs.size() != 1) continue;
      const Rule def = out.rules()[defs[0]];
      if (def.BodyContains(aux)) continue;  // directly recursive
      bool head_ok = true;
      std::unordered_set<SymbolId> head_vars;
      for (const Term& t : def.head.args) {
        if (!t.IsVar() || !head_vars.insert(t.id()).second) head_ok = false;
      }
      if (!head_ok) continue;
      bool used_negated = false;
      bool used_anywhere = false;
      for (const Rule& r : out.rules()) {
        for (const Atom& lit : r.body) {
          if (lit.pred != aux) continue;
          used_anywhere = true;
          used_negated = used_negated || lit.negated;
        }
      }
      if (used_negated) continue;

      std::vector<Rule> new_rules;
      for (size_t ri = 0; ri < out.rules().size(); ++ri) {
        if (ri == defs[0]) continue;  // drop the definition
        Rule rule = out.rules()[ri];
        for (;;) {
          size_t pos = rule.body.size();
          for (size_t i = 0; i < rule.body.size(); ++i) {
            if (rule.body[i].pred == aux) {
              pos = i;
              break;
            }
          }
          if (pos == rule.body.size()) break;
          Atom call = rule.body[pos];
          // Substitution: definition head var -> call argument; other
          // definition variables get fresh names per inlining site.
          std::unordered_map<SymbolId, Term> subst;
          for (size_t i = 0; i < def.head.args.size(); ++i) {
            subst.emplace(def.head.args[i].id(), call.args[i]);
          }
          std::vector<Atom> inlined;
          for (const Atom& lit : def.body) {
            Atom copy = lit;
            for (Term& t : copy.args) {
              if (!t.IsVar()) continue;
              auto it = subst.find(t.id());
              if (it == subst.end()) {
                it = subst.emplace(t.id(), Term::Var(ctx.FreshSymbol("I")))
                         .first;
              }
              t = it->second;
            }
            inlined.push_back(std::move(copy));
          }
          rule.body.erase(rule.body.begin() +
                          static_cast<std::ptrdiff_t>(pos));
          rule.body.insert(rule.body.end(), inlined.begin(), inlined.end());
        }
        new_rules.push_back(std::move(rule));
      }
      out.mutable_rules() = std::move(new_rules);
      (void)used_anywhere;
      changed = true;
      break;  // rule indices shifted; rescan
    }
  }
  return out;
}

}  // namespace exdl
