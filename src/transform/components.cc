#include "transform/components.h"

#include <unordered_set>

#include "analysis/connectivity.h"

namespace exdl {

Result<ComponentResult> ExtractComponents(const Program& program) {
  Context& ctx = program.ctx();
  ComponentResult result{Program(program.context()), 0, 0};
  std::vector<Rule> boolean_rules;

  for (const Rule& rule : program.rules()) {
    BodyComponents parts = ComputeBodyComponents(ctx, rule);
    // A single component needs no splitting: either it contains the head,
    // or the head is boolean/ground and the rule already is a
    // single-subquery rule (Lemma 3.1's "unless the head is boolean").
    if (parts.components.size() <= 1) {
      result.program.AddRule(rule);
      continue;
    }

    std::vector<SymbolId> head_vars;
    rule.head.CollectVars(&head_vars);
    std::unordered_set<SymbolId> head_var_set(head_vars.begin(),
                                              head_vars.end());

    std::unordered_set<size_t> detached_atoms;
    std::vector<Atom> boolean_literals;
    for (size_t c = 0; c < parts.components.size(); ++c) {
      if (c == parts.head_component) continue;
      const std::vector<size_t>& member_atoms = parts.components[c];
      // Detaching is only safe when the component shares no variable with
      // the head (see header comment about 'd' head positions).
      bool touches_head = false;
      for (size_t a : member_atoms) {
        for (const Term& t : rule.body[a].args) {
          if (t.IsVar() && head_var_set.count(t.id()) > 0) {
            touches_head = true;
            break;
          }
        }
        if (touches_head) break;
      }
      if (touches_head) continue;
      // A lone 0-ary literal is already a boolean flag; wrapping it in a
      // fresh B_i would only add indirection.
      if (member_atoms.size() == 1 &&
          rule.body[member_atoms[0]].args.empty()) {
        continue;
      }
      PredId boolean_pred = ctx.FreshPredicate("bq", /*arity=*/0);
      Rule defining;
      defining.head = Atom(boolean_pred, {});
      for (size_t a : member_atoms) defining.body.push_back(rule.body[a]);
      boolean_rules.push_back(std::move(defining));
      boolean_literals.emplace_back(boolean_pred, std::vector<Term>{});
      for (size_t a : member_atoms) detached_atoms.insert(a);
      ++result.booleans_created;
    }

    if (detached_atoms.empty()) {
      result.program.AddRule(rule);
      continue;
    }
    ++result.rules_split;
    Rule new_rule;
    new_rule.head = rule.head;
    for (size_t a = 0; a < rule.body.size(); ++a) {
      if (detached_atoms.count(a) == 0) new_rule.body.push_back(rule.body[a]);
    }
    for (Atom& b : boolean_literals) new_rule.body.push_back(std::move(b));
    result.program.AddRule(std::move(new_rule));
  }

  for (Rule& r : boolean_rules) result.program.AddRule(std::move(r));
  if (program.query()) result.program.SetQuery(*program.query());
  return result;
}

}  // namespace exdl
