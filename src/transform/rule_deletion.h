// Algorithm 5.2: the rule-deletion driver.
//
// Repeatedly (a) cleans up dead rules, (b) runs the chosen deletion tests
// and removes one justified rule, until a fixpoint. Three tests of
// increasing power and cost are available, matching the paper's hierarchy:
//
//   Sagiv (uniform equivalence, Example 4)  — cheapest, weakest;
//   summaries (Lemmas 5.1 / 5.3)            — the paper's contribution;
//   optimistic (Theorem 5.2)                — semantic umbrella, priciest.
//
// Each deleted rule's justification is recorded in the log. Every deletion
// preserves uniform query equivalence (hence query equivalence); cleanup
// preserves query equivalence over the input schema.

#ifndef EXDL_TRANSFORM_RULE_DELETION_H_
#define EXDL_TRANSFORM_RULE_DELETION_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "ast/program.h"
#include "equiv/optimistic.h"
#include "equiv/summary_closure.h"
#include "util/status.h"

namespace exdl {

struct DeletionOptions {
  /// Classical clause subsumption (sound under uniform equivalence; the
  /// cheapest test, run first). Catches Example 7's "second rule".
  bool use_subsumption = true;
  bool use_summaries = true;
  bool use_sagiv = false;
  bool use_optimistic = false;
  bool cleanup = true;
  /// The input (EDB) schema for cleanup; when empty it is computed as the
  /// program's base predicates.
  std::unordered_set<PredId> input_preds;
  SummaryClosureOptions closure;
  OptimisticOptions optimistic;
  size_t max_deletions = 10000;
};

struct DeletionResult {
  explicit DeletionResult(Program p) : program(std::move(p)) {}

  Program program;
  size_t deleted_by_subsumption = 0;
  size_t deleted_by_summary = 0;
  size_t deleted_by_sagiv = 0;
  size_t deleted_by_optimistic = 0;
  size_t removed_by_cleanup = 0;
  std::vector<std::string> log;
  /// Rules (by value) that some summary justification leaned on; the
  /// optimizer must not retract these (see core/optimizer.cc).
  std::vector<Rule> justification_rules;
};

Result<DeletionResult> DeleteRedundantRules(const Program& program,
                                            const DeletionOptions& options);

}  // namespace exdl

#endif  // EXDL_TRANSFORM_RULE_DELETION_H_
