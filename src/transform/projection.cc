#include "transform/projection.h"

#include <unordered_map>

namespace exdl {
namespace {

/// Drops the arguments of `atom` sitting in 'd' positions and retargets it
/// at the projected predicate version.
Atom ProjectAtom(const Atom& atom, PredId projected,
                 const Adornment& adornment) {
  Atom out;
  out.pred = projected;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (adornment.needed(i)) out.args.push_back(atom.args[i]);
  }
  return out;
}

}  // namespace

Result<ProjectionResult> PushProjections(const Program& program) {
  Context& ctx = program.ctx();
  std::unordered_set<PredId> idb = program.IdbPredicates();
  if (program.query()) idb.insert(program.query()->pred);

  // Plan the replacement for every projectable predicate version.
  std::unordered_map<PredId, PredId> replacement;
  size_t positions_dropped = 0;
  for (PredId p : idb) {
    // Copy: InternPredicate below may grow the predicate table and
    // invalidate references into it.
    const PredicateInfo info = ctx.predicate(p);
    if (info.adornment.empty() || info.IsProjected()) continue;
    if (!info.adornment.HasExistential()) continue;
    uint32_t new_arity =
        static_cast<uint32_t>(info.adornment.CountNeeded());
    PredId projected =
        ctx.InternPredicate(info.name, new_arity, info.adornment);
    replacement.emplace(p, projected);
    positions_dropped += info.arity - new_arity;
  }

  ProjectionResult result{Program(program.context()), replacement.size(),
                          positions_dropped};
  auto rewrite = [&](const Atom& atom) -> Atom {
    auto it = replacement.find(atom.pred);
    if (it == replacement.end()) return atom;
    return ProjectAtom(atom, it->second,
                       ctx.predicate(atom.pred).adornment);
  };
  for (const Rule& rule : program.rules()) {
    Rule new_rule;
    new_rule.head = rewrite(rule.head);
    for (const Atom& lit : rule.body) new_rule.body.push_back(rewrite(lit));
    result.program.AddRule(std::move(new_rule));
  }
  if (program.query()) result.program.SetQuery(rewrite(*program.query()));
  return result;
}

}  // namespace exdl
