// Cascade cleanup after rule deletion (used in Examples 6, 7 and 8):
//   (1) a derived-only predicate (not an input relation) with no defining
//       rules is empty, so rules whose bodies mention it can never fire;
//   (2) rules whose head predicate is unreachable from the query never
//       contribute to an answer.
// Both removals preserve query equivalence over instances of the *input*
// schema; iterated to a fixpoint. (They do not preserve uniform
// equivalence — internal predicates such as adorned versions and boolean
// components are not part of the input vocabulary, which is exactly the
// paper's reading in Example 6.)

#ifndef EXDL_TRANSFORM_CLEANUP_H_
#define EXDL_TRANSFORM_CLEANUP_H_

#include <unordered_set>

#include "ast/program.h"
#include "util/status.h"

namespace exdl {

struct CleanupResult {
  Program program;
  size_t rules_removed = 0;
};

/// `input_preds`: the predicates an input database may populate (the
/// original EDB schema). Every other predicate is internal.
Result<CleanupResult> CleanupProgram(
    const Program& program, const std::unordered_set<PredId>& input_preds);

}  // namespace exdl

#endif  // EXDL_TRANSFORM_CLEANUP_H_
