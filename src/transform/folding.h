// Folding — the rewriting "guess" of Example 11.
//
// Example 9's fourth rule is deletable under uniform query equivalence but
// the summary tests cannot see it because no unit rule matches. Example 11
// fixes this by *folding*: the body of an almost-unit rule (one derived
// literal plus extra literals) becomes a fresh auxiliary predicate
//
//     p^nd(X)        :- q^nn(X,Y,Z,U).
//     q^nn(X,Y,Z,U)  :- p^nn(X,Y), g3(Y,Z,U).
//
// and every other rule containing an instance of the same body pattern is
// folded onto the auxiliary too, after which the first rule IS a unit rule
// and Lemma 5.1/5.3 fire. The paper calls the choice of what to fold
// "essentially a guess"; the heuristic here folds a rule body exactly when
// some *other* rule contains a homomorphic instance of it (so the fold can
// actually enable a subsumption).
//
// UnfoldSingleRuleAuxiliaries inverts the move after deletion has run:
// every surviving auxiliary (single defining rule, non-recursive, used
// only positively) is inlined away, so folding never leaves residue.

#ifndef EXDL_TRANSFORM_FOLDING_H_
#define EXDL_TRANSFORM_FOLDING_H_

#include <unordered_set>

#include "ast/program.h"
#include "util/status.h"

namespace exdl {

struct FoldingResult {
  Program program;
  size_t rules_folded = 0;     ///< Candidate rules turned into unit rules.
  size_t bodies_folded = 0;    ///< Pattern instances replaced elsewhere.
  std::unordered_set<PredId> aux_preds;  ///< The introduced predicates.
};

/// Applies the Example 11 fold to every profitable candidate (see file
/// comment). Positive programs only (folding through negation would hide
/// literals under the auxiliary).
Result<FoldingResult> FoldAlmostUnitRules(const Program& program);

/// Inlines away predicates in `targets` that are defined by exactly one
/// non-recursive rule and never used negated. Predicates that do not meet
/// the conditions are left untouched.
Result<Program> UnfoldAuxiliaries(const Program& program,
                                  const std::unordered_set<PredId>& targets);

}  // namespace exdl

#endif  // EXDL_TRANSFORM_FOLDING_H_
