// Unit-rule addition via the *covers* relation (Section 5).
//
// q^a1 covers q^a when both adorn the same base predicate at the same
// original arity and every needed position of a is needed in a1. Any tuple
// of the covering version is then a tuple of the covered one, so the unit
// rule q^a(t) :- q^a1(t1) may always be added. The paper adds such rules
// for existential queries before running the deletion algorithm ("with the
// addition of such rules, the algorithm often captures the essence of
// pushing projections").

#ifndef EXDL_TRANSFORM_UNIT_RULES_H_
#define EXDL_TRANSFORM_UNIT_RULES_H_

#include "ast/program.h"
#include "util/status.h"

namespace exdl {

struct UnitRuleResult {
  Program program;
  size_t rules_added = 0;
  /// The rules that were added (so the optimizer can retract survivors
  /// that turned out not to enable any deletion).
  std::vector<Rule> added;
};

/// Adds q^a(t) :- q^a1(t1) for every pair of predicate versions present in
/// the program where a1 strictly covers a. Already-present rules are not
/// duplicated. Works on projected programs (stored args = needed args).
Result<UnitRuleResult> AddCoveringUnitRules(const Program& program);

}  // namespace exdl

#endif  // EXDL_TRANSFORM_UNIT_RULES_H_
