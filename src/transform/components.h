// Connected-component extraction (Section 3.1, Lemma 3.1).
//
// Each rule body is partitioned into variable-connectivity components; a
// component disconnected from the head becomes a fresh 0-ary boolean
// predicate B_i defined by its own rule `B_i :- C_i`, and the original
// body keeps only the head component plus the B_i literals (Example 2).
// At run time the evaluator retires a boolean rule once it has fired —
// the bottom-up analogue of Prolog's cut.
//
// A component that touches the head only through existential ('d') head
// positions is left in place: detaching it would unbind a head variable.
// Running PushProjections first removes those positions, after which this
// pass detaches the component — together the two passes produce exactly
// the paper's phase-1+2 rewriting.

#ifndef EXDL_TRANSFORM_COMPONENTS_H_
#define EXDL_TRANSFORM_COMPONENTS_H_

#include "ast/program.h"
#include "util/status.h"

namespace exdl {

struct ComponentResult {
  Program program;
  size_t booleans_created = 0;  ///< Fresh B_i predicates introduced.
  size_t rules_split = 0;       ///< Rules that lost at least one component.
};

Result<ComponentResult> ExtractComponents(const Program& program);

}  // namespace exdl

#endif  // EXDL_TRANSFORM_COMPONENTS_H_
