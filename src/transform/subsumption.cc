#include "transform/subsumption.h"

#include <functional>
#include <unordered_map>

#include "ast/printer.h"

namespace exdl {
namespace {

/// Tries to extend the substitution so that θ(from) == to.
bool UnifyOneWay(const Atom& from, const Atom& to,
                 std::unordered_map<SymbolId, Term>* theta) {
  if (from.pred != to.pred || from.negated != to.negated) return false;
  for (size_t i = 0; i < from.args.size(); ++i) {
    const Term& f = from.args[i];
    const Term& t = to.args[i];
    if (f.IsConst()) {
      if (!(t.IsConst() && t.id() == f.id())) return false;
      continue;
    }
    auto [it, inserted] = theta->emplace(f.id(), t);
    if (!inserted && !(it->second == t)) return false;
  }
  return true;
}

}  // namespace

bool Subsumes(const Rule& general, const Rule& specific) {
  if (general.head.pred != specific.head.pred) return false;
  if (&general == &specific) return false;
  std::unordered_map<SymbolId, Term> theta;
  if (!UnifyOneWay(general.head, specific.head, &theta)) return false;
  // Match every body literal of the general rule onto some literal of the
  // specific rule (literals may share targets: subsumption is a set
  // inclusion, not a multiset one).
  std::function<bool(size_t)> search =
      [&](size_t k) -> bool {
    if (k == general.body.size()) return true;
    for (const Atom& target : specific.body) {
      std::unordered_map<SymbolId, Term> saved = theta;
      if (UnifyOneWay(general.body[k], target, &theta)) {
        if (search(k + 1)) return true;
      }
      theta = std::move(saved);
    }
    return false;
  };
  return search(0);
}

Result<SubsumptionResult> RemoveSubsumedRules(const Program& program) {
  SubsumptionResult result{Program(program.context()), 0, {}};
  const Context& ctx = program.ctx();
  const std::vector<Rule>& rules = program.rules();
  std::vector<bool> removed(rules.size(), false);
  for (size_t i = 0; i < rules.size(); ++i) {
    if (removed[i]) continue;
    for (size_t j = 0; j < rules.size(); ++j) {
      if (i == j || removed[j] || removed[i]) continue;
      if (Subsumes(rules[j], rules[i])) {
        // Identical rules subsume each other; keep the earlier one.
        if (j > i && Subsumes(rules[i], rules[j])) continue;
        removed[i] = true;
        result.log.push_back("subsumption deleted: " +
                             ToString(ctx, rules[i]) + "  (by: " +
                             ToString(ctx, rules[j]) + ")");
        ++result.rules_removed;
      }
    }
  }
  for (size_t i = 0; i < rules.size(); ++i) {
    if (!removed[i]) result.program.AddRule(rules[i]);
  }
  if (program.query()) result.program.SetQuery(*program.query());
  return result;
}

}  // namespace exdl
