#include "daemon/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "daemon/frame_io.h"
#include "eval/evaluator.h"
#include "obs/json_writer.h"
#include "recovery/fault.h"
#include "service/answer_text.h"
#include "service/edb_recovery.h"

namespace exdl::daemon {

namespace {

/// How often a blocked AWAIT re-checks the client socket for a
/// disconnect. Small enough that abandoned work is reclaimed promptly,
/// large enough that a long evaluation costs a handful of wakeups.
constexpr std::chrono::milliseconds kAwaitPollInterval(25);

void SetRecvTimeout(int fd, uint32_t ms) {
  timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

bool FaultAt(std::string_view site) {
  return FaultPlan::Global().armed() && FaultPlan::Global().ShouldFail(site);
}

}  // namespace

DaemonServer::DaemonServer(DaemonOptions options)
    : options_(std::move(options)),
      service_(options_.service),
      admission_(options_.policy, options_.max_pending) {
  counters_.queue_capacity = options_.max_pending;
}

DaemonServer::~DaemonServer() { Stop(); }

Status DaemonServer::BindUnix() {
  if (options_.socket_path.empty()) {
    return Status::InvalidArgument("daemon socket path is empty");
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof addr.sun_path) {
    return Status::InvalidArgument("socket path too long: " +
                                   options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    if (errno != EADDRINUSE) {
      const int err = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::Internal("bind(" + options_.socket_path +
                              "): " + std::strerror(err));
    }
    // The path exists. A SIGKILLed daemon leaves its socket file behind;
    // probe it — refused means stale, so unlink and claim it. A live
    // daemon answers the connect and keeps the path.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    const bool live =
        probe >= 0 &&
        ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
    if (probe >= 0) ::close(probe);
    if (live) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::FailedPrecondition("a daemon is already listening on " +
                                        options_.socket_path);
    }
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0) {
      const int err = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::Internal("bind(" + options_.socket_path +
                              ") after unlinking stale socket: " +
                              std::strerror(err));
    }
  }
  return Status::Ok();
}

Status DaemonServer::BindTcp() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.tcp_port);
  if (::inet_pton(AF_INET, options_.tcp_host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad TCP listen address: " +
                                   options_.tcp_host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind(" + options_.tcp_host + ":" +
                            std::to_string(options_.tcp_port) +
                            "): " + std::strerror(err));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    bound_tcp_port_ = ntohs(addr.sin_port);
  }
  return Status::Ok();
}

Status DaemonServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("daemon already started");
  }
  if (!options_.durability.data_dir.empty()) {
    // Recover the durable EDB before any socket exists: no client can
    // observe a partially replayed database. Replay goes through the
    // service's normal LoadFacts path (minus re-logging), so the
    // recovered interning state matches the pre-crash daemon's exactly.
    durable_ = std::make_shared<durability::DurableEdb>(options_.durability);
    EXDL_RETURN_IF_ERROR(durable_->Open());
    EXDL_RETURN_IF_ERROR(RecoverDurableEdb(*durable_, service_));
    service_.AttachDurability(durable_);
  }
  EXDL_RETURN_IF_ERROR(options_.use_tcp ? BindTcp() : BindUnix());
  if (::listen(listen_fd_, 64) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("listen(): ") + std::strerror(err));
  }
  if (::pipe(wake_pipe_) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("pipe(): ") + std::strerror(errno));
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void DaemonServer::RequestDrain() {
  if (draining_.exchange(true)) return;
  if (wake_pipe_[1] >= 0) {
    const char byte = 'd';
    [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  }
}

void DaemonServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  RequestDrain();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Grace period: let connections whose queries are finishing disconnect
  // on their own.
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_cv_.wait_for(lock,
                      std::chrono::milliseconds(options_.drain_timeout_ms),
                      [&] { return conn_fds_.empty(); });
    // Force the stragglers: waking their reads sends each connection
    // through the normal reclamation path (cancel + drain + release).
    for (const auto& [id, fd] : conn_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  std::unordered_map<uint64_t, std::thread> threads;
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_cv_.wait(lock, [&] { return conn_fds_.empty(); });
    threads.swap(conn_threads_);
    finished_.clear();
  }
  for (auto& [id, thread] : threads) {
    if (thread.joinable()) thread.join();
  }
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  if (!options_.use_tcp && started_.load() && !options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
}

void DaemonServer::JoinFinishedThreads() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (uint64_t id : finished_) {
      auto it = conn_threads_.find(id);
      if (it != conn_threads_.end()) {
        done.push_back(std::move(it->second));
        conn_threads_.erase(it);
      }
    }
    finished_.clear();
  }
  for (std::thread& thread : done) {
    if (thread.joinable()) thread.join();
  }
}

void DaemonServer::AcceptLoop() {
  while (!draining()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, 500);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (draining()) break;
    JoinFinishedThreads();
    if (rc == 0 || (fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN) continue;
      break;
    }
    if (FaultAt("daemon.accept")) {
      // Injected accept failure: the client sees its connection die at
      // birth (a clean torn-connection signal) and retries.
      ::close(fd);
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.connections_rejected;
      continue;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    const uint64_t id = next_conn_id_++;
    conn_fds_.emplace(id, fd);
    conn_threads_.emplace(id,
                          std::thread([this, id, fd] {
                            HandleConnection(id, fd);
                          }));
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

Status DaemonServer::ServerReadFrame(int fd, Frame* out, bool* clean_eof) {
  if (FaultAt("daemon.read")) {
    *clean_eof = false;
    return Status::Unavailable("injected fault at daemon.read");
  }
  return ReadFrame(fd, out, clean_eof);
}

Status DaemonServer::ServerWriteFrame(int fd, std::string_view payload) {
  if (FaultAt("daemon.write")) {
    // Simulate a half-written frame: emit a length prefix promising more
    // bytes than will ever come, then fail. The peer must treat the torn
    // frame as a connection loss, never as a short message.
    const char prefix[4] = {0x40, 0, 0, 0};
    [[maybe_unused]] ssize_t ignored =
        ::send(fd, prefix, sizeof prefix, MSG_NOSIGNAL);
    return Status::Unavailable("injected fault at daemon.write");
  }
  return WriteFrame(fd, payload);
}

void DaemonServer::HandleConnection(uint64_t conn_id, int fd) {
  Connection conn;
  conn.id = conn_id;
  conn.fd = fd;
  bool negotiated = false;
  // A peer must finish HELLO within the handshake deadline; afterwards the
  // connection may sit idle indefinitely (disconnects are what end it).
  SetRecvTimeout(fd, options_.hello_timeout_ms);
  Frame frame;
  bool clean_eof = false;
  Status status = ServerReadFrame(fd, &frame, &clean_eof);
  if (status.ok() && frame.type == MsgType::kHello) {
    HelloMsg hello;
    status = Decode(frame.body, &hello);
    if (status.ok() && hello.magic != kProtocolMagic) {
      status = Status::InvalidArgument("bad protocol magic");
    }
    if (status.ok()) {
      const uint32_t version =
          std::min(kProtocolVersionMax, hello.max_version);
      if (version < kProtocolVersionMin || version < hello.min_version) {
        ErrorMsg err;
        err.code = static_cast<uint32_t>(StatusCode::kFailedPrecondition);
        err.message = "no common protocol version (server speaks " +
                      std::to_string(kProtocolVersionMin) + ".." +
                      std::to_string(kProtocolVersionMax) + ")";
        ServerWriteFrame(fd, Encode(err));
        status = Status::FailedPrecondition(err.message);
      } else if (draining()) {
        ErrorMsg err;
        err.code = static_cast<uint32_t>(StatusCode::kUnavailable);
        err.message = "server is draining";
        ServerWriteFrame(fd, Encode(err));
        status = Status::Unavailable(err.message);
      } else {
        SetRecvTimeout(fd, 0);
        conn.tenant = hello.tenant;
        conn.version = version;
        HelloAckMsg ack;
        ack.version = version;
        ack.server = "exdld/1";
        status = ServerWriteFrame(fd, Encode(ack));
        negotiated = status.ok();
      }
    }
  } else if (status.ok()) {
    status = Status::InvalidArgument("expected HELLO");
  }
  if (negotiated) {
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.connections_accepted;
      ++counters_.connections_active;
    }
    ServeFrames(conn);
    // Whatever ended the loop — clean close, torn frame, injected fault —
    // the connection's undelivered work is cancelled and reclaimed so the
    // next client finds a healthy server.
    ReclaimConnection(conn);
    std::lock_guard<std::mutex> lock(counters_mu_);
    --counters_.connections_active;
  } else {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.connections_rejected;
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(conn_id);
    finished_.push_back(conn_id);
  }
  conn_cv_.notify_all();
}

Status DaemonServer::ServeFrames(Connection& conn) {
  while (true) {
    Frame frame;
    bool clean_eof = false;
    Status status = ServerReadFrame(conn.fd, &frame, &clean_eof);
    if (!status.ok()) {
      return clean_eof ? Status::Ok() : status;
    }
    switch (frame.type) {
      case MsgType::kSubmit:
        status = HandleSubmit(conn, frame.body);
        break;
      case MsgType::kAwait:
        status = HandleAwait(conn, frame.body);
        break;
      case MsgType::kLoadFacts:
        status = HandleLoadFacts(conn, frame.body);
        break;
      case MsgType::kStats:
        status = HandleStats(conn);
        break;
      case MsgType::kCancel:
        status = HandleCancel(conn, frame.body);
        break;
      case MsgType::kShutdown:
        status = HandleShutdown(conn);
        break;
      case MsgType::kRegisterQuery:
      case MsgType::kUnregisterQuery:
      case MsgType::kPollResult: {
        if (conn.version < 2) {
          // Known-but-too-new type on a v1 connection: a protocol error
          // the client caused, not a reason to drop it.
          ErrorMsg err;
          err.code = static_cast<uint32_t>(StatusCode::kFailedPrecondition);
          err.message =
              "standing queries need protocol version 2 (connection "
              "negotiated 1)";
          status = ServerWriteFrame(conn.fd, Encode(err));
          break;
        }
        if (frame.type == MsgType::kRegisterQuery) {
          status = HandleRegisterQuery(conn, frame.body);
        } else if (frame.type == MsgType::kUnregisterQuery) {
          status = HandleUnregisterQuery(conn, frame.body);
        } else {
          status = HandlePollResult(conn, frame.body);
        }
        break;
      }
      default: {
        ErrorMsg err;
        err.code = static_cast<uint32_t>(StatusCode::kInvalidArgument);
        err.message = "unexpected message type from client";
        status = ServerWriteFrame(conn.fd, Encode(err));
        break;
      }
    }
    if (!status.ok()) return status;
  }
}

Status DaemonServer::HandleSubmit(Connection& conn, std::string_view body) {
  SubmitMsg submit;
  Status decoded = Decode(body, &submit);
  if (!decoded.ok()) return decoded;  // Protocol violation: drop the peer.
  if (draining()) {
    ErrorMsg err;
    err.code = static_cast<uint32_t>(StatusCode::kUnavailable);
    err.message = "server is draining";
    return ServerWriteFrame(conn.fd, Encode(err));
  }
  if (FaultAt("daemon.dispatch")) {
    ErrorMsg err;
    err.code = static_cast<uint32_t>(StatusCode::kUnavailable);
    err.message = "injected fault at daemon.dispatch";
    return ServerWriteFrame(conn.fd, Encode(err));
  }
  AdmissionController::Decision decision = admission_.TryAdmit(
      conn.tenant, submit.deadline_ms, submit.max_tuples, submit.max_bytes);
  if (!decision.admitted) {
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.backpressure_events;
    }
    RetryLaterMsg retry;
    retry.backoff_ms = decision.retry_after_ms;
    retry.reason = decision.reason;
    return ServerWriteFrame(conn.fd, Encode(retry));
  }
  auto token = std::make_shared<CancellationToken>();
  QueryRequest request;
  request.source = std::move(submit.source);
  request.name = std::move(submit.name);
  request.tenant = conn.tenant;
  EvalBudget budget;
  budget.deadline_ms = decision.effective.deadline_ms;
  budget.max_tuples = decision.effective.max_tuples;
  budget.max_arena_bytes = decision.effective.max_bytes;
  budget.cancellation = token.get();
  request.budget = budget;
  request.cancellation = token.get();
  if (submit.representation != 0) {
    std::optional<Representation> repr =
        RepresentationFromWire(submit.representation);
    if (!repr.has_value()) {
      admission_.Release(conn.tenant);
      ErrorMsg err;
      err.code = static_cast<uint32_t>(StatusCode::kInvalidArgument);
      err.message = "unknown representation wire value " +
                    std::to_string(submit.representation);
      return ServerWriteFrame(conn.fd, Encode(err));
    }
    request.representation = repr;
  }
  const QueryService::Ticket ticket = service_.Submit(std::move(request));
  conn.inflight.emplace(ticket, std::move(token));
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.submits_admitted;
    counters_.queue_depth = admission_.inflight();
  }
  TicketMsg reply;
  reply.ticket = ticket;
  reply.deadline_ms = decision.effective.deadline_ms;
  reply.max_tuples = decision.effective.max_tuples;
  reply.max_bytes = decision.effective.max_bytes;
  return ServerWriteFrame(conn.fd, Encode(reply));
}

Status DaemonServer::HandleAwait(Connection& conn, std::string_view body) {
  AwaitMsg await;
  Status decoded = Decode(body, &await);
  if (!decoded.ok()) return decoded;
  if (conn.inflight.find(await.ticket) == conn.inflight.end()) {
    ErrorMsg err;
    err.code = static_cast<uint32_t>(StatusCode::kNotFound);
    err.message = "ticket " + std::to_string(await.ticket) +
                  " is not in flight on this connection";
    return ServerWriteFrame(conn.fd, Encode(err));
  }
  std::optional<QueryResponse> response;
  while (true) {
    response = service_.AwaitFor(await.ticket, kAwaitPollInterval);
    if (response.has_value()) break;
    if (PeerClosed(conn.fd)) {
      // The client vanished mid-await. Surface it as a connection loss;
      // HandleConnection's reclamation cancels the abandoned query.
      return Status::Unavailable("client disconnected mid-await");
    }
  }
  conn.inflight.erase(await.ticket);
  admission_.Release(conn.tenant);
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    counters_.queue_depth = admission_.inflight();
  }
  ResultMsg result;
  result.ticket = await.ticket;
  result.status_code = static_cast<uint32_t>(response->status.code());
  result.status_message = response->status.message();
  if (response->status.ok()) {
    result.termination_code =
        static_cast<uint32_t>(response->result.termination.code());
    result.termination_message = response->result.termination.message();
    result.budget_kind =
        std::string(BudgetKindName(response->result.stats.budget_tripped));
    result.stats_text = response->result.stats.ToString();
    result.answer_count = response->result.answers.size();
    result.answers = RenderAnswerRows(*service_.ctx(), response->result.answers);
    result.cache_hit = response->cache_hit ? 1 : 0;
  }
  return ServerWriteFrame(conn.fd, Encode(result));
}

Status DaemonServer::HandleLoadFacts(Connection& conn, std::string_view body) {
  LoadFactsMsg msg;
  Status decoded = Decode(body, &msg);
  if (!decoded.ok()) return decoded;
  if (draining()) {
    ErrorMsg err;
    err.code = static_cast<uint32_t>(StatusCode::kUnavailable);
    err.message = "server is draining";
    return ServerWriteFrame(conn.fd, Encode(err));
  }
  if (options_.max_facts_bytes != 0 &&
      msg.source.size() > options_.max_facts_bytes) {
    ErrorMsg err;
    err.code = static_cast<uint32_t>(StatusCode::kResourceExhausted);
    err.message = "LOAD_FACTS source of " + std::to_string(msg.source.size()) +
                  " bytes exceeds the server's --max-facts-bytes quota (" +
                  std::to_string(options_.max_facts_bytes) + ")";
    return ServerWriteFrame(conn.fd, Encode(err));
  }
  Status loaded = service_.LoadFacts(msg.source);
  if (loaded.ok()) {
    return ServerWriteFrame(conn.fd, EncodeEmpty(MsgType::kOk));
  }
  ErrorMsg err;
  err.code = static_cast<uint32_t>(loaded.code());
  err.message = loaded.message();
  return ServerWriteFrame(conn.fd, Encode(err));
}

Status DaemonServer::HandleCancel(Connection& conn, std::string_view body) {
  CancelMsg msg;
  Status decoded = Decode(body, &msg);
  if (!decoded.ok()) return decoded;
  const auto it = conn.inflight.find(msg.ticket);
  if (it == conn.inflight.end()) {
    ErrorMsg err;
    err.code = static_cast<uint32_t>(StatusCode::kNotFound);
    err.message = "ticket " + std::to_string(msg.ticket) +
                  " is not in flight on this connection";
    return ServerWriteFrame(conn.fd, Encode(err));
  }
  it->second->Cancel();
  // The ticket stays in flight: the client may still AWAIT it for the
  // consistent partial result (termination = Cancelled).
  return ServerWriteFrame(conn.fd, EncodeEmpty(MsgType::kOk));
}

Status DaemonServer::HandleRegisterQuery(Connection& conn,
                                         std::string_view body) {
  RegisterQueryMsg msg;
  Status decoded = Decode(body, &msg);
  if (!decoded.ok()) return decoded;  // Protocol violation: drop the peer.
  if (draining()) {
    ErrorMsg err;
    err.code = static_cast<uint32_t>(StatusCode::kUnavailable);
    err.message = "server is draining";
    return ServerWriteFrame(conn.fd, Encode(err));
  }
  // The seeding evaluation is a full query: it takes an admission slot
  // under the tenant's quota like any SUBMIT, held for the (synchronous)
  // registration. Maintenance afterwards is server-internal and not
  // admission-controlled.
  AdmissionController::Decision decision =
      admission_.TryAdmit(conn.tenant, msg.submit.deadline_ms,
                          msg.submit.max_tuples, msg.submit.max_bytes);
  if (!decision.admitted) {
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.backpressure_events;
    }
    RetryLaterMsg retry;
    retry.backoff_ms = decision.retry_after_ms;
    retry.reason = decision.reason;
    return ServerWriteFrame(conn.fd, Encode(retry));
  }
  QueryRequest request;
  request.source = std::move(msg.submit.source);
  request.name = std::move(msg.submit.name);
  request.tenant = conn.tenant;
  EvalBudget budget;
  budget.deadline_ms = decision.effective.deadline_ms;
  budget.max_tuples = decision.effective.max_tuples;
  budget.max_arena_bytes = decision.effective.max_bytes;
  request.budget = budget;
  if (msg.submit.representation != 0) {
    std::optional<Representation> repr =
        RepresentationFromWire(msg.submit.representation);
    if (!repr.has_value()) {
      admission_.Release(conn.tenant);
      ErrorMsg err;
      err.code = static_cast<uint32_t>(StatusCode::kInvalidArgument);
      err.message = "unknown representation wire value " +
                    std::to_string(msg.submit.representation);
      return ServerWriteFrame(conn.fd, Encode(err));
    }
    request.representation = repr;
  }
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.submits_admitted;
    counters_.queue_depth = admission_.inflight();
  }
  Result<uint64_t> registered =
      service_.RegisterStandingQuery(std::move(request));
  admission_.Release(conn.tenant);
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    counters_.queue_depth = admission_.inflight();
  }
  if (!registered.ok()) {
    ErrorMsg err;
    err.code = static_cast<uint32_t>(registered.status().code());
    err.message = registered.status().message();
    return ServerWriteFrame(conn.fd, Encode(err));
  }
  Result<StandingQueryResult> seeded = service_.PollStandingQuery(*registered);
  RegisteredMsg reply;
  reply.standing_id = *registered;
  if (seeded.ok()) {
    reply.generation = seeded->generation;
    reply.answer_count = seeded->answer_count;
    reply.answers = std::move(seeded->answers);
  }
  return ServerWriteFrame(conn.fd, Encode(reply));
}

Status DaemonServer::HandleUnregisterQuery(Connection& conn,
                                           std::string_view body) {
  UnregisterQueryMsg msg;
  Status decoded = Decode(body, &msg);
  if (!decoded.ok()) return decoded;
  Status unregistered = service_.UnregisterStandingQuery(msg.standing_id);
  if (unregistered.ok()) {
    return ServerWriteFrame(conn.fd, EncodeEmpty(MsgType::kOk));
  }
  ErrorMsg err;
  err.code = static_cast<uint32_t>(unregistered.code());
  err.message = unregistered.message();
  return ServerWriteFrame(conn.fd, Encode(err));
}

Status DaemonServer::HandlePollResult(Connection& conn,
                                      std::string_view body) {
  PollResultMsg msg;
  Status decoded = Decode(body, &msg);
  if (!decoded.ok()) return decoded;
  Result<StandingQueryResult> polled =
      service_.PollStandingQuery(msg.standing_id);
  if (!polled.ok()) {
    ErrorMsg err;
    err.code = static_cast<uint32_t>(polled.status().code());
    err.message = polled.status().message();
    return ServerWriteFrame(conn.fd, Encode(err));
  }
  StandingResultMsg reply;
  reply.standing_id = polled->standing_id;
  reply.generation = polled->generation;
  reply.answer_count = polled->answer_count;
  reply.answers = std::move(polled->answers);
  reply.incremental = polled->last_was_incremental ? 1 : 0;
  reply.fallback = std::string(ivm::FallbackName(polled->fallback));
  reply.delta_rounds = polled->stats.delta_rounds;
  reply.full_recomputes = polled->stats.full_recomputes;
  reply.tuples_rederived = polled->stats.tuples_rederived;
  return ServerWriteFrame(conn.fd, Encode(reply));
}

Status DaemonServer::HandleStats(Connection& conn) {
  StatsReplyMsg reply;
  reply.json = MetricsJson();
  return ServerWriteFrame(conn.fd, Encode(reply));
}

Status DaemonServer::HandleShutdown(Connection& conn) {
  Status acked = ServerWriteFrame(conn.fd, EncodeEmpty(MsgType::kOk));
  RequestDrain();
  if (options_.shutdown_notify_fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] ssize_t ignored =
        ::write(options_.shutdown_notify_fd, &byte, 1);
  }
  return acked;
}

void DaemonServer::ReclaimConnection(Connection& conn) {
  if (conn.inflight.empty()) return;
  for (auto& [ticket, token] : conn.inflight) {
    token->Cancel();
  }
  uint64_t cancelled = 0;
  for (auto& [ticket, token] : conn.inflight) {
    // The cancel lands at the evaluator's next cooperative check, so this
    // blocks only briefly; the response must be drained here or the
    // service's done-map would leak the session's result forever.
    QueryResponse response = service_.Await(ticket);
    if (response.status.ok() &&
        response.result.termination.code() == StatusCode::kCancelled) {
      ++cancelled;
    }
    admission_.Release(conn.tenant);
  }
  conn.inflight.clear();
  std::lock_guard<std::mutex> lock(counters_mu_);
  counters_.cancelled_on_disconnect += cancelled;
  counters_.queue_depth = admission_.inflight();
}

DaemonCounters DaemonServer::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

std::string DaemonServer::MetricsJson() const {
  const DaemonCounters counters = this->counters();
  return service_.MetricsJson([&](obs::JsonWriter& w) {
    w.Key("daemon");
    w.BeginObject();
    w.Key("connections");
    w.BeginObject();
    w.Key("accepted");
    w.UInt(counters.connections_accepted);
    w.Key("active");
    w.UInt(counters.connections_active);
    w.Key("rejected");
    w.UInt(counters.connections_rejected);
    w.EndObject();
    w.Key("queue");
    w.BeginObject();
    w.Key("depth");
    w.UInt(counters.queue_depth);
    w.Key("capacity");
    w.UInt(counters.queue_capacity);
    w.EndObject();
    w.Key("submits_admitted");
    w.UInt(counters.submits_admitted);
    w.Key("backpressure_events");
    w.UInt(counters.backpressure_events);
    w.Key("cancelled_on_disconnect");
    w.UInt(counters.cancelled_on_disconnect);
    if (durable_ != nullptr) {
      const durability::DurabilityCounters d = durable_->counters();
      w.Key("durability");
      w.BeginObject();
      w.Key("records_appended");
      w.UInt(d.records_appended);
      w.Key("records_replayed");
      w.UInt(d.records_replayed);
      w.Key("truncated_tail_bytes");
      w.UInt(d.truncated_tail_bytes);
      w.Key("compactions");
      w.UInt(d.compactions);
      w.Key("snapshot_generation");
      w.UInt(d.snapshot_generation);
      w.Key("recovery_seconds");
      w.Double(d.recovery_seconds);
      w.EndObject();
    }
    w.EndObject();
  });
}

}  // namespace exdl::daemon
