// exdld wire protocol (DESIGN.md §13).
//
// A versioned, length-prefixed binary protocol between one long-lived
// `exdld` server and many cheap `exdlc connect` clients, modeled on the
// nix-daemon worker protocol: the client opens a connection, negotiates a
// protocol version with HELLO/HELLO_ACK, then issues strict request/reply
// exchanges (SUBMIT, AWAIT, LOAD_FACTS, STATS, CANCEL, SHUTDOWN).
//
// Frame layout (everything little-endian):
//
//   u32 length            payload byte count (1 .. kMaxFrameBytes)
//   u8  type              MsgType
//   ...                   message body, per type
//
// Strings are encoded as `u32 length + bytes` (no terminator). Decoding is
// fully bounds-checked: a truncated or oversized frame is rejected with
// kInvalidArgument and never read out of bounds — a torn TCP stream or a
// malicious client cannot crash the daemon.
//
// Error/backpressure semantics: the server answers a SUBMIT with TICKET
// (admitted; echoes the clamped effective budget), RETRY_LATER (the
// submission queue or the tenant's in-flight quota is full; carries a
// suggested backoff the client honors with jittered exponential retry), or
// ERROR. ERROR carries a StatusCode; kUnavailable means transient — retry
// after reconnecting if need be — every other code is a clean terminal
// failure for that request.

#ifndef EXDL_DAEMON_PROTOCOL_H_
#define EXDL_DAEMON_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace exdl::daemon {

/// First u32 of every HELLO: "EXDL" read little-endian. A connection that
/// opens with anything else is not a protocol peer and is dropped.
inline constexpr uint32_t kProtocolMagic = 0x4C445845u;

/// Protocol versions this build can speak. HELLO carries the client's
/// [min, max] range; the server replies with
/// min(kProtocolVersionMax, client max) provided that version also
/// satisfies both minima, and drops the connection otherwise.
inline constexpr uint32_t kProtocolVersionMin = 1;
inline constexpr uint32_t kProtocolVersionMax = 1;

/// Hard cap on one frame's payload. Bounds per-connection memory no matter
/// what the peer claims in the length prefix.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class MsgType : uint8_t {
  kHello = 1,       ///< client -> server: magic, version range, tenant
  kHelloAck = 2,    ///< server -> client: negotiated version, server id
  kSubmit = 3,      ///< client -> server: named query + requested budget
  kTicket = 4,      ///< server -> client: admitted; ticket + clamped budget
  kRetryLater = 5,  ///< server -> client: backpressure; suggested backoff
  kAwait = 6,       ///< client -> server: block for one ticket's result
  kResult = 7,      ///< server -> client: status + answers for a ticket
  kLoadFacts = 8,   ///< client -> server: facts-only source for the EDB
  kOk = 9,          ///< server -> client: generic success (empty body)
  kStats = 10,      ///< client -> server: request the telemetry document
  kStatsReply = 11, ///< server -> client: the telemetry JSON document
  kCancel = 12,     ///< client -> server: cancel an in-flight ticket
  kShutdown = 13,   ///< client -> server: request a graceful drain
  kError = 14,      ///< server -> client: StatusCode + message
};

/// True for the u8 values that correspond to a MsgType enumerator.
bool IsKnownMsgType(uint8_t type);

/// One decoded frame: the type tag plus the raw body bytes (everything
/// after the tag).
struct Frame {
  MsgType type = MsgType::kError;
  std::string body;
};

// ---------------------------------------------------------------------------
// Message bodies.

struct HelloMsg {
  uint32_t magic = kProtocolMagic;
  uint32_t min_version = kProtocolVersionMin;
  uint32_t max_version = kProtocolVersionMax;
  /// Admission-control identity; "" maps to the policy's default quota.
  std::string tenant;
};

struct HelloAckMsg {
  uint32_t version = 0;  ///< Negotiated protocol version.
  std::string server;    ///< Server software id, e.g. "exdld/1".
};

struct SubmitMsg {
  std::string name;    ///< Provenance label echoed into the result.
  std::string source;  ///< Full query source (rules, query, facts).
  /// Requested budget; 0 = "whatever the policy allows". The server clamps
  /// each limit against the tenant quota and echoes the result in TICKET.
  uint64_t deadline_ms = 0;
  uint64_t max_tuples = 0;
  uint64_t max_bytes = 0;
};

struct TicketMsg {
  uint64_t ticket = 0;
  /// The effective (policy-clamped) budget the query runs under.
  uint64_t deadline_ms = 0;
  uint64_t max_tuples = 0;
  uint64_t max_bytes = 0;
};

struct RetryLaterMsg {
  uint32_t backoff_ms = 0;  ///< Suggested wait before resubmitting.
  std::string reason;
};

struct AwaitMsg {
  uint64_t ticket = 0;
};

struct ResultMsg {
  uint64_t ticket = 0;
  /// QueryResponse::status (compile / hard evaluation errors).
  uint32_t status_code = 0;
  std::string status_message;
  /// EvalResult::termination (budget trips; kOk for a full run).
  uint32_t termination_code = 0;
  std::string termination_message;
  std::string budget_kind;  ///< BudgetKindName of stats.budget_tripped.
  std::string stats_text;   ///< EvalStats::ToString (human stderr line).
  uint64_t answer_count = 0;
  /// RenderAnswerRows output — byte-identical to an in-process run.
  std::string answers;
  uint8_t cache_hit = 0;
};

struct LoadFactsMsg {
  std::string source;
};

struct StatsReplyMsg {
  std::string json;
};

struct CancelMsg {
  uint64_t ticket = 0;
};

struct ErrorMsg {
  uint32_t code = 0;  ///< StatusCode of the failure.
  std::string message;
};

// ---------------------------------------------------------------------------
// Encoding. Encode* returns the full frame payload (type tag + body),
// ready for WriteFrame's length prefix.

std::string Encode(const HelloMsg& m);
std::string Encode(const HelloAckMsg& m);
std::string Encode(const SubmitMsg& m);
std::string Encode(const TicketMsg& m);
std::string Encode(const RetryLaterMsg& m);
std::string Encode(const AwaitMsg& m);
std::string Encode(const ResultMsg& m);
std::string Encode(const LoadFactsMsg& m);
std::string Encode(const StatsReplyMsg& m);
std::string Encode(const CancelMsg& m);
std::string Encode(const ErrorMsg& m);
/// Frames with an empty body: kOk, kStats, kShutdown.
std::string EncodeEmpty(MsgType type);

// ---------------------------------------------------------------------------
// Decoding. `body` is Frame::body (the bytes after the type tag). Every
// decoder consumes the exact body and returns kInvalidArgument on a
// truncated, oversized, or trailing-garbage body.

Status Decode(std::string_view body, HelloMsg* out);
Status Decode(std::string_view body, HelloAckMsg* out);
Status Decode(std::string_view body, SubmitMsg* out);
Status Decode(std::string_view body, TicketMsg* out);
Status Decode(std::string_view body, RetryLaterMsg* out);
Status Decode(std::string_view body, AwaitMsg* out);
Status Decode(std::string_view body, ResultMsg* out);
Status Decode(std::string_view body, LoadFactsMsg* out);
Status Decode(std::string_view body, StatsReplyMsg* out);
Status Decode(std::string_view body, CancelMsg* out);
Status Decode(std::string_view body, ErrorMsg* out);

/// Reconstructs a Status from an ErrorMsg, mapping unknown code values to
/// kInternal so a newer server cannot make an older client misbehave.
Status StatusFromWire(uint32_t code, std::string message);

// ---------------------------------------------------------------------------
// Bounds-checked little-endian readers/writers (exposed for tests and the
// frame layer).

class WireWriter {
 public:
  void U8(uint8_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void Str(std::string_view s);
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view buf) : buf_(buf) {}
  Status U8(uint8_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status Str(std::string* s);
  /// kInvalidArgument unless every byte was consumed.
  Status Finish() const;

 private:
  std::string_view buf_;
  size_t pos_ = 0;
};

}  // namespace exdl::daemon

#endif  // EXDL_DAEMON_PROTOCOL_H_
