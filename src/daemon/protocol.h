// exdld wire protocol (DESIGN.md §13).
//
// A versioned, length-prefixed binary protocol between one long-lived
// `exdld` server and many cheap `exdlc connect` clients, modeled on the
// nix-daemon worker protocol: the client opens a connection, negotiates a
// protocol version with HELLO/HELLO_ACK, then issues strict request/reply
// exchanges (SUBMIT, AWAIT, LOAD_FACTS, STATS, CANCEL, SHUTDOWN).
//
// Frame layout (everything little-endian):
//
//   u32 length            payload byte count (1 .. kMaxFrameBytes)
//   u8  type              MsgType
//   ...                   message body, per type
//
// Strings are encoded as `u32 length + bytes` (no terminator). Decoding is
// fully bounds-checked: a truncated or oversized frame is rejected with
// kInvalidArgument and never read out of bounds — a torn TCP stream or a
// malicious client cannot crash the daemon.
//
// Error/backpressure semantics: the server answers a SUBMIT with TICKET
// (admitted; echoes the clamped effective budget), RETRY_LATER (the
// submission queue or the tenant's in-flight quota is full; carries a
// suggested backoff the client honors with jittered exponential retry), or
// ERROR. ERROR carries a StatusCode; kUnavailable means transient — retry
// after reconnecting if need be — every other code is a clean terminal
// failure for that request.

#ifndef EXDL_DAEMON_PROTOCOL_H_
#define EXDL_DAEMON_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "storage/representation.h"
#include "util/status.h"

namespace exdl::daemon {

/// First u32 of every HELLO: "EXDL" read little-endian. A connection that
/// opens with anything else is not a protocol peer and is dropped.
inline constexpr uint32_t kProtocolMagic = 0x4C445845u;

/// Protocol versions this build can speak. HELLO carries the client's
/// [min, max] range; the server replies with
/// min(kProtocolVersionMax, client max) provided that version also
/// satisfies both minima, and drops the connection otherwise.
///
/// Version history:
///   1  initial protocol (SUBMIT .. ERROR).
///   2  standing queries (REGISTER_QUERY, REGISTERED, UNREGISTER_QUERY,
///      POLL_RESULT, STANDING_RESULT) and the SUBMIT representation tail.
///      A v1 peer never sees either: the tail is encoded only on v2
///      connections, and the server answers v2-only message types on a
///      v1 connection with ERROR (kFailedPrecondition), not a drop.
inline constexpr uint32_t kProtocolVersionMin = 1;
inline constexpr uint32_t kProtocolVersionMax = 2;

/// Hard cap on one frame's payload. Bounds per-connection memory no matter
/// what the peer claims in the length prefix.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class MsgType : uint8_t {
  kHello = 1,       ///< client -> server: magic, version range, tenant
  kHelloAck = 2,    ///< server -> client: negotiated version, server id
  kSubmit = 3,      ///< client -> server: named query + requested budget
  kTicket = 4,      ///< server -> client: admitted; ticket + clamped budget
  kRetryLater = 5,  ///< server -> client: backpressure; suggested backoff
  kAwait = 6,       ///< client -> server: block for one ticket's result
  kResult = 7,      ///< server -> client: status + answers for a ticket
  kLoadFacts = 8,   ///< client -> server: facts-only source for the EDB
  kOk = 9,          ///< server -> client: generic success (empty body)
  kStats = 10,      ///< client -> server: request the telemetry document
  kStatsReply = 11, ///< server -> client: the telemetry JSON document
  kCancel = 12,     ///< client -> server: cancel an in-flight ticket
  kShutdown = 13,   ///< client -> server: request a graceful drain
  kError = 14,      ///< server -> client: StatusCode + message
  // Protocol version 2 (standing queries, DESIGN.md §16).
  kRegisterQuery = 15,    ///< client -> server: register a standing query
  kRegistered = 16,       ///< server -> client: standing id + seed answers
  kUnregisterQuery = 17,  ///< client -> server: drop a standing query
  kPollResult = 18,       ///< client -> server: read a maintained view
  kStandingResult = 19,   ///< server -> client: the view's current state
};

/// True for the u8 values that correspond to a MsgType enumerator.
bool IsKnownMsgType(uint8_t type);

/// One decoded frame: the type tag plus the raw body bytes (everything
/// after the tag).
struct Frame {
  MsgType type = MsgType::kError;
  std::string body;
};

// ---------------------------------------------------------------------------
// Message bodies.

struct HelloMsg {
  uint32_t magic = kProtocolMagic;
  uint32_t min_version = kProtocolVersionMin;
  uint32_t max_version = kProtocolVersionMax;
  /// Admission-control identity; "" maps to the policy's default quota.
  std::string tenant;
};

struct HelloAckMsg {
  uint32_t version = 0;  ///< Negotiated protocol version.
  std::string server;    ///< Server software id, e.g. "exdld/1".
};

struct SubmitMsg {
  std::string name;    ///< Provenance label echoed into the result.
  std::string source;  ///< Full query source (rules, query, facts).
  /// Requested budget; 0 = "whatever the policy allows". The server clamps
  /// each limit against the tenant quota and echoes the result in TICKET.
  uint64_t deadline_ms = 0;
  uint64_t max_tuples = 0;
  uint64_t max_bytes = 0;
  /// Requested physical representation (protocol >= 2): 0 = server
  /// default, else 1 + Representation. Encoded only on v2 connections;
  /// the decoder tolerates its absence, so v1 SUBMIT frames still parse.
  uint8_t representation = 0;
};

/// REGISTER_QUERY carries exactly a SUBMIT body (same codec, different
/// type tag): a standing query is an ordinary submission whose result is
/// installed as a maintained view.
struct RegisterQueryMsg {
  SubmitMsg submit;
};

struct RegisteredMsg {
  uint64_t standing_id = 0;
  /// EDB generation the seed answers are current as of.
  uint64_t generation = 0;
  uint64_t answer_count = 0;
  /// RenderAnswerRows output of the seeding evaluation.
  std::string answers;
};

struct UnregisterQueryMsg {
  uint64_t standing_id = 0;
};

struct PollResultMsg {
  uint64_t standing_id = 0;
};

struct StandingResultMsg {
  uint64_t standing_id = 0;
  uint64_t generation = 0;
  uint64_t answer_count = 0;
  /// RenderAnswerRows output — byte-identical to a cold evaluation of the
  /// same source at `generation`.
  std::string answers;
  /// 1 when the last maintenance took the incremental path.
  uint8_t incremental = 1;
  /// ivm::FallbackName of the view's classification ("none" = fast path).
  std::string fallback;
  uint64_t delta_rounds = 0;
  uint64_t full_recomputes = 0;
  uint64_t tuples_rederived = 0;
};

struct TicketMsg {
  uint64_t ticket = 0;
  /// The effective (policy-clamped) budget the query runs under.
  uint64_t deadline_ms = 0;
  uint64_t max_tuples = 0;
  uint64_t max_bytes = 0;
};

struct RetryLaterMsg {
  uint32_t backoff_ms = 0;  ///< Suggested wait before resubmitting.
  std::string reason;
};

struct AwaitMsg {
  uint64_t ticket = 0;
};

struct ResultMsg {
  uint64_t ticket = 0;
  /// QueryResponse::status (compile / hard evaluation errors).
  uint32_t status_code = 0;
  std::string status_message;
  /// EvalResult::termination (budget trips; kOk for a full run).
  uint32_t termination_code = 0;
  std::string termination_message;
  std::string budget_kind;  ///< BudgetKindName of stats.budget_tripped.
  std::string stats_text;   ///< EvalStats::ToString (human stderr line).
  uint64_t answer_count = 0;
  /// RenderAnswerRows output — byte-identical to an in-process run.
  std::string answers;
  uint8_t cache_hit = 0;
};

struct LoadFactsMsg {
  std::string source;
};

struct StatsReplyMsg {
  std::string json;
};

struct CancelMsg {
  uint64_t ticket = 0;
};

struct ErrorMsg {
  uint32_t code = 0;  ///< StatusCode of the failure.
  std::string message;
};

// ---------------------------------------------------------------------------
// Encoding. Encode* returns the full frame payload (type tag + body),
// ready for WriteFrame's length prefix.

std::string Encode(const HelloMsg& m);
std::string Encode(const HelloAckMsg& m);
/// `version` is the connection's negotiated protocol version: the v2
/// representation tail is encoded only when version >= 2, so a v1 server
/// never sees trailing bytes it would reject.
std::string Encode(const SubmitMsg& m, uint32_t version = kProtocolVersionMax);
std::string Encode(const RegisterQueryMsg& m);
std::string Encode(const RegisteredMsg& m);
std::string Encode(const UnregisterQueryMsg& m);
std::string Encode(const PollResultMsg& m);
std::string Encode(const StandingResultMsg& m);
std::string Encode(const TicketMsg& m);
std::string Encode(const RetryLaterMsg& m);
std::string Encode(const AwaitMsg& m);
std::string Encode(const ResultMsg& m);
std::string Encode(const LoadFactsMsg& m);
std::string Encode(const StatsReplyMsg& m);
std::string Encode(const CancelMsg& m);
std::string Encode(const ErrorMsg& m);
/// Frames with an empty body: kOk, kStats, kShutdown.
std::string EncodeEmpty(MsgType type);

// ---------------------------------------------------------------------------
// Decoding. `body` is Frame::body (the bytes after the type tag). Every
// decoder consumes the exact body and returns kInvalidArgument on a
// truncated, oversized, or trailing-garbage body.

Status Decode(std::string_view body, HelloMsg* out);
Status Decode(std::string_view body, HelloAckMsg* out);
Status Decode(std::string_view body, SubmitMsg* out);
Status Decode(std::string_view body, RegisterQueryMsg* out);
Status Decode(std::string_view body, RegisteredMsg* out);
Status Decode(std::string_view body, UnregisterQueryMsg* out);
Status Decode(std::string_view body, PollResultMsg* out);
Status Decode(std::string_view body, StandingResultMsg* out);
Status Decode(std::string_view body, TicketMsg* out);
Status Decode(std::string_view body, RetryLaterMsg* out);
Status Decode(std::string_view body, AwaitMsg* out);
Status Decode(std::string_view body, ResultMsg* out);
Status Decode(std::string_view body, LoadFactsMsg* out);
Status Decode(std::string_view body, StatsReplyMsg* out);
Status Decode(std::string_view body, CancelMsg* out);
Status Decode(std::string_view body, ErrorMsg* out);

/// Reconstructs a Status from an ErrorMsg, mapping unknown code values to
/// kInternal so a newer server cannot make an older client misbehave.
Status StatusFromWire(uint32_t code, std::string message);

/// SubmitMsg::representation codec: 0 means "server default", any other
/// value is 1 + the Representation enumerator. FromWire rejects values
/// this build does not know (nullopt), so a newer client cannot smuggle
/// an out-of-range enum into the evaluator.
inline uint8_t RepresentationToWire(Representation r) {
  return static_cast<uint8_t>(static_cast<uint8_t>(r) + 1);
}
inline std::optional<Representation> RepresentationFromWire(uint8_t wire) {
  if (wire == 0 || wire > 1 + static_cast<uint8_t>(Representation::kBitset)) {
    return std::nullopt;
  }
  return static_cast<Representation>(wire - 1);
}

// ---------------------------------------------------------------------------
// Bounds-checked little-endian readers/writers (exposed for tests and the
// frame layer).

class WireWriter {
 public:
  void U8(uint8_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void Str(std::string_view s);
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view buf) : buf_(buf) {}
  Status U8(uint8_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status Str(std::string* s);
  /// True once every byte was consumed — the hook for optional message
  /// tails added by later protocol versions.
  bool AtEnd() const { return pos_ >= buf_.size(); }
  /// kInvalidArgument unless every byte was consumed.
  Status Finish() const;

 private:
  std::string_view buf_;
  size_t pos_ = 0;
};

}  // namespace exdl::daemon

#endif  // EXDL_DAEMON_PROTOCOL_H_
