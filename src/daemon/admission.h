// Admission control for exdld (DESIGN.md §13).
//
// A server-side policy file assigns each tenant a quota: budget ceilings
// (deadline / derived tuples / arena bytes, mapped onto EvalBudget by the
// server) and a cap on concurrently in-flight queries. Whatever a client
// asks for in SUBMIT is *clamped* against its tenant quota — a client can
// tighten its own budget but never loosen past the policy. Admission also
// enforces a server-wide in-flight ceiling (the bounded submission queue):
// when either cap is hit the server answers RETRY_LATER with a suggested
// backoff instead of queueing without bound.
//
// Policy file format (one tenant per line; see README "Running the
// daemon"):
//
//   # comments and blank lines are ignored
//   *      deadline_ms=10000 max_tuples=5000000 max_bytes=268435456 max_inflight=8
//   alice  deadline_ms=60000 max_inflight=32
//
// `*` is the default quota for tenants without their own line; a key left
// out (or 0) means "unlimited" for that dimension.

#ifndef EXDL_DAEMON_ADMISSION_H_
#define EXDL_DAEMON_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/status.h"

namespace exdl::daemon {

struct TenantQuota {
  uint64_t deadline_ms = 0;   ///< 0 = unlimited.
  uint64_t max_tuples = 0;
  uint64_t max_bytes = 0;
  uint32_t max_inflight = 0;  ///< Concurrent in-flight queries; 0 = unlimited.
};

struct AdmissionPolicy {
  TenantQuota default_quota;
  std::unordered_map<std::string, TenantQuota> tenants;

  /// Parses the policy file format above. Unknown keys, malformed numbers,
  /// or duplicate tenant lines are kInvalidArgument.
  static Result<AdmissionPolicy> Parse(std::string_view text);
  static Result<AdmissionPolicy> Load(const std::string& path);

  const TenantQuota& QuotaFor(std::string_view tenant) const;
};

/// requested==0 means "policy default"; cap==0 means "unlimited". The
/// effective limit is the tighter of the two.
uint64_t ClampLimit(uint64_t requested, uint64_t cap);

/// Tracks in-flight counts and decides SUBMIT admission. Thread-safe.
class AdmissionController {
 public:
  AdmissionController(AdmissionPolicy policy, uint32_t max_pending);

  struct Decision {
    bool admitted = false;
    TenantQuota effective;    ///< Clamped budget (admitted only).
    uint32_t retry_after_ms = 0;
    std::string reason;       ///< Rejection reason (rejected only).
  };

  /// Admits or rejects one submission for `tenant`. An admitted query
  /// holds one in-flight slot (tenant and server-wide) until Release.
  Decision TryAdmit(const std::string& tenant, uint64_t req_deadline_ms,
                    uint64_t req_max_tuples, uint64_t req_max_bytes);
  void Release(const std::string& tenant);

  uint32_t inflight() const;
  uint32_t capacity() const { return max_pending_; }

 private:
  const AdmissionPolicy policy_;
  const uint32_t max_pending_;
  mutable std::mutex mu_;
  uint32_t inflight_ = 0;
  std::unordered_map<std::string, uint32_t> tenant_inflight_;
};

}  // namespace exdl::daemon

#endif  // EXDL_DAEMON_ADMISSION_H_
