// Blocking frame transport over a connected socket.
//
// One frame = u32 little-endian payload length + payload bytes (see
// protocol.h). Reads and writes loop over partial transfers and EINTR;
// writes use MSG_NOSIGNAL so a dead peer surfaces as kUnavailable instead
// of SIGPIPE. A torn connection — EOF mid-frame, a reset, a half-written
// length prefix — is reported as kUnavailable with `clean_eof` false; EOF
// exactly on a frame boundary (the peer closed politely) sets `clean_eof`.
//
// Fault injection deliberately does NOT live here: the daemon.read /
// daemon.write sites are consulted by the server's wrappers in server.cc,
// so arming them in a test process tears only the server side of a
// connection, never the client half using these same functions.

#ifndef EXDL_DAEMON_FRAME_IO_H_
#define EXDL_DAEMON_FRAME_IO_H_

#include <string_view>

#include "daemon/protocol.h"
#include "util/status.h"

namespace exdl::daemon {

/// Reads one frame. On failure the Status is:
///   * kUnavailable, *clean_eof = true  — EOF at a frame boundary
///   * kUnavailable, *clean_eof = false — torn connection / short frame
///   * kInvalidArgument                 — length 0, oversized, unknown type
Status ReadFrame(int fd, Frame* out, bool* clean_eof);

/// Writes `payload` (type tag + body, from Encode*) as one frame.
/// kUnavailable on a broken connection.
Status WriteFrame(int fd, std::string_view payload);

/// True when the peer has closed its end (used to detect a client that
/// disappeared while the server is blocked awaiting a ticket). Never
/// blocks.
bool PeerClosed(int fd);

}  // namespace exdl::daemon

#endif  // EXDL_DAEMON_FRAME_IO_H_
