#include "daemon/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "daemon/frame_io.h"
#include "util/rng.h"

namespace exdl::daemon {

namespace {

Status ConnectFd(const Endpoint& endpoint, int* out_fd) {
  int fd = -1;
  if (endpoint.use_tcp) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal(std::string("socket(): ") +
                              std::strerror(errno));
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint.tcp_port);
    if (::inet_pton(AF_INET, endpoint.tcp_host.c_str(), &addr.sin_addr) !=
        1) {
      ::close(fd);
      return Status::InvalidArgument("bad daemon address: " +
                                     endpoint.tcp_host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      const int err = errno;
      ::close(fd);
      return Status::Unavailable("cannot connect to exdld at " +
                                 endpoint.tcp_host + ":" +
                                 std::to_string(endpoint.tcp_port) + ": " +
                                 std::strerror(err));
    }
  } else {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal(std::string("socket(): ") +
                              std::strerror(errno));
    }
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (endpoint.socket_path.size() >= sizeof addr.sun_path) {
      ::close(fd);
      return Status::InvalidArgument("socket path too long: " +
                                     endpoint.socket_path);
    }
    std::strncpy(addr.sun_path, endpoint.socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      const int err = errno;
      ::close(fd);
      return Status::Unavailable("cannot connect to exdld at " +
                                 endpoint.socket_path + ": " +
                                 std::strerror(err));
    }
  }
  *out_fd = fd;
  return Status::Ok();
}

/// Maps a server ERROR frame to a Status.
Status ErrorToStatus(const ErrorMsg& err) {
  return StatusFromWire(err.code, err.message);
}

}  // namespace

Status DaemonClient::Connect(const Endpoint& endpoint,
                             const std::string& tenant) {
  Close();
  EXDL_RETURN_IF_ERROR(ConnectFd(endpoint, &fd_));
  HelloMsg hello;
  hello.tenant = tenant;
  Frame reply;
  Status rt = RoundTrip(Encode(hello), &reply);
  if (!rt.ok()) {
    Close();
    return rt;
  }
  if (reply.type == MsgType::kError) {
    ErrorMsg err;
    Status decoded = Decode(reply.body, &err);
    Close();
    return decoded.ok() ? ErrorToStatus(err) : decoded;
  }
  if (reply.type != MsgType::kHelloAck) {
    Close();
    return Status::InvalidArgument("expected HELLO_ACK from server");
  }
  HelloAckMsg ack;
  Status decoded = Decode(reply.body, &ack);
  if (!decoded.ok()) {
    Close();
    return decoded;
  }
  version_ = ack.version;
  return Status::Ok();
}

void DaemonClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  version_ = 0;
}

Status DaemonClient::RoundTrip(const std::string& payload, Frame* reply) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  EXDL_RETURN_IF_ERROR(WriteFrame(fd_, payload));
  bool clean_eof = false;
  Status status = ReadFrame(fd_, reply, &clean_eof);
  if (!status.ok() && clean_eof) {
    // The server closed instead of replying — torn from the client's
    // point of view (e.g. drain raced our request).
    return Status::Unavailable("connection closed by server");
  }
  return status;
}

Status DaemonClient::Submit(const SubmitMsg& submit, bool* admitted,
                            TicketMsg* ticket, RetryLaterMsg* retry,
                            ErrorMsg* error) {
  *admitted = false;
  Frame reply;
  // Encode for the negotiated version: a v1 server must not see the v2
  // representation tail.
  EXDL_RETURN_IF_ERROR(RoundTrip(Encode(submit, version_), &reply));
  switch (reply.type) {
    case MsgType::kTicket: {
      EXDL_RETURN_IF_ERROR(Decode(reply.body, ticket));
      *admitted = true;
      return Status::Ok();
    }
    case MsgType::kRetryLater:
      return Decode(reply.body, retry);
    case MsgType::kError:
      return Decode(reply.body, error);
    default:
      return Status::InvalidArgument("unexpected reply to SUBMIT");
  }
}

Status DaemonClient::Await(uint64_t ticket, ResultMsg* out) {
  AwaitMsg msg;
  msg.ticket = ticket;
  Frame reply;
  EXDL_RETURN_IF_ERROR(RoundTrip(Encode(msg), &reply));
  if (reply.type == MsgType::kError) {
    ErrorMsg err;
    EXDL_RETURN_IF_ERROR(Decode(reply.body, &err));
    return ErrorToStatus(err);
  }
  if (reply.type != MsgType::kResult) {
    return Status::InvalidArgument("unexpected reply to AWAIT");
  }
  return Decode(reply.body, out);
}

Status DaemonClient::RegisterQuery(const SubmitMsg& submit,
                                   RegisteredMsg* out) {
  if (version_ < 2) {
    return Status::FailedPrecondition(
        "server negotiated protocol version " + std::to_string(version_) +
        "; standing queries need version 2");
  }
  RegisterQueryMsg msg;
  msg.submit = submit;
  Frame reply;
  EXDL_RETURN_IF_ERROR(RoundTrip(Encode(msg), &reply));
  if (reply.type == MsgType::kRetryLater) {
    RetryLaterMsg retry;
    EXDL_RETURN_IF_ERROR(Decode(reply.body, &retry));
    return Status::Unavailable("server overloaded, retry in " +
                               std::to_string(retry.backoff_ms) + "ms: " +
                               retry.reason);
  }
  if (reply.type == MsgType::kError) {
    ErrorMsg err;
    EXDL_RETURN_IF_ERROR(Decode(reply.body, &err));
    return ErrorToStatus(err);
  }
  if (reply.type != MsgType::kRegistered) {
    return Status::InvalidArgument("unexpected reply to REGISTER_QUERY");
  }
  return Decode(reply.body, out);
}

Status DaemonClient::UnregisterQuery(uint64_t standing_id) {
  if (version_ < 2) {
    return Status::FailedPrecondition(
        "server negotiated protocol version " + std::to_string(version_) +
        "; standing queries need version 2");
  }
  UnregisterQueryMsg msg;
  msg.standing_id = standing_id;
  Frame reply;
  EXDL_RETURN_IF_ERROR(RoundTrip(Encode(msg), &reply));
  if (reply.type == MsgType::kOk) return Status::Ok();
  if (reply.type == MsgType::kError) {
    ErrorMsg err;
    EXDL_RETURN_IF_ERROR(Decode(reply.body, &err));
    return ErrorToStatus(err);
  }
  return Status::InvalidArgument("unexpected reply to UNREGISTER_QUERY");
}

Status DaemonClient::PollResult(uint64_t standing_id,
                                StandingResultMsg* out) {
  if (version_ < 2) {
    return Status::FailedPrecondition(
        "server negotiated protocol version " + std::to_string(version_) +
        "; standing queries need version 2");
  }
  PollResultMsg msg;
  msg.standing_id = standing_id;
  Frame reply;
  EXDL_RETURN_IF_ERROR(RoundTrip(Encode(msg), &reply));
  if (reply.type == MsgType::kError) {
    ErrorMsg err;
    EXDL_RETURN_IF_ERROR(Decode(reply.body, &err));
    return ErrorToStatus(err);
  }
  if (reply.type != MsgType::kStandingResult) {
    return Status::InvalidArgument("unexpected reply to POLL_RESULT");
  }
  return Decode(reply.body, out);
}

Status DaemonClient::LoadFacts(const std::string& source) {
  LoadFactsMsg msg;
  msg.source = source;
  Frame reply;
  EXDL_RETURN_IF_ERROR(RoundTrip(Encode(msg), &reply));
  if (reply.type == MsgType::kOk) return Status::Ok();
  if (reply.type == MsgType::kError) {
    ErrorMsg err;
    EXDL_RETURN_IF_ERROR(Decode(reply.body, &err));
    return ErrorToStatus(err);
  }
  return Status::InvalidArgument("unexpected reply to LOAD_FACTS");
}

Status DaemonClient::Stats(std::string* json) {
  Frame reply;
  EXDL_RETURN_IF_ERROR(RoundTrip(EncodeEmpty(MsgType::kStats), &reply));
  if (reply.type != MsgType::kStatsReply) {
    return Status::InvalidArgument("unexpected reply to STATS");
  }
  StatsReplyMsg msg;
  EXDL_RETURN_IF_ERROR(Decode(reply.body, &msg));
  *json = std::move(msg.json);
  return Status::Ok();
}

Status DaemonClient::Cancel(uint64_t ticket) {
  CancelMsg msg;
  msg.ticket = ticket;
  Frame reply;
  EXDL_RETURN_IF_ERROR(RoundTrip(Encode(msg), &reply));
  if (reply.type == MsgType::kOk) return Status::Ok();
  if (reply.type == MsgType::kError) {
    ErrorMsg err;
    EXDL_RETURN_IF_ERROR(Decode(reply.body, &err));
    return ErrorToStatus(err);
  }
  return Status::InvalidArgument("unexpected reply to CANCEL");
}

Status DaemonClient::Shutdown() {
  Frame reply;
  EXDL_RETURN_IF_ERROR(RoundTrip(EncodeEmpty(MsgType::kShutdown), &reply));
  if (reply.type == MsgType::kOk) return Status::Ok();
  return Status::InvalidArgument("unexpected reply to SHUTDOWN");
}

namespace {

void SleepMs(uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Client backoff: the larger of the server suggestion and the client's
/// exponential base, plus up to 50% jitter so a herd of retrying clients
/// spreads out.
uint64_t BackoffMs(uint32_t suggested, uint32_t base_ms, uint32_t attempt,
                   Rng& rng) {
  const uint32_t shift = attempt < 6 ? attempt : 6;
  uint64_t wait = std::max<uint64_t>(suggested,
                                     static_cast<uint64_t>(base_ms) << shift);
  wait += rng.Below(wait / 2 + 1);
  return wait;
}

/// One full pass over the batch on a fresh connection. A non-OK status
/// with code kUnavailable means "torn — reconnect and rerun"; any other
/// failure is terminal.
Status RunBatchOnce(const Endpoint& endpoint,
                    const std::vector<BatchQuery>& queries,
                    const BatchOptions& options, Rng& rng,
                    BatchResult* result) {
  DaemonClient client;
  EXDL_RETURN_IF_ERROR(client.Connect(endpoint, options.tenant));
  if (!options.facts_source.empty()) {
    EXDL_RETURN_IF_ERROR(client.LoadFacts(options.facts_source));
  }
  result->queries.clear();
  for (const BatchQuery& query : queries) {
    SubmitMsg submit;
    submit.name = query.name;
    submit.source = query.source;
    submit.deadline_ms = options.deadline_ms;
    submit.max_tuples = options.max_tuples;
    submit.max_bytes = options.max_bytes;
    TicketMsg ticket;
    uint32_t attempt = 0;
    while (true) {
      bool admitted = false;
      RetryLaterMsg retry;
      ErrorMsg error;
      EXDL_RETURN_IF_ERROR(
          client.Submit(submit, &admitted, &ticket, &retry, &error));
      if (admitted) break;
      if (!error.message.empty() || error.code != 0) {
        return ErrorToStatus(error);
      }
      // Backpressure. The rejection happened before any server-side
      // interning, so resubmitting preserves determinism.
      if (attempt >= options.max_retries) {
        return Status::Unavailable(
            "server still overloaded after " +
            std::to_string(options.max_retries) + " retries: " +
            retry.reason);
      }
      ++result->backpressure_waits;
      SleepMs(BackoffMs(retry.backoff_ms, options.retry_base_ms, attempt,
                        rng));
      ++attempt;
    }
    BatchQueryResult query_result;
    query_result.name = query.name;
    EXDL_RETURN_IF_ERROR(client.Await(ticket.ticket, &query_result.result));
    result->queries.push_back(std::move(query_result));
  }
  return Status::Ok();
}

}  // namespace

Result<BatchResult> RunBatch(const Endpoint& endpoint,
                             const std::vector<BatchQuery>& queries,
                             const BatchOptions& options) {
  Rng rng(options.seed);
  BatchResult result;
  uint32_t reconnect = 0;
  while (true) {
    Status status = RunBatchOnce(endpoint, queries, options, rng, &result);
    if (status.ok()) {
      result.reconnects = reconnect;
      return result;
    }
    if (status.code() != StatusCode::kUnavailable) return status;
    // Torn connection or an exhausted-backpressure pass. The first
    // connect failing means no daemon is running: fail fast so the CLI
    // can say so (exit 8) instead of stalling through the retry ladder.
    if (reconnect == 0 && result.queries.empty() &&
        status.message().rfind("cannot connect", 0) == 0) {
      return status;
    }
    if (reconnect >= options.max_retries) {
      return Status::Unavailable("giving up after " +
                                 std::to_string(options.max_retries) +
                                 " reconnect attempts: " + status.message());
    }
    SleepMs(BackoffMs(0, options.retry_base_ms, reconnect, rng));
    ++reconnect;
  }
}

}  // namespace exdl::daemon
