// DaemonClient — the `exdlc connect` side of the exdld protocol
// (DESIGN.md §13).
//
// A thin, blocking request/reply client over one connection, plus a
// batch runner that layers the protocol's recovery semantics on top:
//
//   * RETRY_LATER is honored by sleeping the server-suggested backoff
//     plus jitter, then resubmitting (bounded exponential growth).
//   * A torn connection (daemon crashed mid-query, half-written frame,
//     injected fault) is recovered by reconnecting and re-running the
//     WHOLE batch from scratch. Re-running everything — not just the
//     tail — preserves byte-identical answers: the service interns
//     symbols in submission order, so the retried batch replays the
//     exact interning sequence (finished prefixes are program-cache
//     hits), while a tail-only resubmission could intern a different
//     order. kUnavailable is the only retried code.
//   * A first connect refused (no daemon running) fails fast with
//     kUnavailable so exdlc can map it to exit code 8 with an
//     actionable message.

#ifndef EXDL_DAEMON_CLIENT_H_
#define EXDL_DAEMON_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "daemon/protocol.h"
#include "util/status.h"

namespace exdl::daemon {

/// Where the daemon listens: a unix-socket path, or host:port with
/// use_tcp.
struct Endpoint {
  std::string socket_path;
  bool use_tcp = false;
  std::string tcp_host = "127.0.0.1";
  uint16_t tcp_port = 0;
};

class DaemonClient {
 public:
  DaemonClient() = default;
  ~DaemonClient() { Close(); }
  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  /// Connects and completes HELLO / HELLO_ACK. kUnavailable when the
  /// daemon is not reachable (connection refused / missing socket file).
  Status Connect(const Endpoint& endpoint, const std::string& tenant);
  void Close();
  bool connected() const { return fd_ >= 0; }
  uint32_t negotiated_version() const { return version_; }

  /// One SUBMIT exchange. Exactly one of the out-params is filled:
  /// `*admitted` tells which. Returns non-OK only for connection-level
  /// failures (torn/protocol); an ERROR reply is surfaced through
  /// `*error`.
  Status Submit(const SubmitMsg& submit, bool* admitted, TicketMsg* ticket,
                RetryLaterMsg* retry, ErrorMsg* error);

  /// One AWAIT exchange for `ticket`. Blocks until the result frame.
  Status Await(uint64_t ticket, ResultMsg* out);

  /// Registers `submit` as a standing query (protocol >= 2; DESIGN.md
  /// §16): the server evaluates it once, installs the maintained view,
  /// and replies with the standing id and seed answers. Blocks for the
  /// seeding evaluation. Backpressure surfaces as kUnavailable.
  Status RegisterQuery(const SubmitMsg& submit, RegisteredMsg* out);
  /// Drops a standing query (protocol >= 2).
  Status UnregisterQuery(uint64_t standing_id);
  /// Reads a standing query's maintained answers (protocol >= 2);
  /// non-blocking on the server — no re-evaluation happens.
  Status PollResult(uint64_t standing_id, StandingResultMsg* out);

  Status LoadFacts(const std::string& source);
  Status Stats(std::string* json);
  Status Cancel(uint64_t ticket);
  /// Asks the server to drain; OK once the server acknowledged.
  Status Shutdown();

 private:
  /// Writes `payload` and reads the reply frame.
  Status RoundTrip(const std::string& payload, Frame* reply);

  int fd_ = -1;
  uint32_t version_ = 0;
};

/// One query of a batch run.
struct BatchQuery {
  std::string name;
  std::string source;
};

struct BatchOptions {
  std::string tenant;
  /// Requested budget, clamped server-side (0 = policy default).
  uint64_t deadline_ms = 0;
  uint64_t max_tuples = 0;
  uint64_t max_bytes = 0;
  /// Facts loaded (LOAD_FACTS) before the queries, every attempt.
  std::string facts_source;
  /// Reconnect-and-rerun attempts after a torn connection, and
  /// resubmission attempts per query under backpressure.
  uint32_t max_retries = 5;
  /// Base for the client-side jittered exponential backoff (doubled per
  /// consecutive retry, capped at 64x) layered on the server's
  /// suggestion.
  uint32_t retry_base_ms = 25;
  /// Jitter seed (deterministic tests).
  uint64_t seed = 0x5eed;
};

struct BatchQueryResult {
  std::string name;
  ResultMsg result;
};

struct BatchResult {
  std::vector<BatchQueryResult> queries;
  uint32_t reconnects = 0;       ///< Torn-connection recoveries.
  uint32_t backpressure_waits = 0;
};

/// Runs `queries` against `endpoint` with full retry semantics (header
/// comment). On success every query has a ResultMsg whose rendered
/// answers are byte-identical to an in-process Engine run of the same
/// sequence. Fails with kUnavailable once retries are exhausted (or
/// immediately when the very first connect is refused).
Result<BatchResult> RunBatch(const Endpoint& endpoint,
                             const std::vector<BatchQuery>& queries,
                             const BatchOptions& options);

}  // namespace exdl::daemon

#endif  // EXDL_DAEMON_CLIENT_H_
