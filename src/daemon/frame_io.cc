#include "daemon/frame_io.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>

namespace exdl::daemon {

namespace {

/// Reads exactly `n` bytes. Returns the byte count actually read: `n` on
/// success, less on EOF/error (errno preserved; 0 errno means plain EOF).
size_t ReadExact(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r == 0) errno = 0;  // EOF, not an error.
    break;
  }
  return got;
}

}  // namespace

Status ReadFrame(int fd, Frame* out, bool* clean_eof) {
  *clean_eof = false;
  char prefix[4];
  const size_t got = ReadExact(fd, prefix, sizeof prefix);
  if (got == 0 && errno == 0) {
    *clean_eof = true;
    return Status::Unavailable("connection closed");
  }
  if (got < sizeof prefix) {
    return Status::Unavailable("torn connection: short length prefix");
  }
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i])) << (8 * i);
  }
  if (length == 0) {
    return Status::InvalidArgument("frame with empty payload");
  }
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload of " +
                                   std::to_string(length) +
                                   " bytes exceeds the protocol cap");
  }
  std::string payload(length, '\0');
  if (ReadExact(fd, payload.data(), length) < length) {
    return Status::Unavailable("torn connection: short frame body");
  }
  const uint8_t type = static_cast<uint8_t>(payload[0]);
  if (!IsKnownMsgType(type)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(type));
  }
  out->type = static_cast<MsgType>(type);
  out->body.assign(payload, 1, payload.size() - 1);
  return Status::Ok();
}

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.empty() || payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload size out of range");
  }
  std::string wire;
  wire.reserve(4 + payload.size());
  const uint32_t length = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((length >> (8 * i)) & 0xff));
  }
  wire.append(payload.data(), payload.size());
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t w =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return Status::Unavailable(std::string("torn connection on write: ") +
                               std::strerror(errno));
  }
  return Status::Ok();
}

bool PeerClosed(int fd) {
  char byte;
  const ssize_t r = ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  if (r == 0) return true;                        // orderly shutdown
  if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
    return false;                                 // alive, nothing pending
  }
  return r < 0;                                   // reset or other error
}

}  // namespace exdl::daemon
