// DaemonServer — the network-facing exdld query daemon (DESIGN.md §13).
//
// One long-lived server wraps a QueryService behind the protocol.h wire
// protocol on a unix-domain socket (TCP behind a flag): the nix-daemon
// shape of one server and many cheap clients. Robustness invariants:
//
//   * Admission control: every SUBMIT is clamped against the tenant's
//     quota (admission.h) and mapped onto an EvalBudget, so no client can
//     exceed the server-side policy.
//   * Backpressure: in-flight queries are bounded (server-wide and per
//     tenant). At the bound, SUBMIT gets RETRY_LATER with a suggested
//     backoff instead of growing an unbounded queue.
//   * Disconnect reclamation: each admitted query carries a private
//     CancellationToken. When the client's connection dies — mid-AWAIT or
//     with tickets it never awaited — the server cancels those queries,
//     drains their responses, and releases their admission slots, so
//     abandoned work never leaks a session.
//   * Graceful drain: RequestDrain (SIGTERM in exdld, or a SHUTDOWN frame)
//     stops accepting connections and submissions, lets in-flight work
//     finish for up to drain_timeout_ms, then cancels the remainder and
//     closes every connection.
//   * Torn-anything: a half-written frame, a mid-frame EOF, or an injected
//     fault (daemon.accept / daemon.read / daemon.write / daemon.dispatch)
//     closes that one connection through the same reclamation path; the
//     server itself never hangs and serves the next client normally.

#ifndef EXDL_DAEMON_SERVER_H_
#define EXDL_DAEMON_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "daemon/admission.h"
#include "daemon/protocol.h"
#include "durability/durable_edb.h"
#include "service/query_service.h"
#include "util/cancellation.h"

namespace exdl::daemon {

struct DaemonOptions {
  /// Unix-domain socket path (the default transport). A stale socket file
  /// left by a killed daemon is detected (connect() refused) and replaced.
  std::string socket_path;
  /// With use_tcp, listen on tcp_host:tcp_port instead (optional
  /// transport, off by default).
  bool use_tcp = false;
  std::string tcp_host = "127.0.0.1";
  uint16_t tcp_port = 0;
  /// The wrapped query service (workers, cache, compile pipeline).
  ServiceOptions service;
  /// Per-tenant quotas; empty policy = unlimited budgets, no per-tenant cap.
  AdmissionPolicy policy;
  /// Server-wide in-flight query bound (the bounded submission queue).
  /// 0 disables the global bound (per-tenant caps still apply).
  uint32_t max_pending = 64;
  /// How long a drain waits for in-flight connections before cancelling.
  uint32_t drain_timeout_ms = 5000;
  /// Deadline for a new connection to complete HELLO (slow-loris guard).
  uint32_t hello_timeout_ms = 5000;
  /// When >= 0, a byte is written here when a client requests SHUTDOWN —
  /// exdld's main loop selects on this alongside its signal pipe.
  int shutdown_notify_fd = -1;
  /// Durable EDB (DESIGN.md §15). With a non-empty data_dir, Start()
  /// recovers the directory (newest snapshot + fact-log replay) before
  /// accepting connections, and every LOAD_FACTS is write-ahead logged.
  durability::DurabilityOptions durability;
  /// Per-LOAD_FACTS source-size quota in bytes; an oversized load is
  /// rejected with kResourceExhausted. 0 = unlimited.
  uint64_t max_facts_bytes = 0;
};

/// Monotonic counters for the "daemon" telemetry object
/// (tools/metrics_schema.json) and test assertions.
struct DaemonCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  ///< bad hello / draining / fault
  uint32_t connections_active = 0;
  uint64_t submits_admitted = 0;
  uint64_t backpressure_events = 0;   ///< RETRY_LATER replies
  uint64_t cancelled_on_disconnect = 0;
  uint32_t queue_depth = 0;           ///< in-flight queries right now
  uint32_t queue_capacity = 0;
};

class DaemonServer {
 public:
  explicit DaemonServer(DaemonOptions options);
  ~DaemonServer();
  DaemonServer(const DaemonServer&) = delete;
  DaemonServer& operator=(const DaemonServer&) = delete;

  /// Binds, listens, and starts the accept loop. On a unix socket, a
  /// stale file from a SIGKILLed predecessor is unlinked and rebound; a
  /// *live* daemon on the same path is kFailedPrecondition.
  Status Start();

  /// Initiates a graceful drain (idempotent, non-blocking): stop
  /// accepting, reject new submissions, let in-flight work finish.
  void RequestDrain();

  /// Drains and joins everything: accept loop, connections, service.
  /// Called by the destructor; safe to call twice.
  void Stop();

  /// True once RequestDrain/Stop ran (a SHUTDOWN frame also sets it).
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  DaemonCounters counters() const;

  /// The service telemetry document plus the "daemon" object.
  std::string MetricsJson() const;

  /// Bound TCP port (after Start, TCP mode) — lets tests bind port 0.
  uint16_t bound_tcp_port() const { return bound_tcp_port_; }

  const DaemonOptions& options() const { return options_; }
  QueryService& service() { return service_; }

  /// The durable EDB behind --data-dir; null when durability is off.
  /// Valid after a successful Start().
  const std::shared_ptr<durability::DurableEdb>& durable() const {
    return durable_;
  }

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::string tenant;
    /// Negotiated protocol version; gates the v2-only message types.
    /// Standing-query ids are deliberately NOT connection-scoped: a
    /// registered view outlives the registering connection (that is the
    /// point of a standing query — `exdlc connect --poll` reconnects),
    /// and lives until UNREGISTER_QUERY or daemon shutdown.
    uint32_t version = kProtocolVersionMin;
    /// Admitted tickets not yet delivered: their cancellation tokens (the
    /// tokens must outlive the evaluation, so they are owned here and
    /// freed only after the response is drained).
    std::unordered_map<QueryService::Ticket,
                       std::shared_ptr<CancellationToken>> inflight;
  };

  void AcceptLoop();
  void HandleConnection(uint64_t conn_id, int fd);
  /// Serves one negotiated connection until EOF/torn/error; returns the
  /// reason the loop ended (ok = clean client close).
  Status ServeFrames(Connection& conn);
  Status HandleSubmit(Connection& conn, std::string_view body);
  Status HandleAwait(Connection& conn, std::string_view body);
  Status HandleRegisterQuery(Connection& conn, std::string_view body);
  Status HandleUnregisterQuery(Connection& conn, std::string_view body);
  Status HandlePollResult(Connection& conn, std::string_view body);
  Status HandleLoadFacts(Connection& conn, std::string_view body);
  Status HandleCancel(Connection& conn, std::string_view body);
  Status HandleStats(Connection& conn);
  Status HandleShutdown(Connection& conn);
  /// Cancels every undelivered ticket of `conn`, drains their responses,
  /// and releases their admission slots.
  void ReclaimConnection(Connection& conn);

  /// Frame I/O wrappers consulting the daemon.read / daemon.write fault
  /// sites (server side only).
  Status ServerReadFrame(int fd, Frame* out, bool* clean_eof);
  Status ServerWriteFrame(int fd, std::string_view payload);

  Status BindUnix();
  Status BindTcp();
  void JoinFinishedThreads();

  DaemonOptions options_;
  QueryService service_;
  AdmissionController admission_;
  std::shared_ptr<durability::DurableEdb> durable_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< Wakes the accept loop's poll().
  uint16_t bound_tcp_port_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  bool stopped_ = false;  ///< Guarded by conn_mu_; makes Stop idempotent.

  std::thread accept_thread_;
  mutable std::mutex conn_mu_;
  std::condition_variable conn_cv_;  ///< Signalled when a connection ends.
  uint64_t next_conn_id_ = 0;
  std::unordered_map<uint64_t, std::thread> conn_threads_;
  std::unordered_map<uint64_t, int> conn_fds_;
  std::vector<uint64_t> finished_;  ///< Connection ids ready to join.

  mutable std::mutex counters_mu_;
  DaemonCounters counters_;
};

}  // namespace exdl::daemon

#endif  // EXDL_DAEMON_SERVER_H_
