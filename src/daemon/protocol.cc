#include "daemon/protocol.h"

namespace exdl::daemon {

bool IsKnownMsgType(uint8_t type) {
  return type >= static_cast<uint8_t>(MsgType::kHello) &&
         type <= static_cast<uint8_t>(MsgType::kStandingResult);
}

// ---------------------------------------------------------------------------
// Writers.

void WireWriter::U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

void WireWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

// ---------------------------------------------------------------------------
// Readers.

Status WireReader::U8(uint8_t* v) {
  if (pos_ + 1 > buf_.size()) {
    return Status::InvalidArgument("truncated frame: expected u8");
  }
  *v = static_cast<uint8_t>(buf_[pos_++]);
  return Status::Ok();
}

Status WireReader::U32(uint32_t* v) {
  if (pos_ + 4 > buf_.size()) {
    return Status::InvalidArgument("truncated frame: expected u32");
  }
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::Ok();
}

Status WireReader::U64(uint64_t* v) {
  if (pos_ + 8 > buf_.size()) {
    return Status::InvalidArgument("truncated frame: expected u64");
  }
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(buf_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::Ok();
}

Status WireReader::Str(std::string* s) {
  uint32_t len = 0;
  EXDL_RETURN_IF_ERROR(U32(&len));
  // The frame layer already capped the payload at kMaxFrameBytes, so a
  // length that overruns the buffer can only be a truncation or a lie.
  if (len > buf_.size() - pos_) {
    return Status::InvalidArgument("truncated frame: string overruns body");
  }
  s->assign(buf_.data() + pos_, len);
  pos_ += len;
  return Status::Ok();
}

Status WireReader::Finish() const {
  if (pos_ != buf_.size()) {
    return Status::InvalidArgument("frame body has trailing bytes");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Per-message encode/decode.

namespace {

WireWriter Begin(MsgType type) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(type));
  return w;
}

}  // namespace

std::string Encode(const HelloMsg& m) {
  WireWriter w = Begin(MsgType::kHello);
  w.U32(m.magic);
  w.U32(m.min_version);
  w.U32(m.max_version);
  w.Str(m.tenant);
  return w.Take();
}

Status Decode(std::string_view body, HelloMsg* out) {
  WireReader r(body);
  EXDL_RETURN_IF_ERROR(r.U32(&out->magic));
  EXDL_RETURN_IF_ERROR(r.U32(&out->min_version));
  EXDL_RETURN_IF_ERROR(r.U32(&out->max_version));
  EXDL_RETURN_IF_ERROR(r.Str(&out->tenant));
  return r.Finish();
}

std::string Encode(const HelloAckMsg& m) {
  WireWriter w = Begin(MsgType::kHelloAck);
  w.U32(m.version);
  w.Str(m.server);
  return w.Take();
}

Status Decode(std::string_view body, HelloAckMsg* out) {
  WireReader r(body);
  EXDL_RETURN_IF_ERROR(r.U32(&out->version));
  EXDL_RETURN_IF_ERROR(r.Str(&out->server));
  return r.Finish();
}

namespace {

// SUBMIT and REGISTER_QUERY share one body layout; only the type tag
// differs. The representation tail is a protocol-2 addition: encoded only
// on v2 connections, tolerated as absent by the decoder.
void EncodeSubmitBody(WireWriter& w, const SubmitMsg& m, uint32_t version) {
  w.Str(m.name);
  w.Str(m.source);
  w.U64(m.deadline_ms);
  w.U64(m.max_tuples);
  w.U64(m.max_bytes);
  if (version >= 2) w.U8(m.representation);
}

Status DecodeSubmitBody(WireReader& r, SubmitMsg* out) {
  EXDL_RETURN_IF_ERROR(r.Str(&out->name));
  EXDL_RETURN_IF_ERROR(r.Str(&out->source));
  EXDL_RETURN_IF_ERROR(r.U64(&out->deadline_ms));
  EXDL_RETURN_IF_ERROR(r.U64(&out->max_tuples));
  EXDL_RETURN_IF_ERROR(r.U64(&out->max_bytes));
  if (!r.AtEnd()) {
    EXDL_RETURN_IF_ERROR(r.U8(&out->representation));
  }
  return r.Finish();
}

}  // namespace

std::string Encode(const SubmitMsg& m, uint32_t version) {
  WireWriter w = Begin(MsgType::kSubmit);
  EncodeSubmitBody(w, m, version);
  return w.Take();
}

Status Decode(std::string_view body, SubmitMsg* out) {
  WireReader r(body);
  return DecodeSubmitBody(r, out);
}

std::string Encode(const RegisterQueryMsg& m) {
  WireWriter w = Begin(MsgType::kRegisterQuery);
  EncodeSubmitBody(w, m.submit, /*version=*/2);
  return w.Take();
}

Status Decode(std::string_view body, RegisterQueryMsg* out) {
  WireReader r(body);
  return DecodeSubmitBody(r, &out->submit);
}

std::string Encode(const RegisteredMsg& m) {
  WireWriter w = Begin(MsgType::kRegistered);
  w.U64(m.standing_id);
  w.U64(m.generation);
  w.U64(m.answer_count);
  w.Str(m.answers);
  return w.Take();
}

Status Decode(std::string_view body, RegisteredMsg* out) {
  WireReader r(body);
  EXDL_RETURN_IF_ERROR(r.U64(&out->standing_id));
  EXDL_RETURN_IF_ERROR(r.U64(&out->generation));
  EXDL_RETURN_IF_ERROR(r.U64(&out->answer_count));
  EXDL_RETURN_IF_ERROR(r.Str(&out->answers));
  return r.Finish();
}

std::string Encode(const UnregisterQueryMsg& m) {
  WireWriter w = Begin(MsgType::kUnregisterQuery);
  w.U64(m.standing_id);
  return w.Take();
}

Status Decode(std::string_view body, UnregisterQueryMsg* out) {
  WireReader r(body);
  EXDL_RETURN_IF_ERROR(r.U64(&out->standing_id));
  return r.Finish();
}

std::string Encode(const PollResultMsg& m) {
  WireWriter w = Begin(MsgType::kPollResult);
  w.U64(m.standing_id);
  return w.Take();
}

Status Decode(std::string_view body, PollResultMsg* out) {
  WireReader r(body);
  EXDL_RETURN_IF_ERROR(r.U64(&out->standing_id));
  return r.Finish();
}

std::string Encode(const StandingResultMsg& m) {
  WireWriter w = Begin(MsgType::kStandingResult);
  w.U64(m.standing_id);
  w.U64(m.generation);
  w.U64(m.answer_count);
  w.Str(m.answers);
  w.U8(m.incremental);
  w.Str(m.fallback);
  w.U64(m.delta_rounds);
  w.U64(m.full_recomputes);
  w.U64(m.tuples_rederived);
  return w.Take();
}

Status Decode(std::string_view body, StandingResultMsg* out) {
  WireReader r(body);
  EXDL_RETURN_IF_ERROR(r.U64(&out->standing_id));
  EXDL_RETURN_IF_ERROR(r.U64(&out->generation));
  EXDL_RETURN_IF_ERROR(r.U64(&out->answer_count));
  EXDL_RETURN_IF_ERROR(r.Str(&out->answers));
  EXDL_RETURN_IF_ERROR(r.U8(&out->incremental));
  EXDL_RETURN_IF_ERROR(r.Str(&out->fallback));
  EXDL_RETURN_IF_ERROR(r.U64(&out->delta_rounds));
  EXDL_RETURN_IF_ERROR(r.U64(&out->full_recomputes));
  EXDL_RETURN_IF_ERROR(r.U64(&out->tuples_rederived));
  return r.Finish();
}

std::string Encode(const TicketMsg& m) {
  WireWriter w = Begin(MsgType::kTicket);
  w.U64(m.ticket);
  w.U64(m.deadline_ms);
  w.U64(m.max_tuples);
  w.U64(m.max_bytes);
  return w.Take();
}

Status Decode(std::string_view body, TicketMsg* out) {
  WireReader r(body);
  EXDL_RETURN_IF_ERROR(r.U64(&out->ticket));
  EXDL_RETURN_IF_ERROR(r.U64(&out->deadline_ms));
  EXDL_RETURN_IF_ERROR(r.U64(&out->max_tuples));
  EXDL_RETURN_IF_ERROR(r.U64(&out->max_bytes));
  return r.Finish();
}

std::string Encode(const RetryLaterMsg& m) {
  WireWriter w = Begin(MsgType::kRetryLater);
  w.U32(m.backoff_ms);
  w.Str(m.reason);
  return w.Take();
}

Status Decode(std::string_view body, RetryLaterMsg* out) {
  WireReader r(body);
  EXDL_RETURN_IF_ERROR(r.U32(&out->backoff_ms));
  EXDL_RETURN_IF_ERROR(r.Str(&out->reason));
  return r.Finish();
}

std::string Encode(const AwaitMsg& m) {
  WireWriter w = Begin(MsgType::kAwait);
  w.U64(m.ticket);
  return w.Take();
}

Status Decode(std::string_view body, AwaitMsg* out) {
  WireReader r(body);
  EXDL_RETURN_IF_ERROR(r.U64(&out->ticket));
  return r.Finish();
}

std::string Encode(const ResultMsg& m) {
  WireWriter w = Begin(MsgType::kResult);
  w.U64(m.ticket);
  w.U32(m.status_code);
  w.Str(m.status_message);
  w.U32(m.termination_code);
  w.Str(m.termination_message);
  w.Str(m.budget_kind);
  w.Str(m.stats_text);
  w.U64(m.answer_count);
  w.Str(m.answers);
  w.U8(m.cache_hit);
  return w.Take();
}

Status Decode(std::string_view body, ResultMsg* out) {
  WireReader r(body);
  EXDL_RETURN_IF_ERROR(r.U64(&out->ticket));
  EXDL_RETURN_IF_ERROR(r.U32(&out->status_code));
  EXDL_RETURN_IF_ERROR(r.Str(&out->status_message));
  EXDL_RETURN_IF_ERROR(r.U32(&out->termination_code));
  EXDL_RETURN_IF_ERROR(r.Str(&out->termination_message));
  EXDL_RETURN_IF_ERROR(r.Str(&out->budget_kind));
  EXDL_RETURN_IF_ERROR(r.Str(&out->stats_text));
  EXDL_RETURN_IF_ERROR(r.U64(&out->answer_count));
  EXDL_RETURN_IF_ERROR(r.Str(&out->answers));
  EXDL_RETURN_IF_ERROR(r.U8(&out->cache_hit));
  return r.Finish();
}

std::string Encode(const LoadFactsMsg& m) {
  WireWriter w = Begin(MsgType::kLoadFacts);
  w.Str(m.source);
  return w.Take();
}

Status Decode(std::string_view body, LoadFactsMsg* out) {
  WireReader r(body);
  EXDL_RETURN_IF_ERROR(r.Str(&out->source));
  return r.Finish();
}

std::string Encode(const StatsReplyMsg& m) {
  WireWriter w = Begin(MsgType::kStatsReply);
  w.Str(m.json);
  return w.Take();
}

Status Decode(std::string_view body, StatsReplyMsg* out) {
  WireReader r(body);
  EXDL_RETURN_IF_ERROR(r.Str(&out->json));
  return r.Finish();
}

std::string Encode(const CancelMsg& m) {
  WireWriter w = Begin(MsgType::kCancel);
  w.U64(m.ticket);
  return w.Take();
}

Status Decode(std::string_view body, CancelMsg* out) {
  WireReader r(body);
  EXDL_RETURN_IF_ERROR(r.U64(&out->ticket));
  return r.Finish();
}

std::string Encode(const ErrorMsg& m) {
  WireWriter w = Begin(MsgType::kError);
  w.U32(m.code);
  w.Str(m.message);
  return w.Take();
}

Status Decode(std::string_view body, ErrorMsg* out) {
  WireReader r(body);
  EXDL_RETURN_IF_ERROR(r.U32(&out->code));
  EXDL_RETURN_IF_ERROR(r.Str(&out->message));
  return r.Finish();
}

std::string EncodeEmpty(MsgType type) { return Begin(type).Take(); }

Status StatusFromWire(uint32_t code, std::string message) {
  if (code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::Internal("unknown wire status code " +
                            std::to_string(code) + ": " + message);
  }
  if (code == 0) return Status::Ok();
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace exdl::daemon
