#include "daemon/admission.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace exdl::daemon {

namespace {

/// Splits `line` on runs of spaces/tabs.
std::vector<std::string> Tokens(std::string_view line) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) out.emplace_back(line.substr(start, i - start));
  }
  return out;
}

Status ParseQuotaKey(const std::string& token, TenantQuota* quota) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
    return Status::InvalidArgument("expected key=value, got '" + token + "'");
  }
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value.empty()) {
    return Status::InvalidArgument("quota value must be an integer: '" +
                                   token + "'");
  }
  if (key == "deadline_ms") {
    quota->deadline_ms = n;
  } else if (key == "max_tuples") {
    quota->max_tuples = n;
  } else if (key == "max_bytes") {
    quota->max_bytes = n;
  } else if (key == "max_inflight") {
    quota->max_inflight = static_cast<uint32_t>(
        std::min<unsigned long long>(n, 0xffffffffu));
  } else {
    return Status::InvalidArgument("unknown quota key '" + key + "'");
  }
  return Status::Ok();
}

}  // namespace

Result<AdmissionPolicy> AdmissionPolicy::Parse(std::string_view text) {
  AdmissionPolicy policy;
  bool saw_default = false;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    std::vector<std::string> tokens = Tokens(line);
    if (tokens.empty()) continue;
    const std::string tenant = tokens[0];
    TenantQuota quota;
    for (size_t i = 1; i < tokens.size(); ++i) {
      Status parsed = ParseQuotaKey(tokens[i], &quota);
      if (!parsed.ok()) {
        return Status::InvalidArgument("policy line " +
                                       std::to_string(line_no) + ": " +
                                       parsed.message());
      }
    }
    if (tenant == "*") {
      if (saw_default) {
        return Status::InvalidArgument("policy line " +
                                       std::to_string(line_no) +
                                       ": duplicate default (*) quota");
      }
      saw_default = true;
      policy.default_quota = quota;
    } else {
      if (!policy.tenants.emplace(tenant, quota).second) {
        return Status::InvalidArgument("policy line " +
                                       std::to_string(line_no) +
                                       ": duplicate tenant '" + tenant + "'");
      }
    }
  }
  return policy;
}

Result<AdmissionPolicy> AdmissionPolicy::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open policy file " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

const TenantQuota& AdmissionPolicy::QuotaFor(std::string_view tenant) const {
  const auto it = tenants.find(std::string(tenant));
  return it == tenants.end() ? default_quota : it->second;
}

uint64_t ClampLimit(uint64_t requested, uint64_t cap) {
  if (cap == 0) return requested;
  if (requested == 0) return cap;
  return std::min(requested, cap);
}

AdmissionController::AdmissionController(AdmissionPolicy policy,
                                         uint32_t max_pending)
    : policy_(std::move(policy)), max_pending_(max_pending) {}

AdmissionController::Decision AdmissionController::TryAdmit(
    const std::string& tenant, uint64_t req_deadline_ms,
    uint64_t req_max_tuples, uint64_t req_max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Decision decision;
  // Suggested backoff grows with server pressure so a thundering herd
  // spreads out; clients add jitter on top (client.cc).
  const uint32_t backoff =
      std::min<uint32_t>(1000, 25 * (1 + inflight_));
  if (max_pending_ != 0 && inflight_ >= max_pending_) {
    decision.retry_after_ms = backoff;
    decision.reason = "server submission queue is full";
    return decision;
  }
  const TenantQuota& quota = policy_.QuotaFor(tenant);
  uint32_t& tenant_count = tenant_inflight_[tenant];
  if (quota.max_inflight != 0 && tenant_count >= quota.max_inflight) {
    decision.retry_after_ms = backoff;
    decision.reason = "tenant in-flight quota reached";
    return decision;
  }
  ++inflight_;
  ++tenant_count;
  decision.admitted = true;
  decision.effective.deadline_ms = ClampLimit(req_deadline_ms,
                                              quota.deadline_ms);
  decision.effective.max_tuples = ClampLimit(req_max_tuples, quota.max_tuples);
  decision.effective.max_bytes = ClampLimit(req_max_bytes, quota.max_bytes);
  decision.effective.max_inflight = quota.max_inflight;
  return decision;
}

void AdmissionController::Release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ > 0) --inflight_;
  const auto it = tenant_inflight_.find(tenant);
  if (it != tenant_inflight_.end() && it->second > 0) --it->second;
}

uint32_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

}  // namespace exdl::daemon
