// MaterializedView — one standing query's maintained fixpoint (DESIGN.md
// §16).
//
// A standing query is registered once and answered across fact-load
// generations without re-running its fixpoint: the view owns the full
// EDB ∪ IDB database of the last evaluation, and each generation's new
// facts are appended to it and re-derived from with the evaluator's
// existing semi-naive watermark machinery — a synthesized EvalCursor
// carries the pre-insert sizes as delta watermarks, EvalOptions::resume
// re-enters the delta loop (round 0 never re-fires), and
// EvalOptions::extra_delta_preds makes the appended EDB suffixes drive
// delta variants. Cost per generation is O(changed facts and their
// consequences), not O(database).
//
// Soundness: an insertions-only delta over a negation-free semi-naive
// program is monotone, so re-derivation from the delta converges to the
// same relation sets a cold evaluation of the whole database would — and
// ExtractAnswers sorts + dedups, so the rendered answers are
// byte-identical to the cold run regardless of derivation order, thread
// count, or physical representation. Programs the incremental path cannot
// handle (classified once at registration, see Fallback) take a full
// recompute every generation instead, counted in IvmStats so the
// ivm.full_recomputes metric proves when the fast path is taken.

#ifndef EXDL_IVM_MATERIALIZED_VIEW_H_
#define EXDL_IVM_MATERIALIZED_VIEW_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "ast/atom.h"
#include "core/compiled_program.h"
#include "eval/evaluator.h"
#include "ivm/support_ledger.h"
#include "storage/delta_view.h"
#include "util/status.h"

namespace exdl::ivm {

/// Cumulative maintenance counters of one view; QueryService aggregates
/// them into the telemetry document's "ivm" object.
struct IvmStats {
  uint64_t generations_applied = 0;  ///< Apply()/Reseed() calls absorbed.
  uint64_t delta_rounds = 0;      ///< Semi-naive rounds run incrementally.
  uint64_t full_recomputes = 0;   ///< Generations that re-ran the fixpoint.
  uint64_t tuples_rederived = 0;  ///< Tuples inserted by maintenance runs.
  uint64_t facts_absorbed = 0;    ///< New EDB rows appended by Apply().

  IvmStats& operator+=(const IvmStats& o) {
    generations_applied += o.generations_applied;
    delta_rounds += o.delta_rounds;
    full_recomputes += o.full_recomputes;
    tuples_rederived += o.tuples_rederived;
    facts_absorbed += o.facts_absorbed;
    return *this;
  }
};

/// Why a program cannot take the incremental path (kNone = it can).
/// Classified once from the compiled program and evaluation options.
enum class Fallback {
  kNone,
  kNegation,         ///< Stratified negation: inserts are not monotone.
  kNaive,            ///< Naive mode has no delta watermarks to re-enter.
  kGroundQueryStop,  ///< Early-stopped fixpoint is not a materialization.
  kProvenance,       ///< Provenance rows would go stale across resumes.
};

std::string_view FallbackName(Fallback f);

class MaterializedView {
 public:
  /// Seeds a view from a finished full evaluation: `result` must be the
  /// EvalResult of evaluating `program` over generation `generation`'s
  /// EDB (plus the program's own ground facts), with ok termination.
  /// `support` is the ledger that observed that evaluation (may be null
  /// when the program is a fallback case — full recomputes re-seed it).
  MaterializedView(CompiledProgram::Ptr program, EvalOptions eval,
                   EvalResult result, uint64_t generation,
                   std::unique_ptr<SupportLedger> support);

  /// Absorbs one generation of new facts. Appends them to the maintained
  /// database (duplicates dedup to no-ops) and re-derives incrementally
  /// from the delta suffixes when the program allows it; fallback
  /// programs Reseed from `edb_snapshot` (the just-published generation's
  /// database, which already contains the facts) instead. `generation`
  /// must be > generation(); loads the view already absorbed are skipped
  /// by the caller.
  Status Apply(std::span<const Atom> facts, uint64_t generation,
               const Database& edb_snapshot);

  /// Rebuilds the view from scratch over `edb` (the current snapshot's
  /// database; the program's own ground facts are re-added). Used when
  /// the view missed a generation (registration raced a fact load) and by
  /// every generation of a fallback program — counted as a full
  /// recompute.
  Status Reseed(const Database& edb, uint64_t generation);

  /// The maintained result: db is EDB ∪ IDB, answers are the query's
  /// sorted, deduplicated rows — byte-identical (via RenderAnswerRows) to
  /// a cold evaluation of the same generation.
  const EvalResult& result() const { return result_; }
  const CompiledProgram::Ptr& program() const { return program_; }
  uint64_t generation() const { return generation_; }
  const IvmStats& stats() const { return stats_; }
  Fallback fallback() const { return fallback_; }
  /// True when the most recent Apply() took the incremental path
  /// (trivially true before the first Apply — the seed is not a
  /// recompute).
  bool last_was_incremental() const { return last_incremental_; }
  const SupportLedger* support() const { return support_.get(); }

  /// Classifies whether (program, eval) can be maintained incrementally.
  static Fallback Classify(const Program& program, const EvalOptions& eval);

 private:
  CompiledProgram::Ptr program_;
  EvalOptions eval_;  ///< Budget-free maintenance options (no resume set).
  Fallback fallback_ = Fallback::kNone;
  EvalResult result_;  ///< result_.db is the maintained EDB ∪ IDB.
  uint64_t generation_ = 0;
  IvmStats stats_;
  bool last_incremental_ = true;
  std::unique_ptr<SupportLedger> support_;
};

}  // namespace exdl::ivm

#endif  // EXDL_IVM_MATERIALIZED_VIEW_H_
