// SupportLedger — the counting substrate of incremental view maintenance
// (DESIGN.md §16).
//
// Counting-based maintenance keeps, per derived tuple, the number of
// derivations the fixpoint produced for it; a future retraction pass can
// then decrement supports along the delta and delete only tuples whose
// count reaches zero, instead of recomputing the view (insertions are the
// only delta kind this PR ships, so the ledger is populated but never
// decremented yet). The ledger plugs into the evaluator as a SupportSink:
// Flush reports every buffered head tuple — new and duplicate alike — in
// a deterministic order, so counts are identical across thread counts and
// representations.
//
// Known limitation, recorded here so the retraction PR does not trip over
// it: the semi-naive variants fire one delta literal per variant with the
// other literals reading the full (delta-inclusive) relation, so a
// derivation whose body uses two delta tuples is reported once per such
// variant. Counts therefore over-approximate true derivation multiplicity
// for multi-delta-literal joins; a DRed-style pass must treat them as an
// upper bound (over-counts delay deletion, they never delete too much —
// but exact counting needs prefix-reads on the non-delta literals first).

#ifndef EXDL_IVM_SUPPORT_LEDGER_H_
#define EXDL_IVM_SUPPORT_LEDGER_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "eval/evaluator.h"
#include "storage/relation.h"

namespace exdl::ivm {

class SupportLedger : public SupportSink {
 public:
  void Derived(PredId pred, std::span<const Value> row,
               bool /*inserted*/) override {
    PerPred& per = counts_[pred];
    key_scratch_.assign(row.begin(), row.end());
    auto it = per.find(key_scratch_);
    if (it == per.end()) {
      per.emplace(key_scratch_, 1);
    } else {
      ++it->second;
    }
    ++derivations_;
  }

  /// Derivation count recorded for one tuple (0 if never derived — EDB
  /// facts are extrinsic and carry no support entry).
  uint64_t SupportOf(PredId pred, std::span<const Value> row) const {
    auto pit = counts_.find(pred);
    if (pit == counts_.end()) return 0;
    std::vector<Value> key(row.begin(), row.end());
    auto it = pit->second.find(key);
    return it == pit->second.end() ? 0 : it->second;
  }

  /// Total derivations tallied (sum of all counts).
  uint64_t total_derivations() const { return derivations_; }

  /// Distinct derived tuples tracked.
  size_t tracked_tuples() const {
    size_t n = 0;
    for (const auto& [pred, per] : counts_) n += per.size();
    return n;
  }

 private:
  using PerPred =
      std::unordered_map<std::vector<Value>, uint64_t, ValueVecHash>;

  std::unordered_map<PredId, PerPred> counts_;
  std::vector<Value> key_scratch_;
  uint64_t derivations_ = 0;
};

}  // namespace exdl::ivm

#endif  // EXDL_IVM_SUPPORT_LEDGER_H_
