#include "ivm/materialized_view.h"

#include <algorithm>
#include <iterator>
#include <optional>
#include <utility>
#include <vector>

namespace exdl::ivm {

std::string_view FallbackName(Fallback f) {
  switch (f) {
    case Fallback::kNone:
      return "none";
    case Fallback::kNegation:
      return "negation";
    case Fallback::kNaive:
      return "naive";
    case Fallback::kGroundQueryStop:
      return "ground_query_stop";
    case Fallback::kProvenance:
      return "provenance";
  }
  return "unknown";
}

Fallback MaterializedView::Classify(const Program& program,
                                    const EvalOptions& eval) {
  if (program.HasNegation()) return Fallback::kNegation;
  if (!eval.seminaive) return Fallback::kNaive;
  if (eval.stop_on_ground_query) return Fallback::kGroundQueryStop;
  if (eval.record_provenance) return Fallback::kProvenance;
  return Fallback::kNone;
}

MaterializedView::MaterializedView(CompiledProgram::Ptr program,
                                   EvalOptions eval, EvalResult result,
                                   uint64_t generation,
                                   std::unique_ptr<SupportLedger> support)
    : program_(std::move(program)),
      eval_(std::move(eval)),
      result_(std::move(result)),
      generation_(generation),
      support_(std::move(support)) {
  fallback_ = Classify(program_->program(), eval_);
  // Maintenance runs are ungoverned and unobserved: a budget trip or a
  // checkpoint mid-maintenance would leave a partial view behind the
  // published generation, which is strictly worse than slow maintenance.
  // The seeding evaluation already paid the governed cost.
  eval_.budget = EvalBudget();
  eval_.telemetry = nullptr;
  eval_.checkpoint_sink = nullptr;
  eval_.resume = nullptr;
  eval_.support_sink = nullptr;
  eval_.extra_delta_preds.clear();
  eval_.skip_answers = false;  // Reseed needs the full extraction.
}

Status MaterializedView::Apply(std::span<const Atom> facts,
                               uint64_t generation,
                               const Database& edb_snapshot) {
  if (fallback_ != Fallback::kNone) {
    // The snapshot already contains this generation's facts; re-running
    // the fixpoint over it is the only sound maintenance for these
    // programs (e.g. inserts are not monotone under negation).
    return Reseed(edb_snapshot, generation);
  }

  // Answer watermark before anything is appended: the query predicate may
  // itself be an EDB relation, so new facts can already be new answers.
  // Rows past this index after re-derivation are the only possible new
  // answers — merged below into the previous sorted answer set, so answer
  // maintenance is O(delta + answers), never an O(relation) re-extraction.
  const std::optional<Atom>& query = program_->program().query();
  size_t answer_wm = 0;
  if (query) {
    if (const Relation* rel = result_.db.Find(query->pred)) {
      answer_wm = rel->size();
    }
  }

  // Watermarks first, then append: the suffix past each watermark is the
  // delta. Re-sent facts dedup to no-ops and leave no suffix behind.
  DeltaWatermarks marks = DeltaWatermarks::Capture(result_.db);
  for (const Atom& fact : facts) {
    EXDL_RETURN_IF_ERROR(result_.db.AddFact(fact));
  }
  const std::vector<PredId> grown = marks.GrownSince(result_.db);
  stats_.facts_absorbed += marks.RowsSince(result_.db);
  ++stats_.generations_applied;
  generation_ = generation;
  if (grown.empty()) {
    // Every fact was already present: the maintained fixpoint is already
    // the fixpoint of this generation.
    last_incremental_ = true;
    return Status::Ok();
  }

  // Re-enter the semi-naive delta loop on the maintained database: the
  // cursor's watermarks mark the appended suffixes as the only deltas,
  // and extra_delta_preds gives the grown EDB predicates delta variants
  // (round 0 never re-fires — see DESIGN.md §16).
  EvalOptions options = eval_;
  EvalCursor cursor;
  cursor.stratum = 0;
  cursor.delta_lo = marks.CursorEntries(result_.db);
  options.resume = &cursor;
  options.extra_delta_preds = grown;
  options.support_sink = support_.get();
  options.skip_answers = true;
  std::vector<std::vector<Value>> prior_answers = std::move(result_.answers);
  const bool prior_ground = result_.ground_query_true;
  // Move the maintained database into the evaluation: it is uniquely
  // owned, so the delta run appends in place with no copy-on-write
  // detach — O(delta), not O(database). On failure the database (and the
  // moved-out answers) are gone; the service records the view unhealthy
  // and the next generation Reseeds from the published snapshot, which
  // does not need the old state.
  Result<EvalResult> rederived =
      Evaluate(program_->program(), std::move(result_.db), options);
  if (!rederived.ok()) return rederived.status();
  if (!rederived->termination.ok()) return rederived->termination;
  stats_.delta_rounds += rederived->stats.rounds;
  stats_.tuples_rederived += rederived->stats.tuples_inserted;
  if (query) {
    // Merge the delta suffix's (sorted, deduplicated) answers into the
    // previous sorted set. Insertions are monotone, so prior answers
    // never disappear; equal projections from both sides land adjacent
    // under merge and collapse in unique.
    std::vector<std::vector<Value>> fresh =
        ExtractAnswers(*query, rederived->db, answer_wm);
    std::vector<std::vector<Value>> merged;
    merged.reserve(prior_answers.size() + fresh.size());
    std::merge(prior_answers.begin(), prior_answers.end(), fresh.begin(),
               fresh.end(), std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    rederived->answers = std::move(merged);
    if (query->IsGround()) {
      rederived->ground_query_true =
          prior_ground || !rederived->answers.empty();
    }
  }
  last_incremental_ = true;
  result_ = std::move(*rederived);
  return Status::Ok();
}

Status MaterializedView::Reseed(const Database& edb, uint64_t generation) {
  Database base = edb.Clone();
  // Re-add the program's own ground facts, exactly as a cold session
  // seeds its evaluation database.
  for (const auto& [pred, rel] : program_->facts().relations()) {
    const Relation::View view = rel.view();
    for (size_t row = 0; row < view.size(); ++row) {
      base.AddTuple(pred, view.Scan(row));
    }
  }
  EvalOptions options = eval_;
  auto ledger = std::make_unique<SupportLedger>();
  options.support_sink = ledger.get();
  Result<EvalResult> recomputed =
      Evaluate(program_->program(), std::move(base), options);
  if (!recomputed.ok()) return recomputed.status();
  if (!recomputed->termination.ok()) return recomputed->termination;
  ++stats_.generations_applied;
  ++stats_.full_recomputes;
  stats_.tuples_rederived += recomputed->stats.tuples_inserted;
  support_ = std::move(ledger);
  last_incremental_ = false;
  generation_ = generation;
  result_ = std::move(*recomputed);
  return Status::Ok();
}

}  // namespace exdl::ivm
