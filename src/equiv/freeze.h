// Frozen (ground) instances of rules, the raw material of every uniform
// equivalence test (Section 4, Example 4): each variable of the rule is
// replaced by a globally fresh constant; the instantiated body becomes an
// input database (which may contain facts for derived predicates — that is
// the point of *uniform* notions) and the instantiated head is the fact
// whose (query-relevant) derivability is checked.

#ifndef EXDL_EQUIV_FREEZE_H_
#define EXDL_EQUIV_FREEZE_H_

#include <unordered_map>

#include "ast/rule.h"
#include "storage/database.h"
#include "util/status.h"

namespace exdl {

struct FrozenRule {
  Database body_facts;  ///< One fact per body literal, variables frozen.
  Atom head;            ///< The frozen (ground) head.
  std::unordered_map<SymbolId, SymbolId> var_to_const;
};

/// Freezes `rule`, interning fresh constants into `ctx`.
FrozenRule FreezeRule(const Rule& rule, Context* ctx);

}  // namespace exdl

#endif  // EXDL_EQUIV_FREEZE_H_
