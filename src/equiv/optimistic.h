// Optimistic derivations and the deletion test of Theorem 5.2.
//
// An optimistic derivation fires a rule as soon as *one* body literal is
// matched by a known fact, assuming the remaining literals; head variables
// the matched literal leaves unbound range over the active domain. The
// optimistic answer over-approximates every fact the rule set could
// contribute in any context. Theorem 5.2: if the optimistic answer of
// (Q, freeze(body r), IDB) is contained in the ordinary answer of
// (Q, freeze(body r), IDB \ {r}), then deleting r preserves uniform query
// equivalence. This is the strongest (and most expensive) of the paper's
// deletion tests; the summary tests of Section 5 are fast special cases.

#ifndef EXDL_EQUIV_OPTIMISTIC_H_
#define EXDL_EQUIV_OPTIMISTIC_H_

#include <unordered_set>

#include "ast/program.h"
#include "storage/database.h"
#include "util/status.h"

namespace exdl {

struct OptimisticOptions {
  /// Abort threshold: optimistic fixpoints can be domain^arity large.
  size_t max_facts = 200000;
  /// Extra constants added to the active domain (the deletion test injects
  /// a generic constant representing "any value from the context").
  std::vector<Value> extra_domain;
  /// "May-equal" constants: during unification a flexible constant matches
  /// any value. The deletion test marks every frozen constant flexible, so
  /// spines that depend on a frozen variable coinciding with a program
  /// constant (or with another frozen variable) are not missed — an
  /// over-approximation, which is the sound direction for Theorem 5.2.
  std::unordered_set<Value> flexible;
};

/// The optimistic fixpoint of `program` over `input`. The active domain is
/// every constant in `input` plus every constant in the rules.
Result<Database> OptimisticFixpoint(
    const Program& program, const Database& input,
    const OptimisticOptions& options = OptimisticOptions());

/// Theorem 5.2's deletion test with IDB2 = IDB \ {rule_index}.
///
/// Implementation: let h/B be the frozen head/body of the rule. A real
/// derivation of a query fact through the rule has a spine from a topmost
/// application of it up to the root; that spine is exactly an optimistic
/// chain from h using the remaining rules, with context values abstracted
/// to either frozen constants or a generic fresh constant. The test
/// requires every query fact optimistically reachable from {h} to be
/// ordinarily derivable from B by the remaining rules — patterns that
/// mention the generic constant can never be, which makes the check
/// conservative exactly where context values leak into answers.
///
/// Size-cap failures surface as errors (distinguishing "no" from "gave
/// up").
Result<bool> DeletableUnderOptimisticUqe(
    const Program& program, size_t rule_index,
    const OptimisticOptions& options = OptimisticOptions());

}  // namespace exdl

#endif  // EXDL_EQUIV_OPTIMISTIC_H_
