#include "equiv/argument_projection.h"

#include <cassert>
#include <map>
#include <unordered_map>

namespace exdl {
namespace {

/// Small union-find over dense indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

void Summary::Normalize() {
  std::unordered_map<int, int> renumber;
  for (int& c : classes_) {
    auto [it, inserted] =
        renumber.emplace(c, static_cast<int>(renumber.size()));
    c = it->second;
  }
}

Summary Summary::FromRule(const Context& ctx, const Atom& head,
                          const Atom& body_lit) {
  (void)ctx;
  uint32_t m = static_cast<uint32_t>(head.args.size());
  uint32_t n = static_cast<uint32_t>(body_lit.args.size());
  Summary s(head.pred, body_lit.pred, m, n);
  UnionFind uf(m + n);
  // Positions holding the same term (variable or constant) carry equal
  // values in every instance; connect them.
  std::map<Term, size_t> first_pos;
  auto visit = [&](const Term& t, size_t pos) {
    auto [it, inserted] = first_pos.emplace(t, pos);
    if (!inserted) uf.Union(it->second, pos);
  };
  for (uint32_t i = 0; i < m; ++i) visit(head.args[i], i);
  for (uint32_t j = 0; j < n; ++j) visit(body_lit.args[j], m + j);
  s.classes_.resize(m + n);
  for (size_t i = 0; i < m + n; ++i) {
    s.classes_[i] = static_cast<int>(uf.Find(i));
  }
  s.Normalize();
  return s;
}

Summary Summary::Identity(const Context& ctx, PredId pred) {
  uint32_t arity = ctx.predicate(pred).arity;
  Summary s(pred, pred, arity, arity);
  s.classes_.resize(2 * static_cast<size_t>(arity));
  for (uint32_t i = 0; i < arity; ++i) {
    s.classes_[i] = static_cast<int>(i);
    s.classes_[arity + i] = static_cast<int>(i);
  }
  return s;
}

Summary Summary::Compose(const Summary& ab, const Summary& bc) {
  assert(ab.dst_ == bc.src_);
  assert(ab.dst_arity_ == bc.src_arity_);
  uint32_t m = ab.src_arity_;
  uint32_t k = ab.dst_arity_;
  uint32_t n = bc.dst_arity_;
  UnionFind uf(m + k + n);
  // Merge ab's classes over [0, m+k) and bc's classes over [m, m+k+n),
  // sharing the middle layer.
  std::unordered_map<int, size_t> rep;
  for (uint32_t i = 0; i < m + k; ++i) {
    auto [it, inserted] = rep.emplace(ab.classes_[i], i);
    if (!inserted) uf.Union(it->second, i);
  }
  rep.clear();
  for (uint32_t i = 0; i < k + n; ++i) {
    auto [it, inserted] = rep.emplace(bc.classes_[i], m + i);
    if (!inserted) uf.Union(it->second, m + i);
  }
  Summary out(ab.src_, bc.dst_, m, n);
  out.classes_.resize(static_cast<size_t>(m) + n);
  for (uint32_t i = 0; i < m; ++i) {
    out.classes_[i] = static_cast<int>(uf.Find(i));
  }
  for (uint32_t j = 0; j < n; ++j) {
    out.classes_[m + j] = static_cast<int>(uf.Find(m + k + j));
  }
  out.Normalize();
  return out;
}

std::vector<std::pair<uint32_t, uint32_t>> Summary::CrossEdges() const {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  for (uint32_t i = 0; i < src_arity_; ++i) {
    for (uint32_t j = 0; j < dst_arity_; ++j) {
      if (Connected(i, j)) out.emplace_back(i, j);
    }
  }
  return out;
}

bool Summary::ConnectsAtLeast(const Summary& other) const {
  if (src_ != other.src_ || dst_ != other.dst_) return false;
  for (auto [i, j] : other.CrossEdges()) {
    if (!Connected(i, j)) return false;
  }
  return true;
}

std::string Summary::ToString(const Context& ctx) const {
  std::string out = ctx.PredicateDisplayName(src_) + "->" +
                    ctx.PredicateDisplayName(dst_) + " ";
  int num_classes = 0;
  for (int c : classes_) num_classes = std::max(num_classes, c + 1);
  for (int c = 0; c < num_classes; ++c) {
    out += "[";
    bool first = true;
    for (uint32_t i = 0; i < src_arity_; ++i) {
      if (classes_[i] == c) {
        if (!first) out += " ";
        out += std::to_string(i);
        first = false;
      }
    }
    out += "|";
    first = true;
    for (uint32_t j = 0; j < dst_arity_; ++j) {
      if (classes_[src_arity_ + j] == c) {
        if (!first) out += " ";
        out += std::to_string(j);
        first = false;
      }
    }
    out += "]";
  }
  return out;
}

size_t Summary::Hash() const {
  size_t h = 1469598103934665603ULL;
  h ^= src_;
  h *= 1099511628211ULL;
  h ^= dst_;
  h *= 1099511628211ULL;
  for (int c : classes_) {
    h ^= static_cast<size_t>(c + 1);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace exdl
