#include "equiv/uniform_equivalence.h"

#include "equiv/freeze.h"
#include "eval/evaluator.h"

namespace exdl {
namespace {

/// Does `program` derive the (ground) `goal` when run on `input`?
Result<bool> Derives(const Program& program, const Database& input,
                     const Atom& goal) {
  EvalOptions options;
  Program goal_query = program.Clone();
  goal_query.SetQuery(goal);
  options.stop_on_ground_query = true;
  EXDL_ASSIGN_OR_RETURN(EvalResult result,
                        Evaluate(goal_query, input, options));
  return result.ground_query_true;
}

}  // namespace

Result<bool> UniformlyContains(const Program& p2, const Program& p1) {
  if (p1.HasNegation() || p2.HasNegation()) {
    return Status::FailedPrecondition(
        "uniform containment is only defined here for positive programs");
  }
  Context* ctx = p1.context().get();
  for (const Rule& rule : p1.rules()) {
    FrozenRule frozen = FreezeRule(rule, ctx);
    EXDL_ASSIGN_OR_RETURN(bool derived,
                          Derives(p2, frozen.body_facts, frozen.head));
    if (!derived) return false;
  }
  return true;
}

Result<bool> UniformlyEquivalent(const Program& p1, const Program& p2) {
  EXDL_ASSIGN_OR_RETURN(bool a, UniformlyContains(p2, p1));
  if (!a) return false;
  return UniformlyContains(p1, p2);
}

Result<bool> DeletableUnderUniformEquivalence(const Program& program,
                                              size_t rule_index) {
  if (rule_index >= program.rules().size()) {
    return Status::InvalidArgument("rule index out of range");
  }
  if (program.HasNegation()) {
    return Status::FailedPrecondition(
        "the frozen-instance test requires a positive program");
  }
  Program without = Program(program.context());
  for (size_t i = 0; i < program.rules().size(); ++i) {
    if (i != rule_index) without.AddRule(program.rules()[i]);
  }
  if (program.query()) without.SetQuery(*program.query());
  FrozenRule frozen =
      FreezeRule(program.rules()[rule_index], program.context().get());
  return Derives(without, frozen.body_facts, frozen.head);
}

}  // namespace exdl
