#include "equiv/optimistic.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "equiv/freeze.h"
#include "eval/evaluator.h"

namespace exdl {
namespace {

/// Collects the active domain: constants of `input` and of the rules.
std::vector<Value> ActiveDomain(const Program& program,
                                const Database& input) {
  std::unordered_set<Value> domain;
  for (const auto& [pred, rel] : input.relations()) {
    for (size_t r = 0; r < rel.size(); ++r) {
      for (Value v : rel.view().Scan(r)) domain.insert(v);
    }
  }
  for (const Rule& rule : program.rules()) {
    for (const Term& t : rule.head.args) {
      if (t.IsConst()) domain.insert(t.id());
    }
    for (const Atom& lit : rule.body) {
      for (const Term& t : lit.args) {
        if (t.IsConst()) domain.insert(t.id());
      }
    }
  }
  std::vector<Value> out(domain.begin(), domain.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

namespace internal {

std::vector<Value> OptimisticActiveDomain(const Program& program,
                                          const Database& input,
                                          const OptimisticOptions& options) {
  std::vector<Value> domain = ActiveDomain(program, input);
  for (Value v : options.extra_domain) {
    if (std::find(domain.begin(), domain.end(), v) == domain.end()) {
      domain.push_back(v);
    }
  }
  std::sort(domain.begin(), domain.end());
  return domain;
}

}  // namespace internal

Result<Database> OptimisticFixpoint(const Program& program,
                                    const Database& input,
                                    const OptimisticOptions& options) {
  Database db = input.Clone();
  std::vector<Value> domain =
      internal::OptimisticActiveDomain(program, input, options);

  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Atom> pending;
    // Flexible constants may equal anything (see OptimisticOptions).
    auto may_equal = [&options](Value a, Value b) {
      return a == b || options.flexible.count(a) > 0 ||
             options.flexible.count(b) > 0;
    };
    for (const Rule& rule : program.rules()) {
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const Atom& lit = rule.body[i];
        const Relation* rel = db.Find(lit.pred);
        if (rel == nullptr) continue;
        for (size_t row_id = 0; row_id < rel->size(); ++row_id) {
          std::span<const Value> row = rel->view().Scan(row_id);
          // Unify the literal with the known fact.
          std::unordered_map<SymbolId, Value> binding;
          bool ok = true;
          for (size_t j = 0; j < lit.args.size() && ok; ++j) {
            const Term& t = lit.args[j];
            if (t.IsConst()) {
              ok = may_equal(row[j], t.id());
            } else {
              auto [it, inserted] = binding.emplace(t.id(), row[j]);
              if (!inserted) ok = may_equal(it->second, row[j]);
            }
          }
          if (!ok) continue;
          // Ground the head; unbound head variables range over the domain.
          std::vector<size_t> free_positions;
          std::vector<Value> head_row(rule.head.args.size(), 0);
          for (size_t j = 0; j < rule.head.args.size(); ++j) {
            const Term& t = rule.head.args[j];
            if (t.IsConst()) {
              head_row[j] = t.id();
            } else {
              auto it = binding.find(t.id());
              if (it != binding.end()) {
                head_row[j] = it->second;
              } else {
                free_positions.push_back(j);
              }
            }
          }
          // Repeated unbound head variables must stay equal across their
          // positions: enumerate per distinct variable, not per position.
          std::vector<SymbolId> free_vars;
          for (size_t j : free_positions) {
            SymbolId v = rule.head.args[j].id();
            if (std::find(free_vars.begin(), free_vars.end(), v) ==
                free_vars.end()) {
              free_vars.push_back(v);
            }
          }
          if (!free_vars.empty() && domain.empty()) continue;
          std::vector<size_t> counter(free_vars.size(), 0);
          for (;;) {
            for (size_t j : free_positions) {
              SymbolId v = rule.head.args[j].id();
              size_t vi = static_cast<size_t>(
                  std::find(free_vars.begin(), free_vars.end(), v) -
                  free_vars.begin());
              head_row[j] = domain[counter[vi]];
            }
            std::vector<Term> args;
            args.reserve(head_row.size());
            for (Value v : head_row) args.push_back(Term::Const(v));
            pending.emplace_back(rule.head.pred, std::move(args));
            // Advance the odometer.
            size_t k = 0;
            while (k < counter.size()) {
              if (++counter[k] < domain.size()) break;
              counter[k] = 0;
              ++k;
            }
            if (k == counter.size()) break;
            if (counter.empty()) break;  // single iteration when no frees
          }
        }
      }
    }
    for (const Atom& fact : pending) {
      std::vector<Value> row;
      row.reserve(fact.args.size());
      for (const Term& t : fact.args) row.push_back(t.id());
      if (db.AddTuple(fact.pred, row)) changed = true;
      if (db.TotalTuples() > options.max_facts) {
        return Status::FailedPrecondition(
            "optimistic fixpoint exceeded max_facts");
      }
    }
  }
  return db;
}

Result<bool> DeletableUnderOptimisticUqe(const Program& program,
                                         size_t rule_index,
                                         const OptimisticOptions& options) {
  if (rule_index >= program.rules().size()) {
    return Status::InvalidArgument("rule index out of range");
  }
  if (!program.query()) {
    return Status::FailedPrecondition(
        "optimistic deletion test requires a query");
  }
  if (program.HasNegation()) {
    return Status::FailedPrecondition(
        "the optimistic test requires a positive program");
  }
  Context* ctx = program.context().get();
  FrozenRule frozen = FreezeRule(program.rules()[rule_index], ctx);

  Program without(program.context());
  for (size_t i = 0; i < program.rules().size(); ++i) {
    if (i != rule_index) without.AddRule(program.rules()[i]);
  }
  without.SetQuery(*program.query());

  // Optimistic side: chains from the frozen head over the remaining rules
  // (a topmost application of the deleted rule has no other application
  // above it). The domain gets the frozen body's constants plus one
  // generic constant standing for arbitrary context values.
  Database head_only;
  EXDL_RETURN_IF_ERROR(head_only.AddFact(frozen.head));
  OptimisticOptions opt = options;
  for (const auto& [pred, rel] : frozen.body_facts.relations()) {
    for (size_t r = 0; r < rel.size(); ++r) {
      for (Value v : rel.view().Scan(r)) opt.extra_domain.push_back(v);
    }
  }
  Value anyctx = ctx->FreshSymbol("anyctx");
  opt.extra_domain.push_back(anyctx);
  opt.flexible.insert(anyctx);
  // Every frozen constant is flexible: a context may instantiate the rule
  // so that its variables coincide with each other or with program
  // constants; the over-approximation keeps such spines visible.
  for (const auto& [var, frozen_const] : frozen.var_to_const) {
    opt.flexible.insert(frozen_const);
  }

  EXDL_ASSIGN_OR_RETURN(Database optimistic,
                        OptimisticFixpoint(without, head_only, opt));
  std::vector<std::vector<Value>> optimistic_answers =
      ExtractAnswers(*program.query(), optimistic);
  if (optimistic_answers.empty()) return true;

  EXDL_ASSIGN_OR_RETURN(EvalResult standard,
                        Evaluate(without, frozen.body_facts));
  // Sorted vectors: subset check by inclusion.
  return std::includes(standard.answers.begin(), standard.answers.end(),
                       optimistic_answers.begin(), optimistic_answers.end());
}

}  // namespace exdl
