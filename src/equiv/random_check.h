// Randomized query-equivalence testing oracle.
//
// Query equivalence is undecidable (Section 4), so this is *not* a decision
// procedure: it generates random database instances, evaluates both
// programs, and compares query answers. The property tests use it to gain
// confidence in every transformation; a single disagreement is a
// counterexample (and is reported precisely).

#ifndef EXDL_EQUIV_RANDOM_CHECK_H_
#define EXDL_EQUIV_RANDOM_CHECK_H_

#include <string>
#include <vector>

#include "ast/program.h"
#include "storage/database.h"
#include "util/status.h"

namespace exdl {

struct RandomCheckOptions {
  int trials = 16;
  int domain_size = 5;        ///< Distinct constants per instance.
  int max_tuples_per_pred = 12;
  uint64_t seed = 0xEDB0;
  /// Also populate derived predicates (exercises *uniform* equivalence
  /// claims rather than plain query equivalence).
  bool populate_derived = false;
};

struct RandomCheckReport {
  bool equivalent = true;
  std::string counterexample;  ///< Human-readable, set when !equivalent.
  int trials_run = 0;
};

/// Compares query answers of `p1` and `p2` (which must share a Context and
/// both have queries) over random instances of `input_preds`.
Result<RandomCheckReport> CheckQueryEquivalent(
    const Program& p1, const Program& p2,
    const std::vector<PredId>& input_preds,
    const RandomCheckOptions& options = RandomCheckOptions());

/// Convenience: input predicates = p1's base (EDB) predicates.
Result<RandomCheckReport> CheckQueryEquivalentOnEdb(
    const Program& p1, const Program& p2,
    const RandomCheckOptions& options = RandomCheckOptions());

/// Builds one random instance for `input_preds` (exposed for benches).
Database RandomInstance(Context* ctx, const std::vector<PredId>& input_preds,
                        int domain_size, int max_tuples_per_pred,
                        uint64_t seed);

}  // namespace exdl

#endif  // EXDL_EQUIV_RANDOM_CHECK_H_
