#include "equiv/random_check.h"

#include <algorithm>

#include "eval/evaluator.h"
#include "util/rng.h"

namespace exdl {
namespace {

std::string AnswersToString(const Context& ctx,
                            const std::vector<std::vector<Value>>& answers) {
  std::string out = "{";
  for (size_t i = 0; i < answers.size(); ++i) {
    if (i > 0) out += ", ";
    out += "(";
    for (size_t j = 0; j < answers[i].size(); ++j) {
      if (j > 0) out += ",";
      out += ctx.SymbolName(answers[i][j]);
    }
    out += ")";
  }
  out += "}";
  return out;
}

std::string DatabaseToString(const Context& ctx, const Database& db) {
  std::string out;
  for (const auto& [pred, rel] : db.relations()) {
    for (size_t r = 0; r < rel.size(); ++r) {
      out += ctx.PredicateDisplayName(pred);
      out += "(";
      std::span<const Value> row = rel.view().Scan(r);
      for (size_t j = 0; j < row.size(); ++j) {
        if (j > 0) out += ",";
        out += ctx.SymbolName(row[j]);
      }
      out += "). ";
    }
  }
  return out;
}

}  // namespace

Database RandomInstance(Context* ctx, const std::vector<PredId>& input_preds,
                        int domain_size, int max_tuples_per_pred,
                        uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> domain;
  domain.reserve(static_cast<size_t>(domain_size));
  for (int i = 0; i < domain_size; ++i) {
    domain.push_back(ctx->InternSymbol("c" + std::to_string(i)));
  }
  Database db;
  for (PredId pred : input_preds) {
    uint32_t arity = ctx->predicate(pred).arity;
    int count = static_cast<int>(
        rng.Below(static_cast<uint64_t>(max_tuples_per_pred) + 1));
    for (int t = 0; t < count; ++t) {
      std::vector<Value> row(arity);
      for (uint32_t j = 0; j < arity; ++j) {
        row[j] = domain[rng.Below(domain.size())];
      }
      db.AddTuple(pred, row);
    }
  }
  return db;
}

Result<RandomCheckReport> CheckQueryEquivalent(
    const Program& p1, const Program& p2,
    const std::vector<PredId>& input_preds,
    const RandomCheckOptions& options) {
  if (p1.context() != p2.context()) {
    return Status::InvalidArgument(
        "programs must share a Context to be compared");
  }
  if (!p1.query() || !p2.query()) {
    return Status::FailedPrecondition("both programs need queries");
  }
  Context* ctx = p1.context().get();
  RandomCheckReport report;
  for (int trial = 0; trial < options.trials; ++trial) {
    uint64_t seed = options.seed + static_cast<uint64_t>(trial) * 7919;
    Database db = RandomInstance(ctx, input_preds, options.domain_size,
                                 options.max_tuples_per_pred, seed);
    ++report.trials_run;
    EXDL_ASSIGN_OR_RETURN(EvalResult r1, Evaluate(p1, db));
    EXDL_ASSIGN_OR_RETURN(EvalResult r2, Evaluate(p2, db));
    if (r1.answers != r2.answers) {
      report.equivalent = false;
      report.counterexample =
          "trial " + std::to_string(trial) + ": input = " +
          DatabaseToString(*ctx, db) +
          "\n p1 answers = " + AnswersToString(*ctx, r1.answers) +
          "\n p2 answers = " + AnswersToString(*ctx, r2.answers);
      return report;
    }
  }
  return report;
}

Result<RandomCheckReport> CheckQueryEquivalentOnEdb(
    const Program& p1, const Program& p2,
    const RandomCheckOptions& options) {
  std::unordered_set<PredId> edb = p1.EdbPredicates();
  // Exclude the query predicate itself when it is underived in p1.
  std::vector<PredId> inputs;
  for (PredId p : edb) {
    if (p1.query() && p == p1.query()->pred && !p1.IsIdb(p)) {
      // Still include: a base-predicate query is legitimate input.
    }
    inputs.push_back(p);
  }
  std::sort(inputs.begin(), inputs.end());
  RandomCheckOptions opts = options;
  if (opts.populate_derived) {
    std::unordered_set<PredId> idb = p1.IdbPredicates();
    inputs.insert(inputs.end(), idb.begin(), idb.end());
    std::sort(inputs.begin(), inputs.end());
    inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
  }
  return CheckQueryEquivalent(p1, p2, inputs, opts);
}

}  // namespace exdl
