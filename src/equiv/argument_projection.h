// Argument projections and their summaries (Section 5).
//
// The paper defines an argument projection (p^a, p1^a1) as a bipartite
// graph on the needed argument positions of the two literals, with an edge
// when the same variable occupies both positions; the *summary* of a
// composite of projections has an edge wherever a *path* exists in the
// merged graph.
//
// Path connectivity through merged middle layers can link two source
// positions (or two target positions) to each other, and that intra-layer
// information changes the cross edges of later compositions. A faithful
// bipartite-edge-set representation would therefore not compose
// associatively. We instead represent a summary as a *partition* of the
// source and target argument positions into connected groups; this is
// exactly path connectivity, composes associatively (merge on the shared
// layer, then restrict), and the paper's cross edges are recovered as the
// pairs (i, j) lying in a common group.

#ifndef EXDL_EQUIV_ARGUMENT_PROJECTION_H_
#define EXDL_EQUIV_ARGUMENT_PROJECTION_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "ast/rule.h"

namespace exdl {

/// Summary of a (composite) argument projection from predicate version
/// `src` to predicate version `dst`: path-connectivity classes over the
/// src positions followed by the dst positions.
class Summary {
 public:
  /// The projection induced by `head` and one `body_lit` of a rule: two
  /// positions are connected when they hold the same variable or the same
  /// constant.
  static Summary FromRule(const Context& ctx, const Atom& head,
                          const Atom& body_lit);

  /// Identity projection on `pred` (the paper's trivial unit rule
  /// p(X..) :- p(X..), used in Example 7): position i ~ position i'.
  static Summary Identity(const Context& ctx, PredId pred);

  /// Summary of `ab` composed with `bc`; requires ab.dst() == bc.src().
  /// Classes of the shared layer are merged, then the shared layer is
  /// dropped — connectivity among the remaining positions is preserved.
  static Summary Compose(const Summary& ab, const Summary& bc);

  PredId src() const { return src_; }
  PredId dst() const { return dst_; }
  uint32_t src_arity() const { return src_arity_; }
  uint32_t dst_arity() const { return dst_arity_; }

  /// Class id of source position `i` (-1 = singleton/unconnected class is
  /// never used; every position always has a class).
  int SrcClass(uint32_t i) const { return classes_[i]; }
  int DstClass(uint32_t j) const { return classes_[src_arity_ + j]; }

  /// True when source position i and target position j are connected.
  bool Connected(uint32_t i, uint32_t j) const {
    return SrcClass(i) == DstClass(j);
  }

  /// The paper's cross edges: all connected (i, j) pairs.
  std::vector<std::pair<uint32_t, uint32_t>> CrossEdges() const;

  /// True if every cross edge of `other` joins positions that this summary
  /// also connects (same endpoints required). This is the soundness
  /// condition for replacing a derivation by a unit-rule chain: the chain's
  /// forced equalities must already hold along every composite path.
  bool ConnectsAtLeast(const Summary& other) const;

  /// Debug form like "a@nd->p@nn [0|0] [1 2|-]".
  std::string ToString(const Context& ctx) const;

  friend bool operator==(const Summary& a, const Summary& b) {
    return a.src_ == b.src_ && a.dst_ == b.dst_ && a.classes_ == b.classes_;
  }
  friend bool operator<(const Summary& a, const Summary& b) {
    if (a.src_ != b.src_) return a.src_ < b.src_;
    if (a.dst_ != b.dst_) return a.dst_ < b.dst_;
    return a.classes_ < b.classes_;
  }

  size_t Hash() const;

 private:
  Summary(PredId src, PredId dst, uint32_t src_arity, uint32_t dst_arity)
      : src_(src), dst_(dst), src_arity_(src_arity), dst_arity_(dst_arity) {}

  /// Renumbers classes by first occurrence so equal partitions compare
  /// equal.
  void Normalize();

  PredId src_;
  PredId dst_;
  uint32_t src_arity_;
  uint32_t dst_arity_;
  /// One class id per position: src positions first, then dst positions.
  std::vector<int> classes_;
};

}  // namespace exdl

template <>
struct std::hash<exdl::Summary> {
  size_t operator()(const exdl::Summary& s) const { return s.Hash(); }
};

#endif  // EXDL_EQUIV_ARGUMENT_PROJECTION_H_
