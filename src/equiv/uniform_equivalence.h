// Uniform containment / equivalence (Sagiv 1987; paper Section 3.3,
// Example 4).
//
// Uniform equivalence compares least fixpoints over *arbitrary* inputs —
// inputs may hold facts for derived predicates. It is decidable: P1's
// fixpoint is contained in P2's on every input iff, for every rule of P1,
// running P2 on the frozen body derives the frozen head. The standard
// deletion test freezes the rule to delete and asks whether the remaining
// program re-derives its head (Example 4's transitive-closure rule).

#ifndef EXDL_EQUIV_UNIFORM_EQUIVALENCE_H_
#define EXDL_EQUIV_UNIFORM_EQUIVALENCE_H_

#include "ast/program.h"
#include "util/status.h"

namespace exdl {

/// True iff on every database instance, P1's least fixpoint is a subset of
/// P2's (per predicate). Decidable (Sagiv's frozen-body criterion).
Result<bool> UniformlyContains(const Program& p2, const Program& p1);

/// Containment both ways.
Result<bool> UniformlyEquivalent(const Program& p1, const Program& p2);

/// Sagiv's deletion test: may `rule_index` be removed while preserving
/// uniform equivalence? (Sufficient and necessary for UE; only sufficient
/// for the weaker query equivalence the optimizer ultimately needs.)
Result<bool> DeletableUnderUniformEquivalence(const Program& program,
                                              size_t rule_index);

}  // namespace exdl

#endif  // EXDL_EQUIV_UNIFORM_EQUIVALENCE_H_
