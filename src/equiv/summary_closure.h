// Algorithm 5.1 (summary closure) and the deletion tests of Lemma 5.1 and
// Lemma 5.3.
//
// For each body-literal occurrence o = (rule, position), `SummariesTo(o)`
// is the set of summaries of all composite argument projections
// (q^a, ...), ..., (head(rule), o) — i.e. of all root-to-occurrence spines
// a derivation of a query fact can have. The set is computed by a worklist
// closure and is finite (bounded by partitions of the position sets).
//
// Separately, `UnitChains()` holds the summaries of all compositions of
// unit-rule projections starting from the query predicate (Lemma 5.3's set
// S2; Lemma 5.1 is the chain-length <= 1 case; the identity chain is the
// paper's trivial unit rule from Example 7). Each chain is tagged with the
// rules it uses so that a rule is never justified by a chain that needs
// that same rule.
//
// An occurrence o in rule r is *justified* when every summary reaching o
// connects at least the position pairs some unit chain (not using r)
// forces equal; the rule containing a justified occurrence can be deleted
// preserving uniform query equivalence. Occurrences unreachable from the
// query are vacuously justified (their rules contribute to no query fact).

#ifndef EXDL_EQUIV_SUMMARY_CLOSURE_H_
#define EXDL_EQUIV_SUMMARY_CLOSURE_H_

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/program.h"
#include "equiv/argument_projection.h"
#include "util/status.h"

namespace exdl {

/// A body literal occurrence, the paper's `p.n` numbering.
struct Occurrence {
  size_t rule = 0;
  size_t position = 0;
  bool operator==(const Occurrence&) const = default;
};
struct OccurrenceHash {
  size_t operator()(const Occurrence& o) const {
    return o.rule * 1000003u + o.position;
  }
};

struct SummaryClosureOptions {
  /// Caps keeping pathological programs from exhausting memory; hitting a
  /// cap marks the analysis incomplete and disables deletions (sound).
  size_t max_summaries_per_occurrence = 4096;
  size_t max_total_summaries = 1u << 20;
  size_t max_unit_chains = 4096;
  /// Maximum number of unit rules composed in one chain; 1 restricts the
  /// test to Lemma 5.1 (one unit rule, plus the identity), larger values
  /// give Lemma 5.3's closure. 0 = unlimited.
  size_t max_chain_length = 0;
};

class SummaryAnalysis {
 public:
  /// Runs Algorithm 5.1 for `program` (which must have a query).
  static Result<SummaryAnalysis> Build(
      const Program& program,
      const SummaryClosureOptions& options = SummaryClosureOptions());

  /// One element of Lemma 5.3's S2: a unit-rule chain from the query
  /// predicate, its summary, and the rules it uses.
  struct UnitChain {
    Summary summary;
    std::vector<size_t> rules_used;  ///< Sorted rule indices.
    size_t length = 0;               ///< Unit rules composed (0 = identity).
  };

  /// True if no closure cap was hit; when false, no deletion may be based
  /// on this analysis.
  bool complete() const { return complete_; }

  /// Summaries of all composite projections from the query to `o` (empty
  /// = unreachable).
  const std::vector<Summary>& SummariesTo(const Occurrence& o) const;

  const std::vector<UnitChain>& unit_chains() const { return unit_chains_; }

  /// The Lemma 5.3 test for `o` (see file comment).
  bool OccurrenceJustified(const Occurrence& o) const;

  /// When `o` is justified: the union of the rules used by the chosen
  /// subsuming unit chains (the rules the replacement derivations lean
  /// on). nullopt when not justified.
  std::optional<std::vector<size_t>> JustificationUses(
      const Occurrence& o) const;

  /// Rule indices containing at least one justified occurrence — the
  /// candidates of Algorithm 5.2. (Deleting one invalidates the analysis;
  /// the driver deletes one and rebuilds.)
  std::vector<size_t> DeletableRules() const;

  size_t total_summaries() const { return total_summaries_; }

 private:
  SummaryAnalysis() = default;

  const Program* program_ = nullptr;
  std::unordered_map<Occurrence, std::vector<Summary>, OccurrenceHash>
      reach_;
  std::unordered_map<Occurrence, std::unordered_set<Summary>, OccurrenceHash>
      reach_set_;
  std::vector<UnitChain> unit_chains_;
  bool complete_ = true;
  size_t total_summaries_ = 0;
  std::vector<Summary> empty_;
};

}  // namespace exdl

#endif  // EXDL_EQUIV_SUMMARY_CLOSURE_H_
