#include "equiv/summary_closure.h"

#include <algorithm>
#include <deque>

namespace exdl {

Result<SummaryAnalysis> SummaryAnalysis::Build(
    const Program& program, const SummaryClosureOptions& options) {
  if (!program.query()) {
    return Status::FailedPrecondition(
        "summary analysis requires a program with a query");
  }
  if (program.HasNegation()) {
    return Status::FailedPrecondition(
        "summary-based deletion requires a positive program");
  }
  SummaryAnalysis out;
  out.program_ = &program;
  const Context& ctx = program.ctx();
  PredId query_pred = program.query()->pred;

  // rules defining each predicate version.
  std::unordered_map<PredId, std::vector<size_t>> defining;
  for (size_t r = 0; r < program.rules().size(); ++r) {
    defining[program.rules()[r].head.pred].push_back(r);
  }

  // --- Closure of composite projections from the query --------------------
  std::deque<std::pair<Occurrence, Summary>> worklist;
  auto add_summary = [&](const Occurrence& o, Summary s) {
    auto& set = out.reach_set_[o];
    if (set.size() >= options.max_summaries_per_occurrence ||
        out.total_summaries_ >= options.max_total_summaries) {
      out.complete_ = false;
      return;
    }
    if (!set.insert(s).second) return;
    out.reach_[o].push_back(s);
    ++out.total_summaries_;
    worklist.emplace_back(o, std::move(s));
  };

  // Seeds: occurrences inside rules whose head is the query predicate.
  for (size_t r : defining.count(query_pred) ? defining[query_pred]
                                             : std::vector<size_t>{}) {
    const Rule& rule = program.rules()[r];
    for (size_t pos = 0; pos < rule.body.size(); ++pos) {
      add_summary(Occurrence{r, pos},
                  Summary::FromRule(ctx, rule.head, rule.body[pos]));
    }
  }
  // Extension: a summary reaching an occurrence of predicate P continues
  // into every rule defining P.
  while (!worklist.empty()) {
    auto [o, s] = worklist.front();
    worklist.pop_front();
    PredId p = program.rules()[o.rule].body[o.position].pred;
    auto it = defining.find(p);
    if (it == defining.end()) continue;
    for (size_t r2 : it->second) {
      const Rule& rule2 = program.rules()[r2];
      for (size_t pos = 0; pos < rule2.body.size(); ++pos) {
        add_summary(
            Occurrence{r2, pos},
            Summary::Compose(
                s, Summary::FromRule(ctx, rule2.head, rule2.body[pos])));
      }
    }
  }

  // --- Unit chains from the query (Lemma 5.3's S2) -------------------------
  std::vector<size_t> unit_rules;
  for (size_t r = 0; r < program.rules().size(); ++r) {
    if (program.rules()[r].IsUnitRule()) unit_rules.push_back(r);
  }
  auto chain_known = [&](const Summary& s,
                         const std::vector<size_t>& used) {
    for (const UnitChain& c : out.unit_chains_) {
      if (c.summary == s &&
          std::includes(used.begin(), used.end(), c.rules_used.begin(),
                        c.rules_used.end())) {
        // An existing chain with the same summary and a subset of the
        // rules subsumes the candidate.
        return true;
      }
    }
    return false;
  };
  std::deque<size_t> chain_worklist;  // indices into unit_chains_
  out.unit_chains_.push_back(
      UnitChain{Summary::Identity(ctx, query_pred), {}, 0});
  chain_worklist.push_back(0);
  while (!chain_worklist.empty()) {
    size_t ci = chain_worklist.front();
    chain_worklist.pop_front();
    // Copy: unit_chains_ may reallocate while we append.
    UnitChain chain = out.unit_chains_[ci];
    if (options.max_chain_length != 0 &&
        chain.length >= options.max_chain_length) {
      continue;
    }
    for (size_t u : unit_rules) {
      const Rule& unit = program.rules()[u];
      if (unit.head.pred != chain.summary.dst()) continue;
      Summary s = Summary::Compose(
          chain.summary, Summary::FromRule(ctx, unit.head, unit.body[0]));
      std::vector<size_t> used = chain.rules_used;
      if (!std::binary_search(used.begin(), used.end(), u)) {
        used.insert(std::upper_bound(used.begin(), used.end(), u), u);
      }
      if (chain_known(s, used)) continue;
      if (out.unit_chains_.size() >= options.max_unit_chains) {
        out.complete_ = false;
        break;
      }
      out.unit_chains_.push_back(
          UnitChain{std::move(s), std::move(used), chain.length + 1});
      chain_worklist.push_back(out.unit_chains_.size() - 1);
    }
  }
  return out;
}

const std::vector<Summary>& SummaryAnalysis::SummariesTo(
    const Occurrence& o) const {
  auto it = reach_.find(o);
  return it == reach_.end() ? empty_ : it->second;
}

bool SummaryAnalysis::OccurrenceJustified(const Occurrence& o) const {
  return JustificationUses(o).has_value();
}

std::optional<std::vector<size_t>> SummaryAnalysis::JustificationUses(
    const Occurrence& o) const {
  if (!complete_) return std::nullopt;
  const Atom& lit = program_->rules()[o.rule].body[o.position];
  std::unordered_set<size_t> uses;
  for (const Summary& s : SummariesTo(o)) {
    bool subsumed = false;
    for (const UnitChain& c : unit_chains_) {
      if (c.summary.dst() != lit.pred) continue;
      if (std::binary_search(c.rules_used.begin(), c.rules_used.end(),
                             o.rule)) {
        continue;  // a rule cannot justify its own deletion
      }
      if (s.ConnectsAtLeast(c.summary)) {
        uses.insert(c.rules_used.begin(), c.rules_used.end());
        subsumed = true;
        break;
      }
    }
    if (!subsumed) return std::nullopt;
  }
  // Vacuous when unreachable from the query (no summaries, empty uses).
  return std::vector<size_t>(uses.begin(), uses.end());
}

std::vector<size_t> SummaryAnalysis::DeletableRules() const {
  std::vector<size_t> out;
  for (size_t r = 0; r < program_->rules().size(); ++r) {
    const Rule& rule = program_->rules()[r];
    bool deletable = false;
    for (size_t pos = 0; pos < rule.body.size() && !deletable; ++pos) {
      deletable = OccurrenceJustified(Occurrence{r, pos});
    }
    // A rule with an empty body cannot be justified through an occurrence.
    if (deletable) out.push_back(r);
  }
  return out;
}

}  // namespace exdl
