#include "equiv/freeze.h"

namespace exdl {
namespace {

Atom FreezeAtom(const Atom& atom,
                std::unordered_map<SymbolId, SymbolId>* var_to_const,
                Context* ctx) {
  Atom out;
  out.pred = atom.pred;
  out.args.reserve(atom.args.size());
  for (const Term& t : atom.args) {
    if (t.IsConst()) {
      out.args.push_back(t);
      continue;
    }
    auto it = var_to_const->find(t.id());
    if (it == var_to_const->end()) {
      SymbolId c = ctx->FreshSymbol("frz");
      it = var_to_const->emplace(t.id(), c).first;
    }
    out.args.push_back(Term::Const(it->second));
  }
  return out;
}

}  // namespace

FrozenRule FreezeRule(const Rule& rule, Context* ctx) {
  FrozenRule out;
  for (const Atom& lit : rule.body) {
    Atom frozen = FreezeAtom(lit, &out.var_to_const, ctx);
    // Body atoms are ground after freezing by construction.
    (void)out.body_facts.AddFact(frozen);
  }
  out.head = FreezeAtom(rule.head, &out.var_to_const, ctx);
  return out;
}

}  // namespace exdl
