#include "grammar/language.h"

#include <deque>

namespace exdl {

Result<std::set<std::vector<GSym>>> EnumerateExtendedLanguage(
    const Cfg& grammar, uint32_t start, const LanguageOptions& options) {
  if (grammar.HasEpsilonProductions()) {
    return Status::FailedPrecondition(
        "bounded enumeration requires an epsilon-free grammar");
  }
  std::set<std::vector<GSym>> seen;
  std::deque<std::vector<GSym>> frontier;
  std::vector<GSym> initial = {GSym::N(start)};
  seen.insert(initial);
  frontier.push_back(std::move(initial));
  size_t explored = 0;
  while (!frontier.empty()) {
    std::vector<GSym> form = std::move(frontier.front());
    frontier.pop_front();
    if (++explored > options.max_forms) {
      return Status::FailedPrecondition(
          "extended-language enumeration exceeded max_forms");
    }
    for (size_t i = 0; i < form.size(); ++i) {
      if (form[i].terminal) continue;
      for (size_t pi : grammar.ProductionsOf(form[i].id)) {
        const Production& p = grammar.productions()[pi];
        if (form.size() - 1 + p.rhs.size() > options.max_length) continue;
        std::vector<GSym> next;
        next.reserve(form.size() - 1 + p.rhs.size());
        next.insert(next.end(), form.begin(), form.begin() + i);
        next.insert(next.end(), p.rhs.begin(), p.rhs.end());
        next.insert(next.end(), form.begin() + i + 1, form.end());
        if (seen.insert(next).second) frontier.push_back(std::move(next));
      }
    }
  }
  return seen;
}

Result<std::set<std::vector<uint32_t>>> EnumerateLanguage(
    const Cfg& grammar, uint32_t start, const LanguageOptions& options) {
  if (grammar.HasEpsilonProductions()) {
    return Status::FailedPrecondition(
        "bounded enumeration requires an epsilon-free grammar");
  }
  // Leftmost-only expansion suffices for terminal sentences and explores
  // far fewer forms than the extended enumeration.
  std::set<std::vector<uint32_t>> sentences;
  std::set<std::vector<GSym>> seen;
  std::deque<std::vector<GSym>> frontier;
  std::vector<GSym> initial = {GSym::N(start)};
  seen.insert(initial);
  frontier.push_back(std::move(initial));
  size_t explored = 0;
  while (!frontier.empty()) {
    std::vector<GSym> form = std::move(frontier.front());
    frontier.pop_front();
    if (++explored > options.max_forms) {
      return Status::FailedPrecondition(
          "language enumeration exceeded max_forms");
    }
    size_t leftmost = form.size();
    for (size_t i = 0; i < form.size(); ++i) {
      if (!form[i].terminal) {
        leftmost = i;
        break;
      }
    }
    if (leftmost == form.size()) {
      std::vector<uint32_t> sentence;
      sentence.reserve(form.size());
      for (const GSym& s : form) sentence.push_back(s.id);
      sentences.insert(std::move(sentence));
      continue;
    }
    for (size_t pi : grammar.ProductionsOf(form[leftmost].id)) {
      const Production& p = grammar.productions()[pi];
      if (form.size() - 1 + p.rhs.size() > options.max_length) continue;
      std::vector<GSym> next;
      next.reserve(form.size() - 1 + p.rhs.size());
      next.insert(next.end(), form.begin(), form.begin() + leftmost);
      next.insert(next.end(), p.rhs.begin(), p.rhs.end());
      next.insert(next.end(), form.begin() + leftmost + 1, form.end());
      if (seen.insert(next).second) frontier.push_back(std::move(next));
    }
  }
  return sentences;
}

}  // namespace exdl
