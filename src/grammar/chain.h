// Binary chain programs <-> context-free grammars (Section 1.1, Lemma 4.1).
//
// A binary chain rule has the form
//     p(X, Y) :- q1(X, Z1), q2(Z1, Z2), ..., qn(Zn-1, Y).
// with all chain variables distinct. Dropping arguments turns it into the
// production P -> Q1 Q2 ... Qn; derived predicates are nonterminals, base
// predicates terminals, the query predicate the start symbol.

#ifndef EXDL_GRAMMAR_CHAIN_H_
#define EXDL_GRAMMAR_CHAIN_H_

#include "ast/program.h"
#include "grammar/cfg.h"
#include "util/status.h"

namespace exdl {

/// True if every rule of `program` is a binary chain rule.
bool IsBinaryChainProgram(const Program& program);

/// Extracts the grammar; the start symbol is the query predicate (which
/// must be derived and binary). Fails on non-chain programs.
Result<Cfg> ChainProgramToGrammar(const Program& program);

/// Inverse direction: builds the binary chain program of `grammar` into a
/// fresh Program using `ctx`, with query `<start>(X, Y)`. Epsilon
/// productions are rejected (a chain rule needs at least one body literal).
Result<Program> GrammarToChainProgram(const Cfg& grammar, ContextPtr ctx);

}  // namespace exdl

#endif  // EXDL_GRAMMAR_CHAIN_H_
