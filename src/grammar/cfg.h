// Context-free grammars, as induced by chain programs (Section 1.1): drop
// the arguments of a binary chain rule and its predicates become grammar
// symbols — derived predicates are nonterminals, base predicates are
// terminals, the query predicate is the start symbol.

#ifndef EXDL_GRAMMAR_CFG_H_
#define EXDL_GRAMMAR_CFG_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace exdl {

/// A grammar symbol: terminal or nonterminal index.
struct GSym {
  bool terminal = false;
  uint32_t id = 0;

  static GSym T(uint32_t id) { return {true, id}; }
  static GSym N(uint32_t id) { return {false, id}; }

  bool operator==(const GSym&) const = default;
  auto operator<=>(const GSym&) const = default;
};

struct Production {
  uint32_t lhs = 0;       ///< Nonterminal index.
  std::vector<GSym> rhs;  ///< May be empty (epsilon).
};

class Cfg {
 public:
  Cfg() = default;

  uint32_t AddNonterminal(std::string_view name);
  uint32_t AddTerminal(std::string_view name);
  std::optional<uint32_t> FindNonterminal(std::string_view name) const;
  std::optional<uint32_t> FindTerminal(std::string_view name) const;

  void AddProduction(uint32_t lhs, std::vector<GSym> rhs);
  void SetStart(uint32_t nt) { start_ = nt; }
  uint32_t start() const { return start_; }

  size_t NumNonterminals() const { return nonterminal_names_.size(); }
  size_t NumTerminals() const { return terminal_names_.size(); }
  const std::string& NonterminalName(uint32_t id) const {
    return nonterminal_names_[id];
  }
  const std::string& TerminalName(uint32_t id) const {
    return terminal_names_[id];
  }
  const std::vector<Production>& productions() const { return productions_; }
  /// Indices into productions() with the given lhs.
  const std::vector<size_t>& ProductionsOf(uint32_t nt) const;

  /// Nonterminals that derive at least one terminal string.
  std::vector<bool> ProductiveNonterminals() const;
  /// Nonterminals reachable from the start symbol.
  std::vector<bool> ReachableNonterminals() const;
  /// True if some production of a reachable nonterminal has an empty rhs.
  bool HasEpsilonProductions() const;

  /// Copy without useless symbols: keeps only productions whose
  /// nonterminals are both reachable from the start and productive.
  /// Nonterminal/terminal ids are renumbered; the start symbol is kept
  /// even when unproductive (it then has no productions).
  Cfg Trim() const;

  /// "S -> a B | c" style listing, start symbol first.
  std::string ToString() const;

 private:
  std::vector<std::string> nonterminal_names_;
  std::vector<std::string> terminal_names_;
  std::unordered_map<std::string, uint32_t> nonterminal_ids_;
  std::unordered_map<std::string, uint32_t> terminal_ids_;
  std::vector<Production> productions_;
  std::vector<std::vector<size_t>> productions_of_;
  uint32_t start_ = 0;
  std::vector<size_t> empty_;
};

}  // namespace exdl

template <>
struct std::hash<exdl::GSym> {
  size_t operator()(const exdl::GSym& s) const {
    return (static_cast<size_t>(s.terminal) << 31) ^ s.id;
  }
};

#endif  // EXDL_GRAMMAR_CFG_H_
