#include "grammar/nfa.h"

#include <functional>
#include <optional>

#include "grammar/regularity.h"

namespace exdl {

void Nfa::SpliceCopy(const Nfa& fragment, uint32_t from, uint32_t to) {
  uint32_t offset = static_cast<uint32_t>(states.size());
  for (const std::vector<Edge>& edges : fragment.states) {
    uint32_t s = AddState();
    for (const Edge& e : edges) {
      states[s].push_back(Edge{e.symbol, e.to + offset});
    }
  }
  AddEdge(from, kEpsilon, offset + fragment.start);
  AddEdge(offset + fragment.accept, kEpsilon, to);
}

Nfa Nfa::Reversed() const {
  Nfa out;
  out.states.resize(states.size());
  for (uint32_t s = 0; s < states.size(); ++s) {
    for (const Edge& e : states[s]) {
      out.states[e.to].push_back(Edge{e.symbol, s});
    }
  }
  out.start = accept;
  out.accept = start;
  return out;
}

namespace {

/// Builder resolving nonterminal fragments bottom-up over the SCC DAG.
class NfaBuilder {
 public:
  explicit NfaBuilder(const Cfg& grammar) : grammar_(grammar) {
    scc_ = NonterminalSccs(grammar, &num_sccs_);
    members_.resize(static_cast<size_t>(num_sccs_));
    for (uint32_t nt = 0; nt < grammar.NumNonterminals(); ++nt) {
      members_[static_cast<size_t>(scc_[nt])].push_back(nt);
    }
    fragments_.resize(grammar.NumNonterminals());
  }

  Result<Nfa> Fragment(uint32_t nt) {
    if (!fragments_[nt].has_value()) {
      EXDL_RETURN_IF_ERROR(BuildScc(scc_[nt]));
    }
    return *fragments_[nt];
  }

 private:
  /// Right-linear = 1, left-linear = 2, either = 0, conflict = error.
  Result<int> SccKind(int scc_id) {
    int kind = 0;
    for (uint32_t member : members_[static_cast<size_t>(scc_id)]) {
      for (size_t pi : grammar_.ProductionsOf(member)) {
        const Production& p = grammar_.productions()[pi];
        size_t internal_count = 0;
        size_t internal_pos = 0;
        for (size_t i = 0; i < p.rhs.size(); ++i) {
          if (!p.rhs[i].terminal && scc_[p.rhs[i].id] == scc_id) {
            ++internal_count;
            internal_pos = i;
          }
        }
        if (internal_count == 0) continue;
        if (internal_count > 1) {
          return Status::FailedPrecondition(
              "grammar is not strongly regular: production of '" +
              grammar_.NonterminalName(member) +
              "' references its SCC more than once");
        }
        bool right = internal_pos + 1 == p.rhs.size();
        bool left = internal_pos == 0;
        if (right && left) continue;
        int needed = right ? 1 : (left ? 2 : 3);
        if (needed == 3 || (kind != 0 && kind != needed)) {
          return Status::FailedPrecondition(
              "grammar is not strongly regular: SCC of '" +
              grammar_.NonterminalName(member) +
              "' mixes left- and right-linear recursion");
        }
        kind = needed;
      }
    }
    return kind;
  }

  Status BuildScc(int scc_id) {
    EXDL_ASSIGN_OR_RETURN(int kind, SccKind(scc_id));
    bool left_linear = kind == 2;
    const std::vector<uint32_t>& members =
        members_[static_cast<size_t>(scc_id)];

    // One machine for the whole SCC: a state per member plus one final.
    Nfa machine;
    std::vector<uint32_t> state_of(grammar_.NumNonterminals(), 0);
    for (uint32_t m : members) state_of[m] = machine.AddState();
    uint32_t final_state = machine.AddState();
    machine.accept = final_state;

    for (uint32_t member : members) {
      for (size_t pi : grammar_.ProductionsOf(member)) {
        const Production& p = grammar_.productions()[pi];
        // Normalize to right-linear orientation: for a left-linear SCC the
        // production is processed reversed (and sub-fragments reversed);
        // the machine is flipped back at the end.
        std::vector<GSym> symbols(p.rhs);
        if (left_linear) {
          std::reverse(symbols.begin(), symbols.end());
        }
        std::optional<uint32_t> trailing_member;
        if (!symbols.empty() && !symbols.back().terminal &&
            scc_[symbols.back().id] == scc_id) {
          trailing_member = symbols.back().id;
          symbols.pop_back();
        }
        uint32_t cur = state_of[member];
        for (const GSym& s : symbols) {
          uint32_t next = machine.AddState();
          if (s.terminal) {
            machine.AddEdge(cur, static_cast<int>(s.id), next);
          } else {
            EXDL_ASSIGN_OR_RETURN(Nfa sub, Fragment(s.id));
            machine.SpliceCopy(left_linear ? sub.Reversed() : sub, cur,
                               next);
          }
          cur = next;
        }
        machine.AddEdge(cur, kEpsilon,
                        trailing_member ? state_of[*trailing_member]
                                        : final_state);
      }
    }

    for (uint32_t member : members) {
      Nfa fragment = machine;
      fragment.start = state_of[member];
      fragment.accept = final_state;
      fragments_[member] = left_linear ? fragment.Reversed() : fragment;
    }
    return Status::Ok();
  }

  const Cfg& grammar_;
  std::vector<int> scc_;
  int num_sccs_ = 0;
  std::vector<std::vector<uint32_t>> members_;
  std::vector<std::optional<Nfa>> fragments_;
};

}  // namespace

Result<Nfa> StronglyRegularToNfa(const Cfg& grammar, uint32_t start) {
  NfaBuilder builder(grammar);
  return builder.Fragment(start);
}

}  // namespace exdl
