// Executable Lemma 4.1: the four equivalence notions for binary chain
// programs correspond to language equalities of their grammars.
//
//   (1) DB equivalence          <-> L(G1, S) = L(G2, S) for every S
//   (2) query equivalence       <-> L(G1, Q1) = L(G2, Q2)
//   (3) uniform equivalence     <-> L^ex equality for every nonterminal
//   (4) uniform query equiv.    <-> L^ex(G1, Q1) = L^ex(G2, Q2)
//
// (2) is decidable when both grammars are strongly regular (DFA
// equivalence); in general all four are undecidable (Lemma 4.2 /
// Hopcroft & Ullman), so the general-purpose routines below are bounded
// *refutation* procedures: they can prove inequivalence by exhibiting a
// separating (extended) word and report "no difference up to length n"
// otherwise.

#ifndef EXDL_GRAMMAR_EQUIVALENCE_H_
#define EXDL_GRAMMAR_EQUIVALENCE_H_

#include <optional>
#include <string>

#include "ast/program.h"
#include "grammar/cfg.h"
#include "grammar/language.h"
#include "util/status.h"

namespace exdl {

/// Result of a bounded comparison.
struct BoundedComparison {
  /// True when a separating word was found (the notions differ).
  bool separated = false;
  /// A witness, rendered with terminal/nonterminal names.
  std::string witness;
  /// The length bound that was exhausted when !separated.
  size_t bound = 0;
};

/// Decides query equivalence of two *strongly regular* binary chain
/// programs exactly (Lemma 4.1(2) + DFA equivalence). Fails when either
/// grammar is outside the fragment. Terminal alphabets are matched by
/// name; a terminal of one program missing from the other separates the
/// languages unless it is unusable.
Result<bool> ChainQueryEquivalent(const Program& p1, const Program& p2);

/// Bounded refutation of query equivalence via L (Lemma 4.1(2)).
Result<BoundedComparison> BoundedChainQueryEquivalence(
    const Program& p1, const Program& p2,
    const LanguageOptions& options = LanguageOptions());

/// Bounded refutation of *uniform* query equivalence via L^ex
/// (Lemma 4.1(4)).
Result<BoundedComparison> BoundedChainUniformQueryEquivalence(
    const Program& p1, const Program& p2,
    const LanguageOptions& options = LanguageOptions());

/// Bounded refutation of DB equivalence (Lemma 4.1(1)): L(G, S) compared
/// for every nonterminal name the two grammars share; a nonterminal
/// defined on one side only separates immediately.
Result<BoundedComparison> BoundedChainDbEquivalence(
    const Program& p1, const Program& p2,
    const LanguageOptions& options = LanguageOptions());

/// Bounded refutation of uniform equivalence (Lemma 4.1(3)): L^ex per
/// shared nonterminal.
Result<BoundedComparison> BoundedChainUniformEquivalence(
    const Program& p1, const Program& p2,
    const LanguageOptions& options = LanguageOptions());

}  // namespace exdl

#endif  // EXDL_GRAMMAR_EQUIVALENCE_H_
