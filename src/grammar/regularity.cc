#include "grammar/regularity.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace exdl {
namespace {

/// Nonterminals deriving the empty string.
std::vector<bool> NullableNonterminals(const Cfg& grammar) {
  std::vector<bool> nullable(grammar.NumNonterminals(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Production& p : grammar.productions()) {
      if (nullable[p.lhs]) continue;
      bool all = true;
      for (const GSym& s : p.rhs) {
        if (s.terminal || !nullable[s.id]) {
          all = false;
          break;
        }
      }
      if (all) {
        nullable[p.lhs] = true;
        changed = true;
      }
    }
  }
  return nullable;
}

}  // namespace

bool IsSelfEmbedding(const Cfg& grammar) {
  size_t n = grammar.NumNonterminals();
  std::vector<bool> nullable = NullableNonterminals(grammar);
  // Conservative "derives some nonempty string" (unproductive symbols are
  // treated as solid, which can only over-report self-embedding — the safe
  // direction, since only non-self-embedding implies regularity).
  auto solid = [&](const GSym& s) { return s.terminal || !nullable[s.id]; };
  // state[(A*n+B)*4 + flags] reached, flags = l | (r<<1).
  std::vector<bool> reached(n * n * 4, false);
  std::deque<std::pair<size_t, int>> worklist;  // (A*n+B, flags)
  auto add = [&](uint32_t a, uint32_t b, int flags) {
    size_t key = (static_cast<size_t>(a) * n + b) * 4 +
                 static_cast<size_t>(flags);
    if (reached[key]) return;
    reached[key] = true;
    worklist.emplace_back(static_cast<size_t>(a) * n + b, flags);
  };
  for (const Production& p : grammar.productions()) {
    for (size_t i = 0; i < p.rhs.size(); ++i) {
      if (p.rhs[i].terminal) continue;
      bool l = false;
      bool r = false;
      for (size_t j = 0; j < i; ++j) l = l || solid(p.rhs[j]);
      for (size_t j = i + 1; j < p.rhs.size(); ++j) r = r || solid(p.rhs[j]);
      add(p.lhs, p.rhs[i].id, (l ? 1 : 0) | (r ? 2 : 0));
    }
  }
  while (!worklist.empty()) {
    auto [ab, flags] = worklist.front();
    worklist.pop_front();
    uint32_t a = static_cast<uint32_t>(ab / n);
    uint32_t b = static_cast<uint32_t>(ab % n);
    if (a == b && flags == 3) return true;
    // Extend on the right (a,b)∘(b,c) and on the left (x,a)∘(a,b); doing
    // both keeps the closure complete regardless of discovery order.
    for (int f2 = 0; f2 < 4; ++f2) {
      for (uint32_t c = 0; c < n; ++c) {
        size_t right_key = (static_cast<size_t>(b) * n + c) * 4 +
                           static_cast<size_t>(f2);
        if (reached[right_key]) add(a, c, flags | f2);
        size_t left_key = (static_cast<size_t>(c) * n + a) * 4 +
                          static_cast<size_t>(f2);
        if (reached[left_key]) add(c, b, flags | f2);
      }
    }
  }
  for (uint32_t a = 0; a < n; ++a) {
    if (reached[(static_cast<size_t>(a) * n + a) * 4 + 3]) return true;
  }
  return false;
}

std::vector<int> NonterminalSccs(const Cfg& grammar, int* num_sccs) {
  size_t n = grammar.NumNonterminals();
  std::vector<std::vector<uint32_t>> adj(n);
  for (const Production& p : grammar.productions()) {
    for (const GSym& s : p.rhs) {
      if (!s.terminal) adj[p.lhs].push_back(s.id);
    }
  }
  // Iterative Tarjan.
  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  std::vector<int> scc(n, -1);
  int next_index = 0;
  int next_scc = 0;
  struct Frame {
    uint32_t node;
    size_t edge;
  };
  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < adj[f.node].size()) {
        uint32_t w = adj[f.node][f.edge++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[w]);
        }
        continue;
      }
      uint32_t node = f.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] =
            std::min(lowlink[frames.back().node], lowlink[node]);
      }
      if (lowlink[node] == index[node]) {
        for (;;) {
          uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc[w] = next_scc;
          if (w == node) break;
        }
        ++next_scc;
      }
    }
  }
  if (num_sccs != nullptr) *num_sccs = next_scc;
  return scc;
}

bool IsStronglyRegular(const Cfg& grammar) {
  int num_sccs = 0;
  std::vector<int> scc = NonterminalSccs(grammar, &num_sccs);
  // 0 = unconstrained, 1 = right-linear, 2 = left-linear, 3 = conflict.
  std::vector<int> kind(static_cast<size_t>(num_sccs), 0);
  for (const Production& p : grammar.productions()) {
    int my_scc = scc[p.lhs];
    std::vector<size_t> internal;
    for (size_t i = 0; i < p.rhs.size(); ++i) {
      if (!p.rhs[i].terminal && scc[p.rhs[i].id] == my_scc) {
        internal.push_back(i);
      }
    }
    if (internal.empty()) continue;
    if (internal.size() > 1) return false;
    size_t pos = internal[0];
    bool can_right = pos + 1 == p.rhs.size();
    bool can_left = pos == 0;
    int& k = kind[static_cast<size_t>(my_scc)];
    if (can_right && can_left) continue;  // single-symbol rhs fits either
    if (can_right) {
      if (k == 2) return false;
      k = 1;
    } else if (can_left) {
      if (k == 1) return false;
      k = 2;
    } else {
      return false;  // internal nonterminal in the middle
    }
  }
  return true;
}

}  // namespace exdl
