#include "grammar/dfa.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace exdl {
namespace {

std::set<uint32_t> EpsilonClosure(const Nfa& nfa,
                                  const std::set<uint32_t>& states) {
  std::set<uint32_t> closure = states;
  std::deque<uint32_t> frontier(states.begin(), states.end());
  while (!frontier.empty()) {
    uint32_t s = frontier.front();
    frontier.pop_front();
    for (const Nfa::Edge& e : nfa.states[s]) {
      if (e.symbol == kEpsilon && closure.insert(e.to).second) {
        frontier.push_back(e.to);
      }
    }
  }
  return closure;
}

}  // namespace

Dfa Dfa::FromNfa(const Nfa& nfa, uint32_t alphabet_size) {
  Dfa dfa(alphabet_size);
  std::map<std::set<uint32_t>, uint32_t> ids;
  std::deque<std::set<uint32_t>> worklist;
  auto intern = [&](std::set<uint32_t> states) -> uint32_t {
    auto it = ids.find(states);
    if (it != ids.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(ids.size());
    bool accepting = states.count(nfa.accept) > 0;
    ids.emplace(states, id);
    dfa.accepting_.push_back(accepting);
    dfa.transitions_.resize(dfa.accepting_.size() * alphabet_size, 0);
    worklist.push_back(std::move(states));
    return id;
  };
  dfa.start_ = intern(EpsilonClosure(nfa, {nfa.start}));
  while (!worklist.empty()) {
    std::set<uint32_t> states = std::move(worklist.front());
    worklist.pop_front();
    uint32_t id = ids.at(states);
    for (uint32_t a = 0; a < alphabet_size; ++a) {
      std::set<uint32_t> next;
      for (uint32_t s : states) {
        for (const Nfa::Edge& e : nfa.states[s]) {
          if (e.symbol == static_cast<int>(a)) next.insert(e.to);
        }
      }
      uint32_t target = intern(EpsilonClosure(nfa, next));
      dfa.transitions_[id * alphabet_size + a] = target;
    }
  }
  return dfa;
}

Dfa Dfa::Minimized() const {
  // Drop unreachable states first.
  std::vector<uint32_t> order;
  std::vector<int> reachable(NumStates(), -1);
  order.push_back(start_);
  reachable[start_] = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    for (uint32_t a = 0; a < alphabet_size_; ++a) {
      uint32_t t = Next(order[i], a);
      if (reachable[t] == -1) {
        reachable[t] = static_cast<int>(order.size());
        order.push_back(t);
      }
    }
  }
  size_t n = order.size();

  // Moore refinement on the reachable part.
  std::vector<int> block(n);
  for (size_t i = 0; i < n; ++i) block[i] = accepting_[order[i]] ? 1 : 0;
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<std::vector<int>, int> signature_block;
    std::vector<int> new_block(n);
    for (size_t i = 0; i < n; ++i) {
      std::vector<int> signature;
      signature.reserve(alphabet_size_ + 1);
      signature.push_back(block[i]);
      for (uint32_t a = 0; a < alphabet_size_; ++a) {
        signature.push_back(
            block[static_cast<size_t>(reachable[Next(order[i], a)])]);
      }
      auto [it, inserted] = signature_block.emplace(
          std::move(signature), static_cast<int>(signature_block.size()));
      new_block[i] = it->second;
    }
    int old_count = 1 + *std::max_element(block.begin(), block.end());
    int new_count = static_cast<int>(signature_block.size());
    if (new_count != old_count) changed = true;
    block = std::move(new_block);
  }

  int num_blocks = 1 + *std::max_element(block.begin(), block.end());
  Dfa out(alphabet_size_);
  out.accepting_.assign(static_cast<size_t>(num_blocks), false);
  out.transitions_.assign(
      static_cast<size_t>(num_blocks) * alphabet_size_, 0);
  for (size_t i = 0; i < n; ++i) {
    uint32_t b = static_cast<uint32_t>(block[i]);
    if (accepting_[order[i]]) out.accepting_[b] = true;
    for (uint32_t a = 0; a < alphabet_size_; ++a) {
      out.transitions_[b * alphabet_size_ + a] = static_cast<uint32_t>(
          block[static_cast<size_t>(reachable[Next(order[i], a)])]);
    }
  }
  out.start_ = static_cast<uint32_t>(block[0]);  // order[0] == start_
  return out;
}

bool Dfa::Accepts(std::span<const uint32_t> word) const {
  uint32_t state = start_;
  for (uint32_t a : word) state = Next(state, a);
  return accepting_[state];
}

bool Dfa::Equivalent(const Dfa& a, const Dfa& b) {
  if (a.alphabet_size_ != b.alphabet_size_) return false;
  std::set<std::pair<uint32_t, uint32_t>> seen;
  std::deque<std::pair<uint32_t, uint32_t>> worklist;
  worklist.emplace_back(a.start_, b.start_);
  seen.insert(worklist.front());
  while (!worklist.empty()) {
    auto [sa, sb] = worklist.front();
    worklist.pop_front();
    if (a.accepting_[sa] != b.accepting_[sb]) return false;
    for (uint32_t x = 0; x < a.alphabet_size_; ++x) {
      std::pair<uint32_t, uint32_t> next{a.Next(sa, x), b.Next(sb, x)};
      if (seen.insert(next).second) worklist.push_back(next);
    }
  }
  return true;
}

}  // namespace exdl
