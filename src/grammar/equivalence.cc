#include "grammar/equivalence.h"

#include <algorithm>
#include <map>
#include <set>

#include "grammar/chain.h"
#include "grammar/dfa.h"
#include "grammar/nfa.h"
#include "grammar/regularity.h"
#include "util/string_util.h"

namespace exdl {
namespace {

/// Maps a grammar's terminal ids into a shared union alphabet (by name).
std::vector<int> TerminalMap(const Cfg& grammar,
                             std::map<std::string, uint32_t>* alphabet) {
  std::vector<int> out(grammar.NumTerminals());
  for (uint32_t t = 0; t < grammar.NumTerminals(); ++t) {
    auto [it, inserted] = alphabet->emplace(
        grammar.TerminalName(t), static_cast<uint32_t>(alphabet->size()));
    out[t] = static_cast<int>(it->second);
  }
  return out;
}

Nfa RemapSymbols(const Nfa& nfa, const std::vector<int>& map) {
  Nfa out = nfa;
  for (std::vector<Nfa::Edge>& edges : out.states) {
    for (Nfa::Edge& e : edges) {
      if (e.symbol != kEpsilon) e.symbol = map[static_cast<size_t>(e.symbol)];
    }
  }
  return out;
}

/// Renders one (extended) word with symbol names.
std::string RenderWord(const std::vector<std::string>& word) {
  return word.empty() ? "ε" : Join(word, " ");
}

/// First element of the symmetric difference, if any.
std::optional<std::vector<std::string>> FirstDifference(
    const std::set<std::vector<std::string>>& a,
    const std::set<std::vector<std::string>>& b) {
  for (const auto& w : a) {
    if (b.find(w) == b.end()) return w;
  }
  for (const auto& w : b) {
    if (a.find(w) == a.end()) return w;
  }
  return std::nullopt;
}

}  // namespace

Result<bool> ChainQueryEquivalent(const Program& p1, const Program& p2) {
  EXDL_ASSIGN_OR_RETURN(Cfg g1, ChainProgramToGrammar(p1));
  EXDL_ASSIGN_OR_RETURN(Cfg g2, ChainProgramToGrammar(p2));
  if (!IsStronglyRegular(g1) || !IsStronglyRegular(g2)) {
    return Status::FailedPrecondition(
        "exact chain query equivalence needs strongly regular grammars "
        "(use the bounded refutation otherwise)");
  }
  std::map<std::string, uint32_t> alphabet;
  std::vector<int> map1 = TerminalMap(g1, &alphabet);
  std::vector<int> map2 = TerminalMap(g2, &alphabet);
  EXDL_ASSIGN_OR_RETURN(Nfa n1, StronglyRegularToNfa(g1, g1.start()));
  EXDL_ASSIGN_OR_RETURN(Nfa n2, StronglyRegularToNfa(g2, g2.start()));
  uint32_t size = static_cast<uint32_t>(alphabet.size());
  Dfa d1 = Dfa::FromNfa(RemapSymbols(n1, map1), size);
  Dfa d2 = Dfa::FromNfa(RemapSymbols(n2, map2), size);
  return Dfa::Equivalent(d1, d2);
}

Result<BoundedComparison> BoundedChainQueryEquivalence(
    const Program& p1, const Program& p2, const LanguageOptions& options) {
  EXDL_ASSIGN_OR_RETURN(Cfg g1, ChainProgramToGrammar(p1));
  EXDL_ASSIGN_OR_RETURN(Cfg g2, ChainProgramToGrammar(p2));
  auto named = [&](const Cfg& g,
                   const std::set<std::vector<uint32_t>>& words) {
    std::set<std::vector<std::string>> out;
    for (const auto& w : words) {
      std::vector<std::string> names;
      names.reserve(w.size());
      for (uint32_t t : w) names.push_back(g.TerminalName(t));
      out.insert(std::move(names));
    }
    return out;
  };
  EXDL_ASSIGN_OR_RETURN(auto w1, EnumerateLanguage(g1, g1.start(), options));
  EXDL_ASSIGN_OR_RETURN(auto w2, EnumerateLanguage(g2, g2.start(), options));
  BoundedComparison result;
  result.bound = options.max_length;
  std::optional<std::vector<std::string>> witness =
      FirstDifference(named(g1, w1), named(g2, w2));
  if (witness) {
    result.separated = true;
    result.witness = RenderWord(*witness);
  }
  return result;
}

Result<BoundedComparison> BoundedChainUniformQueryEquivalence(
    const Program& p1, const Program& p2, const LanguageOptions& options) {
  EXDL_ASSIGN_OR_RETURN(Cfg g1, ChainProgramToGrammar(p1));
  EXDL_ASSIGN_OR_RETURN(Cfg g2, ChainProgramToGrammar(p2));
  auto named = [&](const Cfg& g, const std::set<std::vector<GSym>>& forms) {
    std::set<std::vector<std::string>> out;
    for (const auto& form : forms) {
      std::vector<std::string> names;
      names.reserve(form.size());
      for (const GSym& s : form) {
        names.push_back(s.terminal ? g.TerminalName(s.id)
                                   : g.NonterminalName(s.id));
      }
      out.insert(std::move(names));
    }
    return out;
  };
  EXDL_ASSIGN_OR_RETURN(auto f1,
                        EnumerateExtendedLanguage(g1, g1.start(), options));
  EXDL_ASSIGN_OR_RETURN(auto f2,
                        EnumerateExtendedLanguage(g2, g2.start(), options));
  BoundedComparison result;
  result.bound = options.max_length;
  // The start symbols themselves may differ by name (they are the two
  // query predicates); compare the forms with each start rendered as "?".
  auto canonical = [&](std::set<std::vector<std::string>> forms,
                       const std::string& start_name) {
    std::set<std::vector<std::string>> out;
    for (std::vector<std::string> f : forms) {
      for (std::string& s : f) {
        if (s == start_name) s = "?";
      }
      out.insert(std::move(f));
    }
    return out;
  };
  std::optional<std::vector<std::string>> witness = FirstDifference(
      canonical(named(g1, f1), g1.NonterminalName(g1.start())),
      canonical(named(g2, f2), g2.NonterminalName(g2.start())));
  if (witness) {
    result.separated = true;
    result.witness = RenderWord(*witness);
  }
  return result;
}

}  // namespace exdl

namespace exdl {
namespace {

/// Shared driver for the per-nonterminal bounded comparisons of
/// Lemma 4.1(1) and 4.1(3).
Result<BoundedComparison> PerNonterminalComparison(
    const Program& p1, const Program& p2, const LanguageOptions& options,
    bool extended) {
  EXDL_ASSIGN_OR_RETURN(Cfg g1, ChainProgramToGrammar(p1));
  EXDL_ASSIGN_OR_RETURN(Cfg g2, ChainProgramToGrammar(p2));
  BoundedComparison result;
  result.bound = options.max_length;
  // Nonterminal vocabularies must agree.
  for (uint32_t n = 0; n < g1.NumNonterminals(); ++n) {
    if (!g2.FindNonterminal(g1.NonterminalName(n))) {
      result.separated = true;
      result.witness = "nonterminal only on one side: " +
                       g1.NonterminalName(n);
      return result;
    }
  }
  for (uint32_t n = 0; n < g2.NumNonterminals(); ++n) {
    if (!g1.FindNonterminal(g2.NonterminalName(n))) {
      result.separated = true;
      result.witness = "nonterminal only on one side: " +
                       g2.NonterminalName(n);
      return result;
    }
  }
  auto render = [&](const Cfg& g, const std::vector<GSym>& form) {
    std::vector<std::string> names;
    for (const GSym& s : form) {
      names.push_back(s.terminal ? g.TerminalName(s.id)
                                 : g.NonterminalName(s.id));
    }
    return names;
  };
  for (uint32_t n = 0; n < g1.NumNonterminals(); ++n) {
    uint32_t m = *g2.FindNonterminal(g1.NonterminalName(n));
    std::set<std::vector<std::string>> w1;
    std::set<std::vector<std::string>> w2;
    if (extended) {
      EXDL_ASSIGN_OR_RETURN(auto f1,
                            EnumerateExtendedLanguage(g1, n, options));
      EXDL_ASSIGN_OR_RETURN(auto f2,
                            EnumerateExtendedLanguage(g2, m, options));
      for (const auto& f : f1) w1.insert(render(g1, f));
      for (const auto& f : f2) w2.insert(render(g2, f));
    } else {
      EXDL_ASSIGN_OR_RETURN(auto f1, EnumerateLanguage(g1, n, options));
      EXDL_ASSIGN_OR_RETURN(auto f2, EnumerateLanguage(g2, m, options));
      for (const auto& f : f1) {
        std::vector<std::string> names;
        for (uint32_t t : f) names.push_back(g1.TerminalName(t));
        w1.insert(std::move(names));
      }
      for (const auto& f : f2) {
        std::vector<std::string> names;
        for (uint32_t t : f) names.push_back(g2.TerminalName(t));
        w2.insert(std::move(names));
      }
    }
    std::optional<std::vector<std::string>> witness =
        FirstDifference(w1, w2);
    if (witness) {
      result.separated = true;
      result.witness =
          g1.NonterminalName(n) + ": " + RenderWord(*witness);
      return result;
    }
  }
  return result;
}

}  // namespace

Result<BoundedComparison> BoundedChainDbEquivalence(
    const Program& p1, const Program& p2, const LanguageOptions& options) {
  return PerNonterminalComparison(p1, p2, options, /*extended=*/false);
}

Result<BoundedComparison> BoundedChainUniformEquivalence(
    const Program& p1, const Program& p2, const LanguageOptions& options) {
  return PerNonterminalComparison(p1, p2, options, /*extended=*/true);
}

}  // namespace exdl
