// Deterministic finite automata: subset construction, Moore minimization,
// and language-equivalence checking. Together with grammar/nfa.h this
// gives the decidable fragment of Theorem 3.3 a full toolchain:
// chain program -> CFG -> (strongly regular?) -> NFA -> DFA -> minimal DFA
// -> monadic chain program (grammar/monadic.h).

#ifndef EXDL_GRAMMAR_DFA_H_
#define EXDL_GRAMMAR_DFA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "grammar/nfa.h"

namespace exdl {

class Dfa {
 public:
  /// Subset construction over `alphabet_size` terminal symbols. A dead
  /// (empty-set) state is materialized so transitions are total.
  static Dfa FromNfa(const Nfa& nfa, uint32_t alphabet_size);

  /// Moore partition refinement; also removes unreachable states.
  Dfa Minimized() const;

  uint32_t alphabet_size() const { return alphabet_size_; }
  size_t NumStates() const { return accepting_.size(); }
  uint32_t start() const { return start_; }
  bool IsAccepting(uint32_t state) const { return accepting_[state]; }
  uint32_t Next(uint32_t state, uint32_t symbol) const {
    return transitions_[state * alphabet_size_ + symbol];
  }

  bool Accepts(std::span<const uint32_t> word) const;

  /// Language equality via product-automaton reachability.
  static bool Equivalent(const Dfa& a, const Dfa& b);

 private:
  Dfa(uint32_t alphabet_size) : alphabet_size_(alphabet_size) {}

  uint32_t alphabet_size_;
  uint32_t start_ = 0;
  std::vector<uint32_t> transitions_;  ///< state * alphabet + symbol.
  std::vector<bool> accepting_;
};

}  // namespace exdl

#endif  // EXDL_GRAMMAR_DFA_H_
