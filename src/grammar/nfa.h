// Nondeterministic finite automata over a grammar's terminal alphabet, and
// the exact NFA construction for strongly regular grammars (in the spirit
// of Mohri & Nederhof's transformation, applied exactly because strong
// regularity is checked first).
//
// Construction sketch: nonterminal SCCs are processed bottom-up. For a
// right-linear SCC one machine is built with a state per member and a
// shared final state; a production B -> x1..xk C (C in the SCC) walks the
// xi — terminals become labeled edges, out-of-SCC nonterminals splice a
// copy of their (already built) fragment — and ends with an epsilon edge
// to C's state (or to the final state when no trailing member). Left-linear
// SCCs build the machine for the reversed productions (with reversed
// sub-fragments) and reverse the result. Every fragment has one start and
// one accept state, which keeps reversal trivial.

#ifndef EXDL_GRAMMAR_NFA_H_
#define EXDL_GRAMMAR_NFA_H_

#include <cstdint>
#include <vector>

#include "grammar/cfg.h"
#include "util/status.h"

namespace exdl {

/// Epsilon label.
inline constexpr int kEpsilon = -1;

/// NFA with a single start and a single accept state (fragment form).
struct Nfa {
  struct Edge {
    int symbol = kEpsilon;  ///< Terminal id, or kEpsilon.
    uint32_t to = 0;
  };

  std::vector<std::vector<Edge>> states;  ///< Adjacency per state.
  uint32_t start = 0;
  uint32_t accept = 0;

  uint32_t AddState() {
    states.emplace_back();
    return static_cast<uint32_t>(states.size() - 1);
  }
  void AddEdge(uint32_t from, int symbol, uint32_t to) {
    states[from].push_back(Edge{symbol, to});
  }

  /// Splices a copy of `fragment` between `from` and `to` (fresh states,
  /// epsilon stitches).
  void SpliceCopy(const Nfa& fragment, uint32_t from, uint32_t to);

  /// The reversal (accepts the mirror language).
  Nfa Reversed() const;

  size_t NumStates() const { return states.size(); }
};

/// Exact NFA for L(grammar, start). Fails unless the grammar is strongly
/// regular (grammar/regularity.h).
Result<Nfa> StronglyRegularToNfa(const Cfg& grammar, uint32_t start);

}  // namespace exdl

#endif  // EXDL_GRAMMAR_NFA_H_
