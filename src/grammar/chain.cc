#include "grammar/chain.h"

#include <unordered_set>

namespace exdl {
namespace {

/// Checks the chain shape of one rule: binary head p(X, Y); body literals
/// binary and chained q1(X,Z1), q2(Z1,Z2), ..., qn(Zn-1,Y); X, Y and the
/// Zi all distinct variables.
bool IsChainRule(const Rule& rule) {
  if (rule.head.args.size() != 2 || rule.body.empty()) return false;
  if (!rule.head.args[0].IsVar() || !rule.head.args[1].IsVar()) return false;
  SymbolId x = rule.head.args[0].id();
  SymbolId y = rule.head.args[1].id();
  if (x == y) return false;
  std::unordered_set<SymbolId> seen = {x, y};
  SymbolId current = x;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Atom& lit = rule.body[i];
    if (lit.args.size() != 2) return false;
    if (!lit.args[0].IsVar() || !lit.args[1].IsVar()) return false;
    if (lit.args[0].id() != current) return false;
    SymbolId next = lit.args[1].id();
    if (i + 1 == rule.body.size()) {
      if (next != y) return false;
    } else {
      if (!seen.insert(next).second) return false;  // must be fresh
    }
    current = next;
  }
  return true;
}

}  // namespace

bool IsBinaryChainProgram(const Program& program) {
  for (const Rule& r : program.rules()) {
    if (!IsChainRule(r)) return false;
  }
  return true;
}

Result<Cfg> ChainProgramToGrammar(const Program& program) {
  if (!program.query()) {
    return Status::FailedPrecondition("chain program needs a query");
  }
  const Context& ctx = program.ctx();
  std::unordered_set<PredId> idb = program.IdbPredicates();
  if (idb.count(program.query()->pred) == 0) {
    return Status::FailedPrecondition(
        "query predicate must be derived to act as the start symbol");
  }
  Cfg grammar;
  for (const Rule& r : program.rules()) {
    if (!IsChainRule(r)) {
      return Status::FailedPrecondition(
          "not a binary chain rule: head predicate '" +
          ctx.PredicateDisplayName(r.head.pred) + "'");
    }
    uint32_t lhs =
        grammar.AddNonterminal(ctx.PredicateDisplayName(r.head.pred));
    std::vector<GSym> rhs;
    for (const Atom& lit : r.body) {
      const std::string& name = ctx.PredicateDisplayName(lit.pred);
      if (idb.count(lit.pred) > 0) {
        rhs.push_back(GSym::N(grammar.AddNonterminal(name)));
      } else {
        rhs.push_back(GSym::T(grammar.AddTerminal(name)));
      }
    }
    grammar.AddProduction(lhs, std::move(rhs));
  }
  grammar.SetStart(grammar.AddNonterminal(
      ctx.PredicateDisplayName(program.query()->pred)));
  return grammar;
}

Result<Program> GrammarToChainProgram(const Cfg& grammar, ContextPtr ctx) {
  Program program(ctx);
  Context& c = *ctx;
  for (const Production& p : grammar.productions()) {
    if (p.rhs.empty()) {
      return Status::FailedPrecondition(
          "epsilon production cannot become a chain rule");
    }
    Rule rule;
    SymbolId x = c.InternSymbol("X");
    SymbolId y = c.InternSymbol("Y");
    PredId head =
        c.InternPredicate(grammar.NonterminalName(p.lhs), /*arity=*/2);
    rule.head = Atom(head, {Term::Var(x), Term::Var(y)});
    SymbolId current = x;
    for (size_t i = 0; i < p.rhs.size(); ++i) {
      SymbolId next = i + 1 == p.rhs.size()
                          ? y
                          : c.InternSymbol("Z" + std::to_string(i));
      const GSym& s = p.rhs[i];
      const std::string& name = s.terminal ? grammar.TerminalName(s.id)
                                           : grammar.NonterminalName(s.id);
      PredId pred = c.InternPredicate(name, /*arity=*/2);
      rule.body.push_back(Atom(pred, {Term::Var(current), Term::Var(next)}));
      current = next;
    }
    program.AddRule(std::move(rule));
  }
  PredId query_pred =
      c.InternPredicate(grammar.NonterminalName(grammar.start()), 2);
  program.SetQuery(Atom(query_pred, {Term::Var(c.InternSymbol("X")),
                                     Term::Var(c.InternSymbol("Y"))}));
  return program;
}

}  // namespace exdl
