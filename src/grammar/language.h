// Bounded enumeration of L(G, S) and of the extended language L^ex(G, S)
// (Section 1.1). These power the executable form of Lemma 4.1: DB / query
// equivalence of chain programs corresponds to L equalities, uniform (and
// uniform query) equivalence to L^ex equalities. Exact language equality
// is undecidable; length-bounded enumeration gives a sound refutation
// procedure and a practical cross-check.

#ifndef EXDL_GRAMMAR_LANGUAGE_H_
#define EXDL_GRAMMAR_LANGUAGE_H_

#include <set>
#include <vector>

#include "grammar/cfg.h"
#include "util/status.h"

namespace exdl {

struct LanguageOptions {
  size_t max_length = 8;       ///< Keep strings of at most this length.
  size_t max_forms = 2000000;  ///< Abort threshold on explored forms.
};

/// All terminal strings of length <= max_length derivable from `start`.
/// Requires the grammar to have no reachable epsilon productions (chain
/// grammars never do); with none, sentential forms only grow, so the
/// enumeration is complete up to the bound.
Result<std::set<std::vector<uint32_t>>> EnumerateLanguage(
    const Cfg& grammar, uint32_t start,
    const LanguageOptions& options = LanguageOptions());

/// All sentential forms (strings over terminals AND nonterminals) of
/// length <= max_length derivable from `start`, including `start` itself.
/// Note: every nonterminal position must be expandable, not just the
/// leftmost one — leftmost derivations reach all sentences but not all
/// sentential forms.
Result<std::set<std::vector<GSym>>> EnumerateExtendedLanguage(
    const Cfg& grammar, uint32_t start,
    const LanguageOptions& options = LanguageOptions());

}  // namespace exdl

#endif  // EXDL_GRAMMAR_LANGUAGE_H_
