#include "grammar/monadic.h"

#include "grammar/chain.h"
#include "grammar/regularity.h"

namespace exdl {

Result<Program> MonadicProgramFromDfa(const Dfa& dfa, const Cfg& grammar,
                                      ContextPtr ctx) {
  if (dfa.alphabet_size() != grammar.NumTerminals()) {
    return Status::InvalidArgument(
        "DFA alphabet does not match grammar terminals");
  }
  Context& c = *ctx;
  Program program(ctx);

  std::vector<PredId> terminal_pred(grammar.NumTerminals());
  for (uint32_t t = 0; t < grammar.NumTerminals(); ++t) {
    terminal_pred[t] = c.InternPredicate(grammar.TerminalName(t), 2);
  }
  std::vector<PredId> state_pred(dfa.NumStates());
  for (uint32_t s = 0; s < dfa.NumStates(); ++s) {
    state_pred[s] = c.FreshPredicate("st", 1);
  }
  PredId ans = c.FreshPredicate("ans", 1);
  SymbolId x = c.InternSymbol("X");
  SymbolId y = c.InternSymbol("Y");

  // Path starts: any node with an outgoing edge is in the start state.
  for (uint32_t t = 0; t < grammar.NumTerminals(); ++t) {
    Rule r;
    r.head = Atom(state_pred[dfa.start()], {Term::Var(x)});
    r.body.push_back(
        Atom(terminal_pred[t],
             {Term::Var(x), Term::Var(c.FreshSymbol("W"))}));
    program.AddRule(std::move(r));
  }
  // Transitions. Dead-state self-loops are emitted too; they derive
  // nothing that reaches `ans` and the optimizer's cleanup prunes them.
  for (uint32_t s = 0; s < dfa.NumStates(); ++s) {
    for (uint32_t t = 0; t < grammar.NumTerminals(); ++t) {
      uint32_t target = dfa.Next(s, t);
      Rule r;
      r.head = Atom(state_pred[target], {Term::Var(y)});
      r.body.push_back(Atom(state_pred[s], {Term::Var(x)}));
      r.body.push_back(Atom(terminal_pred[t], {Term::Var(x), Term::Var(y)}));
      program.AddRule(std::move(r));
    }
  }
  // Answers.
  for (uint32_t s = 0; s < dfa.NumStates(); ++s) {
    if (!dfa.IsAccepting(s)) continue;
    Rule r;
    r.head = Atom(ans, {Term::Var(y)});
    r.body.push_back(Atom(state_pred[s], {Term::Var(y)}));
    program.AddRule(std::move(r));
  }
  // Empty word: every node of the graph answers.
  if (dfa.IsAccepting(dfa.start())) {
    for (uint32_t t = 0; t < grammar.NumTerminals(); ++t) {
      Rule out;
      out.head = Atom(ans, {Term::Var(y)});
      out.body.push_back(
          Atom(terminal_pred[t],
               {Term::Var(y), Term::Var(c.FreshSymbol("W"))}));
      program.AddRule(std::move(out));
      Rule in;
      in.head = Atom(ans, {Term::Var(y)});
      in.body.push_back(
          Atom(terminal_pred[t],
               {Term::Var(c.FreshSymbol("W")), Term::Var(y)}));
      program.AddRule(std::move(in));
    }
  }
  program.SetQuery(Atom(ans, {Term::Var(y)}));
  return program;
}

Result<Program> MonadicEquivalent(const Program& chain_program) {
  EXDL_ASSIGN_OR_RETURN(Cfg grammar, ChainProgramToGrammar(chain_program));
  if (!IsStronglyRegular(grammar)) {
    return Status::FailedPrecondition(
        "chain grammar is not strongly regular; no exact automaton "
        "construction applies (Theorem 3.3: regularity itself is "
        "undecidable)");
  }
  EXDL_ASSIGN_OR_RETURN(Nfa nfa,
                        StronglyRegularToNfa(grammar, grammar.start()));
  Dfa dfa = Dfa::FromNfa(nfa, static_cast<uint32_t>(grammar.NumTerminals()))
                .Minimized();
  return MonadicProgramFromDfa(dfa, grammar, chain_program.context());
}

}  // namespace exdl
