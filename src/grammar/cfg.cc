#include "grammar/cfg.h"

namespace exdl {

uint32_t Cfg::AddNonterminal(std::string_view name) {
  auto it = nonterminal_ids_.find(std::string(name));
  if (it != nonterminal_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(nonterminal_names_.size());
  nonterminal_names_.emplace_back(name);
  nonterminal_ids_.emplace(nonterminal_names_.back(), id);
  productions_of_.emplace_back();
  return id;
}

uint32_t Cfg::AddTerminal(std::string_view name) {
  auto it = terminal_ids_.find(std::string(name));
  if (it != terminal_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(terminal_names_.size());
  terminal_names_.emplace_back(name);
  terminal_ids_.emplace(terminal_names_.back(), id);
  return id;
}

std::optional<uint32_t> Cfg::FindNonterminal(std::string_view name) const {
  auto it = nonterminal_ids_.find(std::string(name));
  if (it == nonterminal_ids_.end()) return std::nullopt;
  return it->second;
}

std::optional<uint32_t> Cfg::FindTerminal(std::string_view name) const {
  auto it = terminal_ids_.find(std::string(name));
  if (it == terminal_ids_.end()) return std::nullopt;
  return it->second;
}

void Cfg::AddProduction(uint32_t lhs, std::vector<GSym> rhs) {
  productions_of_[lhs].push_back(productions_.size());
  productions_.push_back(Production{lhs, std::move(rhs)});
}

const std::vector<size_t>& Cfg::ProductionsOf(uint32_t nt) const {
  if (nt >= productions_of_.size()) return empty_;
  return productions_of_[nt];
}

std::vector<bool> Cfg::ProductiveNonterminals() const {
  std::vector<bool> productive(NumNonterminals(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Production& p : productions_) {
      if (productive[p.lhs]) continue;
      bool all = true;
      for (const GSym& s : p.rhs) {
        if (!s.terminal && !productive[s.id]) {
          all = false;
          break;
        }
      }
      if (all) {
        productive[p.lhs] = true;
        changed = true;
      }
    }
  }
  return productive;
}

std::vector<bool> Cfg::ReachableNonterminals() const {
  std::vector<bool> reachable(NumNonterminals(), false);
  if (NumNonterminals() == 0) return reachable;
  std::vector<uint32_t> frontier = {start_};
  reachable[start_] = true;
  while (!frontier.empty()) {
    uint32_t nt = frontier.back();
    frontier.pop_back();
    for (size_t pi : ProductionsOf(nt)) {
      for (const GSym& s : productions_[pi].rhs) {
        if (!s.terminal && !reachable[s.id]) {
          reachable[s.id] = true;
          frontier.push_back(s.id);
        }
      }
    }
  }
  return reachable;
}

bool Cfg::HasEpsilonProductions() const {
  std::vector<bool> reachable = ReachableNonterminals();
  for (const Production& p : productions_) {
    if (reachable[p.lhs] && p.rhs.empty()) return true;
  }
  return false;
}

Cfg Cfg::Trim() const {
  std::vector<bool> productive = ProductiveNonterminals();
  std::vector<bool> reachable = ReachableNonterminals();
  Cfg out;
  out.SetStart(out.AddNonterminal(NonterminalName(start_)));
  for (const Production& p : productions_) {
    if (!reachable[p.lhs] || !productive[p.lhs]) continue;
    bool keep = true;
    for (const GSym& s : p.rhs) {
      if (!s.terminal && (!productive[s.id] || !reachable[s.id])) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    uint32_t lhs = out.AddNonterminal(NonterminalName(p.lhs));
    std::vector<GSym> rhs;
    for (const GSym& s : p.rhs) {
      rhs.push_back(s.terminal
                        ? GSym::T(out.AddTerminal(TerminalName(s.id)))
                        : GSym::N(out.AddNonterminal(
                              NonterminalName(s.id))));
    }
    out.AddProduction(lhs, std::move(rhs));
  }
  return out;
}

std::string Cfg::ToString() const {
  std::string out;
  for (uint32_t nt = 0; nt < NumNonterminals(); ++nt) {
    // List the start symbol first by swapping indices 0 and start_.
    uint32_t id = nt == 0 ? start_ : (nt == start_ ? 0 : nt);
    if (ProductionsOf(id).empty()) continue;
    out += NonterminalName(id);
    out += " -> ";
    bool first = true;
    for (size_t pi : ProductionsOf(id)) {
      if (!first) out += " | ";
      first = false;
      const Production& p = productions_[pi];
      if (p.rhs.empty()) out += "ε";
      for (size_t i = 0; i < p.rhs.size(); ++i) {
        if (i > 0) out += " ";
        out += p.rhs[i].terminal ? TerminalName(p.rhs[i].id)
                                 : NonterminalName(p.rhs[i].id);
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace exdl
