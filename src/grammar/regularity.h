// Regularity analyses behind Theorem 3.3.
//
// Theorem 3.3: a binary chain program with a p^dn query has an equivalent
// monadic chain program iff the corresponding CFG's language is regular —
// which is undecidable. Two decidable sufficient conditions are
// implemented:
//
//  * non-self-embedding: if no nonterminal A derives αAβ with α, β both
//    nonempty, the language is regular (Chomsky 1959);
//  * strong regularity (Mohri–Nederhof): every SCC of the nonterminal
//    reference graph is uniformly right-linear or uniformly left-linear
//    with respect to its own members. Strongly regular grammars convert
//    *exactly* to finite automata (grammar/nfa.h).

#ifndef EXDL_GRAMMAR_REGULARITY_H_
#define EXDL_GRAMMAR_REGULARITY_H_

#include <vector>

#include "grammar/cfg.h"

namespace exdl {

/// True if some nonterminal A satisfies A =>+ αAβ with α and β nonempty.
/// (Grammars where this is false generate regular languages; the converse
/// fails, so this is a sufficient regularity test only.)
bool IsSelfEmbedding(const Cfg& grammar);

/// SCC decomposition of the nonterminal reference graph; SCC ids are in
/// reverse topological order (callees first), matching DependencyGraph.
std::vector<int> NonterminalSccs(const Cfg& grammar, int* num_sccs);

/// True if each SCC's internal productions are all right-linear or all
/// left-linear w.r.t. SCC members (at most one member occurrence, at the
/// last resp. first position, with every other symbol outside the SCC).
bool IsStronglyRegular(const Cfg& grammar);

}  // namespace exdl

#endif  // EXDL_GRAMMAR_REGULARITY_H_
