// Monadic chain-program synthesis — the constructive direction of
// Theorem 3.3.
//
// For a binary chain program whose grammar G is (strongly) regular and a
// query p^dn (the source argument existential, the target needed), the set
// of answers is { Y : some node X reaches Y along a path whose edge-label
// string is in L(G) }. Running the DFA of L(G) over the EDB graph needs
// only unary predicates: one `state` predicate per DFA state.
//
//   st_q0(X)  :- a(X, _).            for every terminal a  (path starts)
//   st_q'(Y)  :- st_q(X), a(X, Y).   for every transition q --a--> q'
//   ans(Y)    :- st_qf(X), a(X, Y).  folded into the above: ans collects
//                                    accepting states
//   ans(Y)    :- st_qf(Y).           for accepting qf
//
// If the DFA accepts the empty word, every node is an answer:
//   ans(Y) :- a(Y, _).   and   ans(Y) :- a(_, Y).   for every terminal a.

#ifndef EXDL_GRAMMAR_MONADIC_H_
#define EXDL_GRAMMAR_MONADIC_H_

#include "ast/program.h"
#include "grammar/dfa.h"
#include "util/status.h"

namespace exdl {

/// Builds the monadic program. Terminal names of `grammar` are resolved to
/// binary base predicates in `ctx` (the same names the chain program
/// used). The query is `ans(Y)`.
Result<Program> MonadicProgramFromDfa(const Dfa& dfa, const Cfg& grammar,
                                      ContextPtr ctx);

/// End-to-end convenience: chain program -> grammar -> strongly-regular
/// check -> NFA -> minimal DFA -> monadic program. Fails when the grammar
/// is not strongly regular (Theorem 3.3's undecidability means some
/// regular-language chain programs will be rejected; that is inherent).
Result<Program> MonadicEquivalent(const Program& chain_program);

}  // namespace exdl

#endif  // EXDL_GRAMMAR_MONADIC_H_
