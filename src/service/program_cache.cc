#include "service/program_cache.h"

namespace exdl {

CompiledProgram::Ptr ProgramCache::Lookup(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

size_t ProgramCache::Insert(std::string key, CompiledProgram::Ptr value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) {
    ++evictions_;
    return 1;
  }
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return 0;
  }
  lru_.emplace_front(std::move(key), std::move(value));
  by_key_[lru_.front().first] = lru_.begin();
  size_t evicted = 0;
  while (lru_.size() > capacity_) {
    by_key_.erase(std::string_view(lru_.back().first));
    lru_.pop_back();
    ++evictions_;
    ++evicted;
  }
  return evicted;
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

void ProgramCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  by_key_.clear();
}

}  // namespace exdl
