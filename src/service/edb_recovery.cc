#include "service/edb_recovery.h"

#include <chrono>
#include <string>

#include "recovery/fault.h"

namespace exdl {

Status RecoverDurableEdb(durability::DurableEdb& edb, QueryService& service) {
  const auto start = std::chrono::steady_clock::now();
  if (edb.snapshot().has_value()) {
    // RestoreSnapshot consumes the database; copy-on-write makes the
    // clone cheap and leaves the DurableEdb's copy intact.
    recovery::Snapshot snapshot;
    snapshot.symbols = edb.snapshot()->symbols;
    snapshot.preds = edb.snapshot()->preds;
    snapshot.db = edb.snapshot()->db.Clone();
    snapshot.program_fingerprint = edb.snapshot()->program_fingerprint;
    EXDL_RETURN_IF_ERROR(
        service.RestoreSnapshot(std::move(snapshot), edb.snapshot_generation()));
  }
  FaultPlan& faults = FaultPlan::Global();
  for (const durability::FactRecord& record : edb.tail()) {
    if (faults.armed() && faults.ShouldFail("daemon.recover_replay")) {
      return Status::Internal(
          "injected fault at daemon.recover_replay (generation " +
          std::to_string(record.generation) + ")");
    }
    Status replayed = service.ReplayFacts(record.source, record.generation);
    if (!replayed.ok()) {
      // A record that no longer replays cleanly means the log is not
      // trustworthy: fail closed rather than start with a partial EDB.
      if (replayed.code() == StatusCode::kCorruptCheckpoint) return replayed;
      return Status::CorruptCheckpoint(
          "fact-log replay of generation " +
          std::to_string(record.generation) + " failed: " +
          replayed.message());
    }
  }
  edb.NoteReplayed(edb.tail().size());
  edb.NoteRecoverySeconds(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return Status::Ok();
}

}  // namespace exdl
