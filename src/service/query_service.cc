#include "service/query_service.h"

#include <algorithm>
#include <utility>

#include "parser/parser.h"

namespace exdl {

namespace {

ServiceOptions Normalize(ServiceOptions options) {
  if (options.num_workers == 0) options.num_workers = 1;
  return options;
}

}  // namespace

QueryService::QueryService(ServiceOptions options)
    : options_(Normalize(std::move(options))),
      ctx_(std::make_shared<Context>()),
      cache_(options_.program_cache_capacity),
      durable_(options_.durable),
      pool_(options_.num_workers - 1) {
  // Register every service metric before the first shard is cut (shards
  // are sized to the registry at creation time).
  obs::MetricsRegistry& metrics = service_telemetry_.metrics();
  cache_hit_id_ = metrics.Counter("service.cache.hit");
  cache_miss_id_ = metrics.Counter("service.cache.miss");
  cache_eviction_id_ = metrics.Counter("service.cache.eviction");
  queries_submitted_id_ = metrics.Counter("service.queries.submitted");
  queries_completed_id_ = metrics.Counter("service.queries.completed");
  queries_failed_id_ = metrics.Counter("service.queries.failed");
  batches_id_ = metrics.Counter("service.batches");
  generation_id_ = metrics.Gauge("service.snapshot.generation");
  // MetricsJson before the first query still labels the configured mode.
  aggregate_.representation.mode = options_.eval.representation;
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  dispatcher_.join();
}

QueryService::Ticket QueryService::Submit(QueryRequest request) {
  std::lock_guard<std::mutex> lock(mu_);
  const Ticket ticket = next_ticket_++;
  ++submitted_;
  outstanding_.insert(ticket);
  queue_.push_back(Pending{ticket, std::move(request), snapshot_});
  work_cv_.notify_one();
  return ticket;
}

std::vector<QueryService::Ticket> QueryService::SubmitBatch(
    std::vector<QueryRequest> requests) {
  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (QueryRequest& request : requests) {
    const Ticket ticket = next_ticket_++;
    ++submitted_;
    outstanding_.insert(ticket);
    queue_.push_back(Pending{ticket, std::move(request), snapshot_});
    tickets.push_back(ticket);
  }
  work_cv_.notify_one();
  return tickets;
}

QueryResponse QueryService::Await(Ticket ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  if (outstanding_.find(ticket) == outstanding_.end()) {
    QueryResponse response;
    response.status =
        Status::InvalidArgument("unknown or already consumed ticket");
    return response;
  }
  done_cv_.wait(lock, [&] { return done_.find(ticket) != done_.end(); });
  QueryResponse response = std::move(done_[ticket]);
  done_.erase(ticket);
  outstanding_.erase(ticket);
  return response;
}

std::vector<QueryResponse> QueryService::AwaitBatch(
    const std::vector<Ticket>& tickets) {
  std::vector<QueryResponse> responses;
  responses.reserve(tickets.size());
  for (Ticket ticket : tickets) responses.push_back(Await(ticket));
  return responses;
}

std::optional<QueryResponse> QueryService::AwaitFor(
    Ticket ticket, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (outstanding_.find(ticket) == outstanding_.end()) {
    QueryResponse response;
    response.status =
        Status::InvalidArgument("unknown or already consumed ticket");
    return response;
  }
  if (!done_cv_.wait_for(lock, timeout,
                         [&] { return done_.find(ticket) != done_.end(); })) {
    return std::nullopt;
  }
  QueryResponse response = std::move(done_[ticket]);
  done_.erase(ticket);
  outstanding_.erase(ticket);
  return response;
}

Status QueryService::LoadFacts(std::string_view source) {
  return LoadFactsImpl(source, /*durable=*/true);
}

Status QueryService::LoadFactsImpl(std::string_view source, bool durable) {
  // Parsing interns symbols/predicates into the shared Context, and the
  // compile turnstile orders all other interning strictly by ticket. Go
  // through the same turnstile: wait until every query submitted before
  // this call has passed its compile, then parse while holding
  // compile_mu_. Interned ids then depend only on the interleaving of
  // Submit and LoadFacts calls — never on pool size or scheduling — which
  // preserves the byte-identical-answers determinism guarantee. Recovery
  // replay takes the same path (on an idle service the turnstile passes
  // straight through), so a replayed load interns exactly what the
  // original did.
  Ticket submitted_before;
  {
    std::lock_guard<std::mutex> lock(mu_);
    submitted_before = next_ticket_;
  }
  ParsedUnit parsed(ctx_);
  {
    std::unique_lock<std::mutex> compile_lock(compile_mu_);
    compile_cv_.wait(compile_lock,
                     [&] { return next_compile_ >= submitted_before; });
    EXDL_ASSIGN_OR_RETURN(parsed, ParseProgram(source, ctx_));
  }
  if (!parsed.program.rules().empty()) {
    return Status::InvalidArgument(
        "LoadFacts source must contain only ground facts");
  }
  std::lock_guard<std::mutex> lock(mu_);
  Database next = snapshot_.valid() ? snapshot_.db().Clone() : Database();
  for (const Atom& fact : parsed.facts) {
    EXDL_RETURN_IF_ERROR(next.AddFact(fact));
  }
  // Durability ordering contract (DESIGN.md §15): the fact-log record is
  // on stable storage before the generation becomes visible to queries.
  // On failure the current snapshot stays published — the daemon never
  // acknowledges a generation that is not logged.
  if (durable && durable_ != nullptr) {
    EXDL_RETURN_IF_ERROR(durable_->Append(generation_ + 1, source));
  }
  ++generation_;
  snapshot_ = DatabaseSnapshot(
      std::make_shared<const Database>(std::move(next)), generation_);
  if (durable && durable_ != nullptr) {
    // Compaction is an optimization: a failed snapshot write (injected
    // factlog.compact_rename, disk trouble) must not fail the load. The
    // previous snapshot + intact log still recover everything, and the
    // next append retries the compaction.
    Status compacted =
        durable_->MaybeCompact(*ctx_, snapshot_.db(), generation_);
    (void)compacted;
  }
  return Status::Ok();
}

Status QueryService::RestoreSnapshot(recovery::Snapshot snapshot,
                                     uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_ticket_ != 0 || generation_ != 0 || ctx_->NumSymbols() != 0) {
    return Status::FailedPrecondition(
        "RestoreSnapshot requires a fresh service");
  }
  // Re-intern the stored tables in id order into the (empty) service
  // Context. Sequential interning into an empty context assigns exactly
  // the stored ids, so every SymbolId/PredId in the snapshot's database
  // — and in later replayed loads — means what it meant in the daemon
  // that wrote the snapshot. Any mismatch means the snapshot lied.
  for (size_t i = 0; i < snapshot.symbols.size(); ++i) {
    if (ctx_->InternSymbol(snapshot.symbols[i]) != static_cast<SymbolId>(i)) {
      return Status::CorruptCheckpoint(
          "EDB snapshot symbol table is not in intern order");
    }
  }
  for (size_t i = 0; i < snapshot.preds.size(); ++i) {
    const recovery::SnapshotPred& pred = snapshot.preds[i];
    Adornment adornment;
    if (!pred.adornment.empty()) {
      EXDL_ASSIGN_OR_RETURN(adornment, Adornment::Parse(pred.adornment));
    }
    if (ctx_->InternPredicate(pred.name, pred.arity, adornment) !=
        static_cast<PredId>(i)) {
      return Status::CorruptCheckpoint(
          "EDB snapshot predicate table is not in intern order");
    }
  }
  generation_ = generation;
  snapshot_ = DatabaseSnapshot(
      std::make_shared<const Database>(std::move(snapshot.db)), generation_);
  return Status::Ok();
}

Status QueryService::ReplayFacts(std::string_view source,
                                 uint64_t expected_generation) {
  EXDL_RETURN_IF_ERROR(LoadFactsImpl(source, /*durable=*/false));
  std::lock_guard<std::mutex> lock(mu_);
  if (generation_ != expected_generation) {
    return Status::CorruptCheckpoint(
        "fact-log replay produced generation " + std::to_string(generation_) +
        ", record says " + std::to_string(expected_generation));
  }
  return Status::Ok();
}

void QueryService::AttachDurability(
    std::shared_ptr<durability::DurableEdb> durable) {
  std::lock_guard<std::mutex> lock(mu_);
  durable_ = std::move(durable);
}

DatabaseSnapshot QueryService::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

ProgramCache::Stats QueryService::cache_stats() const { return cache_.stats(); }

void QueryService::DispatcherLoop() {
  while (true) {
    std::vector<Active> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) break;  // Shutdown with a drained queue.
      while (!queue_.empty()) {
        Active item;
        item.pending = std::move(queue_.front());
        queue_.pop_front();
        item.shard = service_telemetry_.metrics().NewShard();
        batch.push_back(std::move(item));
      }
    }
    pool_.Run(static_cast<uint32_t>(batch.size()),
              [&](uint32_t i) { ProcessOne(batch[i]); });
    // Quiescent point: every session of the batch has finished, so their
    // shards can be folded into the service totals.
    {
      std::lock_guard<std::mutex> lock(mu_);
      obs::MetricsRegistry& metrics = service_telemetry_.metrics();
      for (Active& item : batch) {
        metrics.Merge(item.shard);
        if (item.summary.has_run) {
          aggregate_.has_run = true;
          aggregate_.stats += item.summary.stats;
          aggregate_.answers += item.summary.answers;
          // Counters sum across queries; the mode is the service-wide
          // eval template's, identical for every session.
          aggregate_.representation += item.summary.representation;
          aggregate_.representation.mode = item.summary.representation.mode;
          if (aggregate_.termination.ok() && !item.summary.termination.ok()) {
            aggregate_.termination = item.summary.termination;
          }
        }
        done_.emplace(item.pending.ticket, std::move(item.response));
      }
      metrics.Add(batches_id_, 1);
      metrics.Add(queries_submitted_id_, submitted_ - submitted_published_);
      submitted_published_ = submitted_;
      metrics.Set(generation_id_, static_cast<double>(generation_));
      done_cv_.notify_all();
    }
  }
}

void QueryService::ProcessOne(Active& item) {
  QueryResponse& response = item.response;
  response.name = item.pending.request.name;
  response.snapshot_generation = item.pending.snapshot.generation();
  if (options_.collect_telemetry) {
    response.telemetry = std::make_shared<obs::Telemetry>();
  }
  std::string key =
      CompiledProgram::CacheKeyMaterial(item.pending.request.source,
                                        options_.compile);
  CompiledProgram::Ptr compiled;
  {
    // Compile turnstile: cache fills and Context interning happen in
    // strict ticket order, making ids — and therefore answers —
    // independent of worker count and scheduling.
    std::unique_lock<std::mutex> lock(compile_mu_);
    compile_cv_.wait(lock, [&] { return next_compile_ == item.pending.ticket; });
    compiled = cache_.Lookup(key);
    if (compiled != nullptr) {
      response.cache_hit = true;
      item.shard.Add(cache_hit_id_, 1);
    } else {
      item.shard.Add(cache_miss_id_, 1);
      Result<CompiledProgram::Ptr> compile_result = CompiledProgram::Compile(
          item.pending.request.source, options_.compile,
          response.telemetry.get(), ctx_);
      if (compile_result.ok()) {
        compiled = *compile_result;
        item.shard.Add(cache_eviction_id_,
                       cache_.Insert(std::move(key), compiled));
      } else {
        response.status = compile_result.status();
      }
    }
    ++next_compile_;
    compile_cv_.notify_all();
  }
  if (!response.status.ok()) {
    item.shard.Add(queries_failed_id_, 1);
    return;
  }
  response.program = compiled;
  // Session EDB: the submission-time snapshot generation (copy-on-write
  // clone — no tuple copy) plus the program's own ground facts.
  Database edb = item.pending.snapshot.valid()
                     ? item.pending.snapshot.db().Clone()
                     : Database();
  for (const auto& [pred, rel] : compiled->facts().relations()) {
    Relation& dst = edb.GetOrCreate(pred, rel.arity());
    for (size_t row = 0; row < rel.size(); ++row) {
      dst.Insert(rel.view().Scan(row));
    }
  }
  SessionOptions session_options;
  session_options.eval = options_.eval;
  if (item.pending.request.budget.has_value()) {
    session_options.eval.budget = *item.pending.request.budget;
  }
  if (item.pending.request.cancellation != nullptr) {
    session_options.eval.budget.cancellation =
        item.pending.request.cancellation;
  }
  session_options.eval.budget = EvalBudget::FromEnv(session_options.eval.budget);
  session_options.telemetry = response.telemetry.get();
  Session session(std::move(session_options));
  session.Bind(compiled);
  Result<EvalResult> evaluated = session.Run(edb);
  if (!evaluated.ok()) {
    response.status = evaluated.status();
    item.shard.Add(queries_failed_id_, 1);
    return;
  }
  response.result = std::move(*evaluated);
  item.summary = session.summary();
  item.shard.Add(queries_completed_id_, 1);
  if (options_.collect_telemetry) {
    response.telemetry_json = RenderTelemetryDoc(
        "service", response.name, session.summary(),
        session.summary().rule_texts, compiled->optimized(), compiled->report(),
        compiled->optimize_termination(), response.telemetry.get());
  }
}

std::string QueryService::MetricsJson(
    const std::function<void(obs::JsonWriter&)>& extra_keys) const {
  std::lock_guard<std::mutex> lock(mu_);
  const ProgramCache::Stats cache = cache_.stats();
  const obs::MetricsRegistry& metrics = service_telemetry_.metrics();
  const uint64_t completed = metrics.CounterValue(queries_completed_id_);
  const uint64_t failed = metrics.CounterValue(queries_failed_id_);
  auto extra = [&](obs::JsonWriter& w) {
    w.Key("service");
    w.BeginObject();
    w.Key("workers");
    w.UInt(options_.num_workers);
    w.Key("snapshot_generation");
    w.UInt(generation_);
    w.Key("queries");
    w.BeginObject();
    w.Key("submitted");
    w.UInt(submitted_);
    w.Key("pending");
    w.UInt(queue_.size());
    w.Key("completed");
    w.UInt(completed);
    w.Key("failed");
    w.UInt(failed);
    w.EndObject();
    w.Key("cache");
    w.BeginObject();
    w.Key("hits");
    w.UInt(cache.hits);
    w.Key("misses");
    w.UInt(cache.misses);
    w.Key("evictions");
    w.UInt(cache.evictions);
    w.Key("size");
    w.UInt(cache.size);
    w.Key("capacity");
    w.UInt(cache.capacity);
    w.EndObject();
    w.EndObject();
    if (extra_keys) extra_keys(w);
  };
  return RenderTelemetryDoc("service", "", aggregate_, {}, false,
                            OptimizationReport(), Status::Ok(),
                            &service_telemetry_, extra);
}

}  // namespace exdl
