#include "service/query_service.h"

#include <algorithm>
#include <utility>

#include "parser/parser.h"
#include "service/answer_text.h"

namespace exdl {

namespace {

ServiceOptions Normalize(ServiceOptions options) {
  if (options.num_workers == 0) options.num_workers = 1;
  return options;
}

}  // namespace

QueryService::QueryService(ServiceOptions options)
    : options_(Normalize(std::move(options))),
      ctx_(std::make_shared<Context>()),
      cache_(options_.program_cache_capacity),
      durable_(options_.durable),
      pool_(options_.num_workers - 1) {
  // Register every service metric before the first shard is cut (shards
  // are sized to the registry at creation time).
  obs::MetricsRegistry& metrics = service_telemetry_.metrics();
  cache_hit_id_ = metrics.Counter("service.cache.hit");
  cache_miss_id_ = metrics.Counter("service.cache.miss");
  cache_eviction_id_ = metrics.Counter("service.cache.eviction");
  queries_submitted_id_ = metrics.Counter("service.queries.submitted");
  queries_completed_id_ = metrics.Counter("service.queries.completed");
  queries_failed_id_ = metrics.Counter("service.queries.failed");
  batches_id_ = metrics.Counter("service.batches");
  generation_id_ = metrics.Gauge("service.snapshot.generation");
  // MetricsJson before the first query still labels the configured mode.
  aggregate_.representation.mode = options_.eval.representation;
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  dispatcher_.join();
}

QueryService::Ticket QueryService::Submit(QueryRequest request) {
  std::lock_guard<std::mutex> lock(mu_);
  const Ticket ticket = next_ticket_++;
  ++submitted_;
  outstanding_.insert(ticket);
  queue_.push_back(Pending{ticket, std::move(request), snapshot_});
  work_cv_.notify_one();
  return ticket;
}

std::vector<QueryService::Ticket> QueryService::SubmitBatch(
    std::vector<QueryRequest> requests) {
  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (QueryRequest& request : requests) {
    const Ticket ticket = next_ticket_++;
    ++submitted_;
    outstanding_.insert(ticket);
    queue_.push_back(Pending{ticket, std::move(request), snapshot_});
    tickets.push_back(ticket);
  }
  work_cv_.notify_one();
  return tickets;
}

QueryResponse QueryService::Await(Ticket ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  if (outstanding_.find(ticket) == outstanding_.end()) {
    QueryResponse response;
    response.status =
        Status::InvalidArgument("unknown or already consumed ticket");
    return response;
  }
  done_cv_.wait(lock, [&] { return done_.find(ticket) != done_.end(); });
  QueryResponse response = std::move(done_[ticket]);
  done_.erase(ticket);
  outstanding_.erase(ticket);
  return response;
}

std::vector<QueryResponse> QueryService::AwaitBatch(
    const std::vector<Ticket>& tickets) {
  std::vector<QueryResponse> responses;
  responses.reserve(tickets.size());
  for (Ticket ticket : tickets) responses.push_back(Await(ticket));
  return responses;
}

std::optional<QueryResponse> QueryService::AwaitFor(
    Ticket ticket, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (outstanding_.find(ticket) == outstanding_.end()) {
    QueryResponse response;
    response.status =
        Status::InvalidArgument("unknown or already consumed ticket");
    return response;
  }
  if (!done_cv_.wait_for(lock, timeout,
                         [&] { return done_.find(ticket) != done_.end(); })) {
    return std::nullopt;
  }
  QueryResponse response = std::move(done_[ticket]);
  done_.erase(ticket);
  outstanding_.erase(ticket);
  return response;
}

Status QueryService::LoadFacts(std::string_view source) {
  return LoadFactsImpl(source, /*durable=*/true);
}

Status QueryService::LoadFactsImpl(std::string_view source, bool durable) {
  // Parsing interns symbols/predicates into the shared Context, and the
  // compile turnstile orders all other interning strictly by ticket. Go
  // through the same turnstile: wait until every query submitted before
  // this call has passed its compile, then parse while holding
  // compile_mu_. Interned ids then depend only on the interleaving of
  // Submit and LoadFacts calls — never on pool size or scheduling — which
  // preserves the byte-identical-answers determinism guarantee. Recovery
  // replay takes the same path (on an idle service the turnstile passes
  // straight through), so a replayed load interns exactly what the
  // original did.
  Ticket submitted_before;
  {
    std::lock_guard<std::mutex> lock(mu_);
    submitted_before = next_ticket_;
  }
  ParsedUnit parsed(ctx_);
  {
    std::unique_lock<std::mutex> compile_lock(compile_mu_);
    compile_cv_.wait(compile_lock,
                     [&] { return next_compile_ >= submitted_before; });
    EXDL_ASSIGN_OR_RETURN(parsed, ParseProgram(source, ctx_));
  }
  if (!parsed.program.rules().empty()) {
    return Status::InvalidArgument(
        "LoadFacts source must contain only ground facts");
  }
  DatabaseSnapshot published;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Database next = snapshot_.valid() ? snapshot_.db().Clone() : Database();
    for (const Atom& fact : parsed.facts) {
      EXDL_RETURN_IF_ERROR(next.AddFact(fact));
    }
    // Durability ordering contract (DESIGN.md §15): the fact-log record is
    // on stable storage before the generation becomes visible to queries.
    // On failure the current snapshot stays published — the daemon never
    // acknowledges a generation that is not logged.
    if (durable && durable_ != nullptr) {
      EXDL_RETURN_IF_ERROR(durable_->Append(generation_ + 1, source));
    }
    ++generation_;
    snapshot_ = DatabaseSnapshot(
        std::make_shared<const Database>(std::move(next)), generation_);
    if (durable && durable_ != nullptr) {
      // Compaction is an optimization: a failed snapshot write (injected
      // factlog.compact_rename, disk trouble) must not fail the load. The
      // previous snapshot + intact log still recover everything, and the
      // next append retries the compaction.
      Status compacted =
          durable_->MaybeCompact(*ctx_, snapshot_.db(), generation_);
      (void)compacted;
    }
    published = snapshot_;
  }
  // Standing views absorb the generation outside mu_ (lock order:
  // standing_mu_ before mu_): queries against the new snapshot proceed
  // while views re-derive, and polls see the new generation only once
  // its maintenance finished.
  MaintainStandingViews(parsed.facts, published);
  return Status::Ok();
}

void QueryService::MaintainStandingViews(std::span<const Atom> facts,
                                         const DatabaseSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(standing_mu_);
  for (auto& [id, entry] : standing_) {
    ivm::MaterializedView& view = *entry.view;
    // A view installed after this generation published already absorbed
    // it (installation re-checks the current snapshot under
    // standing_mu_).
    if (entry.health.ok() && snapshot.generation() <= view.generation()) {
      continue;
    }
    Status status;
    if (entry.health.ok() &&
        snapshot.generation() == view.generation() + 1) {
      status = view.Apply(facts, snapshot.generation(), snapshot.db());
      // A failed Apply may have half-appended the delta; rebuilding from
      // the published snapshot restores the invariant.
      if (!status.ok()) {
        status = view.Reseed(snapshot.db(), snapshot.generation());
      }
    } else {
      // Unhealthy, or the view missed a generation (registration raced
      // several loads): the delta is not reconstructible, recompute.
      status = view.Reseed(snapshot.db(), snapshot.generation());
    }
    entry.health = status;
  }
}

Result<uint64_t> QueryService::RegisterStandingQuery(QueryRequest request) {
  request.standing = true;
  const Ticket ticket = Submit(std::move(request));
  QueryResponse response = Await(ticket);
  if (!response.status.ok()) return response.status;
  if (response.standing_id == 0) {
    // Evaluation succeeded but did not converge (budget trip): a partial
    // fixpoint must not be installed as a materialization.
    return Status::FailedPrecondition(
        "standing query seeding did not converge: " +
        response.result.termination.ToString());
  }
  return response.standing_id;
}

Status QueryService::UnregisterStandingQuery(uint64_t standing_id) {
  std::lock_guard<std::mutex> lock(standing_mu_);
  auto it = standing_.find(standing_id);
  if (it == standing_.end()) {
    return Status::NotFound("unknown standing query id " +
                            std::to_string(standing_id));
  }
  retained_standing_stats_ += it->second.view->stats();
  standing_.erase(it);
  return Status::Ok();
}

Result<StandingQueryResult> QueryService::PollStandingQuery(
    uint64_t standing_id) const {
  std::lock_guard<std::mutex> lock(standing_mu_);
  auto it = standing_.find(standing_id);
  if (it == standing_.end()) {
    return Status::NotFound("unknown standing query id " +
                            std::to_string(standing_id));
  }
  if (!it->second.health.ok()) return it->second.health;
  const ivm::MaterializedView& view = *it->second.view;
  StandingQueryResult out;
  out.standing_id = standing_id;
  out.generation = view.generation();
  out.name = it->second.name;
  out.answer_count = view.result().answers.size();
  out.answers = RenderAnswerRows(*ctx_, view.result().answers);
  out.last_was_incremental = view.last_was_incremental();
  out.fallback = view.fallback();
  out.stats = view.stats();
  return out;
}

Status QueryService::RestoreSnapshot(recovery::Snapshot snapshot,
                                     uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_ticket_ != 0 || generation_ != 0 || ctx_->NumSymbols() != 0) {
    return Status::FailedPrecondition(
        "RestoreSnapshot requires a fresh service");
  }
  // Re-intern the stored tables in id order into the (empty) service
  // Context. Sequential interning into an empty context assigns exactly
  // the stored ids, so every SymbolId/PredId in the snapshot's database
  // — and in later replayed loads — means what it meant in the daemon
  // that wrote the snapshot. Any mismatch means the snapshot lied.
  for (size_t i = 0; i < snapshot.symbols.size(); ++i) {
    if (ctx_->InternSymbol(snapshot.symbols[i]) != static_cast<SymbolId>(i)) {
      return Status::CorruptCheckpoint(
          "EDB snapshot symbol table is not in intern order");
    }
  }
  for (size_t i = 0; i < snapshot.preds.size(); ++i) {
    const recovery::SnapshotPred& pred = snapshot.preds[i];
    Adornment adornment;
    if (!pred.adornment.empty()) {
      EXDL_ASSIGN_OR_RETURN(adornment, Adornment::Parse(pred.adornment));
    }
    if (ctx_->InternPredicate(pred.name, pred.arity, adornment) !=
        static_cast<PredId>(i)) {
      return Status::CorruptCheckpoint(
          "EDB snapshot predicate table is not in intern order");
    }
  }
  generation_ = generation;
  snapshot_ = DatabaseSnapshot(
      std::make_shared<const Database>(std::move(snapshot.db)), generation_);
  return Status::Ok();
}

Status QueryService::ReplayFacts(std::string_view source,
                                 uint64_t expected_generation) {
  EXDL_RETURN_IF_ERROR(LoadFactsImpl(source, /*durable=*/false));
  std::lock_guard<std::mutex> lock(mu_);
  if (generation_ != expected_generation) {
    return Status::CorruptCheckpoint(
        "fact-log replay produced generation " + std::to_string(generation_) +
        ", record says " + std::to_string(expected_generation));
  }
  return Status::Ok();
}

void QueryService::AttachDurability(
    std::shared_ptr<durability::DurableEdb> durable) {
  std::lock_guard<std::mutex> lock(mu_);
  durable_ = std::move(durable);
}

DatabaseSnapshot QueryService::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

ProgramCache::Stats QueryService::cache_stats() const { return cache_.stats(); }

void QueryService::DispatcherLoop() {
  while (true) {
    std::vector<Active> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) break;  // Shutdown with a drained queue.
      while (!queue_.empty()) {
        Active item;
        item.pending = std::move(queue_.front());
        queue_.pop_front();
        item.shard = service_telemetry_.metrics().NewShard();
        batch.push_back(std::move(item));
      }
    }
    pool_.Run(static_cast<uint32_t>(batch.size()),
              [&](uint32_t i) { ProcessOne(batch[i]); });
    // Quiescent point: every session of the batch has finished, so their
    // shards can be folded into the service totals.
    {
      std::lock_guard<std::mutex> lock(mu_);
      obs::MetricsRegistry& metrics = service_telemetry_.metrics();
      for (Active& item : batch) {
        metrics.Merge(item.shard);
        if (item.summary.has_run) {
          aggregate_.has_run = true;
          aggregate_.stats += item.summary.stats;
          aggregate_.answers += item.summary.answers;
          // Counters sum across queries; the mode is the service-wide
          // eval template's, identical for every session.
          aggregate_.representation += item.summary.representation;
          aggregate_.representation.mode = item.summary.representation.mode;
          if (aggregate_.termination.ok() && !item.summary.termination.ok()) {
            aggregate_.termination = item.summary.termination;
          }
        }
        done_.emplace(item.pending.ticket, std::move(item.response));
      }
      metrics.Add(batches_id_, 1);
      metrics.Add(queries_submitted_id_, submitted_ - submitted_published_);
      submitted_published_ = submitted_;
      metrics.Set(generation_id_, static_cast<double>(generation_));
      done_cv_.notify_all();
    }
  }
}

void QueryService::ProcessOne(Active& item) {
  QueryResponse& response = item.response;
  response.name = item.pending.request.name;
  response.snapshot_generation = item.pending.snapshot.generation();
  if (options_.collect_telemetry) {
    response.telemetry = std::make_shared<obs::Telemetry>();
  }
  // The request struct is the single source of compile-affecting
  // overrides: the key and the compile below must see the same effective
  // options or a cache hit could hand back the wrong artifact.
  CompileOptions compile_options = options_.compile;
  if (item.pending.request.representation.has_value()) {
    compile_options.representation = *item.pending.request.representation;
  }
  std::string key =
      CompiledProgram::CacheKeyMaterial(item.pending.request, options_.compile);
  CompiledProgram::Ptr compiled;
  {
    // Compile turnstile: cache fills and Context interning happen in
    // strict ticket order, making ids — and therefore answers —
    // independent of worker count and scheduling.
    std::unique_lock<std::mutex> lock(compile_mu_);
    compile_cv_.wait(lock, [&] { return next_compile_ == item.pending.ticket; });
    compiled = cache_.Lookup(key);
    if (compiled != nullptr) {
      response.cache_hit = true;
      item.shard.Add(cache_hit_id_, 1);
    } else {
      item.shard.Add(cache_miss_id_, 1);
      Result<CompiledProgram::Ptr> compile_result = CompiledProgram::Compile(
          item.pending.request.source, compile_options,
          response.telemetry.get(), ctx_);
      if (compile_result.ok()) {
        compiled = *compile_result;
        item.shard.Add(cache_eviction_id_,
                       cache_.Insert(std::move(key), compiled));
      } else {
        response.status = compile_result.status();
      }
    }
    ++next_compile_;
    compile_cv_.notify_all();
  }
  if (!response.status.ok()) {
    item.shard.Add(queries_failed_id_, 1);
    return;
  }
  response.program = compiled;
  // Session EDB: the submission-time snapshot generation (copy-on-write
  // clone — no tuple copy) plus the program's own ground facts.
  Database edb = item.pending.snapshot.valid()
                     ? item.pending.snapshot.db().Clone()
                     : Database();
  for (const auto& [pred, rel] : compiled->facts().relations()) {
    Relation& dst = edb.GetOrCreate(pred, rel.arity());
    for (size_t row = 0; row < rel.size(); ++row) {
      dst.Insert(rel.view().Scan(row));
    }
  }
  SessionOptions session_options;
  session_options.eval = options_.eval;
  if (item.pending.request.budget.has_value()) {
    session_options.eval.budget = *item.pending.request.budget;
  }
  if (item.pending.request.cancellation != nullptr) {
    session_options.eval.budget.cancellation =
        item.pending.request.cancellation;
  }
  session_options.eval.budget = EvalBudget::FromEnv(session_options.eval.budget);
  if (item.pending.request.representation.has_value()) {
    session_options.eval.representation =
        *item.pending.request.representation;
  }
  if (!item.pending.request.checkpoint_directory.empty()) {
    session_options.checkpoint.directory =
        item.pending.request.checkpoint_directory;
    session_options.checkpoint.every_rounds =
        item.pending.request.checkpoint_every_rounds;
  }
  session_options.telemetry = response.telemetry.get();
  // A standing request's seeding evaluation is observed by the view's
  // support ledger (counting IVM substrate) unless the program is a
  // fallback case, where counts are rebuilt by every recompute anyway.
  std::unique_ptr<ivm::SupportLedger> ledger;
  if (item.pending.request.standing &&
      ivm::MaterializedView::Classify(compiled->program(),
                                      session_options.eval) ==
          ivm::Fallback::kNone) {
    ledger = std::make_unique<ivm::SupportLedger>();
    session_options.eval.support_sink = ledger.get();
  }
  const EvalOptions standing_eval = session_options.eval;
  Session session(std::move(session_options));
  session.Bind(compiled);
  Result<EvalResult> evaluated = session.Run(edb);
  if (!evaluated.ok()) {
    response.status = evaluated.status();
    item.shard.Add(queries_failed_id_, 1);
    return;
  }
  response.result = std::move(*evaluated);
  item.summary = session.summary();
  item.shard.Add(queries_completed_id_, 1);
  if (options_.collect_telemetry) {
    response.telemetry_json = RenderTelemetryDoc(
        "service", response.name, session.summary(),
        session.summary().rule_texts, compiled->optimized(), compiled->report(),
        compiled->optimize_termination(), response.telemetry.get());
  }
  if (item.pending.request.standing && response.result.termination.ok()) {
    InstallStandingView(item, compiled, standing_eval, std::move(ledger));
  }
}

void QueryService::InstallStandingView(
    Active& item, CompiledProgram::Ptr compiled, const EvalOptions& eval,
    std::unique_ptr<ivm::SupportLedger> ledger) {
  QueryResponse& response = item.response;
  // The view owns its own copy of the fixpoint database (copy-on-write:
  // O(#relations) now, payloads detach lazily as maintenance appends).
  EvalResult seed;
  seed.db = response.result.db.Clone();
  seed.stats = response.result.stats;
  seed.representation = response.result.representation;
  seed.termination = response.result.termination;
  seed.answers = response.result.answers;
  seed.ground_query_true = response.result.ground_query_true;
  auto view = std::make_unique<ivm::MaterializedView>(
      compiled, eval, std::move(seed), item.pending.snapshot.generation(),
      std::move(ledger));
  std::lock_guard<std::mutex> lock(standing_mu_);
  // Registration raced a LoadFacts if the published generation moved past
  // the one this evaluation read: re-check under standing_mu_ (which
  // maintenance also holds) and rebuild from the current snapshot, so the
  // installed view is never behind the published generation.
  const DatabaseSnapshot current = snapshot();
  const uint64_t current_gen = current.valid() ? current.generation() : 0;
  if (current_gen != view->generation()) {
    Status reseeded = view->Reseed(current.db(), current_gen);
    if (!reseeded.ok()) {
      response.status = reseeded;
      return;
    }
  }
  const uint64_t id = next_standing_id_++;
  StandingEntry entry;
  entry.name = item.pending.request.name;
  entry.view = std::move(view);
  standing_.emplace(id, std::move(entry));
  response.standing_id = id;
}

std::string QueryService::MetricsJson(
    const std::function<void(obs::JsonWriter&)>& extra_keys) const {
  // Gather the IVM counters before taking mu_ (lock order: standing_mu_
  // strictly before mu_). Retained stats keep unregistered views'
  // counters monotone.
  uint64_t maintained_queries = 0;
  ivm::IvmStats ivm_stats;
  {
    std::lock_guard<std::mutex> lock(standing_mu_);
    maintained_queries = standing_.size();
    ivm_stats = retained_standing_stats_;
    for (const auto& [id, entry] : standing_) {
      ivm_stats += entry.view->stats();
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  const ProgramCache::Stats cache = cache_.stats();
  const obs::MetricsRegistry& metrics = service_telemetry_.metrics();
  const uint64_t completed = metrics.CounterValue(queries_completed_id_);
  const uint64_t failed = metrics.CounterValue(queries_failed_id_);
  auto extra = [&](obs::JsonWriter& w) {
    w.Key("service");
    w.BeginObject();
    w.Key("workers");
    w.UInt(options_.num_workers);
    w.Key("snapshot_generation");
    w.UInt(generation_);
    w.Key("queries");
    w.BeginObject();
    w.Key("submitted");
    w.UInt(submitted_);
    w.Key("pending");
    w.UInt(queue_.size());
    w.Key("completed");
    w.UInt(completed);
    w.Key("failed");
    w.UInt(failed);
    w.EndObject();
    w.Key("cache");
    w.BeginObject();
    w.Key("hits");
    w.UInt(cache.hits);
    w.Key("misses");
    w.UInt(cache.misses);
    w.Key("evictions");
    w.UInt(cache.evictions);
    w.Key("size");
    w.UInt(cache.size);
    w.Key("capacity");
    w.UInt(cache.capacity);
    w.EndObject();
    w.EndObject();
    w.Key("ivm");
    w.BeginObject();
    w.Key("maintained_queries");
    w.UInt(maintained_queries);
    w.Key("generations_applied");
    w.UInt(ivm_stats.generations_applied);
    w.Key("delta_rounds");
    w.UInt(ivm_stats.delta_rounds);
    w.Key("full_recomputes");
    w.UInt(ivm_stats.full_recomputes);
    w.Key("tuples_rederived");
    w.UInt(ivm_stats.tuples_rederived);
    w.Key("facts_absorbed");
    w.UInt(ivm_stats.facts_absorbed);
    w.EndObject();
    if (extra_keys) extra_keys(w);
  };
  return RenderTelemetryDoc("service", "", aggregate_, {}, false,
                            OptimizationReport(), Status::Ok(),
                            &service_telemetry_, extra);
}

}  // namespace exdl
