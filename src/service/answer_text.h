// Canonical text rendering of query answers.
//
// Every surface that prints answers — `exdlc run`, the batch service mode,
// and the exdld daemon shipping results over the wire — renders through
// this one function, so the bytes a client receives from a socket are
// identical to what an in-process Engine run would have printed for the
// same submission sequence: one row per line, values joined by a single
// tab, each symbol spelled by Context::SymbolName.

#ifndef EXDL_SERVICE_ANSWER_TEXT_H_
#define EXDL_SERVICE_ANSWER_TEXT_H_

#include <string>
#include <vector>

#include "ast/context.h"
#include "storage/relation.h"

namespace exdl {

std::string RenderAnswerRows(const Context& ctx,
                             const std::vector<std::vector<Value>>& answers);

}  // namespace exdl

#endif  // EXDL_SERVICE_ANSWER_TEXT_H_
