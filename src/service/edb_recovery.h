// Durable-EDB startup recovery (DESIGN.md §15).
//
// Bridges durability::DurableEdb and QueryService: installs the newest
// compacted snapshot, then replays the fact-log tail through the
// service's normal parse/turnstile/publish path — the same interning
// sequence the original loads performed, so a recovered daemon answers
// byte-identically to one that never died. The daemon.recover_replay
// fault site fires once per replayed record.

#ifndef EXDL_SERVICE_EDB_RECOVERY_H_
#define EXDL_SERVICE_EDB_RECOVERY_H_

#include "durability/durable_edb.h"
#include "service/query_service.h"
#include "util/status.h"

namespace exdl {

/// Recovers `edb` (already Open()ed) into the fresh `service`. On success
/// the service's snapshot generation equals the last logged load and the
/// edb's replay/recovery-time counters are updated; call
/// QueryService::AttachDurability afterwards to resume logging. Any
/// replay failure — unparseable record, generation mismatch — fails
/// closed with kCorruptCheckpoint.
Status RecoverDurableEdb(durability::DurableEdb& edb, QueryService& service);

}  // namespace exdl

#endif  // EXDL_SERVICE_EDB_RECOVERY_H_
