#include "service/answer_text.h"

namespace exdl {

std::string RenderAnswerRows(const Context& ctx,
                             const std::vector<std::vector<Value>>& answers) {
  std::string out;
  for (const auto& row : answers) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += '\t';
      out += ctx.SymbolName(row[i]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace exdl
