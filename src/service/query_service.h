// QueryService — many concurrent queries over one shared extensional
// database (DESIGN.md §12).
//
// The service composes the API-v2 pieces into a long-lived server object:
//
//   * one shared, internally synchronized Context interns every symbol
//     and predicate the service ever sees;
//   * a ProgramCache of immutable CompiledPrograms keyed by source text +
//     compile options, so re-submitting a query skips parse and optimize
//     entirely (service.cache.hit, and no "optimize >" spans on a warm
//     submission);
//   * a DatabaseSnapshot of the current EDB generation; LoadFacts builds
//     the *next* generation from a copy-on-write clone and publishes it,
//     leaving in-flight queries reading their generation untouched;
//   * one Session per in-flight query, with its own EvalOptions copy,
//     budget (resolved through EvalBudget::FromEnv), telemetry sink, and
//     metric shard — merged into the service counters at batch ends.
//
// Execution model: Submit/SubmitBatch enqueue and return tickets; a
// dispatcher thread drains the queue into batches and fans each batch out
// over the PR-1 persistent WorkerPool (the dispatcher participates, so
// num_workers is the total parallelism). Await blocks for one ticket.
//
// Determinism: compiles pass through a ticket-ordered turnstile, so
// symbols and predicates are interned in submission order no matter how
// many workers race — answers for a given submission sequence are
// byte-identical across pool sizes (service_test.cc locks this in).
// LoadFacts interns through the same turnstile (after every previously
// submitted compile, before any later one), so interleaved fact loads
// keep the guarantee too.

#ifndef EXDL_SERVICE_QUERY_SERVICE_H_
#define EXDL_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/session.h"
#include "durability/durable_edb.h"
#include "obs/telemetry.h"
#include "recovery/checkpoint.h"
#include "service/program_cache.h"
#include "storage/database.h"
#include "util/cancellation.h"
#include "util/worker_pool.h"

namespace exdl {

struct ServiceOptions {
  /// Total per-batch parallelism (worker threads + the dispatcher).
  /// Clamped to >= 1.
  uint32_t num_workers = 1;
  /// ProgramCache capacity; 0 disables caching.
  size_t program_cache_capacity = 64;
  /// Compile pipeline applied to every submitted query (also part of the
  /// cache key).
  CompileOptions compile;
  /// Per-session evaluation template. Each query gets a private copy with
  /// its budget resolved through EvalBudget::FromEnv.
  EvalOptions eval;
  /// Give every query its own obs::Telemetry sink and render a per-query
  /// telemetry document into QueryResponse::telemetry_json.
  bool collect_telemetry = false;
  /// Durable-EDB hook (DESIGN.md §15). When set, every LoadFacts appends
  /// and fsyncs a fact-log record *before* publishing the new snapshot
  /// generation, and compacts on the DurableEdb's schedule. The service
  /// does not recover from it — see service/edb_recovery.h.
  std::shared_ptr<durability::DurableEdb> durable;
};

struct QueryRequest {
  /// Full query source: rules, query, and (optional) ground facts, which
  /// are evaluated on top of the service's current EDB snapshot.
  std::string source;
  /// Provenance label (file name) echoed into the response and telemetry.
  std::string name;
  /// Per-request budget override. When set it replaces the service-template
  /// budget for this query (the daemon's admission control resolves the
  /// client ask against the tenant policy and passes the clamped result
  /// here). EXDL_BUDGET_* environment variables still fill limits the
  /// override leaves at zero.
  std::optional<EvalBudget> budget;
  /// Optional per-request cancellation, merged into the session budget.
  /// Borrowed: must stay alive until the ticket's response is produced
  /// (the daemon cancels abandoned queries through this on client
  /// disconnect). Overrides any token in `budget`.
  CancellationToken* cancellation = nullptr;
};

struct QueryResponse {
  /// OK when evaluation produced a result (even a budget-tripped one —
  /// see result.termination); a compile or hard evaluation error
  /// otherwise.
  Status status;
  /// Valid when status.ok().
  EvalResult result;
  /// The shared artifact this query evaluated (keeps its Context alive).
  CompiledProgram::Ptr program;
  /// Per-query sink; null unless ServiceOptions::collect_telemetry.
  std::shared_ptr<obs::Telemetry> telemetry;
  /// Rendered per-query telemetry document (same schema as
  /// Engine::TelemetryJson); empty unless collect_telemetry.
  std::string telemetry_json;
  /// EDB snapshot generation the query read.
  uint64_t snapshot_generation = 0;
  /// True when the compiled program came from the ProgramCache.
  bool cache_hit = false;
  /// QueryRequest::name echoed back.
  std::string name;
};

class QueryService {
 public:
  using Ticket = uint64_t;

  explicit QueryService(ServiceOptions options = {});
  /// Drains every submitted query, then stops the workers. Responses not
  /// yet awaited are discarded.
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues one query against the current EDB snapshot; returns a
  /// ticket for Await. Tickets also fix the compile order (determinism).
  Ticket Submit(QueryRequest request);
  /// Enqueues a pipeline of queries in order; one ticket each.
  std::vector<Ticket> SubmitBatch(std::vector<QueryRequest> requests);

  /// Blocks until `ticket`'s query finishes and moves its response out.
  /// Each ticket may be awaited exactly once; an unknown or already
  /// consumed ticket yields an InvalidArgument response immediately.
  QueryResponse Await(Ticket ticket);
  std::vector<QueryResponse> AwaitBatch(const std::vector<Ticket>& tickets);

  /// Await with a timeout: waits up to `timeout` for `ticket`'s response.
  /// Returns the response when it arrived in time (or immediately, with an
  /// InvalidArgument response, for an unknown/consumed ticket) and
  /// std::nullopt on timeout — the ticket remains awaitable. The daemon's
  /// connection loops poll through this so a blocked Await can notice a
  /// torn client connection.
  std::optional<QueryResponse> AwaitFor(Ticket ticket,
                                        std::chrono::milliseconds timeout);

  /// Parses a facts-only source (rules are rejected) and publishes the
  /// next EDB snapshot generation: a copy-on-write clone of the current
  /// one plus the new facts. In-flight queries keep reading the
  /// generation they were submitted against.
  ///
  /// Interning goes through the compile turnstile: the parse waits for
  /// every query submitted before this call to finish compiling, then
  /// runs exclusively, so symbol/predicate ids depend only on the
  /// Submit/LoadFacts call sequence — not on pool size or scheduling.
  /// (Consequently this call blocks until prior submissions compile.)
  ///
  /// With a durable EDB attached, the fact-log record is fsync'd before
  /// the generation is published; a durability failure leaves the
  /// current snapshot untouched and surfaces the error.
  Status LoadFacts(std::string_view source);

  /// Recovery bootstrap (DESIGN.md §15): installs a compacted EDB
  /// snapshot as generation `generation`. The snapshot's interning
  /// tables are re-interned into the service Context in stored (id)
  /// order, so every id means the same thing it did in the daemon that
  /// wrote it. Must run on a fresh service (no submissions, no loads);
  /// an id mismatch fails closed with kCorruptCheckpoint.
  Status RestoreSnapshot(recovery::Snapshot snapshot, uint64_t generation);

  /// Recovery replay of one logged LoadFacts: same parse/turnstile/
  /// publish path, but nothing is re-appended to the log, and the
  /// resulting generation must equal `expected_generation` (else
  /// kCorruptCheckpoint). Must run before the service takes traffic.
  Status ReplayFacts(std::string_view source, uint64_t expected_generation);

  /// Attaches the durable-EDB hook after recovery replay (replacing any
  /// hook from ServiceOptions). Call before the first live LoadFacts.
  void AttachDurability(std::shared_ptr<durability::DurableEdb> durable);

  /// The current EDB snapshot (generation 0 / invalid before the first
  /// LoadFacts).
  DatabaseSnapshot snapshot() const;

  ProgramCache::Stats cache_stats() const;
  const ContextPtr& ctx() const { return ctx_; }
  const ServiceOptions& options() const { return options_; }

  /// Renders the merged service telemetry document: the same schema as
  /// Engine::TelemetryJson (stats aggregated over every completed query,
  /// service-level metrics rows) plus a "service" object with worker,
  /// snapshot, queue, and cache counters. Validated by
  /// tools/check_metrics_schema.py. When `extra` is set it is invoked
  /// right before the document closes so an embedder can append its own
  /// top-level keys (the daemon's "daemon" object).
  std::string MetricsJson(
      const std::function<void(obs::JsonWriter&)>& extra = {}) const;

 private:
  struct Pending {
    Ticket ticket = 0;
    QueryRequest request;
    DatabaseSnapshot snapshot;
  };
  struct Active {
    Pending pending;
    QueryResponse response;
    RunSummary summary;
    obs::MetricsShard shard;
  };

  void DispatcherLoop();
  /// Runs one query end to end on a worker thread: ticket-ordered compile
  /// (through the cache), then an isolated Session evaluation.
  void ProcessOne(Active& item);
  /// Shared body of LoadFacts (durable == true) and ReplayFacts.
  Status LoadFactsImpl(std::string_view source, bool durable);

  ServiceOptions options_;
  ContextPtr ctx_;
  ProgramCache cache_;
  /// Durable-EDB hook; written only before the service takes traffic
  /// (constructor / AttachDurability), read under mu_ afterwards.
  std::shared_ptr<durability::DurableEdb> durable_;
  obs::Telemetry service_telemetry_;

  // Service metric ids (registered in the constructor, before any shard).
  obs::MetricId cache_hit_id_;
  obs::MetricId cache_miss_id_;
  obs::MetricId cache_eviction_id_;
  obs::MetricId queries_submitted_id_;
  obs::MetricId queries_completed_id_;
  obs::MetricId queries_failed_id_;
  obs::MetricId batches_id_;
  obs::MetricId generation_id_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< Dispatcher: queue or shutdown.
  std::condition_variable done_cv_;  ///< Awaiters: responses arrived.
  std::deque<Pending> queue_;
  std::unordered_map<Ticket, QueryResponse> done_;
  std::unordered_set<Ticket> outstanding_;
  Ticket next_ticket_ = 0;
  DatabaseSnapshot snapshot_;
  uint64_t generation_ = 0;
  /// Aggregate run summary over every completed query (MetricsJson).
  RunSummary aggregate_;
  uint64_t submitted_ = 0;
  uint64_t submitted_published_ = 0;
  bool shutdown_ = false;

  /// Compile turnstile: compiles (and cache fills) happen in strict
  /// ticket order so interning into the shared Context is deterministic.
  std::mutex compile_mu_;
  std::condition_variable compile_cv_;
  Ticket next_compile_ = 0;

  WorkerPool pool_;
  std::thread dispatcher_;
};

}  // namespace exdl

#endif  // EXDL_SERVICE_QUERY_SERVICE_H_
