// QueryService — many concurrent queries over one shared extensional
// database (DESIGN.md §12).
//
// The service composes the API-v2 pieces into a long-lived server object:
//
//   * one shared, internally synchronized Context interns every symbol
//     and predicate the service ever sees;
//   * a ProgramCache of immutable CompiledPrograms keyed by source text +
//     compile options, so re-submitting a query skips parse and optimize
//     entirely (service.cache.hit, and no "optimize >" spans on a warm
//     submission);
//   * a DatabaseSnapshot of the current EDB generation; LoadFacts builds
//     the *next* generation from a copy-on-write clone and publishes it,
//     leaving in-flight queries reading their generation untouched;
//   * one Session per in-flight query, with its own EvalOptions copy,
//     budget (resolved through EvalBudget::FromEnv), telemetry sink, and
//     metric shard — merged into the service counters at batch ends.
//
// Execution model: Submit/SubmitBatch enqueue and return tickets; a
// dispatcher thread drains the queue into batches and fans each batch out
// over the PR-1 persistent WorkerPool (the dispatcher participates, so
// num_workers is the total parallelism). Await blocks for one ticket.
//
// Determinism: compiles pass through a ticket-ordered turnstile, so
// symbols and predicates are interned in submission order no matter how
// many workers race — answers for a given submission sequence are
// byte-identical across pool sizes (service_test.cc locks this in).
// LoadFacts interns through the same turnstile (after every previously
// submitted compile, before any later one), so interleaved fact loads
// keep the guarantee too.

#ifndef EXDL_SERVICE_QUERY_SERVICE_H_
#define EXDL_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/query_request.h"
#include "core/session.h"
#include "durability/durable_edb.h"
#include "ivm/materialized_view.h"
#include "obs/telemetry.h"
#include "recovery/checkpoint.h"
#include "service/program_cache.h"
#include "storage/database.h"
#include "util/cancellation.h"
#include "util/worker_pool.h"

namespace exdl {

struct ServiceOptions {
  /// Total per-batch parallelism (worker threads + the dispatcher).
  /// Clamped to >= 1.
  uint32_t num_workers = 1;
  /// ProgramCache capacity; 0 disables caching.
  size_t program_cache_capacity = 64;
  /// Compile pipeline applied to every submitted query (also part of the
  /// cache key).
  CompileOptions compile;
  /// Per-session evaluation template. Each query gets a private copy with
  /// its budget resolved through EvalBudget::FromEnv.
  EvalOptions eval;
  /// Give every query its own obs::Telemetry sink and render a per-query
  /// telemetry document into QueryResponse::telemetry_json.
  bool collect_telemetry = false;
  /// Durable-EDB hook (DESIGN.md §15). When set, every LoadFacts appends
  /// and fsyncs a fact-log record *before* publishing the new snapshot
  /// generation, and compacts on the DurableEdb's schedule. The service
  /// does not recover from it — see service/edb_recovery.h.
  std::shared_ptr<durability::DurableEdb> durable;
};

// QueryRequest moved to core/query_request.h (API v2 redesign): one
// request struct shared by the service, the daemon wire layer, and the
// CLI, instead of per-layer parameter lists.

struct QueryResponse {
  /// OK when evaluation produced a result (even a budget-tripped one —
  /// see result.termination); a compile or hard evaluation error
  /// otherwise.
  Status status;
  /// Valid when status.ok().
  EvalResult result;
  /// The shared artifact this query evaluated (keeps its Context alive).
  CompiledProgram::Ptr program;
  /// Per-query sink; null unless ServiceOptions::collect_telemetry.
  std::shared_ptr<obs::Telemetry> telemetry;
  /// Rendered per-query telemetry document (same schema as
  /// Engine::TelemetryJson); empty unless collect_telemetry.
  std::string telemetry_json;
  /// EDB snapshot generation the query read.
  uint64_t snapshot_generation = 0;
  /// True when the compiled program came from the ProgramCache.
  bool cache_hit = false;
  /// QueryRequest::name echoed back.
  std::string name;
  /// Non-zero when the request had `standing` set and the evaluation
  /// succeeded: the id of the installed materialized view, for
  /// PollStandingQuery / UnregisterStandingQuery.
  uint64_t standing_id = 0;
};

/// One PollStandingQuery answer: the maintained view's current state,
/// rendered exactly as a cold evaluation of the same generation would be.
struct StandingQueryResult {
  uint64_t standing_id = 0;
  /// EDB generation the answers are current as of.
  uint64_t generation = 0;
  /// QueryRequest::name from registration.
  std::string name;
  uint64_t answer_count = 0;
  /// RenderAnswerRows output — byte-identical to a cold run's rendering.
  std::string answers;
  /// True when the most recent maintenance took the incremental path
  /// (trivially true right after registration).
  bool last_was_incremental = true;
  /// Why the view full-recomputes every generation (kNone = it doesn't).
  ivm::Fallback fallback = ivm::Fallback::kNone;
  /// This view's cumulative maintenance counters.
  ivm::IvmStats stats;
};

class QueryService {
 public:
  using Ticket = uint64_t;

  explicit QueryService(ServiceOptions options = {});
  /// Drains every submitted query, then stops the workers. Responses not
  /// yet awaited are discarded.
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues one query against the current EDB snapshot; returns a
  /// ticket for Await. Tickets also fix the compile order (determinism).
  Ticket Submit(QueryRequest request);
  /// Enqueues a pipeline of queries in order; one ticket each.
  std::vector<Ticket> SubmitBatch(std::vector<QueryRequest> requests);

  /// Deprecated: the pre-redesign parameter-list form, kept so existing
  /// call sites compile; forwards to Submit(QueryRequest). New code
  /// builds a QueryRequest (core/query_request.h) directly.
  Ticket Submit(std::string source, std::string name,
                std::optional<EvalBudget> budget,
                CancellationToken* cancellation = nullptr) {
    QueryRequest request;
    request.source = std::move(source);
    request.name = std::move(name);
    request.budget = std::move(budget);
    request.cancellation = cancellation;
    return Submit(std::move(request));
  }

  /// Registers a standing query (DESIGN.md §16): evaluates `request` once
  /// through the normal Submit path (same turnstile, cache, budget), then
  /// installs the result as a materialized view that every later
  /// LoadFacts maintains incrementally. Blocks until the seeding
  /// evaluation finishes; returns the standing id. The request's
  /// `standing` flag is implied.
  Result<uint64_t> RegisterStandingQuery(QueryRequest request);

  /// Drops a standing view. Its maintenance counters are retained for
  /// MetricsJson's "ivm" object.
  Status UnregisterStandingQuery(uint64_t standing_id);

  /// The registered view's current answers — rendered text byte-identical
  /// to a cold evaluation of the same source at the view's generation.
  /// Non-blocking: reads the maintained materialization, never
  /// re-evaluates.
  Result<StandingQueryResult> PollStandingQuery(uint64_t standing_id) const;

  /// Blocks until `ticket`'s query finishes and moves its response out.
  /// Each ticket may be awaited exactly once; an unknown or already
  /// consumed ticket yields an InvalidArgument response immediately.
  QueryResponse Await(Ticket ticket);
  std::vector<QueryResponse> AwaitBatch(const std::vector<Ticket>& tickets);

  /// Await with a timeout: waits up to `timeout` for `ticket`'s response.
  /// Returns the response when it arrived in time (or immediately, with an
  /// InvalidArgument response, for an unknown/consumed ticket) and
  /// std::nullopt on timeout — the ticket remains awaitable. The daemon's
  /// connection loops poll through this so a blocked Await can notice a
  /// torn client connection.
  std::optional<QueryResponse> AwaitFor(Ticket ticket,
                                        std::chrono::milliseconds timeout);

  /// Parses a facts-only source (rules are rejected) and publishes the
  /// next EDB snapshot generation: a copy-on-write clone of the current
  /// one plus the new facts. In-flight queries keep reading the
  /// generation they were submitted against.
  ///
  /// Interning goes through the compile turnstile: the parse waits for
  /// every query submitted before this call to finish compiling, then
  /// runs exclusively, so symbol/predicate ids depend only on the
  /// Submit/LoadFacts call sequence — not on pool size or scheduling.
  /// (Consequently this call blocks until prior submissions compile.)
  ///
  /// With a durable EDB attached, the fact-log record is fsync'd before
  /// the generation is published; a durability failure leaves the
  /// current snapshot untouched and surfaces the error.
  Status LoadFacts(std::string_view source);

  /// Recovery bootstrap (DESIGN.md §15): installs a compacted EDB
  /// snapshot as generation `generation`. The snapshot's interning
  /// tables are re-interned into the service Context in stored (id)
  /// order, so every id means the same thing it did in the daemon that
  /// wrote it. Must run on a fresh service (no submissions, no loads);
  /// an id mismatch fails closed with kCorruptCheckpoint.
  Status RestoreSnapshot(recovery::Snapshot snapshot, uint64_t generation);

  /// Recovery replay of one logged LoadFacts: same parse/turnstile/
  /// publish path, but nothing is re-appended to the log, and the
  /// resulting generation must equal `expected_generation` (else
  /// kCorruptCheckpoint). Must run before the service takes traffic.
  Status ReplayFacts(std::string_view source, uint64_t expected_generation);

  /// Attaches the durable-EDB hook after recovery replay (replacing any
  /// hook from ServiceOptions). Call before the first live LoadFacts.
  void AttachDurability(std::shared_ptr<durability::DurableEdb> durable);

  /// The current EDB snapshot (generation 0 / invalid before the first
  /// LoadFacts).
  DatabaseSnapshot snapshot() const;

  ProgramCache::Stats cache_stats() const;
  const ContextPtr& ctx() const { return ctx_; }
  const ServiceOptions& options() const { return options_; }

  /// Renders the merged service telemetry document: the same schema as
  /// Engine::TelemetryJson (stats aggregated over every completed query,
  /// service-level metrics rows) plus a "service" object with worker,
  /// snapshot, queue, and cache counters. Validated by
  /// tools/check_metrics_schema.py. When `extra` is set it is invoked
  /// right before the document closes so an embedder can append its own
  /// top-level keys (the daemon's "daemon" object).
  std::string MetricsJson(
      const std::function<void(obs::JsonWriter&)>& extra = {}) const;

 private:
  struct Pending {
    Ticket ticket = 0;
    QueryRequest request;
    DatabaseSnapshot snapshot;
  };
  struct Active {
    Pending pending;
    QueryResponse response;
    RunSummary summary;
    obs::MetricsShard shard;
  };

  void DispatcherLoop();
  /// Runs one query end to end on a worker thread: ticket-ordered compile
  /// (through the cache), then an isolated Session evaluation. Standing
  /// requests additionally install their materialized view.
  void ProcessOne(Active& item);
  /// Shared body of LoadFacts (durable == true) and ReplayFacts.
  Status LoadFactsImpl(std::string_view source, bool durable);
  /// Absorbs one published generation into every standing view. Called
  /// by LoadFactsImpl after mu_ is released (lock order is standing_mu_
  /// before mu_, never the reverse).
  void MaintainStandingViews(std::span<const Atom> facts,
                             const DatabaseSnapshot& snapshot);
  /// Installs a standing request's finished evaluation as a materialized
  /// view (re-checking the published generation under standing_mu_) and
  /// stamps the new id into the response.
  void InstallStandingView(Active& item, CompiledProgram::Ptr compiled,
                           const EvalOptions& eval,
                           std::unique_ptr<ivm::SupportLedger> ledger);

  ServiceOptions options_;
  ContextPtr ctx_;
  ProgramCache cache_;
  /// Durable-EDB hook; written only before the service takes traffic
  /// (constructor / AttachDurability), read under mu_ afterwards.
  std::shared_ptr<durability::DurableEdb> durable_;
  obs::Telemetry service_telemetry_;

  // Service metric ids (registered in the constructor, before any shard).
  obs::MetricId cache_hit_id_;
  obs::MetricId cache_miss_id_;
  obs::MetricId cache_eviction_id_;
  obs::MetricId queries_submitted_id_;
  obs::MetricId queries_completed_id_;
  obs::MetricId queries_failed_id_;
  obs::MetricId batches_id_;
  obs::MetricId generation_id_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< Dispatcher: queue or shutdown.
  std::condition_variable done_cv_;  ///< Awaiters: responses arrived.
  std::deque<Pending> queue_;
  std::unordered_map<Ticket, QueryResponse> done_;
  std::unordered_set<Ticket> outstanding_;
  Ticket next_ticket_ = 0;
  DatabaseSnapshot snapshot_;
  uint64_t generation_ = 0;
  /// Aggregate run summary over every completed query (MetricsJson).
  RunSummary aggregate_;
  uint64_t submitted_ = 0;
  uint64_t submitted_published_ = 0;
  bool shutdown_ = false;

  /// Compile turnstile: compiles (and cache fills) happen in strict
  /// ticket order so interning into the shared Context is deterministic.
  std::mutex compile_mu_;
  std::condition_variable compile_cv_;
  Ticket next_compile_ = 0;

  /// Standing-query registry (DESIGN.md §16). Lock order: standing_mu_
  /// may be held while taking mu_ (installation re-checks the snapshot),
  /// never the reverse — LoadFactsImpl maintains views only after
  /// releasing mu_.
  struct StandingEntry {
    std::string name;
    std::unique_ptr<ivm::MaterializedView> view;
    /// Non-OK after a maintenance failure: polls surface this, and the
    /// next generation retries with a full Reseed instead of trusting a
    /// possibly half-applied view.
    Status health;
  };
  mutable std::mutex standing_mu_;
  std::map<uint64_t, StandingEntry> standing_;
  uint64_t next_standing_id_ = 1;
  /// Counters of views already unregistered, so the "ivm" metrics object
  /// never goes backwards.
  ivm::IvmStats retained_standing_stats_;

  WorkerPool pool_;
  std::thread dispatcher_;
};

}  // namespace exdl

#endif  // EXDL_SERVICE_QUERY_SERVICE_H_
