// ProgramCache — a bounded, thread-safe LRU cache of CompiledProgram
// artifacts keyed by CompiledProgram::CacheKey (FNV-1a over the raw
// source text and every compile option that changes the artifact or the
// semantics it binds to; see compiled_program.h).
//
// The point of the cache is to skip the whole compile front half on a
// warm hit: the key is computable without parsing, and the cached value
// is immutable and shared by shared_ptr, so a hit costs one mutex-guarded
// map lookup — no re-parse, no re-optimize, no "optimize >" trace spans.
// Distinct semantics (e.g. naive vs semi-naive) never share an entry even
// though the rewritten rules would be identical, because the semantics
// toggles are part of the key.

#ifndef EXDL_SERVICE_PROGRAM_CACHE_H_
#define EXDL_SERVICE_PROGRAM_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/compiled_program.h"

namespace exdl {

class ProgramCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t size = 0;
    size_t capacity = 0;
  };

  /// A capacity of 0 disables caching: every Lookup misses, every Insert
  /// is dropped (and counted as an eviction of itself).
  explicit ProgramCache(size_t capacity) : capacity_(capacity) {}
  ProgramCache(const ProgramCache&) = delete;
  ProgramCache& operator=(const ProgramCache&) = delete;

  /// The cached artifact for `key`, or nullptr. A hit moves the entry to
  /// the front of the LRU order. Counts one hit or one miss.
  CompiledProgram::Ptr Lookup(uint64_t key);

  /// Installs `value` under `key` (replacing any racing entry another
  /// session inserted first — last writer wins; both artifacts are
  /// equivalent by construction). Returns the number of entries evicted
  /// to stay within capacity.
  size_t Insert(uint64_t key, CompiledProgram::Ptr value);

  Stats stats() const;

  /// Drops every entry (outstanding Ptrs stay valid; counters persist).
  void Clear();

 private:
  using Entry = std::pair<uint64_t, CompiledProgram::Ptr>;

  mutable std::mutex mu_;
  const size_t capacity_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<uint64_t, std::list<Entry>::iterator> by_key_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace exdl

#endif  // EXDL_SERVICE_PROGRAM_CACHE_H_
