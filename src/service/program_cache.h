// ProgramCache — a bounded, thread-safe LRU cache of CompiledProgram
// artifacts keyed by CompiledProgram::CacheKeyMaterial (the raw source
// text plus every compile option that changes the artifact or the
// semantics it binds to; see compiled_program.h).
//
// The point of the cache is to skip the whole compile front half on a
// warm hit: the key is computable without parsing, and the cached value
// is immutable and shared by shared_ptr, so a hit costs one mutex-guarded
// map lookup — no re-parse, no re-optimize, no "optimize >" trace spans.
// Distinct semantics (e.g. naive vs semi-naive) never share an entry even
// though the rewritten rules would be identical, because the semantics
// toggles are part of the key.
//
// The map is keyed on the *full* key bytes, not a hash of them: a 64-bit
// FNV fingerprint of source+options is cheap but not collision-resistant,
// and in a long-lived service a collision between two distinct programs
// would silently serve the wrong CompiledProgram as a warm hit. Keying on
// the material makes that impossible by construction.

#ifndef EXDL_SERVICE_PROGRAM_CACHE_H_
#define EXDL_SERVICE_PROGRAM_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "core/compiled_program.h"

namespace exdl {

class ProgramCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t size = 0;
    size_t capacity = 0;
  };

  /// A capacity of 0 disables caching: every Lookup misses, every Insert
  /// is dropped (and counted as an eviction of itself).
  explicit ProgramCache(size_t capacity) : capacity_(capacity) {}
  ProgramCache(const ProgramCache&) = delete;
  ProgramCache& operator=(const ProgramCache&) = delete;

  /// The cached artifact whose key bytes equal `key`, or nullptr. A hit
  /// moves the entry to the front of the LRU order. Counts one hit or one
  /// miss.
  CompiledProgram::Ptr Lookup(std::string_view key);

  /// Installs `value` under `key` (replacing any racing entry another
  /// session inserted first — last writer wins; both artifacts are
  /// equivalent by construction). Returns the number of entries evicted
  /// to stay within capacity.
  size_t Insert(std::string key, CompiledProgram::Ptr value);

  Stats stats() const;

  /// Drops every entry (outstanding Ptrs stay valid; counters persist).
  void Clear();

 private:
  using Entry = std::pair<std::string, CompiledProgram::Ptr>;

  mutable std::mutex mu_;
  const size_t capacity_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  // Views into the key strings owned by lru_ nodes; std::list node
  // stability keeps them valid across splices until the node is erased.
  std::unordered_map<std::string_view, std::list<Entry>::iterator> by_key_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace exdl

#endif  // EXDL_SERVICE_PROGRAM_CACHE_H_
