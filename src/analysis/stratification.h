// Stratification for programs with negated body literals.
//
// A program is stratified when no predicate depends on itself through a
// negation: every cycle of the dependency graph uses only positive edges.
// Strata are then the SCC layers — a predicate's stratum is strictly above
// the strata of predicates it negates and at least those it uses
// positively. The evaluator computes one fixpoint per stratum, so negated
// literals always read fully computed relations (the standard stratified
// semantics — the generalization Section 6 of the paper points to).

#ifndef EXDL_ANALYSIS_STRATIFICATION_H_
#define EXDL_ANALYSIS_STRATIFICATION_H_

#include <unordered_map>
#include <vector>

#include "ast/program.h"
#include "util/status.h"

namespace exdl {

struct Stratification {
  /// Stratum of each derived predicate (base predicates are stratum 0 and
  /// not listed). Strata are consecutive from 0.
  std::unordered_map<PredId, int> stratum_of;
  int num_strata = 1;

  int StratumOf(PredId p) const {
    auto it = stratum_of.find(p);
    return it == stratum_of.end() ? 0 : it->second;
  }
};

/// Computes strata, or fails when the program is not stratified (a
/// negative cycle) or a head/query/fact atom is negated.
Result<Stratification> Stratify(const Program& program);

}  // namespace exdl

#endif  // EXDL_ANALYSIS_STRATIFICATION_H_
