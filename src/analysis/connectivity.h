// Connected components of a rule body (Section 3.1).
//
// Two variables are connected when they occur in the same predicate
// occurrence; the relation is closed transitively. The head predicate also
// connects its variables — but only those in argument positions that are
// *not* existential ('d'). The body atoms then partition into components;
// the one containing the head's needed variables is the head component, and
// every other component is an existential subquery that can be replaced by
// a 0-ary boolean predicate (Lemma 3.1).

#ifndef EXDL_ANALYSIS_CONNECTIVITY_H_
#define EXDL_ANALYSIS_CONNECTIVITY_H_

#include <cstddef>
#include <vector>

#include "ast/rule.h"

namespace exdl {

inline constexpr size_t kNoHeadComponent = static_cast<size_t>(-1);

/// Partition of a rule's body atoms into connectivity components.
struct BodyComponents {
  /// Disjoint, exhaustive groups of body-atom indices. Groups preserve the
  /// body order of their smallest member.
  std::vector<std::vector<size_t>> components;
  /// Index into `components` of the group connected to the head's needed
  /// variables, or kNoHeadComponent if none (head ground, 0-ary, or all
  /// head arguments existential).
  size_t head_component = kNoHeadComponent;
};

/// Computes the Section 3.1 decomposition for `rule`. The head's needed
/// positions are those adorned 'n' (every position when unadorned).
BodyComponents ComputeBodyComponents(const Context& ctx, const Rule& rule);

}  // namespace exdl

#endif  // EXDL_ANALYSIS_CONNECTIVITY_H_
