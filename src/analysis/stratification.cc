#include "analysis/stratification.h"

#include <algorithm>

namespace exdl {

Result<Stratification> Stratify(const Program& program) {
  for (const Rule& r : program.rules()) {
    if (r.head.negated) {
      return Status::InvalidArgument("negated rule head");
    }
  }
  if (program.query() && program.query()->negated) {
    return Status::InvalidArgument("negated query");
  }

  std::unordered_set<PredId> idb = program.IdbPredicates();
  Stratification result;
  for (PredId p : idb) result.stratum_of[p] = 0;

  // Bellman-Ford-style relaxation:
  //   stratum(head) >= stratum(positive derived body literal)
  //   stratum(head) >= stratum(negated derived body literal) + 1
  // A program with n derived predicates needs strata < n; more iterations
  // mean a negative cycle.
  size_t n = idb.size();
  for (size_t iteration = 0; iteration <= n + 1; ++iteration) {
    bool changed = false;
    for (const Rule& r : program.rules()) {
      int& head_stratum = result.stratum_of[r.head.pred];
      for (const Atom& lit : r.body) {
        if (idb.count(lit.pred) == 0) continue;
        int required = result.stratum_of[lit.pred] + (lit.negated ? 1 : 0);
        if (head_stratum < required) {
          head_stratum = required;
          changed = true;
        }
      }
    }
    if (!changed) {
      int max_stratum = 0;
      for (const auto& [pred, s] : result.stratum_of) {
        max_stratum = std::max(max_stratum, s);
      }
      result.num_strata = max_stratum + 1;
      return result;
    }
  }
  return Status::FailedPrecondition(
      "program is not stratified: a predicate depends on itself through "
      "negation");
}

}  // namespace exdl
