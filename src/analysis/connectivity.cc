#include "analysis/connectivity.h"

#include <algorithm>
#include <unordered_map>

namespace exdl {
namespace {

/// Minimal union-find over dense variable indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// True if stored argument position `i` of `atom` is a needed ('n')
/// position. All positions of unadorned or projected predicates are
/// needed (a projected predicate stores only its 'n' arguments).
bool StoredArgNeeded(const Context& ctx, const Atom& atom, size_t i) {
  const PredicateInfo& info = ctx.predicate(atom.pred);
  if (info.adornment.empty() || info.IsProjected()) return true;
  return info.adornment.needed(i);
}

}  // namespace

BodyComponents ComputeBodyComponents(const Context& ctx, const Rule& rule) {
  // Dense-number the rule's variables.
  std::unordered_map<SymbolId, size_t> var_index;
  auto var_id = [&](SymbolId v) {
    auto [it, inserted] = var_index.emplace(v, var_index.size());
    return it->second;
  };
  std::vector<std::vector<size_t>> atom_vars(rule.body.size());
  for (size_t i = 0; i < rule.body.size(); ++i) {
    for (const Term& t : rule.body[i].args) {
      if (t.IsVar()) atom_vars[i].push_back(var_id(t.id()));
    }
  }
  std::vector<size_t> head_needed_vars;
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    const Term& t = rule.head.args[i];
    if (t.IsVar() && StoredArgNeeded(ctx, rule.head, i)) {
      head_needed_vars.push_back(var_id(t.id()));
    }
  }

  UnionFind uf(var_index.size());
  for (const std::vector<size_t>& vars : atom_vars) {
    for (size_t i = 1; i < vars.size(); ++i) uf.Union(vars[0], vars[i]);
  }
  // The head predicate connects its needed variables to each other.
  for (size_t i = 1; i < head_needed_vars.size(); ++i) {
    uf.Union(head_needed_vars[0], head_needed_vars[i]);
  }

  BodyComponents result;
  // Group body atoms by the root of any of their variables; variable-free
  // atoms are singleton components.
  std::unordered_map<size_t, size_t> root_to_component;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (atom_vars[i].empty()) {
      result.components.push_back({i});
      continue;
    }
    size_t root = uf.Find(atom_vars[i][0]);
    auto [it, inserted] =
        root_to_component.emplace(root, result.components.size());
    if (inserted) {
      result.components.push_back({i});
    } else {
      result.components[it->second].push_back(i);
    }
  }

  if (!head_needed_vars.empty()) {
    size_t head_root = uf.Find(head_needed_vars[0]);
    auto it = root_to_component.find(head_root);
    if (it != root_to_component.end()) result.head_component = it->second;
  }
  return result;
}

}  // namespace exdl
