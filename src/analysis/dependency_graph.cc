#include "analysis/dependency_graph.h"

#include <algorithm>
#include <cassert>

namespace exdl {

DependencyGraph::DependencyGraph(const Program& program) {
  std::unordered_set<PredId> seen_nodes;
  auto add_node = [&](PredId p) {
    if (seen_nodes.insert(p).second) {
      nodes_.push_back(p);
      edges_[p];  // ensure adjacency entry exists
    }
  };
  for (const Rule& r : program.rules()) {
    add_node(r.head.pred);
    for (const Atom& a : r.body) {
      add_node(a.pred);
      std::vector<PredId>& adj = edges_[r.head.pred];
      if (std::find(adj.begin(), adj.end(), a.pred) == adj.end()) {
        adj.push_back(a.pred);
      }
      if (a.pred == r.head.pred) self_loop_.insert(a.pred);
    }
  }
  if (program.query()) add_node(program.query()->pred);

  for (PredId v : nodes_) {
    if (index_.find(v) == index_.end()) Tarjan(v);
  }
}

void DependencyGraph::Tarjan(PredId v) {
  // Iterative Tarjan to be safe on long dependency chains.
  struct Frame {
    PredId node;
    size_t edge_pos;
  };
  std::vector<Frame> call_stack;
  call_stack.push_back({v, 0});
  index_[v] = lowlink_[v] = next_index_++;
  stack_.push_back(v);
  on_stack_.insert(v);

  while (!call_stack.empty()) {
    Frame& frame = call_stack.back();
    const std::vector<PredId>& adj = edges_[frame.node];
    if (frame.edge_pos < adj.size()) {
      PredId w = adj[frame.edge_pos++];
      if (index_.find(w) == index_.end()) {
        index_[w] = lowlink_[w] = next_index_++;
        stack_.push_back(w);
        on_stack_.insert(w);
        call_stack.push_back({w, 0});
      } else if (on_stack_.count(w) > 0) {
        lowlink_[frame.node] = std::min(lowlink_[frame.node], index_[w]);
      }
      continue;
    }
    // Node finished.
    PredId node = frame.node;
    call_stack.pop_back();
    if (!call_stack.empty()) {
      PredId parent = call_stack.back().node;
      lowlink_[parent] = std::min(lowlink_[parent], lowlink_[node]);
    }
    if (lowlink_[node] == index_[node]) {
      std::vector<PredId> component;
      for (;;) {
        PredId w = stack_.back();
        stack_.pop_back();
        on_stack_.erase(w);
        component.push_back(w);
        component_of_[w] = static_cast<int>(components_.size());
        if (w == node) break;
      }
      components_.push_back(std::move(component));
    }
  }
}

const std::vector<PredId>& DependencyGraph::DependsOn(PredId p) const {
  auto it = edges_.find(p);
  return it == edges_.end() ? empty_ : it->second;
}

int DependencyGraph::ComponentOf(PredId p) const {
  auto it = component_of_.find(p);
  assert(it != component_of_.end() && "predicate not in dependency graph");
  return it->second;
}

const std::vector<PredId>& DependencyGraph::Component(int c) const {
  return components_[static_cast<size_t>(c)];
}

bool DependencyGraph::IsRecursive(PredId p) const {
  auto it = component_of_.find(p);
  if (it == component_of_.end()) return false;
  if (components_[static_cast<size_t>(it->second)].size() > 1) return true;
  return self_loop_.count(p) > 0;
}

bool DependencyGraph::HasRecursion() const {
  for (PredId p : nodes_) {
    if (IsRecursive(p)) return true;
  }
  return false;
}

}  // namespace exdl
