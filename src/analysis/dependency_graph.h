// Predicate dependency graph and strongly connected components.
//
// There is an edge p -> q when some rule with head predicate p has q in its
// body. SCCs (Tarjan) identify recursive predicates: a predicate is
// recursive if its SCC has more than one member or depends on itself.

#ifndef EXDL_ANALYSIS_DEPENDENCY_GRAPH_H_
#define EXDL_ANALYSIS_DEPENDENCY_GRAPH_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/program.h"

namespace exdl {

class DependencyGraph {
 public:
  explicit DependencyGraph(const Program& program);

  /// Body predicates of rules defining `p` (deduplicated).
  const std::vector<PredId>& DependsOn(PredId p) const;

  /// SCC index of `p`; SCCs are numbered in reverse topological order
  /// (an SCC's dependencies have smaller indices).
  int ComponentOf(PredId p) const;

  /// Members of SCC `c`.
  const std::vector<PredId>& Component(int c) const;
  size_t NumComponents() const { return components_.size(); }

  bool SameScc(PredId a, PredId b) const {
    return ComponentOf(a) == ComponentOf(b);
  }

  /// True if `p` participates in recursion (multi-member SCC or self-loop).
  bool IsRecursive(PredId p) const;

  /// True if the program has any recursive predicate.
  bool HasRecursion() const;

 private:
  void Tarjan(PredId v);

  std::unordered_map<PredId, std::vector<PredId>> edges_;
  std::vector<PredId> nodes_;
  std::unordered_map<PredId, int> component_of_;
  std::vector<std::vector<PredId>> components_;
  std::unordered_set<PredId> self_loop_;
  std::vector<PredId> empty_;

  // Tarjan state.
  std::unordered_map<PredId, int> index_;
  std::unordered_map<PredId, int> lowlink_;
  std::vector<PredId> stack_;
  std::unordered_set<PredId> on_stack_;
  int next_index_ = 0;
};

}  // namespace exdl

#endif  // EXDL_ANALYSIS_DEPENDENCY_GRAPH_H_
