// Reachability of predicates/rules from the query, and detection of
// undefined derived predicates. The deletion cascades of Examples 7 and 8
// ("we can then drop rule 1 since p.1 is not reachable from the query" /
// "since there is now no rule defining p1") are built from these sets.

#ifndef EXDL_ANALYSIS_REACHABILITY_H_
#define EXDL_ANALYSIS_REACHABILITY_H_

#include <unordered_set>
#include <vector>

#include "ast/program.h"

namespace exdl {

/// Predicates reachable from `roots` by following head -> body edges.
std::unordered_set<PredId> ReachablePredicates(
    const Program& program, const std::vector<PredId>& roots);

/// Predicates reachable from the program's query (empty set if no query).
std::unordered_set<PredId> ReachableFromQuery(const Program& program);

/// Rule indices whose body mentions a derived predicate with no defining
/// rule (such rules can never fire: the predicate's extension is empty for
/// every *standard* input; under uniform semantics callers must instead
/// treat such predicates as EDB — see transform/cleanup).
std::vector<size_t> RulesWithUndefinedIdb(
    const Program& program, const std::unordered_set<PredId>& edb_predicates);

}  // namespace exdl

#endif  // EXDL_ANALYSIS_REACHABILITY_H_
