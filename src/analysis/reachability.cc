#include "analysis/reachability.h"

namespace exdl {

std::unordered_set<PredId> ReachablePredicates(
    const Program& program, const std::vector<PredId>& roots) {
  std::unordered_set<PredId> reachable(roots.begin(), roots.end());
  std::vector<PredId> frontier(roots.begin(), roots.end());
  while (!frontier.empty()) {
    PredId p = frontier.back();
    frontier.pop_back();
    for (const Rule& r : program.rules()) {
      if (r.head.pred != p) continue;
      for (const Atom& a : r.body) {
        if (reachable.insert(a.pred).second) frontier.push_back(a.pred);
      }
    }
  }
  return reachable;
}

std::unordered_set<PredId> ReachableFromQuery(const Program& program) {
  if (!program.query()) return {};
  return ReachablePredicates(program, {program.query()->pred});
}

std::vector<size_t> RulesWithUndefinedIdb(
    const Program& program,
    const std::unordered_set<PredId>& edb_predicates) {
  std::unordered_set<PredId> defined = program.IdbPredicates();
  std::vector<size_t> out;
  for (size_t i = 0; i < program.rules().size(); ++i) {
    for (const Atom& a : program.rules()[i].body) {
      if (defined.count(a.pred) == 0 && edb_predicates.count(a.pred) == 0) {
        out.push_back(i);
        break;
      }
    }
  }
  return out;
}

}  // namespace exdl
