#include "obs/metrics.h"

#include <algorithm>

namespace exdl::obs {

namespace {

/// Dedup key: kind byte + name + sorted labels, NUL-separated (predicate
/// and metric names never contain NUL).
std::string RegistrationKey(MetricKind kind, const std::string& name,
                            const LabelSet& labels) {
  std::string key;
  key.push_back(static_cast<char>(kind));
  key += name;
  for (const auto& [k, v] : labels) {
    key.push_back('\0');
    key += k;
    key.push_back('\0');
    key += v;
  }
  return key;
}

}  // namespace

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

void MetricsShard::Add(MetricId id, uint64_t delta) {
  assert(registry_ != nullptr);
  const MetricDef& def = registry_->def(id);
  assert(def.kind == MetricKind::kCounter);
  counters_[def.cell] += delta;
}

void MetricsShard::Set(MetricId id, double value) {
  assert(registry_ != nullptr);
  const MetricDef& def = registry_->def(id);
  assert(def.kind == MetricKind::kGauge);
  gauges_[def.cell] = value;
  gauge_set_[def.cell] = 1;
}

void MetricsShard::Observe(MetricId id, double value) {
  assert(registry_ != nullptr);
  const MetricDef& def = registry_->def(id);
  assert(def.kind == MetricKind::kHistogram);
  // First bucket whose upper bound admits the value; +inf bucket otherwise.
  size_t bucket = def.bounds.size();
  for (size_t i = 0; i < def.bounds.size(); ++i) {
    if (value <= def.bounds[i]) {
      bucket = i;
      break;
    }
  }
  hist_counts_[hist_base_[def.cell] + bucket] += 1;
  hist_sum_[def.cell] += value;
  hist_count_[def.cell] += 1;
}

void MetricsShard::Reset() {
  std::fill(counters_.begin(), counters_.end(), 0);
  std::fill(gauges_.begin(), gauges_.end(), 0.0);
  std::fill(gauge_set_.begin(), gauge_set_.end(), 0);
  std::fill(hist_counts_.begin(), hist_counts_.end(), 0);
  std::fill(hist_sum_.begin(), hist_sum_.end(), 0.0);
  std::fill(hist_count_.begin(), hist_count_.end(), 0);
}

MetricId MetricsRegistry::Counter(std::string name, LabelSet labels) {
  return Register(MetricKind::kCounter, std::move(name), std::move(labels),
                  {});
}

MetricId MetricsRegistry::Gauge(std::string name, LabelSet labels) {
  return Register(MetricKind::kGauge, std::move(name), std::move(labels), {});
}

MetricId MetricsRegistry::Histogram(std::string name,
                                    std::vector<double> bounds,
                                    LabelSet labels) {
  assert(std::is_sorted(bounds.begin(), bounds.end()));
  return Register(MetricKind::kHistogram, std::move(name), std::move(labels),
                  std::move(bounds));
}

MetricId MetricsRegistry::Register(MetricKind kind, std::string name,
                                   LabelSet labels,
                                   std::vector<double> bounds) {
  std::sort(labels.begin(), labels.end());
  std::string key = RegistrationKey(kind, name, labels);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return it->second;

  MetricDef def;
  def.name = std::move(name);
  def.kind = kind;
  def.labels = std::move(labels);
  def.bounds = std::move(bounds);
  switch (kind) {
    case MetricKind::kCounter:
      def.cell = num_counters_++;
      break;
    case MetricKind::kGauge:
      def.cell = num_gauges_++;
      break;
    case MetricKind::kHistogram:
      def.cell = num_hists_++;
      break;
  }
  const MetricId id = static_cast<MetricId>(defs_.size());
  if (kind == MetricKind::kHistogram) {
    hist_cells_ += defs_.emplace_back(std::move(def)).bounds.size() + 1;
  } else {
    defs_.push_back(std::move(def));
  }
  by_key_.emplace(std::move(key), id);
  InitShard(&total_);
  return id;
}

void MetricsRegistry::InitShard(MetricsShard* shard) const {
  shard->registry_ = this;
  shard->counters_.resize(num_counters_, 0);
  shard->gauges_.resize(num_gauges_, 0.0);
  shard->gauge_set_.resize(num_gauges_, 0);
  shard->hist_counts_.resize(hist_cells_, 0);
  shard->hist_sum_.resize(num_hists_, 0.0);
  shard->hist_count_.resize(num_hists_, 0);
  if (shard->hist_base_.size() < num_hists_) {
    shard->hist_base_.clear();
    size_t base = 0;
    for (const MetricDef& def : defs_) {
      if (def.kind != MetricKind::kHistogram) continue;
      if (shard->hist_base_.size() <= def.cell) {
        shard->hist_base_.resize(def.cell + 1, 0);
      }
      shard->hist_base_[def.cell] = base;
      base += def.bounds.size() + 1;
    }
  }
}

MetricsShard MetricsRegistry::NewShard() const {
  MetricsShard shard;
  InitShard(&shard);
  return shard;
}

void MetricsRegistry::Merge(MetricsShard& shard) {
  assert(shard.registry_ == this);
  assert(shard.counters_.size() == num_counters_);
  for (size_t i = 0; i < shard.counters_.size(); ++i) {
    total_.counters_[i] += shard.counters_[i];
  }
  for (size_t i = 0; i < shard.gauges_.size(); ++i) {
    if (shard.gauge_set_[i]) {
      total_.gauges_[i] = shard.gauges_[i];
      total_.gauge_set_[i] = 1;
    }
  }
  for (size_t i = 0; i < shard.hist_counts_.size(); ++i) {
    total_.hist_counts_[i] += shard.hist_counts_[i];
  }
  for (size_t i = 0; i < shard.hist_sum_.size(); ++i) {
    total_.hist_sum_[i] += shard.hist_sum_[i];
    total_.hist_count_[i] += shard.hist_count_[i];
  }
  shard.Reset();
}

uint64_t MetricsRegistry::CounterValue(MetricId id) const {
  const MetricDef& d = defs_[id];
  assert(d.kind == MetricKind::kCounter);
  return total_.counters_[d.cell];
}

double MetricsRegistry::GaugeValue(MetricId id) const {
  const MetricDef& d = defs_[id];
  assert(d.kind == MetricKind::kGauge);
  return total_.gauges_[d.cell];
}

std::vector<uint64_t> MetricsRegistry::HistogramCounts(MetricId id) const {
  const MetricDef& d = defs_[id];
  assert(d.kind == MetricKind::kHistogram);
  const size_t base = total_.hist_base_[d.cell];
  return std::vector<uint64_t>(
      total_.hist_counts_.begin() + base,
      total_.hist_counts_.begin() + base + d.bounds.size() + 1);
}

std::vector<MetricRow> MetricsRegistry::Snapshot() const {
  std::vector<MetricRow> rows;
  rows.reserve(defs_.size());
  for (MetricId id = 0; id < defs_.size(); ++id) {
    const MetricDef& d = defs_[id];
    MetricRow row;
    row.id = id;
    row.name = d.name;
    row.kind = d.kind;
    row.labels = d.labels;
    switch (d.kind) {
      case MetricKind::kCounter:
        row.counter = total_.counters_[d.cell];
        break;
      case MetricKind::kGauge:
        row.gauge = total_.gauges_[d.cell];
        row.gauge_set = total_.gauge_set_[d.cell] != 0;
        break;
      case MetricKind::kHistogram:
        row.bounds = d.bounds;
        row.bucket_counts = HistogramCounts(id);
        row.sum = total_.hist_sum_[d.cell];
        row.count = total_.hist_count_[d.cell];
        break;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace exdl::obs
