#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace exdl::obs {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) *out_ += ',';
    has_element_.back() = 1;
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  *out_ += '{';
  has_element_.push_back(0);
}

void JsonWriter::EndObject() {
  has_element_.pop_back();
  *out_ += '}';
}

void JsonWriter::BeginArray() {
  MaybeComma();
  *out_ += '[';
  has_element_.push_back(0);
}

void JsonWriter::EndArray() {
  has_element_.pop_back();
  *out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  String(key);
  *out_ += ':';
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  MaybeComma();
  *out_ += '"';
  for (char c : value) {
    switch (c) {
      case '"': *out_ += "\\\""; break;
      case '\\': *out_ += "\\\\"; break;
      case '\n': *out_ += "\\n"; break;
      case '\r': *out_ += "\\r"; break;
      case '\t': *out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out_ += buf;
        } else {
          *out_ += c;
        }
    }
  }
  *out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  MaybeComma();
  *out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  MaybeComma();
  *out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    *out_ += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Prefer the shortest representation that round-trips.
  for (int precision = 6; precision < 17; ++precision) {
    char probe[40];
    std::snprintf(probe, sizeof(probe), "%.*g", precision, value);
    double parsed = 0;
    std::sscanf(probe, "%lf", &parsed);
    if (parsed == value) {
      *out_ += probe;
      return;
    }
  }
  *out_ += buf;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  *out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  *out_ += "null";
}

}  // namespace exdl::obs
