// Hierarchical trace spans with monotonic-clock timings.
//
// Spans nest lexically: Begin() opens a child of the innermost open span
// (or a root when none is open) and End() closes it. Span paths follow the
// naming convention of DESIGN.md §10, e.g.
//
//   optimize > phase:projection
//   eval > round:17 > rule:3
//
// A Trace is single-threaded by contract: the evaluator's worker pool
// records metrics through per-thread MetricsShards, while spans are only
// opened and closed by the owning (main) thread at variant/round
// boundaries. The span count is capped (kDefaultMaxSpans); spans beyond
// the cap are dropped and counted, never reallocated mid-run.

#ifndef EXDL_OBS_TRACE_H_
#define EXDL_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace exdl::obs {

using SpanId = uint32_t;

/// Returned by Begin() when the span cap is reached; End/SetAttr on it are
/// no-ops.
inline constexpr SpanId kDroppedSpan = static_cast<SpanId>(-1);

struct TraceSpan {
  SpanId id = 0;
  /// Parent span id, or -1 for a root span.
  int64_t parent = -1;
  std::string name;
  /// Seconds since the Trace was constructed (monotonic clock).
  double start_seconds = 0;
  /// Filled by End(); -1 while the span is open.
  double duration_seconds = -1;
  /// Small numeric annotations (rule deltas, tuple growth, ...).
  std::vector<std::pair<std::string, double>> attrs;
};

class Trace {
 public:
  static constexpr size_t kDefaultMaxSpans = 1 << 16;

  explicit Trace(size_t max_spans = kDefaultMaxSpans);

  /// Opens a span as a child of the innermost open span.
  SpanId Begin(std::string name);
  /// Closes `id` (must be the innermost open span; enforced by popping the
  /// open stack down to it, closing anything left open inside).
  void End(SpanId id);
  /// Records a zero-duration child span (point event, e.g. a budget trip).
  SpanId Event(std::string name);
  void SetAttr(SpanId id, std::string key, double value);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  /// "a > b > c" path of a span, per the §10 naming convention.
  std::string PathOf(SpanId id) const;
  size_t dropped() const { return dropped_; }
  /// Seconds since construction (the spans' common epoch).
  double NowSeconds() const;

  /// RAII span: Begin on construction, End on destruction.
  class Scope {
   public:
    Scope(Trace* trace, std::string name)
        : trace_(trace), id_(trace->Begin(std::move(name))) {}
    ~Scope() { trace_->End(id_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    SpanId id() const { return id_; }

   private:
    Trace* trace_;
    SpanId id_;
  };

 private:
  using Clock = std::chrono::steady_clock;

  size_t max_spans_;
  Clock::time_point epoch_;
  std::vector<TraceSpan> spans_;
  /// Open spans, outermost first. Dropped opens push kDroppedSpan so the
  /// stack stays balanced.
  std::vector<SpanId> open_;
  size_t dropped_ = 0;
};

/// Renders the span forest as an indented tree with millisecond durations
/// and attrs (the CLI's --trace output).
std::string RenderTrace(const Trace& trace);

}  // namespace exdl::obs

#endif  // EXDL_OBS_TRACE_H_
