// Minimal streaming JSON writer: correct string escaping, automatic
// commas, locale-independent number formatting. Just enough for the
// telemetry export (DESIGN.md §10) — no DOM, no parsing.

#ifndef EXDL_OBS_JSON_WRITER_H_
#define EXDL_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace exdl::obs {

class JsonWriter {
 public:
  /// Appends to `*out`; the caller owns the buffer.
  explicit JsonWriter(std::string* out) : out_(out) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Object key; must be followed by exactly one value (or container).
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  /// Shortest round-trippable decimal; NaN/Inf are emitted as null (JSON
  /// has no representation for them).
  void Double(double value);
  void Bool(bool value);
  void Null();

 private:
  void MaybeComma();

  std::string* out_;
  /// Per-nesting-level "already has an element" flags.
  std::vector<char> has_element_;
  bool pending_key_ = false;
};

}  // namespace exdl::obs

#endif  // EXDL_OBS_JSON_WRITER_H_
