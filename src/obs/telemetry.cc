#include "obs/telemetry.h"

namespace exdl::obs {

void Telemetry::WriteMetricsJson(JsonWriter& w) const {
  w.BeginArray();
  for (const MetricRow& row : metrics_.Snapshot()) {
    w.BeginObject();
    w.Key("name");
    w.String(row.name);
    w.Key("kind");
    w.String(MetricKindName(row.kind));
    if (!row.labels.empty()) {
      w.Key("labels");
      w.BeginObject();
      for (const auto& [k, v] : row.labels) {
        w.Key(k);
        w.String(v);
      }
      w.EndObject();
    }
    switch (row.kind) {
      case MetricKind::kCounter:
        w.Key("value");
        w.UInt(row.counter);
        break;
      case MetricKind::kGauge:
        w.Key("value");
        w.Double(row.gauge);
        break;
      case MetricKind::kHistogram:
        w.Key("bounds");
        w.BeginArray();
        for (double b : row.bounds) w.Double(b);
        w.EndArray();
        w.Key("counts");
        w.BeginArray();
        for (uint64_t c : row.bucket_counts) w.UInt(c);
        w.EndArray();
        w.Key("sum");
        w.Double(row.sum);
        w.Key("count");
        w.UInt(row.count);
        break;
    }
    w.EndObject();
  }
  w.EndArray();
}

void Telemetry::WriteSpansJson(JsonWriter& w) const {
  w.BeginArray();
  for (const TraceSpan& span : trace_.spans()) {
    w.BeginObject();
    w.Key("id");
    w.UInt(span.id);
    w.Key("parent");
    w.Int(span.parent);
    w.Key("name");
    w.String(span.name);
    w.Key("path");
    w.String(trace_.PathOf(span.id));
    w.Key("start_ms");
    w.Double(span.start_seconds * 1e3);
    w.Key("duration_ms");
    w.Double((span.duration_seconds < 0 ? 0 : span.duration_seconds) * 1e3);
    if (!span.attrs.empty()) {
      w.Key("attrs");
      w.BeginObject();
      for (const auto& [k, v] : span.attrs) {
        w.Key(k);
        w.Double(v);
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
}

}  // namespace exdl::obs
