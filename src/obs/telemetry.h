// Telemetry: the observability sink threaded through the engine.
//
// One Telemetry object owns a MetricsRegistry and a Trace for one session
// (parse -> optimize -> run). Components receive it as a nullable pointer:
// a null sink means every instrumentation site is a never-taken branch, so
// untraced runs do no observability work and produce byte-identical
// results (tested by obs_test.cc).
//
// Export: WriteMetricsJson/WriteSpansJson emit the "metrics" and "spans"
// arrays of the stable schema documented in DESIGN.md §10 and validated by
// tools/check_metrics_schema.py.

#ifndef EXDL_OBS_TELEMETRY_H_
#define EXDL_OBS_TELEMETRY_H_

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace exdl::obs {

class Telemetry {
 public:
  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

  /// Emits the "metrics" rows (an array; caller positions the writer).
  void WriteMetricsJson(JsonWriter& w) const;
  /// Emits the "spans" rows.
  void WriteSpansJson(JsonWriter& w) const;

 private:
  MetricsRegistry metrics_;
  Trace trace_;
};

}  // namespace exdl::obs

#endif  // EXDL_OBS_TELEMETRY_H_
