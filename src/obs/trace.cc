#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace exdl::obs {

Trace::Trace(size_t max_spans)
    : max_spans_(max_spans), epoch_(Clock::now()) {}

double Trace::NowSeconds() const {
  return std::chrono::duration<double>(Clock::now() - epoch_).count();
}

SpanId Trace::Begin(std::string name) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    open_.push_back(kDroppedSpan);
    return kDroppedSpan;
  }
  TraceSpan span;
  span.id = static_cast<SpanId>(spans_.size());
  // The innermost open *recorded* span is the parent; dropped opens are
  // transparent so their children still attach to a real ancestor.
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (*it != kDroppedSpan) {
      span.parent = static_cast<int64_t>(*it);
      break;
    }
  }
  span.name = std::move(name);
  span.start_seconds = NowSeconds();
  open_.push_back(span.id);
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Trace::End(SpanId id) {
  if (id == kDroppedSpan) {
    // Pop the matching dropped marker (innermost first).
    auto it = std::find(open_.rbegin(), open_.rend(), kDroppedSpan);
    if (it != open_.rend()) open_.erase(std::next(it).base());
    return;
  }
  const double now = NowSeconds();
  // Pop down to `id`, closing anything left open inside it.
  while (!open_.empty()) {
    SpanId top = open_.back();
    open_.pop_back();
    if (top == kDroppedSpan) continue;
    if (spans_[top].duration_seconds < 0) {
      spans_[top].duration_seconds = now - spans_[top].start_seconds;
    }
    if (top == id) break;
  }
}

SpanId Trace::Event(std::string name) {
  SpanId id = Begin(std::move(name));
  End(id);
  return id;
}

void Trace::SetAttr(SpanId id, std::string key, double value) {
  if (id == kDroppedSpan || id >= spans_.size()) return;
  spans_[id].attrs.emplace_back(std::move(key), value);
}

std::string Trace::PathOf(SpanId id) const {
  if (id >= spans_.size()) return "";
  std::vector<const std::string*> parts;
  int64_t cur = static_cast<int64_t>(id);
  while (cur >= 0) {
    parts.push_back(&spans_[static_cast<size_t>(cur)].name);
    cur = spans_[static_cast<size_t>(cur)].parent;
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) out += " > ";
    out += **it;
  }
  return out;
}

namespace {

void RenderSpan(const Trace& trace,
                const std::vector<std::vector<SpanId>>& children, SpanId id,
                int depth, std::string* out) {
  const TraceSpan& span = trace.spans()[id];
  for (int i = 0; i < depth; ++i) *out += "  ";
  *out += span.name;
  char buf[48];
  const double ms =
      (span.duration_seconds < 0 ? 0 : span.duration_seconds) * 1e3;
  std::snprintf(buf, sizeof(buf), "  %.3f ms", ms);
  *out += buf;
  for (const auto& [key, value] : span.attrs) {
    std::snprintf(buf, sizeof(buf), " %s=%.6g", key.c_str(), value);
    *out += buf;
  }
  *out += "\n";
  for (SpanId child : children[id]) {
    RenderSpan(trace, children, child, depth + 1, out);
  }
}

}  // namespace

std::string RenderTrace(const Trace& trace) {
  const std::vector<TraceSpan>& spans = trace.spans();
  std::vector<std::vector<SpanId>> children(spans.size());
  std::vector<SpanId> roots;
  for (const TraceSpan& span : spans) {
    if (span.parent < 0) {
      roots.push_back(span.id);
    } else {
      children[static_cast<size_t>(span.parent)].push_back(span.id);
    }
  }
  std::string out;
  for (SpanId root : roots) RenderSpan(trace, children, root, 0, &out);
  if (trace.dropped() > 0) {
    out += "(" + std::to_string(trace.dropped()) +
           " span(s) dropped at the " + std::to_string(spans.size()) +
           "-span cap)\n";
  }
  return out;
}

}  // namespace exdl::obs
