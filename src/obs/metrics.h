// Lightweight metrics registry: counters, gauges, and histograms with
// fixed bucket boundaries.
//
// Threading model (see DESIGN.md §10): the hot path never takes a lock.
// Each worker increments its own MetricsShard — a plain array of cells —
// and an owner (the evaluator's main thread) folds shards into the
// registry's totals at quiescent points (round boundaries). Registration,
// merging, and snapshotting are single-threaded by contract; only
// *different shards on different threads* may be touched concurrently.
//
// Registration is idempotent: re-registering the same (kind, name, labels)
// returns the existing id, so instrumented components can re-register on
// every run against a long-lived registry.

#ifndef EXDL_OBS_METRICS_H_
#define EXDL_OBS_METRICS_H_

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace exdl::obs {

using MetricId = uint32_t;

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

/// Short stable name ("counter", "gauge", "histogram").
std::string_view MetricKindName(MetricKind kind);

/// Label set: sorted key/value pairs (sorted so registration dedup and
/// JSON output are order-independent).
using LabelSet = std::vector<std::pair<std::string, std::string>>;

struct MetricDef {
  std::string name;
  MetricKind kind;
  LabelSet labels;
  /// Histogram upper bucket bounds (ascending); an implicit +inf bucket
  /// follows the last bound, so a histogram has bounds.size()+1 buckets.
  std::vector<double> bounds;
  /// Offset into the per-kind cell storage of a shard: counter index,
  /// gauge index, or (for histograms) the histogram's ordinal.
  size_t cell = 0;
};

class MetricsRegistry;

/// One participant's private cell array. No locks, no atomics: a shard
/// must only ever be written by one thread at a time, and merged by the
/// registry owner while its writer is quiescent.
class MetricsShard {
 public:
  MetricsShard() = default;

  void Add(MetricId id, uint64_t delta);
  void Set(MetricId id, double value);
  void Observe(MetricId id, double value);

  /// Zeroes every cell (Merge does this implicitly).
  void Reset();

  bool attached() const { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;

  const MetricsRegistry* registry_ = nullptr;
  std::vector<uint64_t> counters_;
  std::vector<double> gauges_;
  std::vector<char> gauge_set_;
  std::vector<uint64_t> hist_counts_;  ///< Flattened per-bucket counts.
  std::vector<size_t> hist_base_;      ///< Per-histogram offset into counts.
  std::vector<double> hist_sum_;
  std::vector<uint64_t> hist_count_;
};

/// A fixed snapshot row of one metric's merged value (see Snapshot()).
struct MetricRow {
  MetricId id = 0;
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  LabelSet labels;
  uint64_t counter = 0;                ///< kCounter
  double gauge = 0;                    ///< kGauge
  bool gauge_set = false;
  std::vector<double> bounds;          ///< kHistogram
  std::vector<uint64_t> bucket_counts; ///< bounds.size() + 1 entries.
  double sum = 0;
  uint64_t count = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  MetricId Counter(std::string name, LabelSet labels = {});
  MetricId Gauge(std::string name, LabelSet labels = {});
  MetricId Histogram(std::string name, std::vector<double> bounds,
                     LabelSet labels = {});

  /// A shard sized for every metric registered so far. Register everything
  /// before creating shards: merging a stale shard is an error (asserted).
  MetricsShard NewShard() const;

  /// Folds `shard` into the registry totals and resets it. Owner-thread
  /// only; the shard's writer must be quiescent.
  void Merge(MetricsShard& shard);

  /// Direct owner-thread mutation of the totals (round-boundary gauges
  /// and one-off counters that never contend).
  void Add(MetricId id, uint64_t delta) { total_.Add(id, delta); }
  void Set(MetricId id, double value) { total_.Set(id, value); }
  void Observe(MetricId id, double value) { total_.Observe(id, value); }

  uint64_t CounterValue(MetricId id) const;
  double GaugeValue(MetricId id) const;
  /// Per-bucket counts of a histogram (bounds.size()+1 entries).
  std::vector<uint64_t> HistogramCounts(MetricId id) const;

  const MetricDef& def(MetricId id) const { return defs_[id]; }
  size_t size() const { return defs_.size(); }

  /// Merged values of every metric, in registration order.
  std::vector<MetricRow> Snapshot() const;

 private:
  MetricId Register(MetricKind kind, std::string name, LabelSet labels,
                    std::vector<double> bounds);
  void InitShard(MetricsShard* shard) const;

  std::vector<MetricDef> defs_;
  /// (kind, name, labels) -> id, for idempotent registration.
  std::map<std::string, MetricId> by_key_;
  size_t num_counters_ = 0;
  size_t num_gauges_ = 0;
  size_t num_hists_ = 0;
  size_t hist_cells_ = 0;
  MetricsShard total_;
};

}  // namespace exdl::obs

#endif  // EXDL_OBS_METRICS_H_
