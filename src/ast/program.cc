#include "ast/program.h"

namespace exdl {

std::unordered_set<PredId> Program::IdbPredicates() const {
  std::unordered_set<PredId> out;
  for (const Rule& r : rules_) out.insert(r.head.pred);
  return out;
}

std::unordered_set<PredId> Program::EdbPredicates() const {
  std::unordered_set<PredId> idb = IdbPredicates();
  std::unordered_set<PredId> out;
  for (const Rule& r : rules_) {
    for (const Atom& a : r.body) {
      if (idb.find(a.pred) == idb.end()) out.insert(a.pred);
    }
  }
  if (query_ && idb.find(query_->pred) == idb.end()) out.insert(query_->pred);
  return out;
}

std::unordered_set<PredId> Program::AllPredicates() const {
  std::unordered_set<PredId> out;
  for (const Rule& r : rules_) {
    out.insert(r.head.pred);
    for (const Atom& a : r.body) out.insert(a.pred);
  }
  if (query_) out.insert(query_->pred);
  return out;
}

bool Program::HasNegation() const {
  for (const Rule& r : rules_) {
    for (const Atom& a : r.body) {
      if (a.negated) return true;
    }
  }
  return false;
}

bool Program::IsIdb(PredId p) const {
  for (const Rule& r : rules_) {
    if (r.head.pred == p) return true;
  }
  return false;
}

std::vector<size_t> Program::RulesDefining(PredId p) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].head.pred == p) out.push_back(i);
  }
  return out;
}

Program Program::Clone() const {
  Program copy(context_);
  copy.rules_ = rules_;
  copy.query_ = query_;
  return copy;
}

}  // namespace exdl
