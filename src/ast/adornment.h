// Adornments: per-argument annotation strings attached to predicate versions.
//
// The paper uses two adornment alphabets:
//   * `n` (needed) / `d` (don't-care, existential) for the existential
//     analysis of Section 2, and
//   * `b` (bound) / `f` (free) for the magic-set rewriting that the paper
//     notes is orthogonal (Section 1 / 6).
// An adorned predicate such as `a^nd` is a distinct predicate version from
// the base predicate `a`; see Context.
//
// After projection pushing (Lemma 3.2) the adornment string can be longer
// than the predicate's stored arity: positions adorned `d` no longer store
// an argument. `NeededPositions()` gives the correspondence.

#ifndef EXDL_AST_ADORNMENT_H_
#define EXDL_AST_ADORNMENT_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace exdl {

/// An adornment string over {n,d} or {b,f}. Empty means "unadorned".
class Adornment {
 public:
  static constexpr char kNeeded = 'n';
  static constexpr char kExistential = 'd';
  static constexpr char kBound = 'b';
  static constexpr char kFree = 'f';

  /// Unadorned.
  Adornment() = default;

  /// Validates that `s` is uniformly over {n,d} or over {b,f}.
  static Result<Adornment> Parse(std::string_view s);

  /// All-`n` adornment of length `arity`.
  static Adornment AllNeeded(size_t arity);
  /// All-`f` adornment of length `arity`.
  static Adornment AllFree(size_t arity);

  bool empty() const { return chars_.empty(); }
  size_t size() const { return chars_.size(); }
  char at(size_t i) const { return chars_[i]; }
  void set(size_t i, char c) { chars_[i] = c; }
  void push_back(char c) { chars_.push_back(c); }

  bool needed(size_t i) const { return chars_[i] == kNeeded; }
  bool existential(size_t i) const { return chars_[i] == kExistential; }
  bool bound(size_t i) const { return chars_[i] == kBound; }
  bool free(size_t i) const { return chars_[i] == kFree; }

  /// Number of `n` (resp. `b`) positions.
  size_t CountNeeded() const;
  size_t CountBound() const;
  /// True if every position is `n`.
  bool AllPositionsNeeded() const;
  /// True if some position is `d`.
  bool HasExistential() const;

  /// Indices of the positions adorned `n` (in order). This is the
  /// correspondence between a projected predicate's stored arguments and
  /// its (longer) adornment string (Lemma 3.2).
  std::vector<size_t> NeededPositions() const;

  const std::string& str() const { return chars_; }

  friend bool operator==(const Adornment& a, const Adornment& b) {
    return a.chars_ == b.chars_;
  }
  friend bool operator!=(const Adornment& a, const Adornment& b) {
    return !(a == b);
  }
  friend bool operator<(const Adornment& a, const Adornment& b) {
    return a.chars_ < b.chars_;
  }

 private:
  explicit Adornment(std::string chars) : chars_(std::move(chars)) {}

  std::string chars_;
};

/// `a1` covers `a` (Section 5): same length and every `n` in `a` is `n` in
/// `a1`. A tuple of the covering version is also a tuple of the covered one,
/// so a unit rule `p^a(t) :- p^a1(t1)` may always be added.
bool Covers(const Adornment& a1, const Adornment& a);

}  // namespace exdl

template <>
struct std::hash<exdl::Adornment> {
  size_t operator()(const exdl::Adornment& a) const {
    return std::hash<std::string>()(a.str());
  }
};

#endif  // EXDL_AST_ADORNMENT_H_
