#include "ast/context.h"

#include <cassert>
#include <mutex>

namespace exdl {

SymbolId Context::InternSymbolLocked(std::string_view name) {
  auto it = symbol_ids_.find(name);
  if (it != symbol_ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(symbols_.size());
  symbols_.emplace_back(name);
  // Key the map on a view into the deque-stored string: deque growth never
  // moves existing elements, so the view stays valid.
  symbol_ids_.emplace(std::string_view(symbols_.back()), id);
  return id;
}

SymbolId Context::InternSymbol(std::string_view name) {
  std::unique_lock lock(mu_);
  return InternSymbolLocked(name);
}

std::optional<SymbolId> Context::FindSymbol(std::string_view name) const {
  std::shared_lock lock(mu_);
  auto it = symbol_ids_.find(name);
  if (it == symbol_ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& Context::SymbolName(SymbolId id) const {
  std::shared_lock lock(mu_);
  assert(id < symbols_.size());
  return symbols_[id];
}

size_t Context::NumSymbols() const {
  std::shared_lock lock(mu_);
  return symbols_.size();
}

SymbolId Context::FreshSymbolLocked(std::string_view hint) {
  for (;;) {
    // '_' keeps generated names lexable so printed programs re-parse.
    std::string candidate =
        std::string(hint) + "_" + std::to_string(fresh_counter_++);
    if (symbol_ids_.find(candidate) == symbol_ids_.end()) {
      return InternSymbolLocked(candidate);
    }
  }
}

SymbolId Context::FreshSymbol(std::string_view hint) {
  std::unique_lock lock(mu_);
  return FreshSymbolLocked(hint);
}

PredId Context::InternPredicate(SymbolId name, uint32_t arity,
                                const Adornment& adornment) {
  std::unique_lock lock(mu_);
  PredKey key{name, arity, adornment.str()};
  auto it = pred_ids_.find(key);
  if (it != pred_ids_.end()) return it->second;
  PredId id = static_cast<PredId>(preds_.size());
  preds_.push_back(PredicateInfo{name, arity, adornment});
  pred_ids_.emplace(std::move(key), id);
  return id;
}

PredId Context::InternPredicate(std::string_view name, uint32_t arity,
                                const Adornment& adornment) {
  std::unique_lock lock(mu_);
  SymbolId symbol = InternSymbolLocked(name);
  PredKey key{symbol, arity, adornment.str()};
  auto it = pred_ids_.find(key);
  if (it != pred_ids_.end()) return it->second;
  PredId id = static_cast<PredId>(preds_.size());
  preds_.push_back(PredicateInfo{symbol, arity, adornment});
  pred_ids_.emplace(std::move(key), id);
  return id;
}

std::optional<PredId> Context::FindPredicate(SymbolId name, uint32_t arity,
                                             const Adornment& adornment) const {
  std::shared_lock lock(mu_);
  auto it = pred_ids_.find(PredKey{name, arity, adornment.str()});
  if (it == pred_ids_.end()) return std::nullopt;
  return it->second;
}

const PredicateInfo& Context::predicate(PredId id) const {
  std::shared_lock lock(mu_);
  assert(id < preds_.size());
  return preds_[id];
}

size_t Context::NumPredicates() const {
  std::shared_lock lock(mu_);
  return preds_.size();
}

std::string Context::PredicateDisplayName(PredId id) const {
  std::shared_lock lock(mu_);
  assert(id < preds_.size());
  const PredicateInfo& info = preds_[id];
  assert(info.name < symbols_.size());
  std::string out = symbols_[info.name];
  if (!info.adornment.empty()) {
    out += "@";
    out += info.adornment.str();
  }
  if (info.IsProjected()) {
    out += "/";
    out += std::to_string(info.arity);
  }
  return out;
}

PredId Context::FreshPredicate(std::string_view hint, uint32_t arity,
                               const Adornment& adornment) {
  std::unique_lock lock(mu_);
  SymbolId name = FreshSymbolLocked(hint);
  PredKey key{name, arity, adornment.str()};
  auto it = pred_ids_.find(key);
  if (it != pred_ids_.end()) return it->second;
  PredId id = static_cast<PredId>(preds_.size());
  preds_.push_back(PredicateInfo{name, arity, adornment});
  pred_ids_.emplace(std::move(key), id);
  return id;
}

}  // namespace exdl
