#include "ast/context.h"

#include <cassert>

namespace exdl {

SymbolId Context::InternSymbol(std::string_view name) {
  auto it = symbol_ids_.find(std::string(name));
  if (it != symbol_ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(symbols_.size());
  symbols_.emplace_back(name);
  symbol_ids_.emplace(symbols_.back(), id);
  return id;
}

std::optional<SymbolId> Context::FindSymbol(std::string_view name) const {
  auto it = symbol_ids_.find(std::string(name));
  if (it == symbol_ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& Context::SymbolName(SymbolId id) const {
  assert(id < symbols_.size());
  return symbols_[id];
}

SymbolId Context::FreshSymbol(std::string_view hint) {
  for (;;) {
    // '_' keeps generated names lexable so printed programs re-parse.
    std::string candidate =
        std::string(hint) + "_" + std::to_string(fresh_counter_++);
    if (symbol_ids_.find(candidate) == symbol_ids_.end()) {
      return InternSymbol(candidate);
    }
  }
}

PredId Context::InternPredicate(SymbolId name, uint32_t arity,
                                const Adornment& adornment) {
  PredKey key{name, arity, adornment.str()};
  auto it = pred_ids_.find(key);
  if (it != pred_ids_.end()) return it->second;
  PredId id = static_cast<PredId>(preds_.size());
  preds_.push_back(PredicateInfo{name, arity, adornment});
  pred_ids_.emplace(std::move(key), id);
  return id;
}

PredId Context::InternPredicate(std::string_view name, uint32_t arity,
                                const Adornment& adornment) {
  return InternPredicate(InternSymbol(name), arity, adornment);
}

std::optional<PredId> Context::FindPredicate(SymbolId name, uint32_t arity,
                                             const Adornment& adornment) const {
  auto it = pred_ids_.find(PredKey{name, arity, adornment.str()});
  if (it == pred_ids_.end()) return std::nullopt;
  return it->second;
}

const PredicateInfo& Context::predicate(PredId id) const {
  assert(id < preds_.size());
  return preds_[id];
}

std::string Context::PredicateDisplayName(PredId id) const {
  const PredicateInfo& info = predicate(id);
  std::string out = SymbolName(info.name);
  if (!info.adornment.empty()) {
    out += "@";
    out += info.adornment.str();
  }
  if (info.IsProjected()) {
    out += "/";
    out += std::to_string(info.arity);
  }
  return out;
}

PredId Context::FreshPredicate(std::string_view hint, uint32_t arity,
                               const Adornment& adornment) {
  SymbolId name = FreshSymbol(hint);
  return InternPredicate(name, arity, adornment);
}

}  // namespace exdl
