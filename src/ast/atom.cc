#include "ast/atom.h"

#include <algorithm>

namespace exdl {

bool Atom::IsGround() const {
  return std::all_of(args.begin(), args.end(),
                     [](const Term& t) { return t.IsConst(); });
}

bool Atom::HasVar(SymbolId v) const {
  return std::any_of(args.begin(), args.end(), [v](const Term& t) {
    return t.IsVar() && t.id() == v;
  });
}

void Atom::CollectVars(std::vector<SymbolId>* out) const {
  for (const Term& t : args) {
    if (!t.IsVar()) continue;
    if (std::find(out->begin(), out->end(), t.id()) == out->end()) {
      out->push_back(t.id());
    }
  }
}

}  // namespace exdl
