#include "ast/adornment.h"

#include <algorithm>

namespace exdl {

Result<Adornment> Adornment::Parse(std::string_view s) {
  bool has_nd = false;
  bool has_bf = false;
  for (char c : s) {
    switch (c) {
      case kNeeded:
      case kExistential:
        has_nd = true;
        break;
      case kBound:
      case kFree:
        has_bf = true;
        break;
      default:
        return Status::InvalidArgument(
            std::string("bad adornment character '") + c + "' in '" +
            std::string(s) + "'");
    }
  }
  // 'b'/'f' do not collide with 'n'/'d' so mixing the alphabets is always a
  // mistake in the input.
  if (has_nd && has_bf) {
    return Status::InvalidArgument("adornment mixes n/d and b/f alphabets: '" +
                                   std::string(s) + "'");
  }
  return Adornment(std::string(s));
}

Adornment Adornment::AllNeeded(size_t arity) {
  return Adornment(std::string(arity, kNeeded));
}

Adornment Adornment::AllFree(size_t arity) {
  return Adornment(std::string(arity, kFree));
}

size_t Adornment::CountNeeded() const {
  return static_cast<size_t>(
      std::count(chars_.begin(), chars_.end(), kNeeded));
}

size_t Adornment::CountBound() const {
  return static_cast<size_t>(std::count(chars_.begin(), chars_.end(), kBound));
}

bool Adornment::AllPositionsNeeded() const {
  return std::all_of(chars_.begin(), chars_.end(),
                     [](char c) { return c == kNeeded; });
}

bool Adornment::HasExistential() const {
  return chars_.find(kExistential) != std::string::npos;
}

std::vector<size_t> Adornment::NeededPositions() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < chars_.size(); ++i) {
    if (chars_[i] == kNeeded) out.push_back(i);
  }
  return out;
}

bool Covers(const Adornment& a1, const Adornment& a) {
  if (a1.size() != a.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.needed(i) && !a1.needed(i)) return false;
  }
  return true;
}

}  // namespace exdl
