// Program: an IDB (set of rules) plus the query atom, sharing a Context.
//
// Following the paper's conventions (Section 1.1): the IDB contains no
// facts — all facts live in the extensional Database (storage module). A
// predicate is *derived* (IDB) if some rule defines it; every other
// predicate mentioned is a base (EDB) predicate.

#ifndef EXDL_AST_PROGRAM_H_
#define EXDL_AST_PROGRAM_H_

#include <optional>
#include <unordered_set>
#include <vector>

#include "ast/rule.h"

namespace exdl {

class Program {
 public:
  explicit Program(ContextPtr context) : context_(std::move(context)) {}

  const ContextPtr& context() const { return context_; }
  Context& ctx() const { return *context_; }

  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>& mutable_rules() { return rules_; }
  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }
  size_t NumRules() const { return rules_.size(); }

  /// The query atom (e.g. `query(X)` or `a@nd(X)`); optional because
  /// substrate code also manipulates query-less rule sets.
  const std::optional<Atom>& query() const { return query_; }
  void SetQuery(Atom q) { query_ = std::move(q); }
  void ClearQuery() { query_.reset(); }

  /// Predicates defined by at least one rule (the derived predicates).
  std::unordered_set<PredId> IdbPredicates() const;

  /// Predicates that occur in some body (or the query) but are defined by
  /// no rule — the base relations.
  std::unordered_set<PredId> EdbPredicates() const;

  /// Every predicate mentioned anywhere (heads, bodies, query).
  std::unordered_set<PredId> AllPredicates() const;

  bool IsIdb(PredId p) const;

  /// True if any body literal is negated (stratified-negation programs).
  bool HasNegation() const;

  /// Rule indices whose head predicate is `p`.
  std::vector<size_t> RulesDefining(PredId p) const;

  /// Deep-copies rules/query; shares the Context (ids stay comparable).
  Program Clone() const;

 private:
  ContextPtr context_;
  std::vector<Rule> rules_;
  std::optional<Atom> query_;
};

}  // namespace exdl

#endif  // EXDL_AST_PROGRAM_H_
