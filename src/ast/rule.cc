#include "ast/rule.h"

#include <algorithm>
#include <unordered_set>

namespace exdl {

std::vector<SymbolId> Rule::Vars() const {
  std::vector<SymbolId> out;
  head.CollectVars(&out);
  for (const Atom& a : body) a.CollectVars(&out);
  return out;
}

std::vector<SymbolId> Rule::BodyVars() const {
  std::vector<SymbolId> out;
  for (const Atom& a : body) a.CollectVars(&out);
  return out;
}

bool Rule::IsUnitRule() const {
  if (body.size() != 1) return false;
  const Atom& b = body[0];
  std::unordered_set<SymbolId> body_vars;
  for (const Term& t : b.args) {
    if (!t.IsVar()) return false;
    if (!body_vars.insert(t.id()).second) return false;  // repeated var
  }
  std::unordered_set<SymbolId> head_vars;
  for (const Term& t : head.args) {
    if (!t.IsVar()) return false;
    if (!head_vars.insert(t.id()).second) return false;
    if (body_vars.find(t.id()) == body_vars.end()) return false;
  }
  return true;
}

bool Rule::BodyContains(PredId pred) const {
  return std::any_of(body.begin(), body.end(),
                     [pred](const Atom& a) { return a.pred == pred; });
}

}  // namespace exdl
