// Pretty-printing of AST nodes back to the concrete Datalog syntax that the
// parser accepts (round-trippable).

#ifndef EXDL_AST_PRINTER_H_
#define EXDL_AST_PRINTER_H_

#include <string>

#include "ast/program.h"

namespace exdl {

std::string ToString(const Context& ctx, const Term& term);
std::string ToString(const Context& ctx, const Atom& atom);
std::string ToString(const Context& ctx, const Rule& rule);

/// Prints every rule, one per line, followed by `?- query.` if present.
std::string ToString(const Program& program);

}  // namespace exdl

#endif  // EXDL_AST_PRINTER_H_
