// Context: interning tables shared by a Program and everything derived
// from it.
//
// Two tables live here:
//   * symbols — names of constants and variables, interned to SymbolId;
//   * predicates — (base name, stored arity, adornment) triples interned to
//     PredId. The adorned version `a^nd` of `a` is a distinct predicate, as
//     in the paper; after projection pushing, `a^nd` with arity 1 is again
//     distinct from the unprojected `a^nd` with arity 2.
//
// A Context is shared via shared_ptr: transformations produce new Programs
// that reference the same Context, so PredIds and SymbolIds remain
// comparable across the original and every rewritten program.
//
// Concurrency: the tables are append-only and guarded by a shared_mutex —
// reads (SymbolName, predicate, lookups) take a shared lock, interning
// takes an exclusive lock. Symbol and predicate storage is deque-backed so
// the `const&` returned by SymbolName/predicate stays valid across later
// interning; one QueryService can therefore render answers for a finished
// session while another session's compile is still interning. Interning is
// still *serialized* by callers that need deterministic ids (the service
// compile turnstile): the lock makes concurrent access safe, not ordered.

#ifndef EXDL_AST_CONTEXT_H_
#define EXDL_AST_CONTEXT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "ast/adornment.h"

namespace exdl {

using SymbolId = uint32_t;
using PredId = uint32_t;
inline constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

/// Metadata for one interned predicate version.
struct PredicateInfo {
  SymbolId name = kInvalidId;  ///< Base name symbol ("a" for a^nd).
  uint32_t arity = 0;          ///< Number of *stored* argument positions.
  Adornment adornment;         ///< Empty for unadorned predicates.

  /// True if some positions were projected out (adornment longer than the
  /// stored arity, per Lemma 3.2).
  bool IsProjected() const {
    return !adornment.empty() && adornment.size() != arity;
  }
};

/// Interning tables for symbols and predicate versions.
class Context {
 public:
  Context() = default;
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // -- Symbols ---------------------------------------------------------

  /// Interns `name`, returning the existing id if already present.
  SymbolId InternSymbol(std::string_view name);
  /// Looks up `name` without interning.
  std::optional<SymbolId> FindSymbol(std::string_view name) const;
  /// The reference stays valid for the Context's lifetime (deque-backed).
  const std::string& SymbolName(SymbolId id) const;
  size_t NumSymbols() const;

  /// Interns a fresh symbol guaranteed distinct from all existing ones;
  /// used for renamed variables and frozen constants. The name is
  /// `<hint>$<counter>`.
  SymbolId FreshSymbol(std::string_view hint);

  // -- Predicates ------------------------------------------------------

  /// Interns the predicate version (name, arity, adornment).
  PredId InternPredicate(SymbolId name, uint32_t arity,
                         const Adornment& adornment = Adornment());
  /// Convenience overload interning the name string too.
  PredId InternPredicate(std::string_view name, uint32_t arity,
                         const Adornment& adornment = Adornment());
  /// Looks up without interning.
  std::optional<PredId> FindPredicate(SymbolId name, uint32_t arity,
                                      const Adornment& adornment) const;

  /// The reference stays valid for the Context's lifetime (deque-backed).
  const PredicateInfo& predicate(PredId id) const;
  size_t NumPredicates() const;

  /// Human-readable name: "a", "a@nd", or "a@nd/1" when projected.
  std::string PredicateDisplayName(PredId id) const;

  /// Interns a fresh predicate with a unique name derived from `hint`
  /// (used for boolean components B_i and magic predicates).
  PredId FreshPredicate(std::string_view hint, uint32_t arity,
                        const Adornment& adornment = Adornment());

 private:
  struct PredKey {
    SymbolId name;
    uint32_t arity;
    std::string adornment;
    bool operator==(const PredKey&) const = default;
  };
  struct PredKeyHash {
    size_t operator()(const PredKey& k) const {
      size_t h = std::hash<uint64_t>()((uint64_t{k.name} << 32) | k.arity);
      return h ^ (std::hash<std::string>()(k.adornment) * 1099511628211ULL);
    }
  };

  // Unlocked internals; callers hold mu_ (InternPredicate needs the symbol
  // intern under the same exclusive section, and shared_mutex must not be
  // re-entered from the same thread).
  SymbolId InternSymbolLocked(std::string_view name);
  SymbolId FreshSymbolLocked(std::string_view hint);

  mutable std::shared_mutex mu_;
  std::deque<std::string> symbols_;  ///< Deque: stable refs across interns.
  std::unordered_map<std::string_view, SymbolId> symbol_ids_;
  std::deque<PredicateInfo> preds_;  ///< Deque: stable refs across interns.
  std::unordered_map<PredKey, PredId, PredKeyHash> pred_ids_;
  uint64_t fresh_counter_ = 0;
};

using ContextPtr = std::shared_ptr<Context>;

}  // namespace exdl

#endif  // EXDL_AST_CONTEXT_H_
