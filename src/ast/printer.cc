#include "ast/printer.h"

namespace exdl {

std::string ToString(const Context& ctx, const Term& term) {
  return ctx.SymbolName(term.id());
}

std::string ToString(const Context& ctx, const Atom& atom) {
  const PredicateInfo& info = ctx.predicate(atom.pred);
  std::string out = atom.negated ? "not " : "";
  out += ctx.SymbolName(info.name);
  if (!info.adornment.empty()) {
    out += "@";
    out += info.adornment.str();
  }
  if (atom.args.empty()) return out;
  out += "(";
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) out += ", ";
    out += ToString(ctx, atom.args[i]);
  }
  out += ")";
  return out;
}

std::string ToString(const Context& ctx, const Rule& rule) {
  std::string out = ToString(ctx, rule.head);
  if (!rule.body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) out += ", ";
      out += ToString(ctx, rule.body[i]);
    }
  }
  out += ".";
  return out;
}

std::string ToString(const Program& program) {
  const Context& ctx = program.ctx();
  std::string out;
  for (const Rule& r : program.rules()) {
    out += ToString(ctx, r);
    out += "\n";
  }
  if (program.query()) {
    out += "?- ";
    out += ToString(ctx, *program.query());
    out += ".\n";
  }
  return out;
}

}  // namespace exdl
