// Atom: a predicate applied to a vector of terms, e.g. `a@nd(X, 5)`.

#ifndef EXDL_AST_ATOM_H_
#define EXDL_AST_ATOM_H_

#include <vector>

#include "ast/context.h"
#include "ast/term.h"

namespace exdl {

/// One predicate occurrence. Used for rule heads, body literals, queries
/// and (when ground) facts. Body literals may be negated (`not p(X)`,
/// stratified semantics — see analysis/stratification.h); heads, queries
/// and facts must be positive.
struct Atom {
  PredId pred = kInvalidId;
  std::vector<Term> args;
  bool negated = false;

  Atom() = default;
  Atom(PredId p, std::vector<Term> a) : pred(p), args(std::move(a)) {}

  size_t arity() const { return args.size(); }

  /// True if every argument is a constant.
  bool IsGround() const;

  /// True if variable `v` occurs among the arguments.
  bool HasVar(SymbolId v) const;

  /// Appends the distinct variables of this atom to `out` (first-occurrence
  /// order, no duplicates within the combined output).
  void CollectVars(std::vector<SymbolId>* out) const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.pred == b.pred && a.negated == b.negated && a.args == b.args;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.pred != b.pred) return a.pred < b.pred;
    if (a.negated != b.negated) return a.negated < b.negated;
    return a.args < b.args;
  }
};

}  // namespace exdl

template <>
struct std::hash<exdl::Atom> {
  size_t operator()(const exdl::Atom& a) const {
    size_t h = a.pred * 2 + (a.negated ? 1 : 0);
    for (const exdl::Term& t : a.args) {
      h = h * 1099511628211ULL + std::hash<exdl::Term>()(t);
    }
    return h;
  }
};

#endif  // EXDL_AST_ATOM_H_
