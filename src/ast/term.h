// Term: a variable or a constant argument of an atom.

#ifndef EXDL_AST_TERM_H_
#define EXDL_AST_TERM_H_

#include <cstdint>
#include <functional>

#include "ast/context.h"

namespace exdl {

/// A variable or constant. Both refer to interned symbols; the kind bit
/// distinguishes them (variables and constants live in the same symbol
/// table but never unify by id alone).
class Term {
 public:
  enum class Kind : uint8_t { kVariable, kConstant };

  static Term Var(SymbolId v) { return Term(Kind::kVariable, v); }
  static Term Const(SymbolId c) { return Term(Kind::kConstant, c); }

  Kind kind() const { return kind_; }
  bool IsVar() const { return kind_ == Kind::kVariable; }
  bool IsConst() const { return kind_ == Kind::kConstant; }
  SymbolId id() const { return id_; }

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.id_ == b.id_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    return a.id_ < b.id_;
  }

 private:
  Term(Kind kind, SymbolId id) : kind_(kind), id_(id) {}

  Kind kind_;
  SymbolId id_;
};

}  // namespace exdl

template <>
struct std::hash<exdl::Term> {
  size_t operator()(const exdl::Term& t) const {
    return (static_cast<size_t>(t.kind()) << 31) ^ t.id();
  }
};

#endif  // EXDL_AST_TERM_H_
