// Rule: `head :- body.` A rule with an empty body is a fact schema; ground
// facts are normally stored in the Database instead (the paper assumes the
// IDB contains no facts).

#ifndef EXDL_AST_RULE_H_
#define EXDL_AST_RULE_H_

#include <vector>

#include "ast/atom.h"

namespace exdl {

struct Rule {
  Atom head;
  std::vector<Atom> body;

  Rule() = default;
  Rule(Atom h, std::vector<Atom> b) : head(std::move(h)), body(std::move(b)) {}

  /// Distinct variables of the whole rule, head first, in first-occurrence
  /// order.
  std::vector<SymbolId> Vars() const;

  /// Distinct variables of the body only.
  std::vector<SymbolId> BodyVars() const;

  /// A *unit rule* in the sense of Section 5: exactly one body literal,
  /// every argument a variable, no repeated variable within head or body
  /// atom, and every head variable drawn from the body atom. (Constants or
  /// repetitions would constrain tuples beyond a pure projection.)
  bool IsUnitRule() const;

  /// True if `pred` occurs in the body.
  bool BodyContains(PredId pred) const;

  friend bool operator==(const Rule& a, const Rule& b) {
    return a.head == b.head && a.body == b.body;
  }
  friend bool operator!=(const Rule& a, const Rule& b) { return !(a == b); }
};

}  // namespace exdl

#endif  // EXDL_AST_RULE_H_
