#include "ast/term.h"

// Term is header-only; this translation unit exists so the ast library has a
// stable object for the header's inline symbols under all toolchains.
