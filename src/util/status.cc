#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace exdl {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kCorruptCheckpoint:
      return "CorruptCheckpoint";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

namespace internal {

void DieBadResult(const char* what, const Status& status) {
  std::fprintf(stderr, "exdl: %s: %s\n", what, status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace exdl
