// Small string helpers shared across modules.

#ifndef EXDL_UTIL_STRING_UTIL_H_
#define EXDL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace exdl {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep`, trimming ASCII whitespace from each piece; empty
/// pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace exdl

#endif  // EXDL_UTIL_STRING_UTIL_H_
