// WorkerPool: a persistent fork-join pool, spawned once and reused for
// many dispatches (spawning threads per dispatch would dominate small
// units of work). Originally private to the evaluator's parallel fixpoint
// rounds (DESIGN.md §5a); extracted so the query service can drive its
// session workers through the same machinery.
//
// Run(parts, fn) executes fn(0), fn(1), ..., fn(parts-1) across the pool
// threads *plus the caller* and blocks until all parts finish. Parts are
// claimed dynamically (atomic counter), so uneven part costs balance
// across threads. Run is not reentrant and must always be called from the
// same owner thread; fn must be safe to invoke concurrently for distinct
// parts.

#ifndef EXDL_UTIL_WORKER_POOL_H_
#define EXDL_UTIL_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace exdl {

class WorkerPool {
 public:
  /// Spawns `extra_threads` workers; Run uses them plus the calling
  /// thread, so total parallelism is extra_threads + 1.
  explicit WorkerPool(uint32_t extra_threads) {
    threads_.reserve(extra_threads);
    for (uint32_t i = 0; i < extra_threads; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    start_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of threads Run engages, including the caller.
  uint32_t parallelism() const {
    return static_cast<uint32_t>(threads_.size()) + 1;
  }

  void Run(uint32_t parts, const std::function<void(uint32_t)>& fn) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &fn;
      parts_ = parts;
      next_part_.store(0, std::memory_order_relaxed);
      // Every pool thread plus the caller checks in once per generation,
      // so Run cannot return (and fn cannot be destroyed) while any
      // worker is still inside the part loop.
      working_ = static_cast<uint32_t>(threads_.size()) + 1;
      ++generation_;
    }
    start_.notify_all();
    RunParts(fn);
    std::unique_lock<std::mutex> lock(mutex_);
    CheckIn(lock);
    done_.wait(lock, [this] { return working_ == 0; });
    job_ = nullptr;
  }

 private:
  void RunParts(const std::function<void(uint32_t)>& fn) {
    uint32_t part;
    while ((part = next_part_.fetch_add(1, std::memory_order_relaxed)) <
           parts_) {
      fn(part);
    }
  }

  /// Marks this participant done with the current generation. Requires
  /// `lock` held on mutex_.
  void CheckIn(std::unique_lock<std::mutex>& lock) {
    (void)lock;
    if (--working_ == 0) done_.notify_all();
  }

  void WorkerLoop() {
    uint64_t seen = 0;
    while (true) {
      const std::function<void(uint32_t)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        start_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        job = job_;
      }
      if (job != nullptr) RunParts(*job);
      std::unique_lock<std::mutex> lock(mutex_);
      CheckIn(lock);
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_;
  std::condition_variable done_;
  const std::function<void(uint32_t)>* job_ = nullptr;
  uint32_t parts_ = 0;
  std::atomic<uint32_t> next_part_{0};
  uint32_t working_ = 0;  ///< Participants not yet checked in this generation.
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace exdl

#endif  // EXDL_UTIL_WORKER_POOL_H_
