// CancellationToken: a one-way flag an external party raises to ask a
// long-running computation to stop at its next cooperative check point.
//
// The evaluator and the optimizer pipeline poll a token supplied through
// their options (EvalBudget::cancellation, OptimizerOptions::cancellation)
// and stop gracefully with StatusCode::kCancelled, keeping all state
// computed so far consistent. Cancel() is a lock-free atomic store, so it
// is safe to call from another thread or — as tools/exdlc does for
// SIGINT — from a signal handler.

#ifndef EXDL_UTIL_CANCELLATION_H_
#define EXDL_UTIL_CANCELLATION_H_

#include <atomic>

namespace exdl {

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. Idempotent; async-signal-safe.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// True once Cancel() has been called.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Re-arms the token (e.g. between CLI commands in one process).
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace exdl

#endif  // EXDL_UTIL_CANCELLATION_H_
