#include "util/string_util.h"

#include <cctype>

namespace exdl {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(Trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace exdl
