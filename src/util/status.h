// Lightweight Status / Result<T> error-handling primitives.
//
// The library does not use exceptions (following the Google C++ style this
// codebase is written against). Fallible operations return `Status` or
// `Result<T>`; callers are expected to check `ok()` before using a value.

#ifndef EXDL_UTIL_STATUS_H_
#define EXDL_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace exdl {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (e.g. parse error, arity mismatch).
  kNotFound,          ///< A named entity does not exist.
  kFailedPrecondition,///< Operation not applicable to this input.
  kUnimplemented,     ///< Feature intentionally not supported.
  kInternal,          ///< Invariant violation inside the library.
  kDeadlineExceeded,  ///< A wall-clock budget expired (EvalBudget).
  kResourceExhausted, ///< A tuple/byte/derivation budget was exceeded.
  kCancelled,         ///< Stopped via an external CancellationToken.
  kCorruptCheckpoint, ///< A snapshot failed CRC/structural validation.
  kUnavailable,       ///< Transient: retry later (daemon backpressure, torn
                      ///< connection, server draining).
};

/// Returns a short stable name for `code` ("InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// Success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status CorruptCheckpoint(std::string msg) {
    return Status(StatusCode::kCorruptCheckpoint, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

namespace internal {
/// Prints `what` plus the status to stderr and aborts. Out of line so the
/// cold path costs one call in Result's accessors.
[[noreturn]] void DieBadResult(const char* what, const Status& status);
}  // namespace internal

/// A value of type T or an error Status.
///
/// `Result` is move- and copy-friendly whenever T is. Accessing the value
/// of an errored result aborts with the status message in every build mode
/// (unlike absl::StatusOr, whose release-mode access is undefined; an
/// unchecked error must never silently read garbage).
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return MakeThing();`.
  Result(T value) : value_(std::move(value)) {}
  /// Implicit from error status: allows `return Status::NotFound(...);`.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      internal::DieBadResult("Result constructed from OK status without value",
                             status_);
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) internal::DieBadResult("Result::value() on error", status_);
  }

  Status status_;
  std::optional<T> value_;
};

/// Propagates an error Status from an expression producing a Status.
#define EXDL_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::exdl::Status _exdl_status = (expr);         \
    if (!_exdl_status.ok()) return _exdl_status;  \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error. Usable only in functions returning Status or Result<U>.
#define EXDL_ASSIGN_OR_RETURN(lhs, expr)          \
  EXDL_ASSIGN_OR_RETURN_IMPL_(                    \
      EXDL_STATUS_CONCAT_(_exdl_result, __LINE__), lhs, expr)

#define EXDL_STATUS_CONCAT_INNER_(a, b) a##b
#define EXDL_STATUS_CONCAT_(a, b) EXDL_STATUS_CONCAT_INNER_(a, b)
#define EXDL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace exdl

#endif  // EXDL_UTIL_STATUS_H_
