#include "util/rng.h"

namespace exdl {

uint64_t Rng::Next64() {
  // SplitMix64 (Steele, Lea, Flood 2014). Public domain reference constants.
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Below(uint64_t bound) {
  // Debiased modulo: rejection sampling on the top of the range.
  uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::Between(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Below(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace exdl
