// Deterministic pseudo-random number generator for workload generation and
// property tests. A thin wrapper over SplitMix64 so that benchmarks and
// tests are reproducible across platforms and standard-library versions
// (std::mt19937 distributions are not portable across implementations).

#ifndef EXDL_UTIL_RNG_H_
#define EXDL_UTIL_RNG_H_

#include <cstdint>

namespace exdl {

/// SplitMix64-based PRNG. Deterministic for a given seed on every platform.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t Below(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Between(int64_t lo, int64_t hi);

  /// Bernoulli with probability `p` (clamped to [0,1]).
  bool Chance(double p);

  /// Uniform double in [0, 1).
  double NextDouble();

 private:
  uint64_t state_;
};

}  // namespace exdl

#endif  // EXDL_UTIL_RNG_H_
