#include "recovery/checkpoint.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "recovery/atomic_file.h"

namespace exdl::recovery {

namespace {

constexpr char kMagic[8] = {'E', 'X', 'D', 'L', 'S', 'N', 'A', 'P'};
constexpr size_t kHeaderSize = 8 + 4 + 4 + 8;  // magic, version, flags, len
constexpr size_t kTrailerSize = 4;             // CRC32C

// Section tags. Unknown tags are skipped on decode (a same-version writer
// may append new optional sections); the four below are mandatory.
constexpr uint32_t kTagContext = 1;
constexpr uint32_t kTagDatabase = 2;
constexpr uint32_t kTagCursor = 3;
constexpr uint32_t kTagFingerprint = 4;

// ---- little-endian packing -------------------------------------------

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutF64(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

void PutBytes(std::string* out, std::string_view bytes) {
  out->append(bytes.data(), bytes.size());
}

/// Appends a section (tag, length, body) to `out`.
void PutSection(std::string* out, uint32_t tag, std::string_view body) {
  PutU32(out, tag);
  PutU64(out, body.size());
  PutBytes(out, body);
}

/// Bounds-checked forward reader over a byte range. Every accessor sets
/// `ok` false (and returns 0/empty) on overrun instead of reading past the
/// end, so decoding can run to completion and fail once at the end.
struct Reader {
  const uint8_t* p;
  size_t n;
  size_t off = 0;
  bool ok = true;

  Reader(const void* data, size_t size)
      : p(static_cast<const uint8_t*>(data)), n(size) {}

  size_t remaining() const { return ok ? n - off : 0; }

  uint32_t U32() {
    if (!ok || n - off < 4) {
      ok = false;
      return 0;
    }
    uint32_t v = static_cast<uint32_t>(p[off]) |
                 (static_cast<uint32_t>(p[off + 1]) << 8) |
                 (static_cast<uint32_t>(p[off + 2]) << 16) |
                 (static_cast<uint32_t>(p[off + 3]) << 24);
    off += 4;
    return v;
  }

  uint64_t U64() {
    const uint64_t lo = U32();
    const uint64_t hi = U32();
    return lo | (hi << 32);
  }

  double F64() { return std::bit_cast<double>(U64()); }

  std::string_view Bytes(size_t len) {
    if (!ok || n - off < len) {
      ok = false;
      return {};
    }
    std::string_view v(reinterpret_cast<const char*>(p + off), len);
    off += len;
    return v;
  }

  void Skip(size_t len) { (void)Bytes(len); }
};

Status Corrupt(const std::string& what) {
  return Status::CorruptCheckpoint("corrupt snapshot: " + what);
}

// ---- section encoders -------------------------------------------------

std::string EncodeContext(const Context& ctx) {
  std::string body;
  PutU64(&body, ctx.NumSymbols());
  for (SymbolId s = 0; s < ctx.NumSymbols(); ++s) {
    const std::string& name = ctx.SymbolName(s);
    PutU32(&body, static_cast<uint32_t>(name.size()));
    PutBytes(&body, name);
  }
  PutU64(&body, ctx.NumPredicates());
  for (PredId p = 0; p < ctx.NumPredicates(); ++p) {
    const PredicateInfo& info = ctx.predicate(p);
    PutU32(&body, info.name);
    PutU32(&body, info.arity);
    PutU32(&body, static_cast<uint32_t>(info.adornment.str().size()));
    PutBytes(&body, info.adornment.str());
  }
  return body;
}

std::string EncodeDatabase(const Database& db) {
  // Relations sorted by PredId: the unordered_map iteration order must not
  // leak into the bytes (two checkpoints of the same state must be
  // identical).
  std::vector<std::pair<PredId, const Relation*>> rels;
  rels.reserve(db.relations().size());
  for (const auto& [pred, rel] : db.relations()) rels.emplace_back(pred, &rel);
  std::sort(rels.begin(), rels.end());

  std::string body;
  PutU64(&body, rels.size());
  for (const auto& [pred, rel] : rels) {
    PutU32(&body, pred);
    PutU32(&body, rel->arity());
    PutU64(&body, rel->size());
    for (Value v : rel->view().Raw()) PutU32(&body, v);
  }
  return body;
}

std::string EncodeCursor(const EvalCursor& cursor) {
  std::string body;
  PutU32(&body, cursor.stratum);
  PutU64(&body, cursor.rounds);
  PutU64(&body, cursor.rule_firings);
  PutU64(&body, cursor.tuples_inserted);
  PutU64(&body, cursor.duplicate_inserts);
  PutU64(&body, cursor.index_probes);
  PutU64(&body, cursor.rows_matched);
  PutU64(&body, cursor.rules_retired);
  PutF64(&body, cursor.eval_seconds);
  PutF64(&body, cursor.max_round_seconds);
  PutU64(&body, cursor.delta_lo.size());
  for (const auto& [pred, lo] : cursor.delta_lo) {
    PutU32(&body, pred);
    PutU32(&body, lo);
  }
  PutU64(&body, cursor.retired_rules.size());
  for (uint32_t r : cursor.retired_rules) PutU32(&body, r);
  return body;
}

// ---- section decoders -------------------------------------------------

Status DecodeContextSection(Reader r, Snapshot* snap) {
  const uint64_t num_symbols = r.U64();
  // Every symbol costs at least its 4-byte length prefix: a count larger
  // than that bound cannot be honest, so reject it before reserving.
  if (!r.ok || num_symbols > r.remaining() / 4) {
    return Corrupt("symbol table overruns section");
  }
  snap->symbols.reserve(num_symbols);
  for (uint64_t i = 0; i < num_symbols; ++i) {
    const uint32_t len = r.U32();
    std::string_view name = r.Bytes(len);
    if (!r.ok) return Corrupt("truncated symbol name");
    snap->symbols.emplace_back(name);
  }
  const uint64_t num_preds = r.U64();
  if (!r.ok || num_preds > r.remaining() / 12) {
    return Corrupt("predicate table overruns section");
  }
  snap->preds.reserve(num_preds);
  for (uint64_t i = 0; i < num_preds; ++i) {
    SnapshotPred pred;
    pred.name = r.U32();
    pred.arity = r.U32();
    const uint32_t alen = r.U32();
    std::string_view adornment = r.Bytes(alen);
    if (!r.ok) return Corrupt("truncated predicate entry");
    if (pred.name >= num_symbols) return Corrupt("predicate name id out of range");
    pred.adornment = std::string(adornment);
    if (!pred.adornment.empty()) {
      Result<Adornment> parsed = Adornment::Parse(pred.adornment);
      if (!parsed.ok()) return Corrupt("invalid adornment string");
    }
    snap->preds.push_back(std::move(pred));
  }
  if (r.remaining() != 0) return Corrupt("trailing bytes in context section");
  return Status::Ok();
}

Status DecodeDatabaseSection(Reader r, Snapshot* snap) {
  const uint64_t num_relations = r.U64();
  if (!r.ok || num_relations > r.remaining() / 16) {
    return Corrupt("relation table overruns section");
  }
  for (uint64_t i = 0; i < num_relations; ++i) {
    const PredId pred = r.U32();
    const uint32_t arity = r.U32();
    const uint64_t num_rows = r.U64();
    if (!r.ok) return Corrupt("truncated relation header");
    if (pred >= snap->preds.size()) return Corrupt("relation predicate id out of range");
    if (arity != snap->preds[pred].arity) {
      return Corrupt("relation arity disagrees with predicate table");
    }
    if (snap->db.Find(pred) != nullptr) return Corrupt("duplicate relation entry");
    const uint64_t num_values = num_rows * arity;
    if (arity != 0 && num_values / arity != num_rows) {
      return Corrupt("relation row count overflows");
    }
    if (num_values > r.remaining() / 4) {
      return Corrupt("relation rows overrun section");
    }
    if (arity == 0 && num_rows > 1) {
      return Corrupt("0-ary relation with more than one row");
    }
    std::vector<Value> values;
    values.reserve(num_values);
    for (uint64_t v = 0; v < num_values; ++v) {
      const Value value = r.U32();
      if (value >= snap->symbols.size()) return Corrupt("tuple value out of range");
      values.push_back(value);
    }
    if (!r.ok) return Corrupt("truncated relation rows");
    Relation& rel = snap->db.GetOrCreate(pred, arity);
    if (!rel.LoadRows(values, num_rows)) {
      return Corrupt("duplicate tuple in relation");
    }
  }
  if (r.remaining() != 0) return Corrupt("trailing bytes in database section");
  return Status::Ok();
}

Status DecodeCursorSection(Reader r, Snapshot* snap) {
  EvalCursor& cursor = snap->cursor;
  cursor.stratum = r.U32();
  cursor.rounds = r.U64();
  cursor.rule_firings = r.U64();
  cursor.tuples_inserted = r.U64();
  cursor.duplicate_inserts = r.U64();
  cursor.index_probes = r.U64();
  cursor.rows_matched = r.U64();
  cursor.rules_retired = r.U64();
  cursor.eval_seconds = r.F64();
  cursor.max_round_seconds = r.F64();
  const uint64_t num_delta = r.U64();
  if (!r.ok || num_delta > r.remaining() / 8) {
    return Corrupt("delta watermarks overrun section");
  }
  cursor.delta_lo.reserve(num_delta);
  for (uint64_t i = 0; i < num_delta; ++i) {
    const PredId pred = r.U32();
    const uint32_t lo = r.U32();
    if (!r.ok) return Corrupt("truncated delta watermark");
    if (pred >= snap->preds.size()) return Corrupt("watermark predicate id out of range");
    if (!cursor.delta_lo.empty() && pred <= cursor.delta_lo.back().first) {
      return Corrupt("delta watermarks not strictly sorted");
    }
    const Relation* rel = snap->db.Find(pred);
    const uint32_t size = rel == nullptr ? 0 : static_cast<uint32_t>(rel->size());
    if (lo > size) return Corrupt("delta watermark past relation size");
    cursor.delta_lo.emplace_back(pred, lo);
  }
  const uint64_t num_retired = r.U64();
  if (!r.ok || num_retired > r.remaining() / 4) {
    return Corrupt("retired rules overrun section");
  }
  cursor.retired_rules.reserve(num_retired);
  for (uint64_t i = 0; i < num_retired; ++i) {
    const uint32_t rule = r.U32();
    if (!r.ok) return Corrupt("truncated retired rule list");
    if (!cursor.retired_rules.empty() && rule <= cursor.retired_rules.back()) {
      return Corrupt("retired rules not strictly sorted");
    }
    cursor.retired_rules.push_back(rule);
  }
  if (cursor.rules_retired != cursor.retired_rules.size()) {
    return Corrupt("retired-rule count disagrees with list");
  }
  if (r.remaining() != 0) return Corrupt("trailing bytes in cursor section");
  return Status::Ok();
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n) {
  // Table for the reflected Castagnoli polynomial 0x1EDC6F41 (reversed
  // 0x82F63B78), built on first use.
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeSnapshot(const Context& ctx, const Database& db,
                           const EvalCursor& cursor, uint64_t fingerprint) {
  std::string payload;
  PutSection(&payload, kTagContext, EncodeContext(ctx));
  PutSection(&payload, kTagDatabase, EncodeDatabase(db));
  PutSection(&payload, kTagCursor, EncodeCursor(cursor));
  std::string fp;
  PutU64(&fp, fingerprint);
  PutSection(&payload, kTagFingerprint, fp);

  std::string out;
  out.reserve(kHeaderSize + payload.size() + kTrailerSize);
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kSnapshotVersion);
  PutU32(&out, 0);  // flags
  PutU64(&out, payload.size());
  PutBytes(&out, payload);
  PutU32(&out, Crc32c(out.data(), out.size()));
  return out;
}

Result<Snapshot> DecodeSnapshot(std::string_view bytes) {
  if (bytes.size() < kHeaderSize + kTrailerSize) {
    return Corrupt("shorter than header + checksum");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic");
  }
  Reader header(bytes.data() + sizeof(kMagic),
                kHeaderSize - sizeof(kMagic));
  const uint32_t version = header.U32();
  const uint32_t flags = header.U32();
  const uint64_t payload_len = header.U64();
  if (version != kSnapshotVersion) {
    return Corrupt("unsupported version " + std::to_string(version));
  }
  if (flags != 0) return Corrupt("unknown flags");
  if (payload_len != bytes.size() - kHeaderSize - kTrailerSize) {
    return Corrupt("payload length disagrees with file size");
  }
  const size_t checked = kHeaderSize + payload_len;
  Reader trailer(bytes.data() + checked, kTrailerSize);
  const uint32_t stored_crc = trailer.U32();
  const uint32_t actual_crc = Crc32c(bytes.data(), checked);
  if (stored_crc != actual_crc) return Corrupt("checksum mismatch");

  Snapshot snap;
  bool have[5] = {};
  Reader payload(bytes.data() + kHeaderSize, payload_len);
  while (payload.remaining() > 0) {
    const uint32_t tag = payload.U32();
    const uint64_t len = payload.U64();
    std::string_view body = payload.Bytes(len);
    if (!payload.ok) return Corrupt("truncated section");
    if (tag >= 1 && tag <= 4) {
      if (have[tag]) return Corrupt("duplicate section");
      have[tag] = true;
    }
    Reader r(body.data(), body.size());
    switch (tag) {
      case kTagContext:
        EXDL_RETURN_IF_ERROR(DecodeContextSection(r, &snap));
        break;
      case kTagDatabase:
        if (!have[kTagContext]) return Corrupt("database before context");
        EXDL_RETURN_IF_ERROR(DecodeDatabaseSection(r, &snap));
        break;
      case kTagCursor:
        if (!have[kTagContext] || !have[kTagDatabase]) {
          return Corrupt("cursor before context/database");
        }
        EXDL_RETURN_IF_ERROR(DecodeCursorSection(r, &snap));
        break;
      case kTagFingerprint:
        if (r.remaining() != 8) return Corrupt("bad fingerprint section");
        snap.program_fingerprint = r.U64();
        break;
      default:
        break;  // unknown optional section: skip (forward compat)
    }
  }
  for (uint32_t tag = 1; tag <= 4; ++tag) {
    if (!have[tag]) {
      return Corrupt("missing section " + std::to_string(tag));
    }
  }
  return snap;
}

Result<Snapshot> ReadSnapshotFile(const std::string& path) {
  EXDL_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  Result<Snapshot> snap = DecodeSnapshot(bytes);
  if (!snap.ok()) {
    return Status(snap.status().code(),
                  snap.status().message() + " (" + path + ")");
  }
  return snap;
}

std::string Checkpointer::PathIn(const std::string& directory) {
  return directory + "/checkpoint.exdl";
}

Checkpointer::Checkpointer(std::string directory, uint64_t program_fingerprint)
    : path_(PathIn(directory)), fingerprint_(program_fingerprint) {}

Result<uint64_t> Checkpointer::Write(const Context& ctx, const Database& db,
                                     const EvalCursor& cursor) {
  std::string bytes = EncodeSnapshot(ctx, db, cursor, fingerprint_);
  EXDL_RETURN_IF_ERROR(AtomicWriteFile(path_, bytes, /*fault_sites=*/true));
  return static_cast<uint64_t>(bytes.size());
}

}  // namespace exdl::recovery
