// Atomic whole-file writes: write to `<path>.tmp`, fsync, rename over
// `path`. A reader never observes a partially written file — it sees the
// old contents (or no file) until the rename, and the complete new
// contents after it. Used for checkpoints, --metrics-json, and the bench
// BENCH_*.json reports.

#ifndef EXDL_RECOVERY_ATOMIC_FILE_H_
#define EXDL_RECOVERY_ATOMIC_FILE_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace exdl::recovery {

/// Writes `data` to `path` atomically. When `fault_sites` is true the four
/// snapshot fault sites (snapshot.open / snapshot.write / snapshot.fsync /
/// snapshot.rename, see fault.h) are consulted; an injected write fault
/// leaves a deliberately truncated temp file, an injected rename fault
/// leaves the complete temp file but never touches `path` — in both cases
/// `path` still holds its previous contents.
Status AtomicWriteFile(const std::string& path, std::string_view data,
                       bool fault_sites = false);

/// Reads the whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace exdl::recovery

#endif  // EXDL_RECOVERY_ATOMIC_FILE_H_
