#include "recovery/fault.h"

#include <cstdio>
#include <cstdlib>

namespace exdl {

namespace {

constexpr std::string_view kSites[] = {
    "storage.arena_grow",     "eval.pool_dispatch",   "snapshot.open",
    "snapshot.write",         "snapshot.fsync",       "snapshot.rename",
    "daemon.accept",          "daemon.read",          "daemon.write",
    "daemon.dispatch",        "factlog.append",       "factlog.fsync",
    "factlog.compact_rename", "daemon.recover_replay",
};

}  // namespace

FaultPlan& FaultPlan::Global() {
  static FaultPlan plan;
  return plan;
}

std::span<const std::string_view> FaultPlan::Sites() { return kSites; }

bool FaultPlan::IsSite(std::string_view site) {
  for (std::string_view s : kSites) {
    if (s == site) return true;
  }
  return false;
}

Status FaultPlan::Arm(std::string_view spec) {
  const size_t colon = spec.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    return Status::InvalidArgument("fault spec must be <site>:<n>[:abort]: '" +
                                   std::string(spec) + "'");
  }
  std::string_view site = spec.substr(0, colon);
  std::string_view rest = spec.substr(colon + 1);
  bool abort = false;
  const size_t colon2 = rest.find(':');
  if (colon2 != std::string_view::npos) {
    std::string_view mode = rest.substr(colon2 + 1);
    if (mode != "abort") {
      return Status::InvalidArgument("unknown fault mode '" +
                                     std::string(mode) + "' (want 'abort')");
    }
    abort = true;
    rest = rest.substr(0, colon2);
  }
  if (!IsSite(site)) {
    std::string known;
    for (std::string_view s : kSites) {
      if (!known.empty()) known += ", ";
      known += s;
    }
    return Status::InvalidArgument("unknown fault site '" + std::string(site) +
                                   "' (registered: " + known + ")");
  }
  char* end = nullptr;
  std::string count(rest);
  const uint64_t n = std::strtoull(count.c_str(), &end, 10);
  if (count.empty() || end == nullptr || *end != '\0' || n == 0) {
    return Status::InvalidArgument("fault count must be a positive integer: '" +
                                   count + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  DisarmLocked();
  site_ = std::string(site);
  trigger_ = n;
  abort_ = abort;
  armed_.store(true, std::memory_order_release);
  return Status::Ok();
}

Status FaultPlan::ArmFromEnv() {
  const char* spec = std::getenv("EXDL_FAULT_SPEC");
  if (spec == nullptr || *spec == '\0') return Status::Ok();
  return Arm(spec);
}

void FaultPlan::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  DisarmLocked();
}

void FaultPlan::DisarmLocked() {
  armed_.store(false, std::memory_order_release);
  site_.clear();
  trigger_ = 0;
  abort_ = false;
  hits_.store(0, std::memory_order_relaxed);
}

bool FaultPlan::ShouldFail(std::string_view site) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return false;
  if (site != site_) return false;
  const uint64_t hit = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (hit != trigger_) return false;
  if (abort_) {
    std::fprintf(stderr, "exdl: injected crash at %s (hit %llu)\n",
                 site_.c_str(), static_cast<unsigned long long>(hit));
    std::fflush(nullptr);
    std::_Exit(kAbortExitCode);
  }
  return true;
}

}  // namespace exdl
