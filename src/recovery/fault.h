// Deterministic fault injection (DESIGN.md §11b).
//
// A FaultPlan arms at most one *site* — a named instrumentation point in
// the engine — to fail on exactly the Nth time execution reaches it. Tests
// and the CI fault sweep use this to exercise every failure path the same
// way every run: `EXDL_FAULT_SPEC="snapshot.write:3"` makes the third
// snapshot write fail; `"storage.arena_grow:2:abort"` makes the second
// arena-growth flush terminate the process (exit 86), simulating a hard
// crash mid-evaluation.
//
// The registered sites are:
//   storage.arena_grow   tuple-arena growth at the end-of-round flush
//   eval.pool_dispatch   worker-pool dispatch of a parallel rule variant
//   snapshot.open        opening the checkpoint temp file
//   snapshot.write       writing snapshot bytes (fails as a short write)
//   snapshot.fsync       flushing the temp file to stable storage
//   snapshot.rename      the atomic rename (temp stays, target untouched)
//   daemon.accept        exdld accepting a client connection (dropped at birth)
//   daemon.read          exdld reading a protocol frame (torn connection)
//   daemon.write         exdld writing a protocol frame (torn connection)
//   daemon.dispatch      exdld handing a SUBMIT to the query service
//   factlog.append       appending a LOAD_FACTS record to the durable
//                        fact log (fails as a short write; an abort here
//                        leaves the torn tail recovery must repair)
//   factlog.fsync        fsyncing the appended record — the generation is
//                        published only after this point
//   factlog.compact_rename  the atomic rename publishing a compacted EDB
//                        snapshot (temp stays, previous snapshot intact)
//   daemon.recover_replay   exdld replaying one fact-log record during
//                        --data-dir startup recovery
//
// The site list is the single source of truth for tools/fault_sweep.sh,
// which reads it via `exdlc fault-sites` — add sites here, never in the
// sweep script.
//
// When no plan is armed every check is one relaxed atomic load — cheap
// enough to leave compiled into release builds.

#ifndef EXDL_RECOVERY_FAULT_H_
#define EXDL_RECOVERY_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>

#include "util/status.h"

namespace exdl {

class FaultPlan {
 public:
  /// The process-wide plan. Sites consult this instance; tests and the CLI
  /// arm it.
  static FaultPlan& Global();

  /// All registered site names, in a stable order (the sweep iterates it).
  static std::span<const std::string_view> Sites();
  /// True if `site` is a registered site name.
  static bool IsSite(std::string_view site);

  /// Arms the plan from `spec` = "<site>:<n>" or "<site>:<n>:abort" with
  /// n >= 1: the n-th hit of <site> fails (or exits 86 with ":abort").
  /// Replaces any previous plan and resets the hit counter.
  Status Arm(std::string_view spec);

  /// Arms from the EXDL_FAULT_SPEC environment variable; no-op when the
  /// variable is unset or empty.
  Status ArmFromEnv();

  /// Disarms the plan and resets the hit counter.
  void Disarm();

  /// Fast path for instrumentation sites: false unless some plan is armed.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Records one hit of `site` if it is the armed site. Returns true on
  /// the hit the plan designates — the caller must then fail the
  /// operation. In abort mode the designated hit does not return: the
  /// process exits with code 86 (a simulated crash).
  bool ShouldFail(std::string_view site);

  /// Hits recorded at the armed site since Arm (test introspection).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

  /// Exit code used by ":abort" plans, chosen to be distinguishable from
  /// every documented exdlc exit code and common signal encodings.
  static constexpr int kAbortExitCode = 86;

 private:
  void DisarmLocked();

  std::atomic<bool> armed_{false};
  // Arm/Disarm may race with ShouldFail from daemon connection threads
  // (tests re-arm a live server); the armed() fast path stays a single
  // relaxed load, everything else is guarded.
  mutable std::mutex mu_;
  std::string site_;
  uint64_t trigger_ = 0;
  bool abort_ = false;
  std::atomic<uint64_t> hits_{0};
};

}  // namespace exdl

#endif  // EXDL_RECOVERY_FAULT_H_
