#include "recovery/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

#include "recovery/fault.h"

namespace exdl::recovery {

namespace {

Status IoError(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

bool Injected(bool fault_sites, const char* site) {
  return fault_sites && FaultPlan::Global().armed() &&
         FaultPlan::Global().ShouldFail(site);
}

Status InjectedError(const char* site) {
  return Status::Internal(std::string("injected fault at ") + site);
}

}  // namespace

#ifdef _WIN32

// Portability fallback (the project targets POSIX; CI runs Linux): plain
// stream write + rename, no fsync, no fault instrumentation granularity.
Status AtomicWriteFile(const std::string& path, std::string_view data,
                       bool fault_sites) {
  const std::string tmp = path + ".tmp";
  if (Injected(fault_sites, "snapshot.open")) return InjectedError("snapshot.open");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot open " + tmp);
    if (Injected(fault_sites, "snapshot.write")) {
      out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
      return InjectedError("snapshot.write");
    }
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) return Status::Internal("short write to " + tmp);
  }
  if (Injected(fault_sites, "snapshot.fsync")) return InjectedError("snapshot.fsync");
  if (Injected(fault_sites, "snapshot.rename")) return InjectedError("snapshot.rename");
  std::remove(path.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return IoError("cannot rename", tmp);
  }
  return Status::Ok();
}

#else

Status AtomicWriteFile(const std::string& path, std::string_view data,
                       bool fault_sites) {
  const std::string tmp = path + ".tmp";
  if (Injected(fault_sites, "snapshot.open")) {
    return InjectedError("snapshot.open");
  }
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("cannot open", tmp);

  // An injected write fault is a *short* write: half the payload lands on
  // disk, then the write "fails" — the torn temp file stays behind for the
  // loader-hardening tests to chew on.
  size_t to_write = data.size();
  bool inject_short = false;
  if (Injected(fault_sites, "snapshot.write")) {
    to_write = data.size() / 2;
    inject_short = true;
  }
  size_t off = 0;
  while (off < to_write) {
    const ssize_t n = ::write(fd, data.data() + off, to_write - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return IoError("write failed for", tmp);
    }
    off += static_cast<size_t>(n);
  }
  if (inject_short) {
    ::close(fd);
    return InjectedError("snapshot.write");
  }

  if (Injected(fault_sites, "snapshot.fsync")) {
    ::close(fd);
    return InjectedError("snapshot.fsync");
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return IoError("fsync failed for", tmp);
  }
  if (::close(fd) != 0) return IoError("close failed for", tmp);

  // A torn rename: the temp file is complete and durable, but `path` never
  // learns about it — exactly the state after a crash between fsync and
  // rename.
  if (Injected(fault_sites, "snapshot.rename")) {
    return InjectedError("snapshot.rename");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return IoError("cannot rename", tmp);
  }
  return Status::Ok();
}

#endif  // _WIN32

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Internal("read failed for " + path);
  }
  return buffer.str();
}

}  // namespace exdl::recovery
