// Durable evaluation checkpoints (DESIGN.md §11).
//
// A snapshot is one self-contained binary blob holding everything needed
// to continue a fixpoint from a round boundary in a fresh process:
//
//   * the interning tables (symbols and predicate versions) of the
//     Context the run was using — stored for *validation*: a resuming
//     engine re-parses and re-optimizes the program, then checks that its
//     freshly built tables are identical, which guarantees every id in
//     the snapshot means the same thing in the new process;
//   * every relation of the database, rows in insertion order (insertion
//     order is the semi-naive delta mechanism, so it must survive the
//     round trip bit-for-bit);
//   * the EvalCursor (stratum, cumulative stats, delta watermarks,
//     retired rules, wall-clock spent);
//   * a fingerprint of the program + evaluation semantics, so a snapshot
//     is never resumed against a different program.
//
// Layout: "EXDLSNAP" magic, u32 version, u32 flags, u64 payload length,
// tagged payload sections (u32 tag, u64 length, bytes — unknown tags are
// skipped), and a trailing CRC32C over every preceding byte. All integers
// little-endian. DecodeSnapshot is fully bounds-checked and returns
// kCorruptCheckpoint for *any* malformed input: wrong magic or version,
// bad CRC, truncation, out-of-range ids, duplicate rows, non-canonical
// cursor tables. It must never crash and never accept a byte-flipped
// snapshot (the fuzz_snapshot harness enforces this).

#ifndef EXDL_RECOVERY_CHECKPOINT_H_
#define EXDL_RECOVERY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ast/context.h"
#include "eval/evaluator.h"
#include "storage/database.h"
#include "util/status.h"

namespace exdl::recovery {

/// CRC32C (Castagnoli), software table-driven; the checksum guarding every
/// snapshot.
uint32_t Crc32c(const void* data, size_t n);

/// Current snapshot format version. Decoders accept exactly this version;
/// compat rules are documented in DESIGN.md §11.
inline constexpr uint32_t kSnapshotVersion = 1;

/// One interned predicate version as stored in a snapshot.
struct SnapshotPred {
  SymbolId name = kInvalidId;
  uint32_t arity = 0;
  std::string adornment;  ///< Adornment::str(); empty = unadorned.
};

/// A decoded snapshot.
struct Snapshot {
  std::vector<std::string> symbols;  ///< SymbolId -> name.
  std::vector<SnapshotPred> preds;   ///< PredId -> version triple.
  Database db;
  EvalCursor cursor;
  uint64_t program_fingerprint = 0;
};

/// Serializes (ctx, db, cursor, fingerprint) into a snapshot blob.
std::string EncodeSnapshot(const Context& ctx, const Database& db,
                           const EvalCursor& cursor, uint64_t fingerprint);

/// Parses and validates a snapshot blob. Any malformation yields
/// kCorruptCheckpoint; a successful decode is internally consistent
/// (every id in range, every relation deduplicated, cursor tables
/// canonical).
Result<Snapshot> DecodeSnapshot(std::string_view bytes);

/// Reads and decodes the snapshot at `path`. NotFound if the file does
/// not exist; kCorruptCheckpoint if it fails validation.
Result<Snapshot> ReadSnapshotFile(const std::string& path);

/// File-backed CheckpointSink: every Write encodes a snapshot and lands
/// it at `<directory>/checkpoint.exdl` via the atomic temp + fsync +
/// rename protocol (with the snapshot.* fault sites armed), so the file
/// always holds the latest *complete* checkpoint — a failed or torn write
/// leaves the previous one untouched.
class Checkpointer : public CheckpointSink {
 public:
  Checkpointer(std::string directory, uint64_t program_fingerprint);

  Result<uint64_t> Write(const Context& ctx, const Database& db,
                         const EvalCursor& cursor) override;

  /// The checkpoint file this sink writes.
  const std::string& path() const { return path_; }

  /// `<directory>/checkpoint.exdl` — the well-known checkpoint file name
  /// inside a checkpoint directory.
  static std::string PathIn(const std::string& directory);

 private:
  std::string path_;
  uint64_t fingerprint_;
};

}  // namespace exdl::recovery

#endif  // EXDL_RECOVERY_CHECKPOINT_H_
