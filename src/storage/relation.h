// Relation: a deduplicated set of fixed-arity tuples of interned values,
// with insertion-ordered row ids and lazily built, incrementally maintained
// hash indexes on column subsets.
//
// Insertion order is stable, which lets the semi-naive evaluator treat a
// suffix of row ids [watermark, size) as the delta without copying tuples.

#ifndef EXDL_STORAGE_RELATION_H_
#define EXDL_STORAGE_RELATION_H_

#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "ast/context.h"

namespace exdl {

/// A tuple component: an interned constant symbol.
using Value = SymbolId;

/// Hash for value vectors (FNV-1a over 32-bit lanes).
struct ValueVecHash {
  size_t operator()(const std::vector<Value>& v) const {
    size_t h = 1469598103934665603ULL;
    for (Value x : v) {
      h ^= x;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

class Relation {
 public:
  /// Row ids matching one index key.
  using RowIdList = std::vector<uint32_t>;

  /// Hash index on a fixed column subset. Key = projected values in column
  /// order; value = insertion-ordered row ids.
  struct Index {
    std::vector<uint32_t> columns;
    std::unordered_map<std::vector<Value>, RowIdList, ValueVecHash> map;

    /// Rows whose projection equals `key`, or nullptr.
    const RowIdList* Lookup(const std::vector<Value>& key) const {
      auto it = map.find(key);
      return it == map.end() ? nullptr : &it->second;
    }
  };

  explicit Relation(uint32_t arity) : arity_(arity) {}

  uint32_t arity() const { return arity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Inserts `row` (must have length == arity). Returns true if the tuple
  /// was new. Duplicate inserts are counted in `insert_attempts`.
  bool Insert(std::span<const Value> row);

  /// The `row_id`-th tuple in insertion order.
  std::span<const Value> Row(size_t row_id) const {
    return std::span<const Value>(*rows_[row_id]);
  }

  /// True if the exact tuple is present.
  bool Contains(std::span<const Value> row) const;

  /// Returns the index on `columns` (sorted, distinct, each < arity),
  /// building it on first use. The reference stays valid and up to date
  /// across subsequent Inserts.
  const Index& GetIndex(const std::vector<uint32_t>& columns);

  /// Total Insert calls, including duplicates — the paper's "duplicate
  /// elimination cost" is insert_attempts() - size().
  uint64_t insert_attempts() const { return insert_attempts_; }

  /// Drops all tuples and indexes.
  void Clear();

 private:
  uint32_t arity_;
  // Tuples are owned by the dedup map; rows_ holds stable pointers to the
  // map keys in insertion order (unordered_map keys do not move on rehash).
  std::unordered_map<std::vector<Value>, uint32_t, ValueVecHash> set_;
  std::vector<const std::vector<Value>*> rows_;
  // Keyed by column list so GetIndex can find existing indexes. std::map:
  // few indexes per relation, iteration order irrelevant but stable.
  std::map<std::vector<uint32_t>, Index> indexes_;
  uint64_t insert_attempts_ = 0;
};

}  // namespace exdl

#endif  // EXDL_STORAGE_RELATION_H_
