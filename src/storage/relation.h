// Relation: a deduplicated set of fixed-arity tuples of interned values,
// with insertion-ordered row ids and lazily built, incrementally maintained
// hash indexes on column subsets.
//
// Storage layout (see DESIGN.md §5a): tuples live in one contiguous,
// arity-strided arena; row id r occupies data[r*arity, (r+1)*arity).
// Deduplication is an open-addressing table of row ids that hashes the
// arena rows directly — no per-tuple heap node, no pointer chase in Row().
// Indexes store their group keys in the same flat, width-strided style.
//
// Copy-on-write (DESIGN.md §12): the arena, dedup table, and indexes live
// in a shared payload behind a shared_ptr. Copying a Relation (and hence
// Database::Clone) shares the payload — O(1), no tuple copy. The first
// mutation (Insert/Reserve/Clear/LoadRows) on a shared payload detaches a
// private deep copy, so writers never disturb concurrent readers of the
// original. This is what lets a QueryService hand the same EDB snapshot to
// many sessions: body-literal probes read shared payloads, head relations
// detach on first flush. GetIndex is const and thread-safe (mutex-guarded
// lazy build) so concurrent sessions share lazily built EDB indexes.
//
// Insertion order is stable, which lets the semi-naive evaluator treat a
// suffix of row ids [watermark, size) as the delta without copying tuples.
// Spans returned by Row() are views into the arena and are invalidated by
// the next Insert/Reserve/Clear *on this Relation object* (the evaluator
// never grows a relation while iterating it: derivations are buffered and
// flushed between rounds). Index references obtained via GetIndex stay
// valid and up to date until this Relation object mutates while shared
// (a detach re-homes future updates into the private payload).

#ifndef EXDL_STORAGE_RELATION_H_
#define EXDL_STORAGE_RELATION_H_

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "ast/context.h"
#include "storage/unary_bitset.h"

namespace exdl {

/// A tuple component: an interned constant symbol.
using Value = SymbolId;

/// FNV-1a over 32-bit lanes with a splitmix64-style finalizer (open
/// addressing takes the low bits, so they must be well mixed).
inline size_t HashValueSpan(const Value* data, size_t n) {
  size_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 31;
  return h;
}

/// Hashes any key view — anything with `size()` and `operator[](size_t)`
/// returning Value — identically to HashValueSpan over the same values.
/// Lets callers hash virtual keys (e.g. registers projected through a
/// plan's argument specs) without materializing them.
template <typename KeyView>
size_t HashKeyView(const KeyView& key) {
  size_t h = 1469598103934665603ULL;
  const size_t n = key.size();
  for (size_t i = 0; i < n; ++i) {
    h ^= key[i];
    h *= 1099511628211ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 31;
  return h;
}

/// Hash for value vectors (used by callers that key containers on whole
/// tuples, e.g. answer deduplication).
struct ValueVecHash {
  size_t operator()(const std::vector<Value>& v) const {
    return HashValueSpan(v.data(), v.size());
  }
};

class Relation {
 public:
  /// Row ids matching one index key.
  using RowIdList = std::vector<uint32_t>;

  /// Hash index on a fixed column subset. Groups rows by their projection
  /// onto `columns`; group keys live in a flat width-strided array and are
  /// found by open addressing, so probes allocate nothing.
  class Index {
   public:
    /// Rows whose projection equals `key` (any key view), or nullptr.
    template <typename KeyView>
    const RowIdList* LookupKey(const KeyView& key) const {
      assert(key.size() == width_);
      if (slots_.empty()) return nullptr;
      const size_t mask = slots_.size() - 1;
      size_t slot = HashKeyView(key) & mask;
      while (true) {
        const uint32_t g = slots_[slot];
        if (g == 0) return nullptr;
        if (KeyEquals(g - 1, key)) return &groups_[g - 1];
        slot = (slot + 1) & mask;
      }
    }

    const RowIdList* Lookup(const std::vector<Value>& key) const {
      return LookupKey(std::span<const Value>(key));
    }
    const RowIdList* Lookup(std::span<const Value> key) const {
      return LookupKey(key);
    }

    const std::vector<uint32_t>& columns() const { return columns_; }
    size_t num_groups() const { return groups_.size(); }

   private:
    friend class Relation;

    template <typename KeyView>
    bool KeyEquals(size_t group, const KeyView& key) const {
      const Value* stored = keys_.data() + group * width_;
      for (size_t i = 0; i < width_; ++i) {
        if (stored[i] != key[i]) return false;
      }
      return true;
    }

    /// Adds `row_id` under the projection stored at `key` (width_ values).
    void Add(const Value* key, uint32_t row_id);
    void Rehash(size_t new_slot_count);

    std::vector<uint32_t> columns_;
    size_t width_ = 0;               ///< columns_.size()
    std::vector<Value> keys_;        ///< group keys, width_-strided
    std::vector<RowIdList> groups_;  ///< row ids per key, insertion order
    std::vector<uint32_t> slots_;    ///< group id + 1; 0 = empty; pow2 size
    uint64_t rehashes_ = 0;          ///< Rehash() calls (telemetry).
  };

  explicit Relation(uint32_t arity)
      : payload_(std::make_shared<Payload>(arity)) {}

  /// Copies share the payload (O(1)); the first mutation through either
  /// copy detaches a private deep copy (copy-on-write).
  ///
  /// Thread contract: copying a Relation object must not race a mutation
  /// of that same object. Copying may freely race mutations of *other*
  /// Relation objects sharing the payload (they detach first), and
  /// concurrent reads/GetIndex on shared payloads are always safe. See
  /// Detach() for why a racing copy would break the use_count test.
  Relation(const Relation&) = default;
  Relation& operator=(const Relation&) = default;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  uint32_t arity() const { return payload_->arity; }
  size_t size() const { return payload_->num_rows; }
  bool empty() const { return payload_->num_rows == 0; }

  /// Inserts `row` (must have length == arity). Returns true if the tuple
  /// was new. Duplicate inserts are counted in `insert_attempts`. `row`
  /// may alias this relation's own arena (self-copy is handled).
  /// Detaches a shared payload first.
  bool Insert(std::span<const Value> row);

  /// Arity-1 Insert without the span plumbing: one bitset probe for the
  /// duplicate test, one arena append. Observationally identical to
  /// Insert({v}) — insert_attempts, row ids, indexes all behave the same.
  /// Must only be called on arity-1 relations. Inline because it sits on
  /// the flush hot path of unary (monadic) fixpoints.
  bool InsertUnary(Value v) {
    Detach();
    Payload& p = *payload_;
    assert(p.arity == 1);
    ++p.insert_attempts;
    if (!p.bits.Set(v)) return false;
    const uint32_t row_id = static_cast<uint32_t>(p.num_rows);
    p.data.push_back(v);
    ++p.num_rows;
    if (!p.indexes.empty()) UpdateIndexes(row_id);
    return true;
  }

  /// Pre-sizes the arena and dedup table for `rows` tuples. Detaches a
  /// shared payload first.
  void Reserve(size_t rows);

  /// The representation seam (DESIGN.md §14): everything outside
  /// src/storage reads tuples through this narrow view instead of
  /// touching the arena directly — Scan (one row, insertion order), Raw
  /// (the whole arena, checkpoint serialization), Contains (exact-tuple
  /// membership), Probe (hash index on a column subset), and bits (the
  /// word-packed unary bitset, arity-1 relations only). Views are cheap
  /// (one pointer); spans obey the same invalidation rules as the arena
  /// they point into (next Insert/Reserve/Clear on this Relation object).
  class View {
   public:
    uint32_t arity() const { return rel_->arity(); }
    size_t size() const { return rel_->size(); }
    bool empty() const { return rel_->empty(); }

    /// The `row_id`-th tuple in insertion order.
    std::span<const Value> Scan(size_t row_id) const {
      const Payload& p = *rel_->payload_;
      return std::span<const Value>(p.data.data() + row_id * p.arity,
                                    p.arity);
    }

    /// The whole arena in row order: size() * arity() values, row r at
    /// [r * arity, (r + 1) * arity).
    std::span<const Value> Raw() const {
      const Payload& p = *rel_->payload_;
      return std::span<const Value>(p.data.data(), p.num_rows * p.arity);
    }

    /// Exact-tuple membership; `key` is any key view of arity values.
    template <typename KeyView>
    bool Contains(const KeyView& key) const {
      return rel_->ContainsKey(key);
    }

    /// Index probe handle on `columns` (built lazily, thread-safe).
    const Index& Probe(const std::vector<uint32_t>& columns) const {
      return rel_->GetIndex(columns);
    }

    /// Word-packed membership bitset, or nullptr for arity != 1. Bit v is
    /// set iff tuple (v) is present; maintained incrementally by Insert.
    const UnaryBitset* bits() const {
      const Payload& p = *rel_->payload_;
      return p.arity == 1 ? &p.bits : nullptr;
    }

   private:
    friend class Relation;
    explicit View(const Relation* rel) : rel_(rel) {}
    const Relation* rel_;
  };

  View view() const { return View(this); }

  /// Bulk-loads `rows` tuples (an arity-strided value array laid out like
  /// RawData) into this relation, which must be empty. Returns false —
  /// leaving the relation empty — when the shape is wrong or a tuple
  /// repeats; checkpoint restore uses that as a corruption signal, since a
  /// valid snapshot never contains duplicates.
  bool LoadRows(std::span<const Value> data, size_t rows);

  /// True if the exact tuple is present — `key` is any key view of arity
  /// values (see HashKeyView). Allocation-free. Arity-1 relations answer
  /// from the membership bitset (one word probe, no hashing).
  template <typename KeyView>
  bool ContainsKey(const KeyView& key) const {
    const Payload& p = *payload_;
    assert(key.size() == p.arity);
    if (p.arity == 1) return p.bits.Test(key[0]);
    return FindRow(HashKeyView(key), key) != kNoRow;
  }

  bool Contains(std::span<const Value> row) const {
    return ContainsKey(row);
  }

  /// Returns the index on `columns` (sorted, distinct, each < arity),
  /// building it on first use. Thread-safe: concurrent callers on a
  /// shared payload serialize the build and then share it. The reference
  /// stays valid and up to date across subsequent Inserts on this object
  /// (after a copy-on-write detach, updates go to the detached payload's
  /// copy of the index — re-resolve after mutating a shared relation).
  const Index& GetIndex(const std::vector<uint32_t>& columns) const;

  /// Total Insert calls, including duplicates — the paper's "duplicate
  /// elimination cost" is insert_attempts() - size().
  uint64_t insert_attempts() const { return payload_->insert_attempts; }

  /// Bytes of tuple payload in the arena (size * arity * sizeof(Value)).
  /// This is the deterministic quantity EvalBudget::max_arena_bytes
  /// governs; dedup-slot and index overhead are excluded so the limit does
  /// not depend on growth policy or which indexes were lazily built.
  size_t arena_bytes() const {
    return payload_->data.size() * sizeof(Value);
  }

  /// Open-addressing table rebuilds since construction: dedup-slot grows
  /// (including Reserve pre-sizing) plus every index's grows. A telemetry
  /// quantity (storage.rehashes gauge); high counts under steady insert
  /// load suggest Reserve is missing on a hot relation.
  uint64_t rehash_count() const;

  /// Drops all tuples and indexes. On a shared payload this detaches to a
  /// fresh empty payload (other sharers keep their tuples).
  void Clear();

  /// True if `other` currently shares this relation's tuple storage —
  /// i.e. the copy-on-write payload has not been detached by a mutation
  /// on either side. Test/diagnostic hook for snapshot sharing.
  bool SharesStorageWith(const Relation& other) const {
    return payload_ == other.payload_;
  }

 private:
  static constexpr size_t kNoRow = static_cast<size_t>(-1);

  /// Everything that makes up the tuple set. Shared (read-only) between
  /// Relation copies until one of them mutates.
  struct Payload {
    explicit Payload(uint32_t arity_in) : arity(arity_in) {}
    /// Deep copy for detach; the index mutex is fresh, not copied.
    /// Tuple data is immutable while shared, but `indexes` is not: const
    /// GetIndex lazily builds into it under index_mu, and another sharer
    /// may be doing exactly that while this detach copies. Take the same
    /// lock so the map (and every Index in it) is copied only at a
    /// quiescent point of lazy builds.
    Payload(const Payload& other)
        : arity(other.arity),
          data(other.data),
          num_rows(other.num_rows),
          slots(other.slots),
          bits(other.bits),
          insert_attempts(other.insert_attempts),
          rehashes(other.rehashes) {
      std::lock_guard<std::mutex> lock(other.index_mu);
      indexes = other.indexes;
    }

    uint32_t arity;
    std::vector<Value> data;  ///< Arity-strided tuple arena.
    size_t num_rows = 0;
    std::vector<uint32_t> slots;  ///< Dedup: row id + 1; 0 = empty; pow2.
    /// Arity-1 only: word-packed membership bitset over symbol ids, kept
    /// in lockstep with the arena by Insert (empty for other arities).
    /// Derived data — the arena stays the insertion-order source of truth.
    UnaryBitset bits;
    // Keyed by column list so GetIndex can find existing indexes.
    // std::map: few indexes per relation, node stability keeps GetIndex
    // references valid across later GetIndex calls.
    std::map<std::vector<uint32_t>, Index> indexes;
    uint64_t insert_attempts = 0;
    uint64_t rehashes = 0;  ///< RehashSlots() calls (telemetry).
    /// Guards `indexes` map shape and lazy builds on *shared* payloads
    /// (tuple data is immutable while shared, but two sessions may race
    /// to build the same index). Uncontended on private payloads.
    mutable std::mutex index_mu;
  };

  /// Ensures the payload is privately owned before a mutation; deep-copies
  /// it if shared. Callers of mutators must be the only thread touching
  /// *this Relation object* (the usual single-writer contract); other
  /// Relation objects sharing the old payload are unaffected.
  ///
  /// The use_count() > 1 test is sound only under a second, easily missed
  /// half of that contract: no other thread may be *copying this exact
  /// Relation object* (directly or via Database::Clone of the containing
  /// database) concurrently with the mutation — a copy taken between the
  /// use_count read and the in-place write would share a payload being
  /// written. Current callers satisfy this: snapshot publication is
  /// mutex-guarded in QueryService, and each session's EDB clone is
  /// private to its worker. See the Relation copy-constructor comment.
  void Detach() {
    if (payload_.use_count() > 1) {
      payload_ = std::make_shared<Payload>(*payload_);
    }
  }

  /// Probes the dedup table for a row equal to `key`; returns its row id
  /// or kNoRow. `hash` must be HashKeyView(key).
  template <typename KeyView>
  size_t FindRow(size_t hash, const KeyView& key) const {
    const Payload& p = *payload_;
    if (p.slots.empty()) return kNoRow;
    const size_t mask = p.slots.size() - 1;
    size_t slot = hash & mask;
    while (true) {
      const uint32_t r = p.slots[slot];
      if (r == 0) return kNoRow;
      if (RowEquals(r - 1, key)) return r - 1;
      slot = (slot + 1) & mask;
    }
  }

  template <typename KeyView>
  bool RowEquals(size_t row_id, const KeyView& key) const {
    const Payload& p = *payload_;
    const Value* stored = p.data.data() + row_id * p.arity;
    for (size_t i = 0; i < p.arity; ++i) {
      if (stored[i] != key[i]) return false;
    }
    return true;
  }

  /// Grows the dedup table to `new_slot_count` (pow2) and reinserts every
  /// row id by rehashing the arena. Payload must be private.
  void RehashSlots(size_t new_slot_count);

  /// Appends row `row_id` (already in the arena) to every index. Payload
  /// must be private.
  void UpdateIndexes(uint32_t row_id);

  std::shared_ptr<Payload> payload_;
  std::vector<Value> proj_scratch_;  ///< Reused for index maintenance.
};

}  // namespace exdl

#endif  // EXDL_STORAGE_RELATION_H_
