// UnaryBitset: a word-packed membership bitset over interned symbol ids,
// the dense representation behind the monadic fast path (DESIGN.md §14).
//
// Arity-1 relations keep one of these alongside the tuple arena: bit v is
// set iff the single-column tuple (v) is present. Symbol ids are interning
// order, so real programs produce small dense universes and the bitset is
// a few cache lines. The arena stays authoritative for row ids and
// insertion order (it doubles as the enumeration side log); the bitset is
// derived data that accelerates duplicate rejection and lets the evaluator
// run unary joins as word-wise AND/ANDNOT kernels instead of per-tuple
// index probes.

#ifndef EXDL_STORAGE_UNARY_BITSET_H_
#define EXDL_STORAGE_UNARY_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace exdl {

class UnaryBitset {
 public:
  static constexpr size_t kWordBits = 64;

  /// True if bit `v` is set. Out-of-range ids are absent, not an error.
  bool Test(uint32_t v) const {
    const size_t w = v / kWordBits;
    if (w >= words_.size()) return false;
    return (words_[w] >> (v % kWordBits)) & 1u;
  }

  /// Sets bit `v`, growing the word array as needed. Returns true if the
  /// bit was newly set (i.e. the value is new to the set).
  bool Set(uint32_t v) {
    const size_t w = v / kWordBits;
    if (w >= words_.size()) words_.resize(w + 1, 0);
    const uint64_t mask = uint64_t{1} << (v % kWordBits);
    if (words_[w] & mask) return false;
    words_[w] |= mask;
    return true;
  }

  size_t num_words() const { return words_.size(); }
  const uint64_t* words() const { return words_.data(); }
  bool empty() const { return words_.empty(); }

  void Clear() { words_.clear(); }

  /// Population count across all words.
  uint64_t Count() const {
    uint64_t n = 0;
    for (uint64_t w : words_) n += std::popcount(w);
    return n;
  }

 private:
  std::vector<uint64_t> words_;
};

}  // namespace exdl

#endif  // EXDL_STORAGE_UNARY_BITSET_H_
