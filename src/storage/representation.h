// Representation: which physical executor a run should use for eligible
// rules (DESIGN.md §14). kTuple forces the generic arena/index path,
// kBitset runs bitset-eligible rules through the word-packed unary
// kernels, kAuto currently behaves like kBitset (the bitset path falls
// back per-rule wherever it is not eligible, so auto never loses
// generality). Answers and pre-existing telemetry are byte-identical
// across representations by contract; only storage.representation.*
// counters differ.

#ifndef EXDL_STORAGE_REPRESENTATION_H_
#define EXDL_STORAGE_REPRESENTATION_H_

#include <cstdint>
#include <string_view>

namespace exdl {

enum class Representation : uint8_t {
  kAuto = 0,
  kTuple = 1,
  kBitset = 2,
};

/// Parses "auto" | "tuple" | "bitset". Returns false (leaving `out`
/// untouched) on anything else; the CLI maps that to usage exit code 2.
inline bool ParseRepresentation(std::string_view text, Representation* out) {
  if (text == "auto") {
    *out = Representation::kAuto;
  } else if (text == "tuple") {
    *out = Representation::kTuple;
  } else if (text == "bitset") {
    *out = Representation::kBitset;
  } else {
    return false;
  }
  return true;
}

inline const char* RepresentationName(Representation r) {
  switch (r) {
    case Representation::kAuto:
      return "auto";
    case Representation::kTuple:
      return "tuple";
    case Representation::kBitset:
      return "bitset";
  }
  return "auto";
}

/// True if this run should execute eligible rules on the bitset path.
inline bool UseBitsetKernels(Representation r) {
  return r != Representation::kTuple;
}

}  // namespace exdl

#endif  // EXDL_STORAGE_REPRESENTATION_H_
