// Database: predicate id -> Relation. Holds the EDB; during evaluation it
// also holds the growing derived relations. For *uniform* equivalence tests
// (Section 4) the input database may contain facts for IDB predicates too —
// nothing here distinguishes the two.
//
// Copies are copy-on-write: Relation payloads are shared until written
// (see relation.h), so Clone() is O(#relations) pointer copies, not a
// tuple copy. DatabaseSnapshot wraps an immutable generation of the
// database for concurrent readers (DESIGN.md §12).

#ifndef EXDL_STORAGE_DATABASE_H_
#define EXDL_STORAGE_DATABASE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ast/atom.h"
#include "storage/relation.h"
#include "util/status.h"

namespace exdl {

class Database {
 public:
  Database() = default;

  /// The relation for `pred`, creating an empty one of the predicate's
  /// arity on first use.
  Relation& GetOrCreate(PredId pred, uint32_t arity);

  /// The relation for `pred`, or nullptr if no tuple was ever stored.
  const Relation* Find(PredId pred) const;
  Relation* FindMutable(PredId pred);

  /// Inserts a ground atom as a fact. Fails on non-ground atoms.
  Status AddFact(const Atom& atom);

  /// Inserts a tuple for `pred`.
  bool AddTuple(PredId pred, std::span<const Value> row);

  /// Sum of all relation sizes.
  size_t TotalTuples() const;

  /// Sum of all relation arena payload bytes (Relation::arena_bytes) —
  /// the quantity EvalBudget::max_arena_bytes is measured against.
  size_t TotalArenaBytes() const;

  /// Sum of all relations' open-addressing rebuilds
  /// (Relation::rehash_count) — a storage telemetry quantity.
  uint64_t TotalRehashes() const;

  /// Number of tuples for `pred` (0 if absent).
  size_t Count(PredId pred) const;

  /// All tuples of `pred` as ground atoms (testing/debug convenience).
  std::vector<Atom> FactsOf(PredId pred) const;

  /// Logical deep copy, physically copy-on-write: the clone shares every
  /// relation's tuple storage until one side mutates it. Semantically
  /// identical to the old deep copy, O(#relations) instead of O(#tuples).
  ///
  /// Thread contract (inherited from Relation's copy-on-write): Clone()
  /// must not race a mutation of *this* database's relations — a copy
  /// taken mid-mutation could share a payload being written (see
  /// Relation::Detach). Cloning an immutable database (e.g. through a
  /// DatabaseSnapshot) from many threads concurrently is safe.
  Database Clone() const;

  const std::unordered_map<PredId, Relation>& relations() const {
    return relations_;
  }

 private:
  std::unordered_map<PredId, Relation> relations_;
};

/// An immutable, shareable view of one generation of a database. Handing
/// out a snapshot is O(1); every holder reads the same consistent EDB with
/// zero tuple copying (relations stay payload-shared until a *writer* —
/// never the snapshot — detaches its own copy). Fact loads build the next
/// generation from a CoW clone and publish a new snapshot; in-flight
/// readers of older generations are unaffected.
class DatabaseSnapshot {
 public:
  DatabaseSnapshot() = default;
  DatabaseSnapshot(std::shared_ptr<const Database> db, uint64_t generation)
      : db_(std::move(db)), generation_(generation) {}

  /// Captures `db` (CoW clone) as generation `generation`.
  static DatabaseSnapshot Capture(const Database& db, uint64_t generation) {
    return DatabaseSnapshot(std::make_shared<const Database>(db.Clone()),
                            generation);
  }

  bool valid() const { return db_ != nullptr; }
  const Database& db() const { return *db_; }
  /// Keeps the underlying generation alive across detached reads.
  const std::shared_ptr<const Database>& shared() const { return db_; }
  uint64_t generation() const { return generation_; }

 private:
  std::shared_ptr<const Database> db_;
  uint64_t generation_ = 0;
};

}  // namespace exdl

#endif  // EXDL_STORAGE_DATABASE_H_
