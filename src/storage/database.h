// Database: predicate id -> Relation. Holds the EDB; during evaluation it
// also holds the growing derived relations. For *uniform* equivalence tests
// (Section 4) the input database may contain facts for IDB predicates too —
// nothing here distinguishes the two.

#ifndef EXDL_STORAGE_DATABASE_H_
#define EXDL_STORAGE_DATABASE_H_

#include <unordered_map>
#include <vector>

#include "ast/atom.h"
#include "storage/relation.h"
#include "util/status.h"

namespace exdl {

class Database {
 public:
  Database() = default;

  /// The relation for `pred`, creating an empty one of the predicate's
  /// arity on first use.
  Relation& GetOrCreate(PredId pred, uint32_t arity);

  /// The relation for `pred`, or nullptr if no tuple was ever stored.
  const Relation* Find(PredId pred) const;
  Relation* FindMutable(PredId pred);

  /// Inserts a ground atom as a fact. Fails on non-ground atoms.
  Status AddFact(const Atom& atom);

  /// Inserts a tuple for `pred`.
  bool AddTuple(PredId pred, std::span<const Value> row);

  /// Sum of all relation sizes.
  size_t TotalTuples() const;

  /// Sum of all relation arena payload bytes (Relation::arena_bytes) —
  /// the quantity EvalBudget::max_arena_bytes is measured against.
  size_t TotalArenaBytes() const;

  /// Sum of all relations' open-addressing rebuilds
  /// (Relation::rehash_count) — a storage telemetry quantity.
  uint64_t TotalRehashes() const;

  /// Number of tuples for `pred` (0 if absent).
  size_t Count(PredId pred) const;

  /// All tuples of `pred` as ground atoms (testing/debug convenience).
  std::vector<Atom> FactsOf(PredId pred) const;

  /// Deep copy.
  Database Clone() const;

  const std::unordered_map<PredId, Relation>& relations() const {
    return relations_;
  }

 private:
  std::unordered_map<PredId, Relation> relations_;
};

}  // namespace exdl

#endif  // EXDL_STORAGE_DATABASE_H_
