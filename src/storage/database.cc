#include "storage/database.h"

namespace exdl {

Relation& Database::GetOrCreate(PredId pred, uint32_t arity) {
  auto it = relations_.find(pred);
  if (it != relations_.end()) return it->second;
  return relations_.emplace(pred, Relation(arity)).first->second;
}

const Relation* Database::Find(PredId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : &it->second;
}

Relation* Database::FindMutable(PredId pred) {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : &it->second;
}

Status Database::AddFact(const Atom& atom) {
  if (!atom.IsGround()) {
    return Status::InvalidArgument("AddFact requires a ground atom");
  }
  std::vector<Value> row;
  row.reserve(atom.args.size());
  for (const Term& t : atom.args) row.push_back(t.id());
  GetOrCreate(atom.pred, static_cast<uint32_t>(atom.args.size()))
      .Insert(row);
  return Status::Ok();
}

bool Database::AddTuple(PredId pred, std::span<const Value> row) {
  return GetOrCreate(pred, static_cast<uint32_t>(row.size())).Insert(row);
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [pred, rel] : relations_) n += rel.size();
  return n;
}

size_t Database::TotalArenaBytes() const {
  size_t n = 0;
  for (const auto& [pred, rel] : relations_) n += rel.arena_bytes();
  return n;
}

uint64_t Database::TotalRehashes() const {
  uint64_t n = 0;
  for (const auto& [pred, rel] : relations_) n += rel.rehash_count();
  return n;
}

size_t Database::Count(PredId pred) const {
  const Relation* rel = Find(pred);
  return rel == nullptr ? 0 : rel->size();
}

std::vector<Atom> Database::FactsOf(PredId pred) const {
  std::vector<Atom> out;
  const Relation* rel = Find(pred);
  if (rel == nullptr) return out;
  for (size_t i = 0; i < rel->size(); ++i) {
    std::span<const Value> row = rel->view().Scan(i);
    std::vector<Term> args;
    args.reserve(row.size());
    for (Value v : row) args.push_back(Term::Const(v));
    out.emplace_back(pred, std::move(args));
  }
  return out;
}

Database Database::Clone() const {
  // Relation's copy constructor shares the tuple payload (copy-on-write),
  // so this is a map copy — no tuples move.
  Database copy;
  copy.relations_ = relations_;
  return copy;
}

}  // namespace exdl
