// Delta views over one generation boundary (DESIGN.md §16).
//
// Relation insertion order is stable, so after new facts are appended the
// suffix [watermark, size) of each relation IS that generation's delta —
// no tuples are copied, no per-tuple tags are kept. DeltaWatermarks
// snapshots the per-predicate sizes at a boundary; RelationDelta is the
// suffix view of one relation. The IVM subsystem (src/ivm) captures
// watermarks before absorbing a fact load and feeds them to the
// evaluator's resume cursor (EvalCursor::delta_lo), so the semi-naive
// delta loop joins exactly these suffixes instead of re-running round 0.

#ifndef EXDL_STORAGE_DELTA_VIEW_H_
#define EXDL_STORAGE_DELTA_VIEW_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "storage/database.h"
#include "storage/relation.h"

namespace exdl {

/// The suffix [lo, hi) of one relation: the rows appended since a
/// watermark was captured. A cheap view — spans obey the same
/// invalidation rules as Relation::View (the next mutation of the
/// underlying Relation object invalidates them).
struct RelationDelta {
  const Relation* rel = nullptr;
  uint32_t lo = 0;
  uint32_t hi = 0;

  bool empty() const { return lo >= hi; }
  size_t size() const { return lo < hi ? hi - lo : 0; }
  /// The i-th delta row (row id lo + i).
  std::span<const Value> Row(uint32_t i) const {
    return rel->view().Scan(lo + i);
  }
};

/// Per-predicate relation sizes captured at a generation boundary.
/// Predicates absent at capture time read as watermark 0, so relations
/// created by a later generation are entirely delta.
class DeltaWatermarks {
 public:
  DeltaWatermarks() = default;

  /// Snapshots every relation's current size.
  static DeltaWatermarks Capture(const Database& db) {
    DeltaWatermarks marks;
    marks.marks_.reserve(db.relations().size());
    for (const auto& [pred, rel] : db.relations()) {
      marks.marks_.emplace_back(pred, static_cast<uint32_t>(rel.size()));
    }
    std::sort(marks.marks_.begin(), marks.marks_.end());
    return marks;
  }

  /// The captured size of `pred` (0 if it did not exist yet).
  uint32_t WatermarkOf(PredId pred) const {
    auto it = std::lower_bound(
        marks_.begin(), marks_.end(), std::make_pair(pred, uint32_t{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    return it != marks_.end() && it->first == pred ? it->second : 0;
  }

  /// Predicates of `db` that grew past their watermark since capture —
  /// the extra-delta predicate set for EvalOptions::extra_delta_preds.
  /// Sorted by PredId so downstream iteration order is deterministic.
  std::vector<PredId> GrownSince(const Database& db) const {
    std::vector<PredId> grown;
    for (const auto& [pred, rel] : db.relations()) {
      if (rel.size() > WatermarkOf(pred)) grown.push_back(pred);
    }
    std::sort(grown.begin(), grown.end());
    return grown;
  }

  /// Rows past the watermark, summed over every relation of `db`.
  uint64_t RowsSince(const Database& db) const {
    uint64_t rows = 0;
    for (const auto& [pred, rel] : db.relations()) {
      const uint32_t lo = WatermarkOf(pred);
      if (rel.size() > lo) rows += rel.size() - lo;
    }
    return rows;
  }

  /// The delta suffix of `pred` in `db` (empty view if nothing grew).
  RelationDelta DeltaOf(const Database& db, PredId pred) const {
    RelationDelta delta;
    delta.rel = db.Find(pred);
    if (delta.rel == nullptr) return delta;
    delta.lo = WatermarkOf(pred);
    delta.hi = static_cast<uint32_t>(delta.rel->size());
    return delta;
  }

  /// Cursor entries for a semi-naive re-entry over `db`: one
  /// (pred, watermark) pair per relation currently in `db`, sorted by
  /// PredId — exactly the shape EvalCursor::delta_lo wants. Relations
  /// created since capture get watermark 0 (fully delta).
  std::vector<std::pair<PredId, uint32_t>> CursorEntries(
      const Database& db) const {
    std::vector<std::pair<PredId, uint32_t>> entries;
    entries.reserve(db.relations().size());
    for (const auto& [pred, rel] : db.relations()) {
      entries.emplace_back(pred, WatermarkOf(pred));
    }
    std::sort(entries.begin(), entries.end());
    return entries;
  }

 private:
  std::vector<std::pair<PredId, uint32_t>> marks_;  ///< Sorted by PredId.
};

}  // namespace exdl

#endif  // EXDL_STORAGE_DELTA_VIEW_H_
