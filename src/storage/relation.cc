#include "storage/relation.h"

#include <algorithm>

namespace exdl {

namespace {

// Open-addressing tables rehash at 7/8 load and start small; relations
// routinely hold a handful of tuples (boolean predicates, magic seeds).
constexpr size_t kMinSlots = 16;

size_t NextPow2(size_t n) {
  size_t p = kMinSlots;
  while (p < n) p <<= 1;
  return p;
}

bool NeedsGrow(size_t entries, size_t slot_count) {
  return (entries + 1) * 8 >= slot_count * 7;
}

}  // namespace

void Relation::Index::Add(const Value* key, uint32_t row_id) {
  if (slots_.empty()) slots_.assign(kMinSlots, 0);
  const size_t mask = slots_.size() - 1;
  size_t slot = HashValueSpan(key, width_) & mask;
  while (true) {
    const uint32_t g = slots_[slot];
    if (g == 0) break;
    if (KeyEquals(g - 1, std::span<const Value>(key, width_))) {
      groups_[g - 1].push_back(row_id);
      return;
    }
    slot = (slot + 1) & mask;
  }
  keys_.insert(keys_.end(), key, key + width_);
  groups_.emplace_back().push_back(row_id);
  slots_[slot] = static_cast<uint32_t>(groups_.size());
  if (NeedsGrow(groups_.size(), slots_.size())) Rehash(slots_.size() * 2);
}

void Relation::Index::Rehash(size_t new_slot_count) {
  ++rehashes_;
  slots_.assign(new_slot_count, 0);
  const size_t mask = new_slot_count - 1;
  for (size_t g = 0; g < groups_.size(); ++g) {
    size_t slot = HashValueSpan(keys_.data() + g * width_, width_) & mask;
    while (slots_[slot] != 0) slot = (slot + 1) & mask;
    slots_[slot] = static_cast<uint32_t>(g + 1);
  }
}

bool Relation::Insert(std::span<const Value> row) {
  assert(row.size() == payload_->arity);
  // `row` may alias a payload we are about to abandon; the old payload
  // stays alive through the sharer that made it shared, so the view stays
  // readable across the detach.
  Detach();
  Payload& p = *payload_;
  ++p.insert_attempts;

  // Monadic fast path: arity-1 relations answer the duplicate test from
  // the membership bitset (one word probe) and skip the open-addressing
  // table entirely — FindRow/ContainsKey for arity 1 read the bitset too,
  // so the slots table is never consulted for these relations. The arena
  // append keeps row ids and insertion order exactly as before.
  if (p.arity == 1) {
    if (!p.bits.Set(row[0])) return false;
    const uint32_t row_id = static_cast<uint32_t>(p.num_rows);
    p.data.push_back(row[0]);
    ++p.num_rows;
    UpdateIndexes(row_id);
    return true;
  }

  const size_t hash = HashValueSpan(row.data(), row.size());
  if (FindRow(hash, row) != kNoRow) return false;

  // `row` may alias our own arena (e.g. copying a relation into itself);
  // appending can reallocate the arena, so detach the view first if so.
  if (!p.data.empty() && row.data() >= p.data.data() &&
      row.data() < p.data.data() + p.data.size() &&
      p.data.size() + p.arity > p.data.capacity()) {
    proj_scratch_.assign(row.begin(), row.end());
    row = std::span<const Value>(proj_scratch_);
  }

  const uint32_t row_id = static_cast<uint32_t>(p.num_rows);
  p.data.insert(p.data.end(), row.begin(), row.end());
  ++p.num_rows;

  if (p.slots.empty()) p.slots.assign(kMinSlots, 0);
  const size_t mask = p.slots.size() - 1;
  size_t slot = hash & mask;
  while (p.slots[slot] != 0) slot = (slot + 1) & mask;
  p.slots[slot] = row_id + 1;
  if (NeedsGrow(p.num_rows, p.slots.size())) RehashSlots(p.slots.size() * 2);

  UpdateIndexes(row_id);
  return true;
}

bool Relation::LoadRows(std::span<const Value> data, size_t rows) {
  if (payload_->num_rows != 0) return false;
  if (data.size() != rows * payload_->arity) return false;
  Reserve(rows);
  const uint32_t arity = payload_->arity;
  for (size_t r = 0; r < rows; ++r) {
    if (!Insert(data.subspan(r * arity, arity))) {
      Clear();
      return false;
    }
  }
  return true;
}

void Relation::Reserve(size_t rows) {
  Detach();
  Payload& p = *payload_;
  p.data.reserve(rows * p.arity);
  // Arity-1 relations dedup through the bitset; no slots to pre-size.
  if (p.arity == 1) return;
  const size_t want = NextPow2(rows + rows / 4);
  if (want > p.slots.size()) RehashSlots(want);
}

uint64_t Relation::rehash_count() const {
  const Payload& p = *payload_;
  // Lazy index builds may run concurrently on a shared payload; take the
  // same lock they do before walking the map.
  std::lock_guard<std::mutex> lock(p.index_mu);
  uint64_t total = p.rehashes;
  for (const auto& [cols, index] : p.indexes) total += index.rehashes_;
  return total;
}

void Relation::RehashSlots(size_t new_slot_count) {
  Payload& p = *payload_;
  ++p.rehashes;
  p.slots.assign(new_slot_count, 0);
  const size_t mask = new_slot_count - 1;
  for (size_t r = 0; r < p.num_rows; ++r) {
    size_t slot = HashValueSpan(p.data.data() + r * p.arity, p.arity) & mask;
    while (p.slots[slot] != 0) slot = (slot + 1) & mask;
    p.slots[slot] = static_cast<uint32_t>(r + 1);
  }
}

void Relation::UpdateIndexes(uint32_t row_id) {
  Payload& p = *payload_;
  if (p.indexes.empty()) return;
  const Value* row = p.data.data() + static_cast<size_t>(row_id) * p.arity;
  for (auto& [cols, index] : p.indexes) {
    proj_scratch_.clear();
    for (uint32_t c : index.columns_) proj_scratch_.push_back(row[c]);
    index.Add(proj_scratch_.data(), row_id);
  }
}

const Relation::Index& Relation::GetIndex(
    const std::vector<uint32_t>& columns) const {
  Payload& p = *payload_;
  // Shared payloads have immutable tuple data but may serve several
  // sessions probing concurrently; the first to need an index builds it
  // under the lock, the rest reuse it. std::map node stability keeps the
  // returned reference valid after the lock is released.
  std::lock_guard<std::mutex> lock(p.index_mu);
  auto it = p.indexes.find(columns);
  if (it != p.indexes.end()) return it->second;
  Index& index = p.indexes[columns];
  index.columns_ = columns;
  index.width_ = columns.size();
  std::vector<Value> proj;
  proj.reserve(columns.size());
  for (uint32_t row_id = 0; row_id < p.num_rows; ++row_id) {
    const Value* row = p.data.data() + static_cast<size_t>(row_id) * p.arity;
    proj.clear();
    for (uint32_t c : columns) proj.push_back(row[c]);
    index.Add(proj.data(), row_id);
  }
  return index;
}

void Relation::Clear() {
  if (payload_.use_count() > 1) {
    // Other sharers keep the tuples; this object starts empty.
    payload_ = std::make_shared<Payload>(payload_->arity);
    return;
  }
  Payload& p = *payload_;
  p.data.clear();
  p.num_rows = 0;
  p.slots.clear();
  p.bits.Clear();
  p.indexes.clear();
}

}  // namespace exdl
