#include "storage/relation.h"

#include <algorithm>

namespace exdl {

namespace {

// Open-addressing tables rehash at 7/8 load and start small; relations
// routinely hold a handful of tuples (boolean predicates, magic seeds).
constexpr size_t kMinSlots = 16;

size_t NextPow2(size_t n) {
  size_t p = kMinSlots;
  while (p < n) p <<= 1;
  return p;
}

bool NeedsGrow(size_t entries, size_t slot_count) {
  return (entries + 1) * 8 >= slot_count * 7;
}

}  // namespace

void Relation::Index::Add(const Value* key, uint32_t row_id) {
  if (slots_.empty()) slots_.assign(kMinSlots, 0);
  const size_t mask = slots_.size() - 1;
  size_t slot = HashValueSpan(key, width_) & mask;
  while (true) {
    const uint32_t g = slots_[slot];
    if (g == 0) break;
    if (KeyEquals(g - 1, std::span<const Value>(key, width_))) {
      groups_[g - 1].push_back(row_id);
      return;
    }
    slot = (slot + 1) & mask;
  }
  keys_.insert(keys_.end(), key, key + width_);
  groups_.emplace_back().push_back(row_id);
  slots_[slot] = static_cast<uint32_t>(groups_.size());
  if (NeedsGrow(groups_.size(), slots_.size())) Rehash(slots_.size() * 2);
}

void Relation::Index::Rehash(size_t new_slot_count) {
  ++rehashes_;
  slots_.assign(new_slot_count, 0);
  const size_t mask = new_slot_count - 1;
  for (size_t g = 0; g < groups_.size(); ++g) {
    size_t slot = HashValueSpan(keys_.data() + g * width_, width_) & mask;
    while (slots_[slot] != 0) slot = (slot + 1) & mask;
    slots_[slot] = static_cast<uint32_t>(g + 1);
  }
}

bool Relation::Insert(std::span<const Value> row) {
  assert(row.size() == arity_);
  ++insert_attempts_;
  const size_t hash = HashValueSpan(row.data(), row.size());
  if (FindRow(hash, row) != kNoRow) return false;

  // `row` may alias our own arena (e.g. copying a relation into itself);
  // appending can reallocate data_, so detach the view first if so.
  if (!data_.empty() && row.data() >= data_.data() &&
      row.data() < data_.data() + data_.size() &&
      data_.size() + arity_ > data_.capacity()) {
    proj_scratch_.assign(row.begin(), row.end());
    row = std::span<const Value>(proj_scratch_);
  }

  const uint32_t row_id = static_cast<uint32_t>(num_rows_);
  data_.insert(data_.end(), row.begin(), row.end());
  ++num_rows_;

  if (slots_.empty()) slots_.assign(kMinSlots, 0);
  const size_t mask = slots_.size() - 1;
  size_t slot = hash & mask;
  while (slots_[slot] != 0) slot = (slot + 1) & mask;
  slots_[slot] = row_id + 1;
  if (NeedsGrow(num_rows_, slots_.size())) RehashSlots(slots_.size() * 2);

  UpdateIndexes(row_id);
  return true;
}

bool Relation::LoadRows(std::span<const Value> data, size_t rows) {
  if (num_rows_ != 0) return false;
  if (data.size() != rows * arity_) return false;
  Reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    if (!Insert(data.subspan(r * arity_, arity_))) {
      Clear();
      return false;
    }
  }
  return true;
}

void Relation::Reserve(size_t rows) {
  data_.reserve(rows * arity_);
  const size_t want = NextPow2(rows + rows / 4);
  if (want > slots_.size()) RehashSlots(want);
}

uint64_t Relation::rehash_count() const {
  uint64_t total = rehashes_;
  for (const auto& [cols, index] : indexes_) total += index.rehashes_;
  return total;
}

void Relation::RehashSlots(size_t new_slot_count) {
  ++rehashes_;
  slots_.assign(new_slot_count, 0);
  const size_t mask = new_slot_count - 1;
  for (size_t r = 0; r < num_rows_; ++r) {
    size_t slot = HashValueSpan(data_.data() + r * arity_, arity_) & mask;
    while (slots_[slot] != 0) slot = (slot + 1) & mask;
    slots_[slot] = static_cast<uint32_t>(r + 1);
  }
}

void Relation::UpdateIndexes(uint32_t row_id) {
  if (indexes_.empty()) return;
  const Value* row = data_.data() + static_cast<size_t>(row_id) * arity_;
  for (auto& [cols, index] : indexes_) {
    proj_scratch_.clear();
    for (uint32_t c : index.columns_) proj_scratch_.push_back(row[c]);
    index.Add(proj_scratch_.data(), row_id);
  }
}

const Relation::Index& Relation::GetIndex(
    const std::vector<uint32_t>& columns) {
  auto it = indexes_.find(columns);
  if (it != indexes_.end()) return it->second;
  Index& index = indexes_[columns];
  index.columns_ = columns;
  index.width_ = columns.size();
  for (uint32_t row_id = 0; row_id < num_rows_; ++row_id) {
    const Value* row = data_.data() + static_cast<size_t>(row_id) * arity_;
    proj_scratch_.clear();
    for (uint32_t c : columns) proj_scratch_.push_back(row[c]);
    index.Add(proj_scratch_.data(), row_id);
  }
  return index;
}

void Relation::Clear() {
  data_.clear();
  num_rows_ = 0;
  slots_.clear();
  indexes_.clear();
}

}  // namespace exdl
