#include "storage/relation.h"

#include <cassert>

namespace exdl {

bool Relation::Insert(std::span<const Value> row) {
  assert(row.size() == arity_);
  ++insert_attempts_;
  std::vector<Value> key(row.begin(), row.end());
  auto [it, inserted] =
      set_.emplace(std::move(key), static_cast<uint32_t>(rows_.size()));
  if (!inserted) return false;
  rows_.push_back(&it->first);
  uint32_t row_id = it->second;
  for (auto& [cols, index] : indexes_) {
    std::vector<Value> proj;
    proj.reserve(index.columns.size());
    for (uint32_t c : index.columns) proj.push_back(it->first[c]);
    index.map[std::move(proj)].push_back(row_id);
  }
  return true;
}

bool Relation::Contains(std::span<const Value> row) const {
  std::vector<Value> key(row.begin(), row.end());
  return set_.find(key) != set_.end();
}

const Relation::Index& Relation::GetIndex(
    const std::vector<uint32_t>& columns) {
  auto it = indexes_.find(columns);
  if (it != indexes_.end()) return it->second;
  Index& index = indexes_[columns];
  index.columns = columns;
  for (uint32_t row_id = 0; row_id < rows_.size(); ++row_id) {
    const std::vector<Value>& row = *rows_[row_id];
    std::vector<Value> proj;
    proj.reserve(columns.size());
    for (uint32_t c : columns) proj.push_back(row[c]);
    index.map[std::move(proj)].push_back(row_id);
  }
  return index;
}

void Relation::Clear() {
  set_.clear();
  rows_.clear();
  indexes_.clear();
}

}  // namespace exdl
