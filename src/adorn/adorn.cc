#include "adorn/adorn.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace exdl {
namespace {

/// Key for "adorned version of predicate" during the worklist run.
struct VersionKey {
  PredId original;
  std::string adornment;
  bool operator==(const VersionKey&) const = default;
};
struct VersionKeyHash {
  size_t operator()(const VersionKey& k) const {
    return k.original ^ (std::hash<std::string>()(k.adornment) << 1);
  }
};

}  // namespace

bool OccurrenceIsExistential(const Rule& rule, size_t body_index,
                             size_t arg_index,
                             const Adornment& head_adornment) {
  const Term& t = rule.body[body_index].args[arg_index];
  if (!t.IsVar()) return false;
  SymbolId v = t.id();
  // Any other occurrence in the body (including the same literal) makes it
  // needed.
  for (size_t i = 0; i < rule.body.size(); ++i) {
    for (size_t j = 0; j < rule.body[i].args.size(); ++j) {
      if (i == body_index && j == arg_index) continue;
      const Term& u = rule.body[i].args[j];
      if (u.IsVar() && u.id() == v) return false;
    }
  }
  // Head occurrences must all be in existential ('d') positions.
  for (size_t j = 0; j < rule.head.args.size(); ++j) {
    const Term& u = rule.head.args[j];
    if (!u.IsVar() || u.id() != v) continue;
    bool head_pos_existential =
        j < head_adornment.size() && head_adornment.existential(j);
    if (!head_pos_existential) return false;
  }
  return true;
}

Result<Program> AdornExistential(const Program& program) {
  if (!program.query()) {
    return Status::FailedPrecondition("program has no query to adorn from");
  }
  Context& ctx = program.ctx();
  const Atom& query = *program.query();
  std::unordered_set<PredId> idb = program.IdbPredicates();

  // Query over a base predicate: nothing to adorn.
  if (idb.count(query.pred) == 0) return program.Clone();

  for (PredId p : idb) {
    if (!ctx.predicate(p).adornment.empty()) {
      return Status::FailedPrecondition(
          "derived predicate '" + ctx.PredicateDisplayName(p) +
          "' is already adorned; AdornExistential expects an unadorned "
          "program");
    }
  }

  const PredicateInfo& qinfo = ctx.predicate(query.pred);
  Adornment query_adornment = qinfo.adornment.empty()
                                  ? Adornment::AllNeeded(qinfo.arity)
                                  : qinfo.adornment;

  Program adorned(program.context());
  // Map (original pred, adornment) -> adorned PredId; versions enter the
  // worklist exactly once, when first created.
  std::unordered_map<VersionKey, PredId, VersionKeyHash> versions;
  std::deque<std::pair<PredId, Adornment>> worklist;

  auto version_of = [&](PredId original, const Adornment& a) -> PredId {
    VersionKey key{original, a.str()};
    auto it = versions.find(key);
    if (it != versions.end()) return it->second;
    const PredicateInfo& info = ctx.predicate(original);
    PredId adorned_pred = ctx.InternPredicate(info.name, info.arity, a);
    versions.emplace(std::move(key), adorned_pred);
    worklist.emplace_back(original, a);
    return adorned_pred;
  };

  PredId adorned_query_pred = version_of(query.pred, query_adornment);
  while (!worklist.empty()) {
    auto [original, head_adornment] = worklist.front();
    worklist.pop_front();
    PredId head_version = version_of(original, head_adornment);
    for (const Rule& rule : program.rules()) {
      if (rule.head.pred != original) continue;
      Rule new_rule = rule;
      new_rule.head.pred = head_version;
      for (size_t b = 0; b < rule.body.size(); ++b) {
        const Atom& lit = rule.body[b];
        if (idb.count(lit.pred) == 0) continue;  // base predicates stay
        Adornment a = Adornment::AllNeeded(lit.args.size());
        // A negated literal's columns are never projectable: dropping one
        // would turn "no tuple matches" into "no tuple projects", i.e.
        // swap NOT-EXISTS for EXISTS-NOT. Keep all-needed.
        if (!lit.negated) {
          for (size_t j = 0; j < lit.args.size(); ++j) {
            if (OccurrenceIsExistential(rule, b, j, head_adornment)) {
              a.set(j, Adornment::kExistential);
            }
          }
        }
        new_rule.body[b].pred = version_of(lit.pred, a);
      }
      adorned.AddRule(std::move(new_rule));
    }
  }

  Atom adorned_query = query;
  adorned_query.pred = adorned_query_pred;
  adorned.SetQuery(std::move(adorned_query));
  return adorned;
}

}  // namespace exdl
