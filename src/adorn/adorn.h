// The existential adornment algorithm of Section 2.
//
// Starting from the query predicate's adornment (all-`n` unless the query
// atom already names an adorned version), every rule defining an adorned
// predicate is rewritten: derived body literals receive adorned versions in
// which an argument is `d` (existential) exactly when its variable occurs
// nowhere else in the rule except possibly in `d` positions of the head
// (the sufficient criterion of Lemma 2.2; the exact notion is undecidable
// by Lemma 2.1). Newly created adorned versions are processed in turn; the
// worklist terminates because each predicate has finitely many adornments.
//
// Base (EDB) predicates are never renamed — only derived predicates get
// adorned versions, as in the paper's Example 1.

#ifndef EXDL_ADORN_ADORN_H_
#define EXDL_ADORN_ADORN_H_

#include "ast/program.h"
#include "util/status.h"

namespace exdl {

/// Computes the adorned program P^{e,ad}. The result's query names the
/// adorned version of the input query predicate. Rules for adorned
/// versions not reachable from the query are not emitted.
///
/// Requires: `program` has a query; its derived predicates are unadorned
/// (adorning an already-adorned program is rejected). If the query
/// predicate is a base predicate the program is returned unchanged.
Result<Program> AdornExistential(const Program& program);

/// Per-occurrence existentiality test used by the algorithm (exposed for
/// tests): true if the variable at `arg_index` of body literal
/// `body_index` in `rule` occurs nowhere else in the rule except possibly
/// in positions of the head that `head_adornment` marks `d`. Constants are
/// never existential.
bool OccurrenceIsExistential(const Rule& rule, size_t body_index,
                             size_t arg_index,
                             const Adornment& head_adornment);

}  // namespace exdl

#endif  // EXDL_ADORN_ADORN_H_
