#include "durability/durable_edb.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "eval/evaluator.h"
#include "recovery/fault.h"

namespace exdl::durability {

namespace {

bool FaultAt(std::string_view site) {
  return FaultPlan::Global().armed() && FaultPlan::Global().ShouldFail(site);
}

bool WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

/// tmp + fsync + rename, like recovery::AtomicWriteFile, but guarded by
/// the factlog.compact_rename site (the snapshot.* sites belong to the
/// engine checkpoint path and must keep their own hit counts).
Status AtomicWriteSnapshot(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    return Status::Internal("open(" + tmp + "): " + std::strerror(errno));
  }
  if (!WriteAll(fd, data.data(), data.size())) {
    const Status failed =
        Status::Internal("write(" + tmp + "): " + std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return failed;
  }
  if (::fsync(fd) != 0) {
    const Status failed =
        Status::Internal("fsync(" + tmp + "): " + std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return failed;
  }
  ::close(fd);
  if (FaultAt("factlog.compact_rename")) {
    // The complete temp file stays behind; `path` still holds the
    // previous snapshot, so recovery is unaffected.
    return Status::Internal("injected fault at factlog.compact_rename");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status failed = Status::Internal("rename(" + tmp + " -> " + path +
                                           "): " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return failed;
  }
  return Status::Ok();
}

}  // namespace

DurableEdb::DurableEdb(DurabilityOptions options)
    : options_(std::move(options)) {}

std::string DurableEdb::SnapshotPathIn(const std::string& dir) {
  return dir + "/edb.exdl";
}

std::string DurableEdb::LogPathIn(const std::string& dir) {
  return dir + "/facts.log";
}

Status DurableEdb::Open() {
  if (options_.data_dir.empty()) {
    return Status::InvalidArgument("durable EDB data_dir is empty");
  }
  if (::mkdir(options_.data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("mkdir(" + options_.data_dir +
                            "): " + std::strerror(errno));
  }
  snapshot_.reset();
  snapshot_generation_ = 0;
  tail_.clear();
  Result<recovery::Snapshot> snap =
      recovery::ReadSnapshotFile(SnapshotPathIn(options_.data_dir));
  if (snap.ok()) {
    // The fingerprint field of an EDB snapshot carries its generation.
    snapshot_generation_ = snap->program_fingerprint;
    snapshot_ = std::move(*snap);
  } else if (snap.status().code() != StatusCode::kNotFound) {
    return snap.status();  // Corrupt snapshot: fail closed.
  }
  FactLogScan scan;
  EXDL_RETURN_IF_ERROR(log_.Open(LogPathIn(options_.data_dir), &scan));
  // Records at or below the snapshot generation were compacted into it
  // (a crash between the snapshot rename and the log truncate leaves
  // them behind); everything newer must be gap-free to replay.
  uint64_t expected = snapshot_generation_;
  for (FactRecord& record : scan.records) {
    if (record.generation <= snapshot_generation_) continue;
    if (record.generation != expected + 1) {
      return Status::CorruptCheckpoint(
          "fact log: generation gap (snapshot at " +
          std::to_string(snapshot_generation_) + ", record at " +
          std::to_string(record.generation) + " expected " +
          std::to_string(expected + 1) + ")");
    }
    expected = record.generation;
    tail_.push_back(std::move(record));
  }
  appends_since_compact_ = static_cast<uint32_t>(tail_.size());
  std::lock_guard<std::mutex> lock(counters_mu_);
  counters_.truncated_tail_bytes = scan.truncated_tail_bytes;
  counters_.snapshot_generation = snapshot_generation_;
  return Status::Ok();
}

Status DurableEdb::Append(uint64_t generation, std::string_view source) {
  EXDL_RETURN_IF_ERROR(log_.Append(generation, source));
  std::lock_guard<std::mutex> lock(counters_mu_);
  ++counters_.records_appended;
  return Status::Ok();
}

Status DurableEdb::MaybeCompact(const Context& ctx, const Database& db,
                                uint64_t generation) {
  if (options_.compact_every == 0) return Status::Ok();
  if (++appends_since_compact_ < options_.compact_every) return Status::Ok();
  const std::string bytes =
      recovery::EncodeSnapshot(ctx, db, EvalCursor{}, generation);
  EXDL_RETURN_IF_ERROR(
      AtomicWriteSnapshot(SnapshotPathIn(options_.data_dir), bytes));
  // The snapshot is durable; from here the log records it covers are
  // redundant (recovery filters by generation even if the truncate is
  // lost to a crash).
  EXDL_RETURN_IF_ERROR(log_.Truncate());
  appends_since_compact_ = 0;
  snapshot_generation_ = generation;
  std::lock_guard<std::mutex> lock(counters_mu_);
  ++counters_.compactions;
  counters_.snapshot_generation = generation;
  return Status::Ok();
}

void DurableEdb::NoteReplayed(uint64_t records) {
  std::lock_guard<std::mutex> lock(counters_mu_);
  counters_.records_replayed += records;
}

void DurableEdb::NoteRecoverySeconds(double seconds) {
  std::lock_guard<std::mutex> lock(counters_mu_);
  counters_.recovery_seconds = seconds;
}

DurabilityCounters DurableEdb::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

}  // namespace exdl::durability
