#include "durability/fact_log.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "recovery/atomic_file.h"
#include "recovery/checkpoint.h"
#include "recovery/fault.h"

namespace exdl::durability {

namespace {

constexpr char kMagic[8] = {'E', 'X', 'D', 'L', 'F', 'L', 'O', 'G'};
constexpr size_t kFrameHeaderSize = 8;  // u32 length + u32 crc.

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

Status Corrupt(const std::string& what) {
  return Status::CorruptCheckpoint("fact log: " + what);
}

bool FaultAt(std::string_view site) {
  return FaultPlan::Global().armed() && FaultPlan::Global().ShouldFail(site);
}

/// write() until done; false on any error or short kernel write.
bool WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

std::string EncodeFactLogHeader() {
  std::string out(kMagic, sizeof kMagic);
  PutU32(&out, kFactLogVersion);
  PutU32(&out, 0);  // flags
  return out;
}

std::string EncodeFactRecord(uint64_t generation, std::string_view source) {
  std::string payload;
  payload.reserve(8 + source.size());
  PutU64(&payload, generation);
  payload.append(source);
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, recovery::Crc32c(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

Result<FactLogScan> ScanFactLog(std::string_view bytes) {
  FactLogScan scan;
  if (bytes.empty()) return scan;  // A fresh, never-written log.
  const std::string header = EncodeFactLogHeader();
  if (bytes.size() < kFactLogHeaderSize) {
    // Interrupted while the header itself was being created: torn, as
    // long as what is there is a prefix of the real header.
    if (header.compare(0, bytes.size(), bytes.data(), bytes.size()) != 0) {
      return Corrupt("bad magic");
    }
    scan.truncated_tail_bytes = bytes.size();
    return scan;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return Corrupt("bad magic");
  }
  const uint32_t version = GetU32(bytes.data() + 8);
  if (version != kFactLogVersion) {
    return Corrupt("unsupported version " + std::to_string(version));
  }
  if (GetU32(bytes.data() + 12) != 0) {
    return Corrupt("unsupported flags");
  }
  size_t offset = kFactLogHeaderSize;
  scan.valid_bytes = offset;
  uint64_t prev_generation = 0;
  while (offset < bytes.size()) {
    const size_t remaining = bytes.size() - offset;
    if (remaining < kFrameHeaderSize) break;  // Torn frame header.
    const uint32_t length = GetU32(bytes.data() + offset);
    if (length < 8 || length > kMaxFactPayloadBytes) {
      // No interrupted append produces an out-of-range length (the field
      // is written before the payload, from an in-range value), so this
      // is corruption, not a tear.
      return Corrupt("record length out of range at offset " +
                     std::to_string(offset));
    }
    if (remaining - kFrameHeaderSize < length) break;  // Torn payload.
    const uint32_t stored_crc = GetU32(bytes.data() + offset + 4);
    const char* payload = bytes.data() + offset + kFrameHeaderSize;
    if (recovery::Crc32c(payload, length) != stored_crc) {
      return Corrupt("record checksum mismatch at offset " +
                     std::to_string(offset));
    }
    FactRecord record;
    record.generation = GetU64(payload);
    if (record.generation <= prev_generation) {
      return Corrupt("generations out of order at offset " +
                     std::to_string(offset));
    }
    prev_generation = record.generation;
    record.source.assign(payload + 8, length - 8);
    scan.records.push_back(std::move(record));
    offset += kFrameHeaderSize + length;
    scan.valid_bytes = offset;
  }
  scan.truncated_tail_bytes = bytes.size() - scan.valid_bytes;
  return scan;
}

FactLog::~FactLog() { Close(); }

FactLog::FactLog(FactLog&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), end_(std::exchange(other.end_, 0)) {}

FactLog& FactLog::operator=(FactLog&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    end_ = std::exchange(other.end_, 0);
  }
  return *this;
}

void FactLog::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  end_ = 0;
}

Status FactLog::Open(const std::string& path, FactLogScan* scan) {
  Close();
  Result<std::string> bytes = recovery::ReadFileToString(path);
  std::string image;
  if (bytes.ok()) {
    image = std::move(*bytes);
  } else if (bytes.status().code() != StatusCode::kNotFound) {
    return bytes.status();
  }
  EXDL_ASSIGN_OR_RETURN(*scan, ScanFactLog(image));
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::Internal("open(" + path + "): " + std::strerror(errno));
  }
  if (scan->valid_bytes < kFactLogHeaderSize) {
    // Empty or header-torn file: start from a fresh header.
    if (::ftruncate(fd_, 0) != 0) {
      return Status::Internal("ftruncate(" + path +
                              "): " + std::strerror(errno));
    }
    const std::string header = EncodeFactLogHeader();
    if (!WriteAll(fd_, header.data(), header.size())) {
      return Status::Internal("write header(" + path +
                              "): " + std::strerror(errno));
    }
    end_ = kFactLogHeaderSize;
  } else {
    // Repair the torn tail in place; complete records are untouched.
    if (scan->truncated_tail_bytes > 0 &&
        ::ftruncate(fd_, static_cast<off_t>(scan->valid_bytes)) != 0) {
      return Status::Internal("ftruncate(" + path +
                              "): " + std::strerror(errno));
    }
    end_ = scan->valid_bytes;
  }
  if (::fsync(fd_) != 0) {
    return Status::Internal("fsync(" + path + "): " + std::strerror(errno));
  }
  if (::lseek(fd_, static_cast<off_t>(end_), SEEK_SET) < 0) {
    return Status::Internal("lseek(" + path + "): " + std::strerror(errno));
  }
  return Status::Ok();
}

Status FactLog::Append(uint64_t generation, std::string_view source) {
  if (fd_ < 0) return Status::FailedPrecondition("fact log is not open");
  const std::string record = EncodeFactRecord(generation, source);
  const uint64_t before = end_;
  // Any failure past this point — injected or real — unwinds the file to
  // `before` so an in-process retry sees a clean log. Only a hard crash
  // (the ":abort" fault, a real SIGKILL) leaves the torn tail behind.
  auto unwind = [&](std::string what) {
    ::ftruncate(fd_, static_cast<off_t>(before));
    ::lseek(fd_, static_cast<off_t>(before), SEEK_SET);
    return Status::Internal(std::move(what));
  };
  if (FaultPlan::Global().armed()) {
    // Split write so an abort at factlog.append dies with a half-written
    // frame on disk — the torn-tail shape recovery must repair.
    const size_t half = record.size() / 2;
    if (!WriteAll(fd_, record.data(), half)) {
      return unwind(std::string("fact log append: ") + std::strerror(errno));
    }
    if (FaultAt("factlog.append")) {
      return unwind("injected fault at factlog.append (short write)");
    }
    if (!WriteAll(fd_, record.data() + half, record.size() - half)) {
      return unwind(std::string("fact log append: ") + std::strerror(errno));
    }
  } else if (!WriteAll(fd_, record.data(), record.size())) {
    return unwind(std::string("fact log append: ") + std::strerror(errno));
  }
  if (FaultAt("factlog.fsync")) {
    return unwind("injected fault at factlog.fsync");
  }
  if (::fsync(fd_) != 0) {
    return unwind(std::string("fact log fsync: ") + std::strerror(errno));
  }
  end_ = before + record.size();
  return Status::Ok();
}

Status FactLog::Truncate() {
  if (fd_ < 0) return Status::FailedPrecondition("fact log is not open");
  if (::ftruncate(fd_, static_cast<off_t>(kFactLogHeaderSize)) != 0) {
    return Status::Internal(std::string("fact log truncate: ") +
                            std::strerror(errno));
  }
  if (::fsync(fd_) != 0) {
    return Status::Internal(std::string("fact log fsync: ") +
                            std::strerror(errno));
  }
  if (::lseek(fd_, static_cast<off_t>(kFactLogHeaderSize), SEEK_SET) < 0) {
    return Status::Internal(std::string("fact log lseek: ") +
                            std::strerror(errno));
  }
  end_ = kFactLogHeaderSize;
  return Status::Ok();
}

}  // namespace exdl::durability
