// Durable EDB directory (DESIGN.md §15): the fact log plus its periodic
// compaction into a §11-style snapshot.
//
// A data directory holds two files:
//
//   edb.exdl    the newest compacted EDB snapshot (the §11 checkpoint
//               format: interning tables + every relation + a CRC32C;
//               the cursor section is a default cursor and the
//               fingerprint field carries the snapshot's generation)
//   facts.log   the write-ahead fact log of every LoadFacts since that
//               snapshot (fact_log.h)
//
// Write path ordering contract (the whole point):
//
//   1. Append(generation, source) — record fsync'd to facts.log;
//   2. only then does the QueryService publish the new generation;
//   3. every compact_every appends, MaybeCompact writes the whole EDB
//      as a snapshot (tmp + fsync + rename, the factlog.compact_rename
//      fault site guarding the rename) and truncates the log, keeping
//      replay cost O(recent loads) instead of O(daemon lifetime).
//
// A crash between the snapshot rename and the log truncate is benign:
// recovery filters replay records to generation > snapshot generation.
//
// Recovery (Open) loads the newest valid snapshot, scans the log with
// torn-tail repair, and exposes the filtered replay tail; the service
// layer (service/edb_recovery.h) replays it through the compile
// turnstile. Mid-log corruption, a corrupt snapshot, or a generation gap
// all fail closed with kCorruptCheckpoint.

#ifndef EXDL_DURABILITY_DURABLE_EDB_H_
#define EXDL_DURABILITY_DURABLE_EDB_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "durability/fact_log.h"
#include "recovery/checkpoint.h"
#include "util/status.h"

namespace exdl::durability {

struct DurabilityOptions {
  /// Directory holding edb.exdl + facts.log; created if absent.
  std::string data_dir;
  /// Appends between compactions; 0 = never compact (the log only grows).
  uint32_t compact_every = 8;
};

/// Monotonic counters for the "daemon" -> "durability" telemetry object
/// (tools/metrics_schema.json) and test assertions.
struct DurabilityCounters {
  uint64_t records_appended = 0;
  uint64_t records_replayed = 0;
  uint64_t truncated_tail_bytes = 0;  ///< Torn bytes cut at the last Open.
  uint64_t compactions = 0;
  uint64_t snapshot_generation = 0;   ///< Generation of the newest snapshot.
  double recovery_seconds = 0;        ///< Wall-clock of the last recovery.
};

class DurableEdb {
 public:
  explicit DurableEdb(DurabilityOptions options);
  DurableEdb(const DurableEdb&) = delete;
  DurableEdb& operator=(const DurableEdb&) = delete;

  /// Creates the directory if needed, loads the newest valid snapshot,
  /// opens the log (repairing a torn tail), and filters the replay tail.
  /// Fails closed with kCorruptCheckpoint on any damaged state.
  Status Open();

  /// The recovered snapshot, if one had been compacted. Valid after Open.
  const std::optional<recovery::Snapshot>& snapshot() const {
    return snapshot_;
  }
  /// Generation the recovered snapshot represents (0 = none).
  uint64_t snapshot_generation() const { return snapshot_generation_; }
  /// Log records newer than the snapshot, in replay (generation) order.
  const std::vector<FactRecord>& tail() const { return tail_; }

  /// WAL hook for QueryService::LoadFacts: fsyncs the record before the
  /// caller publishes `generation`. Consults factlog.append/factlog.fsync.
  Status Append(uint64_t generation, std::string_view source);

  /// Post-publish hook: every compact_every-th append snapshots (ctx, db)
  /// at `generation` and truncates the log. A failure (injected
  /// factlog.compact_rename, real I/O error) is non-fatal to the load —
  /// the previous snapshot plus the intact log still recover everything —
  /// so callers may ignore the status; the next append retries.
  Status MaybeCompact(const Context& ctx, const Database& db,
                      uint64_t generation);

  /// Metric hooks for the recovery driver.
  void NoteReplayed(uint64_t records);
  void NoteRecoverySeconds(double seconds);

  DurabilityCounters counters() const;

  const DurabilityOptions& options() const { return options_; }

  static std::string SnapshotPathIn(const std::string& dir);
  static std::string LogPathIn(const std::string& dir);

 private:
  DurabilityOptions options_;
  std::optional<recovery::Snapshot> snapshot_;
  uint64_t snapshot_generation_ = 0;
  std::vector<FactRecord> tail_;
  FactLog log_;
  uint32_t appends_since_compact_ = 0;

  mutable std::mutex counters_mu_;
  DurabilityCounters counters_;
};

}  // namespace exdl::durability

#endif  // EXDL_DURABILITY_DURABLE_EDB_H_
