// Write-ahead fact log (DESIGN.md §15).
//
// The FactLog makes `exdld`'s extensional database durable: every
// QueryService::LoadFacts appends one record — the new snapshot
// generation id plus the verbatim facts source bytes — and fsyncs it
// *before* the generation is published. A restarted daemon replays the
// records through the normal parse/intern path, so a crash loses at most
// the one record whose fsync never completed and recovered answers are
// byte-identical to a daemon that never died.
//
// On-disk layout (all integers little-endian):
//
//   header   "EXDLFLOG" magic, u32 version, u32 flags        (16 bytes)
//   record   u32 payload_len, u32 crc32c(payload), payload
//   payload  u64 generation, facts source bytes
//
// Corruption policy, the load-bearing distinction of the format:
//
//   * torn tail   a record whose frame is incomplete at EOF — the only
//     shape an interrupted append can leave, because appends write
//     front-to-back. The tail is truncated and every complete record
//     before it is kept (the lost record was never acknowledged: its
//     generation was published only after a successful fsync).
//   * mid-log corruption   a structurally impossible frame (length out
//     of range, checksum mismatch over a complete payload, generations
//     out of order). No crash produces these — they mean bit rot or
//     tampering — so the scan fails closed with kCorruptCheckpoint
//     rather than silently dropping acknowledged facts.
//
// ScanFactLog is fully bounds-checked and must never crash or hang on
// hostile bytes (the fuzz_factlog harness enforces this).

#ifndef EXDL_DURABILITY_FACT_LOG_H_
#define EXDL_DURABILITY_FACT_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace exdl::durability {

/// Current log format version; scans accept exactly this version.
inline constexpr uint32_t kFactLogVersion = 1;

/// Byte size of the file header ("EXDLFLOG" + version + flags).
inline constexpr size_t kFactLogHeaderSize = 16;

/// Upper bound on one record's payload (generation + source bytes). A
/// length field above it cannot come from a real append, so the scan
/// fails closed instead of treating a bit-flipped length as a torn tail.
inline constexpr uint32_t kMaxFactPayloadBytes = 64u << 20;

/// One replayable LoadFacts call.
struct FactRecord {
  uint64_t generation = 0;  ///< EDB snapshot generation the load published.
  std::string source;       ///< Verbatim facts source bytes.

  friend bool operator==(const FactRecord& a, const FactRecord& b) {
    return a.generation == b.generation && a.source == b.source;
  }
};

/// Result of scanning a log image.
struct FactLogScan {
  std::vector<FactRecord> records;
  /// Offset one past the last complete record (>= header size for any
  /// non-empty valid log). Recovery truncates the file to this length.
  uint64_t valid_bytes = 0;
  /// Bytes past valid_bytes: the torn tail an interrupted append left.
  uint64_t truncated_tail_bytes = 0;
};

/// The canonical 16-byte file header.
std::string EncodeFactLogHeader();

/// Serializes one record frame (length, checksum, generation, source).
std::string EncodeFactRecord(uint64_t generation, std::string_view source);

/// Scans a whole log image. Returns the complete records plus torn-tail
/// accounting, or kCorruptCheckpoint for mid-log corruption (see the
/// policy above). An empty input is a valid empty log.
Result<FactLogScan> ScanFactLog(std::string_view bytes);

/// An open, append-only fact log file. Not internally synchronized: the
/// QueryService serializes Append/Truncate under its own state mutex.
class FactLog {
 public:
  FactLog() = default;
  ~FactLog();
  FactLog(FactLog&&) noexcept;
  FactLog& operator=(FactLog&&) noexcept;
  FactLog(const FactLog&) = delete;
  FactLog& operator=(const FactLog&) = delete;

  /// Opens (creating if absent) the log at `path`, scans it, and repairs
  /// a torn tail in place (ftruncate to the last complete record). The
  /// scan — records to replay plus how many tail bytes were cut — lands
  /// in `*scan`. Mid-log corruption fails closed with kCorruptCheckpoint
  /// and leaves the file untouched for inspection.
  Status Open(const std::string& path, FactLogScan* scan);

  /// Appends one record and fsyncs it. Consults the factlog.append
  /// (short write) and factlog.fsync fault sites; on any failure —
  /// injected or real — the file is truncated back to its pre-append
  /// length, so an in-process retry appends to a clean log. Only a hard
  /// crash mid-append leaves a torn tail, which the next Open repairs.
  Status Append(uint64_t generation, std::string_view source);

  /// Discards every record (truncates back to the bare header + fsync).
  /// Called after a compaction snapshot has durably landed.
  Status Truncate();

  /// Bytes currently in the log, header included.
  uint64_t size_bytes() const { return end_; }

  bool is_open() const { return fd_ >= 0; }

 private:
  void Close();

  int fd_ = -1;
  uint64_t end_ = 0;  ///< Current end-of-log offset (== file size).
};

}  // namespace exdl::durability

#endif  // EXDL_DURABILITY_FACT_LOG_H_
