// Lexer for the concrete Datalog syntax.
//
//   program   := clause*
//   clause    := atom ( ":-" atom ("," atom)* )? "."
//              | "?-" atom "."
//   atom      := pred ( "(" term ("," term)* ")" )?
//   pred      := ident ( "@" ident )?          -- optional adornment
//   term      := VARIABLE | ident | INTEGER | "_"
//
// Identifiers starting with a lower-case letter (or digits) are constants /
// predicate names; identifiers starting with an upper-case letter or "_"
// are variables (Prolog convention). "%" and "#" start line comments.

#ifndef EXDL_PARSER_LEXER_H_
#define EXDL_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace exdl {

/// Input-governance limits. Tokenize rejects (kInvalidArgument) anything
/// beyond them so that adversarial input cannot drive memory or token
/// counts unboundedly before the parser ever sees it.
inline constexpr size_t kMaxSourceBytes = 64u << 20;  ///< 64 MiB of source.
inline constexpr size_t kMaxIdentifierLength = 4096;  ///< Bytes per token.

enum class TokenKind {
  kIdent,      ///< lower-case identifier or integer literal (a constant name)
  kVariable,   ///< upper-case / underscore identifier
  kLParen,
  kRParen,
  kComma,
  kDot,
  kImplies,    ///< ":-"
  kQuery,      ///< "?-"
  kAt,         ///< "@"
  kEof,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 1;
  int column = 1;
};

/// Tokenizes `source` in one pass; the final token is always kEof.
Result<std::vector<Token>> Tokenize(std::string_view source);

/// Debug name of a token kind.
std::string_view TokenKindName(TokenKind kind);

}  // namespace exdl

#endif  // EXDL_PARSER_LEXER_H_
