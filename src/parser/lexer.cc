#include "parser/lexer.h"

#include <cctype>

namespace exdl {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'';
}

}  // namespace

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kImplies: return "':-'";
    case TokenKind::kQuery: return "'?-'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view source) {
  if (source.size() > kMaxSourceBytes) {
    return Status::InvalidArgument(
        "source is " + std::to_string(source.size()) +
        " bytes, above the input limit of " +
        std::to_string(kMaxSourceBytes));
  }
  std::vector<Token> out;
  int line = 1;
  int col = 1;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string text) {
    out.push_back(Token{kind, std::move(text), line, col});
  };
  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      col = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++col;
      ++i;
      continue;
    }
    if (c == '%' || c == '#') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (c == '(') { push(TokenKind::kLParen, "("); ++i; ++col; continue; }
    if (c == ')') { push(TokenKind::kRParen, ")"); ++i; ++col; continue; }
    if (c == ',') { push(TokenKind::kComma, ","); ++i; ++col; continue; }
    if (c == '.') { push(TokenKind::kDot, "."); ++i; ++col; continue; }
    if (c == '@') { push(TokenKind::kAt, "@"); ++i; ++col; continue; }
    if (c == ':') {
      if (i + 1 < source.size() && source[i + 1] == '-') {
        push(TokenKind::kImplies, ":-");
        i += 2;
        col += 2;
        continue;
      }
      return Status::InvalidArgument("line " + std::to_string(line) +
                                     ": expected ':-' after ':'");
    }
    if (c == '?') {
      if (i + 1 < source.size() && source[i + 1] == '-') {
        push(TokenKind::kQuery, "?-");
        i += 2;
        col += 2;
        continue;
      }
      return Status::InvalidArgument("line " + std::to_string(line) +
                                     ": expected '?-' after '?'");
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i]))) {
        ++i;
      }
      if (i - start > kMaxIdentifierLength) {
        return Status::InvalidArgument(
            "line " + std::to_string(line) + ": integer literal longer than " +
            std::to_string(kMaxIdentifierLength) + " characters");
      }
      std::string text(source.substr(start, i - start));
      col += static_cast<int>(i - start);
      push(TokenKind::kIdent, std::move(text));  // integer constants
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < source.size() && IsIdentChar(source[i])) ++i;
      if (i - start > kMaxIdentifierLength) {
        return Status::InvalidArgument(
            "line " + std::to_string(line) + ": identifier longer than " +
            std::to_string(kMaxIdentifierLength) + " characters");
      }
      std::string text(source.substr(start, i - start));
      col += static_cast<int>(i - start);
      bool is_var = std::isupper(static_cast<unsigned char>(c)) || c == '_';
      push(is_var ? TokenKind::kVariable : TokenKind::kIdent, std::move(text));
      continue;
    }
    return Status::InvalidArgument("line " + std::to_string(line) +
                                   ": unexpected character '" +
                                   std::string(1, c) + "'");
  }
  out.push_back(Token{TokenKind::kEof, "", line, col});
  return out;
}

}  // namespace exdl
