// Recursive-descent parser producing a Program (rules + query) and the
// ground facts found in the input.
//
// Following the paper (Section 1.1), facts are not part of the IDB: every
// ground, body-less clause is returned separately in `facts` so callers can
// load them into a Database. A non-ground body-less clause is an error.

#ifndef EXDL_PARSER_PARSER_H_
#define EXDL_PARSER_PARSER_H_

#include <string_view>
#include <vector>

#include "ast/program.h"
#include "util/status.h"

namespace exdl {

/// Structural governance limits, enforced with kInvalidArgument. Together
/// with the lexer's kMaxSourceBytes / kMaxIdentifierLength they bound every
/// dimension an adversarial input could grow (the grammar is flat, so there
/// is no recursion depth to bound). PlanOptions::max_body_literals is the
/// matching backstop for programs built through the API.
inline constexpr size_t kMaxAtomArgs = 1024;      ///< Arguments per atom.
inline constexpr size_t kMaxBodyLiterals = 4096;  ///< Literals per rule body.
inline constexpr size_t kMaxClauses = 1u << 20;   ///< Clauses per program.

/// Result of parsing one source text.
struct ParsedUnit {
  Program program;          ///< Rules and (optional) query.
  std::vector<Atom> facts;  ///< Ground facts destined for the EDB.

  explicit ParsedUnit(ContextPtr ctx) : program(std::move(ctx)) {}
};

/// Parses a whole program. Interns into `ctx` (shared with the result).
Result<ParsedUnit> ParseProgram(std::string_view source, ContextPtr ctx);

/// Parses a single atom, e.g. "a@nd(X, 7)". Convenience for tests/tools.
Result<Atom> ParseAtom(std::string_view source, Context* ctx);

/// Parses a single rule (with trailing '.' optional).
Result<Rule> ParseRule(std::string_view source, Context* ctx);

}  // namespace exdl

#endif  // EXDL_PARSER_PARSER_H_
