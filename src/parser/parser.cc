#include "parser/parser.h"

#include <cassert>

#include "parser/lexer.h"

namespace exdl {
namespace {

/// Token-stream cursor with one-token lookahead.
class ParserImpl {
 public:
  ParserImpl(std::vector<Token> tokens, Context* ctx)
      : tokens_(std::move(tokens)), ctx_(ctx) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool At(TokenKind kind) const { return Peek().kind == kind; }

  Status Expect(TokenKind kind) {
    if (!At(kind)) {
      return Status::InvalidArgument(
          "line " + std::to_string(Peek().line) + ": expected " +
          std::string(TokenKindName(kind)) + " but found " +
          std::string(TokenKindName(Peek().kind)) +
          (Peek().text.empty() ? "" : " '" + Peek().text + "'"));
    }
    Advance();
    return Status::Ok();
  }

  /// body_literal := "not" atom | atom
  ///
  /// "not" is a soft keyword: it negates only when another identifier
  /// follows, so a predicate named `not` still parses (e.g. `not.` or
  /// `not(X)`).
  Result<Atom> ParseBodyLiteral() {
    if (At(TokenKind::kIdent) && Peek().text == "not" &&
        tokens_[pos_ + 1].kind == TokenKind::kIdent) {
      Advance();
      EXDL_ASSIGN_OR_RETURN(Atom atom, ParseAtomNode());
      atom.negated = true;
      return atom;
    }
    return ParseAtomNode();
  }

  /// atom := pred ("@" adorn)? ("(" term ("," term)* ")")?
  Result<Atom> ParseAtomNode() {
    if (!At(TokenKind::kIdent)) {
      return Status::InvalidArgument(
          "line " + std::to_string(Peek().line) +
          ": expected predicate name, found " +
          std::string(TokenKindName(Peek().kind)));
    }
    std::string name = Advance().text;
    Adornment adornment;
    if (At(TokenKind::kAt)) {
      Advance();
      if (!At(TokenKind::kIdent)) {
        return Status::InvalidArgument("line " + std::to_string(Peek().line) +
                                       ": expected adornment after '@'");
      }
      EXDL_ASSIGN_OR_RETURN(adornment, Adornment::Parse(Advance().text));
    }
    std::vector<Term> args;
    if (At(TokenKind::kLParen)) {
      Advance();
      for (;;) {
        if (args.size() >= kMaxAtomArgs) {
          return Status::InvalidArgument(
              "line " + std::to_string(Peek().line) + ": atom '" + name +
              "' has more than " + std::to_string(kMaxAtomArgs) +
              " arguments");
        }
        EXDL_ASSIGN_OR_RETURN(Term t, ParseTermNode());
        args.push_back(t);
        if (At(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
      EXDL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    }
    if (!adornment.empty() && adornment.size() < args.size()) {
      return Status::InvalidArgument(
          "predicate '" + name + "': adornment '" + adornment.str() +
          "' shorter than argument list (" + std::to_string(args.size()) +
          ")");
    }
    PredId pred = ctx_->InternPredicate(
        name, static_cast<uint32_t>(args.size()), adornment);
    return Atom(pred, std::move(args));
  }

  Result<Term> ParseTermNode() {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kVariable) {
      Advance();
      if (tok.text == "_") {
        // Anonymous variable: fresh on every occurrence, as in the paper's
        // rewritten rules ("we have replaced existential variables by _").
        return Term::Var(ctx_->FreshSymbol("_"));
      }
      return Term::Var(ctx_->InternSymbol(tok.text));
    }
    if (tok.kind == TokenKind::kIdent) {
      Advance();
      return Term::Const(ctx_->InternSymbol(tok.text));
    }
    return Status::InvalidArgument("line " + std::to_string(tok.line) +
                                   ": expected term, found " +
                                   std::string(TokenKindName(tok.kind)));
  }

  /// clause := atom (":-" atoms)? "." | "?-" atom "."
  Status ParseClause(ParsedUnit* unit) {
    if (At(TokenKind::kQuery)) {
      Advance();
      EXDL_ASSIGN_OR_RETURN(Atom q, ParseAtomNode());
      EXDL_RETURN_IF_ERROR(Expect(TokenKind::kDot));
      if (unit->program.query()) {
        return Status::InvalidArgument("multiple '?-' queries in program");
      }
      unit->program.SetQuery(std::move(q));
      return Status::Ok();
    }
    EXDL_ASSIGN_OR_RETURN(Atom head, ParseAtomNode());
    if (At(TokenKind::kImplies)) {
      Advance();
      std::vector<Atom> body;
      for (;;) {
        if (body.size() >= kMaxBodyLiterals) {
          return Status::InvalidArgument(
              "line " + std::to_string(Peek().line) +
              ": rule body has more than " +
              std::to_string(kMaxBodyLiterals) + " literals");
        }
        EXDL_ASSIGN_OR_RETURN(Atom a, ParseBodyLiteral());
        body.push_back(std::move(a));
        if (At(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
      EXDL_RETURN_IF_ERROR(Expect(TokenKind::kDot));
      unit->program.AddRule(Rule(std::move(head), std::move(body)));
      return Status::Ok();
    }
    EXDL_RETURN_IF_ERROR(Expect(TokenKind::kDot));
    if (!head.IsGround()) {
      return Status::InvalidArgument(
          "fact with variables is not allowed (the IDB holds no facts): " +
          std::to_string(head.args.size()) + "-ary clause");
    }
    unit->facts.push_back(std::move(head));
    return Status::Ok();
  }

  bool AtEof() const { return At(TokenKind::kEof); }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Context* ctx_;
};

}  // namespace

Result<ParsedUnit> ParseProgram(std::string_view source, ContextPtr ctx) {
  assert(ctx != nullptr);
  EXDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  ParsedUnit unit(ctx);
  ParserImpl impl(std::move(tokens), ctx.get());
  size_t clauses = 0;
  while (!impl.AtEof()) {
    if (++clauses > kMaxClauses) {
      return Status::InvalidArgument("program has more than " +
                                     std::to_string(kMaxClauses) +
                                     " clauses");
    }
    EXDL_RETURN_IF_ERROR(impl.ParseClause(&unit));
  }
  return unit;
}

Result<Atom> ParseAtom(std::string_view source, Context* ctx) {
  EXDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  ParserImpl impl(std::move(tokens), ctx);
  EXDL_ASSIGN_OR_RETURN(Atom atom, impl.ParseAtomNode());
  if (impl.At(TokenKind::kDot)) impl.Advance();
  if (!impl.AtEof()) {
    return Status::InvalidArgument("trailing input after atom");
  }
  return atom;
}

Result<Rule> ParseRule(std::string_view source, Context* ctx) {
  EXDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  ParserImpl impl(std::move(tokens), ctx);
  EXDL_ASSIGN_OR_RETURN(Atom head, impl.ParseAtomNode());
  std::vector<Atom> body;
  if (impl.At(TokenKind::kImplies)) {
    impl.Advance();
    for (;;) {
      if (body.size() >= kMaxBodyLiterals) {
        return Status::InvalidArgument("rule body has more than " +
                                       std::to_string(kMaxBodyLiterals) +
                                       " literals");
      }
      EXDL_ASSIGN_OR_RETURN(Atom a, impl.ParseBodyLiteral());
      body.push_back(std::move(a));
      if (impl.At(TokenKind::kComma)) {
        impl.Advance();
        continue;
      }
      break;
    }
  }
  if (impl.At(TokenKind::kDot)) impl.Advance();
  if (!impl.AtEof()) {
    return Status::InvalidArgument("trailing input after rule");
  }
  return Rule(std::move(head), std::move(body));
}

}  // namespace exdl
