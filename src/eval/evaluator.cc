#include "eval/evaluator.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "analysis/stratification.h"

namespace exdl {

EvalStats& EvalStats::operator+=(const EvalStats& o) {
  rounds += o.rounds;
  rule_firings += o.rule_firings;
  tuples_inserted += o.tuples_inserted;
  duplicate_inserts += o.duplicate_inserts;
  index_probes += o.index_probes;
  rows_matched += o.rows_matched;
  rules_retired += o.rules_retired;
  return *this;
}

std::string EvalStats::ToString() const {
  std::string out;
  out += "rounds=" + std::to_string(rounds);
  out += " firings=" + std::to_string(rule_firings);
  out += " inserted=" + std::to_string(tuples_inserted);
  out += " duplicates=" + std::to_string(duplicate_inserts);
  out += " probes=" + std::to_string(index_probes);
  out += " rows=" + std::to_string(rows_matched);
  out += " retired=" + std::to_string(rules_retired);
  return out;
}

namespace {

struct RowRange {
  uint32_t lo = 0;
  uint32_t hi = 0;
  bool empty() const { return lo >= hi; }
};

/// A buffered derivation: head tuple awaiting end-of-round flush (so that
/// index row-id lists are never mutated while being iterated).
struct PendingFact {
  PredId pred;
  std::vector<Value> row;
  Provenance prov;  ///< Only filled when recording provenance.
};

class Engine {
 public:
  Engine(const Program& program, const EvalOptions& options)
      : program_(program), options_(options) {}

  Result<EvalResult> Run(const Database& input) {
    EXDL_RETURN_IF_ERROR(Compile());
    EvalResult result;
    result.db = input.Clone();
    db_ = &result.db;
    idb_preds_ = program_.IdbPredicates();

    // Stratify when negation is present; otherwise one stratum.
    std::vector<std::vector<size_t>> strata;
    if (program_.HasNegation()) {
      EXDL_ASSIGN_OR_RETURN(Stratification st, Stratify(program_));
      strata.resize(static_cast<size_t>(st.num_strata));
      for (size_t i = 0; i < rules_.size(); ++i) {
        strata[static_cast<size_t>(
                   st.StratumOf(rules_[i].plan.head_pred))]
            .push_back(i);
      }
    } else {
      strata.emplace_back();
      for (size_t i = 0; i < rules_.size(); ++i) strata[0].push_back(i);
    }

    // Make sure head relations exist so sizes/deltas are well defined.
    for (const CompiledRule& cr : rules_) {
      db_->GetOrCreate(cr.plan.head_pred,
                       static_cast<uint32_t>(cr.plan.head_args.size()));
    }

    bool stop = false;
    for (const std::vector<size_t>& stratum : strata) {
      if (stop) break;
      EXDL_RETURN_IF_ERROR(RunFixpoint(stratum, &stop));
    }

    result.stats = stats_;
    result.provenance = std::move(provenance_);
    if (program_.query()) {
      result.answers = ExtractAnswers(*program_.query(), result.db);
      if (program_.query()->IsGround()) {
        result.ground_query_true = !result.answers.empty() || GroundQueryIn();
      }
    }
    return result;
  }

 private:
  /// Semi-naive (or naive) fixpoint over one stratum's rules. Relations of
  /// lower strata are fixed; only this stratum's head predicates grow.
  Status RunFixpoint(const std::vector<size_t>& rule_indices, bool* stop) {
    std::unordered_set<PredId> growing;
    for (size_t i : rule_indices) {
      growing.insert(rules_[i].plan.head_pred);
    }
    // Delta variants are only needed for body literals over predicates
    // that can still grow.
    auto delta_steps = [&](const CompiledRule& cr) {
      std::vector<size_t> out;
      for (size_t s : cr.idb_steps) {
        if (growing.count(cr.plan.steps[s].pred) > 0) out.push_back(s);
      }
      return out;
    };

    // Round 0: fire every rule of the stratum over the full database.
    std::vector<PendingFact> buffer;
    std::unordered_map<PredId, uint32_t> start = Sizes();
    for (size_t i : rule_indices) {
      FireVariant(rules_[i], /*delta_step=*/kNoDelta, start, start, &buffer);
    }
    std::unordered_map<PredId, uint32_t> delta_lo = start;
    Flush(&buffer);
    ++stats_.rounds;
    ApplyBooleanCut();

    *stop = ShouldStopOnGroundQuery();
    while (!*stop) {
      std::unordered_map<PredId, uint32_t> new_start = Sizes();
      bool any_delta = false;
      for (const auto& [pred, sz] : new_start) {
        if (growing.count(pred) > 0 && delta_lo[pred] < sz) {
          any_delta = true;
          break;
        }
      }
      if (!any_delta) break;
      if (options_.max_rounds != 0 && stats_.rounds >= options_.max_rounds) {
        return Status::FailedPrecondition(
            "fixpoint did not converge within max_rounds");
      }
      for (size_t i : rule_indices) {
        const CompiledRule& cr = rules_[i];
        if (retired_.count(cr.rule_index) > 0) continue;
        if (options_.seminaive) {
          // One variant per growing body literal: that literal reads the
          // delta, the others read the pre-round database.
          for (size_t step : delta_steps(cr)) {
            PredId p = cr.plan.steps[step].pred;
            if (delta_lo[p] >= new_start[p]) continue;  // empty delta
            FireVariant(cr, step, new_start, delta_lo, &buffer);
          }
        } else if (!delta_steps(cr).empty()) {
          // Naive: refire over full relations (rules with no growing body
          // literal can produce nothing new after round 0).
          FireVariant(cr, kNoDelta, new_start, new_start, &buffer);
        }
      }
      for (auto& [pred, sz] : new_start) delta_lo[pred] = sz;
      Flush(&buffer);
      ++stats_.rounds;
      ApplyBooleanCut();
      *stop = ShouldStopOnGroundQuery();
    }
    return Status::Ok();
  }

 private:
  static constexpr size_t kNoDelta = static_cast<size_t>(-1);

  struct CompiledRule {
    RulePlan plan;
    std::vector<size_t> idb_steps;  ///< Step indices over derived predicates.
    size_t rule_index = 0;
    /// Head has no registers (0-ary or all-constant): at most one tuple
    /// can ever be derived, so the first witness suffices (Section 3.1's
    /// cut) and the rule can retire once the tuple exists.
    bool single_tuple_head = false;
  };

  Status Compile() {
    std::unordered_set<PredId> idb = program_.IdbPredicates();
    for (size_t i = 0; i < program_.rules().size(); ++i) {
      EXDL_ASSIGN_OR_RETURN(RulePlan plan,
                            CompileRule(program_.rules()[i], options_.plan));
      CompiledRule cr;
      cr.plan = std::move(plan);
      cr.rule_index = i;
      for (size_t s = 0; s < cr.plan.steps.size(); ++s) {
        if (idb.count(cr.plan.steps[s].pred) > 0) cr.idb_steps.push_back(s);
      }
      cr.single_tuple_head = true;
      for (const ArgSpec& a : cr.plan.head_args) {
        if (a.kind == ArgSpec::Kind::kReg) cr.single_tuple_head = false;
      }
      rules_.push_back(std::move(cr));
    }
    return Status::Ok();
  }

  std::unordered_map<PredId, uint32_t> Sizes() const {
    std::unordered_map<PredId, uint32_t> out;
    for (const auto& [pred, rel] : db_->relations()) {
      out[pred] = static_cast<uint32_t>(rel.size());
    }
    return out;
  }

  std::vector<Value> SingleHeadTuple(const CompiledRule& cr) const {
    std::vector<Value> tuple;
    tuple.reserve(cr.plan.head_args.size());
    for (const ArgSpec& a : cr.plan.head_args) tuple.push_back(a.const_value);
    return tuple;
  }

  /// Fires one rule variant. `delta_step` designates the step reading only
  /// [delta_lo, start) of its relation (kNoDelta = none; all steps read
  /// [0, start)).
  void FireVariant(const CompiledRule& cr, size_t delta_step,
                   const std::unordered_map<PredId, uint32_t>& start,
                   const std::unordered_map<PredId, uint32_t>& delta_lo,
                   std::vector<PendingFact>* buffer) {
    const RulePlan& plan = cr.plan;
    // Existence short-circuit (Section 3.1): a single-tuple head needs one
    // witness ever; skip entirely once the tuple exists.
    stop_after_first_ = options_.boolean_cut && cr.single_tuple_head;
    if (stop_after_first_) {
      const Relation* rel = db_->Find(plan.head_pred);
      if (rel != nullptr && rel->Contains(SingleHeadTuple(cr))) return;
    }
    std::vector<RowRange> ranges(plan.steps.size());
    for (size_t s = 0; s < plan.steps.size(); ++s) {
      PredId p = plan.steps[s].pred;
      auto it = start.find(p);
      uint32_t hi = it == start.end() ? 0 : it->second;
      uint32_t lo = 0;
      if (s == delta_step) {
        auto dit = delta_lo.find(p);
        lo = dit == delta_lo.end() ? 0 : dit->second;
      }
      ranges[s] = RowRange{lo, hi};
      // An empty range over a positive literal means the variant cannot
      // match; an empty (or absent) relation under a negated literal is
      // simply a succeeding anti-join.
      if (ranges[s].empty() && !plan.steps[s].negated) return;
    }
    regs_.assign(plan.num_regs, 0);
    reg_set_.assign(plan.num_regs, false);
    current_rule_index_ = cr.rule_index;
    current_path_.clear();
    Descend(plan, ranges, 0, buffer);
  }

  /// Returns false when evaluation of this variant should stop (the
  /// single-tuple head was emitted and one witness suffices).
  bool Descend(const RulePlan& plan, const std::vector<RowRange>& ranges,
               size_t step_idx, std::vector<PendingFact>* buffer) {
    if (step_idx == plan.steps.size()) {
      PendingFact fact;
      fact.pred = plan.head_pred;
      fact.row.reserve(plan.head_args.size());
      for (const ArgSpec& a : plan.head_args) {
        fact.row.push_back(a.kind == ArgSpec::Kind::kConst ? a.const_value
                                                           : regs_[a.reg]);
      }
      if (options_.record_provenance) {
        fact.prov.rule_index = static_cast<int>(current_rule_index_);
        fact.prov.children = current_path_;
      }
      buffer->push_back(std::move(fact));
      ++stats_.rule_firings;
      return !stop_after_first_;
    }
    const LiteralStep& step = plan.steps[step_idx];
    Relation* rel = db_->FindMutable(step.pred);
    const RowRange& range = ranges[step_idx];

    if (step.negated) {
      // Anti-join: succeed iff no tuple matches the (fully bound) key.
      bool exists = false;
      if (rel != nullptr && range.hi > 0) {
        if (step.args.empty()) {
          exists = true;  // 0-ary relation holds the empty tuple
        } else {
          std::vector<Value> key;
          key.reserve(step.args.size());
          for (const ArgSpec& a : step.args) {
            key.push_back(a.kind == ArgSpec::Kind::kConst ? a.const_value
                                                          : regs_[a.reg]);
          }
          ++stats_.index_probes;
          exists = rel->Contains(key);
        }
      }
      if (exists) return true;  // this binding fails; keep enumerating
      return Descend(plan, ranges, step_idx + 1, buffer);
    }
    if (rel == nullptr) return true;

    auto process_row = [&](uint32_t row_id) -> bool {
      std::span<const Value> row = rel->Row(row_id);
      ++stats_.rows_matched;
      // Bind/check arguments; remember which registers this row bound so we
      // can release them before the next row.
      size_t bound_here = 0;
      bool ok = true;
      for (size_t i = 0; i < step.args.size() && ok; ++i) {
        const ArgSpec& a = step.args[i];
        if (a.kind == ArgSpec::Kind::kConst) {
          ok = row[i] == a.const_value;
        } else if (reg_set_[a.reg]) {
          ok = row[i] == regs_[a.reg];
        } else {
          regs_[a.reg] = row[i];
          reg_set_[a.reg] = true;
          ++bound_here;
        }
      }
      bool keep_going = true;
      if (ok) {
        if (options_.record_provenance) {
          current_path_.push_back(TupleRef{step.pred, row_id});
        }
        keep_going = Descend(plan, ranges, step_idx + 1, buffer);
        if (options_.record_provenance) current_path_.pop_back();
      }
      // Unbind: the registers bound by this row are among step.binds
      // (first occurrences); when !ok we may have bound a prefix only, so
      // clear precisely what we set.
      if (bound_here > 0) {
        for (size_t i = 0; i < step.args.size() && bound_here > 0; ++i) {
          const ArgSpec& a = step.args[i];
          if (a.kind == ArgSpec::Kind::kReg && reg_set_[a.reg]) {
            for (uint32_t b : step.binds) {
              if (b == a.reg) {
                reg_set_[a.reg] = false;
                --bound_here;
                break;
              }
            }
          }
        }
      }
      return keep_going;
    };

    if (step.index_columns.empty()) {
      for (uint32_t row_id = range.lo; row_id < range.hi; ++row_id) {
        if (!process_row(row_id)) return false;
      }
      return true;
    }
    std::vector<Value> key;
    key.reserve(step.index_columns.size());
    for (uint32_t c : step.index_columns) {
      const ArgSpec& a = step.args[c];
      key.push_back(a.kind == ArgSpec::Kind::kConst ? a.const_value
                                                    : regs_[a.reg]);
    }
    const Relation::Index& index = rel->GetIndex(step.index_columns);
    ++stats_.index_probes;
    const Relation::RowIdList* ids = index.Lookup(key);
    if (ids == nullptr) return true;
    // Row ids are appended in increasing order; binary-search the range.
    auto lo_it = std::lower_bound(ids->begin(), ids->end(), range.lo);
    for (auto it = lo_it; it != ids->end() && *it < range.hi; ++it) {
      if (!process_row(*it)) return false;
    }
    return true;
  }

  void Flush(std::vector<PendingFact>* buffer) {
    for (PendingFact& f : *buffer) {
      Relation& rel =
          db_->GetOrCreate(f.pred, static_cast<uint32_t>(f.row.size()));
      if (rel.Insert(f.row)) {
        ++stats_.tuples_inserted;
        if (options_.record_provenance) {
          uint32_t row_id = static_cast<uint32_t>(rel.size() - 1);
          provenance_.emplace(TupleRef{f.pred, row_id}, std::move(f.prov));
        }
      } else {
        ++stats_.duplicate_inserts;
      }
    }
    buffer->clear();
  }

  /// Retires rules whose single possible head tuple (0-ary or
  /// all-constant heads) has been derived (Section 3.1's runtime cut).
  void ApplyBooleanCut() {
    if (!options_.boolean_cut) return;
    for (const CompiledRule& cr : rules_) {
      if (retired_.count(cr.rule_index) > 0) continue;
      if (!cr.single_tuple_head) continue;
      const Relation* rel = db_->Find(cr.plan.head_pred);
      if (rel != nullptr && rel->Contains(SingleHeadTuple(cr))) {
        retired_.insert(cr.rule_index);
        ++stats_.rules_retired;
      }
    }
  }

  bool GroundQueryIn() const {
    const Atom& q = *program_.query();
    const Relation* rel = db_->Find(q.pred);
    if (rel == nullptr) return false;
    std::vector<Value> row;
    row.reserve(q.args.size());
    for (const Term& t : q.args) row.push_back(t.id());
    return rel->Contains(row);
  }

  bool ShouldStopOnGroundQuery() const {
    if (!options_.stop_on_ground_query) return false;
    if (!program_.query() || !program_.query()->IsGround()) return false;
    return GroundQueryIn();
  }

  const Program& program_;
  const EvalOptions& options_;
  Database* db_ = nullptr;
  std::vector<CompiledRule> rules_;
  std::unordered_set<PredId> idb_preds_;
  std::unordered_set<size_t> retired_;
  EvalStats stats_;
  std::vector<Value> regs_;
  std::vector<char> reg_set_;
  bool stop_after_first_ = false;
  size_t current_rule_index_ = 0;
  std::vector<TupleRef> current_path_;
  std::unordered_map<TupleRef, Provenance, TupleRefHash> provenance_;
};

}  // namespace

Result<EvalResult> Evaluate(const Program& program, const Database& input,
                            const EvalOptions& options) {
  Engine engine(program, options);
  return engine.Run(input);
}

std::vector<std::vector<Value>> ExtractAnswers(const Atom& query,
                                               const Database& db) {
  std::vector<std::vector<Value>> out;
  const Relation* rel = db.Find(query.pred);
  if (rel == nullptr) return out;
  // Distinct variables in first-occurrence order are the answer columns.
  std::vector<SymbolId> vars;
  query.CollectVars(&vars);
  std::unordered_map<SymbolId, size_t> var_col;
  for (size_t i = 0; i < vars.size(); ++i) var_col[vars[i]] = i;

  std::unordered_set<std::vector<Value>, ValueVecHash> seen;
  for (size_t r = 0; r < rel->size(); ++r) {
    std::span<const Value> row = rel->Row(r);
    std::vector<Value> answer(vars.size(), 0);
    std::vector<char> set(vars.size(), 0);
    bool ok = true;
    for (size_t i = 0; i < query.args.size() && ok; ++i) {
      const Term& t = query.args[i];
      if (t.IsConst()) {
        ok = row[i] == t.id();
      } else {
        size_t col = var_col[t.id()];
        if (set[col]) {
          ok = row[i] == answer[col];
        } else {
          answer[col] = row[i];
          set[col] = 1;
        }
      }
    }
    if (ok && seen.insert(answer).second) out.push_back(std::move(answer));
  }
  std::sort(out.begin(), out.end());
  return out;
}


namespace {

/// Renders one stored tuple as "pred(a, b)".
std::string RenderTuple(const Program& program, const Database& db,
                        const TupleRef& ref) {
  const Context& ctx = program.ctx();
  std::string out = ctx.PredicateDisplayName(ref.pred);
  const Relation* rel = db.Find(ref.pred);
  if (rel == nullptr || ref.row >= rel->size()) return out + "(?)";
  std::span<const Value> row = rel->Row(ref.row);
  if (row.empty()) return out;
  out += "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += ctx.SymbolName(row[i]);
  }
  out += ")";
  return out;
}

void ExplainRecursive(const Program& program, const EvalResult& result,
                      const TupleRef& ref, int depth, std::string* out) {
  for (int i = 0; i < depth; ++i) *out += "  ";
  *out += RenderTuple(program, result.db, ref);
  auto it = result.provenance.find(ref);
  if (it == result.provenance.end() || it->second.rule_index < 0) {
    *out += "   [input fact]\n";
    return;
  }
  *out += "   [rule " + std::to_string(it->second.rule_index) + "]\n";
  for (const TupleRef& child : it->second.children) {
    ExplainRecursive(program, result, child, depth + 1, out);
  }
}

}  // namespace

Result<std::string> ExplainTuple(const Program& program,
                                 const EvalResult& result,
                                 const TupleRef& tuple) {
  const Relation* rel = result.db.Find(tuple.pred);
  if (rel == nullptr || tuple.row >= rel->size()) {
    return Status::NotFound("tuple reference out of range");
  }
  std::string out;
  ExplainRecursive(program, result, tuple, 0, &out);
  return out;
}

Result<std::string> ExplainFact(const Program& program,
                                const EvalResult& result, PredId pred,
                                std::span<const Value> row) {
  const Relation* rel = result.db.Find(pred);
  if (rel == nullptr) return Status::NotFound("no tuples for predicate");
  for (uint32_t r = 0; r < rel->size(); ++r) {
    std::span<const Value> stored = rel->Row(r);
    if (std::equal(stored.begin(), stored.end(), row.begin(), row.end())) {
      return ExplainTuple(program, result, TupleRef{pred, r});
    }
  }
  return Status::NotFound("fact not present");
}

}  // namespace exdl

